// Csvimport loads a property graph from CSV (the LDBC SNB interchange
// style), runs path queries over it, and shows execution statistics —
// the workflow of pointing this library at an existing dataset dump.
package main

import (
	"fmt"
	"log"
	"strings"

	"pathalgebra"
)

// A miniature citation network: papers cite papers, authors write papers.
const nodesCSV = `key,label,title,year:int
p1,Paper,Foundations of RPQs,1987
p2,Paper,Regular Simple Paths,1995
p3,Paper,Property Graph Model,2018
p4,Paper,GQL Digest,2023
p5,Paper,Path Algebra,2024
a1,Author,Mendelzon,
a2,Author,Wood,
a3,Author,Angles,
`

const edgesCSV = `key,src,dst,label
c1,p2,p1,Cites
c2,p3,p1,Cites
c3,p4,p2,Cites
c4,p4,p3,Cites
c5,p5,p4,Cites
c6,p5,p3,Cites
w1,a1,p1,Wrote
w2,a2,p2,Wrote
w3,a1,p2,Wrote
w4,a3,p3,Wrote
w5,a3,p5,Wrote
`

func main() {
	g, err := pathalgebra.ReadGraphCSV(strings.NewReader(nodesCSV), strings.NewReader(edgesCSV))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d nodes, %d edges from CSV\n\n", g.NumNodes(), g.NumEdges())

	// Citation chains from the 2024 paper back to the 1987 roots: every
	// acyclic Cites+ path starting at p5.
	chains, err := pathalgebra.Run(g,
		`MATCH ACYCLIC p = (?x {title:"Path Algebra"})-[:Cites+]->(?y)`,
		pathalgebra.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("citation chains from \"Path Algebra\":")
	fmt.Println(chains.Format(g))

	// Which authors are reachable from Angles through one Wrote edge,
	// any number of Cites, and an incoming Wrote? Express it as a §2.3
	// composition: Wrote, then Cites*, with the whole path acyclic.
	q1, err := pathalgebra.ParseQuery(`MATCH WALK p = (?a:Author)-[:Wrote]->(?x)`)
	if err != nil {
		log.Fatal(err)
	}
	q2, err := pathalgebra.ParseQuery(`MATCH ACYCLIC p = (?x)-[:Cites*]->(?y)`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := pathalgebra.ComposeQueries(pathalgebra.Selector{},
		pathalgebra.AcyclicSemantics, q1, q2)
	if err != nil {
		log.Fatal(err)
	}
	eng := pathalgebra.NewEngine(g, pathalgebra.EngineOptions{})
	res, err := eng.EvalPaths(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("author → paper → cited papers (composed query):")
	fmt.Println(res.Format(g))

	s := eng.Stats()
	fmt.Printf("\nstats: %d paths produced, %d join probes, %d recursions (%d expanded)\n",
		s.PathsProduced, s.JoinProbes, s.Recursions, s.ExpandedRecursions)
}
