// Quickstart: build a small property graph, run a path query, inspect the
// logical plan, and print the resulting paths.
package main

import (
	"fmt"
	"log"

	"pathalgebra"
)

func main() {
	// 1. Build a property graph (Definition 2.1): flights between cities.
	b := pathalgebra.NewGraphBuilder()
	for _, city := range []string{"SCL", "GRU", "CDG", "LYS", "JFK"} {
		b.AddNode(city, "Airport", nil)
	}
	flights := [][2]string{
		{"SCL", "GRU"}, {"GRU", "CDG"}, {"CDG", "LYS"},
		{"SCL", "JFK"}, {"JFK", "CDG"}, {"LYS", "GRU"},
	}
	for i, f := range flights {
		b.AddEdge(fmt.Sprintf("f%d", i+1), f[0], f[1], "Flight", nil)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. A path query with a classic GQL selector: for every pair of
	// airports, all shortest flight routes, returned as whole paths.
	query := `MATCH ALL SHORTEST TRAIL p = (?x)-[:Flight+]->(?y)`

	// 3. Show the logical plan the query compiles to (Table 7 pipeline).
	q, err := pathalgebra.ParseQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := pathalgebra.CompileQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("logical plan:")
	fmt.Print(pathalgebra.PrintPlan(plan))

	// 4. Evaluate. Run parses, compiles, optimizes and executes.
	res, err := pathalgebra.Run(g, query, pathalgebra.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d shortest routes:\n%s\n", res.Len(), res.Format(g))

	// 5. Sets of paths compose: feed the result through a further
	// selection using the algebra directly (query composability, §3).
	c, err := pathalgebra.ParseCond(`len() >= 2`)
	if err != nil {
		log.Fatal(err)
	}
	multiHop := 0
	for _, p := range res.Paths() {
		if c.Eval(g, p) {
			multiHop++
		}
	}
	fmt.Printf("\n%d of them are multi-hop routes\n", multiHop)
}
