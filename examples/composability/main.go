// Composability demonstrates what the paper argues current query
// languages cannot do (§6): algebra expressions beyond GQL's 28
// selector×restrictor combinations, built by composing γ/τ/π freely, and
// nested pipelines whose input is the path-set output of another query.
package main

import (
	"fmt"
	"log"

	"pathalgebra"
)

func main() {
	g := pathalgebra.Figure1()

	// The paper's §6 example of an expression GQL cannot write:
	// π(*,*,1)(τG(γL(ϕTrail(σKnows(Edges))))) — one sample trail of each
	// possible length.
	query := `MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[:Knows+]->(?y)
		GROUP BY LENGTH ORDER BY GROUP`
	res, err := pathalgebra.Run(g, query, pathalgebra.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one sample Knows-trail per length (not expressible in GQL):")
	fmt.Println(res.Format(g))

	// §7.1's worked example: all trails, grouped by TARGET, one path per
	// group — "a single witness per reachable person".
	query2 := `MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y)
		GROUP BY TARGET ORDER BY PATH`
	res2, err := pathalgebra.Run(g, query2, pathalgebra.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\none shortest witness per target (the §7.1 query):")
	fmt.Println(res2.Format(g))

	// Full composability via the algebra API: build a plan whose input is
	// itself an extended pipeline — a projection feeding a further
	// selection, join and grouping. The algebra is closed under sets of
	// paths, so this nests arbitrarily.
	inner := pathalgebra.MustRun(g,
		`MATCH ALL SHORTEST TRAIL p = (?x:Person)-[:Knows+]->(?y:Person)`,
		pathalgebra.RunOptions{})
	fmt.Printf("\ninner query returned %d shortest person-to-person trails;\n", inner.Len())

	// Compose: keep only those continuing to a message Apu likes, by
	// joining with Likes edges — done on the materialized path set.
	likes, err := pathalgebra.Run(g, `MATCH WALK p = (?x {name:"Apu"})-[:Likes]->(?m)`,
		pathalgebra.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	joined := 0
	for _, p := range inner.Paths() {
		for _, q := range likes.Paths() {
			if p.CanConcat(q) {
				full := p.Concat(q)
				fmt.Printf("  composed: %s\n", full.Format(g))
				joined++
			}
		}
	}
	fmt.Printf("%d composed friendship→like paths\n", joined)
}
