// Selectors runs all 28 GQL selector×restrictor combinations (§6 of the
// paper) over a synthetic LDBC-SNB-like graph and reports result sizes,
// demonstrating the Table 7 compilation scheme end to end.
package main

import (
	"fmt"
	"log"

	"pathalgebra"
)

func main() {
	g, err := pathalgebra.GenerateSNB(pathalgebra.SNBConfig{
		Persons: 30, Messages: 40, KnowsPerPerson: 2, LikesPerPerson: 2,
		CycleFraction: 0.4, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic SNB graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	selectors := []string{
		"ALL", "ANY SHORTEST", "ALL SHORTEST", "ANY", "ANY 2", "SHORTEST 2", "SHORTEST 2 GROUP",
	}
	restrictors := []string{"WALK", "TRAIL", "ACYCLIC", "SIMPLE"}

	fmt.Printf("%-18s", "selector \\ restr")
	for _, r := range restrictors {
		fmt.Printf(" %9s", r)
	}
	fmt.Println()
	for _, sel := range selectors {
		fmt.Printf("%-18s", sel)
		for _, restr := range restrictors {
			query := fmt.Sprintf("MATCH %s %s p = (?x)-[:Knows+]->(?y)", sel, restr)
			// WALK needs a bound unless the optimizer can rewrite the
			// recursion to SHORTEST (which it does for the shortest-
			// consuming selectors).
			opts := pathalgebra.RunOptions{Limits: pathalgebra.Limits{MaxLen: 6}}
			res, err := pathalgebra.Run(g, query, opts)
			if err != nil {
				log.Fatalf("%s: %v", query, err)
			}
			fmt.Printf(" %9d", res.Len())
		}
		fmt.Println()
	}

	fmt.Println("\nEach cell is the number of returned paths. Reading the ANY")
	fmt.Println("column pairs: ANY returns one path per connected endpoint pair,")
	fmt.Println("ALL SHORTEST returns every minimal-length path per pair, and")
	fmt.Println("SHORTEST 2 GROUP returns the two best length-groups per pair.")

	// Show the algebra pipeline behind one combination (Table 7).
	q, err := pathalgebra.ParseQuery(`MATCH SHORTEST 2 GROUP TRAIL p = (?x)-[:Knows+]->(?y)`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := pathalgebra.CompileQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSHORTEST 2 GROUP TRAIL compiles to (Table 7):")
	fmt.Print(pathalgebra.PrintPlan(plan))
}
