// Socialnetwork walks through the paper's running example on the Figure 1
// graph: the introduction's double-cycle query, the Table 3 semantics
// tour, and the §5 solution-space pipeline.
package main

import (
	"fmt"
	"log"

	"pathalgebra"
)

func main() {
	g := pathalgebra.Figure1()
	fmt.Printf("Figure 1 graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	// The introduction's query: paths from Moe to Apu across the inner
	// Knows cycle or the outer Likes/Has_creator cycle. Under WALK
	// semantics the answer is infinite; under SIMPLE it is exactly two
	// paths (path1 and path2 in the paper).
	intro := `MATCH SIMPLE p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:"Apu"})`
	res, err := pathalgebra.Run(g, intro, pathalgebra.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simple paths from Moe to Apu:")
	fmt.Println(res.Format(g))

	// The same query under WALK diverges — the engine reports it instead
	// of hanging.
	walk := `MATCH WALK p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:"Apu"})`
	if _, err := pathalgebra.Run(g, walk, pathalgebra.RunOptions{
		Limits: pathalgebra.Limits{MaxPaths: 10_000},
	}); err != nil {
		fmt.Printf("\nWALK variant: %v\n", err)
	}

	// Table 3 tour: Knows+ under each restrictor.
	fmt.Println("\nKnows+ result sizes per restrictor (Table 3):")
	for _, restr := range []string{"WALK", "TRAIL", "ACYCLIC", "SIMPLE", "SHORTEST"} {
		q := `MATCH ` + restr + ` p = (?x)-[:Knows+]->(?y)`
		opts := pathalgebra.RunOptions{}
		note := ""
		if restr == "WALK" {
			opts.Limits = pathalgebra.Limits{MaxLen: 4}
			note = " (bounded to length 4; unbounded is infinite)"
		}
		s, err := pathalgebra.Run(g, q, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %2d paths%s\n", restr, s.Len(), note)
	}

	// The §5 pipeline: ANY SHORTEST TRAIL = π(*,*,1)(τA(γST(ϕTrail(...)))).
	fmt.Println("\nANY SHORTEST TRAIL Knows+ (the Figure 5 pipeline):")
	s5, err := pathalgebra.Run(g, `MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		pathalgebra.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s5.Format(g))
}
