module pathalgebra

go 1.22
