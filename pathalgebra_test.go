package pathalgebra

import (
	"strings"
	"testing"
)

// TestIntroQuery runs the paper's introductory query end to end: all
// simple paths from Moe to Apu across the inner Knows cycle or the outer
// Likes/Has_creator cycle. The paper states the answer is exactly
// path1 = (n1,e1,n2,e4,n4) and path2 = (n1,e8,n6,e11,n3,e7,n7,e10,n4).
func TestIntroQuery(t *testing.T) {
	g := Figure1()
	res, err := Run(g,
		`MATCH SIMPLE p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:"Apu"})`,
		RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := res.Format(g)
	want := "(n1, e1, n2, e4, n4)\n(n1, e8, n6, e11, n3, e7, n7, e10, n4)"
	if got != want {
		t.Errorf("intro query result:\n%s\nwant:\n%s", got, want)
	}
}

// TestSection5Query runs the §5 worked query through the facade:
// MATCH ANY SHORTEST TRAIL p = (x)-[:Knows]->+(y).
func TestSection5Query(t *testing.T) {
	g := Figure1()
	res, err := Run(g, `MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// One shortest trail per connected endpoint pair; Figure 1's Knows
	// subgraph has 9 such pairs.
	if res.Len() != 9 {
		t.Errorf("ANY SHORTEST TRAIL returned %d paths, want 9:\n%s", res.Len(), res.Format(g))
	}
	for _, p := range res.Paths() {
		if !p.IsTrail() {
			t.Errorf("non-trail in TRAIL result: %s", p.Format(g))
		}
	}
}

// TestRunOptimizesWalk: Run applies the §7.3 rewrite, so ANY SHORTEST
// WALK terminates on the cyclic Figure 1 graph even without limits.
func TestRunOptimizesWalk(t *testing.T) {
	g := Figure1()
	res, err := Run(g, `MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)`, RunOptions{})
	if err != nil {
		t.Fatalf("Run with optimization: %v", err)
	}
	if res.Len() != 9 {
		t.Errorf("result = %d paths, want 9", res.Len())
	}
	// Without optimization the same query needs a budget and fails.
	_, err = Run(g, `MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)`,
		RunOptions{NoOptimize: true, Limits: Limits{MaxPaths: 1000}})
	if err == nil {
		t.Error("unoptimized cyclic walk should exceed its budget")
	}
}

func TestRunParseError(t *testing.T) {
	g := Figure1()
	if _, err := Run(g, `MATCH NOT A QUERY`, RunOptions{}); err == nil {
		t.Error("Run should surface parse errors")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRun should panic on error")
		}
	}()
	MustRun(g, `garbage`, RunOptions{})
}

func TestBuildGraphViaFacade(t *testing.T) {
	b := NewGraphBuilder()
	b.AddNode("a", "City", nil)
	b.AddNode("c", "City", nil)
	b.AddEdge("r", "a", "c", "Road", nil)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, `MATCH WALK p = (?x)-[:Road]->(?y)`, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("result = %d paths, want 1", res.Len())
	}
}

func TestReadGraphJSONFacade(t *testing.T) {
	src := `{"nodes":[{"key":"a"},{"key":"b"}],
		"edges":[{"key":"e","src":"a","dst":"b","label":"L"}]}`
	g, err := ReadGraphJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Error("JSON graph shape")
	}
}

func TestGenerateSNBFacade(t *testing.T) {
	g, err := GenerateSNB(SNBConfig{Persons: 5, Messages: 3, KnowsPerPerson: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8 {
		t.Errorf("nodes = %d, want 8", g.NumNodes())
	}
}

func TestPlanPipelineFacade(t *testing.T) {
	q, err := ParseQuery(`MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	opt, rules := Optimize(plan)
	if len(rules) == 0 {
		t.Error("expected the walk-to-shortest rule to fire")
	}
	text := PrintPlan(opt)
	if !strings.Contains(text, "Restrictor (SHORTEST)") {
		t.Errorf("printed plan missing rewritten restrictor:\n%s", text)
	}
	eng := NewEngine(Figure1(), EngineOptions{})
	res, err := eng.EvalPaths(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 9 {
		t.Errorf("engine result = %d, want 9", res.Len())
	}
	if eng.Stats().Recursions != 1 {
		t.Errorf("Recursions = %d, want 1", eng.Stats().Recursions)
	}
}

func TestRPQFacade(t *testing.T) {
	re, err := ParseRPQ("(:Likes/:Has_creator)+")
	if err != nil {
		t.Fatal(err)
	}
	plan := CompileRPQ(re, TrailSemantics)
	res, err := NewEngine(Figure1(), EngineOptions{}).EvalPaths(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("no Likes/Has_creator trails found")
	}
}

func TestCondFacade(t *testing.T) {
	c, err := ParseCond(`first.name = "Moe"`)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != `first.name = "Moe"` {
		t.Errorf("cond = %s", c)
	}
}

func TestCompileSelectorFacade(t *testing.T) {
	re, _ := ParseRPQ(":Knows+")
	pattern := CompileRPQ(re, TrailSemantics)
	plan, err := CompileSelector(Selector{Kind: selAllShortestKind(t)}, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "γSTL") {
		t.Errorf("ALL SHORTEST compilation = %s", plan)
	}
}

// selAllShortestKind pulls the ALL SHORTEST kind out of a parsed query so
// the facade test does not need to import internal/gql.
func selAllShortestKind(t *testing.T) (k SelectorKind) {
	t.Helper()
	q, err := ParseQuery(`MATCH ALL SHORTEST WALK p = (?x)-[:K]->(?y)`)
	if err != nil {
		t.Fatal(err)
	}
	return q.Selector.Kind
}
