package pathalgebra

import (
	"fmt"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/rpq"
)

// benchmarkQueryPlans enumerates the query plans exercised by the
// benchmark suites (figures, Table 1 selectors, Table 2/3 restrictors,
// Table 7 pipelines), each with the graph and limits its benchmark uses.
func benchmarkQueryPlans(b interface{ Fatal(...any) }) (plans []struct {
	name string
	g    *Graph
	plan PathExpr
	lim  Limits
}) {
	add := func(name string, g *Graph, plan PathExpr, lim Limits) {
		plans = append(plans, struct {
			name string
			g    *Graph
			plan PathExpr
			lim  Limits
		}{name, g, plan, lim})
	}
	fig1 := Figure1()
	add("figure2", fig1, gql.MustCompile(
		`MATCH SIMPLE p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:"Apu"})`), Limits{})
	add("figure3", fig1, gql.MustCompile(
		`MATCH WALK p = (?x {name:"Moe"})-[:Knows|(:Knows/:Knows)]->(?y)`), Limits{})
	add("figure4", fig1, gql.MustCompile(
		`MATCH SIMPLE p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)*]->(?y {name:"Apu"})`), Limits{})
	add("figure5", fig1, gql.MustCompile(
		`MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`), Limits{})

	g := benchGraph()
	for _, sel := range gql.AllSelectors(2) {
		pattern := rpq.Compile(rpq.MustParse(":Knows+"), core.Trail)
		plan, err := gql.CompileSelector(sel, pattern)
		if err != nil {
			b.Fatal(err)
		}
		add("selector/"+sel.String(), g, plan, Limits{MaxLen: 8})
	}
	for _, sem := range core.AllSemantics() {
		add("restrictor/"+sem.String(), g,
			rpq.Compile(rpq.MustParse(":Knows+"), sem), Limits{MaxLen: 6})
	}
	for name, qs := range map[string]string{
		"ALL_TRAIL":          `MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)`,
		"ANY_SHORTEST_TRAIL": `MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		"ALL_SHORTEST_TRAIL": `MATCH ALL SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		"SHORTEST_2_GROUP":   `MATCH SHORTEST 2 GROUP TRAIL p = (?x)-[:Knows+]->(?y)`,
	} {
		add("table7/"+name, g, gql.MustCompile(qs), Limits{MaxLen: 6})
	}
	return plans
}

// TestParallelDeterminism runs every benchmark query at parallelism 1, 2
// and 8 and asserts byte-identical reported output: same formatted answer
// and same insertion order (which downstream solution-space operators
// observe).
func TestParallelDeterminism(t *testing.T) {
	for _, tc := range benchmarkQueryPlans(t) {
		t.Run(tc.name, func(t *testing.T) {
			eval := func(workers int) (*PathSet, string) {
				eng := engine.New(tc.g, engine.Options{Limits: tc.lim, Parallelism: workers})
				res, err := eng.EvalPaths(tc.plan)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res, fmt.Sprintf("%d paths\n%s", res.Len(), res.Format(tc.g))
			}
			baseSet, baseReport := eval(1)
			for _, workers := range []int{2, 8} {
				set, report := eval(workers)
				if report != baseReport {
					t.Errorf("workers=%d: report output differs from sequential", workers)
				}
				for i, p := range baseSet.Paths() {
					if !p.Equal(set.At(i)) {
						t.Errorf("workers=%d: insertion order diverges at path %d", workers, i)
						break
					}
				}
			}
		})
	}
}
