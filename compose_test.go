package pathalgebra

import (
	"strings"
	"testing"
)

// TestComposeQueries implements the paper's §2.3 example: "all trails
// connecting nodes n1 and n2, then all shortest walks connecting n2 to
// n3, and require that the entire concatenated path be a shortest trail."
func TestComposeQueries(t *testing.T) {
	g := Figure1()
	q1, err := ParseQuery(`MATCH TRAIL p = (?x {name:"Moe"})-[:Knows+]->(?y {name:"Homer"})`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := ParseQuery(`MATCH ALL SHORTEST WALK p = (?x {name:"Homer"})-[:Knows+]->(?y {name:"Lisa"})`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ComposeQueries(Selector{}, ShortestSemantics, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "ρShortest") {
		t.Errorf("outer restrictor missing: %s", plan)
	}
	// The inner ALL SHORTEST WALK pipeline needs the §7.3 rewrite to
	// terminate; the optimizer reaches it through the composition.
	plan, rules := Optimize(plan)
	if len(rules) == 0 {
		t.Fatal("walk-to-shortest did not fire inside the composed plan")
	}
	eng := NewEngine(g, EngineOptions{})
	res, err := eng.EvalPaths(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Moe→Homer trails: (n1,e1,n2) and (n1,e1,n2,e2,n3,e3,n2).
	// Homer→Lisa shortest walk: (n2,e2,n3). Concatenations have lengths
	// 2 and 4; the outer Shortest keeps only the length-2 one.
	want := "(n1, e1, n2, e2, n3)"
	if res.Len() != 1 || res.Format(g) != want {
		t.Errorf("composition result:\n%s\nwant:\n%s", res.Format(g), want)
	}
}

// TestComposeQueriesWithOuterSelector applies an outer ANY selector over
// the composed set.
func TestComposeQueriesWithOuterSelector(t *testing.T) {
	g := Figure1()
	q1, _ := ParseQuery(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`)
	q2, _ := ParseQuery(`MATCH TRAIL p = (?x)-[:Likes]->(?y)`)
	sel := mustSelector(t, `MATCH ANY WALK p = (?x)-[:K]->(?y)`)
	plan, err := ComposeQueries(sel, WalkSemantics, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(g, EngineOptions{Limits: Limits{MaxLen: 6}})
	res, err := eng.EvalPaths(plan)
	if err != nil {
		t.Fatal(err)
	}
	// ANY returns one path per endpoint pair of the composed set.
	seen := map[[2]NodeID]bool{}
	for _, p := range res.Paths() {
		k := [2]NodeID{p.First(), p.Last()}
		if seen[k] {
			t.Errorf("two paths for one endpoint pair under ANY: %s", p.Format(g))
		}
		seen[k] = true
		// Every composed path ends with a Likes edge.
		e, _ := p.Edge(p.Len())
		if g.EdgeLabel(e) != "Likes" {
			t.Errorf("composed path does not end with Likes: %s", p.Format(g))
		}
	}
	if res.Len() == 0 {
		t.Fatal("empty composition")
	}
}

func TestComposeQueriesErrors(t *testing.T) {
	if _, err := ComposeQueries(Selector{}, WalkSemantics); err == nil {
		t.Error("empty composition should fail")
	}
	bad := &Query{} // no pattern
	if _, err := ComposeQueries(Selector{}, WalkSemantics, bad); err == nil {
		t.Error("sub-query without a pattern should fail")
	}
}

func mustSelector(t *testing.T, query string) Selector {
	t.Helper()
	q, err := ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	return q.Selector
}
