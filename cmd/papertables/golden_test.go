package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pathalgebra/internal/report"
)

var update = flag.Bool("update", false, "rewrite the golden file from current output")

// TestPapertablesGolden pins the complete papertables output — every
// table and figure the command regenerates from the implementation.
// Engine or planner changes that alter any user-visible row fail here.
// Regenerate intentionally with
//
//	go test ./cmd/papertables -update
func TestPapertablesGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := report.Print(&buf, "all"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "papertables.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("papertables output differs from %s (run with -update to regenerate intentionally)\n--- got ---\n%s",
			path, buf.String())
	}
}
