// Command papertables regenerates the tables and figures of "Path-based
// Algebraic Foundations of Graph Query Languages" from this
// implementation, printing the same rows the paper reports.
//
// Usage:
//
//	papertables            # print everything
//	papertables -table 3   # print a single artifact
//
// Artifacts: fig1, fig2, fig5, fig6, intro, plan, 1..7.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathalgebra/internal/report"
)

func main() {
	table := flag.String("table", "all", "artifact to print (fig1, fig2, fig5, fig6, intro, plan, 1..7, all)")
	flag.Parse()
	if err := report.Print(os.Stdout, *table); err != nil {
		fmt.Fprintln(os.Stderr, "papertables:", err)
		os.Exit(1)
	}
}
