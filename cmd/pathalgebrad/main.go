// Command pathalgebrad is the path-algebra query daemon: it loads a
// property graph once and serves queries over HTTP through the
// internal/server query service — cancellable streaming evaluation,
// session cursors paging NDJSON results, per-query limits and deadlines,
// a result LRU, and /stats + /explain observability.
//
// Usage:
//
//	pathalgebrad -figure1                                # paper's Figure 1 graph
//	pathalgebrad -graph g.json -addr :7688
//	pathalgebrad -nodes nodes.csv -edges edges.csv       # LDBC-style CSV
//	pathalgebrad -snb-persons 2000                       # synthetic SNB graph
//
// Endpoints (see internal/server):
//
//	POST   /query            start a query        → {"id": "q1", ...}
//	GET    /query/{id}/next  page results (NDJSON: path lines + trailer)
//	DELETE /query/{id}       cancel a query
//	POST   /ingest           apply a mutation batch (NDJSON or text/csv)
//	GET    /stats            engine + server counters
//	GET    /metrics          Prometheus text exposition
//	POST   /explain          plan with estimated vs actual cardinalities
//	POST   /cache/invalidate drop the result LRU
//	GET    /healthz          liveness
//
// Observability: -slow-query <dur> logs any evaluation at or above the
// threshold with its plan and span summary; -pprof mounts the
// net/http/pprof handlers under /debug/pprof/; ?trace=1 on /query or
// /reach returns a per-query span tree.
//
// On SIGTERM/SIGINT the daemon drains gracefully: it stops accepting
// connections, gives in-flight requests -drain-timeout to finish, then
// aborts remaining evaluations (clients see HTTP 503, kind "draining").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathalgebra"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/server"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "pathalgebrad:", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored out of main so the smoke test can
// drive a full serve/drain cycle in-process. If ready is non-nil, the
// daemon's bound address is sent on it once the listener is up.
func run(args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("pathalgebrad", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":7688", "listen address")
		graphFile  = fs.String("graph", "", "JSON graph file")
		nodesCSV   = fs.String("nodes", "", "node CSV file (with -edges)")
		edgesCSV   = fs.String("edges", "", "edge CSV file (with -nodes)")
		figure1    = fs.Bool("figure1", false, "serve the paper's Figure 1 graph")
		snbPersons = fs.Int("snb-persons", 0, "serve a synthetic SNB graph with this many persons")

		parallel = fs.Int("parallel", 0, "evaluation worker goroutines per query (0 = GOMAXPROCS)")
		maxLen   = fs.Int("maxlen", 0, "default per-query recursive path length bound")
		maxPaths = fs.Int("maxpaths", 0, "default per-query result-size bound (0 = engine safety net)")
		maxWork  = fs.Int("maxwork", 0, "default per-query materialization bound (0 = engine safety net)")

		inflight     = fs.Int("max-inflight", 0, "max concurrently evaluating queries (0 = 2x GOMAXPROCS)")
		maxCursors   = fs.Int("max-cursors", 0, "max live cursors (0 = 1024)")
		chunk        = fs.Int("chunk", 0, "default paths per result page (0 = 256)")
		cacheSize    = fs.Int("cache", 0, "result LRU entries (0 = 128, negative disables)")
		queryTimeout = fs.Duration("query-timeout", 0, "per-query evaluation deadline (0 = 60s, negative disables)")
		cursorTTL    = fs.Duration("cursor-ttl", 0, "idle cursor eviction (0 = 5m, negative disables)")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Second, "graceful shutdown grace period")
		slowQuery    = fs.Duration("slow-query", 0,
			"log queries whose evaluation takes at least this long, with plan and span summary (0 disables)")
		pprof = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		compactThreshold = fs.Int("compact-threshold", 0,
			"delta ops before background compaction folds the overlay into a fresh CSR (0 = 4096, negative disables)")

		dataDir = fs.String("data-dir", "",
			"durable data directory: ingested batches are WAL-logged (fsync before acknowledge) and replayed over the graph source on restart; compactions checkpoint into a snapshot")

		readHeaderTimeout = fs.Duration("read-header-timeout", 10*time.Second,
			"close connections whose request headers take longer than this (slow-loris guard; negative disables)")
		writeTimeout = fs.Duration("write-timeout", 2*time.Minute,
			"per-request response write deadline; must exceed query-timeout or long polls break (negative disables)")
		idleTimeout = fs.Duration("idle-timeout", 2*time.Minute,
			"close keep-alive connections idle longer than this (negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, desc, err := loadGraph(*graphFile, *nodesCSV, *edgesCSV, *figure1, *snbPersons)
	if err != nil {
		return err
	}

	// With -data-dir the daemon owns a WAL-durable store: the graph source
	// is the seed, logged batches replay over it on restart (a checkpoint
	// snapshot supersedes the seed entirely), and every /ingest is fsync'd
	// before it is acknowledged.
	var store *graph.Store
	if *dataDir != "" {
		store, err = graph.OpenDurable(*dataDir, g, graph.StoreOptions{CompactThreshold: *compactThreshold})
		if err != nil {
			return err
		}
		defer store.Close()
		g = store.Graph()
		desc = fmt.Sprintf("%s (durable: %s)", desc, *dataDir)
	}

	svc, err := server.New(server.Config{
		Graph: g,
		Store: store,
		Engine: pathalgebra.EngineOptions{
			Limits:      pathalgebra.Limits{MaxLen: *maxLen, MaxPaths: *maxPaths, MaxWork: *maxWork},
			Parallelism: *parallel,
		},
		MaxInFlight:  *inflight,
		MaxCursors:   *maxCursors,
		ChunkSize:    *chunk,
		CacheSize:    *cacheSize,
		QueryTimeout: *queryTimeout,
		CursorTTL:    *cursorTTL,
		SlowQuery:    *slowQuery,

		CompactThreshold: *compactThreshold,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	// -pprof mounts the profiling handlers next to the service routes.
	// Off by default: profiling endpoints expose heap contents and must
	// be opted into, like the fault-injection seams.
	var handler http.Handler = svc
	if *pprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		mux.Handle("/", svc)
		handler = mux
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Connection hygiene against slow or stalled clients: a peer that
	// trickles headers, never reads its response, or parks an idle
	// keep-alive connection is bounded by these deadlines instead of
	// holding a server goroutine (and its cursor admission slot) forever.
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: max(*readHeaderTimeout, 0),
		WriteTimeout:      max(*writeTimeout, 0),
		IdleTimeout:       max(*idleTimeout, 0),
	}
	log.Printf("pathalgebrad: serving %s on %s (nodes=%d edges=%d symbols=%d)",
		desc, ln.Addr(), g.NumNodes(), g.NumEdges(), g.NumSymbols())
	if ready != nil {
		ready <- ln.Addr()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, give in-flight requests the grace
	// period, then abort remaining evaluations so their long-polling
	// /next requests fail fast (503 draining) instead of hanging.
	log.Printf("pathalgebrad: draining (grace %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-shutdownCtx.Done()
		svc.Close()
	}()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	svc.Close()
	log.Printf("pathalgebrad: drained")
	return nil
}

// loadGraph resolves the graph-source flags, in precedence order: CSV
// pair, then JSON file unless -figure1 explicitly forces the paper's
// graph (matching the pathalgebra CLI), then synthetic SNB, then
// Figure 1 as the default.
func loadGraph(graphFile, nodesCSV, edgesCSV string, figure1 bool, snbPersons int) (*graph.Graph, string, error) {
	switch {
	case nodesCSV != "" || edgesCSV != "":
		if nodesCSV == "" || edgesCSV == "" {
			return nil, "", fmt.Errorf("-nodes and -edges must be given together")
		}
		nf, err := os.Open(nodesCSV)
		if err != nil {
			return nil, "", err
		}
		defer nf.Close()
		ef, err := os.Open(edgesCSV)
		if err != nil {
			return nil, "", err
		}
		defer ef.Close()
		g, err := graph.ReadCSV(nf, ef)
		return g, fmt.Sprintf("CSV %s + %s", nodesCSV, edgesCSV), err
	case graphFile != "" && !figure1:
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := graph.ReadJSON(f)
		return g, fmt.Sprintf("JSON %s", graphFile), err
	case snbPersons > 0:
		cfg := ldbc.DefaultConfig()
		cfg.Persons = snbPersons
		cfg.Messages = 2 * snbPersons
		g, err := ldbc.Generate(cfg)
		return g, fmt.Sprintf("synthetic SNB (%d persons)", snbPersons), err
	default:
		return ldbc.Figure1(), "Figure 1", nil
	}
}
