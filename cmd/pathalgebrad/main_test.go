package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its base URL plus a channel carrying run's exit error.
func startDaemon(t *testing.T, args ...string) (string, chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	exit := make(chan error, 1)
	go func() { exit <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), ready) }()
	select {
	case addr := <-ready:
		return fmt.Sprintf("http://%s", addr), exit
	case err := <-exit:
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready within 10s")
		return "", nil
	}
}

func post(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp, v
}

// TestDaemonSmoke is the end-to-end server smoke: start the daemon, run
// a cursor through a full result set, check /stats and /explain, cancel
// a long-running query and assert the cancellation takes effect within
// 100ms, then drain via SIGTERM.
func TestDaemonSmoke(t *testing.T) {
	base, exit := startDaemon(t, "-figure1", "-chunk", "4", "-query-timeout", "30s")

	// Full cursor run over the Figure 1 graph.
	_, qr := post(t, base+"/query", `{"query": "MATCH TRAIL p = (?x)-[:Knows+]->(?y)", "max_len": 4}`)
	id, _ := qr["id"].(string)
	if id == "" {
		t.Fatalf("POST /query = %v, want an id", qr)
	}
	total, pages := 0, 0
	for done := false; !done; {
		resp, err := http.Get(fmt.Sprintf("%s/query/%s/next", base, id))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page status %d", resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var line map[string]any
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("bad NDJSON: %v", err)
			}
			if _, isPath := line["nodes"]; isPath {
				total++
			} else if d, ok := line["done"].(bool); ok {
				done = d
			}
		}
		resp.Body.Close()
		pages++
		if pages > 100 {
			t.Fatal("cursor never finished")
		}
	}
	if total == 0 || pages < 2 {
		t.Fatalf("streamed %d paths over %d pages, want results across multiple pages", total, pages)
	}

	// Stats and explain respond.
	resp, err := http.Get(base + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %v %v", resp, err)
	}
	resp.Body.Close()
	exResp, ex := post(t, base+"/explain", `{"query": "MATCH TRAIL p = (?x)-[:Knows+]->(?y)", "max_len": 4}`)
	if exResp.StatusCode != http.StatusOK || ex["plan"] == "" {
		t.Fatalf("POST /explain = %d %v", exResp.StatusCode, ex)
	}

	// Cancellation promptness: a cursor DELETE returns within 100ms even
	// with nothing slow running (the hard mid-evaluation variant runs in
	// internal/server where the stream internals are observable).
	_, qr2 := post(t, base+"/query", `{"query": "MATCH WALK p = (?x)-[:Knows+]->(?y)", "max_len": 30, "max_paths": 1000000000, "no_cache": true}`)
	id2, _ := qr2["id"].(string)
	time.Sleep(10 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/query/%s", base, id2), nil)
	start := time.Now()
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if since := time.Since(start); since > 100*time.Millisecond {
		t.Errorf("DELETE took %v, want < 100ms", since)
	}
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", delResp.StatusCode)
	}

	// Graceful drain on SIGTERM.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("daemon exit error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
}

// TestDaemonIngestSmoke is the live-graph end-to-end smoke: boot the
// daemon with a low compaction threshold, ingest a batch over HTTP,
// verify a query reflects it and /stats reports the epoch, then drain.
func TestDaemonIngestSmoke(t *testing.T) {
	base, exit := startDaemon(t, "-figure1", "-compact-threshold", "4")

	// n4 (Apu) has no outgoing Knows edge in Figure 1; ingest one.
	body := `{"op":"add_node","key":"n8","label":"Person","props":{"name":{"kind":"string","str":"Edna"}}}
{"op":"add_edge","key":"e12","src":"n4","dst":"n8","label":"Knows"}
`
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var ir map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir["epoch"] != float64(1) {
		t.Fatalf("POST /ingest = %d %v", resp.StatusCode, ir)
	}

	// The query surface sees the delta.
	_, qr := post(t, base+"/query", `{"query": "MATCH TRAIL p = (?x {name:\"Apu\"})-[:Knows]->(?y)", "max_len": 2}`)
	id, _ := qr["id"].(string)
	if id == "" {
		t.Fatalf("POST /query = %v", qr)
	}
	page, err := http.Get(fmt.Sprintf("%s/query/%s/next", base, id))
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	sc := bufio.NewScanner(page.Body)
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"e12"`)) {
			saw = true
		}
	}
	page.Body.Close()
	if !saw {
		t.Fatal("query page does not contain the ingested edge e12")
	}

	// /stats surfaces the store section.
	stResp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	store, _ := st["store"].(map[string]any)
	if store == nil || store["epoch"] != float64(1) || store["ingests"] != float64(1) {
		t.Fatalf("/stats store section = %v", store)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("daemon exit error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
}

// TestDaemonSlowClient: a client that dribbles its request headers is a
// slot leak (slow-loris); the daemon's ReadHeaderTimeout must close the
// connection instead of waiting forever.
func TestDaemonSlowClient(t *testing.T) {
	base, exit := startDaemon(t, "-figure1", "-read-header-timeout", "200ms")
	conn, err := net.Dial("tcp", base[len("http://"):])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a request but never finish the headers.
	if _, err := conn.Write([]byte("GET /stats HTTP/1.1\r\nHost: x\r\nX-Slow:")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server responded to an unfinished request")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server did not close the slow connection within 5s")
	}
	if since := time.Since(start); since > 3*time.Second {
		t.Errorf("slow connection closed after %v, want ~200ms", since)
	}
	// A well-behaved client is unaffected.
	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz after slow client: %v %v", resp, err)
	}
	resp.Body.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-exit; err != nil {
		t.Fatalf("daemon exit error: %v", err)
	}
}

// TestDaemonDurableRestart: with -data-dir, an acknowledged /ingest
// survives a drain and restart — the WAL replays it over the seed graph.
func TestDaemonDurableRestart(t *testing.T) {
	dir := t.TempDir()
	base, exit := startDaemon(t, "-figure1", "-data-dir", dir)
	body := `{"op":"add_node","key":"n8","label":"Person"}
{"op":"add_edge","key":"e12","src":"n4","dst":"n8","label":"Knows"}
`
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest = %d", resp.StatusCode)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-exit; err != nil {
		t.Fatalf("daemon exit error: %v", err)
	}

	base2, exit2 := startDaemon(t, "-figure1", "-data-dir", dir)
	stResp, err := http.Get(base2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	store, _ := st["store"].(map[string]any)
	if store == nil || store["durable"] != true || store["epoch"] != float64(1) {
		t.Fatalf("/stats store section after restart = %v", store)
	}
	_, qr := post(t, base2+"/query", `{"query": "MATCH TRAIL p = (?x {name:\"Apu\"})-[:Knows]->(?y)", "max_len": 2}`)
	id, _ := qr["id"].(string)
	page, err := http.Get(fmt.Sprintf("%s/query/%s/next", base2, id))
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	sc := bufio.NewScanner(page.Body)
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"e12"`)) {
			saw = true
		}
	}
	page.Body.Close()
	if !saw {
		t.Fatal("replayed edge e12 not visible after restart")
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-exit2; err != nil {
		t.Fatalf("second daemon exit error: %v", err)
	}
}

// TestLoadGraphFlags covers the graph-source precedence.
func TestLoadGraphFlags(t *testing.T) {
	g, desc, err := loadGraph("", "", "", true, 0)
	if err != nil || g.NumNodes() != 7 || desc != "Figure 1" {
		t.Fatalf("figure1: %v %s %v", g, desc, err)
	}
	g2, desc2, err := loadGraph("", "", "", false, 50)
	if err != nil || g2.NumNodes() == 0 || desc2 == "" {
		t.Fatalf("snb: %v %s %v", g2, desc2, err)
	}
	if _, _, err := loadGraph("", "only-nodes.csv", "", false, 0); err == nil {
		t.Fatal("lone -nodes accepted")
	}
}

// TestDaemonObservability boots the daemon with the observability
// surface armed (-slow-query, -pprof), runs a query, and checks the
// slow-query log line, the /metrics exposition and the pprof index.
func TestDaemonObservability(t *testing.T) {
	logBuf := &lockedBuffer{}
	prev := log.Writer()
	log.SetOutput(io.MultiWriter(prev, logBuf))
	defer log.SetOutput(prev)

	base, exit := startDaemon(t, "-figure1", "-slow-query", "1ns", "-pprof")

	_, qr := post(t, base+"/query", `{"query": "MATCH TRAIL p = (?x)-[:Knows+]->(?y)", "max_len": 4}`)
	id, _ := qr["id"].(string)
	if id == "" {
		t.Fatalf("POST /query = %v, want an id", qr)
	}
	for done := false; !done; {
		resp, err := http.Get(fmt.Sprintf("%s/query/%s/next", base, id))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var line map[string]any
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("bad NDJSON: %v", err)
			}
			if d, ok := line["done"].(bool); ok {
				done = d
			}
		}
		resp.Body.Close()
	}

	// The slow-query log fires from the completion watcher goroutine.
	deadline := time.Now().Add(2 * time.Second)
	for !bytes.Contains(logBuf.Bytes(), []byte("slow query")) {
		if time.Now().After(deadline) {
			t.Fatal("no slow-query log line within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /metrics: well-formed exposition with the expected families.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"# TYPE pathalgebra_queries_started_total counter",
		"pathalgebra_queries_started_total 1",
		"pathalgebra_slow_queries_total 1",
		`pathalgebra_http_requests_total{endpoint="metrics"}`,
		"pathalgebra_engine_paths_produced_total",
		"pathalgebra_store_epoch",
		"pathalgebra_goroutines",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// -pprof mounts the profiling index next to the service routes.
	pp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/ status = %d", pp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("daemon exit error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
}

// lockedBuffer is a concurrency-safe log sink for assertions against
// daemon goroutines.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.b.Bytes()...)
}
