// Command pathalgebravet is pathalgebra's invariant checker: a
// multichecker over the internal/lint analyzer suite (budgetcharge,
// detorder, epochpin, errsentinel, hotpathalloc, recoverguard,
// spanend).
//
// It runs two ways:
//
//	pathalgebravet ./...              # standalone: load, check, report
//	go vet -vettool=pathalgebravet    # vet mode: cmd/go drives it per
//	                                  # package with cached results
//
// Vet mode is detected from the invocation (cmd/go passes -V=full,
// -flags, or a single *.cfg argument); anything else is treated as a
// list of package patterns for the standalone loader. `pathalgebravet
// help` describes every analyzer.
//
// Exit status: 0 clean, 1 failure to load or analyze, 2 findings.
package main

import (
	"fmt"
	"os"

	"pathalgebra/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	analyzers := lint.All()
	if code, handled := lint.VetMain(args, analyzers); handled {
		return code
	}
	if len(args) == 1 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help") {
		fmt.Println("pathalgebravet checks pathalgebra's engine invariants.")
		fmt.Println()
		for _, a := range analyzers {
			fmt.Printf("%s:\n    %s\n", a.Name, a.Doc)
		}
		fmt.Println("\nusage: pathalgebravet [packages]   (or: go vet -vettool=pathalgebravet [packages])")
		return 0
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathalgebravet:", err)
		return 1
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pathalgebravet:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "pathalgebravet: %d finding(s)\n", findings)
		return 2
	}
	return 0
}
