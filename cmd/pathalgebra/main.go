// Command pathalgebra is a command-line front end to the path algebra:
// it parses extended-GQL path queries, shows their logical plans, applies
// the optimizer, and evaluates them against a property graph.
//
// Usage:
//
//	pathalgebra parse  -query 'MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)'
//	pathalgebra plan   -query '...'              # optimized plan + fired rules
//	pathalgebra run    -query '...' [-graph g.json | -figure1] [-maxlen N]
//	pathalgebra export -figure1                  # dump a graph as JSON
//
// With no -graph flag, run and export use the paper's Figure 1 graph.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"pathalgebra"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "parse":
		err = cmdParse(args)
	case "plan":
		err = cmdPlan(args)
	case "run":
		err = cmdRun(args)
	case "export":
		err = cmdExport(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pathalgebra: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathalgebra:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pathalgebra <command> [flags]

commands:
  parse   parse a query and print its logical plan (unoptimized)
  plan    parse, optimize, and print the plan with the rules that fired
  run     evaluate a query against a graph and print the result paths
  export  print a graph as JSON

flags (per command):
  -query  the path query (required for parse/plan/run)
  -graph  JSON graph file (default: the paper's Figure 1 graph)
  -figure1  force the Figure 1 graph
  -ingest   NDJSON (or .csv) mutation batch applied to the graph before
            evaluation (add_node/add_edge/del_node/del_edge ops)
  -maxlen   bound recursive path length (0 = unbounded)
  -maxpaths bound result size (0 = default safety net)
  -maxwork  bound materialized node slots (0 = default safety net)
  -parallel evaluation worker goroutines (0 = GOMAXPROCS; results are
            identical for every worker count)
  -timeout  abort evaluation after this duration, e.g. 500ms or 10s
            (run only; 0 = no deadline). Ctrl-C likewise aborts the
            running query and prints partial stats.
  -no-opt   skip the optimizer (run only)
  -no-planner use the heuristic optimizer without graph statistics
            (run only; the cost-based planner is the default)
  -explain  print the chosen plan with estimated vs actual operator
            cardinalities and plan-cache state (run only)
  -stats    print execution statistics (run only)
  -trace    print the per-query span tree after the results (run only)`)
}

type queryFlags struct {
	fs        *flag.FlagSet
	query     *string
	graph     *string
	nodesCSV  *string
	edgesCSV  *string
	figure1   *bool
	ingest    *string
	maxLen    *int
	maxPaths  *int
	maxWork   *int
	parallel  *int
	timeout   *time.Duration
	noOpt     *bool
	noPlanner *bool
	explain   *bool
	stats     *bool
	trace     *bool
}

func newQueryFlags(name string) *queryFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &queryFlags{
		fs:        fs,
		query:     fs.String("query", "", "path query"),
		graph:     fs.String("graph", "", "JSON graph file"),
		nodesCSV:  fs.String("nodes", "", "node CSV file (with -edges)"),
		edgesCSV:  fs.String("edges", "", "edge CSV file (with -nodes)"),
		figure1:   fs.Bool("figure1", false, "use the paper's Figure 1 graph"),
		ingest:    fs.String("ingest", "", "NDJSON batch file (or .csv) of mutations applied before evaluation"),
		maxLen:    fs.Int("maxlen", 0, "bound recursive path length"),
		maxPaths:  fs.Int("maxpaths", 0, "bound result size"),
		maxWork:   fs.Int("maxwork", 0, "bound materialized node slots"),
		parallel:  fs.Int("parallel", 0, "evaluation worker goroutines (0 = GOMAXPROCS)"),
		timeout:   fs.Duration("timeout", 0, "abort evaluation after this duration (0 = none)"),
		noOpt:     fs.Bool("no-opt", false, "skip the optimizer"),
		noPlanner: fs.Bool("no-planner", false, "use the heuristic optimizer without graph statistics"),
		explain:   fs.Bool("explain", false, "print the chosen plan with estimated vs actual cardinalities"),
		stats:     fs.Bool("stats", false, "print execution statistics"),
		trace:     fs.Bool("trace", false, "print the per-query span tree after the results"),
	}
}

func (qf *queryFlags) loadGraph() (*pathalgebra.Graph, error) {
	g, err := qf.loadBase()
	if err != nil || *qf.ingest == "" {
		return g, err
	}
	// Apply the batch through a live store and evaluate against the
	// resulting epoch's view — the CLI analogue of the daemon's /ingest.
	f, err := os.Open(*qf.ingest)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var batch pathalgebra.Batch
	if strings.HasSuffix(*qf.ingest, ".csv") {
		batch, err = pathalgebra.ReadBatchCSV(f)
	} else {
		batch, err = pathalgebra.ReadBatchNDJSON(f)
	}
	if err != nil {
		return nil, err
	}
	store := pathalgebra.NewStore(g, pathalgebra.StoreOptions{CompactThreshold: -1})
	defer store.Close()
	if _, err := store.Apply(batch); err != nil {
		return nil, err
	}
	return store.Graph(), nil
}

func (qf *queryFlags) loadBase() (*pathalgebra.Graph, error) {
	switch {
	case *qf.nodesCSV != "" || *qf.edgesCSV != "":
		if *qf.nodesCSV == "" || *qf.edgesCSV == "" {
			return nil, fmt.Errorf("-nodes and -edges must be given together")
		}
		nf, err := os.Open(*qf.nodesCSV)
		if err != nil {
			return nil, err
		}
		defer nf.Close()
		ef, err := os.Open(*qf.edgesCSV)
		if err != nil {
			return nil, err
		}
		defer ef.Close()
		return pathalgebra.ReadGraphCSV(nf, ef)
	case *qf.graph != "" && !*qf.figure1:
		f, err := os.Open(*qf.graph)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return pathalgebra.ReadGraphJSON(f)
	default:
		return pathalgebra.Figure1(), nil
	}
}

func (qf *queryFlags) mustQuery() (string, error) {
	if *qf.query == "" {
		return "", fmt.Errorf("%s: -query is required", qf.fs.Name())
	}
	return *qf.query, nil
}

func cmdParse(args []string) error {
	qf := newQueryFlags("parse")
	if err := qf.fs.Parse(args); err != nil {
		return err
	}
	query, err := qf.mustQuery()
	if err != nil {
		return err
	}
	q, err := pathalgebra.ParseQuery(query)
	if err != nil {
		return err
	}
	fmt.Println("query:", q)
	plan, err := pathalgebra.CompileQuery(q)
	if err != nil {
		return err
	}
	fmt.Print(pathalgebra.PrintPlan(plan))
	return nil
}

func cmdPlan(args []string) error {
	qf := newQueryFlags("plan")
	if err := qf.fs.Parse(args); err != nil {
		return err
	}
	query, err := qf.mustQuery()
	if err != nil {
		return err
	}
	q, err := pathalgebra.ParseQuery(query)
	if err != nil {
		return err
	}
	plan, err := pathalgebra.CompileQuery(q)
	if err != nil {
		return err
	}
	optimized, rules := pathalgebra.Optimize(plan)
	if len(rules) == 0 {
		fmt.Println("no rewrite rules fired")
	} else {
		fmt.Println("rules fired:", rules)
	}
	fmt.Print(pathalgebra.PrintPlan(optimized))
	return nil
}

func cmdRun(args []string) error {
	qf := newQueryFlags("run")
	if err := qf.fs.Parse(args); err != nil {
		return err
	}
	query, err := qf.mustQuery()
	if err != nil {
		return err
	}
	g, err := qf.loadGraph()
	if err != nil {
		return err
	}
	q, err := pathalgebra.ParseQuery(query)
	if err != nil {
		return err
	}
	plan, err := pathalgebra.CompileQuery(q)
	if err != nil {
		return err
	}
	if *qf.noOpt && *qf.explain {
		return fmt.Errorf("-explain cannot be combined with -no-opt (there is no planned plan to explain)")
	}
	eng := pathalgebra.NewEngine(g, pathalgebra.EngineOptions{
		Limits:         pathalgebra.Limits{MaxLen: *qf.maxLen, MaxPaths: *qf.maxPaths, MaxWork: *qf.maxWork},
		Parallelism:    *qf.parallel,
		DisablePlanner: *qf.noPlanner,
	})
	// Ctrl-C (and -timeout) cancel the evaluation context instead of
	// killing the process: all evaluation workers stop at their next
	// budget charge and partial stats are reported below. A second
	// Ctrl-C after `stop` restores the default kill behavior.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var cancel context.CancelFunc
	if *qf.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *qf.timeout)
		defer cancel()
	}
	var tr *pathalgebra.Trace
	if *qf.trace {
		tr = pathalgebra.NewTrace()
		ctx = pathalgebra.ContextWithSpan(ctx, tr.Start("query"))
	}
	var res *pathalgebra.PathSet
	switch {
	case *qf.noOpt:
		res, err = eng.EvalPathsCtx(ctx, plan)
	case *qf.explain:
		var ex *pathalgebra.Explain
		ex, err = eng.ExplainCtx(ctx, plan)
		if err == nil {
			fmt.Println("plan:")
			fmt.Print(pathalgebra.PrintPlan(ex.Plan))
			fmt.Print(ex.Format())
			res = ex.Result
		}
	default:
		res, err = eng.RunCtx(ctx, plan)
	}
	stop()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s := eng.Stats()
			fmt.Fprintf(os.Stderr, "query aborted (%v); partial stats: paths=%d joinProbes=%d recursions=%d seeded=%d backward=%d\n",
				err, s.PathsProduced, s.JoinProbes, s.Recursions, s.SeededRecursions, s.BackwardRecursions)
		}
		return err
	}
	fmt.Printf("%d paths\n", res.Len())
	if res.Len() > 0 {
		fmt.Println(res.Format(g))
	}
	if tr != nil {
		fmt.Print("trace:\n", tr.Format())
	}
	if *qf.stats {
		s := eng.Stats()
		fmt.Printf("stats: paths=%d joinProbes=%d indexedScans=%d recursions=%d seeded=%d backward=%d planCacheHits=%d fpCollisions=%d parallel=%d symbols=%d\n",
			s.PathsProduced, s.JoinProbes, s.IndexedScans, s.Recursions, s.SeededRecursions,
			s.BackwardRecursions, s.PlanCacheHits, s.FingerprintCollisions,
			eng.Parallelism(), g.NumSymbols())
	}
	return nil
}

func cmdExport(args []string) error {
	qf := newQueryFlags("export")
	if err := qf.fs.Parse(args); err != nil {
		return err
	}
	g, err := qf.loadGraph()
	if err != nil {
		return err
	}
	return g.WriteJSON(os.Stdout)
}
