package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// Golden tests for the user-visible -explain output: planner changes
// that alter the chosen plan, the fired rules, the cardinality estimates
// or the result listing fail loudly here. Regenerate intentionally with
//
//	go test ./cmd/pathalgebra -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{
			// A selector pipeline on the Figure 1 graph: forward
			// evaluation, no rewrites beyond the Table 7 expansion.
			golden: "explain_any_shortest.golden",
			args: []string{"-query",
				`MATCH ANY SHORTEST TRAIL p = (?x:Person)-[:Knows+]->(?y)`, "-explain"},
		},
		{
			// A fan-in pattern with a selective target: the planner
			// chooses backward evaluation (ϕTrail← in the operator table,
			// choose-backward in the fired rules).
			golden: "explain_backward.golden",
			args: []string{"-query",
				`MATCH TRAIL p = (?x)-[:Likes+]->(?y:Message)`, "-maxlen", "4", "-explain"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			out, err := capture(t, func() error { return cmdRun(tc.args) })
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if out != string(want) {
				t.Errorf("output differs from %s.\n--- got ---\n%s\n--- want ---\n%s",
					path, out, want)
			}
		})
	}
}
