package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathalgebra"
)

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := os.ReadFile(readAll(t, r))
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// readAll drains a pipe into a temp file and returns its path (keeps the
// capture helper simple for small outputs).
func readAll(t *testing.T, r *os.File) string {
	t.Helper()
	tmp := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			f.Write(buf[:n])
		}
		if err != nil {
			break
		}
	}
	return tmp
}

func TestCmdParse(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdParse([]string{"-query", `MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"query:", "Projection", "Restrictor (TRAIL)"} {
		if !strings.Contains(out, want) {
			t.Errorf("parse output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdPlanShowsRules(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdPlan([]string{"-query", `MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)`})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "walk-to-shortest") {
		t.Errorf("plan output missing rewrite rule:\n%s", out)
	}
	out, err = capture(t, func() error {
		return cmdPlan([]string{"-query", `MATCH TRAIL p = (?x)-[:Knows]->(?y)`})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no rewrite rules fired") {
		t.Errorf("plan output should report no rules:\n%s", out)
	}
}

func TestCmdRunFigure1(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{
			"-query", `MATCH SIMPLE p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:"Apu"})`,
			"-stats",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 paths", "(n1, e1, n2, e4, n4)", "stats:"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdRunJSONGraph(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.json")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := pathalgebra.Figure1().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := capture(t, func() error {
		return cmdRun([]string{"-query", `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`, "-graph", graphPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "12 paths") {
		t.Errorf("run over JSON graph:\n%s", out)
	}
}

func TestCmdRunCSVGraph(t *testing.T) {
	dir := t.TempDir()
	nodes := filepath.Join(dir, "nodes.csv")
	edges := filepath.Join(dir, "edges.csv")
	os.WriteFile(nodes, []byte("key,label\na,City\nb,City\n"), 0o644)
	os.WriteFile(edges, []byte("key,src,dst,label\ne,a,b,Road\n"), 0o644)
	out, err := capture(t, func() error {
		return cmdRun([]string{"-query", `MATCH WALK p = (?x)-[:Road]->(?y)`,
			"-nodes", nodes, "-edges", edges})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 paths") {
		t.Errorf("run over CSV graph:\n%s", out)
	}
}

func TestCmdExport(t *testing.T) {
	out, err := capture(t, func() error { return cmdExport([]string{"-figure1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"key": "n1"`) {
		t.Errorf("export output missing n1:\n%s", out)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdParse([]string{}); err == nil {
		t.Error("parse without -query should fail")
	}
	if err := cmdRun([]string{"-query", "garbage"}); err == nil {
		t.Error("run with a bad query should fail")
	}
	if err := cmdRun([]string{"-query", `MATCH WALK p = (?x)-[:K]->(?y)`, "-nodes", "only-one"}); err == nil {
		t.Error("run with only -nodes should fail")
	}
	if err := cmdRun([]string{"-query", `MATCH WALK p = (?x)-[:K]->(?y)`, "-graph", "/nope.json"}); err == nil {
		t.Error("run with a missing graph file should fail")
	}
	// A diverging walk must surface the budget error, errors.Is-able as
	// the typed sentinel (not a string match).
	if err := cmdRun([]string{"-query", `MATCH WALK p = (?x)-[:Knows+]->(?y)`,
		"-maxpaths", "50", "-no-opt"}); err == nil {
		t.Error("diverging walk should fail under -maxpaths")
	} else if !errors.Is(err, pathalgebra.ErrBudgetExceeded) {
		t.Errorf("budget error = %v, want errors.Is ErrBudgetExceeded", err)
	}
}

// TestCmdRunTimeout: -timeout aborts the evaluation with the typed
// deadline error instead of hanging or dying on the budget.
func TestCmdRunTimeout(t *testing.T) {
	_, err := capture(t, func() error {
		return cmdRun([]string{"-query", `MATCH WALK p = (?x)-[:Knows+]->(?y)`,
			"-maxlen", "30", "-maxpaths", "1000000000", "-timeout", "1ns"})
	})
	if err == nil {
		t.Fatal("run with -timeout 1ns should fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want errors.Is context.DeadlineExceeded", err)
	}
}

// TestCmdRunTrace checks -trace prints a span tree after the results
// covering the plan and evaluation phases.
func TestCmdRunTrace(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{
			"-query", `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`,
			"-maxlen", "3", "-trace",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace:", "query ", "plan ", "eval ", "search ", "paths_charged="} {
		if !strings.Contains(out, want) {
			t.Errorf("run -trace output missing %q:\n%s", want, out)
		}
	}
}
