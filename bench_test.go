package pathalgebra

// Benchmark harness regenerating the performance side of every table and
// figure of the paper (see EXPERIMENTS.md for the index):
//
//	Figures 2–5:  BenchmarkFigure2Query .. BenchmarkFigure5Plan
//	Table 1:      BenchmarkSelectors (all 7 selectors)
//	Table 2/3:    BenchmarkRestrictors (all 5 ϕ semantics)
//	Table 4:      BenchmarkGroupBy (all 8 γ keys)
//	Table 6:      BenchmarkOrderBy (all 7 τ keys)
//	Table 7:      BenchmarkTable7Pipelines (selector→algebra pipelines)
//	Figure 6:     BenchmarkPushdownAblation (§7.3 predicate pushdown)
//	§7.3:         BenchmarkShortestRewriteAblation (Walk→Shortest)
//	Extra E1:     BenchmarkAlgebraVsAutomaton (baseline comparison)
//	Extra E2:     BenchmarkJoinStrategies (hash vs nested loop)
//	Extra E3:     BenchmarkSemanticsSweep (cycle-density sweep)
//
// The paper reports no absolute numbers (it has no system evaluation), so
// these benchmarks document the cost model of the reference
// implementation rather than reproduce published timings.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/opt"
	"pathalgebra/internal/rpq"
	"pathalgebra/internal/server"
)

// benchGraph is a moderately cyclic SNB-like graph sized so that the full
// suite stays fast while recursion costs dominate setup costs.
func benchGraph() *Graph {
	return ldbc.MustGenerate(ldbc.Config{
		Persons: 40, Messages: 60, KnowsPerPerson: 2, LikesPerPerson: 2,
		CycleFraction: 0.3, Seed: 17,
	})
}

func mustEval(b *testing.B, g *Graph, plan PathExpr, lim Limits) int {
	b.Helper()
	eng := engine.New(g, engine.Options{Limits: lim})
	res, err := eng.EvalPaths(plan)
	if err != nil {
		b.Fatal(err)
	}
	return res.Len()
}

// BenchmarkFigure2Query evaluates the intro/Figure 2 recursive query under
// Simple semantics on the Figure 1 graph.
func BenchmarkFigure2Query(b *testing.B) {
	g := Figure1()
	plan := gql.MustCompile(
		`MATCH SIMPLE p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:"Apu"})`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustEval(b, g, plan, Limits{})
	}
}

// BenchmarkFigure3Query evaluates the non-recursive Figure 3 query
// (friends and friends-of-friends of Moe).
func BenchmarkFigure3Query(b *testing.B) {
	g := Figure1()
	plan := gql.MustCompile(`MATCH WALK p = (?x {name:"Moe"})-[:Knows|(:Knows/:Knows)]->(?y)`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustEval(b, g, plan, Limits{})
	}
}

// BenchmarkFigure4Query evaluates the Kleene-star variant of Figure 4.
func BenchmarkFigure4Query(b *testing.B) {
	g := Figure1()
	plan := gql.MustCompile(
		`MATCH SIMPLE p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)*]->(?y {name:"Apu"})`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustEval(b, g, plan, Limits{})
	}
}

// BenchmarkFigure5Plan evaluates the §5 extended pipeline
// π(*,*,1)(τA(γST(ϕTrail(σKnows(Edges))))).
func BenchmarkFigure5Plan(b *testing.B) {
	g := Figure1()
	plan := gql.MustCompile(`MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustEval(b, g, plan, Limits{})
	}
}

// BenchmarkSelectors measures each Table 1 selector over ϕTrail(Knows+)
// on the synthetic SNB graph.
func BenchmarkSelectors(b *testing.B) {
	g := benchGraph()
	for _, sel := range gql.AllSelectors(2) {
		pattern := rpq.Compile(rpq.MustParse(":Knows+"), core.Trail)
		plan, err := gql.CompileSelector(sel, pattern)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sel.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustEval(b, g, plan, Limits{MaxLen: 8})
			}
		})
	}
}

// BenchmarkRestrictors measures ϕ under each Table 2/3 semantics (Walk is
// length-bounded; the others terminate naturally).
func BenchmarkRestrictors(b *testing.B) {
	g := benchGraph()
	for _, sem := range core.AllSemantics() {
		plan := rpq.Compile(rpq.MustParse(":Knows+"), sem)
		lim := Limits{MaxLen: 6}
		b.Run(sem.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustEval(b, g, plan, lim)
			}
		})
	}
}

// BenchmarkGroupBy measures γψ for all 8 Table 4 keys over a fixed trail
// set.
func BenchmarkGroupBy(b *testing.B) {
	g := benchGraph()
	eng := engine.New(g, engine.Options{Limits: core.Limits{MaxLen: 6}})
	trails, err := eng.EvalPaths(rpq.Compile(rpq.MustParse(":Knows+"), core.Trail))
	if err != nil {
		b.Fatal(err)
	}
	for _, key := range core.AllGroupKeys() {
		b.Run("γ"+key.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.EvalGroupBy(key, trails)
			}
		})
	}
}

// BenchmarkOrderBy measures τθ for all 7 Table 6 keys over a γSTL space.
func BenchmarkOrderBy(b *testing.B) {
	g := benchGraph()
	eng := engine.New(g, engine.Options{Limits: core.Limits{MaxLen: 6}})
	trails, err := eng.EvalPaths(rpq.Compile(rpq.MustParse(":Knows+"), core.Trail))
	if err != nil {
		b.Fatal(err)
	}
	space := core.EvalGroupBy(core.GroupSTL, trails)
	for _, key := range core.AllOrderKeys() {
		b.Run("τ"+key.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.EvalOrderBy(key, space)
			}
		})
	}
}

// BenchmarkProjection measures Algorithm 1 with tight and loose bounds.
func BenchmarkProjection(b *testing.B) {
	g := benchGraph()
	eng := engine.New(g, engine.Options{Limits: core.Limits{MaxLen: 6}})
	trails, err := eng.EvalPaths(rpq.Compile(rpq.MustParse(":Knows+"), core.Trail))
	if err != nil {
		b.Fatal(err)
	}
	space := core.EvalOrderBy(core.OrderPartition|core.OrderGroup|core.OrderPath,
		core.EvalGroupBy(core.GroupSTL, trails))
	cases := []struct {
		name                 string
		parts, groups, paths core.Count
	}{
		{"all", core.AllCount(), core.AllCount(), core.AllCount()},
		{"1-1-1", core.NCount(1), core.NCount(1), core.NCount(1)},
		{"first-per-group", core.AllCount(), core.AllCount(), core.NCount(1)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.EvalProject(tc.parts, tc.groups, tc.paths, space)
			}
		})
	}
}

// BenchmarkTable7Pipelines runs the complete selector pipelines of
// Table 7 end to end (recursion + grouping + projection).
func BenchmarkTable7Pipelines(b *testing.B) {
	g := benchGraph()
	queries := map[string]string{
		"ALL_TRAIL":          `MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)`,
		"ANY_SHORTEST_TRAIL": `MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		"ALL_SHORTEST_TRAIL": `MATCH ALL SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		"SHORTEST_2_GROUP":   `MATCH SHORTEST 2 GROUP TRAIL p = (?x)-[:Knows+]->(?y)`,
	}
	for name, qs := range queries {
		plan := gql.MustCompile(qs)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustEval(b, g, plan, Limits{MaxLen: 6})
			}
		})
	}
}

// BenchmarkPushdownAblation compares the Figure 6 plan with and without
// predicate pushdown.
func BenchmarkPushdownAblation(b *testing.B) {
	g := benchGraph()
	plan := gql.MustCompile(`MATCH TRAIL p = (x {name:"Moe_1"})-[:Knows/:Knows/:Knows]->(?y)`)
	optimized := opt.Optimize(plan).Plan
	b.Run("unoptimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustEval(b, g, plan, Limits{})
		}
	})
	b.Run("pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustEval(b, g, optimized, Limits{})
		}
	})
}

// BenchmarkShortestRewriteAblation compares ANY SHORTEST WALK evaluated
// via bounded ϕWalk against the §7.3 ϕShortest rewrite.
func BenchmarkShortestRewriteAblation(b *testing.B) {
	g := benchGraph()
	plan := gql.MustCompile(`MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)`)
	rewritten := opt.Optimize(plan).Plan
	b.Run("walk-bounded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustEval(b, g, plan, Limits{MaxLen: 6})
		}
	})
	b.Run("shortest-rewrite", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustEval(b, g, rewritten, Limits{})
		}
	})
}

// BenchmarkAlgebraVsAutomaton compares the algebraic engine against the
// classical automaton baseline on the same RPQ and semantics.
func BenchmarkAlgebraVsAutomaton(b *testing.B) {
	g := benchGraph()
	re := rpq.MustParse(":Knows+")
	for _, sem := range []core.Semantics{core.Trail, core.Acyclic, core.Shortest} {
		plan := rpq.Compile(re, sem)
		lim := core.Limits{MaxLen: 6}
		b.Run(fmt.Sprintf("algebra/%s", sem), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustEval(b, g, plan, lim)
			}
		})
		nfa := automaton.Build(re)
		b.Run(fmt.Sprintf("automaton/%s", sem), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := automaton.Eval(g, nfa, sem, lim); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinStrategies compares the hash join against the Definition
// 3.1 nested loop on growing inputs.
func BenchmarkJoinStrategies(b *testing.B) {
	for _, persons := range []int{25, 50, 100} {
		g := ldbc.MustGenerate(ldbc.Config{
			Persons: persons, KnowsPerPerson: 4, CycleFraction: 0.2, Seed: 5,
		})
		plan := gql.MustCompile(`MATCH WALK p = (?x)-[:Knows/:Knows]->(?y)`)
		for _, strat := range []engine.JoinStrategy{engine.HashJoin, engine.NestedLoop} {
			b.Run(fmt.Sprintf("%s/persons=%d", strat, persons), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					eng := engine.New(g, engine.Options{Join: strat})
					if _, err := eng.EvalPaths(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSemanticsSweep sweeps cycle density: restrictive semantics pay
// for admissibility checks, and the admissible path count grows with
// cyclicity.
func BenchmarkSemanticsSweep(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 1} {
		g := ldbc.MustGenerate(ldbc.Config{
			Persons: 40, KnowsPerPerson: 2, CycleFraction: frac, Seed: 23,
		})
		for _, sem := range []core.Semantics{core.Trail, core.Acyclic, core.Simple, core.Shortest} {
			plan := rpq.Compile(rpq.MustParse(":Knows+"), sem)
			b.Run(fmt.Sprintf("%s/cycles=%.1f", sem, frac), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mustEval(b, g, plan, Limits{MaxLen: 8})
				}
			})
		}
	}
}

// parallelWorkerCounts is the worker matrix of the parallel benchmarks.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// parallelBenchGraph is sized so each recursion evaluation carries enough
// per-source work for sharding to matter.
func parallelBenchGraph() *Graph {
	return ldbc.MustGenerate(ldbc.Config{
		Persons: 150, Messages: 100, KnowsPerPerson: 3, LikesPerPerson: 2,
		CycleFraction: 0.3, Seed: 29,
	})
}

// BenchmarkParallelRecursion measures the sharded product search itself —
// the multi-source recursion hot path — across worker counts.
func BenchmarkParallelRecursion(b *testing.B) {
	g := parallelBenchGraph()
	nfa := automaton.Build(rpq.MustParse(":Knows+"))
	lim := core.Limits{MaxLen: 5}
	for _, w := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := automaton.EvalParallel(g, nfa, core.Trail, lim, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSelectors runs the Table 1 selector suite across
// worker counts.
func BenchmarkParallelSelectors(b *testing.B) {
	g := benchGraph()
	for _, w := range parallelWorkerCounts {
		for _, sel := range gql.AllSelectors(2) {
			pattern := rpq.Compile(rpq.MustParse(":Knows+"), core.Trail)
			plan, err := gql.CompileSelector(sel, pattern)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("workers=%d/%s", w, sel), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					eng := engine.New(g, engine.Options{Limits: core.Limits{MaxLen: 8}, Parallelism: w})
					if _, err := eng.EvalPaths(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelRestrictors runs the Table 2/3 restrictor suite across
// worker counts.
func BenchmarkParallelRestrictors(b *testing.B) {
	g := benchGraph()
	for _, w := range parallelWorkerCounts {
		for _, sem := range core.AllSemantics() {
			plan := rpq.Compile(rpq.MustParse(":Knows+"), sem)
			b.Run(fmt.Sprintf("workers=%d/%s", w, sem), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					eng := engine.New(g, engine.Options{Limits: core.Limits{MaxLen: 6}, Parallelism: w})
					if _, err := eng.EvalPaths(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParser measures the §7 front-end alone.
func BenchmarkParser(b *testing.B) {
	query := `MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p =
		(?x:Person {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)*]->(?y)
		WHERE len() <= 5 GROUP BY SOURCE TARGET ORDER BY PARTITION PATH`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gql.Parse(query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlushkov measures NFA construction.
func BenchmarkGlushkov(b *testing.B) {
	re := rpq.MustParse("((:A/:B)+|(:C|:D)*/:E)+/:F?")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		automaton.Build(re)
	}
}

// BenchmarkExpandAblation compares the engine's automaton-backed
// expansion fast path against the generic materialize-then-close
// evaluation of the same recursion.
func BenchmarkExpandAblation(b *testing.B) {
	g := benchGraph()
	plan := rpq.Compile(rpq.MustParse("(:Likes/:Has_creator)+"), core.Trail)
	for _, disable := range []bool{false, true} {
		name := "expand"
		if disable {
			name = "generic"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := engine.New(g, engine.Options{
					Limits:        core.Limits{MaxLen: 6},
					DisableExpand: disable,
				})
				if _, err := eng.EvalPaths(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompose measures the §2.3 composed-query pipeline end to end.
func BenchmarkCompose(b *testing.B) {
	g := benchGraph()
	q1 := gql.MustParse(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`)
	q2 := gql.MustParse(`MATCH TRAIL p = (?x)-[:Likes]->(?y)`)
	plan, err := ComposeQueries(Selector{}, TrailSemantics, q1, q2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustEval(b, g, plan, Limits{MaxLen: 5})
	}
}

// fanInGraph builds the planner's showcase workload: a large source
// population whose Likes edges converge on a handful of Message targets.
// Forward evaluation must expand from every person; backward evaluation
// seeds at the few targets and walks in-edges.
func fanInGraph(persons, messages int) *Graph {
	b := NewGraphBuilder()
	for i := 0; i < persons; i++ {
		b.AddNode(fmt.Sprintf("p%d", i), "Person", nil)
	}
	for i := 0; i < messages; i++ {
		b.AddNode(fmt.Sprintf("m%d", i), "Message", nil)
	}
	for i := 0; i < persons; i++ {
		b.AddEdge(fmt.Sprintf("l%d", i), fmt.Sprintf("p%d", i), fmt.Sprintf("m%d", i%messages), "Likes", nil)
	}
	// A Knows backbone feeding the Likes edges so forward paths are long.
	for i := 0; i+1 < persons; i++ {
		b.AddEdge(fmt.Sprintf("k%d", i), fmt.Sprintf("p%d", i), fmt.Sprintf("p%d", i+1), "Knows", nil)
	}
	return b.MustBuild()
}

// BenchmarkDirection compares forward, backward and planner-chosen
// evaluation of a small-target-set query (σ[label(last)=Message] over
// (Knows|Likes)+): the planner should pick backward and match the forced-
// backward time. BENCH_pr4.json records the pre/post numbers.
func BenchmarkDirection(b *testing.B) {
	g := fanInGraph(400, 2)
	lim := Limits{MaxLen: 4}
	plan := gql.MustCompile(`MATCH TRAIL p = (?x)-[(:Knows|:Likes)+]->(?y:Message)`)
	run := func(b *testing.B, p PathExpr, opts engine.Options) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := engine.New(g, opts)
			res, err := eng.EvalPaths(p)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() == 0 {
				b.Fatal("empty result")
			}
		}
	}
	b.Run("forward", func(b *testing.B) {
		// The compiled plan evaluated as-is: forward expansion over every
		// source, filter afterwards.
		run(b, plan, engine.Options{Limits: lim, Parallelism: 1})
	})
	b.Run("backward-planned", func(b *testing.B) {
		eng := engine.New(g, engine.Options{Limits: lim, Parallelism: 1})
		planned, _ := eng.Plan(plan)
		if !gotBackward(planned) {
			b.Fatalf("planner did not choose backward: %s", planned)
		}
		run(b, planned, engine.Options{Limits: lim, Parallelism: 1})
	})
}

// gotBackward reports whether any recursion in the plan is marked for
// backward evaluation.
func gotBackward(e PathExpr) bool {
	switch x := e.(type) {
	case core.Select:
		return gotBackward(x.In)
	case core.Join:
		return gotBackward(x.L) || gotBackward(x.R)
	case core.Union:
		return gotBackward(x.L) || gotBackward(x.R)
	case core.Recurse:
		return x.Dir == core.Backward || gotBackward(x.In)
	case core.Restrict:
		return gotBackward(x.In)
	default:
		return false
	}
}

// BenchmarkPlanCache measures planning cost with a cold cache (every
// iteration re-plans) versus a hot cache (every iteration hits). The
// allocation gap is the point: the hit path must allocate less than the
// cold path (gated in scripts/check_allocs.sh).
func BenchmarkPlanCache(b *testing.B) {
	g := benchGraph()
	plan := gql.MustCompile(
		`MATCH ANY SHORTEST WALK p = (?x:Person)-[(:Knows+)|(:Likes/:Has_creator)+]->(?y)`)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := engine.New(g, engine.Options{Limits: Limits{MaxLen: 4}})
			eng.Plan(plan)
		}
	})
	b.Run("hit", func(b *testing.B) {
		eng := engine.New(g, engine.Options{Limits: Limits{MaxLen: 4}})
		eng.Plan(plan) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Plan(plan)
		}
		if s := eng.Stats(); s.PlanCacheHits < int64(b.N) {
			b.Fatalf("expected cache hits, stats %+v", s)
		}
	})
}

// BenchmarkStatsBuild measures the one-pass statistics collection that
// graph.Build performs — the planner's fixed per-graph cost.
func BenchmarkStatsBuild(b *testing.B) {
	cfg := ldbc.Config{Persons: 2000, Messages: 3000, KnowsPerPerson: 3,
		LikesPerPerson: 2, CycleFraction: 0.3, Seed: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ldbc.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamDelivery measures the chunked-delivery overhead of
// RunStream against the equivalent batch Run: the streaming path must
// stay within a small constant number of extra allocations per chunk
// (gated in scripts/check_allocs.sh), since chunks are zero-copy views
// into the evaluated set.
func BenchmarkStreamDelivery(b *testing.B) {
	g := benchGraph()
	plan := gql.MustCompile(`MATCH WALK p = (?x)-[:Knows+]->(?y)`)
	lim := Limits{MaxLen: 4}
	b.Run("batch", func(b *testing.B) {
		eng := engine.New(g, engine.Options{Limits: lim})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		eng := engine.New(g, engine.Options{Limits: lim})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := eng.RunStream(context.Background(), plan, engine.StreamOptions{ChunkSize: 256})
			for {
				chunk, err := s.Next()
				if err != nil {
					b.Fatal(err)
				}
				if chunk == nil {
					break
				}
			}
		}
	})
}

// BenchmarkServerThroughput drives the HTTP query service with
// concurrent clients, each running a cursor through a full result set,
// and reports queries/sec and p99 end-to-end latency — the PR 5
// service-layer headline numbers (recorded in BENCH_pr5.json). The
// nocache variant evaluates every query; the cached variant measures the
// result-LRU serving path; the traced variant re-runs nocache with
// "trace": true on every query, so each evaluation builds the full span
// tree and ships it back in the final trailer — the enabled-tracing
// overhead the observability layer must keep marginal.
func BenchmarkServerThroughput(b *testing.B) {
	g := benchGraph()
	queries := []string{
		`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ACYCLIC p = (?x)-[(:Knows|:Likes)+]->(?y)`,
		`MATCH ANY SHORTEST WALK p = (?x)-[(:Likes/:Has_creator)+]->(?y)`,
	}
	const clients = 8
	run := func(b *testing.B, noCache, traced bool) {
		svc, err := server.New(server.Config{
			Graph:       g,
			Engine:      engine.Options{Limits: Limits{MaxLen: 4}},
			MaxInFlight: clients, // admission sized to the client pool
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(svc)
		defer ts.Close()
		defer svc.Close()
		client := ts.Client()
		oneQuery := func(q string) error {
			body, _ := json.Marshal(map[string]any{"query": q, "no_cache": noCache, "trace": traced})
			resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			var qr struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&qr)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if resp.StatusCode != 201 || qr.ID == "" {
				return fmt.Errorf("POST /query status %d id %q", resp.StatusCode, qr.ID)
			}
			for {
				page, err := client.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, qr.ID))
				if err != nil {
					return err
				}
				if page.StatusCode != 200 {
					page.Body.Close()
					return fmt.Errorf("page status %d", page.StatusCode)
				}
				// The trailer is the last line; scan for its done flag.
				done := false
				sc := bufio.NewScanner(page.Body)
				sc.Buffer(make([]byte, 1<<20), 1<<20)
				for sc.Scan() {
					line := sc.Bytes()
					if bytes.Contains(line, []byte(`"done":true`)) {
						done = true
					}
				}
				page.Body.Close()
				if done {
					return nil
				}
			}
		}
		if !noCache { // warm the result LRU
			for _, q := range queries {
				if err := oneQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		}
		var next atomic.Int64
		lats := make([]time.Duration, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(b.N) {
						return
					}
					t0 := time.Now()
					if err := oneQuery(queries[i%int64(len(queries))]); err != nil {
						b.Error(err)
						return
					}
					lats[i] = time.Since(t0)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		b.StopTimer()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/sec")
		p99 := lats[min(len(lats)-1, len(lats)*99/100)]
		b.ReportMetric(float64(p99)/1e6, "p99-ms")
	}
	b.Run("nocache", func(b *testing.B) { run(b, true, false) })
	b.Run("cached", func(b *testing.B) { run(b, false, false) })
	b.Run("traced", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkIngest measures delta-apply throughput: the full deterministic
// LDBC-style update stream (8 batches × 16 ops) applied to a live store,
// with compaction disabled, synchronous, and forced-every-batch.
func BenchmarkIngest(b *testing.B) {
	base := benchGraph()
	stream := ldbc.MustUpdateStream(ldbc.UpdateConfig{
		Batches: 8, OpsPerBatch: 16, ExistingPersons: 40, PersonFraction: 0.4, Seed: 7,
	})
	ops := 0
	for _, batch := range stream {
		ops += len(batch.Ops)
	}
	cases := []struct {
		name      string
		threshold int
		compact   bool // force a Compact after every batch
	}{
		{"delta-only", -1, false},
		{"auto-compact-64", 64, false},
		{"compact-every-batch", -1, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewStore(base, StoreOptions{CompactThreshold: tc.threshold})
				for _, batch := range stream {
					if _, err := s.Apply(batch); err != nil {
						b.Fatal(err)
					}
					if tc.compact {
						if err := s.Compact(); err != nil {
							b.Fatal(err)
						}
					}
				}
				s.Close()
			}
			b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}

// BenchmarkQueryUnderIngest measures query latency on a live engine while
// a saturating writer churns batches (and the background compactor folds
// them), against an idle-store baseline. The writer adds a batch of
// person+knows pairs then deletes it, so the graph stays bounded and the
// measured gap is the cost of reading through COW overlays and racing
// epoch swaps, not of a growing result set.
func BenchmarkQueryUnderIngest(b *testing.B) {
	plan := gql.MustCompile(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`)
	run := func(b *testing.B, ingest bool) {
		s := NewStore(benchGraph(), StoreOptions{CompactThreshold: 256})
		defer s.Close()
		eng := NewEngineWithStore(s, engine.Options{Limits: Limits{MaxLen: 5}})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if ingest {
			wg.Add(1)
			go func() {
				defer wg.Done()
				seq := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					add, del := Batch{}, Batch{}
					for k := 0; k < 8; k++ {
						key := fmt.Sprintf("ing%d", seq)
						add.Ops = append(add.Ops,
							Op{Kind: OpAddNode, Key: key, Label: "Person"},
							Op{Kind: OpAddEdge, Key: "e" + key,
								Src: fmt.Sprintf("p%d", seq%40+1), Dst: key, Label: "Knows"})
						del.Ops = append(del.Ops, Op{Kind: OpDelNode, Key: key})
						seq++
					}
					if _, err := s.Apply(add); err != nil {
						b.Error(err)
						return
					}
					if _, err := s.Apply(del); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(plan); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("idle", func(b *testing.B) { run(b, false) })
	b.Run("under-ingest", func(b *testing.B) { run(b, true) })
}

// BenchmarkSnapshotOverlayRead runs the same recursive query over three
// physically distinct but logically related graphs:
//
//   - sealed: a from-scratch Build of base+delta — the pre-PR read path;
//   - empty-delta: a live store holding the same content after compaction
//     (ov == nil) — must allocate identically to sealed, gated in
//     scripts/check_allocs.sh;
//   - with-delta: the same content with the delta still in the COW
//     overlay (ov != nil) — documents the overlay read penalty.
func BenchmarkSnapshotOverlayRead(b *testing.B) {
	base := benchGraph()
	batch := ldbc.MustUpdateStream(ldbc.UpdateConfig{
		Batches: 1, OpsPerBatch: 32, ExistingPersons: 40, PersonFraction: 0.3, Seed: 11,
	})[0]
	plan := gql.MustCompile(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`)
	lim := Limits{MaxLen: 5}

	overlayStore := NewStore(base, StoreOptions{CompactThreshold: -1})
	defer overlayStore.Close()
	if _, err := overlayStore.Apply(batch); err != nil {
		b.Fatal(err)
	}
	withDelta := overlayStore.Graph()

	compactStore := NewStore(base, StoreOptions{CompactThreshold: -1})
	defer compactStore.Close()
	if _, err := compactStore.Apply(batch); err != nil {
		b.Fatal(err)
	}
	if err := compactStore.Compact(); err != nil {
		b.Fatal(err)
	}
	emptyDelta := compactStore.Graph()

	sealed, err := withDelta.Rebuild()
	if err != nil {
		b.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"sealed", sealed},
		{"empty-delta", emptyDelta},
		{"with-delta", withDelta},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustEval(b, tc.g, plan, lim)
			}
		})
	}
}
