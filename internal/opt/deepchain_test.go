package opt_test

import (
	"testing"
	"time"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/opt"
)

func TestDeepChainCardFast(t *testing.T) {
	g := ldbc.Figure1()
	cm := &opt.CostModel{Stats: g.Stats()}
	var plan core.PathExpr = core.Select{Cond: cond.Label(cond.EdgeAt(1), "Knows"), In: core.Edges{}}
	for i := 0; i < 40; i++ {
		plan = core.Join{L: plan, R: core.Select{Cond: cond.Label(cond.EdgeAt(1), "Knows"), In: core.Edges{}}}
	}
	start := time.Now()
	cm.Card(plan)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Card on 40-deep join chain took %v", d)
	}
}
