package opt_test

import (
	"strings"
	"testing"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/opt"
)

func applied(res opt.Result, rule string) bool {
	for _, r := range res.Applied {
		if r == rule {
			return true
		}
	}
	return false
}

func knowsSel() core.Select {
	return core.Select{Cond: cond.Label(cond.EdgeAt(1), "Knows"), In: core.Edges{}}
}

// TestFigure6Pushdown reproduces the paper's Figure 6: the selection
// σ[first.name=Moe] over a join moves onto the join's left input.
func TestFigure6Pushdown(t *testing.T) {
	before := core.Select{
		Cond: cond.Prop(cond.First(), "name", graph.StringValue("Moe")),
		In:   core.Join{L: knowsSel(), R: knowsSel()},
	}
	res := opt.Optimize(before)
	if !applied(res, "pushdown-selection") {
		t.Fatalf("pushdown did not fire; applied = %v", res.Applied)
	}
	want := core.Join{
		L: core.Select{
			Cond: cond.And{
				L: cond.Label(cond.EdgeAt(1), "Knows"),
				R: cond.Prop(cond.First(), "name", graph.StringValue("Moe")),
			},
			In: core.Edges{},
		},
		R: knowsSel(),
	}
	// After pushdown the moved selection merges with the inner one.
	if !core.Equal(res.Plan, want) {
		t.Errorf("optimized plan = %s\nwant %s", res.Plan, want)
	}
}

// TestPushdownLastGoesRight: last-node conditions move to the right join
// input.
func TestPushdownLastGoesRight(t *testing.T) {
	before := core.Select{
		Cond: cond.Prop(cond.Last(), "name", graph.StringValue("Apu")),
		In:   core.Join{L: knowsSel(), R: knowsSel()},
	}
	res := opt.Optimize(before)
	j, ok := res.Plan.(core.Join)
	if !ok {
		t.Fatalf("top = %T, want Join", res.Plan)
	}
	if !strings.Contains(j.R.String(), "Apu") {
		t.Errorf("last-condition not on right input: %s", res.Plan)
	}
	if strings.Contains(j.L.String(), "Apu") {
		t.Errorf("last-condition leaked into left input: %s", res.Plan)
	}
}

// TestPushdownSplitsConjunction: first- and last-conditions of one
// conjunction split across both join inputs; the unsplittable residue
// stays above.
func TestPushdownSplitsConjunction(t *testing.T) {
	before := core.Select{
		Cond: cond.Conj(
			cond.Prop(cond.First(), "name", graph.StringValue("Moe")),
			cond.Prop(cond.Last(), "name", graph.StringValue("Apu")),
			cond.Len(2),
		),
		In: core.Join{L: knowsSel(), R: knowsSel()},
	}
	res := opt.Optimize(before)
	top, ok := res.Plan.(core.Select)
	if !ok {
		t.Fatalf("top = %T, want residual Select", res.Plan)
	}
	if top.Cond.String() != "len() = 2" {
		t.Errorf("residual condition = %s, want len() = 2", top.Cond)
	}
	j, ok := top.In.(core.Join)
	if !ok {
		t.Fatalf("below residual = %T, want Join", top.In)
	}
	if !strings.Contains(j.L.String(), "Moe") || !strings.Contains(j.R.String(), "Apu") {
		t.Errorf("conjuncts not split: %s", res.Plan)
	}
}

// TestPushdownThroughUnion: selections distribute over unions.
func TestPushdownThroughUnion(t *testing.T) {
	before := core.Select{
		Cond: cond.Len(1),
		In:   core.Union{L: knowsSel(), R: core.Nodes{}},
	}
	res := opt.Optimize(before)
	u, ok := res.Plan.(core.Union)
	if !ok {
		t.Fatalf("top = %T, want Union", res.Plan)
	}
	if _, ok := u.R.(core.Select); !ok {
		t.Errorf("selection not distributed to right branch: %s", res.Plan)
	}
}

// TestNoPushdownThroughRecursion: endpoint conditions must NOT cross ϕ
// (intermediate closure paths start anywhere).
func TestNoPushdownThroughRecursion(t *testing.T) {
	before := core.Select{
		Cond: cond.Prop(cond.First(), "name", graph.StringValue("Moe")),
		In:   core.Recurse{Sem: core.Trail, In: knowsSel()},
	}
	res := opt.Optimize(before)
	sel, ok := res.Plan.(core.Select)
	if !ok {
		t.Fatalf("selection moved; top = %T", res.Plan)
	}
	if _, ok := sel.In.(core.Recurse); !ok {
		t.Errorf("selection crossed the recursive operator: %s", res.Plan)
	}
}

// TestPushdownPreservesResults: optimized and unoptimized plans agree on
// the Figure 1 graph for a spread of queries.
func TestPushdownPreservesResults(t *testing.T) {
	g := ldbc.Figure1()
	queries := []string{
		`MATCH TRAIL p = (x {name:"Moe"})-[:Knows/:Knows]->(?y)`,
		`MATCH SIMPLE p = (x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(y {name:"Apu"})`,
		`MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ACYCLIC p = (?x)-[:Knows|:Likes]->(?y) WHERE last.name = "Apu" OR len() = 1`,
		`MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[:Knows*]->(?y) GROUP BY TARGET ORDER BY PATH`,
	}
	for _, qs := range queries {
		plan := gql.MustCompile(qs)
		res := opt.Optimize(plan)
		e1 := engine.New(g, engine.Options{})
		want, err := e1.EvalPaths(plan)
		if err != nil {
			t.Fatalf("%s (unoptimized): %v", qs, err)
		}
		e2 := engine.New(g, engine.Options{})
		got, err := e2.EvalPaths(res.Plan)
		if err != nil {
			t.Fatalf("%s (optimized): %v", qs, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: optimization changed the result\nbefore:\n%s\nafter:\n%s",
				qs, want.Format(g), got.Format(g))
		}
	}
}

// TestWalkToShortestAnyShortest: the §7.3 rewrite turns the diverging
// ANY SHORTEST WALK plan into a terminating ϕShortest plan.
func TestWalkToShortestAnyShortest(t *testing.T) {
	plan := gql.MustCompile(`MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)`)
	res := opt.Optimize(plan)
	if !applied(res, "walk-to-shortest") {
		t.Fatalf("walk-to-shortest did not fire; applied = %v, plan = %s", res.Applied, res.Plan)
	}
	if !strings.Contains(res.Plan.String(), "ϕShortest") {
		t.Errorf("rewritten plan lacks ϕShortest: %s", res.Plan)
	}
	// The rewritten plan terminates on the cyclic Figure 1 graph with no
	// budget...
	g := ldbc.Figure1()
	eng := engine.New(g, engine.Options{})
	got, err := eng.EvalPaths(res.Plan)
	if err != nil {
		t.Fatalf("optimized plan failed: %v", err)
	}
	// ...and returns one shortest path per connected (s,t) pair of the
	// Knows closure: 9 pairs.
	if got.Len() != 9 {
		t.Errorf("ANY SHORTEST result = %d paths, want 9", got.Len())
	}
	// The unoptimized plan diverges (budget error) on the same graph.
	eng2 := engine.New(g, engine.Options{Limits: core.Limits{MaxPaths: 10000}})
	if _, err := eng2.EvalPaths(plan); err == nil {
		t.Error("unoptimized ANY SHORTEST WALK should exceed budget on a cyclic graph")
	}
}

// TestWalkToShortestAllShortest covers the τG/γSTL pattern.
func TestWalkToShortestAllShortest(t *testing.T) {
	plan := gql.MustCompile(`MATCH ALL SHORTEST WALK p = (?x)-[:Knows+]->(?y)`)
	res := opt.Optimize(plan)
	if !applied(res, "walk-to-shortest") {
		t.Fatalf("walk-to-shortest did not fire on ALL SHORTEST; plan = %s", res.Plan)
	}
	g := ldbc.Figure1()
	eng := engine.New(g, engine.Options{})
	got, err := eng.EvalPaths(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	// All shortest Knows+ paths per pair — exactly ϕShortest's output (9).
	if got.Len() != 9 {
		t.Errorf("ALL SHORTEST = %d paths, want 9", got.Len())
	}
}

// TestWalkToShortestGlobal covers the paper's π(1,1,*)(τG(γL(ϕWalk)))
// example.
func TestWalkToShortestGlobal(t *testing.T) {
	plan := core.Project{
		Parts: core.NCount(1), Groups: core.NCount(1), Paths: core.AllCount(),
		In: core.OrderBy{Key: core.OrderGroup,
			In: core.GroupBy{Key: core.GroupLength,
				In: core.Recurse{Sem: core.Walk, In: knowsSel()}}},
	}
	res := opt.Optimize(plan)
	if !applied(res, "walk-to-shortest") {
		t.Fatalf("walk-to-shortest did not fire; plan = %s", res.Plan)
	}
	g := ldbc.Figure1()
	eng := engine.New(g, engine.Options{})
	got, err := eng.EvalPaths(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	// Globally shortest Knows+ walks: the four single edges.
	if got.Len() != 4 {
		t.Errorf("global shortest = %d paths, want 4:\n%s", got.Len(), got.Format(g))
	}
}

// TestWalkToShortestRespectsLengthFilter: a len() filter between the
// pipeline and ϕWalk blocks the rewrite.
func TestWalkToShortestRespectsLengthFilter(t *testing.T) {
	plan := core.Project{
		Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
		In: core.OrderBy{Key: core.OrderPath,
			In: core.GroupBy{Key: core.GroupST,
				In: core.Select{
					Cond: cond.LenCmp{Op: cond.GE, K: 2},
					In:   core.Recurse{Sem: core.Walk, In: knowsSel()}}}},
	}
	res := opt.Optimize(plan)
	if strings.Contains(res.Plan.String(), "ϕShortest") {
		t.Errorf("rewrite crossed a length filter: %s", res.Plan)
	}
}

// TestWalkToShortestNotForShortestK: SHORTEST k with k > 1 must keep Walk
// (the 2nd-shortest path would be lost).
func TestWalkToShortestNotForShortestK(t *testing.T) {
	plan := gql.MustCompile(`MATCH SHORTEST 2 WALK p = (?x)-[:Knows+]->(?y)`)
	res := opt.Optimize(plan)
	if strings.Contains(res.Plan.String(), "ϕShortest") {
		t.Errorf("SHORTEST 2 must not rewrite to ϕShortest: %s", res.Plan)
	}
}

// TestDropNoopOrderBy reproduces the §6 redundancy example: τPG over γ∅ is
// a no-op and disappears.
func TestDropNoopOrderBy(t *testing.T) {
	plan := core.Project{
		Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
		In: core.OrderBy{Key: core.OrderPartition | core.OrderGroup,
			In: core.GroupBy{Key: core.GroupNone,
				In: core.Recurse{Sem: core.Trail, In: knowsSel()}}},
	}
	res := opt.Optimize(plan)
	if !applied(res, "drop-noop-orderby") {
		t.Fatalf("drop-noop-orderby did not fire; plan = %s", res.Plan)
	}
	proj, ok := res.Plan.(core.Project)
	if !ok {
		t.Fatalf("top = %T", res.Plan)
	}
	if _, ok := proj.In.(core.GroupBy); !ok {
		t.Errorf("order-by not removed: %s", res.Plan)
	}
}

// TestDropOrderByPartialBits: only the no-op components vanish.
func TestDropOrderByPartialBits(t *testing.T) {
	plan := core.Project{
		Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
		In: core.OrderBy{Key: core.OrderPartition | core.OrderGroup | core.OrderPath,
			In: core.GroupBy{Key: core.GroupST,
				In: core.Recurse{Sem: core.Trail, In: knowsSel()}}},
	}
	res := opt.Optimize(plan)
	proj := res.Plan.(core.Project)
	ord, ok := proj.In.(core.OrderBy)
	if !ok {
		t.Fatalf("order-by fully removed: %s", res.Plan)
	}
	// γST has partitions (P meaningful) but one group each (G is no-op).
	if ord.Key != core.OrderPartition|core.OrderPath {
		t.Errorf("order key = %s, want PA", ord.Key)
	}
}

// TestMergeSelections: stacked σ collapse into one conjunction.
func TestMergeSelections(t *testing.T) {
	plan := core.Select{
		Cond: cond.Len(1),
		In: core.Select{
			Cond: cond.Label(cond.EdgeAt(1), "Knows"),
			In:   core.Recurse{Sem: core.Trail, In: knowsSel()},
		},
	}
	res := opt.Optimize(plan)
	if !applied(res, "merge-selections") {
		t.Fatalf("merge did not fire; applied = %v", res.Applied)
	}
	sel, ok := res.Plan.(core.Select)
	if !ok {
		t.Fatalf("top = %T", res.Plan)
	}
	if _, ok := sel.In.(core.Recurse); !ok {
		t.Errorf("selections not merged: %s", res.Plan)
	}
}

// TestOptimizeIdempotent: a second pass over an optimized plan changes
// nothing.
func TestOptimizeIdempotent(t *testing.T) {
	queries := []string{
		`MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)`,
		`MATCH SIMPLE p = (x {name:"Moe"})-[:Knows/:Knows]->(y {name:"Apu"})`,
	}
	for _, qs := range queries {
		first := opt.Optimize(gql.MustCompile(qs))
		second := opt.Optimize(first.Plan)
		if len(second.Applied) != 0 {
			t.Errorf("%s: second pass applied %v", qs, second.Applied)
		}
		if !core.Equal(first.Plan, second.Plan) {
			t.Errorf("%s: second pass changed the plan", qs)
		}
	}
}

// TestOptimizeReducesIntermediates: pushdown shrinks the engine's
// intermediate result counts on the Figure 1 graph (the Figure 6 claim).
func TestOptimizeReducesIntermediates(t *testing.T) {
	g := ldbc.Figure1()
	plan := gql.MustCompile(`MATCH TRAIL p = (x {name:"Moe"})-[:Knows/:Knows]->(?y)`)
	e1 := engine.New(g, engine.Options{})
	if _, err := e1.EvalPaths(plan); err != nil {
		t.Fatal(err)
	}
	res := opt.Optimize(plan)
	e2 := engine.New(g, engine.Options{})
	if _, err := e2.EvalPaths(res.Plan); err != nil {
		t.Fatal(err)
	}
	if e2.Stats().JoinProbes >= e1.Stats().JoinProbes {
		t.Errorf("optimization did not reduce join probes: %d vs %d",
			e2.Stats().JoinProbes, e1.Stats().JoinProbes)
	}
}
