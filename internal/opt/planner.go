package opt

import (
	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/stats"
)

// The cost-based planner. Plan runs the heuristic rule set (with the
// Walk→Shortest rewrite estimate-gated) and then two statistics-driven
// passes over the tree:
//
//   - reassociate-joins: multi-join chains re-parenthesize by the
//     matrix-chain dynamic program over estimated intermediate
//     cardinalities (path join is associative but not commutative, so
//     only the association order is free);
//   - choose-backward: pattern-shaped recursions evaluate backward —
//     reversed automaton over the in-adjacency, seeded at path targets —
//     when the target side (seed count × first-step fan-out) is
//     estimated cheaper than the source side.
//
// Both passes fire only in order-insensitive contexts: below a projection
// that truncates (π with any non-* bound) the tie-breaking order of the
// solution space is user-visible, and a plan change that reorders result
// construction could change which representative survives. There the
// planner leaves the shape alone — a wrong cost model may change speed,
// never results.
//
// Budget caveat: "never results" holds for successful evaluations. A plan
// that runs under a tight Limits.MaxWork/MaxPaths budget charges work in
// plan-dependent amounts, so a cheaper planned plan can complete where
// the unplanned one trips ErrBudgetExceeded (the cheaper plan finishing
// is the point of planning). Budgets bound resources, they are not part
// of the query's semantics.

const (
	// keepWalkMaxCard is the estimated walk-closure size under which the
	// gated Walk→Shortest rewrite keeps the Walk recursion (set-determined
	// pipelines with a MaxLen bound only; see walkToShortestGated).
	keepWalkMaxCard = 256
	// backwardBias is the advantage factor backward evaluation must show
	// before it is chosen: ties and near-ties stay forward, the
	// well-trodden default.
	backwardBias = 0.75
	// maxChainDP bounds the join-chain length fed to the O(n³) DP.
	maxChainDP = 16
)

// Plan is the cost-based counterpart of Optimize: it needs the target
// graph's statistics (graph.Stats()) and the evaluation limits the plan
// will run under. A nil model (or one without statistics) degrades to the
// heuristic Optimize.
func Plan(plan core.PathExpr, cm *CostModel) Result {
	if cm == nil || cm.Stats == nil {
		return Optimize(plan)
	}
	res := applyRules(plan, plannerRules(cm))
	w := &costWalker{cm: cm}
	p := w.path(res.Plan, false)
	res.Plan = p
	res.Applied = append(res.Applied, w.applied...)
	return res
}

// plannerRules is the heuristic rule list with the Walk→Shortest rewrite
// gated by the cost model.
func plannerRules(cm *CostModel) []rule {
	keep := func(grp core.GroupBy) bool {
		return cm.Limits.MaxLen > 0 && cm.Card(grp.In) <= keepWalkMaxCard
	}
	out := make([]rule, len(rules))
	copy(out, rules)
	for i, r := range out {
		if r.name == "walk-to-shortest" {
			out[i] = rule{name: r.name, fn: func(e core.PathExpr) (core.PathExpr, bool) {
				return walkToShortestGated(e, keep)
			}}
		}
	}
	return out
}

// costWalker applies the statistics-driven passes with order-sensitivity
// context threaded top-down.
type costWalker struct {
	cm      *CostModel
	applied []string
}

func (w *costWalker) note(name string) {
	for _, n := range w.applied {
		if n == name {
			return
		}
	}
	w.applied = append(w.applied, name)
}

func (w *costWalker) path(e core.PathExpr, sensitive bool) core.PathExpr {
	switch x := e.(type) {
	case core.Select:
		if rec, ok := x.In.(core.Recurse); ok {
			x.In = w.recurse(rec, x.Cond, sensitive)
			return x
		}
		x.In = w.path(x.In, sensitive)
		return x
	case core.Join:
		x.L = w.path(x.L, sensitive)
		x.R = w.path(x.R, sensitive)
		if !sensitive {
			if t, fired := w.reassociate(x); fired {
				w.note("reassociate-joins")
				return t
			}
		}
		return x
	case core.Union:
		x.L = w.path(x.L, sensitive)
		x.R = w.path(x.R, sensitive)
		return x
	case core.Recurse:
		return w.recurse(x, nil, sensitive)
	case core.Restrict:
		x.In = w.path(x.In, sensitive)
		return x
	case core.Project:
		truncating := !(x.Parts.All && x.Groups.All && x.Paths.All)
		x.In = w.space(x.In, sensitive || truncating)
		return x
	default:
		return e
	}
}

func (w *costWalker) space(e core.SpaceExpr, sensitive bool) core.SpaceExpr {
	switch x := e.(type) {
	case core.GroupBy:
		x.In = w.path(x.In, sensitive)
		return x
	case core.OrderBy:
		x.In = w.space(x.In, sensitive)
		return x
	default:
		return e
	}
}

// recurse decides the evaluation direction of one recursion, optionally
// under the selection condition that will seed it, then descends into the
// base for nested joins.
func (w *costWalker) recurse(rec core.Recurse, c cond.Cond, sensitive bool) core.Recurse {
	rec.In = w.path(rec.In, sensitive)
	if sensitive || rec.Dir != core.Forward {
		return rec
	}
	info, ok := patternEndpoints(rec.In)
	if !ok {
		return rec
	}
	st := w.cm.Stats
	firstSel, lastSel := 1.0, 1.0
	if c != nil {
		first, last, _ := SplitByEndpoint(c)
		for _, fc := range first {
			firstSel *= w.cm.Selectivity(fc)
		}
		for _, lc := range last {
			lastSel *= w.cm.Selectivity(lc)
		}
	}
	fwdSeeds, fwdFan := endpointCost(st, info.first, info.firstAny, false)
	bwdSeeds, bwdFan := endpointCost(st, info.last, info.lastAny, true)
	fwdCost := fwdSeeds * firstSel * (1 + fwdFan)
	bwdCost := bwdSeeds * lastSel * (1 + bwdFan)
	if bwdCost < backwardBias*fwdCost {
		rec.Dir = core.Backward
		w.note("choose-backward")
	}
	return rec
}

// patternEndpoints extracts the label sets a pattern-shaped recursion
// base can start and end with — the same shapes the engine's expansion
// fast path recognizes (σ[label(edge(1)) = L](Edges), Edges, joins and
// unions of such). ok is false for any other shape; those evaluate via
// the generic closure, where direction has no meaning.
type endpointInfo struct {
	first, last       map[string]bool
	firstAny, lastAny bool
}

func patternEndpoints(e core.PathExpr) (endpointInfo, bool) {
	switch x := e.(type) {
	case core.Edges:
		return endpointInfo{firstAny: true, lastAny: true}, true
	case core.Select:
		lc, ok := x.Cond.(cond.LabelCmp)
		if !ok || lc.Op != cond.EQ || lc.Target.Kind != cond.TargetEdge || lc.Target.Pos != 1 {
			return endpointInfo{}, false
		}
		if _, ok := x.In.(core.Edges); !ok {
			return endpointInfo{}, false
		}
		set := map[string]bool{lc.Value: true}
		return endpointInfo{first: set, last: set}, true
	case core.Join:
		l, ok := patternEndpoints(x.L)
		if !ok {
			return endpointInfo{}, false
		}
		r, ok := patternEndpoints(x.R)
		if !ok {
			return endpointInfo{}, false
		}
		return endpointInfo{
			first: l.first, firstAny: l.firstAny,
			last: r.last, lastAny: r.lastAny,
		}, true
	case core.Union:
		l, ok := patternEndpoints(x.L)
		if !ok {
			return endpointInfo{}, false
		}
		r, ok := patternEndpoints(x.R)
		if !ok {
			return endpointInfo{}, false
		}
		return endpointInfo{
			first: unionSet(l.first, r.first), firstAny: l.firstAny || r.firstAny,
			last: unionSet(l.last, r.last), lastAny: l.lastAny || r.lastAny,
		}, true
	default:
		return endpointInfo{}, false
	}
}

func unionSet(a, b map[string]bool) map[string]bool {
	if a == nil {
		return b
	}
	out := make(map[string]bool, len(a)+len(b))
	for l := range a {
		out[l] = true
	}
	for l := range b {
		out[l] = true
	}
	return out
}

// endpointCost aggregates seed count and first-step fan-out for one side
// of a pattern: the distinct sources (targets) of the labels the pattern
// can start (end) with, and the average matching degree of those nodes.
func endpointCost(st *stats.Stats, labels map[string]bool, any bool, backward bool) (seeds, fanout float64) {
	var distinct, edges float64
	if any {
		sym := &st.Any
		if backward {
			distinct, edges = float64(sym.DistinctDst), float64(sym.Edges)
		} else {
			distinct, edges = float64(sym.DistinctSrc), float64(sym.Edges)
		}
	} else {
		for l := range labels {
			sym := st.SymbolByLabel(l)
			if sym == nil {
				continue
			}
			if backward {
				distinct += float64(sym.DistinctDst)
			} else {
				distinct += float64(sym.DistinctSrc)
			}
			edges += float64(sym.Edges)
		}
	}
	if distinct > float64(st.Nodes) {
		distinct = float64(st.Nodes)
	}
	if distinct <= 0 {
		return 0, 0
	}
	return distinct, edges / distinct
}

// reassociate re-parenthesizes the join chain rooted at j by the
// matrix-chain DP minimizing the summed estimated cardinalities of every
// intermediate join result. Fired is false when the optimum is the shape
// the chain already has.
func (w *costWalker) reassociate(j core.Join) (core.PathExpr, bool) {
	ops := flattenJoin(j, nil)
	n := len(ops)
	if n < 3 || n > maxChainDP {
		return j, false
	}
	card := make([]float64, n)
	dFirst := make([]float64, n)
	dLast := make([]float64, n)
	for i, op := range ops {
		card[i] = w.cm.Card(op)
		dFirst[i] = w.cm.DistinctFirst(op)
		dLast[i] = w.cm.DistinctLast(op)
	}
	type cell struct {
		cost, card float64
		split      int
	}
	tab := make([][]cell, n)
	for i := range tab {
		tab[i] = make([]cell, n)
		tab[i][i] = cell{cost: 0, card: card[i], split: -1}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span-1 < n; i++ {
			jj := i + span - 1
			best := cell{cost: -1}
			for k := i; k < jj; k++ {
				out := w.cm.joinCard(tab[i][k].card, tab[k+1][jj].card, dLast[k], dFirst[k+1])
				c := tab[i][k].cost + tab[k+1][jj].cost + out
				if best.cost < 0 || c < best.cost {
					best = cell{cost: c, card: out, split: k}
				}
			}
			tab[i][jj] = best
		}
	}
	var rebuild func(i, jj int) core.PathExpr
	rebuild = func(i, jj int) core.PathExpr {
		if i == jj {
			return ops[i]
		}
		k := tab[i][jj].split
		return core.Join{L: rebuild(i, k), R: rebuild(k+1, jj)}
	}
	out := rebuild(0, n-1)
	if out.String() == j.String() {
		return j, false
	}
	return out, true
}

// flattenJoin lists the operands of a join chain left to right.
func flattenJoin(e core.PathExpr, out []core.PathExpr) []core.PathExpr {
	if j, ok := e.(core.Join); ok {
		out = flattenJoin(j.L, out)
		return flattenJoin(j.R, out)
	}
	return append(out, e)
}
