package opt_test

import (
	"strings"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/opt"
)

func TestDropRedundantRestrictWalk(t *testing.T) {
	plan := core.Restrict{Sem: core.Walk, In: knowsSel()}
	res := opt.Optimize(plan)
	if !applied(res, "drop-redundant-restrict") {
		t.Fatalf("rule did not fire; applied = %v", res.Applied)
	}
	if !core.Equal(res.Plan, knowsSel()) {
		t.Errorf("ρWalk not removed: %s", res.Plan)
	}
}

func TestDropRedundantRestrictOverSameRecursion(t *testing.T) {
	for _, sem := range []core.Semantics{core.Trail, core.Acyclic, core.Simple, core.Shortest} {
		plan := core.Restrict{Sem: sem, In: core.Recurse{Sem: sem, In: knowsSel()}}
		res := opt.Optimize(plan)
		if _, still := res.Plan.(core.Restrict); still {
			t.Errorf("ρ%s(ϕ%s) not simplified: %s", sem, sem, res.Plan)
		}
	}
}

func TestKeepRestrictOverDifferentRecursion(t *testing.T) {
	// ρTrail(ϕWalk(X)) genuinely filters; it must stay.
	plan := core.Restrict{Sem: core.Trail, In: core.Recurse{Sem: core.Walk, In: knowsSel()}}
	res := opt.Optimize(plan)
	if _, ok := res.Plan.(core.Restrict); !ok {
		t.Errorf("ρTrail over ϕWalk wrongly removed: %s", res.Plan)
	}
}

func TestDropIdempotentRestrict(t *testing.T) {
	plan := core.Restrict{Sem: core.Simple,
		In: core.Restrict{Sem: core.Simple, In: knowsSel()}}
	res := opt.Optimize(plan)
	if strings.Count(res.Plan.String(), "ρSimple") != 1 {
		t.Errorf("stacked ρSimple not collapsed: %s", res.Plan)
	}
}

// TestRestrictSimplificationPreservesResults: the rule is semantics-
// preserving on composed plans.
func TestRestrictSimplificationPreservesResults(t *testing.T) {
	g := ldbc.Figure1()
	sub := core.Recurse{Sem: core.Trail, In: knowsSel()}
	plans := []core.PathExpr{
		core.Restrict{Sem: core.Trail, In: sub},
		core.Restrict{Sem: core.Walk, In: core.Join{L: sub, R: sub}},
		core.Restrict{Sem: core.Acyclic, In: core.Restrict{Sem: core.Acyclic, In: sub}},
	}
	for _, plan := range plans {
		want, err := engine.New(g, engine.Options{}).EvalPaths(plan)
		if err != nil {
			t.Fatal(err)
		}
		res := opt.Optimize(plan)
		got, err := engine.New(g, engine.Options{}).EvalPaths(res.Plan)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: simplification changed results (%d vs %d)",
				plan, got.Len(), want.Len())
		}
	}
}
