// Package opt implements the planner: the logical plan rewrites of §7.3
// of the paper plus a statistics-driven cost-based layer.
//
// The heuristic rule set (Optimize) needs no statistics:
//
//   - merge-selections: σc1(σc2(x)) → σ(c2 ∧ c1)(x);
//   - pushdown-selection: the Figure 6 rewrite moving selections through
//     unions and (for single-endpoint conjuncts) joins;
//   - drop-redundant-restrict: ρWalk(x) = x, ρSem(ϕSem(x)) = ϕSem(x),
//     ρSem(ρSem(x)) = ρSem(x);
//   - walk-to-shortest: the §7.3 recursion rewrite turning diverging
//     ϕWalk pipelines under shortest-consuming projections into
//     terminating ϕShortest plans;
//   - drop-noop-orderby: τ components that cannot affect projection
//     disappear (the §6 τPG-over-γ∅ example).
//
// The cost-based layer (Plan) consults the graph statistics collected at
// build time (internal/stats, exposed as graph.Stats()) through a
// CostModel that estimates the cardinality of every algebra operator —
// σ selectivity from label counts, ⋈ via the distinct-endpoint-count
// estimate, ϕ via per-symbol fan-out raised to a bounded depth horizon.
// Three statistics-driven decisions use the estimates:
//
//   - reassociate-joins: multi-join chains re-parenthesize by the
//     matrix-chain DP over estimated intermediate cardinalities;
//   - choose-backward: pattern recursions evaluate backward (reversed
//     automaton over in-edges, seeded at path targets) when the target
//     side is estimated cheaper — PathFinder's direction choice;
//   - the walk-to-shortest gate: set-determined pipelines with a MaxLen
//     bound keep a cheap Walk recursion instead of paying the two-phase
//     Shortest evaluation.
//
// Every cost-based decision is restricted to order-insensitive contexts
// (no truncating projection above), so a wrong estimate can change speed
// but never results — the invariant the randomized differential harness
// in internal/engine enforces. Every rule records its name so tests and
// the CLI -explain flag can show what fired.
package opt

import (
	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
)

// Result is an optimized plan together with the rules that fired, in
// application order.
type Result struct {
	Plan    core.PathExpr
	Applied []string
}

// maxRounds bounds rule application; each round applies every rule once
// over the whole tree, and rewriting stops as soon as a round changes
// nothing.
const maxRounds = 10

// Optimize rewrites the plan to a cheaper equivalent using the heuristic
// rule set alone. The cost-based entry point Plan additionally consults
// graph statistics; Optimize remains the statistics-free baseline (and
// the planner-off engine path).
func Optimize(plan core.PathExpr) Result {
	return applyRules(plan, rules)
}

// applyRules drives a rule list to fixpoint (bounded by maxRounds).
func applyRules(plan core.PathExpr, rs []rule) Result {
	res := Result{Plan: plan}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, r := range rs {
			p, fired := rewritePath(res.Plan, r.fn)
			if fired {
				res.Plan = p
				res.Applied = append(res.Applied, r.name)
				changed = true
			}
		}
		if !changed {
			return res
		}
	}
	return res
}

type rule struct {
	name string
	fn   func(core.PathExpr) (core.PathExpr, bool)
}

// rules lists the rewrites in application order. Merging runs before
// splitting-based pushdown so stacked selections are normalized first.
var rules = []rule{
	{name: "merge-selections", fn: mergeSelections},
	{name: "pushdown-selection", fn: pushdownSelection},
	{name: "drop-redundant-restrict", fn: dropRedundantRestrict},
	{name: "walk-to-shortest", fn: walkToShortest},
	{name: "drop-noop-orderby", fn: dropNoopOrderBy},
}

// rewritePath applies fn once at every node of the tree, bottom-up,
// rebuilding only along changed spines.
func rewritePath(e core.PathExpr, fn func(core.PathExpr) (core.PathExpr, bool)) (core.PathExpr, bool) {
	var changed bool
	switch x := e.(type) {
	case core.Select:
		in, c := rewritePath(x.In, fn)
		if c {
			x.In, changed = in, true
		}
		e = x
	case core.Join:
		l, cl := rewritePath(x.L, fn)
		r, cr := rewritePath(x.R, fn)
		if cl || cr {
			x.L, x.R, changed = l, r, true
		}
		e = x
	case core.Union:
		l, cl := rewritePath(x.L, fn)
		r, cr := rewritePath(x.R, fn)
		if cl || cr {
			x.L, x.R, changed = l, r, true
		}
		e = x
	case core.Recurse:
		in, c := rewritePath(x.In, fn)
		if c {
			x.In, changed = in, true
		}
		e = x
	case core.Restrict:
		in, c := rewritePath(x.In, fn)
		if c {
			x.In, changed = in, true
		}
		e = x
	case core.Project:
		in, c := rewriteSpace(x.In, fn)
		if c {
			x.In, changed = in, true
		}
		e = x
	}
	if out, fired := fn(e); fired {
		return out, true
	}
	return e, changed
}

func rewriteSpace(e core.SpaceExpr, fn func(core.PathExpr) (core.PathExpr, bool)) (core.SpaceExpr, bool) {
	switch x := e.(type) {
	case core.GroupBy:
		in, c := rewritePath(x.In, fn)
		if c {
			x.In = in
			return x, true
		}
		return x, false
	case core.OrderBy:
		in, c := rewriteSpace(x.In, fn)
		if c {
			x.In = in
			return x, true
		}
		return x, false
	default:
		return e, false
	}
}

// mergeSelections rewrites σc1(σc2(x)) to σ(c2 ∧ c1)(x).
func mergeSelections(e core.PathExpr) (core.PathExpr, bool) {
	outer, ok := e.(core.Select)
	if !ok {
		return e, false
	}
	inner, ok := outer.In.(core.Select)
	if !ok {
		return e, false
	}
	return core.Select{Cond: cond.And{L: inner.Cond, R: outer.Cond}, In: inner.In}, true
}

// pushdownSelection implements the Figure 6 rewrite. A selection over a
// join, union or projection moves toward the data:
//
//   - σc(L ∪ R)  →  σc(L) ∪ σc(R)                     (always valid)
//   - σc(L ⋈ R)  →  σc(L) ⋈ R   when c only constrains the first node
//     (First of a concatenation is First of its left operand)
//   - σc(L ⋈ R)  →  L ⋈ σc(R)   when c only constrains the last node
//
// Conjunctions are split so that pushable conjuncts move independently.
func pushdownSelection(e core.PathExpr) (core.PathExpr, bool) {
	sel, ok := e.(core.Select)
	if !ok {
		return e, false
	}
	switch in := sel.In.(type) {
	case core.Union:
		return core.Union{
			L: core.Select{Cond: sel.Cond, In: in.L},
			R: core.Select{Cond: sel.Cond, In: in.R},
		}, true
	case core.Join:
		first, last, rest := SplitByEndpoint(sel.Cond)
		if len(first) == 0 && len(last) == 0 {
			return e, false
		}
		l := in.L
		if len(first) > 0 {
			l = core.Select{Cond: cond.Conj(first...), In: l}
		}
		r := in.R
		if len(last) > 0 {
			r = core.Select{Cond: cond.Conj(last...), In: r}
		}
		var out core.PathExpr = core.Join{L: l, R: r}
		if len(rest) > 0 {
			out = core.Select{Cond: cond.Conj(rest...), In: out}
		}
		return out, true
	default:
		return e, false
	}
}

// SplitByEndpoint partitions the conjuncts of c into those that only
// constrain the first node, those that only constrain the last node, and
// the rest. Non-conjunctive structure (OR, NOT) stays in rest unless it
// wholly targets one endpoint. Besides the pushdown rewrite, the engine
// uses the split to seed directed product searches: a first-only (last-
// only) conjunct's value on a path is determined by the path's first
// (last) node alone, so it can restrict the seed set of a forward
// (backward) search instead of filtering afterwards.
func SplitByEndpoint(c cond.Cond) (first, last, rest []cond.Cond) {
	for _, conj := range conjuncts(c) {
		switch endpointOf(conj) {
		case endpointFirst:
			first = append(first, conj)
		case endpointLast:
			last = append(last, conj)
		default:
			rest = append(rest, conj)
		}
	}
	return first, last, rest
}

func conjuncts(c cond.Cond) []cond.Cond {
	if a, ok := c.(cond.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []cond.Cond{c}
}

type endpoint uint8

const (
	endpointMixed endpoint = iota
	endpointFirst
	endpointLast
)

// endpointOf classifies a condition as touching only the first node, only
// the last node, or anything else. Only such single-endpoint conditions
// commute with the path join.
func endpointOf(c cond.Cond) endpoint {
	switch c := c.(type) {
	case cond.LabelCmp:
		return endpointOfTarget(c.Target)
	case cond.PropCmp:
		return endpointOfTarget(c.Target)
	case cond.And:
		return combineEndpoints(endpointOf(c.L), endpointOf(c.R))
	case cond.Or:
		return combineEndpoints(endpointOf(c.L), endpointOf(c.R))
	case cond.Not:
		return endpointOf(c.C)
	default:
		return endpointMixed
	}
}

func endpointOfTarget(t cond.Target) endpoint {
	switch t.Kind {
	case cond.TargetFirst:
		return endpointFirst
	case cond.TargetLast:
		return endpointLast
	case cond.TargetNode:
		if t.Pos == 1 {
			return endpointFirst
		}
		return endpointMixed
	default:
		return endpointMixed
	}
}

func combineEndpoints(a, b endpoint) endpoint {
	if a == b {
		return a
	}
	return endpointMixed
}

// dropRedundantRestrict removes restriction operators that cannot filter
// anything:
//
//   - ρWalk(X) = X (Walk admits every path);
//   - ρSem(ϕSem(X)) = ϕSem(X): the recursion's own semantics already
//     guarantees admissibility — including Shortest, where re-taking
//     per-pair minima of a set of per-pair minima is the identity;
//   - ρSem(ρSem(X)) = ρSem(X) (restriction is idempotent).
func dropRedundantRestrict(e core.PathExpr) (core.PathExpr, bool) {
	r, ok := e.(core.Restrict)
	if !ok {
		return e, false
	}
	if r.Sem == core.Walk {
		return r.In, true
	}
	switch in := r.In.(type) {
	case core.Recurse:
		if in.Sem == r.Sem {
			return in, true
		}
	case core.Restrict:
		if in.Sem == r.Sem {
			return in, true
		}
	}
	return e, false
}

// walkToShortest implements the §7.3 recursion rewrite: extended-algebra
// pipelines that only ever consume minimal-length paths can evaluate the
// recursion under Shortest semantics instead of Walk, turning a plan that
// diverges on cyclic graphs into one that always terminates.
//
// Recognized pipelines (X below is the pattern subtree, whose outermost
// recursion must be ϕWalk):
//
//   - π(_, _, 1)(τA(γST(X)))       ("ANY SHORTEST": one path per
//     endpoint pair, ranked by length)
//   - π(_, 1, _)(τG(γSTL(X)))      ("ALL SHORTEST": first length-group
//     per endpoint pair)
//   - π(1, 1, _)(τG(γL(X)))        (paper's §7.3 example: globally
//     shortest paths)
func walkToShortest(e core.PathExpr) (core.PathExpr, bool) {
	return walkToShortestGated(e, nil)
}

// walkToShortestGated is walkToShortest with an optional estimate gate:
// when keepWalk is non-nil and the pipeline's result is fully determined
// as a SET (no path-level truncation, so walk-order ties cannot leak into
// the answer), keepWalk may veto the rewrite — the cost-based planner
// does so when the walk closure is estimated cheap enough that the
// two-phase shortest machinery would cost more than it saves. Pipelines
// that pick single representative paths (ANY SHORTEST) always rewrite:
// there the Shortest evaluator also guarantees termination of otherwise
// diverging plans, and the gate must never trade that away on plans whose
// representative choice could shift.
func walkToShortestGated(e core.PathExpr, keepWalk func(core.GroupBy) bool) (core.PathExpr, bool) {
	proj, ok := e.(core.Project)
	if !ok {
		return e, false
	}
	ord, ok := proj.In.(core.OrderBy)
	if !ok {
		return e, false
	}
	grp, ok := ord.In.(core.GroupBy)
	if !ok {
		return e, false
	}
	// Descending projections consume the LONGEST paths/groups; those must
	// keep the Walk recursion.
	if proj.Parts.Desc || proj.Groups.Desc || proj.Paths.Desc {
		return e, false
	}
	matches, setDetermined := false, false
	switch {
	case ord.Key == core.OrderPath && grp.Key == core.GroupST &&
		!proj.Paths.All && proj.Paths.N == 1:
		matches = true
		// π(_,_,1): one representative per pair — order-sensitive.
	case ord.Key == core.OrderGroup && grp.Key == core.GroupSTL &&
		!proj.Groups.All && proj.Groups.N == 1:
		matches = true
		// ALL SHORTEST keeps every minimal path per pair: the result is a
		// set-determined function of the input when no other level
		// truncates (length ranks within a partition are distinct, so
		// the group pick is unique).
		setDetermined = proj.Parts.All && proj.Paths.All
	case ord.Key == core.OrderGroup && grp.Key == core.GroupLength &&
		!proj.Parts.All && proj.Parts.N == 1 &&
		!proj.Groups.All && proj.Groups.N == 1:
		matches = true
		// γL builds a single partition; picking its unique minimal-length
		// group is set-determined as long as the paths level keeps all.
		setDetermined = proj.Paths.All
	}
	if !matches {
		return e, false
	}
	if keepWalk != nil && setDetermined && keepWalk(grp) {
		return e, false
	}
	in, changed := replaceWalkRecursions(grp.In)
	if !changed {
		return e, false
	}
	grp.In = in
	ord.In = grp
	proj.In = ord
	return proj, true
}

// replaceWalkRecursions swaps ϕWalk for ϕShortest in the pattern subtree.
// It only descends through selections, joins and unions — the operators a
// compiled path pattern is made of — and does not cross nested extended
// pipelines.
func replaceWalkRecursions(e core.PathExpr) (core.PathExpr, bool) {
	switch x := e.(type) {
	case core.Recurse:
		if x.Sem == core.Walk {
			x.Sem = core.Shortest
			return x, true
		}
		return x, false
	case core.Select:
		// A selection between the pipeline and the recursion is only safe
		// to cross when it constrains endpoints: filtering by length or
		// interior positions after ϕShortest would see fewer paths than
		// after ϕWalk.
		if !endpointsOnly(x.Cond) {
			return x, false
		}
		in, c := replaceWalkRecursions(x.In)
		x.In = in
		return x, c
	case core.Join:
		l, cl := replaceWalkRecursions(x.L)
		r, cr := replaceWalkRecursions(x.R)
		x.L, x.R = l, r
		return x, cl || cr
	case core.Union:
		l, cl := replaceWalkRecursions(x.L)
		r, cr := replaceWalkRecursions(x.R)
		x.L, x.R = l, r
		return x, cl || cr
	default:
		return e, false
	}
}

// endpointsOnly reports whether the condition touches only the first and
// last nodes of a path (no length tests, no interior positions).
func endpointsOnly(c cond.Cond) bool {
	switch c := c.(type) {
	case cond.LabelCmp:
		return endpointOfTarget(c.Target) != endpointMixed
	case cond.PropCmp:
		return endpointOfTarget(c.Target) != endpointMixed
	case cond.And:
		return endpointsOnly(c.L) && endpointsOnly(c.R)
	case cond.Or:
		return endpointsOnly(c.L) && endpointsOnly(c.R)
	case cond.Not:
		return endpointsOnly(c.C)
	case cond.True:
		return true
	default:
		return false
	}
}

// dropNoopOrderBy removes order-by work that cannot affect projection:
// ranking partitions is a no-op when the group-by key creates a single
// partition (no Source/Target component), and ranking groups is a no-op
// when each partition holds a single group (no Length component). An
// order-by whose every component is a no-op disappears; this is the
// paper's τPG-over-γ∅ example in §6.
func dropNoopOrderBy(e core.PathExpr) (core.PathExpr, bool) {
	proj, ok := e.(core.Project)
	if !ok {
		return e, false
	}
	in, changed := simplifyOrderBy(proj.In)
	if !changed {
		return e, false
	}
	proj.In = in
	return proj, true
}

func simplifyOrderBy(e core.SpaceExpr) (core.SpaceExpr, bool) {
	ord, ok := e.(core.OrderBy)
	if !ok {
		return e, false
	}
	in, innerChanged := simplifyOrderBy(ord.In)
	ord.In = in
	key, ok := groupKeyOf(ord.In)
	if !ok {
		return ord, innerChanged
	}
	newKey := ord.Key
	if key&(core.GroupSource|core.GroupTarget) == 0 {
		newKey &^= core.OrderPartition
	}
	if key&core.GroupLength == 0 {
		newKey &^= core.OrderGroup
	}
	if newKey == ord.Key {
		return ord, innerChanged
	}
	if newKey == 0 {
		return ord.In, true
	}
	ord.Key = newKey
	return ord, true
}

func groupKeyOf(e core.SpaceExpr) (core.GroupKey, bool) {
	switch x := e.(type) {
	case core.GroupBy:
		return x.Key, true
	case core.OrderBy:
		return groupKeyOf(x.In)
	default:
		return 0, false
	}
}
