package opt

import (
	"math"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/stats"
)

// CostModel estimates operator cardinalities from the graph statistics
// computed at build time (internal/stats). Estimates are classical
// System-R-style: label selectivities come straight from the per-label
// counts, joins use the distinct-endpoint-count estimate, and recursions
// raise the per-symbol fan-out to a bounded depth. The numbers only ever
// steer plan choice — a wrong estimate can cost speed, never results.
type CostModel struct {
	// Stats is the statistics bundle of the target graph (graph.Stats()).
	Stats *stats.Stats
	// Limits are the evaluation limits the plan will run under; MaxLen
	// bounds the recursion-depth horizon of ϕ estimates.
	Limits core.Limits
}

const (
	// defaultPropSelectivity is the selectivity assumed for property
	// comparisons, about which the statistics know nothing.
	defaultPropSelectivity = 0.1
	// defaultRecursionDepth is the expansion horizon assumed for ϕ
	// estimates when Limits.MaxLen is unset.
	defaultRecursionDepth = 6
	// maxCard caps every estimate so geometric blowups stay comparable
	// instead of overflowing to +Inf.
	maxCard = 1e15
)

// capCard saturates an estimate into [0, maxCard]. NaN maps to maxCard:
// a poisoned estimate (0·Inf and friends, reachable when inflated
// post-delete Max* upper bounds push intermediate products past the
// float range) must compare as "expensive", never leak into min/max
// plan comparisons where every NaN comparison is false and the planner's
// choice turns on operand order.
func capCard(c float64) float64 {
	if math.IsNaN(c) || c > maxCard {
		return maxCard
	}
	if c < 0 {
		return 0
	}
	return c
}

func (cm *CostModel) depthHorizon() int {
	if cm.Limits.MaxLen > 0 {
		return cm.Limits.MaxLen
	}
	return defaultRecursionDepth
}

// estMemo caches per-subtree estimates within one top-level estimation
// call, keyed by the subtree's canonical rendering. Card and the distinct
// endpoint estimates are mutually recursive (the join estimate needs both
// children's cardinalities AND endpoint counts, and an endpoint count is
// capped by its subtree's cardinality), so without memoization a join
// chain of depth n costs O(2^n); with it every distinct subtree is
// estimated once.
type estMemo struct {
	card   map[string]float64
	dFirst map[string]float64
	dLast  map[string]float64
}

func newEstMemo() *estMemo {
	return &estMemo{
		card:   make(map[string]float64),
		dFirst: make(map[string]float64),
		dLast:  make(map[string]float64),
	}
}

// Card estimates the number of paths the expression evaluates to.
func (cm *CostModel) Card(e core.PathExpr) float64 {
	return cm.cardM(e, newEstMemo())
}

func (cm *CostModel) cardM(e core.PathExpr, m *estMemo) float64 {
	if e == nil {
		return float64(cm.Stats.Nodes)
	}
	key := e.String()
	if c, ok := m.card[key]; ok {
		return c
	}
	c := cm.cardUncached(e, m)
	m.card[key] = c
	return c
}

func (cm *CostModel) cardUncached(e core.PathExpr, m *estMemo) float64 {
	st := cm.Stats
	switch x := e.(type) {
	case core.Nodes:
		return float64(st.Nodes)
	case core.Edges:
		return float64(st.Edges)
	case core.Select:
		return capCard(cm.cardM(x.In, m) * cm.Selectivity(x.Cond))
	case core.Join:
		return cm.joinCard(cm.cardM(x.L, m), cm.cardM(x.R, m),
			cm.distinctM(x.L, true, m), cm.distinctM(x.R, false, m))
	case core.Union:
		return capCard(cm.cardM(x.L, m) + cm.cardM(x.R, m))
	case core.Recurse:
		return cm.recurseCard(x, m)
	case core.Restrict:
		in := cm.cardM(x.In, m)
		if x.Sem == core.Shortest {
			pairs := cm.distinctM(x.In, false, m) * cm.distinctM(x.In, true, m)
			if pairs < in {
				return capCard(pairs)
			}
		}
		return in
	case core.Project:
		return cm.projectCard(x, m)
	default:
		return float64(st.Nodes)
	}
}

// joinCard is the distinct-count join estimate |L||R| / max(V(L.last),
// V(R.first)): each last endpoint of L meets |R|/V(R.first) continuations
// on average (and symmetrically), under the usual uniformity assumption.
func (cm *CostModel) joinCard(cl, cr, dLast, dFirst float64) float64 {
	d := dLast
	if dFirst > d {
		d = dFirst
	}
	if d < 1 {
		d = 1
	}
	return capCard(cl * cr / d)
}

// recurseCard estimates ϕSem(In) as a geometric expansion of the base
// set: each closure round multiplies by r = |In| / V(In.first), the
// expected number of base continuations per frontier path, summed to the
// depth horizon. Shortest caps at one path bundle per endpoint pair.
func (cm *CostModel) recurseCard(x core.Recurse, m *estMemo) float64 {
	base := cm.cardM(x.In, m)
	if base == 0 {
		return 0
	}
	dFirst := cm.distinctM(x.In, false, m)
	if dFirst < 1 {
		dFirst = 1
	}
	r := base / dFirst
	// Closed-form geometric sum Σ_{i=0}^{h-1} base·rⁱ. The former
	// term-by-term loop ran depthHorizon()-1 rounds whenever r <= 1
	// (the saturation break never fired), so a plan with a huge
	// Limits.MaxLen stalled the planner for ~MaxLen iterations; the
	// closed form is O(1) at any horizon. Overflow to +Inf (r > 1 at a
	// deep horizon) and the 0·Inf NaN are absorbed by capCard.
	h := float64(cm.depthHorizon())
	var sum float64
	if r == 1 {
		sum = base * h
	} else {
		sum = base * (math.Pow(r, h) - 1) / (r - 1)
	}
	sum = capCard(sum)
	if x.Sem == core.Shortest {
		pairs := cm.distinctM(x.In, false, m) * cm.distinctM(x.In, true, m)
		if pairs < sum {
			sum = pairs
		}
	}
	return capCard(sum)
}

// projectCard estimates π over the grouped space: the inner cardinality
// split across estimated partitions and groups, each level truncated to
// its projection bound.
func (cm *CostModel) projectCard(x core.Project, m *estMemo) float64 {
	inner, key, ok := cm.spaceCard(x.In, m)
	if !ok {
		return inner
	}
	var groupSrc core.PathExpr
	if g, ok := core.BottomGroupBy(x.In); ok {
		groupSrc = g.In
	}
	parts := 1.0
	if key&core.GroupSource != 0 {
		parts *= cm.distinctM(groupSrc, false, m)
	}
	if key&core.GroupTarget != 0 {
		parts *= cm.distinctM(groupSrc, true, m)
	}
	if parts > inner {
		parts = inner
	}
	if parts < 1 {
		parts = 1
	}
	groupsPerPart := 1.0
	if key&core.GroupLength != 0 {
		groupsPerPart = float64(cm.depthHorizon())
	}
	pathsPerGroup := inner / (parts * groupsPerPart)
	if pathsPerGroup < 1 {
		pathsPerGroup = 1
	}
	parts = limitCard(x.Parts, parts)
	groupsPerPart = limitCard(x.Groups, groupsPerPart)
	pathsPerGroup = limitCard(x.Paths, pathsPerGroup)
	return capCard(parts * groupsPerPart * pathsPerGroup)
}

// limitCard applies a projection bound to an estimated element count.
func limitCard(c core.Count, available float64) float64 {
	if c.All || float64(c.N) > available {
		return available
	}
	return float64(c.N)
}

// spaceCard returns the path cardinality feeding a space expression, its
// group key, and whether the space bottoms out in a GroupBy.
func (cm *CostModel) spaceCard(e core.SpaceExpr, m *estMemo) (float64, core.GroupKey, bool) {
	switch x := e.(type) {
	case core.GroupBy:
		return cm.cardM(x.In, m), x.Key, true
	case core.OrderBy:
		return cm.spaceCard(x.In, m)
	default:
		return 0, 0, false
	}
}

// Selectivity estimates the fraction of paths a condition admits.
func (cm *CostModel) Selectivity(c cond.Cond) float64 {
	st := cm.Stats
	switch c := c.(type) {
	case cond.True:
		return 1
	case cond.LabelCmp:
		var s float64
		if c.Target.Kind == cond.TargetEdge {
			if st.Edges > 0 {
				s = float64(st.EdgeLabelCount(c.Value)) / float64(st.Edges)
			}
		} else {
			if st.Nodes > 0 {
				s = float64(st.NodeLabelCount(c.Value)) / float64(st.Nodes)
			}
		}
		if c.Op == cond.NE {
			return 1 - s
		}
		return s
	case cond.PropCmp:
		switch c.Op {
		case cond.EQ:
			return defaultPropSelectivity
		case cond.NE:
			return 1 - defaultPropSelectivity
		default:
			return 1.0 / 3
		}
	case cond.LenCmp:
		if c.Op == cond.EQ {
			return 1 / float64(cm.depthHorizon())
		}
		return 0.5
	case cond.And:
		return cm.Selectivity(c.L) * cm.Selectivity(c.R)
	case cond.Or:
		l, r := cm.Selectivity(c.L), cm.Selectivity(c.R)
		return l + r - l*r
	case cond.Not:
		return 1 - cm.Selectivity(c.C)
	default:
		return 0.5
	}
}

// DistinctFirst estimates the number of distinct first nodes of the
// expression's result; nil estimates over all nodes.
func (cm *CostModel) DistinctFirst(e core.PathExpr) float64 {
	return cm.distinctM(e, false, newEstMemo())
}

// DistinctLast estimates the number of distinct last nodes.
func (cm *CostModel) DistinctLast(e core.PathExpr) float64 {
	return cm.distinctM(e, true, newEstMemo())
}

func (cm *CostModel) distinctM(e core.PathExpr, last bool, m *estMemo) float64 {
	if e == nil {
		return float64(cm.Stats.Nodes)
	}
	cache := m.dFirst
	if last {
		cache = m.dLast
	}
	key := e.String()
	if d, ok := cache[key]; ok {
		return d
	}
	d := cm.distinctEndpoint(e, last, m)
	cache[key] = d
	return d
}

func (cm *CostModel) distinctEndpoint(e core.PathExpr, last bool, m *estMemo) float64 {
	st := cm.Stats
	nodes := float64(st.Nodes)
	var d float64
	switch x := e.(type) {
	case nil:
		d = nodes
	case core.Nodes:
		d = nodes
	case core.Edges:
		if last {
			d = float64(st.Any.DistinctDst)
		} else {
			d = float64(st.Any.DistinctSrc)
		}
	case core.Select:
		d = cm.distinctM(x.In, last, m)
		// Conjuncts pinned to this endpoint shrink its distinct count;
		// everything else is assumed independent of it.
		first, lastConds, _ := SplitByEndpoint(x.Cond)
		pinned := first
		if last {
			pinned = lastConds
		}
		for _, c := range pinned {
			d *= cm.Selectivity(c)
		}
		// The label-pattern leaf σ[label(edge(1)) = L](Edges) has exact
		// distinct endpoint counts in the symbol table.
		if lc, ok := x.Cond.(cond.LabelCmp); ok && lc.Op == cond.EQ &&
			lc.Target.Kind == cond.TargetEdge && lc.Target.Pos == 1 {
			if _, isEdges := x.In.(core.Edges); isEdges {
				if sym := st.SymbolByLabel(lc.Value); sym != nil {
					if last {
						d = float64(sym.DistinctDst)
					} else {
						d = float64(sym.DistinctSrc)
					}
				} else {
					d = 0
				}
			}
		}
	case core.Join:
		if last {
			d = cm.distinctM(x.R, true, m)
		} else {
			d = cm.distinctM(x.L, false, m)
		}
	case core.Union:
		d = cm.distinctM(x.L, last, m) + cm.distinctM(x.R, last, m)
	case core.Recurse:
		// Closure paths start (end) at base path starts (ends).
		d = cm.distinctM(x.In, last, m)
	case core.Restrict:
		d = cm.distinctM(x.In, last, m)
	case core.Project:
		d = nodes
	default:
		d = nodes
	}
	if d > nodes {
		d = nodes
	}
	if c := cm.cardM(e, m); d > c {
		d = c
	}
	return d
}
