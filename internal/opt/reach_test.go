package opt_test

import (
	"testing"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/opt"
	"pathalgebra/internal/rpq"
)

func knowsBase() core.PathExpr {
	return core.Select{Cond: cond.Label(cond.EdgeAt(1), "knows"), In: core.Edges{}}
}

// TestAnalyzeReachShapes is the eligibility accept/reject table: the
// kernel may only take plans whose mode-answer is invariant under erasing
// path bodies.
func TestAnalyzeReachShapes(t *testing.T) {
	walk := core.Recurse{Sem: core.Walk, In: knowsBase()}
	shortest := core.Recurse{Sem: core.Shortest, In: knowsBase()}
	gST := core.GroupSource | core.GroupTarget

	tests := []struct {
		name string
		plan core.PathExpr
		mode opt.ReachMode
		want bool
	}{
		{"bare walk recursion", walk, opt.ReachPairs, true},
		{"bare shortest recursion", shortest, opt.ReachShortestLengths, true},
		{"exists over walk", walk, opt.ReachExists, true},
		{"count-pairs over walk", walk, opt.ReachCountPairs, true},
		{"trail recursion rejected",
			core.Recurse{Sem: core.Trail, In: knowsBase()}, opt.ReachPairs, false},
		{"simple recursion rejected",
			core.Recurse{Sem: core.Simple, In: knowsBase()}, opt.ReachPairs, false},
		{"non-pattern base rejected",
			core.Recurse{Sem: core.Walk, In: core.Nodes{}}, opt.ReachPairs, false},

		// γ path counts must NEVER route to the kernel: parallel edges are
		// distinct paths with one endpoint pair.
		{"count-paths over walk rejected", walk, opt.ReachCountPaths, false},
		{"count-paths over shortest rejected", shortest, opt.ReachCountPaths, false},
		{"count-paths over identity pipeline rejected",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.AllCount(),
				In: core.GroupBy{Key: gST, In: walk}},
			opt.ReachCountPaths, false},

		// Endpoint-only selections restrict seeds/targets; body conjuncts
		// reject.
		{"first-endpoint select",
			core.Select{Cond: cond.Label(cond.First(), "Person"), In: walk},
			opt.ReachPairs, true},
		{"both-endpoint select",
			core.Select{Cond: cond.And{
				L: cond.Label(cond.First(), "Person"),
				R: cond.Label(cond.Last(), "Person"),
			}, In: walk},
			opt.ReachPairs, true},
		{"interior-node conjunct rejected",
			core.Select{Cond: cond.Label(cond.NodeAt(2), "Person"), In: walk},
			opt.ReachPairs, false},
		{"edge conjunct rejected",
			core.Select{Cond: cond.Label(cond.EdgeAt(1), "knows"), In: walk},
			opt.ReachPairs, false},
		{"length conjunct rejected",
			core.Select{Cond: cond.Len(3), In: walk},
			opt.ReachPairs, false},

		// Identity pipeline: π(*,*,*) returns every path whatever the
		// grouping and ordering.
		{"identity pipeline",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.AllCount(),
				In: core.OrderBy{Key: core.OrderGroup, In: core.GroupBy{Key: core.GroupSTL, In: walk}}},
			opt.ReachPairs, true},
		{"identity pipeline over endpoint select",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.AllCount(),
				In: core.GroupBy{Key: gST,
					In: core.Select{Cond: cond.Label(cond.First(), "Person"), In: walk}}},
			opt.ReachShortestLengths, true},
		{"bounded partitions rejected",
			core.Project{Parts: core.NCount(2), Groups: core.AllCount(), Paths: core.AllCount(),
				In: core.GroupBy{Key: gST, In: walk}},
			opt.ReachPairs, false},

		// ANY SHORTEST: π(*,*,1) over τ…A…(γST(X)).
		{"any-shortest shape",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
				In: core.OrderBy{Key: core.OrderPath, In: core.GroupBy{Key: gST, In: walk}}},
			opt.ReachShortestLengths, true},
		{"any-shortest with compound order key",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
				In: core.OrderBy{Key: core.OrderPartition | core.OrderPath,
					In: core.GroupBy{Key: gST, In: walk}}},
			opt.ReachPairs, true},
		{"descending path bound rejected (longest, not shortest)",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1).Descending(),
				In: core.OrderBy{Key: core.OrderPath, In: core.GroupBy{Key: gST, In: walk}}},
			opt.ReachShortestLengths, false},
		{"unranked paths rejected (arbitrary pick)",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
				In: core.OrderBy{Key: core.OrderGroup, In: core.GroupBy{Key: gST, In: walk}}},
			opt.ReachPairs, false},
		{"no order-by at all rejected",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
				In: core.GroupBy{Key: gST, In: walk}},
			opt.ReachPairs, false},
		{"source-only grouping rejected (drops pairs)",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
				In: core.OrderBy{Key: core.OrderPath, In: core.GroupBy{Key: core.GroupSource, In: walk}}},
			opt.ReachPairs, false},
		{"paths bound 2 rejected",
			core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(2),
				In: core.OrderBy{Key: core.OrderPath, In: core.GroupBy{Key: gST, In: walk}}},
			opt.ReachPairs, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rp, ok := opt.AnalyzeReach(tt.plan, tt.mode)
			if ok != tt.want {
				t.Fatalf("AnalyzeReach(%s, %s) eligible = %v, want %v",
					tt.plan, tt.mode, ok, tt.want)
			}
			if ok && rp.Pattern == nil {
				t.Fatalf("eligible plan returned nil pattern")
			}
		})
	}
}

// TestAnalyzeReachExtractsConds pins the seed/target split: first-node
// conjuncts become SeedConds, last-node conjuncts TargetConds.
func TestAnalyzeReachExtractsConds(t *testing.T) {
	plan := core.Select{
		Cond: cond.And{
			L: cond.Label(cond.First(), "Person"),
			R: cond.Label(cond.Last(), "City"),
		},
		In: core.Recurse{Sem: core.Walk, In: knowsBase()},
	}
	rp, ok := opt.AnalyzeReach(plan, opt.ReachPairs)
	if !ok {
		t.Fatal("endpoint-only select must be eligible")
	}
	if len(rp.SeedConds) != 1 || len(rp.TargetConds) != 1 {
		t.Fatalf("got %d seed conds, %d target conds, want 1 and 1",
			len(rp.SeedConds), len(rp.TargetConds))
	}
	if got := rp.SeedConds[0].String(); got != cond.Label(cond.First(), "Person").String() {
		t.Errorf("seed cond = %s", got)
	}
	if got := rp.TargetConds[0].String(); got != cond.Label(cond.Last(), "City").String() {
		t.Errorf("target cond = %s", got)
	}
	if _, ok := rp.Pattern.(rpq.Label); !ok {
		t.Errorf("pattern = %T, want rpq.Label", rp.Pattern)
	}
	if rp.Sem != core.Walk {
		t.Errorf("sem = %v, want Walk", rp.Sem)
	}
}

// TestLabelPattern pins the planner-side pattern recognizer against the
// engine's: the same bases must translate, everything else must reject.
func TestLabelPattern(t *testing.T) {
	re, ok := opt.LabelPattern(core.Join{L: knowsBase(), R: core.Edges{}})
	if !ok {
		t.Fatal("join of label bases must translate")
	}
	cc, ok := re.(rpq.Concat)
	if !ok {
		t.Fatalf("pattern = %T, want Concat", re)
	}
	if _, ok := cc.L.(rpq.Label); !ok {
		t.Errorf("left = %T, want Label", cc.L)
	}
	if _, ok := cc.R.(rpq.AnyLabel); !ok {
		t.Errorf("right = %T, want AnyLabel", cc.R)
	}
	if re, ok := opt.LabelPattern(core.Union{L: knowsBase(), R: knowsBase()}); !ok {
		t.Error("union of label bases must translate")
	} else if _, isAlt := re.(rpq.Alt); !isAlt {
		t.Errorf("union pattern = %T, want Alt", re)
	}
	for _, bad := range []core.PathExpr{
		core.Nodes{},
		core.Select{Cond: cond.Label(cond.First(), "Person"), In: core.Edges{}},
		core.Select{Cond: cond.Label(cond.EdgeAt(1), "knows"), In: core.Nodes{}},
		core.Join{L: knowsBase(), R: core.Nodes{}},
		core.Recurse{Sem: core.Walk, In: core.Edges{}},
	} {
		if _, ok := opt.LabelPattern(bad); ok {
			t.Errorf("LabelPattern(%s) must reject", bad)
		}
	}
}
