package opt_test

import (
	"strings"
	"testing"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/opt"
)

// fanInGraph builds a graph with many Likes sources converging on few
// targets: the shape where backward evaluation wins.
func fanInGraph(persons, messages int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < persons; i++ {
		b.AddNode(nodeKey("p", i), "Person", nil)
	}
	for i := 0; i < messages; i++ {
		b.AddNode(nodeKey("m", i), "Message", nil)
	}
	for i := 0; i < persons; i++ {
		b.AddEdge(nodeKey("e", i), nodeKey("p", i), nodeKey("m", i%messages), "Likes", nil)
	}
	return b.MustBuild()
}

func nodeKey(prefix string, i int) string {
	return prefix + string(rune('A'+i/26)) + string(rune('a'+i%26))
}

func labelSelect(label string) core.PathExpr {
	return core.Select{Cond: cond.Label(cond.EdgeAt(1), label), In: core.Edges{}}
}

func TestPlanChoosesBackward(t *testing.T) {
	g := fanInGraph(60, 2)
	cm := &opt.CostModel{Stats: g.Stats(), Limits: core.Limits{MaxLen: 4}}
	plan := core.Recurse{Sem: core.Trail, In: labelSelect("Likes")}
	res := opt.Plan(plan, cm)
	rec, ok := res.Plan.(core.Recurse)
	if !ok {
		t.Fatalf("plan changed shape: %s", res.Plan)
	}
	if rec.Dir != core.Backward {
		t.Errorf("60 sources vs 2 targets: want Backward, got %v (applied %v)", rec.Dir, res.Applied)
	}
	if !contains(res.Applied, "choose-backward") {
		t.Errorf("applied rules %v missing choose-backward", res.Applied)
	}
}

func TestPlanKeepsForwardWhenBalanced(t *testing.T) {
	// A Likes ring: every node is source and target of exactly one edge —
	// no side is cheaper, so near-ties must stay forward.
	b := graph.NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddNode(nodeKey("n", i), "Person", nil)
	}
	for i := 0; i < 10; i++ {
		b.AddEdge(nodeKey("e", i), nodeKey("n", i), nodeKey("n", (i+1)%10), "Likes", nil)
	}
	g := b.MustBuild()
	cm := &opt.CostModel{Stats: g.Stats(), Limits: core.Limits{MaxLen: 4}}
	res := opt.Plan(core.Recurse{Sem: core.Trail, In: labelSelect("Likes")}, cm)
	if rec := res.Plan.(core.Recurse); rec.Dir != core.Forward {
		t.Errorf("balanced graph: want Forward, got %v", rec.Dir)
	}
}

// TestPlanDirectionOrderSafety: under a truncating projection the
// representative a selector picks depends on result order, so the planner
// must not flip direction there.
func TestPlanDirectionOrderSafety(t *testing.T) {
	g := fanInGraph(60, 2)
	cm := &opt.CostModel{Stats: g.Stats(), Limits: core.Limits{MaxLen: 4}}
	inner := core.Recurse{Sem: core.Trail, In: labelSelect("Likes")}
	plan := core.Project{
		Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
		In: core.GroupBy{Key: core.GroupST, In: inner},
	}
	res := opt.Plan(plan, cm)
	if strings.Contains(res.Plan.String(), "←") {
		t.Errorf("backward direction chosen under truncating π: %s", res.Plan)
	}
	// The same recursion with every level at * is order-insensitive, so
	// backward is allowed again.
	open := core.Project{
		Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.AllCount(),
		In: core.GroupBy{Key: core.GroupST, In: inner},
	}
	res = opt.Plan(open, cm)
	if !strings.Contains(res.Plan.String(), "←") {
		t.Errorf("backward direction not chosen under non-truncating π: %s", res.Plan)
	}
}

// TestPlanSeededDirectionUsesConds: a selective label condition on the
// target endpoint makes the backward seed set tiny even when the raw
// distinct counts are balanced.
func TestPlanSeededDirectionUsesConds(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 30; i++ {
		label := "Person"
		if i == 29 {
			label = "Celebrity"
		}
		b.AddNode(nodeKey("n", i), label, nil)
	}
	for i := 0; i < 29; i++ {
		b.AddEdge(nodeKey("e", i), nodeKey("n", i), nodeKey("n", i+1), "Knows", nil)
	}
	g := b.MustBuild()
	cm := &opt.CostModel{Stats: g.Stats(), Limits: core.Limits{MaxLen: 4}}
	plan := core.Select{
		Cond: cond.Label(cond.Last(), "Celebrity"),
		In:   core.Recurse{Sem: core.Trail, In: labelSelect("Knows")},
	}
	res := opt.Plan(plan, cm)
	sel, ok := res.Plan.(core.Select)
	if !ok {
		t.Fatalf("plan changed shape: %s", res.Plan)
	}
	if rec := sel.In.(core.Recurse); rec.Dir != core.Backward {
		t.Errorf("selective last-endpoint condition: want Backward, got %v", rec.Dir)
	}
}

func TestPlanReassociatesJoins(t *testing.T) {
	// b ⋈ b is a dense 10×10 bipartite blowup; c has 2 edges. The
	// left-deep chain (b⋈b)⋈c builds the blowup first; the planner should
	// flip to b⋈(b⋈c).
	gb := graph.NewBuilder()
	for i := 0; i < 10; i++ {
		gb.AddNode(nodeKey("s", i), "S", nil)
	}
	gb.AddNode("hub", "H", nil)
	for i := 0; i < 10; i++ {
		gb.AddNode(nodeKey("t", i), "T", nil)
	}
	k := 0
	for i := 0; i < 10; i++ {
		gb.AddEdge(nodeKey("x", k), nodeKey("s", i), "hub", "b", nil)
		k++
	}
	for i := 0; i < 10; i++ {
		gb.AddEdge(nodeKey("y", k), "hub", nodeKey("t", i), "b", nil)
		k++
	}
	gb.AddEdge("z1", nodeKey("t", 0), nodeKey("s", 0), "c", nil)
	gb.AddEdge("z2", nodeKey("t", 1), nodeKey("s", 1), "c", nil)
	g := gb.MustBuild()
	cm := &opt.CostModel{Stats: g.Stats(), Limits: core.Limits{}}

	leftDeep := core.Join{
		L: core.Join{L: labelSelect("b"), R: labelSelect("b")},
		R: labelSelect("c"),
	}
	res := opt.Plan(leftDeep, cm)
	if !contains(res.Applied, "reassociate-joins") {
		t.Fatalf("applied rules %v missing reassociate-joins (plan %s)", res.Applied, res.Plan)
	}
	j, ok := res.Plan.(core.Join)
	if !ok {
		t.Fatalf("plan is not a join: %s", res.Plan)
	}
	if _, rightNested := j.R.(core.Join); !rightNested {
		t.Errorf("want right-nested join b⋈(b⋈c), got %s", res.Plan)
	}
}

// TestPlanGatedWalkToShortest: a set-determined shortest pipeline over a
// tiny bounded walk keeps the Walk recursion; the ungated baseline
// rewrites it; and the order-sensitive ANY form always rewrites.
func TestPlanGatedWalkToShortest(t *testing.T) {
	g := fanInGraph(6, 2)
	cm := &opt.CostModel{Stats: g.Stats(), Limits: core.Limits{MaxLen: 3}}
	allShortest := func(in core.PathExpr) core.PathExpr {
		return core.Project{
			Parts: core.AllCount(), Groups: core.NCount(1), Paths: core.AllCount(),
			In: core.OrderBy{Key: core.OrderGroup,
				In: core.GroupBy{Key: core.GroupSTL, In: in}},
		}
	}
	walk := core.Recurse{Sem: core.Walk, In: labelSelect("Likes")}

	base := opt.Optimize(allShortest(walk))
	if !strings.Contains(base.Plan.String(), "ϕShortest") {
		t.Fatalf("baseline should rewrite Walk→Shortest: %s", base.Plan)
	}
	planned := opt.Plan(allShortest(walk), cm)
	if strings.Contains(planned.Plan.String(), "ϕShortest") {
		t.Errorf("gated planner should keep the tiny bounded Walk: %s (applied %v)",
			planned.Plan, planned.Applied)
	}

	// ANY SHORTEST (paths truncated to 1) must rewrite under the planner
	// too — representative choice is order-sensitive.
	anyShortest := core.Project{
		Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
		In: core.OrderBy{Key: core.OrderPath,
			In: core.GroupBy{Key: core.GroupST, In: walk}},
	}
	planned = opt.Plan(anyShortest, cm)
	if !strings.Contains(planned.Plan.String(), "ϕShortest") {
		t.Errorf("ANY-form pipeline must still rewrite Walk→Shortest: %s", planned.Plan)
	}

	// Unbounded evaluation (no MaxLen) must also rewrite regardless of
	// estimates: keeping Walk could diverge.
	cmNoLen := &opt.CostModel{Stats: g.Stats()}
	planned = opt.Plan(allShortest(walk), cmNoLen)
	if !strings.Contains(planned.Plan.String(), "ϕShortest") {
		t.Errorf("without MaxLen the gate must not keep Walk: %s", planned.Plan)
	}
}

// TestPlanWithoutStatsFallsBack pins the degraded mode.
func TestPlanWithoutStatsFallsBack(t *testing.T) {
	plan := core.Recurse{Sem: core.Trail, In: labelSelect("Likes")}
	res := opt.Plan(plan, nil)
	if res.Plan.String() != opt.Optimize(plan).Plan.String() {
		t.Errorf("nil cost model should behave like Optimize")
	}
}

// TestCardEstimates sanity-checks the cost model on a known graph.
func TestCardEstimates(t *testing.T) {
	g := fanInGraph(60, 2)
	cm := &opt.CostModel{Stats: g.Stats(), Limits: core.Limits{MaxLen: 4}}
	if got := cm.Card(core.Nodes{}); got != 62 {
		t.Errorf("Card(Nodes) = %v, want 62", got)
	}
	if got := cm.Card(core.Edges{}); got != 60 {
		t.Errorf("Card(Edges) = %v, want 60", got)
	}
	likes := labelSelect("Likes")
	if got := cm.Card(likes); got != 60 {
		t.Errorf("Card(σLikes Edges) = %v, want 60", got)
	}
	if got := cm.DistinctFirst(likes); got != 60 {
		t.Errorf("DistinctFirst(σLikes) = %v, want 60", got)
	}
	if got := cm.DistinctLast(likes); got != 2 {
		t.Errorf("DistinctLast(σLikes) = %v, want 2", got)
	}
	// Likes edges never chain (targets have no out-edges), so the closure
	// estimate should stay near the base cardinality.
	rec := core.Recurse{Sem: core.Walk, In: likes}
	if got := cm.Card(rec); got < 60 || got > 240 {
		t.Errorf("Card(ϕWalk σLikes) = %v, want ~60..240", got)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
