package opt

import (
	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/rpq"
)

// ReachMode names the path-free answer a caller wants from a plan: a
// property of the result's endpoint pairs rather than of its path bodies.
// The bitset reachability kernel (internal/reach) computes endpoint pairs
// and minimal accepted-walk lengths without materializing any path, so a
// plan may route to it exactly when the requested answer is invariant
// under erasing path bodies — AnalyzeReach decides that.
type ReachMode uint8

const (
	// ReachExists asks whether the result set is non-empty.
	ReachExists ReachMode = iota
	// ReachPairs asks for the set of distinct (source, target) endpoint
	// pairs of the result's paths.
	ReachPairs
	// ReachCountPairs asks for the number of distinct endpoint pairs —
	// the γST partition count.
	ReachCountPairs
	// ReachCountPaths asks for the number of paths. Path counts are NOT
	// invariant under body erasure (two parallel edges are two paths with
	// one endpoint pair), so this mode is never kernel-eligible;
	// AnalyzeReach always rejects it and callers must enumerate.
	ReachCountPaths
	// ReachShortestLengths asks, per endpoint pair, for the minimal path
	// length in the result.
	ReachShortestLengths
)

// String names the mode for explain output and cache keys.
func (m ReachMode) String() string {
	switch m {
	case ReachExists:
		return "exists"
	case ReachPairs:
		return "pairs"
	case ReachCountPairs:
		return "count-pairs"
	case ReachCountPaths:
		return "count-paths"
	case ReachShortestLengths:
		return "shortest-lengths"
	default:
		return "ReachMode(?)"
	}
}

// ReachPlan is the kernel-shaped residue of an eligible plan: the kernel
// evaluates (Pattern)+ from the nodes satisfying SeedConds towards the
// nodes satisfying TargetConds and reports endpoint pairs (with minimal
// lengths). Nil cond slices mean unrestricted.
type ReachPlan struct {
	// Pattern is the recursion base as a regular path expression; the
	// kernel's automaton is built over (Pattern)+.
	Pattern rpq.Expr
	// Sem is the recursion's path semantics (Walk or Shortest — the two
	// the analysis admits). It does not change the kernel's answer (both
	// share endpoint pairs and minimal lengths under a common MaxLen);
	// it is kept for reporting.
	Sem core.Semantics
	// SeedConds are the first-endpoint conjuncts restricting sources.
	SeedConds []cond.Cond
	// TargetConds are the last-endpoint conjuncts restricting targets.
	TargetConds []cond.Cond
}

// AnalyzeReach decides whether a physical plan may be answered by the
// reachability kernel for the given mode, and extracts the kernel plan if
// so. The analysis is deliberately conservative — it recognizes exactly
// the shapes whose mode-answer is provably invariant under erasing path
// bodies, and rejects everything else (the engine then enumerates):
//
//   - ϕSem(pattern) with Sem ∈ {Walk, Shortest}: the recursion is the RPQ
//     (pattern)+; its endpoint pairs and per-pair minimal lengths are
//     exactly the kernel's BFS answer under the shared MaxLen.
//   - σc(ϕSem(pattern)) where every conjunct of c touches a single
//     endpoint: first-node conjuncts restrict seeds, last-node conjuncts
//     restrict targets. A conjunct over interior nodes or edges would
//     depend on path bodies, so any such residue rejects the plan.
//   - π(*,*,*)(τ…(γψ(X))) over an eligible X: an all-bounds projection
//     returns every path of X regardless of grouping and ordering, so the
//     pipeline is the identity on the path set.
//   - π(*,*,1)(τ…A…(γST(X))) over an eligible X — the ANY SHORTEST shape:
//     grouping by (source, target) and projecting one path per group in
//     ascending length order keeps exactly one minimal-length path per
//     endpoint pair. Pairs, pair counts, existence and minimal lengths
//     all survive the truncation. The path bound must be ascending and
//     some order-by in the chain must rank paths by length (OrderPath);
//     otherwise the kept path is rank-arbitrary, not shortest — rejected.
//
// ReachCountPaths is rejected for every shape: even the recursion alone
// distinguishes parallel multigraph edges the kernel cannot see.
func AnalyzeReach(plan core.PathExpr, mode ReachMode) (ReachPlan, bool) {
	if mode > ReachShortestLengths || mode == ReachCountPaths {
		return ReachPlan{}, false
	}
	switch x := plan.(type) {
	case core.Recurse, core.Select:
		return analyzeReachCore(plan)
	case core.Project:
		inner, ok := analyzeReachProject(x)
		if !ok {
			return ReachPlan{}, false
		}
		return analyzeReachCore(inner)
	default:
		return ReachPlan{}, false
	}
}

// analyzeReachCore recognizes the recursion core: ϕ over a label pattern,
// optionally under an endpoint-only selection.
func analyzeReachCore(x core.PathExpr) (ReachPlan, bool) {
	switch x := x.(type) {
	case core.Recurse:
		return analyzeRecurse(x)
	case core.Select:
		rec, ok := x.In.(core.Recurse)
		if !ok {
			return ReachPlan{}, false
		}
		first, last, rest := SplitByEndpoint(x.Cond)
		if len(rest) > 0 {
			// A conjunct over interior nodes or edges reads path bodies.
			return ReachPlan{}, false
		}
		rp, ok := analyzeRecurse(rec)
		if !ok {
			return ReachPlan{}, false
		}
		rp.SeedConds = first
		rp.TargetConds = last
		return rp, true
	default:
		return ReachPlan{}, false
	}
}

// analyzeRecurse accepts ϕSem(pattern) for Walk and Shortest semantics.
// Trail, Acyclic and Simple are rejected: although their endpoint pairs
// coincide with Walk's in the uncapped case (a minimal walk repeats no
// node), the interaction with MaxPaths-truncated enumeration fallbacks
// has not been pinned down, and conservatism is the contract here.
func analyzeRecurse(rec core.Recurse) (ReachPlan, bool) {
	if rec.Sem != core.Walk && rec.Sem != core.Shortest {
		return ReachPlan{}, false
	}
	re, ok := LabelPattern(rec.In)
	if !ok {
		return ReachPlan{}, false
	}
	return ReachPlan{Pattern: re, Sem: rec.Sem}, true
}

// analyzeReachProject classifies a projection pipeline as the identity
// (all-bounds) or the ANY SHORTEST truncation, returning the GroupBy
// input. Both preserve pairs, pair counts, existence and minimal
// lengths — everything the admitted modes read.
func analyzeReachProject(p core.Project) (core.PathExpr, bool) {
	if !p.Parts.All || p.Parts.Desc || !p.Groups.All || p.Groups.Desc {
		return nil, false
	}
	gb, ok := core.BottomGroupBy(p.In)
	if !ok {
		return nil, false
	}
	switch {
	case p.Paths.All && !p.Paths.Desc:
		// π(*,*,*): identity on the path set, any group key.
		return gb.In, true
	case !p.Paths.All && p.Paths.N == 1 && !p.Paths.Desc:
		// π(*,*,1): one path per group. Kernel-shaped only when the
		// partitions are exactly the endpoint pairs and paths are ranked
		// by length somewhere in the order-by chain — otherwise the kept
		// path is rank-arbitrary, not shortest.
		if gb.Key != core.GroupSource|core.GroupTarget {
			return nil, false
		}
		if !orderChainRanksPaths(p.In) {
			return nil, false
		}
		return gb.In, true
	default:
		return nil, false
	}
}

// orderChainRanksPaths reports whether some τ in the chain above the
// bottom GroupBy carries the OrderPath component. Order-by composition
// makes this sufficient: every OrderPath application sets path rank to
// Len(p) (idempotent), and applications without OrderPath leave path
// ranks untouched, so one occurrence anywhere pins rank = length.
func orderChainRanksPaths(e core.SpaceExpr) bool {
	for {
		ord, ok := e.(core.OrderBy)
		if !ok {
			return false
		}
		if ord.Key&core.OrderPath != 0 {
			return true
		}
		e = ord.In
	}
}

// LabelPattern converts a base expression built from label-equality
// selections over Edges(G), joins and unions into the equivalent regular
// path expression: Edges(G) ↦ any-label, σ[label(edge(1))=L](Edges) ↦ L,
// ⋈ ↦ concatenation, ∪ ↦ alternation. ok is false for any other shape.
// It is the planner-side mirror of the engine's pattern recognizer, so
// eligibility here agrees with what the enumeration fast path accepts.
func LabelPattern(x core.PathExpr) (rpq.Expr, bool) {
	switch x := x.(type) {
	case core.Edges:
		return rpq.AnyLabel{}, true
	case core.Select:
		lc, ok := x.Cond.(cond.LabelCmp)
		if !ok || lc.Op != cond.EQ || lc.Target.Kind != cond.TargetEdge || lc.Target.Pos != 1 {
			return nil, false
		}
		if _, ok := x.In.(core.Edges); !ok {
			return nil, false
		}
		return rpq.Label{Name: lc.Value}, true
	case core.Join:
		l, ok := LabelPattern(x.L)
		if !ok {
			return nil, false
		}
		r, ok := LabelPattern(x.R)
		if !ok {
			return nil, false
		}
		return rpq.Concat{L: l, R: r}, true
	case core.Union:
		l, ok := LabelPattern(x.L)
		if !ok {
			return nil, false
		}
		r, ok := LabelPattern(x.R)
		if !ok {
			return nil, false
		}
		return rpq.Alt{L: l, R: r}, true
	default:
		return nil, false
	}
}
