package opt_test

import (
	"math/rand"
	"testing"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/opt"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/testutil"
)

// Per-rewrite metamorphic tests: for every rule in the optimizer, build
// random inputs where the rule fires and check — with the reference
// evaluator (core.EvalExpr), which knows nothing of the optimizer — that
// the rewritten plan returns exactly the original plan's path set.

var metamorphicLimits = core.Limits{MaxLen: 3}

// checkRewrite optimizes the plan, requires the rule to have fired, and
// compares reference-evaluated results before and after.
func checkRewrite(t *testing.T, g *graph.Graph, before core.PathExpr, rule string) {
	t.Helper()
	res := opt.Optimize(before)
	fired := false
	for _, r := range res.Applied {
		if r == rule {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("rule %s did not fire on %s (applied: %v)", rule, before, res.Applied)
	}
	want, err := core.EvalExpr(g, before, metamorphicLimits)
	if err != nil {
		t.Fatalf("reference(before) %s: %v", before, err)
	}
	got, err := core.EvalExpr(g, res.Plan, metamorphicLimits)
	if err != nil {
		t.Fatalf("reference(after) %s: %v", res.Plan, err)
	}
	if !got.Equal(want) {
		t.Errorf("rule %s changed results: before %s → %d paths, after %s → %d paths",
			rule, before, want.Len(), res.Plan, got.Len())
	}
}

func TestMergeSelectionsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		g := testutil.RandomGraph(rng)
		c1 := testutil.RandomCond(rng, 1)
		c2 := testutil.RandomCond(rng, 1)
		before := core.Select{Cond: c1, In: core.Select{Cond: c2, In: core.Edges{}}}
		checkRewrite(t, g, before, "merge-selections")
	}
}

func TestPushdownSelectionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	endpointConds := func() cond.Cond {
		targets := []cond.Target{cond.First(), cond.Last()}
		tgt := targets[rng.Intn(2)]
		if rng.Intn(2) == 0 {
			return cond.Label(tgt, []string{"Person", "Message"}[rng.Intn(2)])
		}
		pc := cond.Prop(tgt, "id", graph.IntValue(int64(1+rng.Intn(5))))
		pc.Op = cond.GE
		return pc
	}
	for trial := 0; trial < 30; trial++ {
		g := testutil.RandomGraph(rng)
		c := endpointConds()
		if rng.Intn(2) == 0 {
			c = cond.And{L: c, R: endpointConds()}
		}
		inner := testutil.RandomPlan(rng, 1)
		other := testutil.RandomPlan(rng, 1)
		if !testutil.IsTruncationFree(inner) || !testutil.IsTruncationFree(other) {
			continue
		}
		var before core.PathExpr
		if rng.Intn(2) == 0 {
			before = core.Select{Cond: c, In: core.Join{L: inner, R: other}}
		} else {
			before = core.Select{Cond: c, In: core.Union{L: inner, R: other}}
		}
		checkRewrite(t, g, before, "pushdown-selection")
	}
}

func TestDropRedundantRestrictEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		g := testutil.RandomGraph(rng)
		sem := testutil.RandomSemantics(rng)
		in := testutil.RandomPlan(rng, 1)
		if !testutil.IsTruncationFree(in) {
			continue
		}
		var before core.PathExpr
		switch rng.Intn(3) {
		case 0:
			before = core.Restrict{Sem: core.Walk, In: in}
		case 1:
			before = core.Restrict{Sem: sem, In: core.Recurse{Sem: sem, In: core.Select{
				Cond: cond.Label(cond.EdgeAt(1), "Knows"), In: core.Edges{}}}}
		default:
			before = core.Restrict{Sem: sem, In: core.Restrict{Sem: sem, In: in}}
		}
		checkRewrite(t, g, before, "drop-redundant-restrict")
	}
}

func TestDropNoopOrderByEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 30; trial++ {
		g := testutil.RandomGraph(rng)
		in := testutil.RandomPlan(rng, 1)
		if !testutil.IsTruncationFree(in) {
			continue
		}
		// τPG over γ∅ ranks a single partition holding a single group —
		// a no-op (§6); the projection keeps everything, so the result is
		// set-determined and reference-comparable.
		before := core.Project{
			Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.AllCount(),
			In: core.OrderBy{
				Key: core.OrderPartition | core.OrderGroup,
				In:  core.GroupBy{Key: core.GroupNone, In: in},
			},
		}
		checkRewrite(t, g, before, "drop-noop-orderby")
	}
}

// TestWalkToShortestEquivalence checks the recursion rewrite on its
// set-determined pipeline forms (ALL SHORTEST and the §7.3 globally-
// shortest example) by reference-evaluated set equality, and on the
// order-sensitive ANY SHORTEST form by the weaker — but order-free —
// property that actually defines it: one path per endpoint pair, each a
// minimal-length path of that pair, pairs identical to the unrewritten
// plan's.
func TestWalkToShortestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	pattern := func() core.PathExpr {
		labels := []string{"Knows", "Likes", "Has_creator"}
		base := core.PathExpr(core.Select{
			Cond: cond.Label(cond.EdgeAt(1), labels[rng.Intn(3)]), In: core.Edges{}})
		if rng.Intn(2) == 0 {
			base = core.Union{L: base, R: core.Select{
				Cond: cond.Label(cond.EdgeAt(1), labels[rng.Intn(3)]), In: core.Edges{}}}
		}
		return core.Recurse{Sem: core.Walk, In: base}
	}
	for trial := 0; trial < 20; trial++ {
		g := testutil.RandomGraph(rng)
		walk := pattern()

		allShortest := core.Project{
			Parts: core.AllCount(), Groups: core.NCount(1), Paths: core.AllCount(),
			In: core.OrderBy{Key: core.OrderGroup,
				In: core.GroupBy{Key: core.GroupSTL, In: walk}},
		}
		checkRewrite(t, g, allShortest, "walk-to-shortest")

		globally := core.Project{
			Parts: core.NCount(1), Groups: core.NCount(1), Paths: core.AllCount(),
			In: core.OrderBy{Key: core.OrderGroup,
				In: core.GroupBy{Key: core.GroupLength, In: walk}},
		}
		checkRewrite(t, g, globally, "walk-to-shortest")

		anyShortest := core.Project{
			Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
			In: core.OrderBy{Key: core.OrderPath,
				In: core.GroupBy{Key: core.GroupST, In: walk}},
		}
		res := opt.Optimize(anyShortest)
		before, err := core.EvalExpr(g, anyShortest, metamorphicLimits)
		if err != nil {
			t.Fatal(err)
		}
		after, err := core.EvalExpr(g, res.Plan, metamorphicLimits)
		if err != nil {
			t.Fatal(err)
		}
		checkAnyShortest(t, before, after)
	}
}

// checkAnyShortest verifies ANY SHORTEST's order-free contract between
// two candidate answers: the same endpoint pairs, one path per pair, and
// equal (minimal) lengths per pair.
func checkAnyShortest(t *testing.T, before, after *pathset.Set) {
	t.Helper()
	type pair struct{ s, d graph.NodeID }
	lens := func(s *pathset.Set) map[pair]int {
		m := make(map[pair]int)
		for _, p := range s.Paths() {
			k := pair{p.First(), p.Last()}
			if prev, ok := m[k]; ok {
				t.Errorf("two paths for pair %v (lens %d, %d)", k, prev, p.Len())
			}
			m[k] = p.Len()
		}
		return m
	}
	b, a := lens(before), lens(after)
	if len(b) != len(a) {
		t.Errorf("pair sets differ: before %d pairs, after %d", len(b), len(a))
		return
	}
	for k, bl := range b {
		al, ok := a[k]
		if !ok {
			t.Errorf("pair %v missing after rewrite", k)
		} else if al != bl {
			t.Errorf("pair %v: minimal length %d before, %d after", k, bl, al)
		}
	}
}
