package opt

import (
	"fmt"
	"math"
	"testing"
	"time"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
)

// TestCapCardSaturatesNaN pins the NaN seam of the ϕ estimates: every
// cost comparison in the planner treats NaN as "not less", so a NaN
// leaking out of capCard would make plan choice depend on operand
// order. NaN must saturate to maxCard (expensive), never pass through.
func TestCapCardSaturatesNaN(t *testing.T) {
	if got := capCard(math.NaN()); got != maxCard {
		t.Fatalf("capCard(NaN) = %v, want maxCard", got)
	}
	if got := capCard(math.Inf(1)); got != maxCard {
		t.Fatalf("capCard(+Inf) = %v, want maxCard", got)
	}
	if got := capCard(math.Inf(-1)); got != 0 {
		t.Fatalf("capCard(-Inf) = %v, want 0", got)
	}
}

// TestRecurseCardDeepHorizonPostDelete is the post-delete deep-chain
// regression: stats Max* degrees are monotone upper bounds (deletes
// never lower them), and a huge Limits.MaxLen used to drive the ϕ
// estimate's term-by-term geometric loop for ~MaxLen iterations when
// the fan-out ratio was <= 1 — an effective hang. The closed form must
// return promptly with a finite, saturated estimate.
func TestRecurseCardDeepHorizonPostDelete(t *testing.T) {
	// A 64-node "knows" chain; then delete every other edge so the live
	// fan-out drops below 1 while the Max* upper bounds stay inflated.
	b := graph.NewBuilder()
	for i := 0; i < 64; i++ {
		b.AddNode(fmt.Sprintf("p%d", i), "Person", nil)
	}
	for i := 0; i < 63; i++ {
		b.AddEdge(fmt.Sprintf("k%d", i), fmt.Sprintf("p%d", i), fmt.Sprintf("p%d", i+1), "knows", nil)
	}
	s := graph.NewStore(b.MustBuild(), graph.StoreOptions{CompactThreshold: -1})
	defer s.Close()
	var ops []graph.Op
	for i := 0; i < 63; i += 2 {
		ops = append(ops, graph.Op{Kind: graph.OpDelEdge, Key: fmt.Sprintf("k%d", i)})
	}
	if _, err := s.Apply(graph.Batch{Ops: ops}); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	knowsChain := core.Recurse{Sem: core.Walk, In: core.Select{
		Cond: cond.Label(cond.EdgeAt(1), "knows"), In: core.Edges{},
	}}
	for _, maxLen := range []int{6, 1 << 20, 1 << 30, math.MaxInt} {
		cm := &CostModel{Stats: s.Graph().Stats(), Limits: core.Limits{MaxLen: maxLen}}
		start := time.Now()
		card := cm.Card(knowsChain)
		if d := time.Since(start); d > time.Second {
			t.Fatalf("Card with MaxLen=%d took %v — horizon loop is back", maxLen, d)
		}
		if math.IsNaN(card) || math.IsInf(card, 0) || card < 0 || card > maxCard {
			t.Fatalf("Card with MaxLen=%d = %v, want finite in [0, maxCard]", maxLen, card)
		}
	}

	// A fan-out ratio > 1 at a deep horizon overflows Pow to +Inf; the
	// estimate must saturate at maxCard, not poison comparisons.
	b2 := graph.NewBuilder()
	b2.AddNode("h", "Hub", nil)
	b2.AddNode("t", "Hub", nil)
	for i := 0; i < 8; i++ {
		b2.AddEdge(fmt.Sprintf("l%d", i), "h", "t", "loops", nil)
		b2.AddEdge(fmt.Sprintf("r%d", i), "t", "h", "loops", nil)
	}
	g2 := b2.MustBuild()
	cm := &CostModel{Stats: g2.Stats(), Limits: core.Limits{MaxLen: 1 << 30}}
	card := cm.Card(core.Recurse{Sem: core.Walk, In: core.Select{
		Cond: cond.Label(cond.EdgeAt(1), "loops"), In: core.Edges{},
	}})
	if card != maxCard {
		t.Fatalf("explosive recursion at deep horizon = %v, want saturation at maxCard", card)
	}
}
