package graph

import (
	"errors"
	"testing"

	"pathalgebra/internal/fault"
)

// TestCrashRecoveryDifferential is the crash-recovery half of the PR 8
// chaos harness: for every durability fault site, inject a failure,
// "crash" (close the process state without any cleanup beyond the file
// handles), restart from disk, and assert the recovered store is
// byte-identical in key space to either the pre-batch or the post-batch
// state — never a partial application of the batch — and that an
// acknowledged Apply is never lost.
func TestCrashRecoveryDifferential(t *testing.T) {
	// The probe batch has two ops so a partial application (one op
	// visible without the other) is distinguishable from both bounds.
	probe := Batch{Ops: []Op{
		{Kind: OpAddNode, Key: "d", Label: "Person"},
		{Kind: OpAddEdge, Key: "cd", Src: "c", Dst: "d", Label: "Knows"},
	}}

	sites := []struct {
		site string
		// how the fault is reached: "apply" arms during the probe Apply,
		// "checkpoint" arms during an explicit Checkpoint after it.
		via string
	}{
		{"wal.append", "apply"},
		{"wal.torn", "apply"},
		{"wal.fsync", "apply"},
		{"checkpoint.write", "checkpoint"},
		{"checkpoint.rename", "checkpoint"},
		{"wal.reset", "checkpoint"},
		{"compact.swap", "checkpoint"},
	}

	for _, tc := range sites {
		t.Run(tc.site+"/"+tc.via, func(t *testing.T) {
			dir := t.TempDir()
			s := openDurable(t, dir, seedGraph(t))
			mustApply(t, s, Op{Kind: OpAddNode, Key: "x", Label: "Person"})
			pre := renderAdjacency(s.Graph())

			restore := fault.Arm(fault.Schedule{Rules: []fault.Rule{{Site: tc.site, Nth: 1}}})
			var applyErr error
			if tc.via == "apply" {
				_, applyErr = s.Apply(probe)
			} else {
				if _, err := s.Apply(probe); err != nil {
					restore()
					t.Fatalf("probe Apply: %v", err)
				}
				if err := s.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
					restore()
					t.Fatalf("Checkpoint under %s fault: got %v, want injected", tc.site, err)
				}
			}
			restore()

			// What the store acknowledged before the crash is the bound an
			// honest recovery must meet.
			live := renderAdjacency(s.Graph())
			s.Close()

			// The post-batch bound, built from scratch (not read from the
			// store under test).
			postStore := NewStore(seedGraph(t), durableOpts)
			mustApply(t, postStore, Op{Kind: OpAddNode, Key: "x", Label: "Person"})
			mustApply(t, postStore, probe.Ops...)
			post := renderAdjacency(postStore.Graph())
			postStore.Close()

			r := openDurable(t, dir, seedGraph(t))
			defer r.Close()
			got := renderAdjacency(r.Graph())

			if got != pre && got != post {
				t.Fatalf("recovered state is neither pre- nor post-batch (partial apply?):\n got  %s\n pre  %s\n post %s", got, pre, post)
			}
			if live == post && got != post {
				t.Fatalf("acknowledged batch lost after crash at %s:\n got  %s\n want %s", tc.site, got, post)
			}
			if tc.via == "apply" && applyErr == nil {
				t.Fatalf("fault at %s did not surface through Apply", tc.site)
			}
			// A checkpoint failure must never cost data: the overlay (or
			// the repaired WAL) still covers every acknowledged batch.
			if tc.via == "checkpoint" && got != post {
				t.Fatalf("failed checkpoint at %s lost acknowledged data:\n got  %s\n want %s", tc.site, got, post)
			}
		})
	}
}

// TestCrashRecoverySweep drives a longer ingest workload and crashes at
// every successive WAL append hit (1st, 2nd, ... Nth), checking the
// never-partial invariant at each crash point.
func TestCrashRecoverySweep(t *testing.T) {
	batches := []Batch{
		{Ops: []Op{{Kind: OpAddNode, Key: "d", Label: "Person"}, {Kind: OpAddNode, Key: "e", Label: "Person"}}},
		{Ops: []Op{{Kind: OpAddEdge, Key: "cd", Src: "c", Dst: "d", Label: "Knows"}, {Kind: OpAddEdge, Key: "de", Src: "d", Dst: "e", Label: "Knows"}}},
		{Ops: []Op{{Kind: OpDelEdge, Key: "ab"}}},
		{Ops: []Op{{Kind: OpDelNode, Key: "e"}}},
	}

	// States[k] = adjacency after k batches, built on a plain in-memory
	// store as the independent oracle.
	states := make([]string, 0, len(batches)+1)
	oracle := NewStore(seedGraph(t), durableOpts)
	states = append(states, renderAdjacency(oracle.Graph()))
	for _, b := range batches {
		mustApply(t, oracle, b.Ops...)
		states = append(states, renderAdjacency(oracle.Graph()))
	}
	oracle.Close()

	for crashAt := 1; crashAt <= len(batches); crashAt++ {
		for _, site := range []string{"wal.torn", "wal.fsync"} {
			dir := t.TempDir()
			s := openDurable(t, dir, seedGraph(t))
			restore := fault.Arm(fault.Schedule{Rules: []fault.Rule{{Site: site, Nth: crashAt}}})
			applied := 0
			for _, b := range batches {
				if _, err := s.Apply(b); err != nil {
					break
				}
				applied++
			}
			restore()
			s.Close()

			r := openDurable(t, dir, seedGraph(t))
			got := renderAdjacency(r.Graph())
			r.Close()
			// The injected failure repairs the log, so recovery lands
			// exactly on the last acknowledged batch.
			if got != states[applied] {
				t.Errorf("%s at hit %d: recovered state != state after %d acknowledged batches", site, crashAt, applied)
			}
		}
	}
}
