package graph

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"pathalgebra/internal/fault"
)

// Store is the mutable home of a live graph: a sequence of immutable
// epochs, each a *Graph (sealed CSR or delta view), swapped atomically as
// batches apply. Readers pin an epoch with Snapshot and evaluate against
// it unchanged — the automaton/core/arena read path never learns the
// graph is live — while a single writer applies batches and a compactor
// folds accumulated deltas back into a fresh sealed CSR.
//
// Epoch numbering is logical: epoch N is the state after N applied
// batches. Compaction is a physical swap — it replaces the delta view
// with an equivalent sealed graph under the same epoch number, so cached
// results and cursors keyed by epoch stay valid across it.
type Store struct {
	mu   sync.Mutex // serializes writers: Apply, Compact
	cur  atomic.Pointer[epochState]
	opts StoreOptions

	// Advisory epoch registry for observability: every published state,
	// pruned when unpinned and superseded. Metrics only — snapshot
	// safety comes from the GC, not from this map.
	regMu sync.Mutex
	reg   map[*epochState]struct{}

	compactions atomic.Uint64

	// Durability: when wal is non-nil (OpenDurable), Apply logs and
	// fsyncs every batch before publishing its epoch, and the compactor
	// checkpoints (snapshot + WAL reset) after each fold. Both fields
	// are guarded by mu.
	wal          *WAL
	snapshotPath string
	checkpoints  atomic.Uint64

	// Compaction failures are survivable — the store keeps serving from
	// the un-compacted overlay — so they surface as counters plus a
	// last-error detail instead of dying silently.
	compactionErrs atomic.Uint64
	lastErrMu      sync.Mutex
	lastCompactErr string

	compactCh chan struct{}
	stopOnce  sync.Once
	stopCh    chan struct{}
	doneCh    chan struct{}
}

// StoreOptions tunes a Store.
type StoreOptions struct {
	// CompactThreshold is the delta size (appended objects + tombstones)
	// at which the store compacts the overlay into a fresh sealed CSR.
	// 0 selects DefaultCompactThreshold; negative disables automatic
	// compaction (Compact can still be called explicitly).
	CompactThreshold int
	// SyncCompact folds the delta inline in Apply when the threshold is
	// reached instead of handing it to the background compactor —
	// deterministic, for tests and single-shot CLI use.
	SyncCompact bool
}

// DefaultCompactThreshold is the delta size that triggers compaction when
// StoreOptions.CompactThreshold is zero.
const DefaultCompactThreshold = 4096

// epochState is one published epoch: immutable after publish except for
// its pin count.
type epochState struct {
	epoch uint64
	g     *Graph
	clock *labelClock
	pins  atomic.Int64
}

// NewStore wraps a sealed graph as epoch 0 of a live store. The graph
// must not be mutated afterwards (graphs built by Build never are).
func NewStore(g *Graph, opts StoreOptions) *Store {
	return newStoreAt(g, 0, opts)
}

// newStoreAt is NewStore starting at an arbitrary epoch — WAL recovery
// resumes numbering where the checkpoint left off.
func newStoreAt(g *Graph, epoch uint64, opts StoreOptions) *Store {
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	s := &Store{
		opts:   opts,
		reg:    make(map[*epochState]struct{}),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	st := &epochState{epoch: epoch, g: g, clock: newLabelClock()}
	s.cur.Store(st)
	s.reg[st] = struct{}{}
	if opts.CompactThreshold > 0 && !opts.SyncCompact {
		s.compactCh = make(chan struct{}, 1)
		go s.compactor()
	} else {
		close(s.doneCh)
	}
	return s
}

// Close stops the background compactor and closes the WAL (if any).
// Snapshots stay usable.
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	<-s.doneCh
	s.mu.Lock()
	if s.wal != nil {
		s.wal.Close()
	}
	s.mu.Unlock()
}

// Compaction retry backoff bounds: a failed fold retries on a doubling
// timer instead of giving up, while reads keep serving the overlay.
const (
	compactRetryBase = 25 * time.Millisecond
	compactRetryMax  = 5 * time.Second
)

func (s *Store) compactor() {
	defer close(s.doneCh)
	// Last-resort isolation: a panic escaping an attempt (each attempt
	// recovers its own — see compactOnce) must not kill the process via
	// an unrecovered goroutine.
	defer func() {
		if r := recover(); r != nil {
			s.noteCompactionError(fmt.Errorf("graph: compactor loop panic: %v", r))
		}
	}()
	backoff := compactRetryBase
	var timer *time.Timer
	var retryCh <-chan time.Time
	for {
		select {
		case <-s.stopCh:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-s.compactCh:
		case <-retryCh:
			retryCh = nil
		}
		if err := s.compactOnce(); err != nil {
			s.noteCompactionError(err)
			if timer == nil {
				timer = time.NewTimer(backoff)
			} else {
				timer.Reset(backoff)
			}
			retryCh = timer.C
			backoff = min(backoff*2, compactRetryMax)
		} else {
			backoff = compactRetryBase
		}
	}
}

// compactOnce is one compaction attempt (plus checkpoint when the store
// is durable), with panics contained to the attempt: a poisoned overlay
// surfaces as a counted error and a retry, not a dead process — and
// never a dead compactor, so the store keeps serving the overlay and
// keeps trying.
func (s *Store) compactOnce() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("graph: compaction panic: %v\n%s", r, debug.Stack())
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.compactLocked(); err != nil {
		return err
	}
	return s.checkpointLocked()
}

// noteCompactionError records a failed compaction attempt for /stats.
func (s *Store) noteCompactionError(err error) {
	s.compactionErrs.Add(1)
	s.lastErrMu.Lock()
	s.lastCompactErr = err.Error()
	s.lastErrMu.Unlock()
}

// CompactionErrors returns the failed-attempt count and the most recent
// failure detail ("" when none) — advisory metrics for /stats.
func (s *Store) CompactionErrors() (uint64, string) {
	s.lastErrMu.Lock()
	last := s.lastCompactErr
	s.lastErrMu.Unlock()
	return s.compactionErrs.Load(), last
}

// Checkpoints returns the number of completed checkpoints (snapshot
// written + WAL reset); always 0 on a non-durable store.
func (s *Store) Checkpoints() uint64 { return s.checkpoints.Load() }

// WALStats reports the live WAL's record count and byte size; ok is
// false on a non-durable store.
func (s *Store) WALStats() (records int, bytes int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0, 0, false
	}
	return s.wal.Records(), s.wal.Size(), true
}

// Checkpoint folds the delta into a sealed CSR, writes it as the
// snapshot file, and resets the WAL under the current epoch. No-op on a
// non-durable store (Compact still runs).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.compactLocked(); err != nil {
		return err
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if s.wal == nil {
		return nil
	}
	cur := s.cur.Load()
	if err := writeSnapshot(s.snapshotPath, cur.epoch, cur.g); err != nil {
		return err
	}
	if err := s.wal.Reset(cur.epoch); err != nil {
		return err
	}
	s.checkpoints.Add(1)
	return nil
}

// Snapshot pins the current epoch and returns a handle to it. The caller
// must Release it; in the meantime the epoch's graph is immutable no
// matter how many batches apply or compactions run.
func (s *Store) Snapshot() *Snapshot {
	st := s.cur.Load()
	st.pins.Add(1)
	return &Snapshot{store: s, st: st}
}

// Snapshot is a pinned, immutable epoch handle.
type Snapshot struct {
	store    *Store
	st       *epochState
	released atomic.Bool
}

// Graph returns the epoch's graph view.
func (sn *Snapshot) Graph() *Graph { return sn.st.g }

// Epoch returns the epoch number.
func (sn *Snapshot) Epoch() uint64 { return sn.st.epoch }

// Release unpins the epoch. Idempotent.
func (sn *Snapshot) Release() {
	if sn.released.Swap(true) {
		return
	}
	if sn.st.pins.Add(-1) == 0 && sn.store.cur.Load() != sn.st {
		sn.store.prune(sn.st)
	}
}

func (s *Store) prune(st *epochState) {
	s.regMu.Lock()
	if st.pins.Load() == 0 && s.cur.Load() != st {
		delete(s.reg, st)
	}
	s.regMu.Unlock()
}

func (s *Store) publishLocked(st *epochState) {
	prev := s.cur.Load()
	s.regMu.Lock()
	s.reg[st] = struct{}{}
	s.cur.Store(st)
	if prev != nil && prev.pins.Load() == 0 {
		delete(s.reg, prev)
	}
	s.regMu.Unlock()
}

// Epoch returns the current epoch number.
func (s *Store) Epoch() uint64 { return s.cur.Load().epoch }

// Graph returns the current epoch's graph without pinning it — for
// one-shot reads where a torn epoch does not matter. Use Snapshot for
// evaluation.
func (s *Store) Graph() *Graph { return s.cur.Load().g }

// DeltaSize returns the current epoch's delta record count (appended
// objects plus tombstones); 0 when sealed.
func (s *Store) DeltaSize() int {
	if g := s.cur.Load().g; g.ov != nil {
		return g.ov.deltaSize()
	}
	return 0
}

// DeltaCounts returns the appended/tombstoned node and edge counts of the
// current epoch's overlay.
func (s *Store) DeltaCounts() (addedNodes, addedEdges, deadNodes, deadEdges int) {
	if g := s.cur.Load().g; g.ov != nil {
		ov := g.ov
		return len(ov.extraNodes), len(ov.extraEdges), len(ov.deadNodes), len(ov.deadEdges)
	}
	return 0, 0, 0, 0
}

// Compactions returns the number of compactions performed (inline reseals
// for unseen labels included).
func (s *Store) Compactions() uint64 { return s.compactions.Load() }

// LiveEpochs returns the number of distinct epoch states still reachable
// (current or pinned) and the total pin count — advisory metrics.
func (s *Store) LiveEpochs() (states int, pins int64) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	for st := range s.reg {
		states++
		pins += st.pins.Load()
	}
	return states, pins
}

// ValidAt reports whether a result computed at the given epoch with the
// given label footprint is still current: no later batch touched any
// label the footprint reads.
func (s *Store) ValidAt(fp Footprint, epoch uint64) bool {
	return s.cur.Load().clock.validAt(fp, epoch)
}

// Compact folds the current delta view into a fresh sealed CSR under the
// same epoch number. No-op when already sealed.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	cur := s.cur.Load()
	if cur.g.ov == nil {
		return nil
	}
	g, err := cur.g.Rebuild()
	if err != nil {
		return err
	}
	if err := fault.Hit("compact.swap"); err != nil {
		return fmt.Errorf("graph: compaction: %w", err)
	}
	s.publishLocked(&epochState{epoch: cur.epoch, g: g, clock: cur.clock})
	s.compactions.Add(1)
	return nil
}

// Apply applies one batch atomically and publishes the next epoch. On
// error nothing is published and the error wraps one of the typed
// sentinels (ErrDuplicateKey, ErrUnknownNode, ErrUnknownKey). A batch
// whose edge labels are all known to the sealed base extends the overlay
// in O(delta); a batch introducing an unseen edge label reseals inline
// (the lexicographic symbol order the CSR depends on cannot absorb a new
// symbol without perturbing discovery order).
func (s *Store) Apply(b Batch) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	cur := s.cur.Load()
	prevG := cur.g
	ov := overlayFor(prevG).clone()

	eff, err := ov.applyOps(b)
	if err != nil {
		return cur.epoch, err
	}
	// Durability point: the validated batch is logged and fsync'd BEFORE
	// its epoch publishes, so an acknowledged Apply survives a crash. On
	// a WAL failure nothing publishes — the caller sees a typed error
	// and the store still serves the previous epoch.
	if s.wal != nil {
		if err := s.wal.Append(b); err != nil {
			return cur.epoch, err
		}
	}
	epoch := cur.epoch + 1
	clock := cur.clock.advance(eff, epoch)

	var g *Graph
	if eff.newLabel {
		// Reseal: the overlay's live lists are valid even though its
		// patches and stats were skipped — rebuild from them.
		g, err = (&Graph{ov: ov}).Rebuild()
		if err != nil {
			return cur.epoch, err
		}
		s.compactions.Add(1)
	} else {
		ov.finalize(prevG, eff)
		g = &Graph{ov: ov}
	}
	s.publishLocked(&epochState{epoch: epoch, g: g, clock: clock})

	if g.ov != nil && s.opts.CompactThreshold > 0 && g.ov.deltaSize() >= s.opts.CompactThreshold {
		if s.opts.SyncCompact {
			if err := s.compactLocked(); err != nil {
				return epoch, err
			}
			if err := s.checkpointLocked(); err != nil {
				return epoch, err
			}
		} else if s.compactCh != nil {
			select {
			case s.compactCh <- struct{}{}:
			default: // a compaction is already queued
			}
		}
	}
	return epoch, nil
}

func overlayFor(g *Graph) *overlay {
	if g.ov != nil {
		return g.ov
	}
	return emptyOverlay(g)
}

// Rebuild folds a delta view into a fresh sealed Graph by replaying the
// live nodes and edges, in ID order, through a Builder — the same code
// path as a from-scratch build, so the result is bit-for-bit what Build
// would produce over the live object sequence. Returns the receiver when
// already sealed.
func (g *Graph) Rebuild() (*Graph, error) {
	if g.ov == nil {
		return g, nil
	}
	b := NewBuilder()
	for _, n := range g.Nodes() {
		b.AddNode(n.Key, n.Label, n.Props)
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.Key, g.Node(e.Src).Key, g.Node(e.Dst).Key, e.Label, e.Props)
	}
	return b.Build()
}

// effects accumulates what one batch touched, for patch finalization,
// stats maintenance and the label clock.
type effects struct {
	touchedOut map[NodeID]struct{}
	touchedIn  map[NodeID]struct{}

	nodeLabelDelta map[string]int
	edgeLabelDelta map[string]int

	anyNode, anyEdge bool
	newLabel         bool
}

func newEffects() *effects {
	return &effects{
		touchedOut:     map[NodeID]struct{}{},
		touchedIn:      map[NodeID]struct{}{},
		nodeLabelDelta: map[string]int{},
		edgeLabelDelta: map[string]int{},
	}
}

// applyOps applies the batch's operations, in order, to the (private,
// pre-publish) overlay clone: object and key bookkeeping only — adjacency
// patches, label indexes and statistics are deferred to finalize so a
// failed op leaves nothing to unwind. Mid-batch reads therefore go
// through the key maps and liveIncident, never through the stale patches.
func (ov *overlay) applyOps(b Batch) (*effects, error) {
	eff := newEffects()
	for i, op := range b.Ops {
		var err error
		switch op.Kind {
		case OpAddNode:
			err = ov.applyAddNode(op, eff)
		case OpAddEdge:
			err = ov.applyAddEdge(op, eff)
		case OpDelNode:
			err = ov.applyDelNode(op, eff)
		case OpDelEdge:
			err = ov.applyDelEdge(op, eff)
		default:
			err = fmt.Errorf("graph: unknown op kind %d", op.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("graph: batch op %d: %w", i, err)
		}
	}
	return eff, nil
}

func (ov *overlay) keyInUse(key string) bool {
	if _, ok := ov.nodeByKey(key); ok {
		return true
	}
	_, ok := ov.edgeByKey(key)
	return ok
}

func (ov *overlay) applyAddNode(op Op, eff *effects) error {
	if ov.keyInUse(op.Key) {
		return fmt.Errorf("add_node %q: %w", op.Key, ErrDuplicateKey)
	}
	id := NodeID(len(ov.base.nodes) + len(ov.extraNodes))
	ov.extraNodes = append(ov.extraNodes, Node{
		ID: id, Key: op.Key, Label: op.Label, Props: cloneProps(op.Props),
	})
	ov.addedNodeKeys[op.Key] = id
	ov.liveNodes++
	eff.nodeLabelDelta[op.Label]++
	eff.anyNode = true
	return nil
}

func (ov *overlay) applyAddEdge(op Op, eff *effects) error {
	if ov.keyInUse(op.Key) {
		return fmt.Errorf("add_edge %q: %w", op.Key, ErrDuplicateKey)
	}
	src, okSrc := ov.nodeByKey(op.Src)
	if !okSrc {
		return fmt.Errorf("add_edge %q: source %q: %w", op.Key, op.Src, ErrUnknownNode)
	}
	dst, okDst := ov.nodeByKey(op.Dst)
	if !okDst {
		return fmt.Errorf("add_edge %q: target %q: %w", op.Key, op.Dst, ErrUnknownNode)
	}
	sym := SymbolID(NoSymbol)
	if s, ok := ov.base.symbolOf[op.Label]; ok {
		sym = s
	} else {
		eff.newLabel = true // forces an inline reseal; sym stays NoSymbol
	}
	id := EdgeID(len(ov.base.edges) + len(ov.extraEdges))
	ov.extraEdges = append(ov.extraEdges, Edge{
		ID: id, Key: op.Key, Src: src.ID, Dst: dst.ID, Label: op.Label, Props: cloneProps(op.Props),
	})
	ov.extraEdgeSym = append(ov.extraEdgeSym, sym)
	ov.addedEdgeKeys[op.Key] = id
	ov.liveEdges++
	eff.edgeLabelDelta[op.Label]++
	eff.touchedOut[src.ID] = struct{}{}
	eff.touchedIn[dst.ID] = struct{}{}
	eff.anyEdge = true
	return nil
}

func (ov *overlay) applyDelNode(op Op, eff *effects) error {
	n, ok := ov.nodeByKey(op.Key)
	if !ok {
		return fmt.Errorf("del_node %q: %w", op.Key, ErrUnknownKey)
	}
	// Cascade: every live incident edge dies with its endpoint.
	for _, e := range ov.liveIncident(n.ID) {
		ov.killEdge(e, eff)
	}
	ov.deadNodes[n.ID] = struct{}{}
	if _, added := ov.addedNodeKeys[op.Key]; added {
		delete(ov.addedNodeKeys, op.Key)
	}
	if _, inBase := ov.base.nodeByKey[op.Key]; inBase {
		ov.deadNodeKeys[op.Key] = struct{}{}
	}
	ov.liveNodes--
	eff.nodeLabelDelta[n.Label]--
	eff.anyNode = true
	eff.touchedOut[n.ID] = struct{}{}
	eff.touchedIn[n.ID] = struct{}{}
	return nil
}

func (ov *overlay) applyDelEdge(op Op, eff *effects) error {
	e, ok := ov.edgeByKey(op.Key)
	if !ok {
		return fmt.Errorf("del_edge %q: %w", op.Key, ErrUnknownKey)
	}
	ov.killEdge(e.ID, eff)
	return nil
}

func (ov *overlay) killEdge(id EdgeID, eff *effects) {
	e := ov.edge(id)
	ov.deadEdges[id] = struct{}{}
	if _, added := ov.addedEdgeKeys[e.Key]; added {
		delete(ov.addedEdgeKeys, e.Key)
	}
	if _, inBase := ov.base.edgeByKey[e.Key]; inBase {
		ov.deadEdgeKeys[e.Key] = struct{}{}
	}
	ov.liveEdges--
	eff.edgeLabelDelta[e.Label]--
	eff.touchedOut[e.Src] = struct{}{}
	eff.touchedIn[e.Dst] = struct{}{}
	eff.anyEdge = true
}

// liveIncident returns the live edges incident to n (out and in, deduped
// for self-loops), reading the base CSR and the extra-edge list directly
// so it stays correct mid-batch while patches are stale.
func (ov *overlay) liveIncident(n NodeID) []EdgeID {
	var out []EdgeID
	seen := map[EdgeID]struct{}{}
	add := func(e EdgeID) {
		if _, dead := ov.deadEdges[e]; dead {
			return
		}
		if _, dup := seen[e]; dup {
			return
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	if int(n) < len(ov.base.nodes) {
		g := ov.base
		for _, e := range g.outData[g.outOff[n]:g.outOff[n+1]] {
			add(e)
		}
		for _, e := range g.inData[g.inOff[n]:g.inOff[n+1]] {
			add(e)
		}
	}
	for i := range ov.extraEdges {
		e := &ov.extraEdges[i]
		if e.Src == n || e.Dst == n {
			add(e.ID)
		}
	}
	return out
}

// finalize rematerializes the adjacency patches, label indexes and
// statistics the batch invalidated. prevG is the previously published
// view — the source of the old degrees the incremental stats cancel.
func (ov *overlay) finalize(prevG *Graph, eff *effects) {
	prevNodes := prevG.NumNodes()
	for n := range eff.touchedOut {
		var oldRuns []SymbolRun
		if int(n) < prevNodes {
			oldRuns = prevG.OutRuns(n)
		}
		adj := ov.rebuildAdj(n, true)
		ov.outPatch[n] = adj
		diffRuns(oldRuns, adj.runs, ov.stats.UpdateOutDegree)
		ov.stats.UpdateAnyOut(totalDeg(oldRuns), len(adj.data))
	}
	for n := range eff.touchedIn {
		var oldRuns []SymbolRun
		if int(n) < prevNodes {
			oldRuns = prevG.InRuns(n)
		}
		adj := ov.rebuildAdj(n, false)
		ov.inPatch[n] = adj
		diffRuns(oldRuns, adj.runs, ov.stats.UpdateInDegree)
		ov.stats.UpdateAnyIn(totalDeg(oldRuns), len(adj.data))
	}
	for l, d := range eff.nodeLabelDelta {
		if d != 0 {
			ov.stats.AdjustNodeLabel(l, d)
		}
		ov.patchNodeLabel(l)
	}
	for l, d := range eff.edgeLabelDelta {
		if d != 0 {
			ov.stats.AdjustEdgeLabel(l, d)
		}
		ov.patchEdgeLabel(l)
	}
	ov.stats.SetCounts(ov.liveNodes, ov.liveEdges)
}

func totalDeg(runs []SymbolRun) int {
	n := 0
	for _, r := range runs {
		n += len(r.Edges)
	}
	return n
}

// diffRuns walks two symbol-ascending run lists and reports each symbol
// whose degree changed.
func diffRuns(old, upd []SymbolRun, update func(sym, oldDeg, newDeg int)) {
	i, j := 0, 0
	for i < len(old) || j < len(upd) {
		switch {
		case j >= len(upd) || (i < len(old) && old[i].Sym < upd[j].Sym):
			update(int(old[i].Sym), len(old[i].Edges), 0)
			i++
		case i >= len(old) || upd[j].Sym < old[i].Sym:
			update(int(upd[j].Sym), 0, len(upd[j].Edges))
			j++
		default:
			if len(old[i].Edges) != len(upd[j].Edges) {
				update(int(old[i].Sym), len(old[i].Edges), len(upd[j].Edges))
			}
			i++
			j++
		}
	}
}

// labelClock is the immutable invalidation clock one epoch publishes:
// per-label last-modified epochs plus catch-all any-node/any-edge marks.
// A cached result with footprint fp computed at epoch e is current iff
// every label fp reads was last modified at or before e.
type labelClock struct {
	anyNode, anyEdge uint64
	nodeLabels       map[string]uint64
	edgeLabels       map[string]uint64
}

func newLabelClock() *labelClock {
	return &labelClock{
		nodeLabels: map[string]uint64{},
		edgeLabels: map[string]uint64{},
	}
}

// advance returns a new clock with the batch's touched labels stamped at
// epoch. The receiver is not modified (prior epochs keep their clocks).
func (c *labelClock) advance(eff *effects, epoch uint64) *labelClock {
	nc := &labelClock{
		anyNode:    c.anyNode,
		anyEdge:    c.anyEdge,
		nodeLabels: make(map[string]uint64, len(c.nodeLabels)+len(eff.nodeLabelDelta)),
		edgeLabels: make(map[string]uint64, len(c.edgeLabels)+len(eff.edgeLabelDelta)),
	}
	for l, e := range c.nodeLabels {
		nc.nodeLabels[l] = e
	}
	for l, e := range c.edgeLabels {
		nc.edgeLabels[l] = e
	}
	if eff.anyNode {
		nc.anyNode = epoch
	}
	if eff.anyEdge {
		nc.anyEdge = epoch
	}
	for l := range eff.nodeLabelDelta {
		nc.nodeLabels[l] = epoch
	}
	for l := range eff.edgeLabelDelta {
		nc.edgeLabels[l] = epoch
	}
	return nc
}

func (c *labelClock) validAt(fp Footprint, epoch uint64) bool {
	if fp.AllNodes && c.anyNode > epoch {
		return false
	}
	if fp.AllEdges && c.anyEdge > epoch {
		return false
	}
	for _, l := range fp.NodeLabels {
		if c.nodeLabels[l] > epoch {
			return false
		}
	}
	for _, l := range fp.EdgeLabels {
		if c.edgeLabels[l] > epoch {
			return false
		}
	}
	return true
}
