package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"pathalgebra/internal/fault"
	"pathalgebra/internal/obs"
)

// Package-level WAL latency histograms. They are always-on (an append
// is fsync-bound, so two time.Now calls are noise) and standalone so
// the server can fold them into its registry without the graph layer
// knowing about scrape endpoints.
var (
	walAppendSeconds = &obs.Histogram{}
	walFsyncSeconds  = &obs.Histogram{}
)

// WALAppendSeconds is the process-wide histogram of full WAL append
// latency (serialize + write + fsync), for registry registration.
func WALAppendSeconds() *obs.Histogram { return walAppendSeconds }

// WALFsyncSeconds is the process-wide histogram of the fsync portion
// of WAL appends.
func WALFsyncSeconds() *obs.Histogram { return walFsyncSeconds }

// Write-ahead logging for Store.Apply. The durability contract:
//
//   - Every batch is serialized, CRC-checksummed and fsync'd to the WAL
//     BEFORE its epoch is published — an acknowledged /ingest survives a
//     crash.
//   - Startup (OpenDurable) loads the newest checkpoint snapshot (or the
//     seed graph when none exists) and replays the WAL over it. A torn
//     final record — a crash mid-append — is truncated away; a corrupt
//     record with intact records after it is ErrWALCorrupt (data loss,
//     refuse to serve).
//   - Checkpoint folds the compacted CSR into a snapshot file (written
//     to a temp file, fsync'd, renamed) and resets the WAL under a new
//     base epoch. A crash between the two renames leaves a stale WAL
//     whose leading records pre-date the snapshot; replay skips them by
//     epoch arithmetic, so checkpointed batches are never applied twice.
//   - A WAL append failure is repaired by truncating the log back to its
//     pre-record length; if the repair itself fails, the WAL is poisoned
//     (sticky ErrWALFailed) and the store refuses further writes rather
//     than risk serving acknowledged-but-unlogged state.
//
// File formats (all integers little-endian):
//
//	wal.log:        8-byte magic "PAWLOG\x01\x00", 8-byte base epoch,
//	                then records: u32 payload length, u32 CRC-32 (IEEE)
//	                of the payload, payload (one encoded Batch).
//	snapshot.graph: 8-byte magic "PASNAP\x01\x00", 8-byte epoch, then
//	                the graph as WriteJSON bytes.

var (
	// ErrWALCorrupt reports a checksum or framing failure in the middle
	// of the log — records exist after the damage, so truncating would
	// silently drop acknowledged batches. Recovery refuses to proceed.
	ErrWALCorrupt = errors.New("graph: WAL corrupt")
	// ErrWALFailed reports a poisoned WAL: an append failed and the
	// repair truncation failed too, so the log's tail state is unknown.
	// The store stops accepting writes; restart recovery re-establishes
	// a consistent prefix.
	ErrWALFailed = errors.New("graph: WAL failed, store is read-only until restart")
)

const (
	walMagic      = "PAWLOG\x01\x00"
	snapMagic     = "PASNAP\x01\x00"
	walHeaderLen  = 16 // magic + base epoch
	walRecHdrLen  = 8  // payload length + CRC
	walMaxPayload = 1 << 30
)

// WAL is an open write-ahead log. A WAL is owned by exactly one Store
// and is only written under the store's writer mutex; it has no locking
// of its own.
type WAL struct {
	f         *os.File
	path      string
	baseEpoch uint64
	off       int64 // logical end: header + all intact records
	records   int   // appended since open/reset (observability)
	poisoned  bool
	scratch   []byte
}

// BaseEpoch returns the epoch the log's first record applies on top of.
func (w *WAL) BaseEpoch() uint64 { return w.baseEpoch }

// Records returns the record count appended or replayed since open.
func (w *WAL) Records() int { return w.records }

// Size returns the logical log size in bytes.
func (w *WAL) Size() int64 { return w.off }

// Poisoned reports whether the WAL has been poisoned by an unrepairable
// append failure.
func (w *WAL) Poisoned() bool { return w.poisoned }

// createWAL creates (or atomically replaces) the log at path with an
// empty record section under the given base epoch: temp file, fsync,
// rename, directory fsync — a crash leaves either the old or the new
// log, never a half-written header.
func createWAL(path string, baseEpoch uint64) (*WAL, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("graph: creating WAL: %w", err)
	}
	hdr := make([]byte, walHeaderLen)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint64(hdr[8:], baseEpoch)
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("graph: creating WAL: %w", err)
	}
	if err := renameAndSyncDir(tmp, path); err != nil {
		f.Close()
		return nil, fmt.Errorf("graph: creating WAL: %w", err)
	}
	return &WAL{f: f, path: path, baseEpoch: baseEpoch, off: walHeaderLen}, nil
}

// openWAL opens an existing log and replays its intact records. A torn
// tail (short header, short payload, or a bad checksum on the final
// record) is truncated away and reported in torn; damage with intact
// records after it is ErrWALCorrupt.
func openWAL(path string) (w *WAL, batches []Batch, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, false, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("graph: reading WAL: %w", err)
	}
	if len(data) < walHeaderLen || string(data[:8]) != walMagic {
		f.Close()
		return nil, nil, false, fmt.Errorf("%w: bad header", ErrWALCorrupt)
	}
	w = &WAL{f: f, path: path, baseEpoch: binary.LittleEndian.Uint64(data[8:16])}

	off := int64(walHeaderLen)
	tornAt := int64(-1)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < walRecHdrLen {
			tornAt = off // crash mid record header
			break
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > walMaxPayload {
			f.Close()
			return nil, nil, false, fmt.Errorf("%w: record %d: implausible length %d", ErrWALCorrupt, len(batches), n)
		}
		if int64(len(rest)) < walRecHdrLen+int64(n) {
			tornAt = off // crash mid record payload
			break
		}
		payload := rest[walRecHdrLen : walRecHdrLen+int64(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			// A bad checksum on the FINAL record is a torn tail (the
			// record never fully reached the platter); anywhere else it
			// is mid-log corruption over acknowledged data.
			if off+walRecHdrLen+int64(n) == int64(len(data)) {
				tornAt = off
				break
			}
			f.Close()
			return nil, nil, false, fmt.Errorf("%w: record %d: checksum mismatch", ErrWALCorrupt, len(batches))
		}
		b, err := decodeBatch(payload)
		if err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("%w: record %d: %v", ErrWALCorrupt, len(batches), err)
		}
		batches = append(batches, b)
		off += walRecHdrLen + int64(n)
	}
	if tornAt >= 0 {
		if err := f.Truncate(tornAt); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("graph: truncating torn WAL tail: %w", err)
		}
		off = tornAt
		torn = true
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("graph: seeking WAL: %w", err)
	}
	w.off = off
	w.records = len(batches)
	return w, batches, torn, nil
}

// Append serializes, checksums and fsyncs one batch. On a write or sync
// failure it repairs the log by truncating back to the pre-record
// length; if the repair fails the WAL is poisoned (ErrWALFailed from
// then on). Fault sites: wal.append (fail before any byte is written),
// wal.torn (write a half record, then fail — the crash the torn-tail
// recovery handles), wal.fsync (fail after the write, before the sync).
func (w *WAL) Append(b Batch) error {
	if w.poisoned {
		return ErrWALFailed
	}
	if err := fault.Hit("wal.append"); err != nil {
		return fmt.Errorf("graph: WAL append: %w", err)
	}
	t0 := time.Now()
	defer walAppendSeconds.ObserveSince(t0)
	payload := appendBatch(w.scratch[:0], b)
	w.scratch = payload[:0]
	rec := make([]byte, walRecHdrLen+len(payload))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[walRecHdrLen:], payload)

	if err := fault.Hit("wal.torn"); err != nil {
		// Simulated mid-write crash: half the record reaches the file.
		w.f.Write(rec[:len(rec)/2])
		w.f.Sync()
		return w.repair(fmt.Errorf("graph: WAL append: %w", err))
	}
	if _, err := w.f.Write(rec); err != nil {
		return w.repair(fmt.Errorf("graph: WAL append: %w", err))
	}
	if err := fault.Hit("wal.fsync"); err != nil {
		return w.repair(fmt.Errorf("graph: WAL fsync: %w", err))
	}
	s0 := time.Now()
	if err := w.f.Sync(); err != nil {
		return w.repair(fmt.Errorf("graph: WAL fsync: %w", err))
	}
	walFsyncSeconds.ObserveSince(s0)
	w.off += int64(len(rec))
	w.records++
	return nil
}

// repair truncates the log back to its last known-good length after a
// failed append. If truncation succeeds the WAL stays usable and the
// append's error is returned; if it fails the WAL poisons itself.
func (w *WAL) repair(cause error) error {
	if err := w.f.Truncate(w.off); err == nil {
		if _, err = w.f.Seek(w.off, io.SeekStart); err == nil {
			err = w.f.Sync()
		}
		if err == nil {
			return cause
		}
	}
	w.poisoned = true
	return fmt.Errorf("%w (after: %v)", ErrWALFailed, cause)
}

// Reset atomically replaces the log with an empty one under a new base
// epoch — the tail end of a checkpoint. The old file handle is swapped
// for the new one on success.
func (w *WAL) Reset(baseEpoch uint64) error {
	if w.poisoned {
		return ErrWALFailed
	}
	if err := fault.Hit("wal.reset"); err != nil {
		return fmt.Errorf("graph: WAL reset: %w", err)
	}
	nw, err := createWAL(w.path, baseEpoch)
	if err != nil {
		return err
	}
	w.f.Close()
	*w = *nw
	return nil
}

// Close closes the underlying file. The owning Store calls it.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// renameAndSyncDir renames tmp over dst and fsyncs the parent directory
// so the rename itself is durable.
func renameAndSyncDir(tmp, dst string) error {
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(dst))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// --- batch wire encoding -------------------------------------------------
//
// One batch: uvarint op count, then per op: kind byte, key, src, dst,
// label (uvarint-length-prefixed strings), uvarint prop count, then per
// prop: name string, value kind byte, kind-dependent payload. Strings
// are raw bytes (keys and labels are opaque to the engine).

func appendBatch(dst []byte, b Batch) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b.Ops)))
	for _, op := range b.Ops {
		dst = append(dst, byte(op.Kind))
		dst = appendString(dst, op.Key)
		dst = appendString(dst, op.Src)
		dst = appendString(dst, op.Dst)
		dst = appendString(dst, op.Label)
		dst = binary.AppendUvarint(dst, uint64(len(op.Props)))
		for _, name := range sortedPropNames(op.Props) {
			dst = appendString(dst, name)
			dst = appendValue(dst, op.Props[name])
		}
	}
	return dst
}

// sortedPropNames returns the property names in ascending order so the
// encoding (and therefore the record checksum) is deterministic.
func sortedPropNames(props map[string]Value) []string {
	if len(props) == 0 {
		return nil
	}
	names := make([]string, 0, len(props))
	//lint:ignore detorder collected names are sorted immediately below
	for name := range props {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ { // insertion sort: prop maps are tiny
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindString:
		dst = appendString(dst, v.str)
	case KindInt:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.i64))
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f64))
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// walDecoder decodes one record payload; all methods fail soft (set
// err) so the caller checks once.
type walDecoder struct {
	p   []byte
	err error
}

func (d *walDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.err = fmt.Errorf("truncated varint")
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *walDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.p) {
		d.err = fmt.Errorf("truncated field (%d bytes wanted, %d left)", n, len(d.p))
		return nil
	}
	b := d.p[:n]
	d.p = d.p[n:]
	return b
}

func (d *walDecoder) string() string { return string(d.bytes(int(d.uvarint()))) }

func (d *walDecoder) value() Value {
	kind := d.bytes(1)
	if d.err != nil {
		return Null()
	}
	switch ValueKind(kind[0]) {
	case KindNull:
		return Null()
	case KindString:
		return StringValue(d.string())
	case KindInt:
		b := d.bytes(8)
		if d.err != nil {
			return Null()
		}
		return IntValue(int64(binary.LittleEndian.Uint64(b)))
	case KindFloat:
		b := d.bytes(8)
		if d.err != nil {
			return Null()
		}
		return FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(b)))
	case KindBool:
		b := d.bytes(1)
		if d.err != nil {
			return Null()
		}
		return BoolValue(b[0] != 0)
	default:
		d.err = fmt.Errorf("unknown value kind %d", kind[0])
		return Null()
	}
}

func decodeBatch(payload []byte) (Batch, error) {
	d := &walDecoder{p: payload}
	n := d.uvarint()
	if d.err != nil {
		return Batch{}, d.err
	}
	if n > uint64(len(payload)) { // each op needs >= 1 byte
		return Batch{}, fmt.Errorf("implausible op count %d", n)
	}
	b := Batch{Ops: make([]Op, 0, n)}
	for i := uint64(0); i < n; i++ {
		kind := d.bytes(1)
		if d.err != nil {
			return Batch{}, fmt.Errorf("op %d: %w", i, d.err)
		}
		op := Op{
			Kind:  OpKind(kind[0]),
			Key:   d.string(),
			Src:   d.string(),
			Dst:   d.string(),
			Label: d.string(),
		}
		if np := d.uvarint(); np > 0 {
			if np > uint64(len(payload)) {
				return Batch{}, fmt.Errorf("op %d: implausible prop count %d", i, np)
			}
			op.Props = make(map[string]Value, np)
			for j := uint64(0); j < np; j++ {
				name := d.string()
				op.Props[name] = d.value()
			}
		}
		if d.err != nil {
			return Batch{}, fmt.Errorf("op %d: %w", i, d.err)
		}
		b.Ops = append(b.Ops, op)
	}
	if len(d.p) != 0 {
		return Batch{}, fmt.Errorf("%d trailing bytes after final op", len(d.p))
	}
	return b, nil
}
