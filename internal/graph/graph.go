// Package graph implements the property graph data model of Definition 2.1
// in "Path-based Algebraic Foundations of Graph Query Languages"
// (Angles, Bonifati, García, Vrgoč — EDBT 2025).
//
// A property graph is a tuple G = (N, E, ρ, λ, ν): finite sets of node and
// edge identifiers, a total endpoint function ρ : E → N×N, a partial label
// function λ and a partial property function ν. Here nodes and edges are
// stored in dense slices indexed by NodeID / EdgeID, which keeps path
// values compact and all per-object lookups O(1).
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"pathalgebra/internal/stats"
)

// NodeID identifies a node within one Graph. IDs are dense: 0..NumNodes-1.
type NodeID uint32

// EdgeID identifies an edge within one Graph. IDs are dense: 0..NumEdges-1.
type EdgeID uint32

// SymbolID is the dense intern ID of an edge label within one Graph.
// Symbols are assigned at Build in lexicographic label order, so they are
// stable for a given edge-label set: 0..NumSymbols-1. The evaluator works
// entirely in SymbolIDs — every per-edge label comparison on the hot path
// is an integer compare against the interned symbol, never a string.
type SymbolID int32

// NoSymbol is returned by SymbolOf for labels that no edge carries.
const NoSymbol SymbolID = -1

// SymbolRun is one label-homogeneous run of a node's CSR adjacency range:
// the edges with symbol Sym, ascending by edge ID. Edges aliases the CSR
// data array; do not modify.
type SymbolRun struct {
	Sym   SymbolID
	Edges []EdgeID
}

// Node is an entity of the graph. Label may be empty (λ is partial) and
// Props may be nil (ν is partial).
type Node struct {
	ID    NodeID
	Key   string // external, human-readable identifier (e.g. "n1")
	Label string
	Props map[string]Value
}

// Edge is a directed relationship between two nodes.
type Edge struct {
	ID    EdgeID
	Key   string // external, human-readable identifier (e.g. "e1")
	Src   NodeID
	Dst   NodeID
	Label string
	Props map[string]Value
}

// Graph is an immutable property graph. Construct one with a Builder;
// after Build the graph is safe for concurrent readers.
type Graph struct {
	nodes []Node
	edges []Edge

	nodeByKey map[string]NodeID
	edgeByKey map[string]EdgeID

	// Edge-label symbol table, built once at Build: symbols holds the
	// distinct edge labels in lexicographic order, symbolOf inverts it,
	// and edgeSym maps every edge to its interned symbol.
	symbols  []string
	symbolOf map[string]SymbolID
	edgeSym  []SymbolID

	// Adjacency in CSR form, built once: per node the edges occupy one
	// contiguous range of the data array, partitioned into label-
	// homogeneous runs — (symbol, edge ID) ascending — so the evaluator
	// can iterate exactly the edges matching an automaton transition
	// symbol with zero string hashing or comparison.
	outOff, inOff       []int32     // node n's range: data[off[n]:off[n+1]]
	outData, inData     []EdgeID    // CSR data arrays
	outRunOff, inRunOff []int32     // node n's runs: runs[runOff[n]:runOff[n+1]]
	outRuns, inRuns     []SymbolRun // flat per-(node, symbol) run descriptors

	nodesByLabel map[string][]NodeID
	edgesByLabel map[string][]EdgeID

	// stats is the one-pass statistics bundle computed at Build from the
	// CSR runs; the cost-based planner reads it through Stats().
	stats *stats.Stats

	// bitsets lazily caches this graph value's bitset successor index
	// (bitset.go). Every Apply/compaction publishes a fresh *Graph, so
	// the cache's lifetime equals the adjacency's — it can never serve
	// stale rows (see the bitset.go package comment).
	bitsets atomic.Pointer[bitsetCell]

	// ov, when non-nil, makes this Graph a delta view: an immutable
	// overlay of appended nodes/edges, tombstones and per-node adjacency
	// patches over a sealed base epoch (see overlay.go). A sealed graph
	// has ov == nil and every accessor below takes its original path —
	// the one extra, perfectly predicted nil check is the entire hot-path
	// cost of the live-graph layer.
	ov *overlay
}

// NumNodes returns the size of the node ID space: 0..NumNodes-1 are valid
// NodeIDs. On a delta view this includes tombstoned nodes — use NodeAlive
// to skip them, or LiveNodes for the live count.
func (g *Graph) NumNodes() int {
	if g.ov != nil {
		return len(g.ov.base.nodes) + len(g.ov.extraNodes)
	}
	return len(g.nodes)
}

// NumEdges returns the size of the edge ID space (see NumNodes).
func (g *Graph) NumEdges() int {
	if g.ov != nil {
		return len(g.ov.base.edges) + len(g.ov.extraEdges)
	}
	return len(g.edges)
}

// LiveNodes returns the number of live (non-tombstoned) nodes.
func (g *Graph) LiveNodes() int {
	if g.ov != nil {
		return g.ov.liveNodes
	}
	return len(g.nodes)
}

// LiveEdges returns the number of live edges.
func (g *Graph) LiveEdges() int {
	if g.ov != nil {
		return g.ov.liveEdges
	}
	return len(g.edges)
}

// NodeAlive reports whether id is a live node of this view — always true
// on a sealed graph, false for tombstoned IDs on a delta view. Evaluators
// iterating the dense ID space must skip dead IDs.
//
//pathalgebra:hotpath
func (g *Graph) NodeAlive(id NodeID) bool {
	if g.ov != nil {
		_, dead := g.ov.deadNodes[id]
		return !dead
	}
	return true
}

// EdgeAlive is NodeAlive for edges.
//
//pathalgebra:hotpath
func (g *Graph) EdgeAlive(id EdgeID) bool {
	if g.ov != nil {
		_, dead := g.ov.deadEdges[id]
		return !dead
	}
	return true
}

// Node returns the node with the given ID. It panics if id is out of
// range, which indicates a path from a different graph. Tombstoned IDs
// remain addressable (paths pinned to this view never contain them).
func (g *Graph) Node(id NodeID) *Node {
	if g.ov != nil {
		return g.ov.node(id)
	}
	return &g.nodes[id]
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) *Edge {
	if g.ov != nil {
		return g.ov.edge(id)
	}
	return &g.edges[id]
}

// NodeByKey looks up a live node by its external key.
func (g *Graph) NodeByKey(key string) (*Node, bool) {
	if g.ov != nil {
		return g.ov.nodeByKey(key)
	}
	id, ok := g.nodeByKey[key]
	if !ok {
		return nil, false
	}
	return &g.nodes[id], true
}

// EdgeByKey looks up a live edge by its external key.
func (g *Graph) EdgeByKey(key string) (*Edge, bool) {
	if g.ov != nil {
		return g.ov.edgeByKey(key)
	}
	id, ok := g.edgeByKey[key]
	if !ok {
		return nil, false
	}
	return &g.edges[id], true
}

// Nodes returns all live nodes in ID order. On a sealed graph the slice
// is shared (do not modify); a delta view materializes a fresh slice.
func (g *Graph) Nodes() []Node {
	if g.ov != nil {
		return g.ov.liveNodeList()
	}
	return g.nodes
}

// Edges returns all live edges in ID order (see Nodes).
func (g *Graph) Edges() []Edge {
	if g.ov != nil {
		return g.ov.liveEdgeList()
	}
	return g.edges
}

// Out returns the IDs of live edges leaving n in the CSR order: ascending
// by (label symbol, edge ID). The slice aliases shared storage; do not
// modify.
//
//pathalgebra:hotpath
func (g *Graph) Out(n NodeID) []EdgeID {
	if g.ov != nil {
		return g.ov.out(n)
	}
	return g.outData[g.outOff[n]:g.outOff[n+1]]
}

// In returns the IDs of live edges entering n in (label symbol, edge ID)
// order.
//
//pathalgebra:hotpath
func (g *Graph) In(n NodeID) []EdgeID {
	if g.ov != nil {
		return g.ov.in(n)
	}
	return g.inData[g.inOff[n]:g.inOff[n+1]]
}

// OutRuns returns n's outgoing adjacency partitioned into label-homogeneous
// runs, symbols ascending. The slice is shared; do not modify.
//
//pathalgebra:hotpath
func (g *Graph) OutRuns(n NodeID) []SymbolRun {
	if g.ov != nil {
		return g.ov.outRuns(n)
	}
	return g.outRuns[g.outRunOff[n]:g.outRunOff[n+1]]
}

// InRuns returns n's incoming adjacency partitioned into label-homogeneous
// runs, symbols ascending.
//
//pathalgebra:hotpath
func (g *Graph) InRuns(n NodeID) []SymbolRun {
	if g.ov != nil {
		return g.ov.inRuns(n)
	}
	return g.inRuns[g.inRunOff[n]:g.inRunOff[n+1]]
}

// OutWithSymbol returns the edges leaving n whose label has the given
// symbol, ascending by edge ID — the product search's inner-loop lookup.
// It binary-searches n's runs (symbols are ascending), so the cost is
// O(log runs(n)) and no non-matching edge is ever touched.
//
//pathalgebra:hotpath
func (g *Graph) OutWithSymbol(n NodeID, sym SymbolID) []EdgeID {
	if g.ov != nil {
		return findRun(g.ov.outRuns(n), sym)
	}
	return findRun(g.outRuns[g.outRunOff[n]:g.outRunOff[n+1]], sym)
}

// InWithSymbol is OutWithSymbol for incoming edges.
//
//pathalgebra:hotpath
func (g *Graph) InWithSymbol(n NodeID, sym SymbolID) []EdgeID {
	if g.ov != nil {
		return findRun(g.ov.inRuns(n), sym)
	}
	return findRun(g.inRuns[g.inRunOff[n]:g.inRunOff[n+1]], sym)
}

//pathalgebra:hotpath
func findRun(runs []SymbolRun, sym SymbolID) []EdgeID {
	lo, hi := 0, len(runs)
	for lo < hi {
		mid := (lo + hi) / 2
		if runs[mid].Sym < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(runs) && runs[lo].Sym == sym {
		return runs[lo].Edges
	}
	return nil
}

// NumSymbols returns the size of the edge-label symbol table. A delta
// view shares its base's symbol table: a batch introducing a label unseen
// by the sealed epoch forces a compaction (see Store.Apply), so the
// lexicographic symbol order the CSR discovery order depends on is never
// perturbed by an overlay.
func (g *Graph) NumSymbols() int {
	if g.ov != nil {
		return len(g.ov.base.symbols)
	}
	return len(g.symbols)
}

// SymbolName returns the label string interned as sym.
func (g *Graph) SymbolName(sym SymbolID) string {
	if g.ov != nil {
		return g.ov.base.symbols[sym]
	}
	return g.symbols[sym]
}

// SymbolOf returns the symbol interned for label, or NoSymbol when no edge
// carries it.
func (g *Graph) SymbolOf(label string) SymbolID {
	if g.ov != nil {
		if sym, ok := g.ov.base.symbolOf[label]; ok {
			return sym
		}
		return NoSymbol
	}
	if sym, ok := g.symbolOf[label]; ok {
		return sym
	}
	return NoSymbol
}

// EdgeSymbol returns the interned label symbol of edge e.
//
//pathalgebra:hotpath
func (g *Graph) EdgeSymbol(e EdgeID) SymbolID {
	if g.ov != nil {
		return g.ov.edgeSymbol(e)
	}
	return g.edgeSym[e]
}

// NodesWithLabel returns live node IDs labelled l, ascending.
func (g *Graph) NodesWithLabel(l string) []NodeID {
	if g.ov != nil {
		return g.ov.nodesWithLabel(l)
	}
	return g.nodesByLabel[l]
}

// EdgesWithLabel returns live edge IDs labelled l, ascending.
func (g *Graph) EdgesWithLabel(l string) []EdgeID {
	if g.ov != nil {
		return g.ov.edgesWithLabel(l)
	}
	return g.edgesByLabel[l]
}

// NodeLabel implements λ for nodes; returns "" when unlabelled.
func (g *Graph) NodeLabel(id NodeID) string {
	if g.ov != nil {
		return g.ov.node(id).Label
	}
	return g.nodes[id].Label
}

// EdgeLabel implements λ for edges; returns "" when unlabelled.
func (g *Graph) EdgeLabel(id EdgeID) string {
	if g.ov != nil {
		return g.ov.edge(id).Label
	}
	return g.edges[id].Label
}

// NodeProp implements ν for nodes; returns Null when undefined.
func (g *Graph) NodeProp(id NodeID, prop string) Value {
	if g.ov != nil {
		return g.ov.node(id).Props[prop]
	}
	return g.nodes[id].Props[prop]
}

// EdgeProp implements ν for edges; returns Null when undefined.
func (g *Graph) EdgeProp(id EdgeID, prop string) Value {
	if g.ov != nil {
		return g.ov.edge(id).Props[prop]
	}
	return g.edges[id].Props[prop]
}

// Endpoints implements ρ.
//
//pathalgebra:hotpath
func (g *Graph) Endpoints(id EdgeID) (src, dst NodeID) {
	if g.ov != nil {
		e := g.ov.edge(id)
		return e.Src, e.Dst
	}
	e := &g.edges[id]
	return e.Src, e.Dst
}

// Labels returns the sorted set of all labels used by live nodes and edges.
func (g *Graph) Labels() []string {
	nbl, ebl := g.nodesByLabel, g.edgesByLabel
	if g.ov != nil {
		nbl, ebl = g.ov.labelSets()
	}
	seen := make(map[string]bool, len(nbl)+len(ebl))
	for l := range nbl {
		seen[l] = true
	}
	for l := range ebl {
		seen[l] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// The zero Builder is ready to use.
type Builder struct {
	nodes []Node
	edges []Edge

	nodeByKey map[string]NodeID
	edgeByKey map[string]EdgeID

	err error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		nodeByKey: make(map[string]NodeID),
		edgeByKey: make(map[string]EdgeID),
	}
}

// AddNode appends a node with the given external key, label and properties.
// Keys must be unique among nodes and edges combined (N ∩ E = ∅ in the
// paper). Errors are deferred to Build.
func (b *Builder) AddNode(key, label string, props map[string]Value) NodeID {
	if b.err == nil {
		if _, dup := b.nodeByKey[key]; dup {
			b.err = fmt.Errorf("graph: duplicate node key %q: %w", key, ErrDuplicateKey)
		} else if _, dup := b.edgeByKey[key]; dup {
			b.err = fmt.Errorf("graph: key %q used by both a node and an edge: %w", key, ErrDuplicateKey)
		}
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Key: key, Label: label, Props: cloneProps(props)})
	b.nodeByKey[key] = id
	return id
}

// AddEdge appends a directed edge src→dst identified by key.
func (b *Builder) AddEdge(key, srcKey, dstKey, label string, props map[string]Value) EdgeID {
	src, okSrc := b.nodeByKey[srcKey]
	dst, okDst := b.nodeByKey[dstKey]
	if b.err == nil {
		switch {
		case !okSrc:
			b.err = fmt.Errorf("graph: edge %q references unknown source node %q: %w", key, srcKey, ErrUnknownNode)
		case !okDst:
			b.err = fmt.Errorf("graph: edge %q references unknown target node %q: %w", key, dstKey, ErrUnknownNode)
		}
		if _, dup := b.edgeByKey[key]; dup {
			b.err = fmt.Errorf("graph: duplicate edge key %q: %w", key, ErrDuplicateKey)
		} else if _, dup := b.nodeByKey[key]; dup {
			b.err = fmt.Errorf("graph: key %q used by both a node and an edge: %w", key, ErrDuplicateKey)
		}
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{ID: id, Key: key, Src: src, Dst: dst, Label: label, Props: cloneProps(props)})
	b.edgeByKey[key] = id
	return id
}

// Err returns the first accumulated construction error, if any.
func (b *Builder) Err() error { return b.err }

// Build finalizes the graph, interning edge labels into the symbol table
// and computing the CSR adjacency and label indexes.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		nodes:        b.nodes,
		edges:        b.edges,
		nodeByKey:    b.nodeByKey,
		edgeByKey:    b.edgeByKey,
		nodesByLabel: make(map[string][]NodeID),
		edgesByLabel: make(map[string][]EdgeID),
	}
	for i := range g.edges {
		e := &g.edges[i]
		if e.Label != "" {
			g.edgesByLabel[e.Label] = append(g.edgesByLabel[e.Label], e.ID)
		}
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.Label != "" {
			g.nodesByLabel[n.Label] = append(g.nodesByLabel[n.Label], n.ID)
		}
	}
	g.buildSymbols()
	symOrder := g.edgesBySymbol()
	g.outOff, g.outData, g.outRunOff, g.outRuns = g.buildCSR(symOrder, func(e *Edge) NodeID { return e.Src })
	g.inOff, g.inData, g.inRunOff, g.inRuns = g.buildCSR(symOrder, func(e *Edge) NodeID { return e.Dst })
	g.buildStats()
	return g, nil
}

// buildStats fills the statistics bundle from the label indexes and the
// symbol runs — one O(V + runs) pass, no per-edge work, since the CSR
// build already grouped every node's adjacency by symbol.
func (g *Graph) buildStats() {
	sb := stats.NewBuilder(len(g.symbols))
	for i, l := range g.symbols {
		sb.SetSymbol(i, l)
	}
	unlabelledNodes := len(g.nodes)
	for l, ids := range g.nodesByLabel {
		sb.NodeLabelCount(l, len(ids))
		unlabelledNodes -= len(ids)
	}
	if unlabelledNodes > 0 {
		sb.NodeLabelCount("", unlabelledNodes)
	}
	unlabelledEdges := len(g.edges)
	for l, ids := range g.edgesByLabel {
		sb.EdgeLabelCount(l, len(ids))
		unlabelledEdges -= len(ids)
	}
	if unlabelledEdges > 0 {
		sb.EdgeLabelCount("", unlabelledEdges)
	}
	for v := 0; v < len(g.nodes); v++ {
		total := 0
		for _, run := range g.OutRuns(NodeID(v)) {
			sb.ObserveOut(int(run.Sym), len(run.Edges))
			total += len(run.Edges)
		}
		if total > 0 {
			sb.ObserveAnyOut(total)
		}
		total = 0
		for _, run := range g.InRuns(NodeID(v)) {
			sb.ObserveIn(int(run.Sym), len(run.Edges))
			total += len(run.Edges)
		}
		if total > 0 {
			sb.ObserveAnyIn(total)
		}
	}
	g.stats = sb.Finish(len(g.nodes), len(g.edges))
}

// Stats returns the graph's statistics bundle, computed once at Build.
func (g *Graph) Stats() *stats.Stats {
	if g.ov != nil {
		return g.ov.stats
	}
	return g.stats
}

// buildSymbols interns the distinct edge labels (including "" for
// unlabelled edges, since λ is partial) in lexicographic order.
func (g *Graph) buildSymbols() {
	seen := make(map[string]bool)
	for i := range g.edges {
		seen[g.edges[i].Label] = true
	}
	g.symbols = make([]string, 0, len(seen))
	for l := range seen {
		g.symbols = append(g.symbols, l)
	}
	sort.Strings(g.symbols)
	g.symbolOf = make(map[string]SymbolID, len(g.symbols))
	for i, l := range g.symbols {
		g.symbolOf[l] = SymbolID(i)
	}
	g.edgeSym = make([]SymbolID, len(g.edges))
	for i := range g.edges {
		g.edgeSym[i] = g.symbolOf[g.edges[i].Label]
	}
}

// edgesBySymbol returns every edge ID ordered by (label symbol, ID) — the
// symbol-major traversal both CSR builds consume. Counting sort, O(E+S).
func (g *Graph) edgesBySymbol() []EdgeID {
	counts := make([]int32, len(g.symbols)+1)
	for _, s := range g.edgeSym {
		counts[s+1]++
	}
	for i := 0; i < len(g.symbols); i++ {
		counts[i+1] += counts[i]
	}
	out := make([]EdgeID, len(g.edges))
	for i := range g.edges { // ascending ID keeps the ID-minor order stable
		s := g.edgeSym[i]
		out[counts[s]] = EdgeID(i)
		counts[s]++
	}
	return out
}

// buildCSR flattens one adjacency direction into offset+data arrays with
// each node's range partitioned into label-homogeneous runs: edges sort by
// (endpoint node, label symbol, edge ID). Traversing the edges in
// symbol-major order (symOrder) while appending at per-node cursors yields
// each node's range already in (symbol, ID) order, so the whole build is
// O(V+E+S) time and O(V) extra memory regardless of label cardinality.
func (g *Graph) buildCSR(symOrder []EdgeID, endpoint func(*Edge) NodeID) (off []int32, data []EdgeID, runOff []int32, runs []SymbolRun) {
	n := len(g.nodes)
	off = make([]int32, n+1)
	for i := range g.edges {
		off[endpoint(&g.edges[i])+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	data = make([]EdgeID, len(g.edges))
	cursor := make([]int32, n)
	for _, e := range symOrder {
		v := endpoint(&g.edges[e])
		data[off[v]+cursor[v]] = e
		cursor[v]++
	}
	// Scan each node's range into runs.
	runOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		runOff[v] = int32(len(runs))
		lo := off[v]
		for lo < off[v+1] {
			sym := g.edgeSym[data[lo]]
			hi := lo + 1
			for hi < off[v+1] && g.edgeSym[data[hi]] == sym {
				hi++
			}
			runs = append(runs, SymbolRun{Sym: sym, Edges: data[lo:hi:hi]})
			lo = hi
		}
	}
	runOff[n] = int32(len(runs))
	return off, data, runOff, runs
}

// MustBuild is Build for tests and fixtures; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func cloneProps(props map[string]Value) map[string]Value {
	if len(props) == 0 {
		return nil
	}
	out := make(map[string]Value, len(props))
	for k, v := range props {
		out[k] = v
	}
	return out
}

// Props is a convenience constructor for property maps in fixtures:
// graph.Props("name", graph.StringValue("Moe")).
// It panics on an odd number of arguments or a non-string key.
func Props(kv ...any) map[string]Value {
	if len(kv)%2 != 0 {
		panic("graph.Props: odd number of arguments")
	}
	m := make(map[string]Value, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			panic(fmt.Sprintf("graph.Props: key %v is not a string", kv[i]))
		}
		switch v := kv[i+1].(type) {
		case Value:
			m[k] = v
		case string:
			m[k] = StringValue(v)
		case int:
			m[k] = IntValue(int64(v))
		case int64:
			m[k] = IntValue(v)
		case float64:
			m[k] = FloatValue(v)
		case bool:
			m[k] = BoolValue(v)
		default:
			panic(fmt.Sprintf("graph.Props: unsupported value type %T", kv[i+1]))
		}
	}
	return m
}
