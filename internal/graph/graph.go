// Package graph implements the property graph data model of Definition 2.1
// in "Path-based Algebraic Foundations of Graph Query Languages"
// (Angles, Bonifati, García, Vrgoč — EDBT 2025).
//
// A property graph is a tuple G = (N, E, ρ, λ, ν): finite sets of node and
// edge identifiers, a total endpoint function ρ : E → N×N, a partial label
// function λ and a partial property function ν. Here nodes and edges are
// stored in dense slices indexed by NodeID / EdgeID, which keeps path
// values compact and all per-object lookups O(1).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within one Graph. IDs are dense: 0..NumNodes-1.
type NodeID uint32

// EdgeID identifies an edge within one Graph. IDs are dense: 0..NumEdges-1.
type EdgeID uint32

// Node is an entity of the graph. Label may be empty (λ is partial) and
// Props may be nil (ν is partial).
type Node struct {
	ID    NodeID
	Key   string // external, human-readable identifier (e.g. "n1")
	Label string
	Props map[string]Value
}

// Edge is a directed relationship between two nodes.
type Edge struct {
	ID    EdgeID
	Key   string // external, human-readable identifier (e.g. "e1")
	Src   NodeID
	Dst   NodeID
	Label string
	Props map[string]Value
}

// Graph is an immutable property graph. Construct one with a Builder;
// after Build the graph is safe for concurrent readers.
type Graph struct {
	nodes []Node
	edges []Edge

	nodeByKey map[string]NodeID
	edgeByKey map[string]EdgeID

	// Adjacency, built once: edge IDs ordered by ID for determinism.
	out [][]EdgeID // outgoing edges per node
	in  [][]EdgeID // incoming edges per node

	nodesByLabel map[string][]NodeID
	edgesByLabel map[string][]EdgeID
}

// NumNodes returns |N|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID. It panics if id is out of
// range, which indicates a path from a different graph.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// NodeByKey looks up a node by its external key.
func (g *Graph) NodeByKey(key string) (*Node, bool) {
	id, ok := g.nodeByKey[key]
	if !ok {
		return nil, false
	}
	return &g.nodes[id], true
}

// EdgeByKey looks up an edge by its external key.
func (g *Graph) EdgeByKey(key string) (*Edge, bool) {
	id, ok := g.edgeByKey[key]
	if !ok {
		return nil, false
	}
	return &g.edges[id], true
}

// Nodes returns all nodes in ID order. The slice is shared; do not modify.
func (g *Graph) Nodes() []Node { return g.nodes }

// Edges returns all edges in ID order. The slice is shared; do not modify.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of edges leaving n, in ascending edge-ID order.
func (g *Graph) Out(n NodeID) []EdgeID { return g.out[n] }

// In returns the IDs of edges entering n, in ascending edge-ID order.
func (g *Graph) In(n NodeID) []EdgeID { return g.in[n] }

// NodesWithLabel returns node IDs labelled l, ascending.
func (g *Graph) NodesWithLabel(l string) []NodeID { return g.nodesByLabel[l] }

// EdgesWithLabel returns edge IDs labelled l, ascending.
func (g *Graph) EdgesWithLabel(l string) []EdgeID { return g.edgesByLabel[l] }

// NodeLabel implements λ for nodes; returns "" when unlabelled.
func (g *Graph) NodeLabel(id NodeID) string { return g.nodes[id].Label }

// EdgeLabel implements λ for edges; returns "" when unlabelled.
func (g *Graph) EdgeLabel(id EdgeID) string { return g.edges[id].Label }

// NodeProp implements ν for nodes; returns Null when undefined.
func (g *Graph) NodeProp(id NodeID, prop string) Value {
	return g.nodes[id].Props[prop]
}

// EdgeProp implements ν for edges; returns Null when undefined.
func (g *Graph) EdgeProp(id EdgeID, prop string) Value {
	return g.edges[id].Props[prop]
}

// Endpoints implements ρ.
func (g *Graph) Endpoints(id EdgeID) (src, dst NodeID) {
	e := &g.edges[id]
	return e.Src, e.Dst
}

// Labels returns the sorted set of all labels used by nodes and edges.
func (g *Graph) Labels() []string {
	seen := make(map[string]bool, len(g.nodesByLabel)+len(g.edgesByLabel))
	for l := range g.nodesByLabel {
		seen[l] = true
	}
	for l := range g.edgesByLabel {
		seen[l] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// The zero Builder is ready to use.
type Builder struct {
	nodes []Node
	edges []Edge

	nodeByKey map[string]NodeID
	edgeByKey map[string]EdgeID

	err error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		nodeByKey: make(map[string]NodeID),
		edgeByKey: make(map[string]EdgeID),
	}
}

// AddNode appends a node with the given external key, label and properties.
// Keys must be unique among nodes and edges combined (N ∩ E = ∅ in the
// paper). Errors are deferred to Build.
func (b *Builder) AddNode(key, label string, props map[string]Value) NodeID {
	if b.err == nil {
		if _, dup := b.nodeByKey[key]; dup {
			b.err = fmt.Errorf("graph: duplicate node key %q", key)
		} else if _, dup := b.edgeByKey[key]; dup {
			b.err = fmt.Errorf("graph: key %q used by both a node and an edge", key)
		}
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Key: key, Label: label, Props: cloneProps(props)})
	b.nodeByKey[key] = id
	return id
}

// AddEdge appends a directed edge src→dst identified by key.
func (b *Builder) AddEdge(key, srcKey, dstKey, label string, props map[string]Value) EdgeID {
	src, okSrc := b.nodeByKey[srcKey]
	dst, okDst := b.nodeByKey[dstKey]
	if b.err == nil {
		switch {
		case !okSrc:
			b.err = fmt.Errorf("graph: edge %q references unknown source node %q", key, srcKey)
		case !okDst:
			b.err = fmt.Errorf("graph: edge %q references unknown target node %q", key, dstKey)
		}
		if _, dup := b.edgeByKey[key]; dup {
			b.err = fmt.Errorf("graph: duplicate edge key %q", key)
		} else if _, dup := b.nodeByKey[key]; dup {
			b.err = fmt.Errorf("graph: key %q used by both a node and an edge", key)
		}
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{ID: id, Key: key, Src: src, Dst: dst, Label: label, Props: cloneProps(props)})
	b.edgeByKey[key] = id
	return id
}

// Err returns the first accumulated construction error, if any.
func (b *Builder) Err() error { return b.err }

// Build finalizes the graph, computing adjacency and label indexes.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		nodes:        b.nodes,
		edges:        b.edges,
		nodeByKey:    b.nodeByKey,
		edgeByKey:    b.edgeByKey,
		out:          make([][]EdgeID, len(b.nodes)),
		in:           make([][]EdgeID, len(b.nodes)),
		nodesByLabel: make(map[string][]NodeID),
		edgesByLabel: make(map[string][]EdgeID),
	}
	for i := range g.edges {
		e := &g.edges[i]
		g.out[e.Src] = append(g.out[e.Src], e.ID)
		g.in[e.Dst] = append(g.in[e.Dst], e.ID)
		if e.Label != "" {
			g.edgesByLabel[e.Label] = append(g.edgesByLabel[e.Label], e.ID)
		}
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.Label != "" {
			g.nodesByLabel[n.Label] = append(g.nodesByLabel[n.Label], n.ID)
		}
	}
	return g, nil
}

// MustBuild is Build for tests and fixtures; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func cloneProps(props map[string]Value) map[string]Value {
	if len(props) == 0 {
		return nil
	}
	out := make(map[string]Value, len(props))
	for k, v := range props {
		out[k] = v
	}
	return out
}

// Props is a convenience constructor for property maps in fixtures:
// graph.Props("name", graph.StringValue("Moe")).
// It panics on an odd number of arguments or a non-string key.
func Props(kv ...any) map[string]Value {
	if len(kv)%2 != 0 {
		panic("graph.Props: odd number of arguments")
	}
	m := make(map[string]Value, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			panic(fmt.Sprintf("graph.Props: key %v is not a string", kv[i]))
		}
		switch v := kv[i+1].(type) {
		case Value:
			m[k] = v
		case string:
			m[k] = StringValue(v)
		case int:
			m[k] = IntValue(int64(v))
		case int64:
			m[k] = IntValue(v)
		case float64:
			m[k] = FloatValue(v)
		case bool:
			m[k] = BoolValue(v)
		default:
			panic(fmt.Sprintf("graph.Props: unsupported value type %T", kv[i+1]))
		}
	}
	return m
}
