package graph

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// OpKind enumerates the mutation operations a Batch carries.
type OpKind uint8

const (
	OpAddNode OpKind = iota
	OpAddEdge
	OpDelNode
	OpDelEdge
)

func (k OpKind) String() string {
	switch k {
	case OpAddNode:
		return "add_node"
	case OpAddEdge:
		return "add_edge"
	case OpDelNode:
		return "del_node"
	case OpDelEdge:
		return "del_edge"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one mutation. Src/Dst/Label/Props are meaningful only for the
// kinds that use them; deletes carry just the key.
type Op struct {
	Kind  OpKind
	Key   string
	Src   string // add_edge: source node key
	Dst   string // add_edge: target node key
	Label string
	Props map[string]Value
}

// Batch is an ordered, atomic group of mutations: ops apply in order
// (later ops see earlier ones — an edge may reference a node added two
// lines up), and either the whole batch applies or none of it does.
type Batch struct {
	Ops []Op
}

// ndjsonOp is the NDJSON wire form of one op, reusing the JSON property
// encoding of ReadJSON/WriteJSON:
//
//	{"op":"add_node","key":"p9","label":"Person","props":{"name":{"kind":"string","str":"Ada"}}}
//	{"op":"add_edge","key":"k9","src":"p9","dst":"p1","label":"knows"}
//	{"op":"del_edge","key":"k3"}
//	{"op":"del_node","key":"p4"}
type ndjsonOp struct {
	Op    string               `json:"op"`
	Key   string               `json:"key"`
	Src   string               `json:"src,omitempty"`
	Dst   string               `json:"dst,omitempty"`
	Label string               `json:"label,omitempty"`
	Props map[string]jsonValue `json:"props,omitempty"`
}

var opKinds = map[string]OpKind{
	"add_node": OpAddNode,
	"add_edge": OpAddEdge,
	"del_node": OpDelNode,
	"del_edge": OpDelEdge,
}

// ReadBatchNDJSON parses a batch from NDJSON: one op object per line,
// blank lines ignored.
func ReadBatchNDJSON(r io.Reader) (Batch, error) {
	var b Batch
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var jop ndjsonOp
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&jop); err != nil {
			return Batch{}, fmt.Errorf("graph: batch line %d: %w", line, err)
		}
		op, err := jop.toOp()
		if err != nil {
			return Batch{}, fmt.Errorf("graph: batch line %d: %w", line, err)
		}
		b.Ops = append(b.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return Batch{}, fmt.Errorf("graph: reading batch: %w", err)
	}
	return b, nil
}

func (jop *ndjsonOp) toOp() (Op, error) {
	kind, ok := opKinds[jop.Op]
	if !ok {
		return Op{}, fmt.Errorf("unknown op %q", jop.Op)
	}
	if jop.Key == "" {
		return Op{}, fmt.Errorf("%s: missing key", jop.Op)
	}
	if kind == OpAddEdge && (jop.Src == "" || jop.Dst == "") {
		return Op{}, fmt.Errorf("add_edge %q: missing src or dst", jop.Key)
	}
	props, err := decodeProps(jop.Props)
	if err != nil {
		return Op{}, fmt.Errorf("%s %q: %w", jop.Op, jop.Key, err)
	}
	return Op{Kind: kind, Key: jop.Key, Src: jop.Src, Dst: jop.Dst, Label: jop.Label, Props: props}, nil
}

// ReadBatchCSV parses a batch from CSV with the fixed header
// `op,key,src,dst,label`: one op per record, src/dst blank except for
// add_edge, property columns not supported (use NDJSON for ops with
// properties).
func ReadBatchCSV(r io.Reader) (Batch, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return Batch{}, fmt.Errorf("graph: batch CSV header: %w", err)
	}
	want := []string{"op", "key", "src", "dst", "label"}
	for i, col := range want {
		if strings.TrimSpace(header[i]) != col {
			return Batch{}, fmt.Errorf("graph: batch CSV header: column %d is %q, want %q", i, header[i], col)
		}
	}
	var b Batch
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Batch{}, fmt.Errorf("graph: batch CSV: %w", err)
		}
		jop := ndjsonOp{Op: rec[0], Key: rec[1], Src: rec[2], Dst: rec[3], Label: rec[4]}
		op, err := jop.toOp()
		if err != nil {
			ln, _ := cr.FieldPos(0)
			return Batch{}, fmt.Errorf("graph: batch CSV line %d: %w", ln, err)
		}
		b.Ops = append(b.Ops, op)
	}
	return b, nil
}
