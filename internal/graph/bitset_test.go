package graph

import (
	"testing"
)

// bitsetFixture builds a small labelled multigraph:
//
//	n0 -a-> n1, n0 -a-> n2, n1 -b-> n2, n2 -a-> n0, n2 -b-> n3, n3 -b-> n3
func bitsetFixture(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	for _, k := range []string{"n0", "n1", "n2", "n3"} {
		b.AddNode(k, "N", nil)
	}
	b.AddEdge("e0", "n0", "n1", "a", nil)
	b.AddEdge("e1", "n0", "n2", "a", nil)
	b.AddEdge("e2", "n1", "n2", "b", nil)
	b.AddEdge("e3", "n2", "n0", "a", nil)
	b.AddEdge("e4", "n2", "n3", "b", nil)
	b.AddEdge("e5", "n3", "n3", "b", nil)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// checkBitsetsAgainstAdjacency verifies every row of the index against a
// brute-force scan of the view's live symbol runs.
func checkBitsetsAgainstAdjacency(t *testing.T, g *Graph, ix *BitsetIndex) {
	t.Helper()
	n := g.NumNodes()
	if ix.NumNodes() != n {
		t.Fatalf("index covers %d nodes, graph has %d", ix.NumNodes(), n)
	}
	words := ix.Words()
	for v := 0; v < n; v++ {
		wantAny := make([]uint64, words)
		for sym := 0; sym < g.NumSymbols(); sym++ {
			want := make([]uint64, words)
			for _, run := range g.OutRuns(NodeID(v)) {
				if run.Sym != SymbolID(sym) {
					continue
				}
				for _, e := range run.Edges {
					_, dst := g.Endpoints(e)
					want[dst>>6] |= 1 << (dst & 63)
					wantAny[dst>>6] |= 1 << (dst & 63)
				}
			}
			got := ix.OutRow(SymbolID(sym), NodeID(v))
			for w := 0; w < words; w++ {
				if got[w] != want[w] {
					t.Fatalf("node %d sym %d word %d: got %064b want %064b", v, sym, w, got[w], want[w])
				}
			}
		}
		gotAny := ix.AnyRow(NodeID(v))
		for w := 0; w < words; w++ {
			if gotAny[w] != wantAny[w] {
				t.Fatalf("node %d any-row word %d: got %064b want %064b", v, w, gotAny[w], wantAny[w])
			}
		}
	}
}

func TestBitsetsSealedBuild(t *testing.T) {
	g := bitsetFixture(t)
	ix, ok := g.Bitsets()
	if !ok {
		t.Fatal("Bitsets reported infeasible for a 4-node graph")
	}
	checkBitsetsAgainstAdjacency(t, g, ix)
	// The cache must return the same index on a second call.
	ix2, ok := g.Bitsets()
	if !ok || ix2 != ix {
		t.Fatalf("second Bitsets call returned a different index (%p vs %p)", ix2, ix)
	}
}

// TestBitsetsOverlayPatch exercises the patch path (base index built
// before the delta) and checks it is bit-identical to a from-scratch
// build over the same delta view.
func TestBitsetsOverlayPatch(t *testing.T) {
	mkStore := func() *Store {
		return NewStore(bitsetFixture(t), StoreOptions{CompactThreshold: -1})
	}
	batch := Batch{Ops: []Op{
		{Kind: OpAddNode, Key: "n4", Label: "N"},
		{Kind: OpAddEdge, Key: "e6", Src: "n3", Dst: "n4", Label: "a"},
		{Kind: OpAddEdge, Key: "e7", Src: "n4", Dst: "n0", Label: "b"},
		{Kind: OpDelEdge, Key: "e1"},
		{Kind: OpDelNode, Key: "n1"}, // cascades e0 and e2
	}}

	// Patched: the base builds its index before the delta applies.
	sPatched := mkStore()
	defer sPatched.Close()
	if _, ok := sPatched.Graph().Bitsets(); !ok {
		t.Fatal("base Bitsets infeasible")
	}
	if _, err := sPatched.Apply(batch); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	gPatched := sPatched.Graph()
	if gPatched.ov == nil {
		t.Fatal("expected a delta view after Apply")
	}
	ixPatched, ok := gPatched.Bitsets()
	if !ok {
		t.Fatal("patched Bitsets infeasible")
	}
	checkBitsetsAgainstAdjacency(t, gPatched, ixPatched)

	// Fresh: same delta, but the base never built an index, so the view
	// takes the full-build path. Both must agree word for word.
	sFresh := mkStore()
	defer sFresh.Close()
	if _, err := sFresh.Apply(batch); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	gFresh := sFresh.Graph()
	ixFresh, ok := gFresh.Bitsets()
	if !ok {
		t.Fatal("fresh Bitsets infeasible")
	}
	checkBitsetsAgainstAdjacency(t, gFresh, ixFresh)
	if ixFresh.NumNodes() != ixPatched.NumNodes() || ixFresh.Words() != ixPatched.Words() {
		t.Fatalf("shape mismatch: fresh %dx%d vs patched %dx%d",
			ixFresh.NumNodes(), ixFresh.Words(), ixPatched.NumNodes(), ixPatched.Words())
	}
	for v := 0; v < ixFresh.NumNodes(); v++ {
		for sym := 0; sym < gFresh.NumSymbols(); sym++ {
			fr, pr := ixFresh.OutRow(SymbolID(sym), NodeID(v)), ixPatched.OutRow(SymbolID(sym), NodeID(v))
			for w := range fr {
				if fr[w] != pr[w] {
					t.Fatalf("patch/full divergence: node %d sym %d word %d: %064b vs %064b", v, sym, w, pr[w], fr[w])
				}
			}
		}
	}

	// Tombstoned node: its row must be all-zero and no row may point at it.
	deadID := NodeID(1) // n1
	for sym := 0; sym < gPatched.NumSymbols(); sym++ {
		row := ixPatched.OutRow(SymbolID(sym), deadID)
		for w, word := range row {
			if word != 0 {
				t.Fatalf("dead node %d has out bits (sym %d word %d)", deadID, sym, w)
			}
		}
	}
	for v := 0; v < ixPatched.NumNodes(); v++ {
		if ixPatched.AnyRow(NodeID(v))[deadID>>6]&(1<<(deadID&63)) != 0 {
			t.Fatalf("node %d still reaches tombstoned node %d", v, deadID)
		}
	}
}

// TestBitsetsCompactionFreshIndex pins the staleness-by-construction
// argument: compaction publishes a fresh *Graph whose index is rebuilt,
// not inherited from the delta view.
func TestBitsetsCompactionFreshIndex(t *testing.T) {
	s := NewStore(bitsetFixture(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()
	if _, err := s.Apply(Batch{Ops: []Op{{Kind: OpDelEdge, Key: "e4"}}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	ixDelta, ok := s.Graph().Bitsets()
	if !ok {
		t.Fatal("delta Bitsets infeasible")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	gSealed := s.Graph()
	if gSealed.ov != nil {
		t.Fatal("expected a sealed graph after Compact")
	}
	ixSealed, ok := gSealed.Bitsets()
	if !ok {
		t.Fatal("sealed Bitsets infeasible")
	}
	if ixSealed == ixDelta {
		t.Fatal("compacted graph inherited the delta view's index")
	}
	checkBitsetsAgainstAdjacency(t, gSealed, ixSealed)
}

func TestBitsetsMemoryCap(t *testing.T) {
	old := MaxBitsetBytes
	MaxBitsetBytes = 8 // far below any real index
	defer func() { MaxBitsetBytes = old }()
	g := bitsetFixture(t)
	if ix, ok := g.Bitsets(); ok || ix != nil {
		t.Fatalf("Bitsets under a %d-byte cap: got (%v, %v), want (nil, false)", MaxBitsetBytes, ix, ok)
	}
	// The negative outcome is cached: raising the cap afterwards must not
	// resurrect the index for this graph value (per-value cache).
	MaxBitsetBytes = old
	if _, ok := g.Bitsets(); ok {
		t.Fatal("infeasible outcome was not cached per graph value")
	}
}
