package graph

import (
	"fmt"
	"testing"
)

// BenchmarkApplyDurability prices the WAL: one Apply of a two-op batch
// (node + edge) against an in-memory store vs a durable one. The durable
// number is fsync-bound — it is the cost of the "acked means on disk"
// guarantee, and the EXPERIMENTS.md WAL-throughput entry cites this
// pair. NewStore keeps auto-compaction off (threshold -1) on both sides
// so the comparison is pure append cost.
func BenchmarkApplyDurability(b *testing.B) {
	run := func(b *testing.B, open func(b *testing.B) *Store) {
		s := open(b)
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := s.Apply(Batch{Ops: []Op{
				{Kind: OpAddNode, Key: fmt.Sprintf("bn%d", i), Label: "Person"},
				{Kind: OpAddEdge, Key: fmt.Sprintf("be%d", i), Src: "a", Dst: fmt.Sprintf("bn%d", i), Label: "Knows"},
			}})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("memory", func(b *testing.B) {
		run(b, func(b *testing.B) *Store {
			return NewStore(seedGraph(b), durableOpts)
		})
	})
	b.Run("wal", func(b *testing.B) {
		run(b, func(b *testing.B) *Store {
			s, err := OpenDurable(b.TempDir(), seedGraph(b), durableOpts)
			if err != nil {
				b.Fatal(err)
			}
			return s
		})
	})
}
