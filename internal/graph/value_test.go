package graph

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		v    Value
		kind ValueKind
		str  string
	}{
		{Null(), KindNull, "null"},
		{StringValue("x"), KindString, "x"},
		{IntValue(-3), KindInt, "-3"},
		{FloatValue(2.5), KindFloat, "2.5"},
		{BoolValue(true), KindBool, "true"},
		{BoolValue(false), KindBool, "false"},
	}
	for _, tc := range tests {
		if tc.v.Kind != tc.kind {
			t.Errorf("%v kind = %v, want %v", tc.v, tc.v.Kind, tc.kind)
		}
		if tc.v.String() != tc.str {
			t.Errorf("String() = %q, want %q", tc.v.String(), tc.str)
		}
	}
	if !Null().IsNull() || StringValue("").IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestValueKindString(t *testing.T) {
	names := map[ValueKind]string{
		KindNull: "null", KindString: "string", KindInt: "int",
		KindFloat: "float", KindBool: "bool", ValueKind(99): "ValueKind(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b       Value
		want       int
		comparable bool
	}{
		{StringValue("a"), StringValue("b"), -1, true},
		{StringValue("b"), StringValue("b"), 0, true},
		{StringValue("c"), StringValue("b"), 1, true},
		{IntValue(1), IntValue(2), -1, true},
		{IntValue(2), IntValue(2), 0, true},
		{IntValue(3), IntValue(2), 1, true},
		{IntValue(2), FloatValue(2.0), 0, true},
		{IntValue(2), FloatValue(2.5), -1, true},
		{FloatValue(3.0), IntValue(2), 1, true},
		{BoolValue(false), BoolValue(true), -1, true},
		{BoolValue(true), BoolValue(true), 0, true},
		{BoolValue(true), BoolValue(false), 1, true},
		{Null(), Null(), 0, false},
		{Null(), IntValue(1), 0, false},
		{StringValue("1"), IntValue(1), 0, false},
		{BoolValue(true), IntValue(1), 0, false},
	}
	for _, tc := range tests {
		got, ok := tc.a.Compare(tc.b)
		if ok != tc.comparable || (ok && got != tc.want) {
			t.Errorf("Compare(%v, %v) = (%d, %v), want (%d, %v)",
				tc.a, tc.b, got, ok, tc.want, tc.comparable)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !IntValue(3).Equal(FloatValue(3)) {
		t.Error("3 should equal 3.0")
	}
	if IntValue(3).Equal(StringValue("3")) {
		t.Error("3 should not equal \"3\"")
	}
	if Null().Equal(Null()) {
		t.Error("null should not equal null (absent values)")
	}
}

// Property: Compare is antisymmetric over ints and strings.
func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, okx := IntValue(a).Compare(IntValue(b))
		y, oky := IntValue(b).Compare(IntValue(a))
		return okx && oky && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		x, okx := StringValue(a).Compare(StringValue(b))
		y, oky := StringValue(b).Compare(StringValue(a))
		return okx && oky && x == -y
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: int/float cross-kind comparison agrees with float comparison.
func TestValueCrossKindConsistent(t *testing.T) {
	f := func(a int32, b float64) bool {
		x, ok := IntValue(int64(a)).Compare(FloatValue(b))
		if !ok {
			return false
		}
		fa := float64(a)
		switch {
		case fa < b:
			return x == -1
		case fa > b:
			return x == 1
		default:
			return x == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
