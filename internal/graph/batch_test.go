package graph

import (
	"errors"
	"strings"
	"testing"
)

// TestReadBatchNDJSON: the wire format round-trips into ops, blank lines
// are skipped, and malformed lines fail with their line number.
func TestReadBatchNDJSON(t *testing.T) {
	in := `{"op":"add_node","key":"d","label":"Person","props":{"name":{"kind":"string","str":"D"}}}

{"op":"add_edge","key":"cd","src":"c","dst":"d","label":"Knows"}
{"op":"del_edge","key":"ab"}
{"op":"del_node","key":"b"}
`
	b, err := ReadBatchNDJSON(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadBatchNDJSON: %v", err)
	}
	if len(b.Ops) != 4 {
		t.Fatalf("len(Ops) = %d, want 4", len(b.Ops))
	}
	if b.Ops[0].Kind != OpAddNode || b.Ops[0].Key != "d" || b.Ops[0].Label != "Person" {
		t.Fatalf("op 0 = %+v", b.Ops[0])
	}
	if v, ok := b.Ops[0].Props["name"]; !ok || v.Str() != "D" {
		t.Fatalf("op 0 props = %+v", b.Ops[0].Props)
	}
	if b.Ops[1].Kind != OpAddEdge || b.Ops[1].Src != "c" || b.Ops[1].Dst != "d" {
		t.Fatalf("op 1 = %+v", b.Ops[1])
	}
	if b.Ops[2].Kind != OpDelEdge || b.Ops[3].Kind != OpDelNode {
		t.Fatalf("ops 2/3 = %+v / %+v", b.Ops[2], b.Ops[3])
	}
}

// TestReadBatchNDJSONErrors asserts parse-error messages by substring:
// wire-format errors carry positions ("line 2") and op names but no
// typed sentinels — nothing programmatic branches on them, unlike the
// store's validation errors (see TestBatchApplySentinels).
func TestReadBatchNDJSONErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"bad json", `{"op":`, "line 1"},
		{"unknown field", `{"op":"add_node","key":"x","labell":"P"}`, "line 1"},
		{"unknown op", `{"op":"upsert","key":"x"}`, "unknown op"},
		{"missing key", `{"op":"add_node","label":"P"}`, "missing key"},
		{"edge missing endpoints", `{"op":"add_edge","key":"e","label":"L"}`, "missing src or dst"},
		{"second line", "{\"op\":\"del_node\",\"key\":\"a\"}\n{bad}", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBatchNDJSON(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestReadBatchCSV: the fixed-header CSV form parses, and structural
// errors carry line numbers.
func TestReadBatchCSV(t *testing.T) {
	in := `op,key,src,dst,label
add_node,d,,,Person
add_edge,cd,c,d,Knows
del_edge,ab,,,
`
	b, err := ReadBatchCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadBatchCSV: %v", err)
	}
	if len(b.Ops) != 3 {
		t.Fatalf("len(Ops) = %d, want 3", len(b.Ops))
	}
	if b.Ops[0].Kind != OpAddNode || b.Ops[0].Label != "Person" {
		t.Fatalf("op 0 = %+v", b.Ops[0])
	}
	if b.Ops[1].Kind != OpAddEdge || b.Ops[1].Src != "c" || b.Ops[1].Dst != "d" {
		t.Fatalf("op 1 = %+v", b.Ops[1])
	}

	if _, err := ReadBatchCSV(strings.NewReader("op,key\nx,y\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := ReadBatchCSV(strings.NewReader("op,key,src,dst,label\nupsert,x,,,\n")); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op err = %v", err)
	}
}

// TestBatchRoundTripThroughStore: a parsed NDJSON batch applies cleanly.
func TestBatchRoundTripThroughStore(t *testing.T) {
	in := `{"op":"add_node","key":"d","label":"Person"}
{"op":"add_edge","key":"cd","src":"c","dst":"d","label":"Knows"}
`
	b, err := ReadBatchNDJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()
	if _, err := s.Apply(b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if s.Graph().LiveNodes() != 4 || s.Graph().LiveEdges() != 4 {
		t.Fatalf("live = %d/%d", s.Graph().LiveNodes(), s.Graph().LiveEdges())
	}
}

// TestBatchApplySentinels: store validation failures surface through
// batch application as errors.Is-able sentinels — the contract the
// /ingest endpoint's 422 mapping relies on.
func TestBatchApplySentinels(t *testing.T) {
	cases := []struct {
		name, in string
		want     error
	}{
		{"duplicate key", `{"op":"add_node","key":"a","label":"P"}`, ErrDuplicateKey},
		{"unknown endpoint", `{"op":"add_edge","key":"e9","src":"a","dst":"nope","label":"L"}`, ErrUnknownNode},
		{"unknown delete", `{"op":"del_node","key":"nope"}`, ErrUnknownKey},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := ReadBatchNDJSON(strings.NewReader(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
			defer s.Close()
			_, err = s.Apply(b)
			if !errors.Is(err, tc.want) {
				t.Errorf("Apply error %q is not %q", err, tc.want)
			}
		})
	}
}
