package graph

import (
	"sort"

	"pathalgebra/internal/stats"
)

// overlay is the immutable delta layer a Store lays over a sealed CSR
// epoch: appended nodes and edges (dense IDs continuing after the base),
// tombstone sets, and per-node adjacency patches that fully materialize
// the live (symbol, edge ID)-ordered adjacency of every node the delta
// touches. Untouched nodes keep reading the base CSR, so overlay reads
// cost one map probe more than sealed reads and patched reads stay in the
// exact order the sealed CSR would produce after a rebuild — the property
// the byte-identical differential gate rests on.
//
// An overlay is frozen once its epoch is published: Store.Apply builds
// the next epoch by cloning (copy-on-write; untouched slices are shared)
// and mutating the clone before anyone can observe it.
type overlay struct {
	base *Graph // sealed epoch, base.ov == nil

	// Appended objects; ID i >= len(base.nodes) lives at
	// extraNodes[i-len(base.nodes)], mirrored for edges and edge symbols.
	extraNodes   []Node
	extraEdges   []Edge
	extraEdgeSym []SymbolID

	// Tombstones, covering base and extra IDs alike.
	deadNodes map[NodeID]struct{}
	deadEdges map[EdgeID]struct{}

	// Fully materialized live adjacency of every node whose edge set the
	// delta changed (and of every appended or tombstoned node).
	outPatch map[NodeID]nodeAdj
	inPatch  map[NodeID]nodeAdj

	// Key-space patches: added* map keys introduced by deltas (possibly
	// reusing a tombstoned base key), dead* mark base keys tombstoned and
	// not re-added.
	addedNodeKeys map[string]NodeID
	addedEdgeKeys map[string]EdgeID
	deadNodeKeys  map[string]struct{}
	deadEdgeKeys  map[string]struct{}

	// Complete label indexes: shallow copies of the base maps with the
	// touched labels' slices replaced by freshly merged live ID lists.
	nodesByLabel map[string][]NodeID
	edgesByLabel map[string][]EdgeID

	liveNodes int
	liveEdges int

	// stats is this epoch's incrementally maintained statistics clone.
	stats *stats.Stats
}

// nodeAdj is one patched node's live adjacency in CSR order: data holds
// the edge IDs ascending by (symbol, edge ID), runs partitions data into
// label-homogeneous runs with symbols ascending.
type nodeAdj struct {
	data []EdgeID
	runs []SymbolRun
}

func (ov *overlay) node(id NodeID) *Node {
	if int(id) < len(ov.base.nodes) {
		return &ov.base.nodes[id]
	}
	return &ov.extraNodes[int(id)-len(ov.base.nodes)]
}

func (ov *overlay) edge(id EdgeID) *Edge {
	if int(id) < len(ov.base.edges) {
		return &ov.base.edges[id]
	}
	return &ov.extraEdges[int(id)-len(ov.base.edges)]
}

func (ov *overlay) edgeSymbol(id EdgeID) SymbolID {
	if int(id) < len(ov.base.edges) {
		return ov.base.edgeSym[id]
	}
	return ov.extraEdgeSym[int(id)-len(ov.base.edges)]
}

func (ov *overlay) nodeByKey(key string) (*Node, bool) {
	if id, ok := ov.addedNodeKeys[key]; ok {
		return ov.node(id), true
	}
	if _, dead := ov.deadNodeKeys[key]; dead {
		return nil, false
	}
	if id, ok := ov.base.nodeByKey[key]; ok {
		return &ov.base.nodes[id], true
	}
	return nil, false
}

func (ov *overlay) edgeByKey(key string) (*Edge, bool) {
	if id, ok := ov.addedEdgeKeys[key]; ok {
		return ov.edge(id), true
	}
	if _, dead := ov.deadEdgeKeys[key]; dead {
		return nil, false
	}
	if id, ok := ov.base.edgeByKey[key]; ok {
		return &ov.base.edges[id], true
	}
	return nil, false
}

func (ov *overlay) out(n NodeID) []EdgeID {
	if adj, ok := ov.outPatch[n]; ok {
		return adj.data
	}
	if int(n) < len(ov.base.nodes) {
		g := ov.base
		return g.outData[g.outOff[n]:g.outOff[n+1]]
	}
	return nil
}

func (ov *overlay) in(n NodeID) []EdgeID {
	if adj, ok := ov.inPatch[n]; ok {
		return adj.data
	}
	if int(n) < len(ov.base.nodes) {
		g := ov.base
		return g.inData[g.inOff[n]:g.inOff[n+1]]
	}
	return nil
}

func (ov *overlay) outRuns(n NodeID) []SymbolRun {
	if adj, ok := ov.outPatch[n]; ok {
		return adj.runs
	}
	if int(n) < len(ov.base.nodes) {
		g := ov.base
		return g.outRuns[g.outRunOff[n]:g.outRunOff[n+1]]
	}
	return nil
}

func (ov *overlay) inRuns(n NodeID) []SymbolRun {
	if adj, ok := ov.inPatch[n]; ok {
		return adj.runs
	}
	if int(n) < len(ov.base.nodes) {
		g := ov.base
		return g.inRuns[g.inRunOff[n]:g.inRunOff[n+1]]
	}
	return nil
}

func (ov *overlay) nodesWithLabel(l string) []NodeID { return ov.nodesByLabel[l] }
func (ov *overlay) edgesWithLabel(l string) []EdgeID { return ov.edgesByLabel[l] }

func (ov *overlay) labelSets() (map[string][]NodeID, map[string][]EdgeID) {
	return ov.nodesByLabel, ov.edgesByLabel
}

// liveNodeList materializes the live nodes in ID order — a cold path used
// only by reporting and export, never by the evaluator.
func (ov *overlay) liveNodeList() []Node {
	out := make([]Node, 0, ov.liveNodes)
	for i := range ov.base.nodes {
		if _, dead := ov.deadNodes[NodeID(i)]; !dead {
			out = append(out, ov.base.nodes[i])
		}
	}
	for i := range ov.extraNodes {
		if _, dead := ov.deadNodes[ov.extraNodes[i].ID]; !dead {
			out = append(out, ov.extraNodes[i])
		}
	}
	return out
}

func (ov *overlay) liveEdgeList() []Edge {
	out := make([]Edge, 0, ov.liveEdges)
	for i := range ov.base.edges {
		if _, dead := ov.deadEdges[EdgeID(i)]; !dead {
			out = append(out, ov.base.edges[i])
		}
	}
	for i := range ov.extraEdges {
		if _, dead := ov.deadEdges[ov.extraEdges[i].ID]; !dead {
			out = append(out, ov.extraEdges[i])
		}
	}
	return out
}

// deltaSize reports how many delta records the overlay carries — the
// compaction trigger metric: appended objects plus tombstones.
func (ov *overlay) deltaSize() int {
	return len(ov.extraNodes) + len(ov.extraEdges) + len(ov.deadNodes) + len(ov.deadEdges)
}

// clone returns a mutable deep copy sharing every untouched slice with
// the receiver. Map copies are O(delta), bounded by the compaction
// threshold; label maps are O(labels) of slice headers.
func (ov *overlay) clone() *overlay {
	cp := &overlay{
		base:          ov.base,
		extraNodes:    ov.extraNodes[:len(ov.extraNodes):len(ov.extraNodes)],
		extraEdges:    ov.extraEdges[:len(ov.extraEdges):len(ov.extraEdges)],
		extraEdgeSym:  ov.extraEdgeSym[:len(ov.extraEdgeSym):len(ov.extraEdgeSym)],
		deadNodes:     make(map[NodeID]struct{}, len(ov.deadNodes)),
		deadEdges:     make(map[EdgeID]struct{}, len(ov.deadEdges)),
		outPatch:      make(map[NodeID]nodeAdj, len(ov.outPatch)),
		inPatch:       make(map[NodeID]nodeAdj, len(ov.inPatch)),
		addedNodeKeys: make(map[string]NodeID, len(ov.addedNodeKeys)),
		addedEdgeKeys: make(map[string]EdgeID, len(ov.addedEdgeKeys)),
		deadNodeKeys:  make(map[string]struct{}, len(ov.deadNodeKeys)),
		deadEdgeKeys:  make(map[string]struct{}, len(ov.deadEdgeKeys)),
		nodesByLabel:  make(map[string][]NodeID, len(ov.nodesByLabel)),
		edgesByLabel:  make(map[string][]EdgeID, len(ov.edgesByLabel)),
		liveNodes:     ov.liveNodes,
		liveEdges:     ov.liveEdges,
		stats:         ov.stats.Clone(),
	}
	for k, v := range ov.deadNodes {
		cp.deadNodes[k] = v
	}
	for k, v := range ov.deadEdges {
		cp.deadEdges[k] = v
	}
	for k, v := range ov.outPatch {
		cp.outPatch[k] = v
	}
	for k, v := range ov.inPatch {
		cp.inPatch[k] = v
	}
	for k, v := range ov.addedNodeKeys {
		cp.addedNodeKeys[k] = v
	}
	for k, v := range ov.addedEdgeKeys {
		cp.addedEdgeKeys[k] = v
	}
	for k, v := range ov.deadNodeKeys {
		cp.deadNodeKeys[k] = v
	}
	for k, v := range ov.deadEdgeKeys {
		cp.deadEdgeKeys[k] = v
	}
	for k, v := range ov.nodesByLabel {
		cp.nodesByLabel[k] = v
	}
	for k, v := range ov.edgesByLabel {
		cp.edgesByLabel[k] = v
	}
	return cp
}

// emptyOverlay wraps a sealed graph in a zero-delta overlay — the
// starting point Store.Apply clones from on the first batch after a
// (re)seal.
func emptyOverlay(base *Graph) *overlay {
	return &overlay{
		base:          base,
		deadNodes:     map[NodeID]struct{}{},
		deadEdges:     map[EdgeID]struct{}{},
		outPatch:      map[NodeID]nodeAdj{},
		inPatch:       map[NodeID]nodeAdj{},
		addedNodeKeys: map[string]NodeID{},
		addedEdgeKeys: map[string]EdgeID{},
		deadNodeKeys:  map[string]struct{}{},
		deadEdgeKeys:  map[string]struct{}{},
		nodesByLabel:  base.nodesByLabel,
		edgesByLabel:  base.edgesByLabel,
		liveNodes:     len(base.nodes),
		liveEdges:     len(base.edges),
		stats:         base.stats,
	}
}

// rebuildAdj rematerializes node n's live adjacency for one direction
// after its edge set changed: the surviving base run edges minus
// tombstones, merged with the live extra edges incident to n, in
// (symbol, edge ID) order.
func (ov *overlay) rebuildAdj(n NodeID, out bool) nodeAdj {
	type rec struct {
		sym SymbolID
		id  EdgeID
	}
	var recs []rec
	// Surviving base edges.
	if int(n) < len(ov.base.nodes) {
		g := ov.base
		var runs []SymbolRun
		if out {
			runs = g.outRuns[g.outRunOff[n]:g.outRunOff[n+1]]
		} else {
			runs = g.inRuns[g.inRunOff[n]:g.inRunOff[n+1]]
		}
		for _, r := range runs {
			for _, e := range r.Edges {
				if _, dead := ov.deadEdges[e]; !dead {
					recs = append(recs, rec{r.Sym, e})
				}
			}
		}
	}
	// Live extra edges incident to n.
	for i := range ov.extraEdges {
		e := &ov.extraEdges[i]
		if _, dead := ov.deadEdges[e.ID]; dead {
			continue
		}
		var end NodeID
		if out {
			end = e.Src
		} else {
			end = e.Dst
		}
		if end == n {
			recs = append(recs, rec{ov.extraEdgeSym[i], e.ID})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].sym != recs[j].sym {
			return recs[i].sym < recs[j].sym
		}
		return recs[i].id < recs[j].id
	})
	adj := nodeAdj{data: make([]EdgeID, len(recs))}
	for i, r := range recs {
		adj.data[i] = r.id
	}
	for i := 0; i < len(recs); {
		j := i
		for j < len(recs) && recs[j].sym == recs[i].sym {
			j++
		}
		adj.runs = append(adj.runs, SymbolRun{Sym: recs[i].sym, Edges: adj.data[i:j]})
		i = j
	}
	return adj
}

// patchLabelIndex recomputes the live ID list of one node label from
// scratch — O(live nodes of that label). Called once per touched label
// per batch.
func (ov *overlay) patchNodeLabel(l string) {
	var ids []NodeID
	for _, id := range ov.base.nodesByLabel[l] {
		if _, dead := ov.deadNodes[id]; !dead {
			ids = append(ids, id)
		}
	}
	for i := range ov.extraNodes {
		n := &ov.extraNodes[i]
		if n.Label != l {
			continue
		}
		if _, dead := ov.deadNodes[n.ID]; !dead {
			ids = append(ids, n.ID)
		}
	}
	if len(ids) == 0 {
		delete(ov.nodesByLabel, l)
	} else {
		ov.nodesByLabel[l] = ids
	}
}

func (ov *overlay) patchEdgeLabel(l string) {
	var ids []EdgeID
	for _, id := range ov.base.edgesByLabel[l] {
		if _, dead := ov.deadEdges[id]; !dead {
			ids = append(ids, id)
		}
	}
	for i := range ov.extraEdges {
		e := &ov.extraEdges[i]
		if e.Label != l {
			continue
		}
		if _, dead := ov.deadEdges[e.ID]; !dead {
			ids = append(ids, e.ID)
		}
	}
	if len(ids) == 0 {
		delete(ov.edgesByLabel, l)
	} else {
		ov.edgesByLabel[l] = ids
	}
}
