package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func buildSample(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddNode("n1", "Person", Props("name", "Moe", "age", 40))
	b.AddNode("n2", "Person", Props("name", "Apu"))
	b.AddNode("n3", "Message", Props("content", "hi", "score", 4.5))
	b.AddEdge("e1", "n1", "n2", "Knows", Props("since", 2010))
	b.AddEdge("e2", "n1", "n3", "Likes", nil)
	b.AddEdge("e3", "n3", "n2", "Has_creator", nil)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderCounts(t *testing.T) {
	g := buildSample(t)
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestNodeLookup(t *testing.T) {
	g := buildSample(t)
	n, ok := g.NodeByKey("n1")
	if !ok {
		t.Fatal("NodeByKey(n1) not found")
	}
	if n.Label != "Person" {
		t.Errorf("label = %q, want Person", n.Label)
	}
	if got := g.NodeProp(n.ID, "name"); got.Str() != "Moe" {
		t.Errorf("name = %v, want Moe", got)
	}
	if got := g.NodeProp(n.ID, "missing"); !got.IsNull() {
		t.Errorf("missing prop = %v, want null", got)
	}
	if _, ok := g.NodeByKey("nope"); ok {
		t.Error("NodeByKey(nope) should not be found")
	}
}

func TestEdgeLookupAndEndpoints(t *testing.T) {
	g := buildSample(t)
	e, ok := g.EdgeByKey("e1")
	if !ok {
		t.Fatal("EdgeByKey(e1) not found")
	}
	src, dst := g.Endpoints(e.ID)
	if g.Node(src).Key != "n1" || g.Node(dst).Key != "n2" {
		t.Errorf("endpoints = %s→%s, want n1→n2", g.Node(src).Key, g.Node(dst).Key)
	}
	if got := g.EdgeProp(e.ID, "since"); got.Int() != 2010 {
		t.Errorf("since = %v, want 2010", got)
	}
}

func TestAdjacency(t *testing.T) {
	g := buildSample(t)
	n1, _ := g.NodeByKey("n1")
	if got := len(g.Out(n1.ID)); got != 2 {
		t.Errorf("out-degree of n1 = %d, want 2", got)
	}
	n2, _ := g.NodeByKey("n2")
	if got := len(g.In(n2.ID)); got != 2 {
		t.Errorf("in-degree of n2 = %d, want 2", got)
	}
	if got := len(g.Out(n2.ID)); got != 0 {
		t.Errorf("out-degree of n2 = %d, want 0", got)
	}
}

// TestSymbolTable checks the interned edge-label symbol table: dense,
// lexicographically ordered, with "" interned for unlabelled edges.
func TestSymbolTable(t *testing.T) {
	b := NewBuilder()
	b.AddNode("n1", "", nil)
	b.AddNode("n2", "", nil)
	b.AddEdge("e1", "n1", "n2", "Knows", nil)
	b.AddEdge("e2", "n1", "n2", "", nil) // unlabelled: λ partial
	b.AddEdge("e3", "n2", "n1", "Likes", nil)
	b.AddEdge("e4", "n1", "n2", "Knows", nil)
	g := b.MustBuild()
	if got := g.NumSymbols(); got != 3 {
		t.Fatalf("NumSymbols = %d, want 3 (\"\", Knows, Likes)", got)
	}
	for i, want := range []string{"", "Knows", "Likes"} {
		if got := g.SymbolName(SymbolID(i)); got != want {
			t.Errorf("SymbolName(%d) = %q, want %q", i, got, want)
		}
		if got := g.SymbolOf(want); got != SymbolID(i) {
			t.Errorf("SymbolOf(%q) = %d, want %d", want, got, i)
		}
	}
	if got := g.SymbolOf("Nope"); got != NoSymbol {
		t.Errorf("SymbolOf(Nope) = %d, want NoSymbol", got)
	}
	for _, tc := range []struct {
		key  string
		want string
	}{{"e1", "Knows"}, {"e2", ""}, {"e3", "Likes"}, {"e4", "Knows"}} {
		e, _ := g.EdgeByKey(tc.key)
		if got := g.SymbolName(g.EdgeSymbol(e.ID)); got != tc.want {
			t.Errorf("EdgeSymbol(%s) = %q, want %q", tc.key, got, tc.want)
		}
	}
}

// TestCSRAdjacency checks the CSR layout invariants: each node's range
// holds exactly its edges, in (symbol, edge ID) order, partitioned into
// label-homogeneous runs, and OutWithSymbol/InWithSymbol answer exactly
// the matching edges.
func TestCSRAdjacency(t *testing.T) {
	b := NewBuilder()
	for _, k := range []string{"a", "b", "c"} {
		b.AddNode(k, "", nil)
	}
	// Interleave labels so ID order differs from (symbol, ID) order.
	b.AddEdge("e0", "a", "b", "Z", nil)
	b.AddEdge("e1", "a", "c", "A", nil)
	b.AddEdge("e2", "a", "b", "Z", nil)
	b.AddEdge("e3", "a", "b", "A", nil)
	b.AddEdge("e4", "b", "c", "Z", nil)
	g := b.MustBuild()
	a, _ := g.NodeByKey("a")

	keys := func(ids []EdgeID) []string {
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = g.Edge(id).Key
		}
		return out
	}
	if got, want := strings.Join(keys(g.Out(a.ID)), ","), "e1,e3,e0,e2"; got != want {
		t.Errorf("Out(a) = %s, want %s (symbol-major, ID-minor)", got, want)
	}
	runs := g.OutRuns(a.ID)
	if len(runs) != 2 {
		t.Fatalf("OutRuns(a) has %d runs, want 2", len(runs))
	}
	if g.SymbolName(runs[0].Sym) != "A" || g.SymbolName(runs[1].Sym) != "Z" {
		t.Errorf("run symbols = %q,%q, want A,Z",
			g.SymbolName(runs[0].Sym), g.SymbolName(runs[1].Sym))
	}
	if got, want := strings.Join(keys(g.OutWithSymbol(a.ID, g.SymbolOf("Z"))), ","), "e0,e2"; got != want {
		t.Errorf("OutWithSymbol(a, Z) = %s, want %s", got, want)
	}
	if got := g.OutWithSymbol(a.ID, NoSymbol); got != nil {
		t.Errorf("OutWithSymbol(a, NoSymbol) = %v, want nil", got)
	}
	bNode, _ := g.NodeByKey("b")
	if got, want := strings.Join(keys(g.In(bNode.ID)), ","), "e3,e0,e2"; got != want {
		t.Errorf("In(b) = %s, want %s", got, want)
	}
	if got, want := strings.Join(keys(g.InWithSymbol(bNode.ID, g.SymbolOf("A"))), ","), "e3"; got != want {
		t.Errorf("InWithSymbol(b, A) = %s, want %s", got, want)
	}
	c, _ := g.NodeByKey("c")
	if got := len(g.Out(c.ID)); got != 0 {
		t.Errorf("Out(c) has %d edges, want 0", got)
	}
	if got := len(g.OutRuns(c.ID)); got != 0 {
		t.Errorf("OutRuns(c) has %d runs, want 0", got)
	}
}

func TestLabelIndexes(t *testing.T) {
	g := buildSample(t)
	if got := len(g.NodesWithLabel("Person")); got != 2 {
		t.Errorf("Person nodes = %d, want 2", got)
	}
	if got := len(g.EdgesWithLabel("Knows")); got != 1 {
		t.Errorf("Knows edges = %d, want 1", got)
	}
	if got := len(g.EdgesWithLabel("Nope")); got != 0 {
		t.Errorf("Nope edges = %d, want 0", got)
	}
	want := []string{"Has_creator", "Knows", "Likes", "Message", "Person"}
	got := g.Labels()
	if len(got) != len(want) {
		t.Fatalf("Labels() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Labels()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func(b *Builder)
		want  error
	}{
		{
			name: "duplicate node key",
			build: func(b *Builder) {
				b.AddNode("x", "", nil)
				b.AddNode("x", "", nil)
			},
			want: ErrDuplicateKey,
		},
		{
			name: "duplicate edge key",
			build: func(b *Builder) {
				b.AddNode("a", "", nil)
				b.AddNode("b", "", nil)
				b.AddEdge("e", "a", "b", "", nil)
				b.AddEdge("e", "a", "b", "", nil)
			},
			want: ErrDuplicateKey,
		},
		{
			name: "unknown source",
			build: func(b *Builder) {
				b.AddNode("a", "", nil)
				b.AddEdge("e", "missing", "a", "", nil)
			},
			want: ErrUnknownNode,
		},
		{
			name: "unknown target",
			build: func(b *Builder) {
				b.AddNode("a", "", nil)
				b.AddEdge("e", "a", "missing", "", nil)
			},
			want: ErrUnknownNode,
		},
		{
			name: "node/edge key clash",
			build: func(b *Builder) {
				b.AddNode("a", "", nil)
				b.AddNode("b", "", nil)
				b.AddEdge("a", "a", "b", "", nil)
			},
			want: ErrDuplicateKey,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			_, err := b.Build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %q is not %q", err, tc.want)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildSample(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	n, ok := g2.NodeByKey("n1")
	if !ok {
		t.Fatal("n1 lost in round trip")
	}
	if got := g2.NodeProp(n.ID, "age"); got.Int() != 40 {
		t.Errorf("age after round trip = %v, want 40", got)
	}
	m, _ := g2.NodeByKey("n3")
	if got := g2.NodeProp(m.ID, "score"); got.Float() != 4.5 {
		t.Errorf("score after round trip = %v, want 4.5", got)
	}
	e, _ := g2.EdgeByKey("e1")
	if got := g2.EdgeProp(e.ID, "since"); got.Int() != 2010 {
		t.Errorf("since after round trip = %v, want 2010", got)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"nodes":[{"key":"a"}],"edges":[{"key":"e","src":"a","dst":"zzz"}]}`,
		`{"nodes":[{"key":"a","props":{"p":{"kind":"alien"}}}],"edges":[]}`,
		`{"nodes":[{"key":"a","props":{"p":{"kind":"int"}}}],"edges":[]}`,
	}
	for i, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: ReadJSON succeeded, want error", i)
		}
	}
}

func TestPropsHelper(t *testing.T) {
	m := Props("s", "str", "i", 7, "i64", int64(8), "f", 1.5, "b", true, "v", IntValue(9))
	if m["s"].Str() != "str" || m["i"].Int() != 7 || m["i64"].Int() != 8 ||
		m["f"].Float() != 1.5 || !m["b"].Bool() || m["v"].Int() != 9 {
		t.Errorf("Props built %v", m)
	}
	for _, bad := range []func(){
		func() { Props("odd") },
		func() { Props(1, 2) },
		func() { Props("k", struct{}{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Props should panic on invalid input")
				}
			}()
			bad()
		}()
	}
}
