package graph

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV loads a property graph from two CSV streams, the common
// interchange format of LDBC SNB dumps.
//
// The node file needs a header whose first two columns are "key" and
// "label"; remaining columns become properties. The edge file's first
// four header columns are "key", "src", "dst" and "label". Property
// columns are strings by default; a ":int", ":float", ":bool" or
// ":string" suffix on the header name selects a typed parse (e.g.
// "age:int"). Any other ":suffix" — including an empty one — is not a
// type annotation: the whole column name, colon and all, becomes a
// string-valued property (so "created:stamp" is the string property
// named "created:stamp"). Empty cells leave the property unset (ν is
// partial).
func ReadCSV(nodes, edges io.Reader) (*Graph, error) {
	b := NewBuilder()
	if err := readNodeCSV(b, nodes); err != nil {
		return nil, err
	}
	if err := readEdgeCSV(b, edges); err != nil {
		return nil, err
	}
	return b.Build()
}

type propColumn struct {
	name string
	kind ValueKind
}

func parseHeader(fields []string, fixed []string, what string) ([]propColumn, error) {
	if len(fields) < len(fixed) {
		return nil, fmt.Errorf("graph: %s CSV header needs at least %v", what, fixed)
	}
	for i, want := range fixed {
		if !strings.EqualFold(strings.TrimSpace(fields[i]), want) {
			return nil, fmt.Errorf("graph: %s CSV header column %d is %q, want %q",
				what, i+1, fields[i], want)
		}
	}
	var props []propColumn
	for _, f := range fields[len(fixed):] {
		name := strings.TrimSpace(f)
		kind := KindString
		if idx := strings.LastIndexByte(name, ':'); idx >= 0 {
			switch strings.ToLower(name[idx+1:]) {
			case "int":
				kind = KindInt
				name = name[:idx]
			case "float":
				kind = KindFloat
				name = name[:idx]
			case "bool":
				kind = KindBool
				name = name[:idx]
			case "string":
				name = name[:idx]
			default:
				// Not a known type annotation (including the empty
				// suffix "name:"): keep the whole name, colon included,
				// as a string property. See the ReadCSV contract.
			}
		}
		if name == "" {
			return nil, fmt.Errorf("graph: %s CSV has an empty property column name", what)
		}
		props = append(props, propColumn{name: name, kind: kind})
	}
	return props, nil
}

func parseProps(cols []propColumn, cells []string) (map[string]Value, error) {
	var props map[string]Value
	for i, col := range cols {
		cell := strings.TrimSpace(cells[i])
		if cell == "" {
			continue
		}
		var v Value
		switch col.kind {
		case KindInt:
			n, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", col.name, err)
			}
			v = IntValue(n)
		case KindFloat:
			f, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", col.name, err)
			}
			v = FloatValue(f)
		case KindBool:
			bv, err := strconv.ParseBool(cell)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", col.name, err)
			}
			v = BoolValue(bv)
		default:
			v = StringValue(cell)
		}
		if props == nil {
			props = make(map[string]Value, len(cols))
		}
		props[col.name] = v
	}
	return props, nil
}

func readNodeCSV(b *Builder, r io.Reader) error {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("graph: reading node CSV header: %w", err)
	}
	cols, err := parseHeader(header, []string{"key", "label"}, "node")
	if err != nil {
		return err
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("graph: node CSV line %d: %w", line+1, err)
		}
		line++
		props, err := parseProps(cols, rec[2:])
		if err != nil {
			return fmt.Errorf("graph: node CSV line %d: %w", line, err)
		}
		b.AddNode(strings.TrimSpace(rec[0]), strings.TrimSpace(rec[1]), props)
	}
}

func readEdgeCSV(b *Builder, r io.Reader) error {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("graph: reading edge CSV header: %w", err)
	}
	cols, err := parseHeader(header, []string{"key", "src", "dst", "label"}, "edge")
	if err != nil {
		return err
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("graph: edge CSV line %d: %w", line+1, err)
		}
		line++
		props, err := parseProps(cols, rec[4:])
		if err != nil {
			return fmt.Errorf("graph: edge CSV line %d: %w", line, err)
		}
		b.AddEdge(strings.TrimSpace(rec[0]), strings.TrimSpace(rec[1]),
			strings.TrimSpace(rec[2]), strings.TrimSpace(rec[3]), props)
	}
}
