package graph

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pathalgebra/internal/fault"
)

// durableOpts disables auto-compaction so tests control checkpoint
// timing explicitly.
var durableOpts = StoreOptions{CompactThreshold: -1}

func openDurable(t *testing.T, dir string, seed *Graph) *Store {
	t.Helper()
	s, err := OpenDurable(dir, seed, durableOpts)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return s
}

// TestWALRoundTrip: applied batches survive close+reopen, and the
// recovered adjacency is byte-identical (in key space) to the live
// store's view at close.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, seedGraph(t))
	mustApply(t, s,
		Op{Kind: OpAddNode, Key: "d", Label: "Person", Props: Props("name", "D", "age", int64(7), "score", 1.5, "ok", true)},
		Op{Kind: OpAddEdge, Key: "cd", Src: "c", Dst: "d", Label: "Knows"},
	)
	mustApply(t, s, Op{Kind: OpDelEdge, Key: "ac"})
	want := renderAdjacency(s.Graph())
	wantEpoch := s.Epoch()
	s.Close()

	r := openDurable(t, dir, seedGraph(t))
	defer r.Close()
	if got := renderAdjacency(r.Graph()); got != want {
		t.Errorf("recovered adjacency differs:\n got %s\nwant %s", got, want)
	}
	if r.Epoch() != wantEpoch {
		t.Errorf("recovered epoch = %d, want %d", r.Epoch(), wantEpoch)
	}
	// Recovered properties round-tripped through the binary encoding.
	n, ok := r.Graph().NodeByKey("d")
	if !ok {
		t.Fatal("node d missing after recovery")
	}
	for prop, want := range map[string]Value{
		"name": StringValue("D"), "age": IntValue(7), "score": FloatValue(1.5), "ok": BoolValue(true),
	} {
		if got := r.Graph().NodeProp(n.ID, prop); got != want {
			t.Errorf("prop %s = %v, want %v", prop, got, want)
		}
	}
}

// TestWALTornTailTruncated: a crash mid-append leaves a torn final
// record; recovery truncates it and serves the pre-batch state, and the
// log accepts appends again.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, seedGraph(t))
	mustApply(t, s, Op{Kind: OpAddNode, Key: "d", Label: "Person"})
	pre := renderAdjacency(s.Graph())
	s.Close()

	// Simulate the torn write by chopping bytes off the log's tail.
	walPath := filepath.Join(dir, WALFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir, seedGraph(t))
	defer r.Close()
	if got := renderAdjacency(r.Graph()); got == pre {
		t.Fatal("torn record replayed in full — truncation did not drop it")
	}
	if _, ok := r.Graph().NodeByKey("d"); ok {
		t.Fatal("torn batch's node visible after recovery")
	}
	// The truncated log is healthy: appends apply and survive.
	mustApply(t, r, Op{Kind: OpAddNode, Key: "e", Label: "Person"})
	after := renderAdjacency(r.Graph())
	r.Close()
	r2 := openDurable(t, dir, seedGraph(t))
	defer r2.Close()
	if got := renderAdjacency(r2.Graph()); got != after {
		t.Errorf("post-truncation append lost:\n got %s\nwant %s", got, after)
	}
}

// TestWALMidLogCorruption: a checksum failure BELOW intact records is
// data loss over acknowledged batches — recovery must refuse with
// ErrWALCorrupt, not truncate silently.
func TestWALMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, seedGraph(t))
	mustApply(t, s, Op{Kind: OpAddNode, Key: "d", Label: "Person"})
	mustApply(t, s, Op{Kind: OpAddNode, Key: "e", Label: "Person"})
	s.Close()

	walPath := filepath.Join(dir, WALFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the FIRST record (just past its header).
	data[walHeaderLen+walRecHdrLen] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenDurable(dir, seedGraph(t), durableOpts)
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("mid-log corruption: got %v, want ErrWALCorrupt", err)
	}
}

// TestWALCheckpointNoDuplicateReplay: a crash between the checkpoint's
// snapshot rename and its WAL reset leaves a stale WAL whose records
// pre-date the snapshot; replay must skip them (reapplying an add would
// be ErrDuplicateKey on the snapshot state).
func TestWALCheckpointNoDuplicateReplay(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, seedGraph(t))
	mustApply(t, s, Op{Kind: OpAddNode, Key: "d", Label: "Person"})

	// Crash the checkpoint after the snapshot landed, before the WAL
	// reset: the snapshot now covers the logged batch.
	restore := fault.Arm(fault.Schedule{Rules: []fault.Rule{{Site: "wal.reset", Nth: 1}}})
	err := s.Checkpoint()
	restore()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Checkpoint with wal.reset fault: got %v, want injected", err)
	}
	want := renderAdjacency(s.Graph())
	wantEpoch := s.Epoch()
	s.Close()

	r := openDurable(t, dir, seedGraph(t))
	defer r.Close()
	if got := renderAdjacency(r.Graph()); got != want {
		t.Errorf("stale-WAL recovery diverged:\n got %s\nwant %s", got, want)
	}
	if r.Epoch() != wantEpoch {
		t.Errorf("recovered epoch = %d, want %d", r.Epoch(), wantEpoch)
	}
}

// TestWALCheckpointRoundTrip: after a clean checkpoint the WAL is empty
// and recovery comes from the snapshot alone; batches after the
// checkpoint replay on top of it.
func TestWALCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, seedGraph(t))
	mustApply(t, s, Op{Kind: OpAddNode, Key: "d", Label: "Person"})
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if n, _, ok := s.WALStats(); !ok || n != 0 {
		t.Fatalf("WAL records after checkpoint = %d (ok=%v), want 0", n, ok)
	}
	if s.Checkpoints() != 1 {
		t.Fatalf("Checkpoints() = %d, want 1", s.Checkpoints())
	}
	mustApply(t, s, Op{Kind: OpAddEdge, Key: "cd", Src: "c", Dst: "d", Label: "Knows"})
	want := renderAdjacency(s.Graph())
	wantEpoch := s.Epoch()
	s.Close()

	// The snapshot carries the full state: the seed is ignored (pass a
	// graph that would collide if replayed from scratch).
	r := openDurable(t, dir, nil)
	defer r.Close()
	if got := renderAdjacency(r.Graph()); got != want {
		t.Errorf("post-checkpoint recovery diverged:\n got %s\nwant %s", got, want)
	}
	if r.Epoch() != wantEpoch {
		t.Errorf("recovered epoch = %d, want %d", r.Epoch(), wantEpoch)
	}
}

// TestWALReplayCollidingSeed: replaying a log against a seed graph
// whose keys collide with logged batches is a typed validation error —
// never a panic, never silent divergence.
func TestWALReplayCollidingSeed(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, seedGraph(t))
	mustApply(t, s, Op{Kind: OpAddNode, Key: "d", Label: "Person"})
	s.Close()

	b := NewBuilder()
	b.AddNode("a", "Person", nil)
	b.AddNode("d", "Person", nil) // collides with the logged batch
	colliding := b.MustBuild()

	_, err := OpenDurable(dir, colliding, durableOpts)
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("colliding-seed replay: got %v, want ErrDuplicateKey", err)
	}
}

// TestWALAppendFailureRepairs: an injected append/fsync failure fails
// the Apply with a typed error, nothing publishes, and the log repairs
// itself — the NEXT Apply succeeds and survives recovery.
func TestWALAppendFailureRepairs(t *testing.T) {
	for _, site := range []string{"wal.append", "wal.torn", "wal.fsync"} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			s := openDurable(t, dir, seedGraph(t))
			pre := renderAdjacency(s.Graph())
			preEpoch := s.Epoch()

			restore := fault.Arm(fault.Schedule{Rules: []fault.Rule{{Site: site, Nth: 1}}})
			_, err := s.Apply(Batch{Ops: []Op{{Kind: OpAddNode, Key: "d", Label: "Person"}}})
			restore()
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Apply under %s fault: got %v, want injected", site, err)
			}
			if got := renderAdjacency(s.Graph()); got != pre || s.Epoch() != preEpoch {
				t.Fatal("failed Apply published state")
			}

			mustApply(t, s, Op{Kind: OpAddNode, Key: "e", Label: "Person"})
			want := renderAdjacency(s.Graph())
			s.Close()

			r := openDurable(t, dir, seedGraph(t))
			defer r.Close()
			if got := renderAdjacency(r.Graph()); got != want {
				t.Errorf("recovery after repaired %s failure diverged:\n got %s\nwant %s", site, got, want)
			}
		})
	}
}

// TestWALPoisoned: when the post-failure repair itself fails (simulated
// by yanking the file out from under the log), the WAL poisons itself
// and the store turns down writes with ErrWALFailed instead of
// acknowledging unlogged batches.
func TestWALPoisoned(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, seedGraph(t))
	defer s.Close()

	s.mu.Lock()
	s.wal.f.Close() // every Write and Truncate on the handle now fails
	s.mu.Unlock()

	_, err := s.Apply(Batch{Ops: []Op{{Kind: OpAddNode, Key: "d", Label: "Person"}}})
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("Apply on dead file: got %v, want ErrWALFailed", err)
	}
	_, err = s.Apply(Batch{Ops: []Op{{Kind: OpAddNode, Key: "e", Label: "Person"}}})
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("Apply on poisoned WAL: got %v, want sticky ErrWALFailed", err)
	}
	s.mu.Lock()
	s.wal.f = nil // Close would double-close the dead handle
	s.mu.Unlock()
}

// TestBatchEncodingRoundTrip: the WAL's binary batch encoding is
// lossless over all op kinds and value kinds.
func TestBatchEncodingRoundTrip(t *testing.T) {
	in := Batch{Ops: []Op{
		{Kind: OpAddNode, Key: "n1", Label: "Person", Props: map[string]Value{
			"s": StringValue("héllo\x00world"), "i": IntValue(-42), "f": FloatValue(-0.25), "b": BoolValue(false), "z": Null(),
		}},
		{Kind: OpAddEdge, Key: "e1", Src: "n1", Dst: "n1", Label: "Knows"},
		{Kind: OpDelEdge, Key: "e1"},
		{Kind: OpDelNode, Key: "n1"},
		{Kind: OpAddNode, Key: "", Label: ""}, // empty strings survive
	}}
	out, err := decodeBatch(appendBatch(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip diverged:\n in  %+v\n out %+v", in, out)
	}
	// Encoding is deterministic (sorted props) — same bytes twice.
	a, b := appendBatch(nil, in), appendBatch(nil, in)
	if string(a) != string(b) {
		t.Error("encoding is not deterministic across calls")
	}
}

// TestDecodeBatchRejectsGarbage: truncated and trailing-garbage
// payloads fail with errors, not panics (the CRC normally screens
// these; decode is the second line of defense).
func TestDecodeBatchRejectsGarbage(t *testing.T) {
	good := appendBatch(nil, Batch{Ops: []Op{{Kind: OpAddNode, Key: "k", Label: "L"}}})
	for i := 1; i < len(good); i++ {
		if _, err := decodeBatch(good[:i]); err == nil {
			t.Errorf("truncation at %d decoded without error", i)
		}
	}
	if _, err := decodeBatch(append(append([]byte{}, good...), 0x01)); err == nil {
		t.Error("trailing garbage decoded without error")
	}
}
