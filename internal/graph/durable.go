package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pathalgebra/internal/fault"
)

// SnapshotFile and WALFile are the fixed file names inside a durable
// store's data directory.
const (
	SnapshotFile = "snapshot.graph"
	WALFile      = "wal.log"
)

// OpenDurable opens (or initializes) a WAL-durable store in dir.
//
// Recovery order: the newest checkpoint snapshot if one exists (the
// seed graph otherwise), then every WAL record past the snapshot's
// epoch, replayed through the ordinary Apply validation — a record that
// no longer validates (e.g. the seed graph changed between runs and its
// keys collide with logged batches) is a typed error wrapping the usual
// sentinels, never a panic. A torn final record is truncated away;
// corruption below intact records is ErrWALCorrupt.
//
// The returned store logs every subsequent Apply to the WAL before
// publishing its epoch, and checkpoints (snapshot + WAL reset) after
// each background compaction; Close closes the WAL.
func OpenDurable(dir string, seed *Graph, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graph: OpenDurable: %w", err)
	}
	snapPath := filepath.Join(dir, SnapshotFile)
	walPath := filepath.Join(dir, WALFile)
	// A crash mid-checkpoint can leave temp files; they were never
	// renamed into place, so they are dead weight.
	os.Remove(snapPath + ".tmp")
	os.Remove(walPath + ".tmp")

	base := seed
	var snapEpoch uint64
	switch g, epoch, err := readSnapshot(snapPath); {
	case err == nil:
		base, snapEpoch = g, epoch
	case errors.Is(err, os.ErrNotExist):
	default:
		return nil, err
	}
	if base == nil {
		return nil, fmt.Errorf("graph: OpenDurable: no snapshot in %s and no seed graph", dir)
	}

	var w *WAL
	var batches []Batch
	if _, err := os.Stat(walPath); errors.Is(err, os.ErrNotExist) {
		w, err = createWAL(walPath, snapEpoch)
		if err != nil {
			return nil, err
		}
	} else {
		w, batches, _, err = openWAL(walPath)
		if err != nil {
			return nil, err
		}
		if w.baseEpoch > snapEpoch {
			w.Close()
			return nil, fmt.Errorf("%w: WAL base epoch %d is ahead of snapshot epoch %d", ErrWALCorrupt, w.baseEpoch, snapEpoch)
		}
	}

	s := newStoreAt(base, snapEpoch, opts)
	for i, b := range batches {
		// Record i applies on top of epoch baseEpoch+i. Records at or
		// below the snapshot epoch were already folded into the snapshot
		// by a checkpoint whose WAL reset did not complete — skipping
		// them is what makes replay idempotent across that crash window.
		if w.baseEpoch+uint64(i)+1 <= snapEpoch {
			continue
		}
		if _, err := s.Apply(b); err != nil {
			s.Close()
			w.Close()
			return nil, fmt.Errorf("graph: WAL replay record %d: %w", i, err)
		}
	}
	// Attach the WAL only after replay: replayed batches must not be
	// re-appended to the log they came from.
	s.mu.Lock()
	s.wal = w
	s.snapshotPath = snapPath
	s.mu.Unlock()
	return s, nil
}

// writeSnapshot atomically writes the snapshot file: temp file, fsync,
// rename, directory fsync. Fault sites: checkpoint.write (fail before
// the temp file is complete), checkpoint.rename (fail between the
// durable temp file and its rename into place).
func writeSnapshot(path string, epoch uint64, g *Graph) error {
	if err := fault.Hit("checkpoint.write"); err != nil {
		return fmt.Errorf("graph: checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("graph: checkpoint: %w", err)
	}
	hdr := make([]byte, walHeaderLen)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:], epoch)
	if _, err := f.Write(hdr); err == nil {
		if err = g.WriteJSON(f); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("graph: checkpoint: %w", err)
	}
	if err := fault.Hit("checkpoint.rename"); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("graph: checkpoint: %w", err)
	}
	if err := renameAndSyncDir(tmp, path); err != nil {
		return fmt.Errorf("graph: checkpoint: %w", err)
	}
	return nil
}

// readSnapshot loads a snapshot file written by writeSnapshot.
func readSnapshot(path string) (*Graph, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	hdr := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr[:8]) != snapMagic {
		return nil, 0, fmt.Errorf("graph: snapshot %s: bad header", path)
	}
	epoch := binary.LittleEndian.Uint64(hdr[8:])
	g, err := ReadJSON(f)
	if err != nil {
		return nil, 0, fmt.Errorf("graph: snapshot %s: %w", path, err)
	}
	return g, epoch, nil
}
