package graph

import "sort"

// Footprint is the set of graph labels a query plan reads — the unit of
// result-cache invalidation. A cached result is stale only when a later
// batch touched a label its plan's footprint covers: a delta on `likes`
// leaves every cached `knows`-only result hot. AllNodes/AllEdges are the
// conservative catch-alls for plans that scan unlabelled object space
// (the Nodes/Edges atoms) — any node (edge) delta invalidates them.
type Footprint struct {
	AllNodes   bool
	AllEdges   bool
	NodeLabels []string
	EdgeLabels []string
}

// Normalize sorts and dedupes the label lists (and drops them when the
// corresponding catch-all is set), giving footprints a canonical form.
func (f Footprint) Normalize() Footprint {
	if f.AllNodes {
		f.NodeLabels = nil
	} else {
		f.NodeLabels = dedupe(f.NodeLabels)
	}
	if f.AllEdges {
		f.EdgeLabels = nil
	} else {
		f.EdgeLabels = dedupe(f.EdgeLabels)
	}
	return f
}

func dedupe(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
