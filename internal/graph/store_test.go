package graph

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// seedGraph builds a small two-label graph: persons a,b,c in a Knows
// chain a→b→c with a Likes edge a→c.
func seedGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddNode("a", "Person", Props("name", "A"))
	b.AddNode("b", "Person", Props("name", "B"))
	b.AddNode("c", "Person", Props("name", "C"))
	b.AddEdge("ab", "a", "b", "Knows", nil)
	b.AddEdge("bc", "b", "c", "Knows", nil)
	b.AddEdge("ac", "a", "c", "Likes", nil)
	return b.MustBuild()
}

func mustApply(t *testing.T, s *Store, ops ...Op) uint64 {
	t.Helper()
	epoch, err := s.Apply(Batch{Ops: ops})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return epoch
}

// outKeys renders n's out-neighborhood restricted to label as edge keys —
// the byte-identity currency of the differential tests (IDs shift across
// rebuilds, keys never do).
func outKeys(g *Graph, nodeKey, label string) []string {
	n, ok := g.NodeByKey(nodeKey)
	if !ok {
		return nil
	}
	var keys []string
	for _, e := range g.OutWithSymbol(n.ID, g.SymbolOf(label)) {
		keys = append(keys, g.Edge(e).Key)
	}
	return keys
}

// TestStoreApplyVisibility: applied ops are visible through every epoch
// accessor — key maps, adjacency, label indexes — including ops that
// reference objects added earlier in the same batch.
func TestStoreApplyVisibility(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()

	epoch := mustApply(t, s,
		Op{Kind: OpAddNode, Key: "d", Label: "Person", Props: Props("name", "D")},
		Op{Kind: OpAddEdge, Key: "cd", Src: "c", Dst: "d", Label: "Knows"},
		Op{Kind: OpAddEdge, Key: "da", Src: "d", Dst: "a", Label: "Knows"},
	)
	if epoch != 1 || s.Epoch() != 1 {
		t.Fatalf("epoch = %d / %d, want 1", epoch, s.Epoch())
	}
	g := s.Graph()
	if g.LiveNodes() != 4 || g.LiveEdges() != 5 {
		t.Fatalf("live counts = %d/%d, want 4/5", g.LiveNodes(), g.LiveEdges())
	}
	d, ok := g.NodeByKey("d")
	if !ok || d.Label != "Person" {
		t.Fatalf("NodeByKey(d) = %v, %v", d, ok)
	}
	if got := outKeys(g, "c", "Knows"); !reflect.DeepEqual(got, []string{"cd"}) {
		t.Fatalf("out(c, Knows) = %v, want [cd]", got)
	}
	if got := outKeys(g, "d", "Knows"); !reflect.DeepEqual(got, []string{"da"}) {
		t.Fatalf("out(d, Knows) = %v, want [da]", got)
	}
	persons := g.NodesWithLabel("Person")
	if len(persons) != 4 {
		t.Fatalf("NodesWithLabel(Person) = %d nodes, want 4", len(persons))
	}
	if len(g.EdgesWithLabel("Knows")) != 4 {
		t.Fatalf("EdgesWithLabel(Knows) = %d, want 4", len(g.EdgesWithLabel("Knows")))
	}
}

// TestStoreDeleteCascade: deleting a node kills its incident edges, and
// adjacency of the surviving endpoints is rebuilt without them.
func TestStoreDeleteCascade(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()

	mustApply(t, s, Op{Kind: OpDelNode, Key: "c"})
	g := s.Graph()
	if g.LiveNodes() != 2 || g.LiveEdges() != 1 {
		t.Fatalf("live counts after del = %d/%d, want 2/1", g.LiveNodes(), g.LiveEdges())
	}
	if _, ok := g.NodeByKey("c"); ok {
		t.Fatal("NodeByKey(c) still resolves after delete")
	}
	for _, key := range []string{"bc", "ac"} {
		if _, ok := g.EdgeByKey(key); ok {
			t.Fatalf("EdgeByKey(%s) survived its endpoint's deletion", key)
		}
	}
	if got := outKeys(g, "b", "Knows"); got != nil {
		t.Fatalf("out(b, Knows) = %v, want empty", got)
	}
	if got := outKeys(g, "a", "Knows"); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("out(a, Knows) = %v, want [ab]", got)
	}
	if got := outKeys(g, "a", "Likes"); got != nil {
		t.Fatalf("out(a, Likes) = %v, want empty", got)
	}
}

// TestStoreKeyReuse: a deleted key can be re-added (a fresh object under
// a fresh ID); a live key cannot.
func TestStoreKeyReuse(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()

	mustApply(t, s, Op{Kind: OpDelEdge, Key: "ab"})
	mustApply(t, s, Op{Kind: OpAddEdge, Key: "ab", Src: "b", Dst: "a", Label: "Knows"})
	g := s.Graph()
	e, ok := g.EdgeByKey("ab")
	if !ok {
		t.Fatal("re-added edge key does not resolve")
	}
	if src, dst := g.Node(e.Src).Key, g.Node(e.Dst).Key; src != "b" || dst != "a" {
		t.Fatalf("re-added ab runs %s→%s, want b→a", src, dst)
	}
	if _, err := s.Apply(Batch{Ops: []Op{{Kind: OpAddEdge, Key: "ab", Src: "a", Dst: "b", Label: "Knows"}}}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("re-adding a live key: err = %v, want ErrDuplicateKey", err)
	}
}

// TestStoreTypedErrors: Apply wraps the typed sentinels and a failed
// batch applies nothing (atomicity).
func TestStoreTypedErrors(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()

	cases := []struct {
		name string
		ops  []Op
		want error
	}{
		{"dup node", []Op{{Kind: OpAddNode, Key: "a", Label: "Person"}}, ErrDuplicateKey},
		{"dup edge", []Op{{Kind: OpAddEdge, Key: "ab", Src: "a", Dst: "b", Label: "Knows"}}, ErrDuplicateKey},
		{"node key vs edge key", []Op{{Kind: OpAddNode, Key: "ab", Label: "Person"}}, ErrDuplicateKey},
		{"unknown src", []Op{{Kind: OpAddEdge, Key: "zz", Src: "zebra", Dst: "a", Label: "Knows"}}, ErrUnknownNode},
		{"unknown dst", []Op{{Kind: OpAddEdge, Key: "zz", Src: "a", Dst: "zebra", Label: "Knows"}}, ErrUnknownNode},
		{"del unknown node", []Op{{Kind: OpDelNode, Key: "zebra"}}, ErrUnknownKey},
		{"del unknown edge", []Op{{Kind: OpDelEdge, Key: "zebra"}}, ErrUnknownKey},
		// A valid op before the failing one must not leak out of the batch.
		{"atomic", []Op{
			{Kind: OpAddNode, Key: "ghost", Label: "Person"},
			{Kind: OpDelNode, Key: "zebra"},
		}, ErrUnknownKey},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Apply(Batch{Ops: tc.ops}); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
	if s.Epoch() != 0 || s.Graph().LiveNodes() != 3 {
		t.Fatalf("failed batches moved the store: epoch=%d nodes=%d", s.Epoch(), s.Graph().LiveNodes())
	}
	if _, ok := s.Graph().NodeByKey("ghost"); ok {
		t.Fatal("prefix of a failed batch leaked into the store")
	}
}

// TestBuilderTypedErrors: the Build/CSV validation errors are errors.Is-
// able with the same sentinels the ingest endpoint maps to 422.
func TestBuilderTypedErrors(t *testing.T) {
	dup := NewBuilder()
	dup.AddNode("a", "P", nil)
	dup.AddNode("a", "P", nil)
	if _, err := dup.Build(); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate node: err = %v, want ErrDuplicateKey", err)
	}
	unk := NewBuilder()
	unk.AddNode("a", "P", nil)
	unk.AddEdge("e", "a", "missing", "L", nil)
	if _, err := unk.Build(); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown target: err = %v, want ErrUnknownNode", err)
	}
}

// TestStoreCompactionEquivalence: compaction preserves the epoch number
// and produces a graph whose rendered structure matches a from-scratch
// build over the same live objects.
func TestStoreCompactionEquivalence(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()

	mustApply(t, s,
		Op{Kind: OpAddNode, Key: "d", Label: "Person"},
		Op{Kind: OpAddEdge, Key: "cd", Src: "c", Dst: "d", Label: "Knows"},
	)
	mustApply(t, s, Op{Kind: OpDelEdge, Key: "ab"})
	live := s.Graph()
	epoch := s.Epoch()

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	sealed := s.Graph()
	if sealed.ov != nil {
		t.Fatal("compaction left a delta view")
	}
	if s.Epoch() != epoch {
		t.Fatalf("compaction changed the epoch: %d → %d", epoch, s.Epoch())
	}

	scratch := NewBuilder()
	for _, n := range live.Nodes() {
		scratch.AddNode(n.Key, n.Label, n.Props)
	}
	for _, e := range live.Edges() {
		scratch.AddEdge(e.Key, live.Node(e.Src).Key, live.Node(e.Dst).Key, e.Label, e.Props)
	}
	want := scratch.MustBuild()

	if got, w := renderAdjacency(sealed), renderAdjacency(want); got != w {
		t.Fatalf("compacted adjacency differs from from-scratch build:\n got %s\nwant %s", got, w)
	}
	if got, w := renderAdjacency(live), renderAdjacency(want); got != w {
		t.Fatalf("pre-compaction delta view differs from from-scratch build:\n got %s\nwant %s", got, w)
	}
}

// renderAdjacency serializes a graph's live structure in key space:
// nodes in key-sorted order with their per-label out-edge key lists.
func renderAdjacency(g *Graph) string {
	var sb strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&sb, "%s[%s]:", n.Key, n.Label)
		for _, r := range g.OutRuns(n.ID) {
			fmt.Fprintf(&sb, " %s(", g.SymbolName(r.Sym))
			for _, e := range r.Edges {
				fmt.Fprintf(&sb, "%s→%s,", g.Edge(e).Key, g.Node(g.Edge(e).Dst).Key)
			}
			sb.WriteString(")")
		}
		sb.WriteString("; ")
	}
	return sb.String()
}

// TestStoreNewLabelReseals: a batch introducing an unseen edge label
// reseals inline — the published epoch is a sealed CSR that knows the
// new symbol, and discovery order matches a from-scratch build.
func TestStoreNewLabelReseals(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()

	before := s.Compactions()
	mustApply(t, s, Op{Kind: OpAddEdge, Key: "follows-ab", Src: "a", Dst: "b", Label: "Follows"})
	g := s.Graph()
	if g.ov != nil {
		t.Fatal("new-label batch did not reseal")
	}
	if s.Compactions() != before+1 {
		t.Fatalf("reseal not counted as compaction: %d → %d", before, s.Compactions())
	}
	if g.SymbolOf("Follows") == NoSymbol {
		t.Fatal("new label has no symbol after reseal")
	}
	if got := outKeys(g, "a", "Follows"); !reflect.DeepEqual(got, []string{"follows-ab"}) {
		t.Fatalf("out(a, Follows) = %v", got)
	}
}

// TestStoreAutoCompaction: crossing the threshold with SyncCompact folds
// the delta inline.
func TestStoreAutoCompaction(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: 3, SyncCompact: true})
	defer s.Close()

	mustApply(t, s, Op{Kind: OpAddNode, Key: "x1", Label: "Person"})
	if s.Graph().ov == nil {
		t.Fatal("compacted below threshold")
	}
	mustApply(t, s,
		Op{Kind: OpAddNode, Key: "x2", Label: "Person"},
		Op{Kind: OpAddEdge, Key: "xx", Src: "x1", Dst: "x2", Label: "Knows"},
	)
	if s.Graph().ov != nil {
		t.Fatalf("delta size %d ≥ threshold 3 but no compaction", s.DeltaSize())
	}
	if s.DeltaSize() != 0 {
		t.Fatalf("DeltaSize after compaction = %d", s.DeltaSize())
	}
}

// TestStoreSnapshotPinning: a pinned snapshot's view survives later
// batches and compactions untouched.
func TestStoreSnapshotPinning(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()

	mustApply(t, s, Op{Kind: OpAddNode, Key: "d", Label: "Person"})
	sn := s.Snapshot()
	defer sn.Release()
	if sn.Epoch() != 1 {
		t.Fatalf("snapshot epoch = %d, want 1", sn.Epoch())
	}
	wantAdj := renderAdjacency(sn.Graph())

	mustApply(t, s, Op{Kind: OpDelNode, Key: "a"})
	mustApply(t, s, Op{Kind: OpAddEdge, Key: "cd", Src: "c", Dst: "d", Label: "Knows"})
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}

	if got := renderAdjacency(sn.Graph()); got != wantAdj {
		t.Fatalf("pinned view changed under writes:\n got %s\nwant %s", got, wantAdj)
	}
	if sn.Graph().LiveNodes() != 4 {
		t.Fatalf("pinned LiveNodes = %d, want 4", sn.Graph().LiveNodes())
	}
	if states, pins := s.LiveEpochs(); states < 2 || pins != 1 {
		t.Fatalf("LiveEpochs = %d states / %d pins, want ≥2 states and 1 pin", states, pins)
	}
	sn.Release()
	sn.Release() // idempotent
	if _, pins := s.LiveEpochs(); pins != 0 {
		t.Fatalf("pins after release = %d, want 0", pins)
	}
}

// TestStoreIncrementalStats: the live epoch's statistics equal a full
// rebuild's, except the documented monotone upper bounds (Max*) after
// deletions.
func TestStoreIncrementalStats(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()

	// Insert-only prefix: everything must match exactly.
	mustApply(t, s,
		Op{Kind: OpAddNode, Key: "d", Label: "Person"},
		Op{Kind: OpAddNode, Key: "m1", Label: "Message"},
		Op{Kind: OpAddEdge, Key: "cd", Src: "c", Dst: "d", Label: "Knows"},
		Op{Kind: OpAddEdge, Key: "dm", Src: "d", Dst: "m1", Label: "Likes"},
		Op{Kind: OpAddEdge, Key: "am", Src: "a", Dst: "m1", Label: "Likes"},
	)
	assertStatsMatch(t, s.Graph(), true)

	// Deletions: exact except Max*, which may only over-estimate.
	mustApply(t, s, Op{Kind: OpDelNode, Key: "a"}, Op{Kind: OpDelEdge, Key: "cd"})
	assertStatsMatch(t, s.Graph(), false)
}

func assertStatsMatch(t *testing.T, live *Graph, exactMax bool) {
	t.Helper()
	rebuilt, err := live.Rebuild()
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	got, want := live.Stats(), rebuilt.Stats()
	if got.Nodes != want.Nodes || got.Edges != want.Edges {
		t.Fatalf("counts: got %d/%d, want %d/%d", got.Nodes, got.Edges, want.Nodes, want.Edges)
	}
	if !reflect.DeepEqual(got.NodeLabels, want.NodeLabels) {
		t.Fatalf("NodeLabels: got %v, want %v", got.NodeLabels, want.NodeLabels)
	}
	if !reflect.DeepEqual(got.EdgeLabels, want.EdgeLabels) {
		t.Fatalf("EdgeLabels: got %v, want %v", got.EdgeLabels, want.EdgeLabels)
	}
	for sym := range want.Symbols {
		g, w := got.Symbols[sym], want.Symbols[sym]
		if g.Label != w.Label || g.Edges != w.Edges || g.DistinctSrc != w.DistinctSrc || g.DistinctDst != w.DistinctDst {
			t.Fatalf("symbol %s: got %+v, want %+v", w.Label, g, w)
		}
		if g.OutHist != w.OutHist || g.InHist != w.InHist {
			t.Fatalf("symbol %s histograms: got %v/%v, want %v/%v", w.Label, g.OutHist, g.InHist, w.OutHist, w.InHist)
		}
		if exactMax && (g.MaxOut != w.MaxOut || g.MaxIn != w.MaxIn) {
			t.Fatalf("symbol %s max: got %d/%d, want %d/%d", w.Label, g.MaxOut, g.MaxIn, w.MaxOut, w.MaxIn)
		}
		if g.MaxOut < w.MaxOut || g.MaxIn < w.MaxIn {
			t.Fatalf("symbol %s max under-estimates: got %d/%d, want ≥ %d/%d", w.Label, g.MaxOut, g.MaxIn, w.MaxOut, w.MaxIn)
		}
	}
	ga, wa := got.Any, want.Any
	if ga.Edges != wa.Edges || ga.DistinctSrc != wa.DistinctSrc || ga.DistinctDst != wa.DistinctDst || ga.OutHist != wa.OutHist || ga.InHist != wa.InHist {
		t.Fatalf("Any: got %+v, want %+v", ga, wa)
	}
}

// TestStoreValidAt: the label clock invalidates exactly the footprints a
// batch's touched labels cover.
func TestStoreValidAt(t *testing.T) {
	s := NewStore(seedGraph(t), StoreOptions{CompactThreshold: -1})
	defer s.Close()

	knowsFp := Footprint{EdgeLabels: []string{"Knows"}}
	likesFp := Footprint{EdgeLabels: []string{"Likes"}}
	allEdgesFp := Footprint{AllEdges: true}
	personFp := Footprint{NodeLabels: []string{"Person"}}

	// Epoch 1 touches only Knows.
	mustApply(t, s, Op{Kind: OpAddEdge, Key: "ba", Src: "b", Dst: "a", Label: "Knows"})
	if s.ValidAt(knowsFp, 0) {
		t.Fatal("Knows result from epoch 0 still valid after a Knows write")
	}
	if !s.ValidAt(likesFp, 0) {
		t.Fatal("Likes result invalidated by a Knows-only write")
	}
	if s.ValidAt(allEdgesFp, 0) {
		t.Fatal("AllEdges result survived an edge write")
	}
	if !s.ValidAt(personFp, 0) {
		t.Fatal("node-label result invalidated by an edge-only write")
	}
	if !s.ValidAt(knowsFp, 1) {
		t.Fatal("Knows result computed at epoch 1 reported stale")
	}

	// Epoch 2 deletes a Person node, cascading a Likes and Knows edge.
	mustApply(t, s, Op{Kind: OpDelNode, Key: "a"})
	if s.ValidAt(personFp, 1) || s.ValidAt(likesFp, 1) {
		t.Fatal("node delete failed to invalidate touched footprints")
	}

	// Compaction must not invalidate anything: same epoch, same clock.
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if !s.ValidAt(personFp, 2) || !s.ValidAt(allEdgesFp, 2) {
		t.Fatal("compaction invalidated current-epoch results")
	}
}
