package graph

// Bitset successor index: the boolean-adjacency view of the CSR that the
// reachability kernel (internal/reach) consumes. For every edge-label
// symbol s the index holds an n×n boolean matrix in row-major bitset
// form — row v is the set of successors reachable from v over one live
// s-labelled edge — plus one "any" matrix, the union over all symbols.
// This is the matrix form of the RPQ product construction: one BFS step
// over symbol s is a word-parallel OR of the rows selected by the
// frontier, never a per-edge pointer chase.
//
// The index is derived state, built lazily from the live adjacency on
// first use and cached per *Graph* value. That makes staleness
// impossible by construction: Store.Apply and compaction always publish
// a *fresh* Graph value (a new delta view, or a resealed CSR), so a
// cached index can never outlive the adjacency it was built from. A
// delta view whose base already built its index patches only the rows
// the overlay touched instead of rebuilding all of them.

// MaxBitsetBytes caps the memory the bitset index may occupy for one
// graph: (symbols+1) · nodes · ceil(nodes/64) · 8 bytes. Graphs past the
// cap report the index as infeasible and evaluation falls back to the
// enumerating kernel. It is a package-level tuning knob read at each
// graph's first Bitsets call; tests shrink it to force the fallback.
var MaxBitsetBytes int64 = 1 << 28

// BitsetIndex is the per-symbol successor bitset index of one Graph.
// Immutable once built; safe for concurrent readers.
type BitsetIndex struct {
	n     int // node ID space size (rows and row width in bits)
	words int // uint64 words per row: ceil(n/64)

	// out[sym] is the flat n×words successor matrix of symbol sym;
	// anyOut is the union over all symbols (the ANY-label transition).
	out    [][]uint64
	anyOut []uint64
}

// NumNodes returns the node ID space the index covers.
func (ix *BitsetIndex) NumNodes() int { return ix.n }

// Words returns the number of uint64 words per successor row.
func (ix *BitsetIndex) Words() int { return ix.words }

// Bytes returns the total size of the index's bitset storage.
func (ix *BitsetIndex) Bytes() int64 {
	return int64(len(ix.out)+1) * int64(ix.n) * int64(ix.words) * 8
}

// OutRow returns node v's successor row over symbol sym: bit d is set
// iff a live sym-labelled edge v→d exists. The slice aliases shared
// storage; do not modify.
//
//pathalgebra:hotpath
func (ix *BitsetIndex) OutRow(sym SymbolID, v NodeID) []uint64 {
	off := int(v) * ix.words
	return ix.out[sym][off : off+ix.words]
}

// AnyRow returns node v's successor row over any symbol.
//
//pathalgebra:hotpath
func (ix *BitsetIndex) AnyRow(v NodeID) []uint64 {
	off := int(v) * ix.words
	return ix.anyOut[off : off+ix.words]
}

// bitsetCell is the cached outcome of one graph's index build. idx is
// nil when the graph exceeded MaxBitsetBytes — the negative outcome is
// cached too, so oversized graphs pay the feasibility check only once.
type bitsetCell struct {
	idx *BitsetIndex
}

// Bitsets returns the graph's bitset successor index, building and
// caching it on first call. ok is false when the index would exceed
// MaxBitsetBytes; callers must then use the enumerating evaluator.
// Safe for concurrent use; a racing double build is resolved by
// publishing exactly one winner.
func (g *Graph) Bitsets() (*BitsetIndex, bool) {
	if c := g.bitsets.Load(); c != nil {
		return c.idx, c.idx != nil
	}
	c := &bitsetCell{idx: g.buildBitsets()}
	if !g.bitsets.CompareAndSwap(nil, c) {
		c = g.bitsets.Load()
	}
	return c.idx, c.idx != nil
}

// buildBitsets constructs the index, preferring the overlay patch path
// when this graph is a delta view over a base that already built its
// own index with the same row stride. Returns nil when infeasible.
func (g *Graph) buildBitsets() *BitsetIndex {
	n := g.NumNodes()
	syms := g.NumSymbols()
	words := (n + 63) / 64
	if int64(syms+1)*int64(n)*int64(words)*8 > MaxBitsetBytes {
		return nil
	}
	ix := &BitsetIndex{
		n:      n,
		words:  words,
		out:    make([][]uint64, syms),
		anyOut: make([]uint64, n*words),
	}
	for s := range ix.out {
		ix.out[s] = make([]uint64, n*words)
	}
	if g.ov != nil {
		if c := g.ov.base.bitsets.Load(); c != nil && c.idx != nil && c.idx.words == words {
			g.patchBitsets(ix, c.idx)
			return ix
		}
	}
	// Full build: one pass over the live adjacency. Overlay run
	// accessors materialize exactly the live edges of patched nodes and
	// fall through to the base CSR elsewhere, so no per-edge alive
	// checks are needed, and tombstoned nodes contribute empty rows.
	for v := 0; v < n; v++ {
		g.setBitsetRow(ix, NodeID(v))
	}
	return ix
}

// patchBitsets copies the base index's rows and rebuilds only the rows
// of nodes whose out-adjacency the overlay patched. ov.outPatch covers
// every appended, tombstoned or edge-set-changed node, so untouched
// rows are bit-identical to the base and copying them is sound. Rows of
// appended nodes past the base ID space start zeroed and are set here.
func (g *Graph) patchBitsets(ix *BitsetIndex, base *BitsetIndex) {
	for s := range ix.out {
		copy(ix.out[s], base.out[s])
	}
	copy(ix.anyOut, base.anyOut)
	for v := range g.ov.outPatch {
		off := int(v) * ix.words
		for s := range ix.out {
			clearRow(ix.out[s][off : off+ix.words])
		}
		clearRow(ix.anyOut[off : off+ix.words])
		g.setBitsetRow(ix, v)
	}
}

// setBitsetRow sets node v's successor bits from its live symbol runs.
func (g *Graph) setBitsetRow(ix *BitsetIndex, v NodeID) {
	for _, run := range g.OutRuns(v) {
		slab := ix.out[run.Sym]
		off := int(v) * ix.words
		for _, e := range run.Edges {
			_, dst := g.Endpoints(e)
			slab[off+int(dst>>6)] |= 1 << (dst & 63)
			ix.anyOut[off+int(dst>>6)] |= 1 << (dst & 63)
		}
	}
}

func clearRow(row []uint64) {
	for i := range row {
		row[i] = 0
	}
}
