package graph

import "errors"

// Typed validation errors for graph construction and mutation. Builder,
// the CSV/JSON loaders and Store.Apply all wrap these sentinels, so
// callers branch with errors.Is instead of matching message text — the
// /ingest endpoint's 422 contract is exactly "errors.Is one of these".
var (
	// ErrDuplicateKey reports a node or edge key already used by a live
	// object (the paper requires N ∩ E = ∅, so the key space is shared).
	ErrDuplicateKey = errors.New("duplicate key")
	// ErrUnknownNode reports an edge whose src or dst key names no live
	// node.
	ErrUnknownNode = errors.New("unknown node")
	// ErrUnknownKey reports a delete of a key that names no live object
	// of the requested kind.
	ErrUnknownKey = errors.New("unknown key")
)
