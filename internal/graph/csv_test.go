package graph

import (
	"strings"
	"testing"
)

const nodesCSV = `key,label,name,age:int,score:float,active:bool
n1,Person,Moe,40,1.5,true
n2,Person,Apu,,,
n3,Message,,,,
`

const edgesCSV = `key,src,dst,label,since:int
e1,n1,n2,Knows,2010
e2,n1,n3,Likes,
`

func TestReadCSV(t *testing.T) {
	g, err := ReadCSV(strings.NewReader(nodesCSV), strings.NewReader(edgesCSV))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("shape = %d/%d, want 3/2", g.NumNodes(), g.NumEdges())
	}
	n1, _ := g.NodeByKey("n1")
	if got := g.NodeProp(n1.ID, "name"); got.Str() != "Moe" {
		t.Errorf("name = %v", got)
	}
	if got := g.NodeProp(n1.ID, "age"); got.Int() != 40 {
		t.Errorf("age = %v", got)
	}
	if got := g.NodeProp(n1.ID, "score"); got.Float() != 1.5 {
		t.Errorf("score = %v", got)
	}
	if got := g.NodeProp(n1.ID, "active"); !got.Bool() {
		t.Errorf("active = %v", got)
	}
	// Empty cells leave properties unset.
	n2, _ := g.NodeByKey("n2")
	if got := g.NodeProp(n2.ID, "age"); !got.IsNull() {
		t.Errorf("empty age cell = %v, want null", got)
	}
	e1, _ := g.EdgeByKey("e1")
	if got := g.EdgeProp(e1.ID, "since"); got.Int() != 2010 {
		t.Errorf("since = %v", got)
	}
	src, dst := g.Endpoints(e1.ID)
	if g.Node(src).Key != "n1" || g.Node(dst).Key != "n2" {
		t.Error("edge endpoints wrong")
	}
}

func TestReadCSVErrors(t *testing.T) {
	okNodes := "key,label\na,L\nb,L\n"
	okEdges := "key,src,dst,label\ne,a,b,X\n"
	cases := []struct {
		name         string
		nodes, edges string
		mention      string
	}{
		{"bad node header", "id,label\na,L\n", okEdges, `want "key"`},
		{"bad edge header", okNodes, "key,from,to,label\ne,a,b,X\n", `want "src"`},
		{"empty prop name", "key,label,:int\na,L,1\n", okEdges, "empty property column"},
		{"bad int", "key,label,age:int\na,L,forty\n", okEdges, "column \"age\""},
		{"bad float", "key,label,s:float\na,L,x\n", okEdges, "column \"s\""},
		{"bad bool", "key,label,b:bool\na,L,x\n", okEdges, "column \"b\""},
		{"unknown endpoint", okNodes, "key,src,dst,label\ne,a,zzz,X\n", "unknown target"},
		{"short record", "key,label,p\na,L\n", okEdges, "wrong number of fields"},
		{"empty node file", "", okEdges, "header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.nodes), strings.NewReader(tc.edges))
			if err == nil {
				t.Fatal("ReadCSV succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.mention) {
				t.Errorf("error %q does not mention %q", err, tc.mention)
			}
		})
	}
}

// TestReadCSVUnknownSuffix pins the documented behavior for ":suffix"
// header annotations that are not type names: the whole column name,
// colon included, becomes a string property. Previously such headers
// either errored or risked silently dropping the column.
func TestReadCSVUnknownSuffix(t *testing.T) {
	nodes := "key,label,created:stamp,note:\na,L,2020-01-01,hello\n"
	edges := "key,src,dst,label\n"
	g, err := ReadCSV(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	n, _ := g.NodeByKey("a")
	if got := g.NodeProp(n.ID, "created:stamp"); got.Str() != "2020-01-01" {
		t.Errorf(`prop "created:stamp" = %v, want string "2020-01-01"`, got)
	}
	if got := g.NodeProp(n.ID, "note:"); got.Str() != "hello" {
		t.Errorf(`prop "note:" = %v, want string "hello"`, got)
	}
	// The truncated names must not exist: the suffix was not consumed.
	if got := g.NodeProp(n.ID, "created"); !got.IsNull() {
		t.Errorf(`prop "created" = %v, want null`, got)
	}
	if got := g.NodeProp(n.ID, "note"); !got.IsNull() {
		t.Errorf(`prop "note" = %v, want null`, got)
	}
}

func TestReadCSVExplicitStringSuffix(t *testing.T) {
	nodes := "key,label,name:string\na,L,x\n"
	edges := "key,src,dst,label\n"
	g, err := ReadCSV(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := g.NodeByKey("a")
	if got := g.NodeProp(n.ID, "name"); got.Str() != "x" {
		t.Errorf("name = %v", got)
	}
}
