package graph

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates the dynamic type of a property Value.
//
// Go has no sum types, so Value is a tagged struct: exactly one of the
// payload fields is meaningful, selected by Kind. The zero Value has
// KindNull, which represents an absent property.
type ValueKind uint8

const (
	// KindNull is the absent/undefined value. Comparisons against it are
	// never true (three-valued-logic style), matching the paper's partial
	// functions λ and ν.
	KindNull ValueKind = iota
	// KindString is a string value.
	KindString
	// KindInt is a 64-bit signed integer value.
	KindInt
	// KindFloat is a 64-bit floating point value.
	KindFloat
	// KindBool is a boolean value.
	KindBool
)

// String returns the kind name, for diagnostics.
func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a property value attached to a node or edge (the range of the
// paper's ν function). The zero Value is Null.
type Value struct {
	Kind ValueKind
	str  string
	i64  int64
	f64  float64
	b    bool
}

// Null returns the absent value.
func Null() Value { return Value{} }

// String wraps a string into a Value.
func StringValue(s string) Value { return Value{Kind: KindString, str: s} }

// IntValue wraps an int64 into a Value.
func IntValue(i int64) Value { return Value{Kind: KindInt, i64: i} }

// FloatValue wraps a float64 into a Value.
func FloatValue(f float64) Value { return Value{Kind: KindFloat, f64: f} }

// BoolValue wraps a bool into a Value.
func BoolValue(b bool) Value { return Value{Kind: KindBool, b: b} }

// IsNull reports whether v is the absent value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Str returns the string payload; valid only when Kind == KindString.
func (v Value) Str() string { return v.str }

// Int returns the integer payload; valid only when Kind == KindInt.
func (v Value) Int() int64 { return v.i64 }

// Float returns the float payload; valid only when Kind == KindFloat.
func (v Value) Float() float64 { return v.f64 }

// Bool returns the boolean payload; valid only when Kind == KindBool.
func (v Value) Bool() bool { return v.b }

// String renders the value for display and for canonical path keys.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.i64, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f64, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Equal reports value equality. Int/float cross-comparisons use numeric
// equality so that a query constant 3 matches a stored 3.0.
func (v Value) Equal(w Value) bool {
	c, ok := v.Compare(w)
	return ok && c == 0
}

// Compare orders two values. It returns (-1|0|1, true) when the values are
// comparable (same kind, or int vs float) and (0, false) otherwise.
// Null is comparable with nothing, including itself.
func (v Value) Compare(w Value) (int, bool) {
	switch {
	case v.Kind == KindNull || w.Kind == KindNull:
		return 0, false
	case v.Kind == KindString && w.Kind == KindString:
		return cmpOrdered(v.str, w.str), true
	case v.Kind == KindBool && w.Kind == KindBool:
		return cmpBool(v.b, w.b), true
	case v.Kind == KindInt && w.Kind == KindInt:
		return cmpOrdered(v.i64, w.i64), true
	case v.isNumeric() && w.isNumeric():
		return cmpOrdered(v.asFloat(), w.asFloat()), true
	default:
		return 0, false
	}
}

func (v Value) isNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

func (v Value) asFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.i64)
	}
	return v.f64
}

func cmpOrdered[T interface {
	~string | ~int64 | ~float64
}](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}
