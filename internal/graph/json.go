package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonValue is the wire form of a property value.
type jsonValue struct {
	Kind  string   `json:"kind"`
	Str   *string  `json:"str,omitempty"`
	Int   *int64   `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
}

type jsonNode struct {
	Key   string               `json:"key"`
	Label string               `json:"label,omitempty"`
	Props map[string]jsonValue `json:"props,omitempty"`
}

type jsonEdge struct {
	Key   string               `json:"key"`
	Src   string               `json:"src"`
	Dst   string               `json:"dst"`
	Label string               `json:"label,omitempty"`
	Props map[string]jsonValue `json:"props,omitempty"`
}

type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

func toJSONValue(v Value) jsonValue {
	switch v.Kind {
	case KindString:
		s := v.Str()
		return jsonValue{Kind: "string", Str: &s}
	case KindInt:
		i := v.Int()
		return jsonValue{Kind: "int", Int: &i}
	case KindFloat:
		f := v.Float()
		return jsonValue{Kind: "float", Float: &f}
	case KindBool:
		b := v.Bool()
		return jsonValue{Kind: "bool", Bool: &b}
	default:
		return jsonValue{Kind: "null"}
	}
}

func fromJSONValue(v jsonValue) (Value, error) {
	switch v.Kind {
	case "string":
		if v.Str == nil {
			return Value{}, fmt.Errorf("graph: string value missing payload")
		}
		return StringValue(*v.Str), nil
	case "int":
		if v.Int == nil {
			return Value{}, fmt.Errorf("graph: int value missing payload")
		}
		return IntValue(*v.Int), nil
	case "float":
		if v.Float == nil {
			return Value{}, fmt.Errorf("graph: float value missing payload")
		}
		return FloatValue(*v.Float), nil
	case "bool":
		if v.Bool == nil {
			return Value{}, fmt.Errorf("graph: bool value missing payload")
		}
		return BoolValue(*v.Bool), nil
	case "null", "":
		return Null(), nil
	default:
		return Value{}, fmt.Errorf("graph: unknown value kind %q", v.Kind)
	}
}

// WriteJSON serializes the graph as a single JSON document.
func (g *Graph) WriteJSON(w io.Writer) error {
	doc := jsonGraph{
		Nodes: make([]jsonNode, 0, len(g.nodes)),
		Edges: make([]jsonEdge, 0, len(g.edges)),
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		jn := jsonNode{Key: n.Key, Label: n.Label}
		if len(n.Props) > 0 {
			jn.Props = make(map[string]jsonValue, len(n.Props))
			for k, v := range n.Props {
				jn.Props[k] = toJSONValue(v)
			}
		}
		doc.Nodes = append(doc.Nodes, jn)
	}
	for i := range g.edges {
		e := &g.edges[i]
		je := jsonEdge{Key: e.Key, Src: g.nodes[e.Src].Key, Dst: g.nodes[e.Dst].Key, Label: e.Label}
		if len(e.Props) > 0 {
			je.Props = make(map[string]jsonValue, len(e.Props))
			for k, v := range e.Props {
				je.Props[k] = toJSONValue(v)
			}
		}
		doc.Edges = append(doc.Edges, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a graph previously written by WriteJSON (or authored by
// hand in the same format).
func ReadJSON(r io.Reader) (*Graph, error) {
	var doc jsonGraph
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("graph: decoding JSON: %w", err)
	}
	b := NewBuilder()
	for _, n := range doc.Nodes {
		props, err := decodeProps(n.Props)
		if err != nil {
			return nil, fmt.Errorf("graph: node %q: %w", n.Key, err)
		}
		b.AddNode(n.Key, n.Label, props)
	}
	for _, e := range doc.Edges {
		props, err := decodeProps(e.Props)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %q: %w", e.Key, err)
		}
		b.AddEdge(e.Key, e.Src, e.Dst, e.Label, props)
	}
	return b.Build()
}

func decodeProps(in map[string]jsonValue) (map[string]Value, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make(map[string]Value, len(in))
	for k, jv := range in {
		v, err := fromJSONValue(jv)
		if err != nil {
			return nil, fmt.Errorf("property %q: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}
