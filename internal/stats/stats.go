// Package stats holds the one-pass graph statistics that drive the
// cost-based planner in internal/opt: per-label node and edge counts,
// per-symbol out/in degree histograms, and distinct source/target counts
// per symbol. graph.Build fills a Builder while it lays out the CSR
// adjacency — one extra pass over the already-computed symbol runs, O(V +
// runs) time — so every Graph carries its statistics from birth and the
// planner never touches the graph itself.
//
// The package is deliberately free of graph dependencies (symbols are
// plain ints, labels plain strings): graph imports stats, not the other
// way around, so the statistics can be computed at Build time without an
// import cycle.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// HistBuckets is the number of log2 degree buckets a Hist tracks. Bucket
// i counts nodes whose degree d satisfies 2^i <= d < 2^(i+1); the last
// bucket absorbs everything larger.
const HistBuckets = 16

// Hist is a logarithmic histogram of per-node degrees for one symbol and
// direction. Only nodes with degree >= 1 are observed, so the histogram's
// total equals the distinct endpoint count for that (symbol, direction).
type Hist [HistBuckets]int32

// bucketOf returns the log2 bucket of a degree >= 1.
func bucketOf(d int) int {
	b := 0
	for d > 1 && b < HistBuckets-1 {
		d >>= 1
		b++
	}
	return b
}

// Observe records one node with the given degree (>= 1).
func (h *Hist) Observe(degree int) {
	if degree < 1 {
		return
	}
	h[bucketOf(degree)]++
}

// Count returns the number of observed nodes.
func (h *Hist) Count() int {
	n := 0
	for _, c := range h {
		n += int(c)
	}
	return n
}

// Quantile returns an upper bound on the q-quantile degree (q in [0,1]):
// the exclusive upper edge of the histogram bucket containing the
// quantile. Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) int {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	seen := 0
	for b, c := range h {
		seen += int(c)
		if seen > rank {
			return 1 << (b + 1)
		}
	}
	return 1 << HistBuckets
}

// Symbol aggregates the statistics of one edge-label symbol: total edge
// count, the number of distinct source and target nodes, maximum degrees,
// and the out/in degree histograms over the nodes that carry the symbol.
type Symbol struct {
	Label       string
	Edges       int
	DistinctSrc int // nodes with >= 1 outgoing edge of this symbol
	DistinctDst int // nodes with >= 1 incoming edge of this symbol
	MaxOut      int
	MaxIn       int
	OutHist     Hist
	InHist      Hist
}

// OutFanout is the average out-degree of the symbol over its distinct
// sources — the per-step branching factor of a forward expansion.
func (s *Symbol) OutFanout() float64 {
	if s.DistinctSrc == 0 {
		return 0
	}
	return float64(s.Edges) / float64(s.DistinctSrc)
}

// InFanout is the average in-degree over distinct targets — the branching
// factor of a backward expansion.
func (s *Symbol) InFanout() float64 {
	if s.DistinctDst == 0 {
		return 0
	}
	return float64(s.Edges) / float64(s.DistinctDst)
}

// Stats is the full statistics bundle of one graph.
type Stats struct {
	Nodes int
	Edges int
	// NodeLabels / EdgeLabels count labelled objects per label; unlabelled
	// objects appear under "".
	NodeLabels map[string]int
	EdgeLabels map[string]int
	// Symbols is indexed by the graph's dense SymbolID.
	Symbols []Symbol
	// Any aggregates all edges regardless of symbol: Any.DistinctSrc is
	// the number of nodes with any outgoing edge, Any.OutHist the total
	// out-degree histogram, and so on.
	Any Symbol
}

// NodeLabelCount returns the number of nodes labelled l; l == "" returns
// the total node count (any node matches "no label constraint").
func (st *Stats) NodeLabelCount(l string) int {
	if l == "" {
		return st.Nodes
	}
	return st.NodeLabels[l]
}

// EdgeLabelCount returns the number of edges labelled l; l == "" returns
// the total edge count.
func (st *Stats) EdgeLabelCount(l string) int {
	if l == "" {
		return st.Edges
	}
	return st.EdgeLabels[l]
}

// SymbolByLabel returns the statistics of the symbol interning label l,
// or nil when no edge carries it.
func (st *Stats) SymbolByLabel(l string) *Symbol {
	for i := range st.Symbols {
		if st.Symbols[i].Label == l {
			return &st.Symbols[i]
		}
	}
	return nil
}

// String renders the statistics as a compact multi-line summary, symbols
// in label order — the -explain statistics block.
func (st *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph: %d nodes, %d edges, %d symbols\n",
		st.Nodes, st.Edges, len(st.Symbols))
	labels := make([]string, 0, len(st.NodeLabels))
	for l := range st.NodeLabels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		name := l
		if name == "" {
			name = "(unlabelled)"
		}
		fmt.Fprintf(&sb, "node label %-14s %d\n", name, st.NodeLabels[l])
	}
	for i := range st.Symbols {
		s := &st.Symbols[i]
		name := s.Label
		if name == "" {
			name = "(unlabelled)"
		}
		fmt.Fprintf(&sb, "edge label %-14s %d edges, %d→%d distinct src→dst, fanout out=%.2f in=%.2f, max out=%d in=%d\n",
			name, s.Edges, s.DistinctSrc, s.DistinctDst, s.OutFanout(), s.InFanout(), s.MaxOut, s.MaxIn)
	}
	return sb.String()
}

// Builder accumulates one pass of per-node observations into a Stats.
// graph.Build drives it: declare the symbol table, report per-label
// counts, then observe each node's per-symbol and total degrees.
type Builder struct {
	st Stats
}

// NewBuilder returns a builder for a graph with the given symbol count.
func NewBuilder(numSymbols int) *Builder {
	b := &Builder{}
	b.st.Symbols = make([]Symbol, numSymbols)
	b.st.NodeLabels = make(map[string]int)
	b.st.EdgeLabels = make(map[string]int)
	b.st.Any.Label = "-"
	return b
}

// SetSymbol names the symbol with dense id sym.
func (b *Builder) SetSymbol(sym int, label string) {
	b.st.Symbols[sym].Label = label
}

// NodeLabelCount records the number of nodes labelled l.
func (b *Builder) NodeLabelCount(l string, n int) { b.st.NodeLabels[l] = n }

// EdgeLabelCount records the number of edges labelled l.
func (b *Builder) EdgeLabelCount(l string, n int) { b.st.EdgeLabels[l] = n }

// ObserveOut records that one node has deg (>= 1) outgoing edges of
// symbol sym. Each distinct (node, symbol) pair must be observed at most
// once; the per-symbol edge totals and distinct-source counts derive from
// these calls.
func (b *Builder) ObserveOut(sym, deg int) {
	s := &b.st.Symbols[sym]
	s.Edges += deg
	s.DistinctSrc++
	if deg > s.MaxOut {
		s.MaxOut = deg
	}
	s.OutHist.Observe(deg)
}

// ObserveIn records that one node has deg (>= 1) incoming edges of sym.
func (b *Builder) ObserveIn(sym, deg int) {
	s := &b.st.Symbols[sym]
	s.DistinctDst++
	if deg > s.MaxIn {
		s.MaxIn = deg
	}
	s.InHist.Observe(deg)
}

// ObserveAnyOut records one node's total out-degree (>= 1) across all
// symbols.
func (b *Builder) ObserveAnyOut(deg int) {
	a := &b.st.Any
	a.Edges += deg
	a.DistinctSrc++
	if deg > a.MaxOut {
		a.MaxOut = deg
	}
	a.OutHist.Observe(deg)
}

// ObserveAnyIn records one node's total in-degree (>= 1).
func (b *Builder) ObserveAnyIn(deg int) {
	a := &b.st.Any
	a.DistinctDst++
	if deg > a.MaxIn {
		a.MaxIn = deg
	}
	a.InHist.Observe(deg)
}

// Finish seals the statistics with the global node/edge counts.
func (b *Builder) Finish(nodes, edges int) *Stats {
	b.st.Nodes = nodes
	b.st.Edges = edges
	return &b.st
}
