package stats

import "testing"

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, d := range []int{1, 1, 2, 3, 4, 7, 8, 100} {
		h.Observe(d)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	// Buckets: d=1 → 0, d∈{2,3} → 1, d∈{4..7} → 2, d∈{8..15} → 3, 100 → 6.
	want := map[int]int32{0: 2, 1: 2, 2: 2, 3: 1, 6: 1}
	for b, c := range want {
		if h[b] != c {
			t.Errorf("bucket %d = %d, want %d", b, h[b], c)
		}
	}
	h.Observe(0) // degree < 1 is ignored
	if h.Count() != 8 {
		t.Errorf("Observe(0) changed the histogram")
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(16)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("median upper bound = %d, want 2", got)
	}
	if got := h.Quantile(0.99); got != 32 {
		t.Errorf("p99 upper bound = %d, want 32", got)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(2)
	b.SetSymbol(0, "Knows")
	b.SetSymbol(1, "Likes")
	b.NodeLabelCount("Person", 3)
	b.EdgeLabelCount("Knows", 4)
	b.EdgeLabelCount("Likes", 1)
	// Node A: 3 Knows out, 1 Likes out. Node B: 1 Knows out. Node C has
	// all 5 incoming edges.
	b.ObserveOut(0, 3)
	b.ObserveOut(1, 1)
	b.ObserveAnyOut(4)
	b.ObserveOut(0, 1)
	b.ObserveAnyOut(1)
	b.ObserveIn(0, 4)
	b.ObserveIn(1, 1)
	b.ObserveAnyIn(5)
	st := b.Finish(3, 5)

	if st.Nodes != 3 || st.Edges != 5 {
		t.Fatalf("Nodes/Edges = %d/%d, want 3/5", st.Nodes, st.Edges)
	}
	knows := st.SymbolByLabel("Knows")
	if knows == nil {
		t.Fatal("Knows symbol missing")
	}
	if knows.Edges != 4 || knows.DistinctSrc != 2 || knows.DistinctDst != 1 {
		t.Errorf("Knows = %+v, want Edges 4, DistinctSrc 2, DistinctDst 1", knows)
	}
	if got := knows.OutFanout(); got != 2 {
		t.Errorf("Knows OutFanout = %v, want 2", got)
	}
	if got := knows.InFanout(); got != 4 {
		t.Errorf("Knows InFanout = %v, want 4", got)
	}
	if knows.MaxOut != 3 || knows.MaxIn != 4 {
		t.Errorf("Knows MaxOut/MaxIn = %d/%d, want 3/4", knows.MaxOut, knows.MaxIn)
	}
	if st.Any.Edges != 5 || st.Any.DistinctSrc != 2 || st.Any.DistinctDst != 1 {
		t.Errorf("Any = %+v, want Edges 5, DistinctSrc 2, DistinctDst 1", st.Any)
	}
	if st.NodeLabelCount("Person") != 3 || st.NodeLabelCount("") != 3 {
		t.Errorf("NodeLabelCount: Person=%d all=%d, want 3/3",
			st.NodeLabelCount("Person"), st.NodeLabelCount(""))
	}
	if st.EdgeLabelCount("Knows") != 4 || st.EdgeLabelCount("") != 5 {
		t.Errorf("EdgeLabelCount: Knows=%d all=%d, want 4/5",
			st.EdgeLabelCount("Knows"), st.EdgeLabelCount(""))
	}
	if st.SymbolByLabel("Nope") != nil {
		t.Errorf("SymbolByLabel of unknown label should be nil")
	}
	if st.String() == "" {
		t.Errorf("String should render a summary")
	}
}

// TestZeroFanout pins the division-by-zero guards.
func TestZeroFanout(t *testing.T) {
	var s Symbol
	if s.OutFanout() != 0 || s.InFanout() != 0 {
		t.Errorf("fanout of empty symbol should be 0")
	}
}
