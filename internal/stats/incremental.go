package stats

// Incremental maintenance: the live-graph store (internal/graph.Store)
// keeps a per-epoch Stats clone in sync with its delta overlay so the
// cost-based planner re-costs against the live epoch instead of the
// sealed seed. The planner is only consulted in order-insensitive
// contexts, so approximate statistics may change plan choice but never
// results — which lets Max* degrees stay monotone upper bounds (a delete
// never lowers them; compaction recomputes them exactly).

// Remove cancels one earlier Observe of the given degree. Removing a
// degree that was never observed leaves the histogram unchanged rather
// than going negative.
func (h *Hist) Remove(degree int) {
	if degree < 1 {
		return
	}
	if b := bucketOf(degree); h[b] > 0 {
		h[b]--
	}
}

// Clone returns a deep copy of the statistics bundle that can be adjusted
// without disturbing the original — each store epoch owns its own clone.
func (st *Stats) Clone() *Stats {
	cp := &Stats{
		Nodes:      st.Nodes,
		Edges:      st.Edges,
		NodeLabels: make(map[string]int, len(st.NodeLabels)),
		EdgeLabels: make(map[string]int, len(st.EdgeLabels)),
		Symbols:    make([]Symbol, len(st.Symbols)),
		Any:        st.Any, // Symbol is a value type (Hist is an array)
	}
	for l, n := range st.NodeLabels {
		cp.NodeLabels[l] = n
	}
	for l, n := range st.EdgeLabels {
		cp.EdgeLabels[l] = n
	}
	copy(cp.Symbols, st.Symbols)
	return cp
}

// SetCounts overwrites the global node/edge counts.
func (st *Stats) SetCounts(nodes, edges int) {
	st.Nodes = nodes
	st.Edges = edges
}

// AdjustNodeLabel shifts the count of nodes labelled l by delta.
func (st *Stats) AdjustNodeLabel(l string, delta int) {
	if n := st.NodeLabels[l] + delta; n > 0 {
		st.NodeLabels[l] = n
	} else {
		delete(st.NodeLabels, l)
	}
}

// AdjustEdgeLabel shifts the count of edges labelled l by delta.
func (st *Stats) AdjustEdgeLabel(l string, delta int) {
	if n := st.EdgeLabels[l] + delta; n > 0 {
		st.EdgeLabels[l] = n
	} else {
		delete(st.EdgeLabels, l)
	}
}

// updateSide moves one node's degree for one (symbol, direction) from
// oldDeg to newDeg, keeping the histogram, distinct-endpoint count and
// monotone max in sync.
func updateSide(hist *Hist, distinct *int, max *int, oldDeg, newDeg int) {
	if oldDeg >= 1 {
		hist.Remove(oldDeg)
		*distinct--
	}
	if newDeg >= 1 {
		hist.Observe(newDeg)
		*distinct++
		if newDeg > *max {
			*max = newDeg
		}
	}
}

// UpdateOutDegree records that one node's out-degree for symbol sym
// changed from oldDeg to newDeg. Per-symbol edge totals are maintained on
// the out side only (mirroring Builder.ObserveOut).
func (st *Stats) UpdateOutDegree(sym, oldDeg, newDeg int) {
	s := &st.Symbols[sym]
	s.Edges += newDeg - oldDeg
	updateSide(&s.OutHist, &s.DistinctSrc, &s.MaxOut, oldDeg, newDeg)
}

// UpdateInDegree records that one node's in-degree for symbol sym changed.
func (st *Stats) UpdateInDegree(sym, oldDeg, newDeg int) {
	s := &st.Symbols[sym]
	updateSide(&s.InHist, &s.DistinctDst, &s.MaxIn, oldDeg, newDeg)
}

// UpdateAnyOut records that one node's total out-degree changed.
func (st *Stats) UpdateAnyOut(oldDeg, newDeg int) {
	a := &st.Any
	a.Edges += newDeg - oldDeg
	updateSide(&a.OutHist, &a.DistinctSrc, &a.MaxOut, oldDeg, newDeg)
}

// UpdateAnyIn records that one node's total in-degree changed.
func (st *Stats) UpdateAnyIn(oldDeg, newDeg int) {
	a := &st.Any
	updateSide(&a.InHist, &a.DistinctDst, &a.MaxIn, oldDeg, newDeg)
}
