package engine

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"pathalgebra/internal/core"
	"pathalgebra/internal/pathset"
)

// ExplainLine is one operator of an explained plan with its estimated and
// actual output cardinality.
type ExplainLine struct {
	Depth  int
	Op     string
	Est    float64
	Actual int
}

// Explain is the result of Engine.Explain: the chosen physical plan, the
// planner rules that shaped it, whether it came out of the plan cache,
// and the per-operator estimated vs. actual cardinalities. Kernel reports
// the route a path-free Reach call on this plan would take:
// "reach-bitset" when the plan is kernel-eligible and the graph's bitset
// index is feasible, "enumeration" otherwise. (Run always enumerates —
// it returns paths.)
type Explain struct {
	Plan     core.PathExpr
	Applied  []string
	CacheHit bool
	Kernel   string
	Lines    []ExplainLine
	Result   *pathset.Set
}

// Explain plans x like Run and then evaluates every operator of the
// chosen plan, recording its estimated and actual cardinality. Each
// subtree is evaluated independently (the engine memoizes nothing across
// operators), so Explain costs O(depth) times the plain evaluation —
// a diagnostic tool, not an execution mode.
func (e *Engine) Explain(x core.PathExpr) (*Explain, error) {
	return e.ExplainCtx(context.Background(), x)
}

// ExplainCtx is Explain under cooperative cancellation (see RunCtx). On
// a live engine the whole explanation — planning, estimates and every
// operator evaluation — runs against one pinned epoch.
func (e *Engine) ExplainCtx(ctx context.Context, x core.PathExpr) (*Explain, error) {
	b, release := e.pin()
	defer release()
	ex, err := b.explainCtx(ctx, x)
	e.noteEvalErr(err)
	return ex, err
}

func (e *Engine) explainCtx(ctx context.Context, x core.PathExpr) (*Explain, error) {
	hitsBefore := atomic.LoadInt64(&e.stats.PlanCacheHits)
	plan, applied := e.plan(x)
	ex := &Explain{
		Plan:     plan,
		Applied:  applied,
		CacheHit: atomic.LoadInt64(&e.stats.PlanCacheHits) > hitsBefore,
		Kernel:   e.reachRoute(plan),
	}
	out, err := e.explainPath(ctx, plan, 0, ex)
	if err != nil {
		return nil, err
	}
	ex.Result = out
	return ex, nil
}

func (e *Engine) explainPath(ctx context.Context, x core.PathExpr, depth int, ex *Explain) (*pathset.Set, error) {
	out, err := e.evalPathsCtx(ctx, x)
	if err != nil {
		return nil, err
	}
	ex.Lines = append(ex.Lines, ExplainLine{
		Depth: depth, Op: opLabel(x), Est: e.cm.Card(x), Actual: out.Len(),
	})
	var children []core.PathExpr
	switch x := x.(type) {
	case core.Select:
		children = []core.PathExpr{x.In}
	case core.Join:
		children = []core.PathExpr{x.L, x.R}
	case core.Union:
		children = []core.PathExpr{x.L, x.R}
	case core.Recurse:
		children = []core.PathExpr{x.In}
	case core.Restrict:
		children = []core.PathExpr{x.In}
	case core.Project:
		if err := e.explainSpace(ctx, x.In, depth+1, ex); err != nil {
			return nil, err
		}
	}
	for _, c := range children {
		if _, err := e.explainPath(ctx, c, depth+1, ex); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (e *Engine) explainSpace(ctx context.Context, x core.SpaceExpr, depth int, ex *Explain) error {
	ss, err := e.evalSpaceCtx(ctx, x)
	if err != nil {
		return err
	}
	var op string
	var inner core.SpaceExpr
	var pathIn core.PathExpr
	switch x := x.(type) {
	case core.GroupBy:
		op = fmt.Sprintf("γ%s", x.Key)
		pathIn = x.In
	case core.OrderBy:
		op = fmt.Sprintf("τ%s", x.Key)
		inner = x.In
	default:
		op = fmt.Sprintf("%T", x)
	}
	var est float64
	if g, ok := core.BottomGroupBy(x); ok {
		est = e.cm.Card(g.In)
	}
	ex.Lines = append(ex.Lines, ExplainLine{Depth: depth, Op: op, Est: est, Actual: ss.NumPaths()})
	if inner != nil {
		return e.explainSpace(ctx, inner, depth+1, ex)
	}
	if pathIn != nil {
		_, err := e.explainPath(ctx, pathIn, depth+1, ex)
		return err
	}
	return nil
}

// opLabel is the one-line operator label of an explain row — the node's
// own operator without its subtree.
func opLabel(x core.PathExpr) string {
	switch x := x.(type) {
	case core.Nodes:
		return "Nodes(G)"
	case core.Edges:
		return "Edges(G)"
	case core.Select:
		return fmt.Sprintf("σ[%s]", x.Cond)
	case core.Join:
		return "⋈"
	case core.Union:
		return "∪"
	case core.Recurse:
		if x.Dir == core.Backward {
			return fmt.Sprintf("ϕ%s←", x.Sem)
		}
		return fmt.Sprintf("ϕ%s", x.Sem)
	case core.Restrict:
		return fmt.Sprintf("ρ%s", x.Sem)
	case core.Project:
		return fmt.Sprintf("π(%s,%s,%s)", x.Parts, x.Groups, x.Paths)
	default:
		return fmt.Sprintf("%T", x)
	}
}

// Format renders the explanation: fired rules, cache state, and the
// operator table with estimated vs. actual cardinalities.
func (ex *Explain) Format() string {
	var sb strings.Builder
	if len(ex.Applied) == 0 {
		sb.WriteString("rules fired: none\n")
	} else {
		fmt.Fprintf(&sb, "rules fired: %s\n", strings.Join(ex.Applied, ", "))
	}
	fmt.Fprintf(&sb, "plan cache: %s\n", map[bool]string{true: "hit", false: "miss"}[ex.CacheHit])
	if ex.Kernel != "" {
		fmt.Fprintf(&sb, "reach kernel: %s\n", ex.Kernel)
	}
	sb.WriteString("operators (estimated vs actual):\n")
	for _, l := range ex.Lines {
		indent := strings.Repeat("  ", l.Depth)
		op := indent + l.Op
		fmt.Fprintf(&sb, "  %-44s est=%-12s actual=%d\n", op, fmtEst(l.Est), l.Actual)
	}
	return sb.String()
}

// fmtEst renders an estimate compactly and deterministically.
func fmtEst(est float64) string {
	return fmt.Sprintf("%.4g", est)
}
