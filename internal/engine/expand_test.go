package engine

import (
	"testing"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/rpq"
)

// TestExpandMatchesGeneric: the graph-expansion fast path and the generic
// closure evaluation return identical results for every recognizable base
// shape and semantics.
func TestExpandMatchesGeneric(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 14, Messages: 10, KnowsPerPerson: 2, LikesPerPerson: 1,
		CycleFraction: 0.5, Seed: 31,
	})
	patterns := []string{
		":Knows+",
		"(:Likes/:Has_creator)+",
		"(:Knows|:Likes)+",
		"-+",
		"((:Knows/:Knows)|:Likes)+",
	}
	lim := core.Limits{MaxLen: 5}
	for _, pat := range patterns {
		plan := rpq.Compile(rpq.MustParse(pat), core.Trail)
		for _, sem := range core.AllSemantics() {
			p := rpq.Compile(rpq.MustParse(pat), sem)
			_ = plan
			fast := New(g, Options{Limits: lim})
			a, err := fast.EvalPaths(p)
			if err != nil {
				t.Fatalf("%s/%s fast: %v", pat, sem, err)
			}
			if fast.Stats().ExpandedRecursions == 0 {
				t.Errorf("%s/%s: fast path not taken", pat, sem)
			}
			slow := New(g, Options{Limits: lim, DisableExpand: true})
			b, err := slow.EvalPaths(p)
			if err != nil {
				t.Fatalf("%s/%s generic: %v", pat, sem, err)
			}
			if slow.Stats().ExpandedRecursions != 0 {
				t.Errorf("%s/%s: DisableExpand ignored", pat, sem)
			}
			if !a.Equal(b) {
				t.Errorf("%s/%s: fast %d paths, generic %d paths", pat, sem, a.Len(), b.Len())
			}
		}
	}
}

// TestExpandNotTakenForComplexBases: recursions over bases the expansion
// cannot express as a label pattern fall back to the generic evaluator.
func TestExpandNotTakenForComplexBases(t *testing.T) {
	g := ldbc.Figure1()
	bases := []core.PathExpr{
		// Property selection, not a label pattern.
		core.Select{Cond: cond.Prop(cond.First(), "name", graph.StringValue("Moe")), In: core.Edges{}},
		// Label on the wrong position.
		core.Select{Cond: cond.Label(cond.EdgeAt(2), "Knows"), In: core.Edges{}},
		// NE comparison.
		core.Select{Cond: cond.LabelCmp{Target: cond.EdgeAt(1), Op: cond.NE, Value: "Knows"}, In: core.Edges{}},
		// Nodes atom inside a union.
		core.Union{L: knowsSel(), R: core.Nodes{}},
	}
	for _, base := range bases {
		e := New(g, Options{Limits: core.Limits{MaxLen: 3}})
		if _, err := e.EvalPaths(core.Recurse{Sem: core.Acyclic, In: base}); err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		if e.Stats().ExpandedRecursions != 0 {
			t.Errorf("expansion wrongly taken for base %s", base)
		}
	}
}

// TestRestrictOperator: the engine evaluates ρ and it composes with joins
// as §2.3 requires.
func TestRestrictOperator(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{Limits: core.Limits{MaxLen: 4}})

	// Concatenate Knows+ trails with Knows+ trails, then require the
	// whole concatenation to be a trail.
	sub := core.Recurse{Sem: core.Trail, In: knowsSel()}
	composed := core.Restrict{Sem: core.Trail, In: core.Join{L: sub, R: sub}}
	res, err := e.EvalPaths(composed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("composition returned nothing")
	}
	for _, p := range res.Paths() {
		if !p.IsTrail() {
			t.Errorf("ρTrail let through non-trail %s", p.Format(g))
		}
	}
	// Without the outer ρ some concatenations repeat edges.
	raw, err := e.EvalPaths(core.Join{L: sub, R: sub})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Len() <= res.Len() {
		t.Errorf("outer restrictor filtered nothing: %d vs %d", raw.Len(), res.Len())
	}
}

// TestDescendingProjectionViaEngine: DESC counts flow through plan
// evaluation.
func TestDescendingProjectionViaEngine(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{})
	plan := core.Project{
		Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1).Descending(),
		In: core.OrderBy{Key: core.OrderPath,
			In: core.GroupBy{Key: core.GroupST,
				In: core.Recurse{Sem: core.Trail, In: knowsSel()}}},
	}
	res, err := e.EvalPaths(plan)
	if err != nil {
		t.Fatal(err)
	}
	// The (n1, n2) partition's longest trail has length 3.
	found := false
	for _, p := range res.Paths() {
		if g.Node(p.First()).Key == "n1" && g.Node(p.Last()).Key == "n2" {
			found = true
			if p.Len() != 3 {
				t.Errorf("longest n1→n2 trail has length %d, want 3", p.Len())
			}
		}
	}
	if !found {
		t.Error("no n1→n2 path in descending projection")
	}
}
