package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/ldbc"
)

// TestEngineConcurrentUse hammers ONE engine from many goroutines with a
// mix of Run, RunStream, Explain, Stats and Plan (plan-cache hits and
// misses), asserting under -race that the engine's concurrency contract
// holds and that every goroutine sees the same results as a private
// engine would. The query set is small on purpose: most Plan calls are
// cache hits, exercising the mutex-guarded LRU bump path concurrently.
func TestEngineConcurrentUse(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 20, Messages: 30, KnowsPerPerson: 2, LikesPerPerson: 2,
		CycleFraction: 0.3, Seed: 5,
	})
	lim := core.Limits{MaxLen: 4}
	queries := []string{
		`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ACYCLIC p = (?x)-[(:Knows|:Likes)+]->(?y)`,
		`MATCH ANY SHORTEST WALK p = (?x)-[(:Likes/:Has_creator)+]->(?y)`,
		`MATCH SIMPLE p = (?x)-[:Knows+]->(?y)`,
	}
	// Reference results from a private engine.
	want := make([]int, len(queries))
	ref := New(g, Options{Limits: lim})
	for i, q := range queries {
		res, err := ref.Run(gql.MustCompile(q))
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		want[i] = res.Len()
	}

	shared := New(g, Options{Limits: lim, Parallelism: 2})
	// Warm the plan cache so the post-hammer miss count is deterministic
	// (concurrent first-misses of one query may each plan it — benign,
	// the cache converges — but it would make the assertion flaky).
	for _, q := range queries {
		shared.Plan(gql.MustCompile(q))
	}
	const workers = 8
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (w + i) % len(queries)
				plan := gql.MustCompile(queries[qi])
				switch (w + i) % 4 {
				case 0: // batch run
					res, err := shared.Run(plan)
					if err != nil {
						errs <- fmt.Errorf("worker %d Run: %w", w, err)
						return
					}
					if res.Len() != want[qi] {
						errs <- fmt.Errorf("worker %d Run: %d paths, want %d", w, res.Len(), want[qi])
						return
					}
				case 1: // streaming run, paged to exhaustion
					s := shared.RunStream(context.Background(), plan, StreamOptions{ChunkSize: 16})
					total := 0
					for {
						chunk, err := s.Next()
						if err != nil {
							errs <- fmt.Errorf("worker %d RunStream: %w", w, err)
							return
						}
						if chunk == nil {
							break
						}
						total += chunk.Len()
					}
					if total != want[qi] {
						errs <- fmt.Errorf("worker %d RunStream: %d paths, want %d", w, total, want[qi])
						return
					}
				case 2: // plan-cache hit + stats snapshot
					shared.Plan(plan)
					_ = shared.Stats()
				case 3: // explain (evaluates every subtree)
					ex, err := shared.Explain(plan)
					if err != nil {
						errs <- fmt.Errorf("worker %d Explain: %w", w, err)
						return
					}
					if ex.Result.Len() != want[qi] {
						errs <- fmt.Errorf("worker %d Explain: %d paths, want %d", w, ex.Result.Len(), want[qi])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The plan cache served every goroutine: all queries planned at most
	// once per distinct text (misses == distinct queries).
	st := shared.Stats()
	if st.PlanCacheMisses > int64(len(queries)) {
		t.Errorf("PlanCacheMisses = %d, want <= %d (one per distinct query)", st.PlanCacheMisses, len(queries))
	}
	if st.PlanCacheHits == 0 {
		t.Error("PlanCacheHits = 0, want > 0 under the hammer")
	}
}
