package engine

import (
	"fmt"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
)

func TestPlanCacheHit(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{Limits: core.Limits{MaxLen: 4}})
	plan := gql.MustCompile(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`)

	want, err := e.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.PlanCacheHits != 0 || s.PlanCacheMisses != 1 {
		t.Fatalf("after first run: hits=%d misses=%d, want 0/1", s.PlanCacheHits, s.PlanCacheMisses)
	}
	got, err := e.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	s = e.Stats()
	if s.PlanCacheHits != 1 || s.PlanCacheMisses != 1 {
		t.Fatalf("after second run: hits=%d misses=%d, want 1/1", s.PlanCacheHits, s.PlanCacheMisses)
	}
	if !got.Equal(want) {
		t.Fatalf("cached plan returned a different result: %d vs %d paths", got.Len(), want.Len())
	}
}

// TestPlanCacheNormalization: different spellings of the same logical
// plan share one cache slot because the key is the canonical rendering.
func TestPlanCacheNormalization(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{Limits: core.Limits{MaxLen: 4}})
	a := gql.MustCompile(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`)
	b := gql.MustCompile("MATCH  TRAIL   p = (?x)-[ :Knows+ ]->(?y)")
	if _, err := e.Run(a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(b); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.PlanCacheHits != 1 {
		t.Errorf("whitespace-variant query should hit the cache: %+v", s)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{Limits: core.Limits{MaxLen: 3}, PlanCacheSize: 2})
	plans := []core.PathExpr{
		gql.MustCompile(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`),
		gql.MustCompile(`MATCH ACYCLIC p = (?x)-[:Likes+]->(?y)`),
		gql.MustCompile(`MATCH SIMPLE p = (?x)-[:Has_creator+]->(?y)`),
	}
	for _, p := range plans {
		if _, err := e.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.plans.Len(); got != 2 {
		t.Fatalf("cache size = %d, want 2", got)
	}
	// The first plan was evicted; re-running it must miss.
	misses := e.Stats().PlanCacheMisses
	if _, err := e.Run(plans[0]); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().PlanCacheMisses; got != misses+1 {
		t.Errorf("evicted plan should miss: misses %d → %d", misses, got)
	}
}

// TestSeededSelectMatchesGeneric: σ with endpoint conditions over a
// pattern recursion evaluates seeded, and the result — including order —
// matches the generic evaluate-then-filter route.
func TestSeededSelectMatchesGeneric(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 12, Messages: 6, KnowsPerPerson: 2, LikesPerPerson: 2,
		CycleFraction: 0.4, Seed: 5,
	})
	lim := core.Limits{MaxLen: 4}
	queries := []struct {
		q string
		// expectSeeded: the condition has first-node conjuncts, so the
		// unplanned forward evaluation can seed. A last-only condition
		// seeds only after the planner flips the search backward.
		expectSeeded bool
	}{
		{`MATCH TRAIL p = (?x:Person)-[:Knows+]->(?y)`, true},
		{`MATCH ACYCLIC p = (?x:Person)-[:Knows+]->(?y:Person)`, true},
		{`MATCH SIMPLE p = (?x)-[:Likes+]->(?y:Message)`, false},
		{`MATCH SHORTEST p = (?x:Person)-[(:Knows|:Likes)+]->(?y)`, true},
	}
	for _, tc := range queries {
		q := tc.q
		plan := gql.MustCompile(q)
		fast := New(g, Options{Limits: lim})
		a, err := fast.EvalPaths(plan)
		if err != nil {
			t.Fatalf("%s seeded: %v", q, err)
		}
		slow := New(g, Options{Limits: lim, DisableExpand: true, Join: NestedLoop})
		b, err := slow.EvalPaths(plan)
		if err != nil {
			t.Fatalf("%s generic: %v", q, err)
		}
		if !a.Equal(b) {
			t.Fatalf("%s: seeded %d vs generic %d paths", q, a.Len(), b.Len())
		}
		// Order identity holds against the same executor without seeding:
		// expand the recursion over every source, then filter — the route
		// the engine takes when the condition has no endpoint conjuncts.
		sel, ok := plan.(core.Select)
		if !ok {
			t.Fatalf("%s: compiled plan is not a selection", q)
		}
		unseeded := New(g, Options{Limits: lim})
		inner, err := unseeded.EvalPaths(sel.In)
		if err != nil {
			t.Fatalf("%s unseeded: %v", q, err)
		}
		want := core.EvalSelect(g, sel.Cond, inner)
		if a.Len() != want.Len() {
			t.Fatalf("%s: seeded %d vs filter-after %d paths", q, a.Len(), want.Len())
		}
		for i, p := range a.Paths() {
			if !p.Equal(want.At(i)) {
				t.Fatalf("%s: path %d differs between seeded and filter-after evaluation", q, i)
			}
		}
		if tc.expectSeeded && fast.Stats().SeededRecursions == 0 {
			t.Errorf("%s: expected a seeded recursion", q)
		}
	}
}

// TestEngineRunsBackwardPlan: the planner-chosen backward plan produces
// the same set as the planner-off engine on a fan-in workload.
func TestEngineRunsBackwardPlan(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 40; i++ {
		b.AddNode(fmt.Sprintf("p%d", i), "Person", nil)
	}
	b.AddNode("m0", "Message", nil)
	b.AddNode("m1", "Message", nil)
	for i := 0; i < 40; i++ {
		b.AddEdge(fmt.Sprintf("e%d", i), fmt.Sprintf("p%d", i), fmt.Sprintf("m%d", i%2), "Likes", nil)
	}
	g := b.MustBuild()
	lim := core.Limits{MaxLen: 4}
	plan := gql.MustCompile(`MATCH TRAIL p = (?x)-[:Likes+]->(?y:Message)`)

	on := New(g, Options{Limits: lim})
	got, err := on.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats().BackwardRecursions == 0 {
		t.Errorf("planner should have picked backward evaluation (stats %+v)", on.Stats())
	}
	off := New(g, Options{Limits: lim, DisablePlanner: true})
	want, err := off.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("backward plan: %d paths, planner-off %d", got.Len(), want.Len())
	}
}
