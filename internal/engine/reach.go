package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/obs"
	"pathalgebra/internal/opt"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/reach"
	"pathalgebra/internal/rpq"
)

// ReachResult is a path-free answer: a property of the plan's result set
// that does not depend on path bodies (see opt.ReachMode). Pairs are
// ascending by (Src, Dst); Lengths, when present, is parallel to Pairs.
// Kernel reports which evaluation route produced the answer — true for
// the bitset reachability kernel, false for plan enumeration followed by
// body erasure. Both routes return identical data.
type ReachResult struct {
	Mode opt.ReachMode
	// Exists is always populated: whether the result set is non-empty.
	Exists bool
	// Count is the distinct endpoint-pair count for ReachCountPairs and
	// the path count for ReachCountPaths; len(Pairs) otherwise.
	Count int
	// Pairs holds the distinct endpoint pairs for ReachPairs and
	// ReachShortestLengths; nil for the scalar modes.
	Pairs []reach.Pair
	// Lengths is the per-pair minimal path length (ReachShortestLengths).
	Lengths []int32
	// Kernel is true when the bitset kernel produced the answer.
	Kernel bool
	// Graph and Epoch report the pinned evaluation view (like
	// Stream.Graph/Epoch): Pairs' node IDs were minted at this view and
	// must be rendered against it — compaction may remap IDs in later
	// epochs.
	Graph *graph.Graph
	Epoch uint64
}

// Reach plans x like Run and answers the path-free question mode about
// its result set. Eligible plans (opt.AnalyzeReach) route to the bitset
// reachability kernel — no path is ever materialized; everything else,
// and any graph whose bitset index exceeds graph.MaxBitsetBytes, falls
// back to full enumeration with the answer derived by erasing bodies.
func (e *Engine) Reach(x core.PathExpr, mode opt.ReachMode) (*ReachResult, error) {
	return e.ReachCtx(context.Background(), x, mode)
}

// ReachCtx is Reach with cooperative cancellation (see RunCtx). On a live
// engine the plan, the eligibility analysis and the evaluation all run
// against one pinned epoch.
func (e *Engine) ReachCtx(ctx context.Context, x core.PathExpr, mode opt.ReachMode) (*ReachResult, error) {
	b, release := e.pin()
	defer release()
	plan, _ := b.planTraced(ctx, x)
	sp := obs.SpanFrom(ctx).Start("eval")
	defer sp.End()
	sp.SetInt("epoch", int64(b.epoch))
	ctx = obs.WithSpan(ctx, sp)
	if rp, ok := opt.AnalyzeReach(plan, mode); ok {
		res, err := b.reachKernel(ctx, rp, mode)
		switch {
		case err == nil:
			addStat(&e.stats.ReachKernelRuns, 1)
			sp.SetInt("kernel", 1)
			res.Graph, res.Epoch = b.g, b.epoch
			return res, nil
		case !errors.Is(err, reach.ErrInfeasible):
			e.noteEvalErr(err)
			return nil, fmt.Errorf("engine: reach %s: %w", mode, err)
		}
		// Bitset index infeasible: enumerate like an ineligible plan.
	}
	addStat(&e.stats.ReachFallbacks, 1)
	set, err := b.evalPathsCtx(ctx, plan)
	if err != nil {
		e.noteEvalErr(err)
		return nil, err
	}
	res := reachFromSet(set, mode)
	res.Graph, res.Epoch = b.g, b.epoch
	return res, nil
}

// reachRoute names the evaluation route a path-free Reach call would
// take for this physical plan — explain output. ReachPairs is the
// representative mode: every kernel-admitted mode shares its eligibility.
func (e *Engine) reachRoute(plan core.PathExpr) string {
	rp, ok := opt.AnalyzeReach(plan, opt.ReachPairs)
	if !ok {
		return "enumeration"
	}
	if _, feasible := reach.NewEvaluator(e.g, automaton.Build(rpq.Plus{In: rp.Pattern})); !feasible {
		return "enumeration"
	}
	return "reach-bitset"
}

// reachKernel runs an eligible plan on the bitset kernel: seeds and
// targets come from the endpoint conjuncts' node sets, the automaton from
// the recursion pattern. The engine's limits bound the BFS exactly as
// they bound enumeration (shared MaxLen, work and answer budgets).
func (e *Engine) reachKernel(ctx context.Context, rp opt.ReachPlan, mode opt.ReachMode) (*ReachResult, error) {
	seeds := e.seedNodes(rp.SeedConds)
	if len(rp.SeedConds) > 0 && seeds == nil {
		seeds = []graph.NodeID{} // non-nil: zero seeds, not all nodes
	}
	targets := e.seedNodes(rp.TargetConds)
	if len(rp.TargetConds) > 0 && targets == nil {
		targets = []graph.NodeID{} // non-nil: zero targets, not all nodes
	}
	q := reach.Query{
		NFA:         automaton.Build(rpq.Plus{In: rp.Pattern}),
		Seeds:       seeds,
		Targets:     targets,
		NeedLengths: mode == opt.ReachShortestLengths,
		Workers:     e.opts.parallelism(),
	}
	res, err := reach.Eval(ctx, e.g, q, e.opts.Limits)
	if err != nil {
		return nil, err
	}
	out := &ReachResult{Mode: mode, Kernel: true, Exists: len(res.Pairs) > 0, Count: len(res.Pairs)}
	switch mode {
	case opt.ReachPairs:
		out.Pairs = res.Pairs
	case opt.ReachShortestLengths:
		out.Pairs = res.Pairs
		out.Lengths = res.Lengths
	}
	return out, nil
}

// reachFromSet derives the path-free answer from an enumerated result by
// erasing path bodies: pairs dedup to the kernel's ascending (Src, Dst)
// order, lengths take the per-pair minimum.
func reachFromSet(set *pathset.Set, mode opt.ReachMode) *ReachResult {
	out := &ReachResult{Mode: mode, Exists: set.Len() > 0}
	if mode == opt.ReachCountPaths {
		out.Count = set.Len()
		return out
	}
	minLen := make(map[reach.Pair]int32, set.Len())
	for _, p := range set.Paths() {
		k := reach.Pair{Src: p.First(), Dst: p.Last()}
		l := int32(p.Len())
		if old, ok := minLen[k]; !ok || l < old {
			minLen[k] = l
		}
	}
	pairs := make([]reach.Pair, 0, len(minLen))
	for k := range minLen {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	out.Count = len(pairs)
	switch mode {
	case opt.ReachPairs:
		out.Pairs = pairs
	case opt.ReachShortestLengths:
		out.Pairs = pairs
		out.Lengths = make([]int32, len(pairs))
		for i, k := range pairs {
			out.Lengths[i] = minLen[k]
		}
	}
	return out
}
