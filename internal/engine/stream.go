package engine

import (
	"context"
	"sync/atomic"

	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/obs"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// DefaultChunkSize is the paths-per-chunk bound applied when
// StreamOptions.ChunkSize is unset.
const DefaultChunkSize = 1024

// StreamOptions configures RunStream.
type StreamOptions struct {
	// ChunkSize bounds the number of paths per emitted chunk; <= 0
	// selects DefaultChunkSize.
	ChunkSize int
}

func (o StreamOptions) chunkSize() int {
	if o.ChunkSize <= 0 {
		return DefaultChunkSize
	}
	return o.ChunkSize
}

// Stream is a chunked, cancellable result cursor produced by RunStream.
// Chunks are emitted in the engine's deterministic result order, so the
// concatenation of all chunks is exactly the set Engine.Run would have
// returned — at every parallelism and chunk size. A Stream is not safe
// for concurrent use; callers paging one stream from several goroutines
// (e.g. the query service's cursor endpoints) must serialize Next calls.
type Stream struct {
	chunk  int
	cancel context.CancelFunc
	done   chan struct{} // closed when evaluation finished
	set    *pathset.Set  // evaluation result; written before done closes
	err    error         // evaluation error; written before done closes
	pos    int           // next unread position into set

	// g/epoch identify the graph view the evaluation ran (or a cached
	// result was computed) against; on a live engine the stream holds a
	// pin on that epoch until Close, so compaction can never remap the
	// IDs inside the stream's paths while a cursor is open.
	g       *graph.Graph
	epoch   uint64
	release func()
	closed  atomic.Bool
}

// RunStream plans x like Run and evaluates the chosen plan in a
// background goroutine, returning immediately with a cursor over the
// eventual result. Next blocks until evaluation completes and then pages
// the result in chunks of at most the configured size. Cancelling ctx
// (or calling Stream.Cancel) aborts the evaluation promptly: all
// evaluation workers stop at their next budget charge, and Next returns
// the cancellation cause (errors.Is context.Canceled /
// context.DeadlineExceeded; budget exhaustion stays
// core.ErrBudgetExceeded).
//
// Chunked delivery, not incremental production: the engine's operators
// are deterministic-order set operators, so results are materialized
// fully before the first chunk — what streaming buys is bounded-size
// pages for transport, a stable pagination order, and the ability to
// abandon the evaluation (or the unread tail) at any point.
func (e *Engine) RunStream(ctx context.Context, x core.PathExpr, o StreamOptions) *Stream {
	b, release := e.pin()
	ctx, cancel := context.WithCancel(ctx)
	s := &Stream{
		chunk:   o.chunkSize(),
		cancel:  cancel,
		done:    make(chan struct{}),
		g:       b.g,
		epoch:   b.epoch,
		release: release,
	}
	plan, _ := b.planTraced(ctx, x)
	sp := obs.SpanFrom(ctx).Start("eval")
	sp.SetInt("epoch", int64(b.epoch))
	evalCtx := obs.WithSpan(ctx, sp)
	go func() {
		defer close(s.done)
		defer cancel()
		// The eval span ends when the evaluation goroutine does —
		// delivery spans (server-side) then run as its siblings.
		defer sp.End()
		// Last line of defense above the evaluators' own recovery: a panic
		// in engine-level operators becomes this stream's typed error (the
		// deferred close/cancel/unpin chain then runs normally) instead of
		// killing the process.
		defer func() {
			if r := recover(); r != nil {
				s.err = core.Recovered(r)
			}
		}()
		s.set, s.err = b.evalPathsCtx(evalCtx, plan)
		if s.set != nil {
			sp.SetInt("paths", int64(s.set.Len()))
		}
		e.noteEvalErr(s.err)
	}()
	return s
}

// StreamOf wraps an already-materialized result set in a Stream paging
// it in chunks of at most chunkSize (<= 0 selects DefaultChunkSize). The
// query service uses it to page result-cache hits through the same
// cursor machinery as live evaluations; g is the graph view the set was
// computed against (the view its path IDs must be rendered with).
func StreamOf(g *graph.Graph, set *pathset.Set, chunkSize int) *Stream {
	s := &Stream{
		chunk:   StreamOptions{ChunkSize: chunkSize}.chunkSize(),
		cancel:  func() {},
		done:    make(chan struct{}),
		set:     set,
		g:       g,
		release: releaseNoop,
	}
	close(s.done)
	return s
}

// Next returns the next chunk of results as a pathset of at most the
// configured chunk size, blocking until the evaluation has completed.
// It returns (nil, nil) when the stream is exhausted, and the
// evaluation's error — typed: core.ErrBudgetExceeded, context.Canceled,
// context.DeadlineExceeded — once, on the first call after failure.
func (s *Stream) Next() (*pathset.Set, error) {
	<-s.done
	if s.err != nil {
		return nil, s.err
	}
	if s.pos >= s.set.Len() {
		return nil, nil
	}
	hi := min(s.pos+s.chunk, s.set.Len())
	// A chunk view is duplicate-free by construction (a slice of a
	// deduplicated set), so the disjoint constructor applies: one index
	// insert per path, no membership probes, and the chunk paths alias
	// the result set's storage — no copying.
	chunk := pathset.FromOrderedDisjoint([][]path.Path{s.set.Paths()[s.pos:hi]})
	s.pos = hi
	return chunk, nil
}

// Cancel aborts the evaluation (all workers stop at their next budget
// charge) and releases the stream's context resources. Idempotent;
// harmless after completion — already-delivered chunks stay valid, and
// the undelivered remainder of a completed result stays readable. Cancel
// does NOT unpin the stream's epoch; call Close when done with the
// stream's data.
func (s *Stream) Cancel() { s.cancel() }

// Close cancels the stream and releases its epoch pin. Idempotent. After
// Close the already-read chunks stay valid (the graph view is reachable
// while referenced), but the store may compact the epoch away.
func (s *Stream) Close() {
	s.cancel()
	if s.closed.Swap(true) {
		return
	}
	// Wait for the evaluation goroutine before unpinning: the epoch must
	// stay pinned while workers still read its graph.
	<-s.done
	if s.release != nil {
		s.release()
	}
}

// Graph returns the graph view the stream's paths resolve against — the
// pinned epoch's view on a live engine. Render result paths with this
// graph, never with the engine's current one.
func (s *Stream) Graph() *graph.Graph { return s.g }

// Epoch returns the epoch the stream evaluated against.
func (s *Stream) Epoch() uint64 { return s.epoch }

// Done returns a channel closed when the evaluation has finished
// (successfully or not) and its worker goroutines have exited.
func (s *Stream) Done() <-chan struct{} { return s.done }

// Result blocks until evaluation completes and returns the full result
// set and error — Run's return values. The query service uses it to
// admit completed results into the result cache; pagination state is
// unaffected.
func (s *Stream) Result() (*pathset.Set, error) {
	<-s.done
	return s.set, s.err
}

// Len returns the total number of result paths, blocking until the
// evaluation completes; 0 on error.
func (s *Stream) Len() int {
	<-s.done
	if s.set == nil {
		return 0
	}
	return s.set.Len()
}

// Pos returns the number of paths already delivered by Next.
func (s *Stream) Pos() int { return s.pos }
