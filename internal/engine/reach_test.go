package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/opt"
	"pathalgebra/internal/testutil"
)

func knowsRecurse(sem core.Semantics) core.PathExpr {
	return core.Recurse{Sem: sem, In: core.Select{
		Cond: cond.Label(cond.EdgeAt(1), ldbc.LabelKnows), In: core.Edges{},
	}}
}

// checkReachAgainstRun cross-checks every Reach mode against the erasure
// of the engine's own enumerated result — the kernel-vs-enumeration
// differential. wantKernel pins the expected route for the erasure-
// invariant modes.
func checkReachAgainstRun(t *testing.T, e *Engine, plan core.PathExpr, wantKernel bool) {
	t.Helper()
	set, err := e.Run(plan)
	if err != nil {
		t.Fatalf("Run(%s): %v", plan, err)
	}
	for _, mode := range []opt.ReachMode{
		opt.ReachExists, opt.ReachPairs, opt.ReachCountPairs, opt.ReachShortestLengths,
	} {
		got, err := e.Reach(plan, mode)
		if err != nil {
			t.Fatalf("Reach(%s, %s): %v", plan, mode, err)
		}
		if got.Kernel != wantKernel {
			t.Fatalf("Reach(%s, %s): kernel = %v, want %v", plan, mode, got.Kernel, wantKernel)
		}
		want := reachFromSet(set, mode)
		if got.Exists != want.Exists || got.Count != want.Count {
			t.Fatalf("Reach(%s, %s): exists=%v count=%d, enumeration says exists=%v count=%d",
				plan, mode, got.Exists, got.Count, want.Exists, want.Count)
		}
		if mode == opt.ReachPairs || mode == opt.ReachShortestLengths {
			if len(got.Pairs) != len(want.Pairs) {
				t.Fatalf("Reach(%s, %s): %d pairs, enumeration says %d",
					plan, mode, len(got.Pairs), len(want.Pairs))
			}
			for i := range got.Pairs {
				if got.Pairs[i] != want.Pairs[i] {
					t.Fatalf("Reach(%s, %s): pair[%d] = %v, enumeration says %v",
						plan, mode, i, got.Pairs[i], want.Pairs[i])
				}
			}
		}
		if mode == opt.ReachShortestLengths {
			for i := range got.Lengths {
				if got.Lengths[i] != want.Lengths[i] {
					t.Fatalf("Reach(%s, %s): length[%v] = %d, enumeration says %d",
						plan, mode, got.Pairs[i], got.Lengths[i], want.Lengths[i])
				}
			}
		}
	}
	// Path counts must always enumerate.
	got, err := e.Reach(plan, opt.ReachCountPaths)
	if err != nil {
		t.Fatalf("Reach(%s, count-paths): %v", plan, err)
	}
	if got.Kernel {
		t.Fatalf("Reach(%s, count-paths) ran on the kernel", plan)
	}
	if got.Count != set.Len() {
		t.Fatalf("Reach(%s, count-paths) = %d, enumeration has %d paths",
			plan, got.Count, set.Len())
	}
}

// TestReachParallelEdges pins the γ path-count seam: two parallel knows
// edges are two distinct paths with one endpoint pair. The kernel must
// serve pair counts (1) and must never be consulted for path counts (2).
func TestReachParallelEdges(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("a", ldbc.LabelPerson, nil)
	b.AddNode("b", ldbc.LabelPerson, nil)
	b.AddEdge("e1", "a", "b", ldbc.LabelKnows, nil)
	b.AddEdge("e2", "a", "b", ldbc.LabelKnows, nil)
	g := b.MustBuild()
	e := New(g, Options{Limits: core.Limits{MaxLen: 3}})
	plan := knowsRecurse(core.Walk)

	pairs, err := e.Reach(plan, opt.ReachCountPairs)
	if err != nil {
		t.Fatal(err)
	}
	if !pairs.Kernel {
		t.Error("pair count of an eligible plan must run on the kernel")
	}
	if pairs.Count != 1 {
		t.Errorf("pair count = %d, want 1", pairs.Count)
	}

	paths, err := e.Reach(plan, opt.ReachCountPaths)
	if err != nil {
		t.Fatal(err)
	}
	if paths.Kernel {
		t.Error("path count must never run on the kernel")
	}
	if paths.Count != 2 {
		t.Errorf("path count = %d, want 2 (parallel edges are distinct paths)", paths.Count)
	}

	st := e.Stats()
	if st.ReachKernelRuns != 1 || st.ReachFallbacks != 1 {
		t.Errorf("stats: kernel=%d fallbacks=%d, want 1 and 1",
			st.ReachKernelRuns, st.ReachFallbacks)
	}
	checkReachAgainstRun(t, e, plan, true)
}

// TestReachDispatch pins the routing table: eligible shapes take the
// kernel, ineligible ones enumerate, and both produce the erasure of the
// enumerated result.
func TestReachDispatch(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{Limits: core.Limits{MaxLen: 4}})
	gST := core.GroupSource | core.GroupTarget

	kernelPlans := []core.PathExpr{
		knowsRecurse(core.Walk),
		knowsRecurse(core.Shortest),
		core.Select{Cond: cond.Label(cond.First(), ldbc.LabelPerson), In: knowsRecurse(core.Walk)},
		core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.AllCount(),
			In: core.GroupBy{Key: gST, In: knowsRecurse(core.Walk)}},
		core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
			In: core.OrderBy{Key: core.OrderPath, In: core.GroupBy{Key: gST, In: knowsRecurse(core.Shortest)}}},
	}
	for _, plan := range kernelPlans {
		checkReachAgainstRun(t, e, plan, true)
	}
	enumPlans := []core.PathExpr{
		knowsRecurse(core.Trail),
		core.Select{Cond: cond.Label(cond.NodeAt(2), ldbc.LabelPerson), In: knowsRecurse(core.Walk)},
	}
	for _, plan := range enumPlans {
		checkReachAgainstRun(t, e, plan, false)
	}
}

// TestExplainReportsKernel pins the explain surface: eligible plans
// report the bitset route, ineligible ones enumeration.
func TestExplainReportsKernel(t *testing.T) {
	e := New(ldbc.Figure1(), Options{Limits: core.Limits{MaxLen: 3}})
	ex, err := e.Explain(knowsRecurse(core.Walk))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Kernel != "reach-bitset" {
		t.Errorf("eligible plan explain kernel = %q, want reach-bitset", ex.Kernel)
	}
	if s := ex.Format(); !strings.Contains(s, "reach kernel: reach-bitset") {
		t.Errorf("Format missing kernel line:\n%s", s)
	}
	ex, err = e.Explain(knowsRecurse(core.Trail))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Kernel != "enumeration" {
		t.Errorf("ineligible plan explain kernel = %q, want enumeration", ex.Kernel)
	}

	// An infeasible bitset index flips the route even for eligible plans.
	old := graph.MaxBitsetBytes
	graph.MaxBitsetBytes = 8
	defer func() { graph.MaxBitsetBytes = old }()
	e2 := New(ldbc.Figure1(), Options{Limits: core.Limits{MaxLen: 3}})
	ex, err = e2.Explain(knowsRecurse(core.Walk))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Kernel != "enumeration" {
		t.Errorf("infeasible-index explain kernel = %q, want enumeration", ex.Kernel)
	}
	// And Reach itself must fall back, not fail.
	res, err := e2.Reach(knowsRecurse(core.Walk), opt.ReachPairs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel {
		t.Error("infeasible index: Reach must fall back to enumeration")
	}
	checkReachAgainstRun(t, e2, knowsRecurse(core.Walk), false)
}

// TestReachIngestNewLabelReseal is the label-clock seam regression: a
// batch introducing a brand-new edge label takes the store's inline
// reseal path. The resealed graph value must serve kernel answers that
// see the new label — a stale bitset index reused across the reseal
// would silently return empty.
func TestReachIngestNewLabelReseal(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), ldbc.LabelPerson, nil)
	}
	b.AddEdge("k0", "n0", "n1", ldbc.LabelKnows, nil)
	b.AddEdge("k1", "n1", "n2", ldbc.LabelKnows, nil)
	s := graph.NewStore(b.MustBuild(), graph.StoreOptions{CompactThreshold: -1})
	defer s.Close()
	e := NewWithStore(s, Options{Limits: core.Limits{MaxLen: 4}})

	// Build the pre-ingest bitset index by running a kernel query first.
	checkReachAgainstRun(t, e, knowsRecurse(core.Walk), true)

	// "likes" does not exist yet: the eligible plan must answer empty.
	likes := core.Recurse{Sem: core.Walk, In: core.Select{
		Cond: cond.Label(cond.EdgeAt(1), ldbc.LabelLikes), In: core.Edges{},
	}}
	res, err := e.Reach(likes, opt.ReachPairs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exists {
		t.Fatal("likes pairs exist before the label was ingested")
	}

	// Ingest the new label (inline reseal) plus a delete in one batch.
	if _, err := s.Apply(graph.Batch{Ops: []graph.Op{
		{Kind: graph.OpAddEdge, Key: "l0", Src: "n2", Dst: "n3", Label: ldbc.LabelLikes},
		{Kind: graph.OpAddEdge, Key: "l1", Src: "n3", Dst: "n0", Label: ldbc.LabelLikes},
		{Kind: graph.OpDelEdge, Key: "k1"},
	}}); err != nil {
		t.Fatal(err)
	}

	res, err = e.Reach(likes, opt.ReachCountPairs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Kernel {
		t.Error("post-reseal likes plan must run on the kernel")
	}
	if res.Count != 3 { // n2→n3, n3→n0, n2→n0
		t.Errorf("likes pair count = %d, want 3", res.Count)
	}
	checkReachAgainstRun(t, e, likes, true)
	checkReachAgainstRun(t, e, knowsRecurse(core.Walk), true) // k1 gone

	// Compaction republishes a sealed graph; answers must not change.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	checkReachAgainstRun(t, e, likes, true)
	checkReachAgainstRun(t, e, knowsRecurse(core.Walk), true)
}

// randomReachPlan generates a kernel-eligible plan: a random label
// pattern under Walk or Shortest, optionally wrapped in an endpoint
// selection, an identity pipeline or the ANY SHORTEST truncation.
func randomReachPlan(rng *rand.Rand) core.PathExpr {
	labels := []string{ldbc.LabelKnows, ldbc.LabelLikes, ldbc.LabelHasCreator}
	var pattern func(depth int) core.PathExpr
	pattern = func(depth int) core.PathExpr {
		if depth <= 0 || rng.Intn(2) == 0 {
			if rng.Intn(4) == 0 {
				return core.Edges{}
			}
			return core.Select{
				Cond: cond.Label(cond.EdgeAt(1), labels[rng.Intn(len(labels))]),
				In:   core.Edges{},
			}
		}
		if rng.Intn(2) == 0 {
			return core.Join{L: pattern(depth - 1), R: pattern(depth - 1)}
		}
		return core.Union{L: pattern(depth - 1), R: pattern(depth - 1)}
	}
	sem := core.Walk
	if rng.Intn(2) == 0 {
		sem = core.Shortest
	}
	var plan core.PathExpr = core.Recurse{Sem: sem, In: pattern(2)}
	switch rng.Intn(4) {
	case 0:
		c := cond.Label(cond.First(), ldbc.LabelPerson)
		if rng.Intn(2) == 0 {
			plan = core.Select{Cond: cond.And{L: c, R: cond.Label(cond.Last(), ldbc.LabelPerson)}, In: plan}
		} else {
			plan = core.Select{Cond: c, In: plan}
		}
	case 1:
		plan = core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.AllCount(),
			In: core.GroupBy{Key: core.GroupSource | core.GroupTarget, In: plan}}
	case 2:
		plan = core.Project{Parts: core.AllCount(), Groups: core.AllCount(), Paths: core.NCount(1),
			In: core.OrderBy{Key: core.OrderPath,
				In: core.GroupBy{Key: core.GroupSource | core.GroupTarget, In: plan}}}
	}
	return plan
}

// TestRandomizedReachDifferential extends the randomized harness to the
// reach kernel: seeded random plans over store-backed graphs, every
// kernel-eligible plan cross-checked kernel-vs-enumeration on all modes
// at parallelism 1 and 8, across three store phases — sealed base,
// post-ingest overlay (adds, deletes and a new label), and post-
// compaction.
func TestRandomizedReachDifferential(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 60
	}
	rng := rand.New(rand.NewSource(20260808))
	lim := core.Limits{MaxLen: 3}

	g := testutil.RandomGraph(rng)
	s := graph.NewStore(g, graph.StoreOptions{CompactThreshold: -1})
	defer s.Close()
	engines := []*Engine{
		NewWithStore(s, Options{Limits: lim, Parallelism: 1}),
		NewWithStore(s, Options{Limits: lim, Parallelism: 8}),
	}

	phase := func(name string, n int) {
		t.Helper()
		eligible := 0
		for trial := 0; trial < n; trial++ {
			// Alternate arbitrary plans (routing consistency, fallback
			// included) with guaranteed-eligible ones (kernel depth).
			var plan core.PathExpr
			if trial%2 == 0 {
				plan = testutil.RandomPlan(rng, 3)
			} else {
				plan = randomReachPlan(rng)
			}
			physical, _ := engines[0].Plan(plan)
			_, ok := opt.AnalyzeReach(physical, opt.ReachPairs)
			if ok {
				eligible++
			}
			var first *ReachResult
			for _, e := range engines {
				checkReachAgainstRun(t, e, plan, ok)
				got, err := e.Reach(plan, opt.ReachPairs)
				if err != nil {
					t.Fatalf("%s: Reach(%s): %v", name, plan, err)
				}
				if first == nil {
					first = got
				} else if len(got.Pairs) != len(first.Pairs) {
					t.Fatalf("%s: %s: parallelism changed the pair count", name, plan)
				}
			}
		}
		if eligible == 0 {
			t.Fatalf("%s: no kernel-eligible plan in %d trials", name, n)
		}
		t.Logf("%s: %d/%d plans kernel-eligible", name, eligible, n)
	}

	per := trials / 3
	phase("sealed", per)

	// Overlay phase: new persons, new knows edges, a brand-new label and
	// deletes of freshly-added edges — all key-known operations.
	ops := []graph.Op{
		{Kind: graph.OpAddNode, Key: "xp0", Label: ldbc.LabelPerson},
		{Kind: graph.OpAddNode, Key: "xp1", Label: ldbc.LabelPerson},
		{Kind: graph.OpAddEdge, Key: "xe0", Src: "xp0", Dst: "xp1", Label: ldbc.LabelKnows},
		{Kind: graph.OpAddEdge, Key: "xe1", Src: "xp1", Dst: "xp0", Label: "collab"},
		{Kind: graph.OpAddEdge, Key: "xe2", Src: "xp0", Dst: "xp1", Label: "collab"},
	}
	if _, err := s.Apply(graph.Batch{Ops: ops}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(graph.Batch{Ops: []graph.Op{
		{Kind: graph.OpDelEdge, Key: "xe2"},
	}}); err != nil {
		t.Fatal(err)
	}
	phase("overlay", per)

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	phase("compacted", per)
}
