package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/opt"
	"pathalgebra/internal/rpq"
)

func compileQuery(q string) (core.PathExpr, error) {
	parsed, err := gql.Parse(q)
	if err != nil {
		return nil, err
	}
	return gql.Compile(parsed)
}

func optimizePlan(p core.PathExpr) core.PathExpr { return opt.Optimize(p).Plan }

// randPattern generates a random +-free regular expression over the SNB
// labels; wrapped in Plus by the caller so the recursion spans the whole
// pattern and all evaluators share one semantics.
func randPattern(rng *rand.Rand, depth int) rpq.Expr {
	labels := []string{ldbc.LabelKnows, ldbc.LabelLikes, ldbc.LabelHasCreator}
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(6) == 0 {
			return rpq.AnyLabel{}
		}
		return rpq.Label{Name: labels[rng.Intn(len(labels))]}
	}
	l := randPattern(rng, depth-1)
	r := randPattern(rng, depth-1)
	if rng.Intn(2) == 0 {
		return rpq.Concat{L: l, R: r}
	}
	return rpq.Alt{L: l, R: r}
}

// TestDifferentialRandom cross-checks three independent evaluation routes
// — the expansion fast path, the generic closure over a materialized base
// set, and the automaton product search — on random graphs and random
// recursive patterns under every semantics.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		cfg := ldbc.Config{
			Persons:        4 + rng.Intn(10),
			Messages:       rng.Intn(8),
			KnowsPerPerson: 1 + rng.Intn(3),
			LikesPerPerson: rng.Intn(3),
			CycleFraction:  float64(rng.Intn(11)) / 10,
			Seed:           rng.Int63(),
		}
		g := ldbc.MustGenerate(cfg)
		pattern := rpq.Plus{In: randPattern(rng, 2)}
		nfa := automaton.Build(pattern)
		lim := core.Limits{MaxLen: 4}

		for _, sem := range core.AllSemantics() {
			name := fmt.Sprintf("trial%d/%s/%s", trial, pattern, sem)
			plan := rpq.Compile(pattern, sem)

			fast := New(g, Options{Limits: lim})
			a, err := fast.EvalPaths(plan)
			if err != nil {
				t.Fatalf("%s fast: %v", name, err)
			}
			slow := New(g, Options{Limits: lim, DisableExpand: true, Join: NestedLoop})
			b, err := slow.EvalPaths(plan)
			if err != nil {
				t.Fatalf("%s generic: %v", name, err)
			}
			c, err := automaton.Eval(g, nfa, sem, lim)
			if err != nil {
				t.Fatalf("%s automaton: %v", name, err)
			}
			if !a.Equal(b) {
				t.Errorf("%s: fast %d vs generic %d paths", name, a.Len(), b.Len())
			}
			if !a.Equal(c) {
				t.Errorf("%s: engine %d vs automaton %d paths", name, a.Len(), c.Len())
			}
		}
	}
}

// TestDifferentialOptimizer: on random graphs, optimized plans and
// unoptimized plans agree for a battery of random label queries.
func TestDifferentialOptimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	templates := []string{
		`MATCH TRAIL p = (?x)-[%s]->(?y)`,
		`MATCH ACYCLIC p = (?x)-[%s]->(?y) WHERE first.name != "nobody"`,
		`MATCH ANY SHORTEST TRAIL p = (?x)-[%s+]->(?y)`,
		`MATCH ALL SHORTEST SIMPLE p = (?x)-[%s+]->(?y)`,
		`MATCH SHORTEST 2 ACYCLIC p = (?x)-[%s+]->(?y)`,
	}
	labels := []string{":Knows", ":Likes", ":Knows|:Likes", ":Likes/:Has_creator"}
	for trial := 0; trial < 8; trial++ {
		g := ldbc.MustGenerate(ldbc.Config{
			Persons:        5 + rng.Intn(8),
			Messages:       rng.Intn(6),
			KnowsPerPerson: 1 + rng.Intn(2),
			LikesPerPerson: 1,
			CycleFraction:  0.5,
			Seed:           rng.Int63(),
		})
		for _, tmpl := range templates {
			for _, lbl := range labels {
				query := fmt.Sprintf(tmpl, lbl)
				plan, err := compileQuery(query)
				if err != nil {
					t.Fatalf("%s: %v", query, err)
				}
				lim := core.Limits{MaxLen: 4}
				want, err := New(g, Options{Limits: lim}).EvalPaths(plan)
				if err != nil {
					t.Fatalf("%s unoptimized: %v", query, err)
				}
				optimized := optimizePlan(plan)
				got, err := New(g, Options{Limits: lim}).EvalPaths(optimized)
				if err != nil {
					t.Fatalf("%s optimized: %v", query, err)
				}
				if !got.Equal(want) {
					t.Errorf("trial %d %s: optimizer changed the answer (%d vs %d paths)",
						trial, query, got.Len(), want.Len())
				}
			}
		}
	}
}
