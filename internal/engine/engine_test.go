package engine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/rpq"
)

func knowsSel() core.Select {
	return core.Select{Cond: cond.Label(cond.EdgeAt(1), ldbc.LabelKnows), In: core.Edges{}}
}

func TestAtoms(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{})
	nodes, err := e.EvalPaths(core.Nodes{})
	if err != nil || nodes.Len() != 7 {
		t.Fatalf("Nodes = %d, %v; want 7", nodes.Len(), err)
	}
	edges, err := e.EvalPaths(core.Edges{})
	if err != nil || edges.Len() != 11 {
		t.Fatalf("Edges = %d, %v; want 11", edges.Len(), err)
	}
	if e.Graph() != g {
		t.Error("Graph() accessor")
	}
}

// TestEngineMatchesReference cross-checks every operator against the
// reference implementations in internal/core on randomized plans.
func TestEngineMatchesReference(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 10, Messages: 6, KnowsPerPerson: 2, LikesPerPerson: 1,
		CycleFraction: 0.5, Seed: 3,
	})
	lim := core.Limits{MaxLen: 4}

	// referenceEval is a direct recursive evaluator over core's
	// definitional operators.
	var referenceEval func(x core.PathExpr) (*pathset.Set, error)
	var referenceSpace func(x core.SpaceExpr) (*core.SolutionSpace, error)
	referenceEval = func(x core.PathExpr) (*pathset.Set, error) {
		switch x := x.(type) {
		case core.Nodes:
			return core.EvalNodes(g), nil
		case core.Edges:
			return core.EvalEdges(g), nil
		case core.Select:
			in, err := referenceEval(x.In)
			if err != nil {
				return nil, err
			}
			return core.EvalSelect(g, x.Cond, in), nil
		case core.Join:
			l, err := referenceEval(x.L)
			if err != nil {
				return nil, err
			}
			r, err := referenceEval(x.R)
			if err != nil {
				return nil, err
			}
			return core.EvalJoin(l, r), nil
		case core.Union:
			l, err := referenceEval(x.L)
			if err != nil {
				return nil, err
			}
			r, err := referenceEval(x.R)
			if err != nil {
				return nil, err
			}
			return core.EvalUnion(l, r), nil
		case core.Recurse:
			in, err := referenceEval(x.In)
			if err != nil {
				return nil, err
			}
			return core.EvalRecurse(x.Sem, in, lim)
		case core.Project:
			ss, err := referenceSpace(x.In)
			if err != nil {
				return nil, err
			}
			return core.EvalProject(x.Parts, x.Groups, x.Paths, ss), nil
		default:
			t.Fatalf("unexpected expr %T", x)
			return nil, nil
		}
	}
	referenceSpace = func(x core.SpaceExpr) (*core.SolutionSpace, error) {
		switch x := x.(type) {
		case core.GroupBy:
			in, err := referenceEval(x.In)
			if err != nil {
				return nil, err
			}
			return core.EvalGroupBy(x.Key, in), nil
		case core.OrderBy:
			in, err := referenceSpace(x.In)
			if err != nil {
				return nil, err
			}
			return core.EvalOrderBy(x.Key, in), nil
		default:
			t.Fatalf("unexpected space expr %T", x)
			return nil, nil
		}
	}

	queries := []string{
		`MATCH WALK p = (?x)-[:Knows]->(?y)`,
		`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ACYCLIC p = (?x)-[(:Likes/:Has_creator)+]->(?y)`,
		`MATCH SIMPLE p = (?x)-[:Knows+|:Likes]->(?y)`,
		`MATCH SHORTEST p = (?x)-[:Knows+]->(?y)`,
		`MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ALL SHORTEST ACYCLIC p = (?x)-[:Knows+]->(?y)`,
		`MATCH SHORTEST 2 TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ALL PARTITIONS 2 GROUPS 1 PATHS TRAIL p = (?x)-[:Knows*]->(?y) GROUP BY SOURCE LENGTH ORDER BY PARTITION GROUP PATH`,
		`MATCH WALK p = (?x)-[:Knows/:Knows]->(?y) WHERE first.name != "Moe_1"`,
	}
	for _, strategy := range []JoinStrategy{HashJoin, NestedLoop} {
		for _, qs := range queries {
			plan := gql.MustCompile(qs)
			want, err := referenceEval(plan)
			if err != nil {
				t.Fatalf("%s reference: %v", qs, err)
			}
			eng := New(g, Options{Limits: lim, Join: strategy})
			got, err := eng.EvalPaths(plan)
			if err != nil {
				t.Fatalf("%s engine(%s): %v", qs, strategy, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s under %s: engine %d paths, reference %d",
					qs, strategy, got.Len(), want.Len())
			}
		}
	}
}

func TestJoinStrategiesAgree(t *testing.T) {
	g := ldbc.Figure1()
	plan := core.Join{L: knowsSel(), R: knowsSel()}
	hash := New(g, Options{Join: HashJoin})
	nested := New(g, Options{Join: NestedLoop})
	a, err := hash.EvalPaths(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nested.EvalPaths(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("hash and nested-loop joins disagree")
	}
	if hash.Stats().JoinProbes >= nested.Stats().JoinProbes {
		t.Errorf("hash join should probe less: %d vs %d",
			hash.Stats().JoinProbes, nested.Stats().JoinProbes)
	}
}

func TestIndexedSelect(t *testing.T) {
	g := ldbc.Figure1()
	indexed := New(g, Options{})
	plain := New(g, Options{DisableLabelIndex: true})

	plans := []core.PathExpr{
		knowsSel(),
		core.Select{Cond: cond.Label(cond.First(), "Person"), In: core.Nodes{}},
		core.Select{Cond: cond.Label(cond.Last(), "Message"), In: core.Nodes{}},
		core.Select{Cond: cond.Label(cond.NodeAt(1), "Person"), In: core.Nodes{}},
	}
	for _, plan := range plans {
		a, err := indexed.EvalPaths(plan)
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.EvalPaths(plan)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("indexed and scan selection disagree for %s", plan)
		}
	}
	if indexed.Stats().IndexedScans != int64(len(plans)) {
		t.Errorf("IndexedScans = %d, want %d", indexed.Stats().IndexedScans, len(plans))
	}
	if plain.Stats().IndexedScans != 0 {
		t.Error("disabled index still used")
	}
}

func TestIndexedSelectNotUsedForComplexConds(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{})
	plans := []core.PathExpr{
		// NE comparisons and non-atom inputs must scan.
		core.Select{Cond: cond.LabelCmp{Target: cond.EdgeAt(1), Op: cond.NE, Value: "Knows"}, In: core.Edges{}},
		core.Select{Cond: cond.Label(cond.EdgeAt(2), "Knows"), In: core.Edges{}},
		core.Select{Cond: cond.Label(cond.EdgeAt(1), "Knows"), In: core.Union{L: core.Edges{}, R: core.Edges{}}},
		core.Select{Cond: cond.Len(0), In: core.Nodes{}},
	}
	for _, plan := range plans {
		if _, err := e.EvalPaths(plan); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().IndexedScans != 0 {
		t.Errorf("complex selections must not use the index; IndexedScans = %d",
			e.Stats().IndexedScans)
	}
}

func TestBudgetPropagates(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{Limits: core.Limits{MaxPaths: 10}})
	_, err := e.EvalPaths(core.Recurse{Sem: core.Walk, In: knowsSel()})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestNilAndUnknownExpr(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{})
	if _, err := e.EvalPaths(nil); err == nil {
		t.Error("nil path expr must error")
	}
	if _, err := e.EvalSpace(nil); err == nil {
		t.Error("nil space expr must error")
	}
}

func TestStatsReset(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{})
	if _, err := e.EvalPaths(core.Edges{}); err != nil {
		t.Fatal(err)
	}
	if e.Stats().PathsProduced == 0 {
		t.Error("stats not accumulated")
	}
	e.ResetStats()
	if e.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestEvalSpaceDirect(t *testing.T) {
	g := ldbc.Figure1()
	e := New(g, Options{})
	ss, err := e.EvalSpace(core.OrderBy{Key: core.OrderPath,
		In: core.GroupBy{Key: core.GroupST, In: knowsSel()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Partitions) != 4 {
		t.Errorf("partitions = %d, want 4 (one per Knows edge pair)", len(ss.Partitions))
	}
}

func TestJoinStrategyString(t *testing.T) {
	if HashJoin.String() != "hash" || NestedLoop.String() != "nested-loop" {
		t.Error("JoinStrategy names")
	}
	if JoinStrategy(9).String() != "JoinStrategy(9)" {
		t.Error("unknown strategy name")
	}
}

// Property: for random label pairs, engine join equals reference join.
func TestJoinMatchesReferenceProperty(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 8, Messages: 5, KnowsPerPerson: 2, LikesPerPerson: 2,
		CycleFraction: 0.25, Seed: 9,
	})
	labels := []string{ldbc.LabelKnows, ldbc.LabelLikes, ldbc.LabelHasCreator}
	f := func(i, j uint8) bool {
		l := core.Select{Cond: cond.Label(cond.EdgeAt(1), labels[int(i)%3]), In: core.Edges{}}
		r := core.Select{Cond: cond.Label(cond.EdgeAt(1), labels[int(j)%3]), In: core.Edges{}}
		eng := New(g, Options{})
		got, err := eng.EvalPaths(core.Join{L: l, R: r})
		if err != nil {
			return false
		}
		lref, _ := eng.EvalPaths(l)
		rref, _ := eng.EvalPaths(r)
		return got.Equal(core.EvalJoin(lref, rref))
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(5)), MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestGraphImmutabilityAcrossEngines: two engines over the same graph see
// identical data (graphs are shared, engines are not).
func TestGraphImmutabilityAcrossEngines(t *testing.T) {
	g := ldbc.Figure1()
	plan := rpq.Compile(rpq.MustParse(":Knows+"), core.Trail)
	a, err := New(g, Options{}).EvalPaths(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, Options{}).EvalPaths(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("evaluations over a shared graph disagree")
	}
}

func TestLabelIndexConsistency(t *testing.T) {
	// The indexed shortcut must match a full scan on a larger graph too.
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 40, Messages: 60, KnowsPerPerson: 3, LikesPerPerson: 2,
		CycleFraction: 0.3, Seed: 21,
	})
	for _, label := range []string{ldbc.LabelKnows, ldbc.LabelLikes, ldbc.LabelHasCreator, "Nope"} {
		plan := core.Select{Cond: cond.Label(cond.EdgeAt(1), label), In: core.Edges{}}
		a, err := New(g, Options{}).EvalPaths(plan)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(g, Options{DisableLabelIndex: true}).EvalPaths(plan)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("label %q: index and scan disagree (%d vs %d)", label, a.Len(), b.Len())
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var opts Options
	if opts.Join != HashJoin {
		t.Error("default join strategy must be HashJoin")
	}
	g := ldbc.Figure1()
	e := New(g, opts)
	// Default limits protect against divergence.
	_, err := e.EvalPaths(core.Recurse{Sem: core.Walk, In: knowsSel()})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Errorf("default limits should trip on a cyclic walk, got %v", err)
	}
	_ = graph.Graph{} // keep graph import for the builder-based tests above
}

// TestFingerprintCollisionStat checks the observability hook for the
// fingerprint fallback: a normal evaluation should see no collisions, and
// the counter must rebase on ResetStats rather than accumulate forever.
func TestFingerprintCollisionStat(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 20, KnowsPerPerson: 3, CycleFraction: 0.3, Seed: 4,
	})
	e := New(g, Options{Limits: core.Limits{MaxLen: 5}})
	if _, err := e.EvalPaths(rpq.Compile(rpq.MustParse(":Knows+"), core.Trail)); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().FingerprintCollisions; got != 0 {
		t.Errorf("FingerprintCollisions = %d on an honest evaluation, want 0", got)
	}
	// Force collisions through the shared pathset counter and check the
	// engine observes exactly the delta since its construction.
	s := pathset.New(0)
	figure := ldbc.Figure1()
	s.Add(path.ForceFingerprint(path.MustFromKeys(figure, "n1", "e1", "n2"), 7))
	s.Add(path.ForceFingerprint(path.MustFromKeys(figure, "n2", "e2", "n3"), 7))
	if got := e.Stats().FingerprintCollisions; got != 1 {
		t.Errorf("FingerprintCollisions = %d after one injected collision, want 1", got)
	}
	e.ResetStats()
	if got := e.Stats().FingerprintCollisions; got != 0 {
		t.Errorf("FingerprintCollisions = %d after ResetStats, want 0", got)
	}
}
