package engine

import (
	"sort"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
)

// PlanFootprint computes the label footprint of a physical plan: which
// node and edge label populations the plan's result can depend on. The
// query service tags cached results with it so ingest batches invalidate
// only the entries whose plans actually read a touched label
// (graph.Store.ValidAt).
//
// The analysis leans on the store's immutability discipline — node and
// edge labels and properties never change after creation (the batch ops
// are add/delete only) — so a subtree's result changes only when the
// OBJECT POPULATIONS it draws from change. Selections, conditions,
// grouping and ordering all read attributes of objects the input already
// supplies, so they add nothing to the input's footprint. The two
// narrowing shapes the planner itself produces are recognized exactly:
//
//	σ[label(edge(1)) = L](Edges(G))  →  edge label L
//	σ[label(first|last|node(1)) = L](Nodes(G))  →  node label L
//
// Everything else is conservative: bare atoms depend on all nodes/edges,
// unknown operator shapes on everything.
func PlanFootprint(x core.PathExpr) graph.Footprint {
	var a fpAcc
	a.path(x)
	fp := graph.Footprint{
		AllNodes:   a.allNodes,
		AllEdges:   a.allEdges,
		NodeLabels: sortedKeys(a.nodeLabels),
		EdgeLabels: sortedKeys(a.edgeLabels),
	}
	return fp.Normalize()
}

// sortedKeys returns the keys of set in sorted order, nil when empty.
// Footprints are compared and rendered downstream, so their label lists
// must not depend on map iteration order.
func sortedKeys(set map[string]struct{}) []string {
	if len(set) == 0 {
		return nil
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type fpAcc struct {
	allNodes, allEdges bool
	nodeLabels         map[string]struct{}
	edgeLabels         map[string]struct{}
}

func (a *fpAcc) nodeLabel(l string) {
	if a.nodeLabels == nil {
		a.nodeLabels = make(map[string]struct{})
	}
	a.nodeLabels[l] = struct{}{}
}

func (a *fpAcc) edgeLabel(l string) {
	if a.edgeLabels == nil {
		a.edgeLabels = make(map[string]struct{})
	}
	a.edgeLabels[l] = struct{}{}
}

func (a *fpAcc) path(x core.PathExpr) {
	switch x := x.(type) {
	case core.Nodes:
		a.allNodes = true
	case core.Edges:
		a.allEdges = true
	case core.Select:
		if l, ok := edgeLabelSelect(x); ok {
			a.edgeLabel(l)
			return
		}
		if l, ok := nodeLabelSelect(x); ok {
			a.nodeLabel(l)
			return
		}
		// A general selection filters its input; labels and properties are
		// immutable, so the condition adds no dependencies beyond the
		// input's object populations.
		a.path(x.In)
	case core.Join:
		a.path(x.L)
		a.path(x.R)
	case core.Union:
		a.path(x.L)
		a.path(x.R)
	case core.Recurse:
		// The closure joins paths of the base with themselves; it reads no
		// graph data beyond what the base draws on (the automaton fast path
		// walks exactly the base pattern's labels).
		a.path(x.In)
	case core.Restrict:
		a.path(x.In)
	case core.Project:
		a.space(x.In)
	default:
		a.allNodes = true
		a.allEdges = true
	}
}

func (a *fpAcc) space(x core.SpaceExpr) {
	switch x := x.(type) {
	case core.GroupBy:
		a.path(x.In)
	case core.OrderBy:
		a.space(x.In)
	default:
		a.allNodes = true
		a.allEdges = true
	}
}

// edgeLabelSelect recognizes σ[label(edge(1)) = L](Edges(G)): the
// length-one paths over L-labeled edges.
func edgeLabelSelect(x core.Select) (string, bool) {
	lc, ok := x.Cond.(cond.LabelCmp)
	if !ok || lc.Op != cond.EQ || lc.Target.Kind != cond.TargetEdge || lc.Target.Pos != 1 {
		return "", false
	}
	if _, ok := x.In.(core.Edges); !ok {
		return "", false
	}
	return lc.Value, true
}

// nodeLabelSelect recognizes σ[label(first) = L](Nodes(G)) (and the
// equivalent last/node(1) spellings over zero-length paths): the
// zero-length paths at L-labeled nodes.
func nodeLabelSelect(x core.Select) (string, bool) {
	lc, ok := x.Cond.(cond.LabelCmp)
	if !ok || lc.Op != cond.EQ {
		return "", false
	}
	switch lc.Target.Kind {
	case cond.TargetFirst, cond.TargetLast:
	case cond.TargetNode:
		if lc.Target.Pos != 1 {
			return "", false
		}
	default:
		return "", false
	}
	if _, ok := x.In.(core.Nodes); !ok {
		return "", false
	}
	return lc.Value, true
}
