package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pathalgebra/internal/core"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/pathset"
)

// streamGraph is large enough that every semantics produces multiple
// chunks at small chunk sizes.
func streamGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return ldbc.MustGenerate(ldbc.Config{
		Persons: 30, Messages: 40, KnowsPerPerson: 2, LikesPerPerson: 2,
		CycleFraction: 0.3, Seed: 23,
	})
}

// TestRunStreamMatchesRun: for all five semantics, at parallelism 1 and
// 8 and several chunk sizes, the concatenation of RunStream's chunks is
// byte-identical (same paths, same order) to Engine.Run's result, and
// merging the chunk sets with pathset.Merge reproduces the same set.
func TestRunStreamMatchesRun(t *testing.T) {
	g := streamGraph(t)
	queries := map[string]string{
		"Walk":     `MATCH WALK p = (?x)-[:Knows+]->(?y)`,
		"Trail":    `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`,
		"Acyclic":  `MATCH ACYCLIC p = (?x)-[(:Knows|:Likes)+]->(?y)`,
		"Simple":   `MATCH SIMPLE p = (?x)-[:Knows+]->(?y)`,
		"Shortest": `MATCH ANY SHORTEST WALK p = (?x)-[(:Likes/:Has_creator)+]->(?y)`,
	}
	lim := core.Limits{MaxLen: 5}
	for sem, q := range queries {
		plan := gql.MustCompile(q)
		for _, workers := range []int{1, 8} {
			eng := New(g, Options{Limits: lim, Parallelism: workers})
			want, err := eng.Run(plan)
			if err != nil {
				t.Fatalf("%s/p%d: Run: %v", sem, workers, err)
			}
			for _, chunkSize := range []int{1, 7, 64, 100000} {
				name := fmt.Sprintf("%s/p%d/chunk%d", sem, workers, chunkSize)
				s := eng.RunStream(context.Background(), plan, StreamOptions{ChunkSize: chunkSize})
				var chunks []*pathset.Set
				got := 0
				for {
					chunk, err := s.Next()
					if err != nil {
						t.Fatalf("%s: Next: %v", name, err)
					}
					if chunk == nil {
						break
					}
					if chunk.Len() == 0 || chunk.Len() > chunkSize {
						t.Fatalf("%s: chunk of %d paths, want 1..%d", name, chunk.Len(), chunkSize)
					}
					// Byte-identical concatenation: chunk i continues exactly
					// where chunk i-1 stopped, in Run's insertion order.
					for j, p := range chunk.Paths() {
						if !p.Equal(want.At(got + j)) {
							t.Fatalf("%s: path %d differs from Run's", name, got+j)
						}
					}
					got += chunk.Len()
					chunks = append(chunks, chunk)
				}
				if got != want.Len() {
					t.Fatalf("%s: streamed %d paths, Run produced %d", name, got, want.Len())
				}
				if merged := pathset.Merge(chunks...); !merged.Equal(want) {
					t.Fatalf("%s: merged chunks differ from Run's set", name)
				}
				if s.Len() != want.Len() || s.Pos() != want.Len() {
					t.Fatalf("%s: Len/Pos = %d/%d, want %d", name, s.Len(), s.Pos(), want.Len())
				}
			}
		}
	}
}

// TestRunStreamCancel: cancelling a stream mid-evaluation makes Next
// return context.Canceled within 100ms.
func TestRunStreamCancel(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 300, Messages: 300, KnowsPerPerson: 4, LikesPerPerson: 3,
		CycleFraction: 0.5, Seed: 7,
	})
	eng := New(g, Options{Limits: core.Limits{MaxLen: 40, MaxPaths: 1 << 30, MaxWork: 1 << 40}})
	plan := gql.MustCompile(`MATCH WALK p = (?x)-[(:Knows|:Likes)+]->(?y)`)
	s := eng.RunStream(context.Background(), plan, StreamOptions{})
	time.Sleep(30 * time.Millisecond)
	cancelled := time.Now()
	s.Cancel()
	_, err := s.Next()
	if since := time.Since(cancelled); since > 100*time.Millisecond {
		t.Errorf("Next returned %v after Cancel, want < 100ms", since)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Next err = %v, want context.Canceled", err)
	}
	// The error is delivered once; afterwards callers see it again (a
	// failed stream stays failed).
	if _, err2 := s.Next(); !errors.Is(err2, context.Canceled) {
		t.Errorf("second Next err = %v, want context.Canceled", err2)
	}
}

// TestRunStreamDeadline: a deadline on the stream context surfaces as
// context.DeadlineExceeded.
func TestRunStreamDeadline(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 300, Messages: 300, KnowsPerPerson: 4, LikesPerPerson: 3,
		CycleFraction: 0.5, Seed: 7,
	})
	eng := New(g, Options{Limits: core.Limits{MaxLen: 40, MaxPaths: 1 << 30, MaxWork: 1 << 40}})
	plan := gql.MustCompile(`MATCH WALK p = (?x)-[(:Knows|:Likes)+]->(?y)`)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	s := eng.RunStream(ctx, plan, StreamOptions{})
	defer s.Cancel()
	if _, err := s.Next(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Next err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunStreamBudget: budget exhaustion stays typed through the stream.
func TestRunStreamBudget(t *testing.T) {
	g := ldbc.Figure1()
	eng := New(g, Options{Limits: core.Limits{MaxPaths: 2}})
	plan := gql.MustCompile(`MATCH WALK p = (?x)-[:Knows+]->(?y)`)
	s := eng.RunStream(context.Background(), plan, StreamOptions{})
	defer s.Cancel()
	if _, err := s.Next(); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Errorf("Next err = %v, want core.ErrBudgetExceeded", err)
	}
}

// TestStreamOf: a pre-materialized set pages like a live stream.
func TestStreamOf(t *testing.T) {
	g := ldbc.Figure1()
	eng := New(g, Options{Limits: core.Limits{MaxLen: 4}})
	want, err := eng.Run(gql.MustCompile(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`))
	if err != nil {
		t.Fatal(err)
	}
	s := StreamOf(g, want, 3)
	got := 0
	for {
		chunk, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			break
		}
		got += chunk.Len()
	}
	if got != want.Len() {
		t.Errorf("StreamOf delivered %d paths, want %d", got, want.Len())
	}
}

// TestRunCtxCancelledBeforeStart: an already-cancelled context returns
// immediately with the typed cause and no partial work.
func TestRunCtxCancelledBeforeStart(t *testing.T) {
	g := ldbc.Figure1()
	eng := New(g, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.RunCtx(ctx, gql.MustCompile(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx err = %v, want context.Canceled", err)
	}
}
