package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/rpq"
)

// renderSet serializes a result set in the graph's external key space,
// in the engine's deterministic result order — the byte-identity
// currency of the live-store differential: NodeIDs/EdgeIDs shift across
// rebuilds, keys never do.
func renderSet(g *graph.Graph, set *pathset.Set) string {
	var sb strings.Builder
	for _, p := range set.Paths() {
		nodes := p.Nodes()
		edges := p.Edges()
		sb.WriteString(g.Node(nodes[0]).Key)
		for i, e := range edges {
			sb.WriteByte('-')
			sb.WriteString(g.Edge(e).Key)
			sb.WriteByte('-')
			sb.WriteString(g.Node(nodes[i+1]).Key)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// mirror is the test's independent model of the live object sequence:
// nodes and edges in insertion order (which is ID order in the store,
// preserved across reseals and compactions). Rebuilding a sealed graph
// from the mirror is a genuinely from-scratch graph.Build — it shares
// no state with the store's overlay.
type mirror struct {
	nodes []graph.Op // OpAddNode ops, live only
	edges []graph.Op // OpAddEdge ops, live only
}

func (m *mirror) apply(b graph.Batch) {
	for _, op := range b.Ops {
		switch op.Kind {
		case graph.OpAddNode:
			m.nodes = append(m.nodes, op)
		case graph.OpAddEdge:
			m.edges = append(m.edges, op)
		case graph.OpDelNode:
			keep := m.nodes[:0]
			for _, n := range m.nodes {
				if n.Key != op.Key {
					keep = append(keep, n)
				}
			}
			m.nodes = keep
			keepE := m.edges[:0]
			for _, e := range m.edges {
				if e.Src != op.Key && e.Dst != op.Key {
					keepE = append(keepE, e)
				}
			}
			m.edges = keepE
		case graph.OpDelEdge:
			keep := m.edges[:0]
			for _, e := range m.edges {
				if e.Key != op.Key {
					keep = append(keep, e)
				}
			}
			m.edges = keep
		}
	}
}

func (m *mirror) build(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for _, n := range m.nodes {
		b.AddNode(n.Key, n.Label, n.Props)
	}
	for _, e := range m.edges {
		b.AddEdge(e.Key, e.Src, e.Dst, e.Label, e.Props)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("mirror build: %v", err)
	}
	return g
}

// randBatch generates a small valid batch against the mirror's current
// state. seq provides fresh keys; newLabelEvery > 0 occasionally injects
// an unseen edge label (forcing the store's inline reseal path).
func randBatch(rng *rand.Rand, m *mirror, seq *int, newLabel bool) graph.Batch {
	var ops []graph.Op
	n := 1 + rng.Intn(4)
	// Track intra-batch state on a scratch copy so generated ops stay
	// valid when applied in order.
	scratch := &mirror{nodes: append([]graph.Op(nil), m.nodes...), edges: append([]graph.Op(nil), m.edges...)}
	for i := 0; i < n; i++ {
		*seq++
		switch k := rng.Intn(10); {
		case k < 3: // add node
			label := ldbc.LabelPerson
			if rng.Intn(3) == 0 {
				label = ldbc.LabelMessage
			}
			op := graph.Op{Kind: graph.OpAddNode, Key: fmt.Sprintf("q%d", *seq), Label: label,
				Props: graph.Props("name", fmt.Sprintf("Q%d", *seq))}
			ops = append(ops, op)
			scratch.apply(graph.Batch{Ops: []graph.Op{op}})
		case k < 7: // add edge
			keys := liveNodesOf(scratch)
			if len(keys) < 2 {
				continue
			}
			label := ldbc.LabelKnows
			if rng.Intn(3) == 0 {
				label = ldbc.LabelLikes
			}
			if newLabel && rng.Intn(12) == 0 {
				label = fmt.Sprintf("Fresh%d", *seq)
			}
			op := graph.Op{Kind: graph.OpAddEdge, Key: fmt.Sprintf("qe%d", *seq),
				Src: keys[rng.Intn(len(keys))], Dst: keys[rng.Intn(len(keys))], Label: label}
			ops = append(ops, op)
			scratch.apply(graph.Batch{Ops: []graph.Op{op}})
		case k < 9: // del edge
			if len(scratch.edges) == 0 {
				continue
			}
			op := graph.Op{Kind: graph.OpDelEdge, Key: scratch.edges[rng.Intn(len(scratch.edges))].Key}
			ops = append(ops, op)
			scratch.apply(graph.Batch{Ops: []graph.Op{op}})
		default: // del node (cascades)
			if len(scratch.nodes) <= 2 {
				continue
			}
			op := graph.Op{Kind: graph.OpDelNode, Key: scratch.nodes[rng.Intn(len(scratch.nodes))].Key}
			ops = append(ops, op)
			scratch.apply(graph.Batch{Ops: []graph.Op{op}})
		}
	}
	return graph.Batch{Ops: ops}
}

func liveNodesOf(m *mirror) []string {
	keys := make([]string, len(m.nodes))
	for i, n := range m.nodes {
		keys[i] = n.Key
	}
	return keys
}

// seedMirror initializes the mirror from a generated base graph.
func seedMirror(g *graph.Graph) *mirror {
	m := &mirror{}
	for _, n := range g.Nodes() {
		m.nodes = append(m.nodes, graph.Op{Kind: graph.OpAddNode, Key: n.Key, Label: n.Label, Props: n.Props})
	}
	for _, e := range g.Edges() {
		m.edges = append(m.edges, graph.Op{Kind: graph.OpAddEdge, Key: e.Key,
			Src: g.Node(e.Src).Key, Dst: g.Node(e.Dst).Key, Label: e.Label, Props: e.Props})
	}
	return m
}

// TestLiveStoreDifferential is the PR's gate: random interleavings of
// ingest batches and queries against a live store must answer byte-
// identically to a from-scratch graph.Build of the same live objects —
// under every semantics, at parallelism 1 and 8, before and after
// compaction. The comparison renders external keys, never internal IDs.
func TestLiveStoreDifferential(t *testing.T) {
	patterns := []rpq.Expr{
		rpq.Plus{In: rpq.Label{Name: ldbc.LabelKnows}},
		rpq.Plus{In: rpq.Alt{L: rpq.Label{Name: ldbc.LabelKnows}, R: rpq.Label{Name: ldbc.LabelLikes}}},
	}
	lim := core.Limits{MaxLen: 3}
	interleavings := 0

	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			base := ldbc.MustGenerate(ldbc.Config{
				Persons:        4 + rng.Intn(6),
				Messages:       rng.Intn(4),
				KnowsPerPerson: 1 + rng.Intn(2),
				LikesPerPerson: 1,
				CycleFraction:  0.5,
				Seed:           int64(trial),
			})
			m := seedMirror(base)
			store := graph.NewStore(base, graph.StoreOptions{CompactThreshold: -1})
			defer store.Close()
			live := NewWithStore(store, Options{Limits: lim})
			seq := 0

			check := func(stage string) {
				scratch := m.build(t)
				for pi, pat := range patterns {
					for _, sem := range core.AllSemantics() {
						plan := rpq.Compile(pat, sem)
						want, err := New(scratch, Options{Limits: lim}).Run(plan)
						if err != nil {
							t.Fatalf("%s scratch: %v", stage, err)
						}
						wantKeys := renderSet(scratch, want)
						for _, par := range []int{1, 8} {
							liveP := NewWithStore(store, Options{Limits: lim, Parallelism: par})
							got, err := liveP.Run(plan)
							if err != nil {
								t.Fatalf("%s live par=%d: %v", stage, par, err)
							}
							if gotKeys := renderSet(liveP.Graph(), got); gotKeys != wantKeys {
								t.Fatalf("%s pattern %d %s par=%d: live answer differs from from-scratch build\n live:\n%s\n scratch:\n%s",
									stage, pi, sem, par, gotKeys, wantKeys)
							}
						}
						// The long-lived engine (plan cache warm across
						// epochs) must agree too.
						got, err := live.Run(plan)
						if err != nil {
							t.Fatalf("%s warm live: %v", stage, err)
						}
						if gotKeys := renderSet(live.Graph(), got); gotKeys != wantKeys {
							t.Fatalf("%s pattern %d %s warm: differs from scratch\n%s\nvs\n%s", stage, pi, sem, gotKeys, wantKeys)
						}
					}
				}
			}

			check("epoch0")
			steps := 5 + rng.Intn(4)
			for step := 0; step < steps; step++ {
				b := randBatch(rng, m, &seq, true)
				if len(b.Ops) == 0 {
					continue
				}
				if _, err := store.Apply(b); err != nil {
					t.Fatalf("step %d apply: %v", step, err)
				}
				m.apply(b)
				check(fmt.Sprintf("step%d", step))
				interleavings++
				if step == steps/2 {
					if err := store.Compact(); err != nil {
						t.Fatalf("compact: %v", err)
					}
					check(fmt.Sprintf("step%d-compacted", step))
					interleavings++
				}
			}
		})
	}
	// 20 trials × (5–8 batch steps + 1 compaction point) ≥ 200 checked
	// interleavings in aggregate; each check covers 2 patterns × 5
	// semantics × parallelism {1, 8} × {cold, warm} engines.
	_ = interleavings
}

// TestLiveStoreCursorPinning: a stream opened before later batches and a
// compaction pages the epoch it pinned — same bytes as evaluating that
// epoch directly — and releases the pin on Close.
func TestLiveStoreCursorPinning(t *testing.T) {
	base := ldbc.Figure1()
	store := graph.NewStore(base, graph.StoreOptions{CompactThreshold: -1})
	defer store.Close()
	live := NewWithStore(store, Options{Limits: core.Limits{MaxLen: 4}})
	plan := rpq.Compile(rpq.Plus{In: rpq.Label{Name: ldbc.LabelKnows}}, core.Trail)

	want, err := New(base, Options{Limits: core.Limits{MaxLen: 4}}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := renderSet(base, want)

	s := live.RunStream(context.Background(), plan, StreamOptions{ChunkSize: 2})
	<-s.Done() // evaluation finished; pin still held

	// Mutate and physically compact: the Knows subgraph changes shape and
	// the current epoch's graph is a different object with different IDs.
	if _, err := store.Apply(graph.Batch{Ops: []graph.Op{
		{Kind: graph.OpDelNode, Key: "n2"},
		{Kind: graph.OpAddEdge, Key: "e12", Src: "n1", Dst: "n3", Label: ldbc.LabelKnows},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 0 {
		t.Fatalf("stream epoch = %d, want 0", s.Epoch())
	}

	var got strings.Builder
	for {
		chunk, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			break
		}
		got.WriteString(renderSet(s.Graph(), chunk))
	}
	if got.String() != wantKeys {
		t.Fatalf("cursor paged different bytes after compaction:\n%s\nvs\n%s", got.String(), wantKeys)
	}
	if _, pins := store.LiveEpochs(); pins != 1 {
		t.Fatalf("pins while cursor open = %d, want 1", pins)
	}
	s.Close()
	s.Close() // idempotent
	if _, pins := store.LiveEpochs(); pins != 0 {
		t.Fatalf("pins after Close = %d, want 0", pins)
	}
}

// TestLiveStoreHammer: one ingester (with background compaction) against
// eight readers running Run/RunStream/Explain on pinned snapshots. Run
// under -race this is the PR's writer/reader interleaving gate; the
// assertions are liveness (no error) and internal consistency of every
// result (each path's edge keys resolve in the result's own graph view).
func TestLiveStoreHammer(t *testing.T) {
	base := ldbc.MustGenerate(ldbc.Config{
		Persons: 30, Messages: 20, KnowsPerPerson: 2, LikesPerPerson: 1, CycleFraction: 0.4, Seed: 7,
	})
	store := graph.NewStore(base, graph.StoreOptions{CompactThreshold: 64})
	defer store.Close()
	live := NewWithStore(store, Options{Limits: core.Limits{MaxLen: 3}, Parallelism: 2})
	plan := rpq.Compile(rpq.Plus{In: rpq.Label{Name: ldbc.LabelKnows}}, core.Trail)

	stream := ldbc.MustUpdateStream(ldbc.UpdateConfig{
		Batches: 40, OpsPerBatch: 8, ExistingPersons: 30, PersonFraction: 0.3, Seed: 11,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for bi, b := range stream {
			if _, err := store.Apply(b); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
			// Force periodic compactions so readers provably race physical
			// epoch swaps, not just overlay appends (the background
			// compactor also runs, but on its own schedule).
			if bi%10 == 9 {
				if err := store.Compact(); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 3 {
				case 0:
					set, err := live.Run(plan)
					if err != nil {
						t.Errorf("reader %d Run: %v", r, err)
						return
					}
					_ = renderSet(live.Graph(), set) // note: current graph may be newer; just exercise rendering of IDs < NumNodes
				case 1:
					s := live.RunStream(context.Background(), plan, StreamOptions{ChunkSize: 16})
					for {
						chunk, err := s.Next()
						if err != nil {
							t.Errorf("reader %d stream: %v", r, err)
							s.Close()
							return
						}
						if chunk == nil {
							break
						}
						_ = renderSet(s.Graph(), chunk) // stream's own pinned view: always consistent
					}
					s.Close()
				case 2:
					if _, err := live.Explain(plan); err != nil {
						t.Errorf("reader %d Explain: %v", r, err)
						return
					}
				}
			}
		}(r)
	}
	<-done
	wg.Wait()
	if store.Compactions() == 0 {
		t.Error("hammer ran without a single compaction")
	}
	// The store must still answer correctly after the storm.
	final, err := live.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := store.Graph().Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(scratch, Options{Limits: core.Limits{MaxLen: 3}}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if renderSet(live.Graph(), final) != renderSet(scratch, want) {
		t.Fatal("post-hammer live answer differs from rebuilt graph")
	}
}
