package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/testutil"
)

// Metamorphic properties of the algebra, checked over random graphs and
// random inputs: relations that must hold between the results of RELATED
// queries, independent of any oracle.

// TestSemanticsContainment: on the same base, the recursion results nest
// by restrictiveness. Note the true containment order: every acyclic path
// is simple (the simple exception only ADDS first==last cycles), every
// simple path is a trail (re-using an edge forces an interior node
// repeat), and every path is a walk. Shortest results are walks of
// minimal length, so they are contained in the bounded walk set as long
// as the bound covers them.
func TestSemanticsContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	lim := core.Limits{MaxLen: 4}
	for trial := 0; trial < 25; trial++ {
		g := testutil.RandomGraph(rng)
		base := testutil.RandomPlan(rng, 1)
		eval := func(sem core.Semantics) *pathset.Set {
			e := New(g, Options{Limits: lim})
			out, err := e.Run(core.Recurse{Sem: sem, In: base})
			if err != nil {
				t.Fatalf("trial %d ϕ%s(%s): %v", trial, sem, base, err)
			}
			return out
		}
		walk := eval(core.Walk)
		trail := eval(core.Trail)
		simple := eval(core.Simple)
		acyclic := eval(core.Acyclic)
		shortest := eval(core.Shortest)
		chain := []struct {
			name     string
			sub, sup *pathset.Set
		}{
			{"Acyclic ⊆ Simple", acyclic, simple},
			{"Simple ⊆ Trail", simple, trail},
			{"Trail ⊆ Walk", trail, walk},
			{"Shortest ⊆ Walk", shortest, walk},
		}
		for _, c := range chain {
			if miss := subsetMiss(c.sub, c.sup); miss != "" {
				t.Errorf("trial %d base %s: %s violated: %s", trial, base, c.name, miss)
			}
		}
	}
}

func subsetMiss(sub, sup *pathset.Set) string {
	for _, p := range sub.Paths() {
		if !sup.Contains(p) {
			return fmt.Sprintf("path %v missing from superset", p)
		}
	}
	return ""
}

// TestUnionLaws: ∪ is commutative and idempotent as a set operation.
func TestUnionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	lim := core.Limits{MaxLen: 3}
	for trial := 0; trial < 40; trial++ {
		g := testutil.RandomGraph(rng)
		a := testutil.RandomPlan(rng, 2)
		b := testutil.RandomPlan(rng, 2)
		if !testutil.IsTruncationFree(a) || !testutil.IsTruncationFree(b) {
			continue // truncating operands are order-dependent values
		}
		eval := func(x core.PathExpr) *pathset.Set {
			e := New(g, Options{Limits: lim})
			out, err := e.Run(x)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, x, err)
			}
			return out
		}
		ab := eval(core.Union{L: a, R: b})
		ba := eval(core.Union{L: b, R: a})
		if !ab.Equal(ba) {
			t.Errorf("trial %d: A∪B (%d) != B∪A (%d) for A=%s B=%s",
				trial, ab.Len(), ba.Len(), a, b)
		}
		aa := eval(core.Union{L: a, R: a})
		onlyA := eval(a)
		if !aa.Equal(onlyA) {
			t.Errorf("trial %d: A∪A (%d) != A (%d) for A=%s", trial, aa.Len(), onlyA.Len(), a)
		}
	}
}

// TestSelectDistributes: σ commutes with ∪ unconditionally, and a
// first-only (last-only) condition commutes into the left (right) join
// operand — the semantic ground truth behind the pushdown rewrite and
// the seeded product search.
func TestSelectDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	lim := core.Limits{MaxLen: 3}
	for trial := 0; trial < 40; trial++ {
		g := testutil.RandomGraph(rng)
		a := testutil.RandomPlan(rng, 1)
		b := testutil.RandomPlan(rng, 1)
		if !testutil.IsTruncationFree(a) || !testutil.IsTruncationFree(b) {
			continue
		}
		c := testutil.RandomCond(rng, 2)
		eval := func(x core.PathExpr) *pathset.Set {
			e := New(g, Options{Limits: lim})
			out, err := e.Run(x)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, x, err)
			}
			return out
		}
		lhs := eval(core.Select{Cond: c, In: core.Union{L: a, R: b}})
		rhs := eval(core.Union{
			L: core.Select{Cond: c, In: a},
			R: core.Select{Cond: c, In: b},
		})
		if !lhs.Equal(rhs) {
			t.Errorf("trial %d: σ[%s](A∪B) %d paths != σA∪σB %d paths", trial, c, lhs.Len(), rhs.Len())
		}
	}
}
