package engine

import (
	"container/list"
	"hash/fnv"

	"pathalgebra/internal/core"
)

// planCache is a fixed-capacity LRU of planned queries. Keys are the
// normalized fingerprint of the INPUT plan — the FNV-64a hash of its
// canonical String rendering, which the parser and compiler already
// normalize (whitespace, label quoting and operator sugar all disappear
// in the expression tree) — so syntactically different spellings of the
// same logical plan share one cache slot. The stored value is the fully
// planned physical tree, which is immutable and safely shared across
// evaluations. Hits verify the full key text: a fingerprint collision
// (≈2^-64 per pair) degrades to a miss, never to a wrong plan.
//
// The cache is engine-private and, like the engine's evaluation methods,
// not safe for concurrent use.
type planCache struct {
	capacity int
	entries  map[uint64]*list.Element
	lru      *list.List // front = most recently used
}

type planEntry struct {
	fp      uint64
	key     string
	plan    core.PathExpr
	applied []string
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		capacity: capacity,
		entries:  make(map[uint64]*list.Element, capacity),
		lru:      list.New(),
	}
}

// planFingerprint hashes the normalized plan text.
func planFingerprint(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

func (c *planCache) get(fp uint64, key string) (core.PathExpr, []string, bool) {
	el, ok := c.entries[fp]
	if !ok {
		return nil, nil, false
	}
	ent := el.Value.(*planEntry)
	if ent.key != key {
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	return ent.plan, ent.applied, true
}

func (c *planCache) put(fp uint64, key string, plan core.PathExpr, applied []string) {
	if el, ok := c.entries[fp]; ok {
		el.Value = &planEntry{fp: fp, key: key, plan: plan, applied: applied}
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).fp)
	}
	c.entries[fp] = c.lru.PushFront(&planEntry{fp: fp, key: key, plan: plan, applied: applied})
}

// Len returns the number of cached plans.
func (c *planCache) Len() int { return c.lru.Len() }
