package engine

import (
	"hash/fnv"

	"pathalgebra/internal/core"
	"pathalgebra/internal/lru"
)

// planCache is a fixed-capacity LRU of planned queries. Keys are the
// normalized fingerprint of the INPUT plan — the FNV-64a hash of its
// canonical String rendering, which the parser and compiler already
// normalize (whitespace, label quoting and operator sugar all disappear
// in the expression tree) — so syntactically different spellings of the
// same logical plan share one cache slot. The stored value is the fully
// planned physical tree, which is immutable and safely shared across
// evaluations. Hits verify the full key text: a fingerprint collision
// (≈2^-64 per pair) degrades to a miss, never to a wrong plan.
//
// The cache is engine-private and mutex-guarded (lru.Cache): concurrent
// Plan/Run calls on one engine serialize only the cache probe and the
// (rare) planning of a cold query, never evaluation.
//
// On a live engine the key additionally carries the epoch the plan was
// costed against (folded into the fingerprint, verified on the entry):
// the same query text planned at epoch 4 and epoch 7 occupies two slots,
// so stale-statistics plans are never replayed, and old epochs' entries
// age out of the LRU naturally as new epochs fill it.
type planCache struct {
	entries *lru.Cache[uint64, *planEntry]
}

type planEntry struct {
	epoch   uint64
	key     string
	plan    core.PathExpr
	applied []string
}

func newPlanCache(capacity int) *planCache {
	return &planCache{entries: lru.New[uint64, *planEntry](capacity)}
}

// planFingerprint hashes the normalized plan text.
func planFingerprint(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// epochFp folds an epoch into a plan fingerprint (FNV-64a over the
// fingerprint's bytes, seeded by the epoch).
func epochFp(epoch, fp uint64) uint64 {
	if epoch == 0 {
		return fp
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(epoch >> (8 * i))
		buf[8+i] = byte(fp >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

func (c *planCache) get(epoch, fp uint64, key string) (core.PathExpr, []string, bool) {
	ent, ok := c.entries.Get(epochFp(epoch, fp))
	if !ok || ent.key != key || ent.epoch != epoch {
		return nil, nil, false
	}
	return ent.plan, ent.applied, true
}

func (c *planCache) put(epoch, fp uint64, key string, plan core.PathExpr, applied []string) {
	c.entries.Put(epochFp(epoch, fp), &planEntry{epoch: epoch, key: key, plan: plan, applied: applied})
}

// Len returns the number of cached plans.
func (c *planCache) Len() int { return c.entries.Len() }
