package engine

import (
	"hash/fnv"

	"pathalgebra/internal/core"
	"pathalgebra/internal/lru"
)

// planCache is a fixed-capacity LRU of planned queries. Keys are the
// normalized fingerprint of the INPUT plan — the FNV-64a hash of its
// canonical String rendering, which the parser and compiler already
// normalize (whitespace, label quoting and operator sugar all disappear
// in the expression tree) — so syntactically different spellings of the
// same logical plan share one cache slot. The stored value is the fully
// planned physical tree, which is immutable and safely shared across
// evaluations. Hits verify the full key text: a fingerprint collision
// (≈2^-64 per pair) degrades to a miss, never to a wrong plan.
//
// The cache is engine-private and mutex-guarded (lru.Cache): concurrent
// Plan/Run calls on one engine serialize only the cache probe and the
// (rare) planning of a cold query, never evaluation.
type planCache struct {
	entries *lru.Cache[uint64, *planEntry]
}

type planEntry struct {
	key     string
	plan    core.PathExpr
	applied []string
}

func newPlanCache(capacity int) *planCache {
	return &planCache{entries: lru.New[uint64, *planEntry](capacity)}
}

// planFingerprint hashes the normalized plan text.
func planFingerprint(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

func (c *planCache) get(fp uint64, key string) (core.PathExpr, []string, bool) {
	ent, ok := c.entries.Get(fp)
	if !ok || ent.key != key {
		return nil, nil, false
	}
	return ent.plan, ent.applied, true
}

func (c *planCache) put(fp uint64, key string, plan core.PathExpr, applied []string) {
	c.entries.Put(fp, &planEntry{key: key, plan: plan, applied: applied})
}

// Len returns the number of cached plans.
func (c *planCache) Len() int { return c.entries.Len() }
