package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/pathset"
)

// sameSequence reports whether two sets hold identical paths in identical
// insertion order — stronger than Set.Equal, which ignores order. Order
// matters here because downstream solution-space operators (group-by
// construction order, projection tie-breaking) consume it.
func sameSequence(a, b *pathset.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, p := range a.Paths() {
		if !p.Equal(b.At(i)) {
			return false
		}
	}
	return true
}

// TestDifferentialParallel cross-checks the engine at parallelism 1
// against parallelism 2, 4 and 8 on random graphs and a battery of
// queries spanning recursion semantics, selectors and joins: results must
// be byte-identical and the order-insensitive stats must agree.
func TestDifferentialParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	queries := []string{
		`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ACYCLIC p = (?x)-[(:Knows|:Likes)+]->(?y)`,
		`MATCH SIMPLE p = (?x)-[(:Likes/:Has_creator)+]->(?y)`,
		`MATCH WALK p = (?x)-[:Knows*]->(?y)`,
		`MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ALL SHORTEST SIMPLE p = (?x)-[:Knows+]->(?y)`,
		`MATCH SHORTEST 2 GROUP TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH TRAIL p = (?x)-[:Knows/:Knows]->(?y)`,
	}
	for trial := 0; trial < 4; trial++ {
		g := ldbc.MustGenerate(ldbc.Config{
			Persons:        6 + rng.Intn(10),
			Messages:       rng.Intn(8),
			KnowsPerPerson: 1 + rng.Intn(3),
			LikesPerPerson: 1 + rng.Intn(2),
			CycleFraction:  0.4,
			Seed:           rng.Int63(),
		})
		for _, q := range queries {
			plan, err := compileQuery(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			lim := core.Limits{MaxLen: 4}
			name := fmt.Sprintf("trial%d/%s", trial, q)
			want, err := New(g, Options{Limits: lim, Parallelism: 1}).EvalPaths(plan)
			if err != nil {
				t.Fatalf("%s sequential: %v", name, err)
			}
			wantStats := func() Stats {
				e := New(g, Options{Limits: lim, Parallelism: 1})
				if _, err := e.EvalPaths(plan); err != nil {
					t.Fatal(err)
				}
				return e.Stats()
			}()
			for _, workers := range []int{2, 4, 8} {
				e := New(g, Options{Limits: lim, Parallelism: workers})
				got, err := e.EvalPaths(plan)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				if !sameSequence(want, got) {
					t.Errorf("%s workers=%d: output diverges (%d vs %d paths)",
						name, workers, want.Len(), got.Len())
				}
				if st := e.Stats(); st.PathsProduced != wantStats.PathsProduced ||
					st.Recursions != wantStats.Recursions ||
					st.JoinProbes != wantStats.JoinProbes {
					t.Errorf("%s workers=%d: stats diverge: %+v vs %+v",
						name, workers, st, wantStats)
				}
			}
		}
	}
}
