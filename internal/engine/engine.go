// Package engine executes path algebra plans (internal/core expression
// trees) against a property graph. It is the optimized counterpart of the
// reference operator implementations in internal/core: joins use endpoint
// hashing instead of nested loops, label-equality selections over the
// Edges/Nodes atoms use the graph's label indexes, selections over
// pattern recursions seed a directed product search, and every
// evaluation runs under an explicit recursion budget. Engine.Run plans
// through the cost-based planner (internal/opt) and an LRU plan cache;
// Engine.Explain reports the chosen plan with estimated vs. actual
// per-operator cardinalities. The randomized differential harness
// cross-checks every route against the reference implementations.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/obs"
	"pathalgebra/internal/opt"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/rpq"
)

// JoinStrategy selects the physical join operator.
type JoinStrategy uint8

const (
	// HashJoin builds a hash index on First(p2) and probes with Last(p1).
	HashJoin JoinStrategy = iota
	// NestedLoop compares every pair, as in Definition 3.1. Mainly useful
	// as a baseline for the join-strategy ablation benchmark.
	NestedLoop
)

// String names the strategy.
func (s JoinStrategy) String() string {
	switch s {
	case HashJoin:
		return "hash"
	case NestedLoop:
		return "nested-loop"
	default:
		return fmt.Sprintf("JoinStrategy(%d)", uint8(s))
	}
}

// Options configures an Engine.
type Options struct {
	// Limits bounds every recursive operator evaluation. The zero value
	// applies core.DefaultMaxPaths as a safety net.
	Limits core.Limits
	// Join selects the physical join operator (default HashJoin).
	Join JoinStrategy
	// DisableLabelIndex turns off the label-index shortcut for selections
	// of the form σ[label(edge(1)) = L](Edges(G)); used by ablation
	// benchmarks.
	DisableLabelIndex bool
	// DisableExpand turns off the graph-expansion fast path for
	// recursions over single-label bases (ϕ over σ[label]Edges), which
	// otherwise evaluates via product search on the adjacency lists
	// instead of materializing the base set first; used by ablation
	// benchmarks.
	DisableExpand bool
	// Parallelism is the number of worker goroutines used by the
	// parallelizable physical operators: the automaton product search
	// (sharded by source node) and the hash-join build side. Results are
	// byte-identical for every value — shards merge in the sequential
	// order and budgets are shared globally. <= 0 selects
	// runtime.GOMAXPROCS(0); 1 forces single-threaded evaluation.
	Parallelism int
	// DisablePlanner makes Plan/Run fall back to the statistics-free
	// heuristic optimizer (opt.Optimize): no cost-based join
	// re-association, no backward evaluation, no estimate gating. Used as
	// the baseline of the differential harness and ablation benchmarks.
	// The plan cache stays on either way.
	DisablePlanner bool
	// PlanCacheSize bounds the engine's LRU plan cache (number of
	// plans); <= 0 selects defaultPlanCacheSize.
	PlanCacheSize int
}

// defaultPlanCacheSize is the plan-cache capacity when unset.
const defaultPlanCacheSize = 64

func (o Options) planCacheSize() int {
	if o.PlanCacheSize <= 0 {
		return defaultPlanCacheSize
	}
	return o.PlanCacheSize
}

// parallelism resolves the configured worker count.
func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// Stats accumulates execution counters across one engine's evaluations.
// The engine updates the underlying counters with atomic adds — today all
// writes happen on the evaluating goroutine (parallel operators report
// through their return values, and the hash-join probe count is batched on
// the caller), so the atomics are a guardrail for future operators that
// do account from workers. Stats values returned by Engine.Stats are
// plain snapshots.
type Stats struct {
	// PathsProduced counts paths emitted by all operators.
	PathsProduced int64
	// JoinProbes counts path pair comparisons (nested loop) or hash
	// probes (hash join).
	JoinProbes int64
	// IndexedScans counts selections answered from a label index.
	IndexedScans int64
	// Recursions counts recursive operator evaluations.
	Recursions int64
	// ExpandedRecursions counts recursions answered by the graph-
	// expansion fast path rather than generic closure over a
	// materialized base set.
	ExpandedRecursions int64
	// SeededRecursions counts product searches seeded from an endpoint
	// condition's node set instead of every node (σ over a pattern
	// recursion).
	SeededRecursions int64
	// BackwardRecursions counts product searches the planner ran
	// backward (reversed automaton over the in-adjacency).
	BackwardRecursions int64
	// ReachKernelRuns counts Reach calls answered by the bitset
	// reachability kernel; ReachFallbacks counts Reach calls that
	// enumerated instead (ineligible plan or infeasible bitset index).
	ReachKernelRuns int64
	ReachFallbacks  int64
	// PlanCacheHits / PlanCacheMisses count Plan calls answered from /
	// added to the LRU plan cache.
	PlanCacheHits   int64
	PlanCacheMisses int64
	// BudgetExhaustions counts evaluations that ended in
	// core.ErrBudgetExceeded. It is charged exactly once per public
	// entry point (Run/RunStream/Explain/Reach and the Eval* family),
	// never per operator — budget errors propagate through the operator
	// tree and would otherwise multi-count.
	BudgetExhaustions int64
	// FingerprintCollisions counts activations of the exact-equality
	// fallback in fingerprint-bucketed path sets during this engine's
	// evaluations — both materialized sets (pathset.Collisions) and the
	// product search's arena-resident visited sets (path.ArenaCollisions).
	// It is measured as the process-wide counter delta, so concurrent
	// engines see each other's collisions. Nonzero values are harmless —
	// the fallback preserves exactness — but should be vanishingly rare.
	FingerprintCollisions int64
}

// fingerprintCollisions sums the process-wide collision counters of the
// two fingerprint-bucketed path-identity structures.
func fingerprintCollisions() int64 {
	return pathset.Collisions() + path.ArenaCollisions()
}

// Engine evaluates plans against one graph. An Engine is safe for
// concurrent use: evaluation state is per-call, the stats counters are
// atomic, and the plan cache is mutex-guarded — one engine can serve
// Run/RunStream/Explain/Stats from many goroutines at once (the query
// service layer does exactly that). ResetStats is the one exception: it
// snapshots non-atomically and should only run while no evaluation is in
// flight. The engine's own internal parallelism (Options.Parallelism) is
// independently race-safe: evaluation budgets are shared atomically
// across workers and worker results merge before stats are counted.
type Engine struct {
	g    *graph.Graph
	opts Options
	// store, when non-nil, makes this a live engine: every public entry
	// point pins the store's current epoch and evaluates a bound copy of
	// the engine against that epoch's immutable graph and statistics. A
	// static engine (store == nil) evaluates e.g directly, exactly as
	// before the live-graph layer existed.
	store *graph.Store
	// epoch is the pinned epoch of a bound copy (and the cache key its
	// Plan calls use); always 0 on a static engine.
	epoch uint64
	// stats is shared by pointer so bound copies account into the same
	// counters.
	stats *Stats
	// collisionBase is the fingerprintCollisions reading at construction
	// (or last ResetStats); Stats reports the delta since then.
	collisionBase int64
	// cm is the cost model over the pinned epoch's statistics; it drives
	// Plan (unless DisablePlanner) and the -explain estimates.
	cm *opt.CostModel
	// plans is the LRU plan cache consulted by Plan, keyed by
	// (epoch, plan); shared across bound copies.
	plans *planCache
}

// New returns a static engine over g with the given options.
func New(g *graph.Graph, opts Options) *Engine {
	return &Engine{
		g:             g,
		opts:          opts,
		stats:         &Stats{},
		collisionBase: fingerprintCollisions(),
		cm:            &opt.CostModel{Stats: g.Stats(), Limits: opts.Limits},
		plans:         newPlanCache(opts.planCacheSize()),
	}
}

// NewWithStore returns a live engine over a store: every Run, RunStream,
// Explain and Plan pins the store's current epoch for its own duration
// (RunStream until Stream.Close), so each call sees one consistent graph
// no matter how many batches apply concurrently, and plans are cached and
// costed per epoch.
func NewWithStore(s *graph.Store, opts Options) *Engine {
	e := New(s.Graph(), opts)
	e.store = s
	return e
}

// releaseNoop is the free release returned by pin on static engines.
func releaseNoop() {}

// pin returns the engine to evaluate against and a release function. A
// static engine returns itself; a live engine snapshots the store and
// returns a bound shallow copy — same options, shared stats and plan
// cache, but graph, epoch and cost model fixed to the pinned snapshot.
// The bound copy's store field is nil, so nested public calls made on it
// do not re-pin.
func (e *Engine) pin() (*Engine, func()) {
	if e.store == nil {
		return e, releaseNoop
	}
	sn := e.store.Snapshot()
	b := *e
	b.store = nil
	b.g = sn.Graph()
	b.epoch = sn.Epoch()
	b.cm = &opt.CostModel{Stats: b.g.Stats(), Limits: e.opts.Limits}
	return &b, sn.Release
}

// CostModel returns the engine's cost model (the graph's build-time
// statistics plus the engine's limits).
func (e *Engine) CostModel() *opt.CostModel { return e.cm }

// Plan turns a logical plan into the physical plan the engine will
// evaluate, consulting the LRU plan cache first. Cache misses run the
// cost-based planner (opt.Plan) — or the statistics-free opt.Optimize
// when DisablePlanner is set — and memoize the result under the
// normalized fingerprint of the input plan's canonical rendering.
func (e *Engine) Plan(x core.PathExpr) (core.PathExpr, []string) {
	b, release := e.pin()
	defer release()
	return b.plan(x)
}

// plan is Plan on an already-bound engine: the cache key includes the
// pinned epoch, so plans costed against one epoch's statistics are never
// replayed against another's.
func (e *Engine) plan(x core.PathExpr) (core.PathExpr, []string) {
	key := x.String()
	fp := planFingerprint(key)
	if plan, applied, ok := e.plans.get(e.epoch, fp, key); ok {
		addStat(&e.stats.PlanCacheHits, 1)
		return plan, applied
	}
	addStat(&e.stats.PlanCacheMisses, 1)
	var res opt.Result
	if e.opts.DisablePlanner {
		res = opt.Optimize(x)
	} else {
		res = opt.Plan(x, e.cm)
	}
	e.plans.put(e.epoch, fp, key, res.Plan, res.Applied)
	return res.Plan, res.Applied
}

// Run plans x (through the cache) and evaluates the chosen plan.
func (e *Engine) Run(x core.PathExpr) (*pathset.Set, error) {
	return e.RunCtx(context.Background(), x)
}

// RunCtx is Run with cooperative cancellation: cancelling ctx aborts the
// evaluation promptly — all evaluation workers stop at their next budget
// charge — and RunCtx returns ctx's cause, errors.Is-able as
// context.Canceled or context.DeadlineExceeded. Budget exhaustion remains
// errors.Is-able as core.ErrBudgetExceeded, so callers (e.g. an HTTP
// layer) can map the two failure modes to distinct statuses.
func (e *Engine) RunCtx(ctx context.Context, x core.PathExpr) (*pathset.Set, error) {
	b, release := e.pin()
	defer release()
	plan, _ := b.planTraced(ctx, x)
	sp := obs.SpanFrom(ctx).Start("eval")
	defer sp.End()
	sp.SetInt("epoch", int64(b.epoch))
	out, err := b.evalPathsCtx(obs.WithSpan(ctx, sp), plan)
	if out != nil {
		sp.SetInt("paths", int64(out.Len()))
	}
	e.noteEvalErr(err)
	return out, err
}

// planTraced is plan wrapped in a "plan" trace span annotated with
// cache behavior, detected as the explain path does: by the
// PlanCacheHits delta (shared stats make this approximate under
// concurrent evaluations, which tracing tolerates).
func (e *Engine) planTraced(ctx context.Context, x core.PathExpr) (core.PathExpr, []string) {
	sp := obs.SpanFrom(ctx).Start("plan")
	defer sp.End()
	if sp == nil {
		return e.plan(x)
	}
	before := atomic.LoadInt64(&e.stats.PlanCacheHits)
	plan, applied := e.plan(x)
	var hit int64
	if atomic.LoadInt64(&e.stats.PlanCacheHits) > before {
		hit = 1
	}
	sp.SetInt("cache_hit", hit)
	sp.SetInt("epoch", int64(e.epoch))
	return plan, applied
}

// noteEvalErr accounts a finished evaluation's error into the stats —
// currently just budget exhaustion, the failure mode operators report
// as core.ErrBudgetExceeded.
func (e *Engine) noteEvalErr(err error) {
	if err != nil && errors.Is(err, core.ErrBudgetExceeded) {
		addStat(&e.stats.BudgetExhaustions, 1)
	}
}

// Graph returns the engine's graph: the current epoch's view on a live
// engine, the construction-time graph on a static one.
func (e *Engine) Graph() *graph.Graph {
	if e.store != nil {
		return e.store.Graph()
	}
	return e.g
}

// Epoch returns the engine's current epoch: the store's epoch on a live
// engine, the pinned epoch on a bound copy, 0 on a static engine.
func (e *Engine) Epoch() uint64 {
	if e.store != nil {
		return e.store.Epoch()
	}
	return e.epoch
}

// Store returns the live engine's store, or nil for a static engine.
func (e *Engine) Store() *graph.Store { return e.store }

// Parallelism returns the resolved worker count used by the engine's
// parallelizable operators.
func (e *Engine) Parallelism() int { return e.opts.parallelism() }

// Stats returns a snapshot of the counters accumulated so far.
func (e *Engine) Stats() Stats {
	return Stats{
		PathsProduced:         atomic.LoadInt64(&e.stats.PathsProduced),
		JoinProbes:            atomic.LoadInt64(&e.stats.JoinProbes),
		IndexedScans:          atomic.LoadInt64(&e.stats.IndexedScans),
		Recursions:            atomic.LoadInt64(&e.stats.Recursions),
		ExpandedRecursions:    atomic.LoadInt64(&e.stats.ExpandedRecursions),
		SeededRecursions:      atomic.LoadInt64(&e.stats.SeededRecursions),
		BackwardRecursions:    atomic.LoadInt64(&e.stats.BackwardRecursions),
		ReachKernelRuns:       atomic.LoadInt64(&e.stats.ReachKernelRuns),
		ReachFallbacks:        atomic.LoadInt64(&e.stats.ReachFallbacks),
		PlanCacheHits:         atomic.LoadInt64(&e.stats.PlanCacheHits),
		PlanCacheMisses:       atomic.LoadInt64(&e.stats.PlanCacheMisses),
		BudgetExhaustions:     atomic.LoadInt64(&e.stats.BudgetExhaustions),
		FingerprintCollisions: fingerprintCollisions() - e.collisionBase,
	}
}

// addStat atomically bumps one counter.
func addStat(counter *int64, n int64) { atomic.AddInt64(counter, n) }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() {
	*e.stats = Stats{}
	e.collisionBase = fingerprintCollisions()
}

// EvalPaths evaluates a path-sorted expression to a set of paths.
func (e *Engine) EvalPaths(x core.PathExpr) (*pathset.Set, error) {
	return e.EvalPathsCtx(context.Background(), x)
}

// ctxErr reports the typed cancellation cause if ctx is already done —
// the operator-boundary cancellation check (the per-charge check inside
// the evaluators handles mid-operator aborts).
func ctxErr(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// EvalPathsCtx is EvalPaths under cooperative cancellation: every
// operator boundary checks ctx, and the recursive operators (the
// unbounded-work part of any plan) additionally abort mid-flight via
// their budget's cancel check. On a live engine the whole evaluation runs
// against one pinned epoch.
func (e *Engine) EvalPathsCtx(ctx context.Context, x core.PathExpr) (*pathset.Set, error) {
	b, release := e.pin()
	defer release()
	out, err := b.evalPathsCtx(ctx, x)
	e.noteEvalErr(err)
	return out, err
}

// evalPathsCtx is the recursive evaluator body, always running on a
// bound (or static) engine.
func (e *Engine) evalPathsCtx(ctx context.Context, x core.PathExpr) (*pathset.Set, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	switch x := x.(type) {
	case core.Nodes:
		s := core.EvalNodes(e.g)
		addStat(&e.stats.PathsProduced, int64(s.Len()))
		return s, nil
	case core.Edges:
		s := core.EvalEdges(e.g)
		addStat(&e.stats.PathsProduced, int64(s.Len()))
		return s, nil
	case core.Select:
		return e.evalSelect(ctx, x)
	case core.Join:
		l, err := e.evalPathsCtx(ctx, x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.evalPathsCtx(ctx, x.R)
		if err != nil {
			return nil, err
		}
		return e.join(l, r), nil
	case core.Union:
		l, err := e.evalPathsCtx(ctx, x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.evalPathsCtx(ctx, x.R)
		if err != nil {
			return nil, err
		}
		u := core.EvalUnion(l, r)
		addStat(&e.stats.PathsProduced, int64(u.Len()))
		return u, nil
	case core.Recurse:
		addStat(&e.stats.Recursions, 1)
		if !e.opts.DisableExpand {
			if out, ok, err := e.expandRecurse(ctx, x); ok {
				if err != nil {
					return nil, fmt.Errorf("engine: ϕ%s: %w", x.Sem, err)
				}
				addStat(&e.stats.ExpandedRecursions, 1)
				addStat(&e.stats.PathsProduced, int64(out.Len()))
				return out, nil
			}
		}
		base, err := e.evalPathsCtx(ctx, x.In)
		if err != nil {
			return nil, err
		}
		out, err := core.EvalRecurseCtx(ctx, x.Sem, base, e.opts.Limits)
		if err != nil {
			return nil, fmt.Errorf("engine: ϕ%s: %w", x.Sem, err)
		}
		addStat(&e.stats.PathsProduced, int64(out.Len()))
		return out, nil
	case core.Restrict:
		in, err := e.evalPathsCtx(ctx, x.In)
		if err != nil {
			return nil, err
		}
		out := core.EvalRestrict(x.Sem, in)
		addStat(&e.stats.PathsProduced, int64(out.Len()))
		return out, nil
	case core.Project:
		ss, err := e.evalSpaceCtx(ctx, x.In)
		if err != nil {
			return nil, err
		}
		out := core.EvalProject(x.Parts, x.Groups, x.Paths, ss)
		addStat(&e.stats.PathsProduced, int64(out.Len()))
		return out, nil
	case nil:
		return nil, fmt.Errorf("engine: nil path expression")
	default:
		return nil, fmt.Errorf("engine: unsupported path expression %T", x)
	}
}

// EvalSpace evaluates a space-sorted expression to a solution space.
func (e *Engine) EvalSpace(x core.SpaceExpr) (*core.SolutionSpace, error) {
	return e.EvalSpaceCtx(context.Background(), x)
}

// EvalSpaceCtx is EvalSpace under cooperative cancellation.
func (e *Engine) EvalSpaceCtx(ctx context.Context, x core.SpaceExpr) (*core.SolutionSpace, error) {
	b, release := e.pin()
	defer release()
	return b.evalSpaceCtx(ctx, x)
}

// evalSpaceCtx is the recursive space-evaluator body on a bound engine.
func (e *Engine) evalSpaceCtx(ctx context.Context, x core.SpaceExpr) (*core.SolutionSpace, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	switch x := x.(type) {
	case core.GroupBy:
		in, err := e.evalPathsCtx(ctx, x.In)
		if err != nil {
			return nil, err
		}
		return core.EvalGroupBy(x.Key, in), nil
	case core.OrderBy:
		in, err := e.evalSpaceCtx(ctx, x.In)
		if err != nil {
			return nil, err
		}
		return core.EvalOrderBy(x.Key, in), nil
	case nil:
		return nil, fmt.Errorf("engine: nil space expression")
	default:
		return nil, fmt.Errorf("engine: unsupported space expression %T", x)
	}
}

// evalSelect evaluates σ, answering label-equality selections over the
// Edges/Nodes atoms straight from the graph's label indexes when allowed,
// and σ over pattern recursions by a seeded product search.
func (e *Engine) evalSelect(ctx context.Context, s core.Select) (*pathset.Set, error) {
	if !e.opts.DisableLabelIndex {
		if out, ok := e.indexedSelect(s); ok {
			addStat(&e.stats.IndexedScans, 1)
			addStat(&e.stats.PathsProduced, int64(out.Len()))
			return out, nil
		}
	}
	if !e.opts.DisableExpand {
		if out, ok, err := e.seededRecurse(ctx, s); ok {
			if err != nil {
				return nil, err
			}
			addStat(&e.stats.PathsProduced, int64(out.Len()))
			return out, nil
		}
	}
	in, err := e.evalPathsCtx(ctx, s.In)
	if err != nil {
		return nil, err
	}
	out := core.EvalSelect(e.g, s.Cond, in)
	addStat(&e.stats.PathsProduced, int64(out.Len()))
	return out, nil
}

// seededRecurse answers σc(ϕSem(pattern)) by a product search seeded only
// at the nodes that can satisfy c's seed-side endpoint conjuncts: the
// first-node conjuncts of a forward search, the last-node conjuncts of a
// backward one. A first-only (last-only) conjunct's value is a function
// of the path's first (last) node alone, so seeding is exactly
// "evaluate everything, then filter" — including its result order, since
// per-seed shards merge in ascending seed order, the relative order the
// unseeded evaluation would have produced — at a fraction of the search
// work. Remaining conjuncts filter the admitted paths afterwards.
func (e *Engine) seededRecurse(ctx context.Context, s core.Select) (*pathset.Set, bool, error) {
	rec, ok := s.In.(core.Recurse)
	if !ok {
		return nil, false, nil
	}
	re, ok := labelPattern(rec.In)
	if !ok {
		return nil, false, nil
	}
	first, last, rest := opt.SplitByEndpoint(s.Cond)
	back := rec.Dir == core.Backward
	var seedConds, filterConds []cond.Cond
	if back {
		seedConds = last
		filterConds = append(append([]cond.Cond{}, first...), rest...)
		re = rpq.Reverse(re)
	} else {
		if len(first) == 0 {
			// Nothing to seed with: the plain expansion path plus a
			// post-filter does the same work.
			return nil, false, nil
		}
		seedConds = first
		filterConds = append(append([]cond.Cond{}, last...), rest...)
	}
	addStat(&e.stats.Recursions, 1)
	addStat(&e.stats.ExpandedRecursions, 1)
	if back {
		addStat(&e.stats.BackwardRecursions, 1)
	}
	seeds := e.seedNodes(seedConds)
	if len(seedConds) > 0 {
		addStat(&e.stats.SeededRecursions, 1)
		if seeds == nil {
			seeds = []graph.NodeID{} // non-nil: zero seeds, not all nodes
		}
	}
	nfa := automaton.Build(rpq.Plus{In: re})
	out, err := automaton.EvalWithOptions(e.g, nfa, rec.Sem, e.opts.Limits, automaton.EvalOptions{
		Ctx:     ctx,
		Workers: e.opts.parallelism(),
		Dir:     rec.Dir,
		Seeds:   seeds,
	})
	if err != nil {
		return nil, true, fmt.Errorf("engine: σϕ%s: %w", rec.Sem, err)
	}
	if len(filterConds) > 0 {
		out = core.EvalSelect(e.g, cond.Conj(filterConds...), out)
	}
	return out, true, nil
}

// seedNodes lists, ascending, the nodes whose length-zero path satisfies
// the conjunction — the seed set of a directed product search. A single
// label-equality condition answers from the label index; anything else
// scans the node set once.
func (e *Engine) seedNodes(conds []cond.Cond) []graph.NodeID {
	if len(conds) == 0 {
		return nil
	}
	if len(conds) == 1 {
		if lc, ok := conds[0].(cond.LabelCmp); ok && lc.Op == cond.EQ {
			return e.g.NodesWithLabel(lc.Value)
		}
	}
	c := cond.Conj(conds...)
	var seeds []graph.NodeID
	for n := 0; n < e.g.NumNodes(); n++ {
		id := graph.NodeID(n)
		if !e.g.NodeAlive(id) {
			continue
		}
		if c.Eval(e.g, path.FromNode(id)) {
			seeds = append(seeds, id)
		}
	}
	return seeds
}

// indexedSelect recognizes σ[label(edge(1)) = L](Edges(G)) and
// σ[label(first|node(1)) = L](Nodes(G)) and answers them from indexes.
func (e *Engine) indexedSelect(s core.Select) (*pathset.Set, bool) {
	lc, ok := s.Cond.(cond.LabelCmp)
	if !ok || lc.Op != cond.EQ {
		return nil, false
	}
	switch s.In.(type) {
	case core.Edges:
		if lc.Target.Kind != cond.TargetEdge || lc.Target.Pos != 1 {
			return nil, false
		}
		ids := e.g.EdgesWithLabel(lc.Value)
		out := pathset.New(len(ids))
		for _, id := range ids {
			out.Add(path.FromEdge(e.g, id))
		}
		return out, true
	case core.Nodes:
		isFirst := lc.Target.Kind == cond.TargetFirst ||
			(lc.Target.Kind == cond.TargetNode && lc.Target.Pos == 1) ||
			lc.Target.Kind == cond.TargetLast // first == last on length-0 paths
		if !isFirst {
			return nil, false
		}
		ids := e.g.NodesWithLabel(lc.Value)
		out := pathset.New(len(ids))
		for _, id := range ids {
			out.Add(path.FromNode(id))
		}
		return out, true
	default:
		return nil, false
	}
}

// expandRecurse answers ϕSem(In) by product search over the graph's
// adjacency lists when the base expression is a label pattern —
// σ[label(edge(1)) = L](Edges(G)), Edges(G), or joins/unions of such.
// The closure of such a base equals the language (pattern)+, so the
// recursion is exactly an RPQ and the automaton evaluator applies. ok is
// false when the base has a different shape.
func (e *Engine) expandRecurse(ctx context.Context, x core.Recurse) (*pathset.Set, bool, error) {
	re, ok := labelPattern(x.In)
	if !ok {
		return nil, false, nil
	}
	if x.Dir == core.Backward {
		re = rpq.Reverse(re)
		addStat(&e.stats.BackwardRecursions, 1)
	}
	nfa := automaton.Build(rpq.Plus{In: re})
	out, err := automaton.EvalWithOptions(e.g, nfa, x.Sem, e.opts.Limits, automaton.EvalOptions{
		Ctx:     ctx,
		Workers: e.opts.parallelism(),
		Dir:     x.Dir,
	})
	return out, true, err
}

// labelPattern converts a base expression built from label-equality
// selections over Edges(G), joins and unions into the equivalent regular
// path expression.
func labelPattern(x core.PathExpr) (rpq.Expr, bool) {
	switch x := x.(type) {
	case core.Edges:
		return rpq.AnyLabel{}, true
	case core.Select:
		lc, ok := x.Cond.(cond.LabelCmp)
		if !ok || lc.Op != cond.EQ || lc.Target.Kind != cond.TargetEdge || lc.Target.Pos != 1 {
			return nil, false
		}
		if _, ok := x.In.(core.Edges); !ok {
			return nil, false
		}
		return rpq.Label{Name: lc.Value}, true
	case core.Join:
		l, ok := labelPattern(x.L)
		if !ok {
			return nil, false
		}
		r, ok := labelPattern(x.R)
		if !ok {
			return nil, false
		}
		return rpq.Concat{L: l, R: r}, true
	case core.Union:
		l, ok := labelPattern(x.L)
		if !ok {
			return nil, false
		}
		r, ok := labelPattern(x.R)
		if !ok {
			return nil, false
		}
		return rpq.Alt{L: l, R: r}, true
	default:
		return nil, false
	}
}

// join dispatches on the configured strategy.
func (e *Engine) join(l, r *pathset.Set) *pathset.Set {
	var out *pathset.Set
	switch e.opts.Join {
	case NestedLoop:
		out = e.nestedLoopJoin(l, r)
	default:
		out = e.hashJoin(l, r)
	}
	addStat(&e.stats.PathsProduced, int64(out.Len()))
	return out
}

func (e *Engine) nestedLoopJoin(l, r *pathset.Set) *pathset.Set {
	out := pathset.New(l.Len())
	probes := int64(0)
	for _, p := range l.Paths() {
		for _, q := range r.Paths() {
			probes++
			if p.CanConcat(q) {
				out.Add(p.Concat(q))
			}
		}
	}
	addStat(&e.stats.JoinProbes, probes)
	return out
}

// hashJoin builds a positional index on First(q) over r and probes it with
// Last(p) for every p in l. Buckets hold int32 positions into r's path
// slice rather than path values, and the output set dedupes by fingerprint,
// so the join materializes no per-pair identity strings at all. For large
// build sides the index is built by parallel workers over disjoint chunks
// and merged in chunk order, which keeps every bucket's positions
// ascending — the probe phase (and therefore the output order) is
// identical to the sequential build.
func (e *Engine) hashJoin(l, r *pathset.Set) *pathset.Set {
	rp := r.Paths()
	byFirst := e.buildJoinIndex(rp)
	out := pathset.New(l.Len())
	probes := int64(0)
	for _, p := range l.Paths() {
		for _, qi := range byFirst[p.Last()] {
			probes++
			out.Add(p.Concat(rp[qi]))
		}
	}
	addStat(&e.stats.JoinProbes, probes)
	return out
}

// parallelBuildThreshold is the build-side size under which the hash-join
// index is built sequentially: below it goroutine startup dominates the
// map inserts being parallelized.
const parallelBuildThreshold = 2048

func (e *Engine) buildJoinIndex(rp []path.Path) map[graph.NodeID][]int32 {
	workers := e.opts.parallelism()
	if len(rp) < parallelBuildThreshold || workers <= 1 {
		byFirst := make(map[graph.NodeID][]int32, len(rp))
		for i, q := range rp {
			byFirst[q.First()] = append(byFirst[q.First()], int32(i))
		}
		return byFirst
	}
	if workers > len(rp) {
		workers = len(rp)
	}
	// Each worker indexes one contiguous chunk; chunks are merged in chunk
	// order so per-node position lists stay ascending.
	chunkMaps := make([]map[graph.NodeID][]int32, workers)
	chunk := (len(rp) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(rp))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := make(map[graph.NodeID][]int32, hi-lo)
			for i := lo; i < hi; i++ {
				m[rp[i].First()] = append(m[rp[i].First()], int32(i))
			}
			chunkMaps[w] = m
		}(w, lo, hi)
	}
	wg.Wait()
	byFirst := chunkMaps[0]
	for _, m := range chunkMaps[1:] {
		for n, positions := range m {
			byFirst[n] = append(byFirst[n], positions...)
		}
	}
	return byFirst
}
