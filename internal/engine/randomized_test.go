package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/testutil"
)

// The randomized differential harness: ~500 seeded random plans spanning
// all five semantics, all restrictors and every operator (σ, ⋈, ∪, ϕ, ρ,
// γ, τ, π) over seeded LDBC-shaped graphs, each evaluated by
//
//   - the optimized engine with the cost-based planner ON,
//   - the same engine with the planner disabled (heuristic rules only),
//   - the reference evaluator in internal/core (core.EvalExpr),
//
// at parallelism 1 and 8. All evaluation routes must return identical
// path sets. Plans whose projections truncate are compared engine-vs-
// engine only: there the result depends on rank tie-breaking order, the
// engine pins that order (identically for planner on/off — that is the
// planner's core guarantee), but the reference closure discovers paths in
// a different order and may legitimately pick different representatives.
const (
	randomizedTrials = 500
	shortTrials      = 60
)

func TestRandomizedDifferential(t *testing.T) {
	trials := randomizedTrials
	if testing.Short() {
		trials = shortTrials
	}
	rng := rand.New(rand.NewSource(20260729))
	lim := core.Limits{MaxLen: 3}

	// A pool of seeded graphs reused across plans keeps generation cheap
	// while still varying size and cycle structure.
	graphs := make([]*graph.Graph, 8)
	for i := range graphs {
		graphs[i] = testutil.RandomGraph(rng)
	}

	semSeen := make(map[core.Semantics]int)
	truncating, setDetermined := 0, 0
	for trial := 0; trial < trials; trial++ {
		g := graphs[trial%len(graphs)]
		plan := testutil.RandomPlan(rng, 3)
		name := fmt.Sprintf("trial%d/%s", trial, plan)
		countSemantics(plan, semSeen)

		compareReference := testutil.IsTruncationFree(plan)
		if compareReference {
			setDetermined++
		} else {
			truncating++
		}
		var want *pathset.Set
		if compareReference {
			ref, err := core.EvalExpr(g, plan, lim)
			if err != nil {
				t.Fatalf("%s: reference: %v", name, err)
			}
			want = ref
		}

		var baseline *pathset.Set
		for _, par := range []int{1, 8} {
			on := New(g, Options{Limits: lim, Parallelism: par})
			a, err := on.Run(plan)
			if err != nil {
				t.Fatalf("%s: planner-on par=%d: %v", name, par, err)
			}
			off := New(g, Options{Limits: lim, Parallelism: par, DisablePlanner: true})
			b, err := off.Run(plan)
			if err != nil {
				t.Fatalf("%s: planner-off par=%d: %v", name, par, err)
			}
			if !a.Equal(b) {
				t.Fatalf("%s: par=%d planner-on (%d paths) != planner-off (%d paths)",
					name, par, a.Len(), b.Len())
			}
			if want != nil && !a.Equal(want) {
				t.Fatalf("%s: par=%d engine (%d paths) != reference (%d paths)",
					name, par, a.Len(), want.Len())
			}
			if baseline == nil {
				baseline = a
			} else if !a.Equal(baseline) {
				t.Fatalf("%s: par=%d differs from par=1", name, par)
			}
		}
	}
	for _, sem := range core.AllSemantics() {
		if semSeen[sem] == 0 {
			t.Errorf("generator never produced semantics %s in %d trials", sem, trials)
		}
	}
	if truncating == 0 || setDetermined == 0 {
		t.Errorf("generator coverage hole: %d truncating, %d truncation-free plans",
			truncating, setDetermined)
	}
	t.Logf("%d trials: %d truncation-free (3-way vs reference), %d truncating (engine-vs-engine); semantics %v",
		trials, setDetermined, truncating, semSeen)
}

func countSemantics(e core.PathExpr, seen map[core.Semantics]int) {
	switch x := e.(type) {
	case core.Select:
		countSemantics(x.In, seen)
	case core.Join:
		countSemantics(x.L, seen)
		countSemantics(x.R, seen)
	case core.Union:
		countSemantics(x.L, seen)
		countSemantics(x.R, seen)
	case core.Recurse:
		seen[x.Sem]++
		countSemantics(x.In, seen)
	case core.Restrict:
		seen[x.Sem]++
		countSemantics(x.In, seen)
	case core.Project:
		countSpaceSemantics(x.In, seen)
	}
}

func countSpaceSemantics(e core.SpaceExpr, seen map[core.Semantics]int) {
	switch x := e.(type) {
	case core.GroupBy:
		countSemantics(x.In, seen)
	case core.OrderBy:
		countSpaceSemantics(x.In, seen)
	}
}
