package core

import (
	"fmt"
	"sort"
	"strings"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// GroupKey is the parameter ψ of the group-by operator γψ: any subset of
// {Source, Target, Length} (§5.1). Source and Target induce partitions;
// Length induces groups within each partition (Table 4).
type GroupKey uint8

const (
	// GroupSource partitions paths by First(p).
	GroupSource GroupKey = 1 << iota
	// GroupTarget partitions paths by Last(p).
	GroupTarget
	// GroupLength groups paths within a partition by Len(p).
	GroupLength

	// GroupNone is γ∅: a single partition containing a single group.
	GroupNone GroupKey = 0
	// GroupST is the common endpoints key γST.
	GroupST = GroupSource | GroupTarget
	// GroupSTL is the full key γSTL.
	GroupSTL = GroupSource | GroupTarget | GroupLength
)

// String renders the key in the paper's subscript notation (γST → "ST").
func (k GroupKey) String() string {
	if k == GroupNone {
		return "∅"
	}
	var sb strings.Builder
	if k&GroupSource != 0 {
		sb.WriteByte('S')
	}
	if k&GroupTarget != 0 {
		sb.WriteByte('T')
	}
	if k&GroupLength != 0 {
		sb.WriteByte('L')
	}
	return sb.String()
}

// Words renders the key as GQL GROUP BY keywords (§7.1).
func (k GroupKey) Words() string {
	if k == GroupNone {
		return "None"
	}
	var parts []string
	if k&GroupSource != 0 {
		parts = append(parts, "Source")
	}
	if k&GroupTarget != 0 {
		parts = append(parts, "Target")
	}
	if k&GroupLength != 0 {
		parts = append(parts, "Length")
	}
	return strings.Join(parts, " ")
}

// AllGroupKeys lists the 8 group-by variants in the paper's Table 4 order.
func AllGroupKeys() []GroupKey {
	return []GroupKey{
		GroupNone, GroupSource, GroupTarget, GroupLength,
		GroupST, GroupSource | GroupLength, GroupTarget | GroupLength, GroupSTL,
	}
}

// OrderKey is the parameter θ of the order-by operator τθ: any non-empty
// subset of {Partition, Group, Path} (§5.2; the paper writes Path as "A").
type OrderKey uint8

const (
	// OrderPartition re-ranks partitions by MinL(P).
	OrderPartition OrderKey = 1 << iota
	// OrderGroup re-ranks groups by MinL(G).
	OrderGroup
	// OrderPath re-ranks paths by Len(p).
	OrderPath
)

// String renders the key in the paper's subscript notation (τPG → "PG").
func (k OrderKey) String() string {
	var sb strings.Builder
	if k&OrderPartition != 0 {
		sb.WriteByte('P')
	}
	if k&OrderGroup != 0 {
		sb.WriteByte('G')
	}
	if k&OrderPath != 0 {
		sb.WriteByte('A')
	}
	if sb.Len() == 0 {
		return "∅"
	}
	return sb.String()
}

// Words renders the key as GQL ORDER BY keywords (§7.1).
func (k OrderKey) Words() string {
	var parts []string
	if k&OrderPartition != 0 {
		parts = append(parts, "Partition")
	}
	if k&OrderGroup != 0 {
		parts = append(parts, "Group")
	}
	if k&OrderPath != 0 {
		parts = append(parts, "Path")
	}
	if len(parts) == 0 {
		return "None"
	}
	return strings.Join(parts, " ")
}

// AllOrderKeys lists the 7 non-empty order-by variants in Table 6 order.
func AllOrderKeys() []OrderKey {
	return []OrderKey{
		OrderPartition, OrderGroup, OrderPath,
		OrderPartition | OrderGroup, OrderPartition | OrderPath,
		OrderGroup | OrderPath, OrderPartition | OrderGroup | OrderPath,
	}
}

// RankedPath is a path together with its △ rank inside its group.
type RankedPath struct {
	Path path.Path
	Rank int
}

// Group is a group of paths inside a partition (Definition 5.1). Length is
// the group key when the group-by key includes Length; otherwise it is -1.
type Group struct {
	Length int
	Paths  []RankedPath
	Rank   int // △(G)
}

// MinLen implements MinL(G): the length of the shortest path in the group.
func (g *Group) MinLen() int {
	m := -1
	for _, rp := range g.Paths {
		if m < 0 || rp.Path.Len() < m {
			m = rp.Path.Len()
		}
	}
	return m
}

// Partition is a set of groups keyed by source and/or target endpoints
// (whichever the group-by key selects; unused endpoints are 0 with
// HasSource/HasTarget false).
type Partition struct {
	Source    graph.NodeID
	Target    graph.NodeID
	HasSource bool
	HasTarget bool
	Groups    []*Group
	Rank      int // △(P)
}

// MinLen implements MinL(P): the minimum MinL over the partition's groups.
func (p *Partition) MinLen() int {
	m := -1
	for _, g := range p.Groups {
		gm := g.MinLen()
		if m < 0 || (gm >= 0 && gm < m) {
			m = gm
		}
	}
	return m
}

// SolutionSpace is the secondary data structure of the extended algebra
// (Definition 5.1): paths organized into groups, groups into partitions,
// with △ ranks on paths, groups and partitions. After γ all ranks are 1
// ("no virtual order"); τ re-ranks per Table 6; π consumes ranks.
type SolutionSpace struct {
	Key        GroupKey
	Partitions []*Partition
}

// NumPaths returns the total number of paths across all groups.
func (ss *SolutionSpace) NumPaths() int {
	n := 0
	for _, p := range ss.Partitions {
		for _, g := range p.Groups {
			n += len(g.Paths)
		}
	}
	return n
}

// NumGroups returns the total number of groups across all partitions.
func (ss *SolutionSpace) NumGroups() int {
	n := 0
	for _, p := range ss.Partitions {
		n += len(p.Groups)
	}
	return n
}

// AllPaths flattens the space back into a set of paths (losing structure).
func (ss *SolutionSpace) AllPaths() *pathset.Set {
	out := pathset.New(ss.NumPaths())
	for _, p := range ss.Partitions {
		for _, g := range p.Groups {
			for _, rp := range g.Paths {
				out.Add(rp.Path)
			}
		}
	}
	return out
}

type partitionKey struct {
	src, dst graph.NodeID
	hasS     bool
	hasT     bool
}

// EvalGroupBy implements γψ(S) (§5.1). Partitions appear in order of first
// contribution from S's iteration order; likewise groups within a
// partition and paths within a group. Every △ rank is initialized to 1,
// i.e. the space is unordered until τ runs.
func EvalGroupBy(key GroupKey, s *pathset.Set) *SolutionSpace {
	ss := &SolutionSpace{Key: key}
	partIdx := make(map[partitionKey]*Partition)
	for _, p := range s.Paths() {
		pk := partitionKey{hasS: key&GroupSource != 0, hasT: key&GroupTarget != 0}
		if pk.hasS {
			pk.src = p.First()
		}
		if pk.hasT {
			pk.dst = p.Last()
		}
		part, ok := partIdx[pk]
		if !ok {
			part = &Partition{
				Source:    pk.src,
				Target:    pk.dst,
				HasSource: pk.hasS,
				HasTarget: pk.hasT,
				Rank:      1,
			}
			partIdx[pk] = part
			ss.Partitions = append(ss.Partitions, part)
		}
		glen := -1
		if key&GroupLength != 0 {
			glen = p.Len()
		}
		var grp *Group
		for _, g := range part.Groups {
			if g.Length == glen {
				grp = g
				break
			}
		}
		if grp == nil {
			grp = &Group{Length: glen, Rank: 1}
			part.Groups = append(part.Groups, grp)
		}
		grp.Paths = append(grp.Paths, RankedPath{Path: p, Rank: 1})
	}
	return ss
}

// EvalOrderBy implements τθ(SS) (§5.2, Table 6). It returns a new space
// sharing path values but with fresh rank assignments: partitions get
// △′(P) = MinL(P) when θ includes Partition, groups get △′(G) = MinL(G)
// when θ includes Group, and paths get △′(p) = Len(p) when θ includes
// Path; all other ranks are carried over unchanged.
func EvalOrderBy(key OrderKey, ss *SolutionSpace) *SolutionSpace {
	out := &SolutionSpace{Key: ss.Key, Partitions: make([]*Partition, 0, len(ss.Partitions))}
	for _, p := range ss.Partitions {
		np := &Partition{
			Source: p.Source, Target: p.Target,
			HasSource: p.HasSource, HasTarget: p.HasTarget,
			Rank:   p.Rank,
			Groups: make([]*Group, 0, len(p.Groups)),
		}
		if key&OrderPartition != 0 {
			np.Rank = p.MinLen()
		}
		for _, g := range p.Groups {
			ng := &Group{Length: g.Length, Rank: g.Rank, Paths: make([]RankedPath, 0, len(g.Paths))}
			if key&OrderGroup != 0 {
				ng.Rank = g.MinLen()
			}
			for _, rp := range g.Paths {
				r := rp.Rank
				if key&OrderPath != 0 {
					r = rp.Path.Len()
				}
				ng.Paths = append(ng.Paths, RankedPath{Path: rp.Path, Rank: r})
			}
			np.Groups = append(np.Groups, ng)
		}
		out.Partitions = append(out.Partitions, np)
	}
	return out
}

// EvalProject implements π(#P,#G,#A)(SS) — Algorithm 1 of the paper. It
// stably sorts partitions, groups and paths by their △ ranks (ties keep
// the space's construction order, which makes "non-deterministic"
// selectors reproducible), truncates each level to its bound, and returns
// the surviving paths as a set.
func EvalProject(parts, groups, paths Count, ss *SolutionSpace) *pathset.Set {
	out := pathset.New(ss.NumPaths())

	seqP := make([]*Partition, len(ss.Partitions))
	copy(seqP, ss.Partitions)
	sortByRank(seqP, func(p *Partition) int { return p.Rank }, parts.Desc)

	maxP := parts.Limit(len(seqP))
	for i := 0; i < maxP; i++ {
		p := seqP[i]
		seqG := make([]*Group, len(p.Groups))
		copy(seqG, p.Groups)
		sortByRank(seqG, func(g *Group) int { return g.Rank }, groups.Desc)

		maxG := groups.Limit(len(seqG))
		for j := 0; j < maxG; j++ {
			g := seqG[j]
			seqS := make([]RankedPath, len(g.Paths))
			copy(seqS, g.Paths)
			sortByRank(seqS, func(rp RankedPath) int { return rp.Rank }, paths.Desc)

			maxS := paths.Limit(len(seqS))
			for k := 0; k < maxS; k++ {
				out.Add(seqS[k].Path)
			}
		}
	}
	return out
}

// sortByRank stably sorts elements by rank, ascending or descending. Ties
// keep construction order in both directions, so descending projection
// remains deterministic.
func sortByRank[T any](xs []T, rank func(T) int, desc bool) {
	sort.SliceStable(xs, func(i, j int) bool {
		if desc {
			return rank(xs[i]) > rank(xs[j])
		}
		return rank(xs[i]) < rank(xs[j])
	})
}

// Format renders the solution space as a table resembling the paper's
// Table 5: one row per path with its partition, group, MinL(P), MinL(G)
// and Len(p) columns.
func (ss *SolutionSpace) Format(g *graph.Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-10s %-40s %-8s %-8s %-6s\n",
		"Partition", "Group", "Path", "MinL(P)", "MinL(G)", "Len(p)")
	for pi, p := range ss.Partitions {
		for gi, grp := range p.Groups {
			for _, rp := range grp.Paths {
				fmt.Fprintf(&sb, "%-10s %-10s %-40s %-8d %-8d %-6d\n",
					fmt.Sprintf("part%d", pi+1),
					fmt.Sprintf("group%d%d", pi+1, gi+1),
					rp.Path.Format(g),
					p.MinLen(), grp.MinLen(), rp.Path.Len())
			}
		}
	}
	return sb.String()
}
