package core

import (
	"errors"
	"testing"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// table3 lists the 14 paths of the paper's Table 3 (matches of Knows+ on
// the Figure 1 graph) with their W/T/A/S/Sh membership flags.
type table3Row struct {
	id                               string
	keys                             []string
	trail, acyclic, simple, shortest bool
}

func table3Rows() []table3Row {
	return []table3Row{
		{"p1", []string{"n1", "e1", "n2"}, true, true, true, true},
		{"p2", []string{"n1", "e1", "n2", "e2", "n3", "e3", "n2"}, true, false, false, false},
		{"p3", []string{"n1", "e1", "n2", "e2", "n3"}, true, true, true, true},
		{"p4", []string{"n1", "e1", "n2", "e2", "n3", "e3", "n2", "e2", "n3"}, false, false, false, false},
		{"p5", []string{"n1", "e1", "n2", "e4", "n4"}, true, true, true, true},
		{"p6", []string{"n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"}, true, false, false, false},
		{"p7", []string{"n2", "e2", "n3", "e3", "n2"}, true, false, true, true},
		{"p8", []string{"n2", "e2", "n3", "e3", "n2", "e2", "n3", "e3", "n2"}, false, false, false, false},
		{"p9", []string{"n2", "e2", "n3"}, true, true, true, true},
		{"p10", []string{"n2", "e2", "n3", "e3", "n2", "e2", "n3"}, false, false, false, false},
		{"p11", []string{"n2", "e4", "n4"}, true, true, true, true},
		{"p12", []string{"n2", "e2", "n3", "e3", "n2", "e4", "n4"}, true, false, false, false},
		{"p13", []string{"n3", "e3", "n2", "e4", "n4"}, true, true, true, true},
		{"p14", []string{"n3", "e3", "n2", "e2", "n3", "e3", "n2", "e4", "n4"}, false, false, false, false},
	}
}

// TestTable3 reproduces the paper's Table 3: for each listed path, its
// membership in ϕWalk, ϕTrail, ϕAcyclic, ϕSimple and ϕShortest of
// σ[Knows](Edges(G)) on the Figure 1 graph. Walk is evaluated under a
// length bound (the full answer is infinite, as the paper notes).
func TestTable3(t *testing.T) {
	g := ldbc.Figure1()
	base := knowsEdges(g)

	walk, err := EvalRecurse(Walk, base, Limits{MaxLen: 4})
	if err != nil {
		t.Fatalf("ϕWalk: %v", err)
	}
	results := map[string]*pathset.Set{"W": walk}
	for _, tc := range []struct {
		col string
		sem Semantics
	}{{"T", Trail}, {"A", Acyclic}, {"S", Simple}, {"Sh", Shortest}} {
		s, err := EvalRecurse(tc.sem, base, Limits{})
		if err != nil {
			t.Fatalf("ϕ%s: %v", tc.sem, err)
		}
		results[tc.col] = s
	}

	for _, row := range table3Rows() {
		p := path.MustFromKeys(g, row.keys...)
		if !results["W"].Contains(p) {
			t.Errorf("%s missing from ϕWalk (bounded)", row.id)
		}
		checks := []struct {
			col  string
			want bool
		}{
			{"T", row.trail}, {"A", row.acyclic}, {"S", row.simple}, {"Sh", row.shortest},
		}
		for _, c := range checks {
			if got := results[c.col].Contains(p); got != c.want {
				t.Errorf("%s in ϕ%s = %v, want %v", row.id, c.col, got, c.want)
			}
		}
	}
}

// TestTrailComplete checks ϕTrail(Knows) exhaustively: the Knows subgraph
// has exactly 12 trails of length ≥ 1 (the paper's Table 3 lists the 10
// starting at n1/n2/n3 that its examples use, plus (n3,e3,n2) and
// (n3,e3,n2,e2,n3) which the table omits as it shows only "some paths").
func TestTrailComplete(t *testing.T) {
	g := ldbc.Figure1()
	trails, err := EvalRecurse(Trail, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatalf("ϕTrail: %v", err)
	}
	if trails.Len() != 12 {
		t.Fatalf("ϕTrail produced %d paths, want 12:\n%s", trails.Len(), trails.Format(g))
	}
	extra := []path.Path{
		path.MustFromKeys(g, "n3", "e3", "n2"),
		path.MustFromKeys(g, "n3", "e3", "n2", "e2", "n3"),
	}
	for _, p := range extra {
		if !trails.Contains(p) {
			t.Errorf("ϕTrail missing %s", p.Format(g))
		}
	}
}

// TestShortestComplete checks ϕShortest(Knows) exhaustively: per endpoint
// pair, exactly the minimal-length Knows+ walks.
func TestShortestComplete(t *testing.T) {
	g := ldbc.Figure1()
	got, err := EvalRecurse(Shortest, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatalf("ϕShortest: %v", err)
	}
	want := pathset.FromPaths(
		path.MustFromKeys(g, "n1", "e1", "n2"),             // n1→n2
		path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"), // n1→n3
		path.MustFromKeys(g, "n1", "e1", "n2", "e4", "n4"), // n1→n4
		path.MustFromKeys(g, "n2", "e2", "n3"),             // n2→n3
		path.MustFromKeys(g, "n2", "e4", "n4"),             // n2→n4
		path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2"), // n2→n2
		path.MustFromKeys(g, "n3", "e3", "n2"),             // n3→n2
		path.MustFromKeys(g, "n3", "e3", "n2", "e4", "n4"), // n3→n4
		path.MustFromKeys(g, "n3", "e3", "n2", "e2", "n3"), // n3→n3
	)
	if !got.Equal(want) {
		t.Errorf("ϕShortest =\n%s\nwant\n%s", got.Format(g), want.Format(g))
	}
}

// TestAcyclicComplete checks ϕAcyclic(Knows) exhaustively.
func TestAcyclicComplete(t *testing.T) {
	g := ldbc.Figure1()
	got, err := EvalRecurse(Acyclic, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatalf("ϕAcyclic: %v", err)
	}
	want := pathset.FromPaths(
		path.MustFromKeys(g, "n1", "e1", "n2"),
		path.MustFromKeys(g, "n2", "e2", "n3"),
		path.MustFromKeys(g, "n3", "e3", "n2"),
		path.MustFromKeys(g, "n2", "e4", "n4"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e4", "n4"),
		path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2"), // not acyclic!
	)
	// Remove the cycle: it is simple but not acyclic.
	want = want.Filter(func(p path.Path) bool { return p.IsAcyclic() })
	want.Add(path.MustFromKeys(g, "n3", "e3", "n2", "e4", "n4"))
	if !got.Equal(want) {
		t.Errorf("ϕAcyclic =\n%s\nwant\n%s", got.Format(g), want.Format(g))
	}
}

// TestSimpleVsAcyclic: ϕSimple adds exactly the simple cycles.
func TestSimpleVsAcyclic(t *testing.T) {
	g := ldbc.Figure1()
	acyclic, err := EvalRecurse(Acyclic, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	simple, err := EvalRecurse(Simple, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	diff := pathset.Minus(simple, acyclic)
	want := pathset.FromPaths(
		path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2"),
		path.MustFromKeys(g, "n3", "e3", "n2", "e2", "n3"),
	)
	if !diff.Equal(want) {
		t.Errorf("ϕSimple \\ ϕAcyclic =\n%s\nwant the two simple cycles", diff.Format(g))
	}
}

// TestWalkBudget: ϕWalk over the cyclic Knows subgraph must fail loudly
// without a length bound (the paper: "the query will never halt").
func TestWalkBudget(t *testing.T) {
	g := ldbc.Figure1()
	_, err := EvalRecurse(Walk, knowsEdges(g), Limits{MaxPaths: 100})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("ϕWalk on a cycle = %v, want ErrBudgetExceeded", err)
	}
	// With a MaxLen bound it terminates.
	s, err := EvalRecurse(Walk, knowsEdges(g), Limits{MaxLen: 6})
	if err != nil {
		t.Fatalf("bounded ϕWalk: %v", err)
	}
	for _, p := range s.Paths() {
		if p.Len() > 6 {
			t.Errorf("bounded walk produced length %d", p.Len())
		}
	}
}

// TestWalkAcyclicInputTerminates: on an acyclic base set ϕWalk reaches the
// Definition 4.1 fix point without budgets.
func TestWalkAcyclicInputTerminates(t *testing.T) {
	b := graph.NewBuilder()
	for _, k := range []string{"a", "b", "c", "d"} {
		b.AddNode(k, "N", nil)
	}
	b.AddEdge("x", "a", "b", "E", nil)
	b.AddEdge("y", "b", "c", "E", nil)
	b.AddEdge("z", "c", "d", "E", nil)
	g := b.MustBuild()
	s, err := EvalRecurse(Walk, EvalEdges(g), Limits{})
	if err != nil {
		t.Fatalf("ϕWalk on a chain: %v", err)
	}
	// Chain a→b→c→d: paths of lengths 1,2,3 = 3+2+1 = 6.
	if s.Len() != 6 {
		t.Errorf("ϕWalk(chain) = %d paths, want 6:\n%s", s.Len(), s.Format(g))
	}
}

// TestRecursionAgreesWithDefinition cross-checks the frontier expansion
// against a literal transcription of Definition 4.1 on an acyclic input.
func TestRecursionAgreesWithDefinition(t *testing.T) {
	b := graph.NewBuilder()
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		b.AddNode(k, "N", nil)
	}
	b.AddEdge("x1", "a", "b", "E", nil)
	b.AddEdge("x2", "b", "c", "E", nil)
	b.AddEdge("x3", "b", "d", "E", nil)
	b.AddEdge("x4", "c", "e", "E", nil)
	b.AddEdge("x5", "d", "e", "E", nil)
	g := b.MustBuild()
	base := EvalEdges(g)

	// Literal Definition 4.1: Si = S(i-1) ⋈ S until fix point.
	naive := base.Clone()
	level := base
	for {
		next := EvalJoin(level, base)
		before := naive.Len()
		naive.AddAll(next)
		if naive.Len() == before {
			break
		}
		level = next
	}

	got, err := EvalRecurse(Walk, base, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(naive) {
		t.Errorf("frontier expansion disagrees with Definition 4.1:\n%s\nvs\n%s",
			got.Format(g), naive.Format(g))
	}
}

// TestRecurseIncludesBase: ϕ(S) ⊇ admissible paths of S (base case ϕ0).
func TestRecurseIncludesBase(t *testing.T) {
	g := ldbc.Figure1()
	base := knowsEdges(g)
	for _, sem := range AllSemantics() {
		lim := Limits{}
		if sem == Walk {
			lim.MaxLen = 3
		}
		s, err := EvalRecurse(sem, base, lim)
		if err != nil {
			t.Fatalf("ϕ%s: %v", sem, err)
		}
		for _, p := range base.Paths() {
			if sem == Shortest {
				continue // shortest keeps only per-pair minima
			}
			if sem.Admits(p) && !s.Contains(p) {
				t.Errorf("ϕ%s missing base path %s", sem, p.Format(g))
			}
		}
	}
}

// TestRecurseMixedLengthBase exercises ϕ over a base of length-2 paths —
// the (Likes/Has_creator)+ pattern of Figures 2 and 4.
func TestRecurseMixedLengthBase(t *testing.T) {
	g := ldbc.Figure1()
	likes := EvalSelect(g, cond.Label(cond.EdgeAt(1), ldbc.LabelLikes), EvalEdges(g))
	hc := EvalSelect(g, cond.Label(cond.EdgeAt(1), ldbc.LabelHasCreator), EvalEdges(g))
	base := EvalJoin(likes, hc)
	simple, err := EvalRecurse(Simple, base, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// The outer cycle contributes (Likes/Has_creator)^k simple paths; the
	// intro's path2 n1→n4 must be among them.
	path2 := path.MustFromKeys(g, "n1", "e8", "n6", "e11", "n3", "e7", "n7", "e10", "n4")
	if !simple.Contains(path2) {
		t.Errorf("ϕSimple((Likes/HC)+) missing the intro's path2:\n%s", simple.Format(g))
	}
	for _, p := range simple.Paths() {
		if p.Len()%2 != 0 {
			t.Errorf("odd-length path %s in (Likes/HC)+", p.Format(g))
		}
	}
}

// TestShortestWithZeroLengthBase: nodes in the base set make length 0 the
// per-pair minimum for (n, n).
func TestShortestWithZeroLengthBase(t *testing.T) {
	g := ldbc.Figure1()
	base := EvalUnion(knowsEdges(g), EvalNodes(g))
	s, err := EvalRecurse(Shortest, base, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := g.NodeByKey("n2")
	if !s.Contains(path.FromNode(n2.ID)) {
		t.Error("zero-length path (n2) must be the shortest n2→n2 path")
	}
	if s.Contains(path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2")) {
		t.Error("the n2→n2 cycle must lose to the zero-length path")
	}
}

func TestKleeneStarAndPlus(t *testing.T) {
	g := ldbc.Figure1()
	base := knowsEdges(g)
	plus, err := KleenePlus(Trail, base, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	star, err := KleeneStar(g, Trail, base, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if star.Len() != plus.Len()+g.NumNodes() {
		t.Errorf("star = %d paths, want plus(%d) + nodes(%d)",
			star.Len(), plus.Len(), g.NumNodes())
	}
	n5, _ := g.NodeByKey("n5")
	if !star.Contains(path.FromNode(n5.ID)) {
		t.Error("Kleene star must include every length-zero path")
	}
}

func TestCheckedRecurseWrapsError(t *testing.T) {
	g := ldbc.Figure1()
	_, err := CheckedRecurse(Walk, knowsEdges(g), Limits{MaxPaths: 5})
	if err == nil || !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want wrapped ErrBudgetExceeded", err)
	}
}

// TestShortestBudget: the budget also applies to ϕShortest results.
func TestShortestBudget(t *testing.T) {
	g := ldbc.Figure1()
	_, err := EvalRecurse(Shortest, EvalEdges(g), Limits{MaxPaths: 2})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
