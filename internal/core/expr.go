package core

import (
	"fmt"
	"strings"

	"pathalgebra/internal/cond"
)

// PathExpr is an algebra expression whose evaluation yields a set of paths.
// The core and recursive algebra is closed under PathExpr (§3): Nodes,
// Edges, Select, Join, Union and Recurse are all PathExprs, as is Project,
// which takes a solution space back to a set of paths.
type PathExpr interface {
	fmt.Stringer
	// isPathExpr pins the two-sorted type discipline.
	isPathExpr()
}

// SpaceExpr is an algebra expression whose evaluation yields a solution
// space (§5): GroupBy produces one from a path set and OrderBy transforms
// one.
type SpaceExpr interface {
	fmt.Stringer
	isSpaceExpr()
}

// Nodes is the atom Nodes(G): all paths of length zero.
type Nodes struct{}

func (Nodes) isPathExpr()    {}
func (Nodes) String() string { return "Nodes(G)" }

// Edges is the atom Edges(G): all paths of length one.
type Edges struct{}

func (Edges) isPathExpr()    {}
func (Edges) String() string { return "Edges(G)" }

// Select is the selection σc(In): the paths of In satisfying Cond.
type Select struct {
	Cond cond.Cond
	In   PathExpr
}

func (Select) isPathExpr() {}

func (s Select) String() string {
	return fmt.Sprintf("σ[%s](%s)", s.Cond, s.In)
}

// Join is the path join L ⋈ R: concatenations p1 ◦ p2 of paths p1 ∈ L,
// p2 ∈ R with Last(p1) = First(p2).
type Join struct {
	L, R PathExpr
}

func (Join) isPathExpr() {}

func (j Join) String() string {
	return fmt.Sprintf("(%s ⋈ %s)", j.L, j.R)
}

// Union is the duplicate-eliminating set union L ∪ R.
type Union struct {
	L, R PathExpr
}

func (Union) isPathExpr() {}

func (u Union) String() string {
	return fmt.Sprintf("(%s ∪ %s)", u.L, u.R)
}

// Direction selects the product-search direction for pattern-shaped
// recursions: Forward seeds the search at path sources and walks out-
// edges; Backward seeds at path targets and walks in-edges over the
// reversed pattern, producing the same path set. The cost-based planner
// (internal/opt) sets Backward when the target side is estimated cheaper;
// it is an execution hint with no semantic content.
type Direction uint8

const (
	// Forward is the default source-seeded search direction.
	Forward Direction = iota
	// Backward seeds the search from path targets over reversed edges.
	Backward
)

// String renders the direction; Forward is the silent default.
func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Recurse is the recursive operator ϕSem(In): the closure of In under path
// join, filtered by the chosen path semantics (§4, Definition 4.1).
type Recurse struct {
	Sem Semantics
	In  PathExpr
	// Dir is the planner's evaluation-direction hint; it never changes
	// the result set (the reference evaluator ignores it).
	Dir Direction
}

func (Recurse) isPathExpr() {}

func (r Recurse) String() string {
	if r.Dir == Backward {
		return fmt.Sprintf("ϕ%s←(%s)", r.Sem, r.In)
	}
	return fmt.Sprintf("ϕ%s(%s)", r.Sem, r.In)
}

// Restrict is ρSem(In): a non-recursive filter keeping only the paths of
// In admitted by the semantics; for Shortest it keeps, per endpoint pair,
// the minimal-length paths of In. The paper needs this operator
// implicitly for §2.3's composition of path queries, where an outer
// restrictor applies to the concatenation of two sub-queries' answers —
// a filter over an existing path set rather than a recursion.
type Restrict struct {
	Sem Semantics
	In  PathExpr
}

func (Restrict) isPathExpr() {}

func (r Restrict) String() string {
	return fmt.Sprintf("ρ%s(%s)", r.Sem, r.In)
}

// GroupBy is γψ(In): organizes a path set into a solution space whose
// partitions and groups are induced by Key (§5.1, Table 4).
type GroupBy struct {
	Key GroupKey
	In  PathExpr
}

func (GroupBy) isSpaceExpr() {}

func (g GroupBy) String() string {
	return fmt.Sprintf("γ%s(%s)", g.Key, g.In)
}

// BottomGroupBy walks a space expression through its OrderBy wrappers to
// the GroupBy at the bottom; ok is false for other shapes. Shared by the
// planner's projection estimate and the engine's explain output.
func BottomGroupBy(e SpaceExpr) (GroupBy, bool) {
	switch x := e.(type) {
	case GroupBy:
		return x, true
	case OrderBy:
		return BottomGroupBy(x.In)
	default:
		return GroupBy{}, false
	}
}

// OrderBy is τθ(In): re-ranks the partitions, groups and/or paths of a
// solution space (§5.2, Table 6).
type OrderBy struct {
	Key OrderKey
	In  SpaceExpr
}

func (OrderBy) isSpaceExpr() {}

func (o OrderBy) String() string {
	return fmt.Sprintf("τ%s(%s)", o.Key, o.In)
}

// Project is π(#P,#G,#A)(In): extracts the first #P partitions, #G groups
// per partition and #A paths per group, in rank order, back into a set of
// paths (§5.3, Algorithm 1).
type Project struct {
	Parts  Count
	Groups Count
	Paths  Count
	In     SpaceExpr
}

func (Project) isPathExpr() {}

func (p Project) String() string {
	return fmt.Sprintf("π(%s,%s,%s)(%s)", p.Parts, p.Groups, p.Paths, p.In)
}

// Count is a projection bound: either * (all) or a positive integer,
// optionally taken in descending rank order. Descending projection is the
// extension the paper's §5.3 anticipates ("Algorithm 1 can be easily
// extended to support the projection ... in descending order"), letting
// pipelines such as "the longest path per group" be expressed.
type Count struct {
	All  bool
	N    int
	Desc bool
}

// AllCount is the * bound.
func AllCount() Count { return Count{All: true} }

// NCount bounds projection to the first n elements in ascending rank.
func NCount(n int) Count { return Count{N: n} }

// Descending flips the bound to take elements from the highest rank down.
func (c Count) Descending() Count {
	c.Desc = true
	return c
}

// Limit resolves the bound against an available count.
func (c Count) Limit(available int) int {
	if c.All || c.N > available {
		return available
	}
	return c.N
}

// String renders * or the integer, with ↓ marking descending order.
func (c Count) String() string {
	s := "*"
	if !c.All {
		s = fmt.Sprintf("%d", c.N)
	}
	if c.Desc {
		s += "↓"
	}
	return s
}

// Equal reports structural equality of two path expressions. Conditions
// are compared by their canonical string rendering.
func Equal(a, b PathExpr) bool {
	switch a := a.(type) {
	case Nodes:
		_, ok := b.(Nodes)
		return ok
	case Edges:
		_, ok := b.(Edges)
		return ok
	case Select:
		bb, ok := b.(Select)
		return ok && a.Cond.String() == bb.Cond.String() && Equal(a.In, bb.In)
	case Join:
		bb, ok := b.(Join)
		return ok && Equal(a.L, bb.L) && Equal(a.R, bb.R)
	case Union:
		bb, ok := b.(Union)
		return ok && Equal(a.L, bb.L) && Equal(a.R, bb.R)
	case Recurse:
		bb, ok := b.(Recurse)
		return ok && a.Sem == bb.Sem && Equal(a.In, bb.In)
	case Restrict:
		bb, ok := b.(Restrict)
		return ok && a.Sem == bb.Sem && Equal(a.In, bb.In)
	case Project:
		bb, ok := b.(Project)
		return ok && a.Parts == bb.Parts && a.Groups == bb.Groups && a.Paths == bb.Paths &&
			EqualSpace(a.In, bb.In)
	default:
		return false
	}
}

// EqualSpace reports structural equality of two space expressions.
func EqualSpace(a, b SpaceExpr) bool {
	switch a := a.(type) {
	case GroupBy:
		bb, ok := b.(GroupBy)
		return ok && a.Key == bb.Key && Equal(a.In, bb.In)
	case OrderBy:
		bb, ok := b.(OrderBy)
		return ok && a.Key == bb.Key && EqualSpace(a.In, bb.In)
	default:
		return false
	}
}

// FormatTree renders a path expression as an indented evaluation tree, in
// the spirit of the paper's Figures 2–5 and the parser output in §7.2.
func FormatTree(e PathExpr) string {
	var sb strings.Builder
	writeTree(&sb, e, 0)
	return sb.String()
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func writeTree(sb *strings.Builder, e PathExpr, depth int) {
	indent(sb, depth)
	switch e := e.(type) {
	case Nodes:
		sb.WriteString("Nodes(G)\n")
	case Edges:
		sb.WriteString("Edges(G)\n")
	case Select:
		fmt.Fprintf(sb, "Select: %s\n", e.Cond)
		writeTree(sb, e.In, depth+1)
	case Join:
		sb.WriteString("Join\n")
		writeTree(sb, e.L, depth+1)
		writeTree(sb, e.R, depth+1)
	case Union:
		sb.WriteString("Union\n")
		writeTree(sb, e.L, depth+1)
		writeTree(sb, e.R, depth+1)
	case Recurse:
		fmt.Fprintf(sb, "Recursive Join (restrictor: %s)\n", strings.ToUpper(e.Sem.String()))
		writeTree(sb, e.In, depth+1)
	case Restrict:
		fmt.Fprintf(sb, "Restrict (%s)\n", strings.ToUpper(e.Sem.String()))
		writeTree(sb, e.In, depth+1)
	case Project:
		fmt.Fprintf(sb, "Projection (%s PARTITIONS %s GROUPS %s PATHS)\n",
			projWord(e.Parts), projWord(e.Groups), projWord(e.Paths))
		writeSpaceTree(sb, e.In, depth+1)
	default:
		fmt.Fprintf(sb, "%s\n", e)
	}
}

func writeSpaceTree(sb *strings.Builder, e SpaceExpr, depth int) {
	indent(sb, depth)
	switch e := e.(type) {
	case GroupBy:
		fmt.Fprintf(sb, "Group (%s)\n", e.Key.Words())
		writeTree(sb, e.In, depth+1)
	case OrderBy:
		fmt.Fprintf(sb, "OrderBy (%s)\n", e.Key.Words())
		writeSpaceTree(sb, e.In, depth+1)
	default:
		fmt.Fprintf(sb, "%s\n", e)
	}
}

func projWord(c Count) string {
	if c.All {
		return "ALL"
	}
	return fmt.Sprintf("%d", c.N)
}
