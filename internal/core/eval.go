package core

import (
	"fmt"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/pathset"
)

// EvalExpr is the reference tree evaluator: a direct recursive descent
// over a logical plan using only this package's definitional operator
// implementations — nested-loop joins, materialized recursion bases, no
// indexes, no automaton, no parallelism. It is deliberately the slowest
// correct evaluator in the repository and serves as the oracle of the
// randomized differential harness: the optimized engine (with and without
// the cost-based planner) must produce exactly this path set.
func EvalExpr(g *graph.Graph, x PathExpr, lim Limits) (*pathset.Set, error) {
	switch x := x.(type) {
	case Nodes:
		return EvalNodes(g), nil
	case Edges:
		return EvalEdges(g), nil
	case Select:
		in, err := EvalExpr(g, x.In, lim)
		if err != nil {
			return nil, err
		}
		return EvalSelect(g, x.Cond, in), nil
	case Join:
		l, err := EvalExpr(g, x.L, lim)
		if err != nil {
			return nil, err
		}
		r, err := EvalExpr(g, x.R, lim)
		if err != nil {
			return nil, err
		}
		return EvalJoin(l, r), nil
	case Union:
		l, err := EvalExpr(g, x.L, lim)
		if err != nil {
			return nil, err
		}
		r, err := EvalExpr(g, x.R, lim)
		if err != nil {
			return nil, err
		}
		return EvalUnion(l, r), nil
	case Recurse:
		base, err := EvalExpr(g, x.In, lim)
		if err != nil {
			return nil, err
		}
		return EvalRecurse(x.Sem, base, lim)
	case Restrict:
		in, err := EvalExpr(g, x.In, lim)
		if err != nil {
			return nil, err
		}
		return EvalRestrict(x.Sem, in), nil
	case Project:
		ss, err := EvalSpaceExpr(g, x.In, lim)
		if err != nil {
			return nil, err
		}
		return EvalProject(x.Parts, x.Groups, x.Paths, ss), nil
	case nil:
		return nil, fmt.Errorf("core: nil path expression")
	default:
		return nil, fmt.Errorf("core: unsupported path expression %T", x)
	}
}

// EvalSpaceExpr is the space-sorted companion of EvalExpr.
func EvalSpaceExpr(g *graph.Graph, x SpaceExpr, lim Limits) (*SolutionSpace, error) {
	switch x := x.(type) {
	case GroupBy:
		in, err := EvalExpr(g, x.In, lim)
		if err != nil {
			return nil, err
		}
		return EvalGroupBy(x.Key, in), nil
	case OrderBy:
		in, err := EvalSpaceExpr(g, x.In, lim)
		if err != nil {
			return nil, err
		}
		return EvalOrderBy(x.Key, in), nil
	case nil:
		return nil, fmt.Errorf("core: nil space expression")
	default:
		return nil, fmt.Errorf("core: unsupported space expression %T", x)
	}
}
