package core

import (
	"pathalgebra/internal/cond"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// This file contains the reference implementations of the core algebra
// operators — direct transcriptions of Definition 3.1. They favour clarity
// over speed and serve as the correctness oracle for the optimized
// executor in internal/engine.

// EvalNodes implements the atom Nodes(G): one length-zero path per node.
func EvalNodes(g *graph.Graph) *pathset.Set {
	out := pathset.New(g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		if !g.NodeAlive(graph.NodeID(i)) {
			continue
		}
		out.Add(path.FromNode(graph.NodeID(i)))
	}
	return out
}

// EvalEdges implements the atom Edges(G): one length-one path per edge.
func EvalEdges(g *graph.Graph) *pathset.Set {
	out := pathset.New(g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		if !g.EdgeAlive(graph.EdgeID(i)) {
			continue
		}
		out.Add(path.FromEdge(g, graph.EdgeID(i)))
	}
	return out
}

// EvalSelect implements σc(S) = {p ∈ S | ev(p, c) = True}.
func EvalSelect(g *graph.Graph, c cond.Cond, s *pathset.Set) *pathset.Set {
	return s.Filter(func(p path.Path) bool { return c.Eval(g, p) })
}

// EvalJoin implements S ⋈ S′ = {p1 ◦ p2 | p1 ∈ S, p2 ∈ S′,
// Last(p1) = First(p2)} by the definition's nested loop.
func EvalJoin(s, t *pathset.Set) *pathset.Set {
	out := pathset.New(s.Len())
	for _, p1 := range s.Paths() {
		for _, p2 := range t.Paths() {
			if p1.CanConcat(p2) {
				out.Add(p1.Concat(p2))
			}
		}
	}
	return out
}

// EvalUnion implements S ∪ S′ with duplicate elimination.
func EvalUnion(s, t *pathset.Set) *pathset.Set {
	return pathset.Union(s, t)
}

// EvalRestrict implements ρSem(S): the paths of S admitted by the
// semantics. Unlike ϕ it performs no recursion — it is the filter §2.3
// needs when an outer restrictor applies to the concatenation of two
// sub-queries' answer sets. Under Shortest it keeps, for every endpoint
// pair occurring in S, exactly the minimal-length paths of S.
func EvalRestrict(sem Semantics, s *pathset.Set) *pathset.Set {
	if sem != Shortest {
		return s.Filter(sem.Admits)
	}
	best := make(map[[2]graph.NodeID]int, s.Len())
	for _, p := range s.Paths() {
		k := [2]graph.NodeID{p.First(), p.Last()}
		if m, ok := best[k]; !ok || p.Len() < m {
			best[k] = p.Len()
		}
	}
	return s.Filter(func(p path.Path) bool {
		return p.Len() == best[[2]graph.NodeID{p.First(), p.Last()}]
	})
}

// Admits reports whether the given semantics admits path p. For Walk the
// answer is always true; Shortest is a property of a whole path set, not
// of a single path, and is handled inside the recursive operator.
func (s Semantics) Admits(p path.Path) bool {
	switch s {
	case Walk, Shortest:
		return true
	case Trail:
		return p.IsTrail()
	case Acyclic:
		return p.IsAcyclic()
	case Simple:
		return p.IsSimple()
	default:
		return false
	}
}
