// Package core implements the path algebra that is the paper's primary
// contribution: the core operators σ (selection), ⋈ (join) and ∪ (union)
// over sets of paths (§3), the recursive operator ϕ under the five path
// semantics Walk/Trail/Acyclic/Simple/Shortest (§4), and the extended
// algebra of solution spaces with γ (group-by), τ (order-by) and π
// (projection) (§5).
//
// The package has two layers:
//
//   - Expression trees (expr.go): the logical-plan representation. Plans
//     are two-sorted — PathExpr nodes evaluate to sets of paths, SpaceExpr
//     nodes to solution spaces — so ill-sorted plans are unrepresentable.
//   - Reference operator implementations (ops.go, recurse.go, space.go):
//     direct transcriptions of the paper's definitions, used as the
//     correctness oracle. The optimized executor lives in internal/engine
//     and is cross-checked against these in tests.
package core

import "fmt"

// Semantics selects the path semantics of the recursive operator ϕ,
// mirroring the GQL restrictors (§4, Table 2).
type Semantics uint8

const (
	// Walk admits every path (GQL's WALK restrictor; may be infinite on
	// cyclic graphs, so evaluation requires a budget).
	Walk Semantics = iota
	// Trail admits paths with no repeated edge.
	Trail
	// Acyclic admits paths with no repeated node.
	Acyclic
	// Simple admits paths with no repeated node except that the first and
	// last node may coincide.
	Simple
	// Shortest admits, for each (first, last) node pair, exactly the walks
	// of minimal length between them.
	Shortest
)

// String renders the semantics in the paper's subscript notation.
func (s Semantics) String() string {
	switch s {
	case Walk:
		return "Walk"
	case Trail:
		return "Trail"
	case Acyclic:
		return "Acyclic"
	case Simple:
		return "Simple"
	case Shortest:
		return "Shortest"
	default:
		return fmt.Sprintf("Semantics(%d)", uint8(s))
	}
}

// ParseSemantics maps a GQL restrictor keyword to a Semantics value.
// It accepts the paper's extended restrictor set (§7.1), which adds
// SHORTEST to the four standard restrictors.
func ParseSemantics(keyword string) (Semantics, error) {
	switch keyword {
	case "WALK", "Walk", "walk":
		return Walk, nil
	case "TRAIL", "Trail", "trail":
		return Trail, nil
	case "ACYCLIC", "Acyclic", "acyclic":
		return Acyclic, nil
	case "SIMPLE", "Simple", "simple":
		return Simple, nil
	case "SHORTEST", "Shortest", "shortest":
		return Shortest, nil
	default:
		return 0, fmt.Errorf("core: unknown restrictor %q", keyword)
	}
}

// AllSemantics lists the five semantics in the paper's order (Table 3
// columns W, T, A, S, Sh).
func AllSemantics() []Semantics {
	return []Semantics{Walk, Trail, Acyclic, Simple, Shortest}
}
