package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// Limits bounds the evaluation of the recursive operator. The paper notes
// (§4) that ϕWalk on a cyclic graph never halts and that GQL copes by
// forcing a selector; this package copes by making every recursion run
// under an explicit budget.
type Limits struct {
	// MaxLen caps the edge length of generated paths; <= 0 means no cap.
	MaxLen int
	// MaxPaths caps the number of result paths; <= 0 selects
	// DefaultMaxPaths. Exceeding it aborts with ErrBudgetExceeded, so a
	// diverging ϕWalk fails loudly instead of hanging.
	MaxPaths int
	// MaxWork caps the total number of node slots materialized across all
	// result paths (Σ Len(p)+1); <= 0 selects DefaultMaxWork. A path
	// count alone is not enough: on a thin cycle the number of walks
	// grows only linearly with their length, so a runaway ϕWalk would
	// burn quadratic time and memory long before reaching MaxPaths.
	MaxWork int
}

// DefaultMaxPaths is the result-size safety net applied when Limits.
// MaxPaths is unset.
const DefaultMaxPaths = 1 << 20

// DefaultMaxWork is the materialization safety net applied when Limits.
// MaxWork is unset: at most ~16M node slots (≈128 MB of path data).
const DefaultMaxWork = 1 << 24

// ErrBudgetExceeded reports that a recursion produced more paths than its
// budget allows. For ϕWalk over a cyclic input this is the expected
// outcome unless MaxLen is set; the paper's Table 3 marks such queries as
// having "an infinite number of solutions".
var ErrBudgetExceeded = errors.New("core: recursion exceeded its path budget (ϕWalk over a cyclic input is infinite; set Limits.MaxLen or use a restrictive semantics)")

// budgetErr resolves the typed error behind a failed budget charge —
// the cancellation cause or ErrBudgetExceeded. A charge only fails
// over-limit or cancelled, so the fallback is defensive.
func budgetErr(b *Budget) error {
	if err := b.Err(); err != nil {
		return err
	}
	return ErrBudgetExceeded
}

func (l Limits) maxPaths() int {
	if l.MaxPaths <= 0 {
		return DefaultMaxPaths
	}
	return l.MaxPaths
}

func (l Limits) maxWork() int {
	if l.MaxWork <= 0 {
		return DefaultMaxWork
	}
	return l.MaxWork
}

func (l Limits) withinLen(p path.Path) bool {
	return l.MaxLen <= 0 || p.Len() <= l.MaxLen
}

// EvalRecurse implements the recursive operator ϕSem(S) of Definition 4.1:
// the closure of S under path join, restricted to paths admitted by the
// semantics. The result always contains the admissible paths of S itself
// (the definition's base case ϕ0).
//
// Trail, Acyclic and Simple prune during expansion: every prefix of an
// admissible path is itself admissible (trails/acyclic trivially; a simple
// path only closes its cycle at the very last node, so proper prefixes are
// acyclic), hence frontier filtering loses no answers. Shortest uses a
// uniform-cost search; see evalShortest. Walk enumerates under Limits.
//
// The closure frontier lives in a prefix-sharing path.Arena: a join step
// appends only the joined base path's edges (sharing the whole left-hand
// prefix), admissibility is checked incrementally edge-by-edge against the
// parent chain instead of re-deriving a repetition map per candidate, and
// rejected or duplicate candidates roll back via arena truncation, so they
// cost no retained memory at all. Candidates materialize slices only on
// admission into the result set.
func EvalRecurse(sem Semantics, base *pathset.Set, lim Limits) (*pathset.Set, error) {
	return EvalRecurseBudget(sem, base, lim, NewBudget(lim))
}

// EvalRecurseCtx is EvalRecurse with cooperative cancellation: the
// recursion aborts promptly — at its next budget charge — once ctx is
// cancelled, returning ctx's cause (errors.Is-able as context.Canceled or
// context.DeadlineExceeded).
func EvalRecurseCtx(ctx context.Context, sem Semantics, base *pathset.Set, lim Limits) (*pathset.Set, error) {
	bud := NewBudget(lim)
	stop := bud.Watch(ctx)
	defer stop()
	return EvalRecurseBudget(sem, base, lim, bud)
}

// EvalRecurseBudget is EvalRecurse charging a caller-supplied budget,
// which may be shared with other operators or cancelled concurrently
// (Budget.Cancel / Budget.Watch). On a failed charge the returned error is
// bud.Err(): ErrBudgetExceeded or the cancellation cause.
func EvalRecurseBudget(sem Semantics, base *pathset.Set, lim Limits, bud *Budget) (*pathset.Set, error) {
	if sem == Shortest {
		return evalShortest(base, lim, bud)
	}
	admissible := base.Filter(sem.Admits).Filter(lim.withinLen)
	result := admissible.Clone()
	for _, p := range result.Paths() {
		if !bud.ChargePath(p.Len()) {
			return result, budgetErr(bud)
		}
	}

	basePaths := admissible.Paths()
	byFirst := indexByFirst(basePaths)

	arena := path.NewArena(2 * len(basePaths))
	frontier := make([]path.Ref, 0, len(basePaths))
	for _, p := range basePaths {
		// Seeding materializes a search state per base path; charge it as
		// work so MaxWork bounds the arena even before any extension.
		if !bud.ChargeWork(p.Len()) {
			return result, budgetErr(bud)
		}
		frontier = append(frontier, arena.FromPath(p))
	}
	// next reuses its storage across rounds via the swap below.
	next := make([]path.Ref, 0, len(frontier))
	for len(frontier) > 0 {
		next = next[:0]
		for _, r := range frontier {
			if bud.Cancelled() {
				return result, budgetErr(bud)
			}
			if sem == Simple && arena.PathLen(r) > 0 && arena.First(r) == arena.Last(r) {
				// A closed simple cycle cannot extend to another simple
				// path: its first node would repeat in the interior.
				continue
			}
			for _, bi := range byFirst[arena.Last(r)] {
				mark := arena.Len()
				q, ok := appendJoin(arena, r, basePaths[bi], sem, lim)
				if !ok {
					arena.TruncateTo(mark)
					continue
				}
				if result.AddArena(arena, q) {
					next = append(next, q)
					if !bud.ChargePath(arena.PathLen(q)) {
						return result, budgetErr(bud)
					}
				} else {
					arena.TruncateTo(mark)
				}
			}
		}
		frontier, next = next, frontier
	}
	return result, nil
}

// appendJoin computes r ◦ b in the arena, one edge at a time, aborting as
// soon as the growing path violates the semantics or the length bound.
// The incremental checks are exact because r is admissible (frontier
// invariant; closed Simple cycles are filtered by the caller): a trail
// stays a trail iff the appended edge is fresh, an acyclic path stays
// acyclic iff the appended node is fresh, and a simple path may repeat a
// node only by closing the cycle at its very last position. On !ok the
// caller truncates the arena back to its pre-call length.
func appendJoin(a *path.Arena, r path.Ref, b path.Path, sem Semantics, lim Limits) (path.Ref, bool) {
	if lim.MaxLen > 0 && a.PathLen(r)+b.Len() > lim.MaxLen {
		return r, false
	}
	edges, nodes := b.Edges(), b.Nodes()
	cur := r
	for i, e := range edges {
		dst := nodes[i+1]
		switch sem {
		case Trail:
			if a.ContainsEdge(cur, e) {
				return cur, false
			}
		case Acyclic:
			if a.ContainsNode(cur, dst) {
				return cur, false
			}
		case Simple:
			if a.ContainsNode(cur, dst) && (i != len(edges)-1 || dst != a.First(cur)) {
				return cur, false
			}
		}
		cur = a.Extend(cur, e, dst)
	}
	return cur, true
}

// indexByFirst indexes the positive-length paths of ps by their first node,
// as positions into ps (cheaper than bucketing path values). Zero-length
// paths are omitted: p ◦ (n) = p, so they never create new paths during
// expansion (they are already in the result via ϕ0).
func indexByFirst(ps []path.Path) map[graph.NodeID][]int32 {
	idx := make(map[graph.NodeID][]int32)
	for i, p := range ps {
		if p.Len() == 0 {
			continue
		}
		idx[p.First()] = append(idx[p.First()], int32(i))
	}
	return idx
}

type endpointPair struct {
	s, t graph.NodeID
}

// pathHeap orders paths by (length, canonical sequence) for uniform-cost
// search.
type pathHeap []path.Path

func (h pathHeap) Len() int { return len(h) }
func (h pathHeap) Less(i, j int) bool {
	return path.Compare(h[i], h[j]) < 0
}
func (h pathHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x any)   { *h = append(*h, x.(path.Path)) }
func (h *pathHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// evalShortest implements ϕShortest(S): for every endpoint pair (s, t)
// connected by the join-closure of S, all closure paths of minimal length.
//
// It runs a uniform-cost search over the closure. Because concatenation
// lengths are non-negative, every prefix (along base-path boundaries) of a
// minimal-length closure path is itself minimal for its own endpoint pair
// — the classical cut-and-paste argument — so paths that pop longer than
// the established minimum for their pair can be discarded without losing
// any shortest path. The search therefore terminates even on cyclic
// inputs: only minimal paths are ever extended, and for a fixed pair only
// finitely many walks share the minimal length.
func evalShortest(base *pathset.Set, lim Limits, bud *Budget) (*pathset.Set, error) {
	result := pathset.New(base.Len())
	basePaths := base.Paths()
	byFirst := indexByFirst(basePaths)

	h := &pathHeap{}
	visited := pathset.New(base.Len())
	for _, p := range base.Paths() {
		if lim.withinLen(p) && visited.Add(p) {
			// Each queued path is a materialized search state: charge it
			// as work so MaxWork bounds heap + visited-set growth.
			if !bud.ChargeWork(p.Len()) {
				return result, budgetErr(bud)
			}
			heap.Push(h, p)
		}
	}

	best := make(map[endpointPair]int)
	for h.Len() > 0 {
		if bud.Cancelled() {
			return result, budgetErr(bud)
		}
		p := heap.Pop(h).(path.Path)
		pair := endpointPair{p.First(), p.Last()}
		if b, known := best[pair]; known && p.Len() > b {
			continue // strictly longer than the minimum for this pair
		}
		best[pair] = p.Len()
		if result.Add(p) && !bud.ChargePath(p.Len()) {
			return result, budgetErr(bud)
		}
		for _, bi := range byFirst[p.Last()] {
			q := p.Concat(basePaths[bi])
			if lim.withinLen(q) && visited.Add(q) {
				// Concat materialized q and visited retains it; uncharged,
				// a cyclic closure could grow both past MaxWork unchecked.
				if !bud.ChargeWork(q.Len()) {
					return result, budgetErr(bud)
				}
				heap.Push(h, q)
			}
		}
	}
	return result, nil
}

// KleenePlus is a convenience wrapper for ϕSem(S): the "one or more"
// closure corresponding to a regular-expression +.
func KleenePlus(sem Semantics, base *pathset.Set, lim Limits) (*pathset.Set, error) {
	return EvalRecurse(sem, base, lim)
}

// KleeneStar computes ϕSem(S) ∪ Nodes(G): the "zero or more" closure
// corresponding to a regular-expression *, which the paper expresses as a
// union with the length-zero paths (Figure 4).
func KleeneStar(g *graph.Graph, sem Semantics, base *pathset.Set, lim Limits) (*pathset.Set, error) {
	plus, err := EvalRecurse(sem, base, lim)
	if err != nil {
		return plus, err
	}
	return EvalUnion(plus, EvalNodes(g)), nil
}

// CheckedRecurse evaluates ϕ and decorates budget errors with the operator
// rendering, for friendlier engine errors.
func CheckedRecurse(sem Semantics, base *pathset.Set, lim Limits) (*pathset.Set, error) {
	out, err := EvalRecurse(sem, base, lim)
	if err != nil {
		return out, fmt.Errorf("evaluating ϕ%s: %w", sem, err)
	}
	return out, nil
}
