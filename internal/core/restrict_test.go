package core

import (
	"strings"
	"testing"

	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// boundedWalks computes Knows+ walks up to length 4 on Figure 1 — a mixed
// bag containing trails, cycles and edge-repeating walks.
func boundedWalks(t *testing.T) *pathset.Set {
	t.Helper()
	g := ldbc.Figure1()
	s, err := EvalRecurse(Walk, knowsEdges(g), Limits{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRestrictFilters(t *testing.T) {
	g := ldbc.Figure1()
	walks := boundedWalks(t)
	for _, sem := range []Semantics{Trail, Acyclic, Simple} {
		got := EvalRestrict(sem, walks)
		for _, p := range got.Paths() {
			if !sem.Admits(p) {
				t.Errorf("ρ%s kept inadmissible path %s", sem, p.Format(g))
			}
		}
		want := walks.Filter(sem.Admits)
		if !got.Equal(want) {
			t.Errorf("ρ%s: %d paths, want %d", sem, got.Len(), want.Len())
		}
	}
	if !EvalRestrict(Walk, walks).Equal(walks) {
		t.Error("ρWalk must be the identity")
	}
}

func TestRestrictShortestPerPair(t *testing.T) {
	g := ldbc.Figure1()
	walks := boundedWalks(t)
	got := EvalRestrict(Shortest, walks)
	// Per endpoint pair, only minimal-length members of the INPUT set.
	type pair struct{ s, t string }
	min := map[pair]int{}
	for _, p := range walks.Paths() {
		k := pair{g.Node(p.First()).Key, g.Node(p.Last()).Key}
		if m, ok := min[k]; !ok || p.Len() < m {
			min[k] = p.Len()
		}
	}
	for _, p := range got.Paths() {
		k := pair{g.Node(p.First()).Key, g.Node(p.Last()).Key}
		if p.Len() != min[k] {
			t.Errorf("ρShortest kept non-minimal %s (len %d, min %d)", p.Format(g), p.Len(), min[k])
		}
	}
	for _, p := range walks.Paths() {
		k := pair{g.Node(p.First()).Key, g.Node(p.Last()).Key}
		if p.Len() == min[k] && !got.Contains(p) {
			t.Errorf("ρShortest dropped minimal %s", p.Format(g))
		}
	}
	// ρShortest(ϕWalk-bounded) equals ϕShortest here because every
	// per-pair minimum is within the bound.
	phi, err := EvalRecurse(Shortest, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(phi) {
		t.Errorf("ρShortest(walks≤4) =\n%s\nϕShortest =\n%s", got.Format(g), phi.Format(g))
	}
}

func TestRestrictExprString(t *testing.T) {
	e := Restrict{Sem: Trail, In: Edges{}}
	if e.String() != "ρTrail(Edges(G))" {
		t.Errorf("String = %q", e.String())
	}
	if !Equal(e, Restrict{Sem: Trail, In: Edges{}}) {
		t.Error("equal Restricts must be Equal")
	}
	if Equal(e, Restrict{Sem: Simple, In: Edges{}}) {
		t.Error("different semantics must differ")
	}
	if Equal(e, Recurse{Sem: Trail, In: Edges{}}) {
		t.Error("Restrict != Recurse")
	}
}

func TestDescendingProjection(t *testing.T) {
	g := ldbc.Figure1()
	trails, err := EvalRecurse(Trail, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	ss := EvalOrderBy(OrderPath, EvalGroupBy(GroupST, trails))

	// Ascending: the shortest trail per partition; descending: the
	// longest.
	shortest := EvalProject(AllCount(), AllCount(), NCount(1), ss)
	longest := EvalProject(AllCount(), AllCount(), NCount(1).Descending(), ss)
	if shortest.Equal(longest) {
		t.Fatal("ascending and descending projections agree; graph should distinguish them")
	}
	// n1→n2 partition: shortest is p1 (len 1), longest is p2 (len 3).
	p1 := path.MustFromKeys(g, "n1", "e1", "n2")
	p2 := path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2")
	if !shortest.Contains(p1) || shortest.Contains(p2) {
		t.Error("ascending projection should pick p1 for (n1,n2)")
	}
	if !longest.Contains(p2) || longest.Contains(p1) {
		t.Error("descending projection should pick p2 for (n1,n2)")
	}
	// Both directions keep all partitions.
	if shortest.Len() != longest.Len() {
		t.Errorf("partition counts differ: %d vs %d", shortest.Len(), longest.Len())
	}
}

func TestDescendingGroupProjection(t *testing.T) {
	g := ldbc.Figure1()
	trails, err := EvalRecurse(Trail, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// γL + τG: groups by length; descending 1 group = the longest-length
	// group.
	ss := EvalOrderBy(OrderGroup, EvalGroupBy(GroupLength, trails))
	top := EvalProject(AllCount(), NCount(1).Descending(), AllCount(), ss)
	maxLen := 0
	for _, p := range trails.Paths() {
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
	}
	for _, p := range top.Paths() {
		if p.Len() != maxLen {
			t.Errorf("descending group projection kept length %d, want only %d", p.Len(), maxLen)
		}
	}
	if top.Len() == 0 {
		t.Fatal("descending group projection returned nothing")
	}
}

func TestCountDescString(t *testing.T) {
	if got := NCount(3).Descending().String(); got != "3↓" {
		t.Errorf("String = %q, want 3↓", got)
	}
	if got := AllCount().Descending().String(); got != "*↓" {
		t.Errorf("String = %q, want *↓", got)
	}
	if NCount(2).Descending().Limit(5) != 2 {
		t.Error("Desc must not change Limit")
	}
}

func TestRestrictFormatTree(t *testing.T) {
	tree := FormatTree(Restrict{Sem: Shortest, In: Join{L: Edges{}, R: Edges{}}})
	if want := "Restrict (SHORTEST)"; !strings.Contains(tree, want) {
		t.Errorf("FormatTree missing %q:\n%s", want, tree)
	}
}
