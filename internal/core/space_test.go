package core

import (
	"strings"
	"testing"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// trailsKnows evaluates ϕTrail(σ[Knows](Edges(G))) on Figure 1 — the input
// of the paper's §5 worked example (Figure 5, steps 1–3).
func trailsKnows(t *testing.T, g *graph.Graph) *pathset.Set {
	t.Helper()
	s, err := EvalRecurse(Trail, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatalf("ϕTrail: %v", err)
	}
	return s
}

// table3Trails returns, in Table 3 order, the ten trails the paper's §5
// example works with: {p1, p2, p3, p5, p6, p7, p9, p11, p12, p13}.
func table3Trails(t *testing.T, g *graph.Graph) *pathset.Set {
	t.Helper()
	s := pathset.New(10)
	for _, keys := range [][]string{
		{"n1", "e1", "n2"},
		{"n1", "e1", "n2", "e2", "n3", "e3", "n2"},
		{"n1", "e1", "n2", "e2", "n3"},
		{"n1", "e1", "n2", "e4", "n4"},
		{"n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"},
		{"n2", "e2", "n3", "e3", "n2"},
		{"n2", "e2", "n3"},
		{"n2", "e4", "n4"},
		{"n2", "e2", "n3", "e3", "n2", "e4", "n4"},
		{"n3", "e3", "n2", "e4", "n4"},
	} {
		s.Add(path.MustFromKeys(g, keys...))
	}
	return s
}

// TestTable4SpaceShapes reproduces the paper's Table 4: the partition and
// group organization induced by each of the 8 group-by keys, evaluated on
// the Table 3 trail set.
func TestTable4SpaceShapes(t *testing.T) {
	g := ldbc.Figure1()
	in := table3Trails(t, g)
	// The trail set has sources {n1,n2,n3}, targets {n2,n3,n4}, lengths
	// {1,2,3,4}, source-target pairs 7, and per-key group counts below.
	tests := []struct {
		key        GroupKey
		partitions int
		groups     int
	}{
		{GroupNone, 1, 1},
		{GroupSource, 3, 3},               // one group per partition
		{GroupTarget, 3, 3},               // one group per partition
		{GroupLength, 1, 4},               // one partition, M groups
		{GroupST, 7, 7},                   // one group per (s,t) partition
		{GroupSource | GroupLength, 3, 8}, // n1:{1,2,3,4} n2:{1,2,3} n3:{2}
		{GroupTarget | GroupLength, 3, 9}, // n2:{1,2,3} n3:{1,2} n4:{1,2,3,4}
		{GroupSTL, 7, 10},                 // every (s,t,l) combination
	}
	for _, tc := range tests {
		ss := EvalGroupBy(tc.key, in)
		if len(ss.Partitions) != tc.partitions {
			t.Errorf("γ%s: %d partitions, want %d", tc.key, len(ss.Partitions), tc.partitions)
		}
		if ss.NumGroups() != tc.groups {
			t.Errorf("γ%s: %d groups, want %d", tc.key, ss.NumGroups(), tc.groups)
		}
		if ss.NumPaths() != in.Len() {
			t.Errorf("γ%s lost paths: %d, want %d", tc.key, ss.NumPaths(), in.Len())
		}
		if !ss.AllPaths().Equal(in) {
			t.Errorf("γ%s changed the path set", tc.key)
		}
		// Fresh spaces are unordered: all ranks are 1.
		for _, p := range ss.Partitions {
			if p.Rank != 1 {
				t.Errorf("γ%s: partition rank %d, want 1", tc.key, p.Rank)
			}
			for _, grp := range p.Groups {
				if grp.Rank != 1 {
					t.Errorf("γ%s: group rank %d, want 1", tc.key, grp.Rank)
				}
				for _, rp := range grp.Paths {
					if rp.Rank != 1 {
						t.Errorf("γ%s: path rank %d, want 1", tc.key, rp.Rank)
					}
				}
			}
		}
	}
}

// TestTable5SolutionSpace reproduces the paper's Table 5: γST over the
// Table 3 trails yields 7 partitions with the listed members and MinL
// values.
func TestTable5SolutionSpace(t *testing.T) {
	g := ldbc.Figure1()
	in := table3Trails(t, g)
	ss := EvalGroupBy(GroupST, in)
	if len(ss.Partitions) != 7 {
		t.Fatalf("γST produced %d partitions, want 7", len(ss.Partitions))
	}
	// Expected rows, keyed by (source, target): member paths (by keys)
	// and the partition MinL from Table 5.
	type row struct {
		src, dst string
		members  [][]string
		minл     int
	}
	rows := []row{
		{"n1", "n2", [][]string{{"n1", "e1", "n2"}, {"n1", "e1", "n2", "e2", "n3", "e3", "n2"}}, 1},
		{"n1", "n3", [][]string{{"n1", "e1", "n2", "e2", "n3"}}, 2},
		{"n1", "n4", [][]string{{"n1", "e1", "n2", "e4", "n4"}, {"n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"}}, 2},
		{"n2", "n2", [][]string{{"n2", "e2", "n3", "e3", "n2"}}, 2},
		{"n2", "n3", [][]string{{"n2", "e2", "n3"}}, 1},
		{"n2", "n4", [][]string{{"n2", "e4", "n4"}, {"n2", "e2", "n3", "e3", "n2", "e4", "n4"}}, 1},
		{"n3", "n4", [][]string{{"n3", "e3", "n2", "e4", "n4"}}, 2},
	}
	for _, want := range rows {
		src, _ := g.NodeByKey(want.src)
		dst, _ := g.NodeByKey(want.dst)
		var part *Partition
		for _, p := range ss.Partitions {
			if p.Source == src.ID && p.Target == dst.ID {
				part = p
				break
			}
		}
		if part == nil {
			t.Errorf("no partition for (%s, %s)", want.src, want.dst)
			continue
		}
		if !part.HasSource || !part.HasTarget {
			t.Errorf("(%s,%s): partition endpoints not marked", want.src, want.dst)
		}
		if len(part.Groups) != 1 {
			t.Errorf("(%s,%s): %d groups, want 1 (γST has one group per partition)",
				want.src, want.dst, len(part.Groups))
			continue
		}
		grp := part.Groups[0]
		if len(grp.Paths) != len(want.members) {
			t.Errorf("(%s,%s): %d paths, want %d", want.src, want.dst, len(grp.Paths), len(want.members))
			continue
		}
		members := pathset.New(len(grp.Paths))
		for _, rp := range grp.Paths {
			members.Add(rp.Path)
		}
		for _, keys := range want.members {
			if !members.Contains(path.MustFromKeys(g, keys...)) {
				t.Errorf("(%s,%s): missing member %v", want.src, want.dst, keys)
			}
		}
		if got := part.MinLen(); got != want.minл {
			t.Errorf("(%s,%s): MinL(P) = %d, want %d", want.src, want.dst, got, want.minл)
		}
		if got := grp.MinLen(); got != want.minл {
			t.Errorf("(%s,%s): MinL(G) = %d, want %d", want.src, want.dst, got, want.minл)
		}
	}
}

// TestTable6OrderBySemantics reproduces the paper's Table 6: which ranks
// each τθ variant refreshes and which it carries over.
func TestTable6OrderBySemantics(t *testing.T) {
	g := ldbc.Figure1()
	in := table3Trails(t, g)
	base := EvalGroupBy(GroupST, in)

	for _, key := range AllOrderKeys() {
		out := EvalOrderBy(key, base)
		for _, p := range out.Partitions {
			wantP := 1
			if key&OrderPartition != 0 {
				wantP = p.MinLen()
			}
			if p.Rank != wantP {
				t.Errorf("τ%s: partition rank %d, want %d", key, p.Rank, wantP)
			}
			for _, grp := range p.Groups {
				wantG := 1
				if key&OrderGroup != 0 {
					wantG = grp.MinLen()
				}
				if grp.Rank != wantG {
					t.Errorf("τ%s: group rank %d, want %d", key, grp.Rank, wantG)
				}
				for _, rp := range grp.Paths {
					wantA := 1
					if key&OrderPath != 0 {
						wantA = rp.Path.Len()
					}
					if rp.Rank != wantA {
						t.Errorf("τ%s: path rank %d, want %d", key, rp.Rank, wantA)
					}
				}
			}
		}
	}
	// τ must not mutate its input space.
	for _, p := range base.Partitions {
		if p.Rank != 1 {
			t.Fatal("EvalOrderBy mutated its input")
		}
	}
}

// TestFigure5Pipeline reproduces the full §5 worked example:
// π(*,*,1)(τA(γST(ϕTrail(σ[Knows](Edges(G)))))) = {p1,p3,p5,p7,p9,p11,p13}.
func TestFigure5Pipeline(t *testing.T) {
	g := ldbc.Figure1()
	trails := trailsKnows(t, g)
	ss := EvalGroupBy(GroupST, trails)
	ss = EvalOrderBy(OrderPath, ss)
	got := EvalProject(AllCount(), AllCount(), NCount(1), ss)

	// The paper's example works over its 10 listed trails; the full trail
	// set adds the n3→n2 and n3→n3 partitions, whose shortest trails are
	// (n3,e3,n2) and (n3,e3,n2,e2,n3). The projected set is the paper's
	// {p1,p3,p5,p7,p9,p11,p13} plus those two.
	want := pathset.FromPaths(
		path.MustFromKeys(g, "n1", "e1", "n2"),             // p1
		path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"), // p3
		path.MustFromKeys(g, "n1", "e1", "n2", "e4", "n4"), // p5
		path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2"), // p7
		path.MustFromKeys(g, "n2", "e2", "n3"),             // p9
		path.MustFromKeys(g, "n2", "e4", "n4"),             // p11
		path.MustFromKeys(g, "n3", "e3", "n2", "e4", "n4"), // p13
		path.MustFromKeys(g, "n3", "e3", "n2"),
		path.MustFromKeys(g, "n3", "e3", "n2", "e2", "n3"),
	)
	if !got.Equal(want) {
		t.Errorf("Figure 5 pipeline =\n%s\nwant\n%s", got.Format(g), want.Format(g))
	}

	// Restricted to the paper's own 10-trail input, the result is exactly
	// the paper's answer set.
	ss10 := EvalGroupBy(GroupST, table3Trails(t, g))
	ss10 = EvalOrderBy(OrderPath, ss10)
	got10 := EvalProject(AllCount(), AllCount(), NCount(1), ss10)
	want10 := pathset.FromPaths(
		path.MustFromKeys(g, "n1", "e1", "n2"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e4", "n4"),
		path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2"),
		path.MustFromKeys(g, "n2", "e2", "n3"),
		path.MustFromKeys(g, "n2", "e4", "n4"),
		path.MustFromKeys(g, "n3", "e3", "n2", "e4", "n4"),
	)
	if !got10.Equal(want10) {
		t.Errorf("paper's 10-trail pipeline =\n%s\nwant {p1,p3,p5,p7,p9,p11,p13}", got10.Format(g))
	}
}

// TestProjectionBounds exercises Algorithm 1's truncation logic.
func TestProjectionBounds(t *testing.T) {
	g := ldbc.Figure1()
	in := table3Trails(t, g)
	ss := EvalOrderBy(OrderPartition|OrderGroup|OrderPath, EvalGroupBy(GroupST, in))

	if got := EvalProject(AllCount(), AllCount(), AllCount(), ss); !got.Equal(in) {
		t.Error("π(*,*,*) must return every path")
	}
	if got := EvalProject(NCount(3), AllCount(), AllCount(), ss); got.Len() >= in.Len() {
		t.Error("π(3,*,*) must drop some partitions")
	}
	// Bounds larger than available keep everything ("if fewer than k,
	// then all are retained").
	if got := EvalProject(NCount(100), NCount(100), NCount(100), ss); !got.Equal(in) {
		t.Error("oversized bounds must retain all paths")
	}
	// One partition, one group, one path: the globally shortest trail.
	got := EvalProject(NCount(1), NCount(1), NCount(1), ss)
	if got.Len() != 1 {
		t.Fatalf("π(1,1,1) returned %d paths", got.Len())
	}
	if got.Paths()[0].Len() != 1 {
		t.Errorf("π(1,1,1) after full ordering must return a length-1 path, got %s",
			got.Paths()[0].Format(g))
	}
}

// TestProjectionStability: with equal ranks, projection respects the
// space's construction order, making ANY-style selectors reproducible.
func TestProjectionStability(t *testing.T) {
	g := ldbc.Figure1()
	in := table3Trails(t, g)
	ss := EvalGroupBy(GroupST, in) // all ranks 1: fully tied
	got := EvalProject(AllCount(), AllCount(), NCount(1), ss)
	// The first path of each partition in insertion order: p1, p3, p5,
	// p7, p9, p11, p13 (insertion follows Table 3 order).
	want := pathset.FromPaths(
		path.MustFromKeys(g, "n1", "e1", "n2"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e4", "n4"),
		path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2"),
		path.MustFromKeys(g, "n2", "e2", "n3"),
		path.MustFromKeys(g, "n2", "e4", "n4"),
		path.MustFromKeys(g, "n3", "e3", "n2", "e4", "n4"),
	)
	if !got.Equal(want) {
		t.Errorf("tied projection =\n%s\nwant first-inserted per partition", got.Format(g))
	}
}

func TestGroupKeyStrings(t *testing.T) {
	tests := map[GroupKey][2]string{
		GroupNone:                 {"∅", "None"},
		GroupSource:               {"S", "Source"},
		GroupTarget:               {"T", "Target"},
		GroupLength:               {"L", "Length"},
		GroupST:                   {"ST", "Source Target"},
		GroupSource | GroupLength: {"SL", "Source Length"},
		GroupTarget | GroupLength: {"TL", "Target Length"},
		GroupSTL:                  {"STL", "Source Target Length"},
	}
	for k, want := range tests {
		if k.String() != want[0] {
			t.Errorf("GroupKey %d String = %q, want %q", k, k.String(), want[0])
		}
		if k.Words() != want[1] {
			t.Errorf("GroupKey %d Words = %q, want %q", k, k.Words(), want[1])
		}
	}
	if len(AllGroupKeys()) != 8 {
		t.Error("AllGroupKeys must list 8 keys (Table 4)")
	}
}

func TestOrderKeyStrings(t *testing.T) {
	tests := map[OrderKey][2]string{
		OrderPartition:                          {"P", "Partition"},
		OrderGroup:                              {"G", "Group"},
		OrderPath:                               {"A", "Path"},
		OrderPartition | OrderGroup:             {"PG", "Partition Group"},
		OrderPartition | OrderPath:              {"PA", "Partition Path"},
		OrderGroup | OrderPath:                  {"GA", "Group Path"},
		OrderPartition | OrderGroup | OrderPath: {"PGA", "Partition Group Path"},
	}
	for k, want := range tests {
		if k.String() != want[0] {
			t.Errorf("OrderKey %d String = %q, want %q", k, k.String(), want[0])
		}
		if k.Words() != want[1] {
			t.Errorf("OrderKey %d Words = %q, want %q", k, k.Words(), want[1])
		}
	}
	if OrderKey(0).String() != "∅" || OrderKey(0).Words() != "None" {
		t.Error("empty OrderKey rendering")
	}
	if len(AllOrderKeys()) != 7 {
		t.Error("AllOrderKeys must list 7 keys (Table 6)")
	}
}

func TestSpaceFormat(t *testing.T) {
	g := ldbc.Figure1()
	ss := EvalGroupBy(GroupST, table3Trails(t, g))
	text := ss.Format(g)
	for _, want := range []string{"Partition", "MinL(P)", "part1", "(n1, e1, n2)"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format output missing %q:\n%s", want, text)
		}
	}
}
