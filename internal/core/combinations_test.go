package core

import (
	"fmt"
	"testing"

	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// TestAllOperatorCombinations sweeps the §6 combination space the paper
// counts (8 group-by × 7 order-by × projections × 5 recursion semantics,
// "1960 combinations, surpassing the 28 defined by GQL") on the Figure 1
// graph and checks the algebraic invariants every combination must obey:
//
//  1. γ preserves the path set (partitioning loses nothing);
//  2. π output ⊆ ϕ output (projection only selects);
//  3. π(*,*,*) returns the whole set regardless of ordering;
//  4. every pipeline is deterministic (two evaluations agree);
//  5. tighter projection bounds yield subsets of looser ones.
func TestAllOperatorCombinations(t *testing.T) {
	g := ldbc.Figure1()
	base := knowsEdges(g)

	projections := []struct {
		name                 string
		parts, groups, paths Count
	}{
		{"all", AllCount(), AllCount(), AllCount()},
		{"p1", NCount(1), AllCount(), AllCount()},
		{"g1", AllCount(), NCount(1), AllCount()},
		{"a1", AllCount(), AllCount(), NCount(1)},
		{"a1desc", AllCount(), AllCount(), NCount(1).Descending()},
	}

	for _, sem := range AllSemantics() {
		lim := Limits{}
		if sem == Walk {
			lim.MaxLen = 4
		}
		phi, err := EvalRecurse(sem, base, lim)
		if err != nil {
			t.Fatalf("ϕ%s: %v", sem, err)
		}
		for _, gk := range AllGroupKeys() {
			space := EvalGroupBy(gk, phi)
			// Invariant 1: grouping preserves the path set.
			if !space.AllPaths().Equal(phi) {
				t.Fatalf("γ%s(ϕ%s) lost or invented paths", gk, sem)
			}
			orderings := append([]OrderKey{0}, AllOrderKeys()...)
			for _, ok := range orderings {
				ordered := space
				if ok != 0 {
					ordered = EvalOrderBy(ok, space)
				}
				for _, proj := range projections {
					name := fmt.Sprintf("%s/γ%s/τ%s/π%s", sem, gk, ok, proj.name)
					t.Run(name, func(t *testing.T) {
						out := EvalProject(proj.parts, proj.groups, proj.paths, ordered)
						// Invariant 2: projection only selects.
						for _, p := range out.Paths() {
							if !phi.Contains(p) {
								t.Fatalf("projected path %s not in ϕ result", p.Format(g))
							}
						}
						// Invariant 3: the * projection is the identity.
						if proj.parts.All && proj.groups.All && proj.paths.All && !proj.paths.Desc {
							if !out.Equal(phi) {
								t.Fatalf("π(*,*,*) != ϕ result (%d vs %d)", out.Len(), phi.Len())
							}
						}
						// Invariant 4: determinism.
						again := EvalProject(proj.parts, proj.groups, proj.paths, ordered)
						if !out.Equal(again) {
							t.Fatal("projection is non-deterministic")
						}
						// Invariant 5: bounded ⊆ unbounded.
						full := EvalProject(AllCount(), AllCount(), AllCount(), ordered)
						for _, p := range out.Paths() {
							if !full.Contains(p) {
								t.Fatalf("bounded projection escaped the full projection")
							}
						}
					})
				}
			}
		}
	}
}

// TestGroupByPartitionKeysConsistent: every path lands in the partition
// its endpoints dictate, for every key and semantics.
func TestGroupByPartitionKeysConsistent(t *testing.T) {
	g := ldbc.Figure1()
	base := knowsEdges(g)
	for _, sem := range []Semantics{Trail, Simple, Shortest} {
		phi, err := EvalRecurse(sem, base, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		for _, gk := range AllGroupKeys() {
			space := EvalGroupBy(gk, phi)
			for _, part := range space.Partitions {
				for _, grp := range part.Groups {
					for _, rp := range grp.Paths {
						if part.HasSource && rp.Path.First() != part.Source {
							t.Fatalf("γ%s: path %s in partition with source %v",
								gk, rp.Path.Format(g), part.Source)
						}
						if part.HasTarget && rp.Path.Last() != part.Target {
							t.Fatalf("γ%s: path %s in partition with target %v",
								gk, rp.Path.Format(g), part.Target)
						}
						if gk&GroupLength != 0 && rp.Path.Len() != grp.Length {
							t.Fatalf("γ%s: path of length %d in group %d",
								gk, rp.Path.Len(), grp.Length)
						}
						if gk&GroupLength == 0 && grp.Length != -1 {
							t.Fatalf("γ%s: group carries a length key", gk)
						}
					}
				}
			}
		}
	}
}

// TestProjectionCountsRespectBounds verifies the per-level truncation of
// Algorithm 1 structurally (not just via the flattened output): at most
// #P partitions contribute, each with at most #G groups of at most #A
// paths.
func TestProjectionCountsRespectBounds(t *testing.T) {
	g := ldbc.Figure1()
	trails, err := EvalRecurse(Trail, knowsEdges(g), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, gk := range []GroupKey{GroupST, GroupSTL, GroupSource | GroupLength} {
		space := EvalOrderBy(OrderPartition|OrderGroup|OrderPath, EvalGroupBy(gk, trails))
		for _, bounds := range [][3]int{{1, 1, 1}, {2, 1, 2}, {3, 2, 1}} {
			out := EvalProject(NCount(bounds[0]), NCount(bounds[1]), NCount(bounds[2]), space)
			maxPaths := bounds[0] * bounds[1] * bounds[2]
			if out.Len() > maxPaths {
				t.Errorf("γ%s π%v returned %d paths, bound is %d",
					gk, bounds, out.Len(), maxPaths)
			}
		}
	}
	_ = g
}

// TestSpaceExprStringsCoverCombinations: the renderings of all pipeline
// combinations are unique, so plans are unambiguous.
func TestSpaceExprStringsCoverCombinations(t *testing.T) {
	seen := make(map[string]string)
	in := PathExpr(Edges{})
	for _, sem := range AllSemantics() {
		for _, gk := range AllGroupKeys() {
			for _, ok := range AllOrderKeys() {
				plan := Project{
					Parts: AllCount(), Groups: NCount(1), Paths: AllCount(),
					In: OrderBy{Key: ok, In: GroupBy{Key: gk, In: Recurse{Sem: sem, In: in}}},
				}
				s := plan.String()
				if prev, dup := seen[s]; dup {
					t.Fatalf("ambiguous rendering %q for two combinations (%s)", s, prev)
				}
				seen[s] = fmt.Sprintf("%s/%s/%s", sem, gk, ok)
			}
		}
	}
	if len(seen) != 5*8*7 {
		t.Errorf("expected %d distinct renderings, got %d", 5*8*7, len(seen))
	}
}

// TestGroupByEmptyInput: grouping the empty set yields an empty space and
// projecting it yields the empty set.
func TestGroupByEmptyInput(t *testing.T) {
	empty := pathset.New(0)
	for _, gk := range AllGroupKeys() {
		ss := EvalGroupBy(gk, empty)
		if len(ss.Partitions) != 0 {
			t.Errorf("γ%s(∅) has %d partitions", gk, len(ss.Partitions))
		}
		out := EvalProject(AllCount(), AllCount(), AllCount(), EvalOrderBy(OrderPath, ss))
		if out.Len() != 0 {
			t.Errorf("π over empty space returned %d paths", out.Len())
		}
	}
}

// TestSolutionSpaceSingletons: a single-path input produces exactly one
// partition/group under every key.
func TestSolutionSpaceSingletons(t *testing.T) {
	g := ldbc.Figure1()
	n, _ := g.NodeByKey("n1")
	single := pathset.FromPaths(path.FromNode(n.ID))
	for _, gk := range AllGroupKeys() {
		ss := EvalGroupBy(gk, single)
		if len(ss.Partitions) != 1 || ss.NumGroups() != 1 || ss.NumPaths() != 1 {
			t.Errorf("γ%s(single) shape %d/%d/%d",
				gk, len(ss.Partitions), ss.NumGroups(), ss.NumPaths())
		}
	}
}
