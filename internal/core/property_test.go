package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// randomBase builds a base path set from a random subset of a graph's
// edges, optionally mixed with some zero-length node paths.
func randomBase(g *graph.Graph, rng *rand.Rand) *pathset.Set {
	s := pathset.New(8)
	for i := 0; i < g.NumEdges(); i++ {
		if rng.Intn(2) == 0 {
			s.Add(path.FromEdge(g, graph.EdgeID(i)))
		}
	}
	for i := 0; i < g.NumNodes(); i++ {
		if rng.Intn(5) == 0 {
			s.Add(path.FromNode(graph.NodeID(i)))
		}
	}
	return s
}

// TestRecursionAdmissibilityProperty: every ϕSem output path is admitted
// by the semantics, for random base sets.
func TestRecursionAdmissibilityProperty(t *testing.T) {
	g := ldbc.Figure1()
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		base := randomBase(g, local)
		for _, sem := range []Semantics{Trail, Acyclic, Simple} {
			out, err := EvalRecurse(sem, base, Limits{})
			if err != nil {
				return false
			}
			for _, p := range out.Paths() {
				if !sem.Admits(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rng, MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRecursionClosureProperty: ϕSem(S) is closed under admissible
// concatenation with base paths — if p is in the result, b is an
// admissible base path, and p ◦ b is admissible, then p ◦ b is in the
// result (the fix-point condition of Definition 4.1).
func TestRecursionClosureProperty(t *testing.T) {
	g := ldbc.Figure1()
	rng := rand.New(rand.NewSource(123))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		base := randomBase(g, local)
		for _, sem := range []Semantics{Trail, Acyclic, Simple} {
			out, err := EvalRecurse(sem, base, Limits{})
			if err != nil {
				return false
			}
			admissibleBase := base.Filter(sem.Admits)
			for _, p := range out.Paths() {
				for _, b := range admissibleBase.Paths() {
					if b.Len() == 0 || !p.CanConcat(b) {
						continue
					}
					q := p.Concat(b)
					if sem.Admits(q) && !out.Contains(q) {
						t.Logf("ϕ%s not closed: %s ◦ %s missing", sem, p.Format(g), b.Format(g))
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rng, MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestShortestMinimalityProperty: every ϕShortest output is minimal among
// the outputs sharing its endpoints, and unique pairs cover the closure.
func TestShortestMinimalityProperty(t *testing.T) {
	g := ldbc.Figure1()
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		base := randomBase(g, local)
		out, err := EvalRecurse(Shortest, base, Limits{})
		if err != nil {
			return false
		}
		best := map[[2]graph.NodeID]int{}
		for _, p := range out.Paths() {
			k := [2]graph.NodeID{p.First(), p.Last()}
			if m, ok := best[k]; !ok || p.Len() < m {
				best[k] = p.Len()
			}
		}
		for _, p := range out.Paths() {
			if p.Len() != best[[2]graph.NodeID{p.First(), p.Last()}] {
				return false // two different lengths for one pair
			}
		}
		// Cross-check against bounded Walk closure: any pair reachable
		// within length 4 must appear with length ≤ its walk minimum.
		walks, err := EvalRecurse(Walk, base, Limits{MaxLen: 4})
		if err != nil {
			return false
		}
		for _, w := range walks.Paths() {
			k := [2]graph.NodeID{w.First(), w.Last()}
			m, ok := best[k]
			if !ok || m > w.Len() {
				return false // shortest missed a shorter walk
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(5)), MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestUnionSelectDistributivity: σc(A ∪ B) = σc(A) ∪ σc(B) — the identity
// behind the optimizer's union pushdown — for random sets and conditions.
func TestUnionSelectDistributivity(t *testing.T) {
	g := ldbc.Figure1()
	conds := []struct{ c string }{
		{`len() = 1`},
		{`label(edge(1)) = "Knows"`},
		{`first.name = "Moe" OR last.name = "Apu"`},
		{`NOT (len() >= 2)`},
	}
	f := func(seed int64, which uint8) bool {
		local := rand.New(rand.NewSource(seed))
		a := randomBase(g, local)
		b := randomBase(g, local)
		c := mustCond(t, conds[int(which)%len(conds)].c)
		lhs := EvalSelect(g, c, EvalUnion(a, b))
		rhs := EvalUnion(EvalSelect(g, c, a), EvalSelect(g, c, b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(17)), MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestJoinAssociativityProperty: (A ⋈ B) ⋈ C = A ⋈ (B ⋈ C) on random
// sets — path concatenation is associative, so the join is too.
func TestJoinAssociativityProperty(t *testing.T) {
	g := ldbc.Figure1()
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := randomBase(g, local)
		b := randomBase(g, local)
		c := randomBase(g, local)
		lhs := EvalJoin(EvalJoin(a, b), c)
		rhs := EvalJoin(a, EvalJoin(b, c))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(29)), MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRestrictIdempotentProperty: ρSem(ρSem(S)) = ρSem(S) for random sets
// and all semantics.
func TestRestrictIdempotentProperty(t *testing.T) {
	g := ldbc.Figure1()
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		walks, err := EvalRecurse(Walk, randomBase(g, local), Limits{MaxLen: 3})
		if err != nil {
			return false
		}
		for _, sem := range AllSemantics() {
			once := EvalRestrict(sem, walks)
			twice := EvalRestrict(sem, once)
			if !once.Equal(twice) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(31)), MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func mustCond(t *testing.T, src string) cond.Cond {
	t.Helper()
	c, err := cond.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
