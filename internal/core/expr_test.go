package core

import (
	"strings"
	"testing"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/graph"
)

func knowsSelect() Select {
	return Select{Cond: cond.Label(cond.EdgeAt(1), "Knows"), In: Edges{}}
}

// figure2Plan builds the plan of the paper's Figure 2:
// σ[first.name=Moe ∧ last.name=Apu](ϕ(Knows) ∪ ϕ(Likes ⋈ Has_creator)).
func figure2Plan(sem Semantics) PathExpr {
	knows := knowsSelect()
	likes := Select{Cond: cond.Label(cond.EdgeAt(1), "Likes"), In: Edges{}}
	hc := Select{Cond: cond.Label(cond.EdgeAt(1), "Has_creator"), In: Edges{}}
	return Select{
		Cond: cond.And{
			L: cond.Prop(cond.First(), "name", graph.StringValue("Moe")),
			R: cond.Prop(cond.Last(), "name", graph.StringValue("Apu")),
		},
		In: Union{
			L: Recurse{Sem: sem, In: knows},
			R: Recurse{Sem: sem, In: Join{L: likes, R: hc}},
		},
	}
}

func TestExprStrings(t *testing.T) {
	tests := []struct {
		e    PathExpr
		want string
	}{
		{Nodes{}, "Nodes(G)"},
		{Edges{}, "Edges(G)"},
		{knowsSelect(), `σ[label(edge(1)) = "Knows"](Edges(G))`},
		{Join{L: Nodes{}, R: Edges{}}, "(Nodes(G) ⋈ Edges(G))"},
		{Union{L: Nodes{}, R: Edges{}}, "(Nodes(G) ∪ Edges(G))"},
		{Recurse{Sem: Trail, In: Edges{}}, "ϕTrail(Edges(G))"},
		{
			Project{Parts: AllCount(), Groups: NCount(1), Paths: AllCount(),
				In: OrderBy{Key: OrderGroup, In: GroupBy{Key: GroupSTL, In: Edges{}}}},
			"π(*,1,*)(τG(γSTL(Edges(G))))",
		},
	}
	for _, tc := range tests {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestCount(t *testing.T) {
	if AllCount().Limit(5) != 5 || AllCount().String() != "*" {
		t.Error("AllCount misbehaves")
	}
	if NCount(3).Limit(5) != 3 || NCount(3).Limit(2) != 2 || NCount(3).String() != "3" {
		t.Error("NCount misbehaves")
	}
}

func TestEqual(t *testing.T) {
	a := figure2Plan(Simple)
	b := figure2Plan(Simple)
	if !Equal(a, b) {
		t.Error("structurally identical plans must be Equal")
	}
	c := figure2Plan(Trail)
	if Equal(a, c) {
		t.Error("plans with different semantics must differ")
	}
	if Equal(Nodes{}, Edges{}) {
		t.Error("Nodes != Edges")
	}
	if !Equal(Nodes{}, Nodes{}) || !Equal(Edges{}, Edges{}) {
		t.Error("atom equality")
	}
	p1 := Project{Parts: AllCount(), Groups: AllCount(), Paths: NCount(1),
		In: GroupBy{Key: GroupST, In: Edges{}}}
	p2 := Project{Parts: AllCount(), Groups: AllCount(), Paths: NCount(1),
		In: GroupBy{Key: GroupST, In: Edges{}}}
	if !Equal(p1, p2) {
		t.Error("equal projections must be Equal")
	}
	p3 := p2
	p3.Paths = NCount(2)
	if Equal(p1, p3) {
		t.Error("different projection bounds must differ")
	}
	o1 := Project{Parts: AllCount(), Groups: AllCount(), Paths: AllCount(),
		In: OrderBy{Key: OrderPath, In: GroupBy{Key: GroupST, In: Edges{}}}}
	o2 := o1
	o2.In = OrderBy{Key: OrderGroup, In: GroupBy{Key: GroupST, In: Edges{}}}
	if Equal(o1, o2) {
		t.Error("different order keys must differ")
	}
	if EqualSpace(GroupBy{Key: GroupST, In: Edges{}}, OrderBy{Key: OrderPath, In: GroupBy{}}) {
		t.Error("GroupBy != OrderBy")
	}
}

func TestFormatTree(t *testing.T) {
	tree := FormatTree(figure2Plan(Simple))
	for _, want := range []string{
		"Select: (first.name = \"Moe\" AND last.name = \"Apu\")",
		"Union",
		"Recursive Join (restrictor: SIMPLE)",
		"Join",
		`Select: label(edge(1)) = "Likes"`,
		"Edges(G)",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("FormatTree missing %q:\n%s", want, tree)
		}
	}
	withSpace := Project{Parts: AllCount(), Groups: AllCount(), Paths: NCount(1),
		In: OrderBy{Key: OrderPath, In: GroupBy{Key: GroupST, In: Edges{}}}}
	tree2 := FormatTree(withSpace)
	for _, want := range []string{
		"Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)",
		"OrderBy (Path)",
		"Group (Source Target)",
	} {
		if !strings.Contains(tree2, want) {
			t.Errorf("FormatTree missing %q:\n%s", want, tree2)
		}
	}
}
