package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBudgetChargePath(t *testing.T) {
	b := NewBudget(Limits{MaxPaths: 3, MaxWork: 100})
	for i := 0; i < 3; i++ {
		if !b.ChargePath(1) {
			t.Fatalf("charge %d failed within budget", i)
		}
	}
	if b.ChargePath(1) {
		t.Error("4th path charge succeeded, want MaxPaths=3 to hold")
	}
}

func TestBudgetChargeWork(t *testing.T) {
	b := NewBudget(Limits{MaxWork: 10})
	if !b.ChargeWork(4) { // 5 slots
		t.Fatal("first work charge failed")
	}
	if !b.ChargeWork(4) { // 10 slots total
		t.Fatal("second work charge failed at exactly MaxWork")
	}
	if b.ChargeWork(0) { // 11 slots
		t.Error("work charge beyond MaxWork succeeded")
	}
}

func TestBudgetDefaults(t *testing.T) {
	b := NewBudget(Limits{})
	if b.maxPaths.Load() != DefaultMaxPaths || b.maxWork.Load() != DefaultMaxWork {
		t.Errorf("defaults = %d/%d, want %d/%d", b.maxPaths.Load(), b.maxWork.Load(),
			DefaultMaxPaths, DefaultMaxWork)
	}
}

// TestBudgetCancel: cancellation makes every subsequent charge fail and
// Err reports the recorded cause; the first cause wins.
func TestBudgetCancel(t *testing.T) {
	b := NewBudget(Limits{MaxPaths: 100, MaxWork: 1000})
	if err := b.Err(); err != nil {
		t.Fatalf("fresh budget Err() = %v, want nil", err)
	}
	if b.Cancelled() {
		t.Fatal("fresh budget reports Cancelled")
	}
	cause := errors.New("client went away")
	b.Cancel(cause)
	if !b.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	if b.ChargePath(1) || b.ChargeWork(1) {
		t.Error("charges succeeded after Cancel")
	}
	if !errors.Is(b.Err(), cause) {
		t.Errorf("Err() = %v, want the recorded cause", b.Err())
	}
	b.Cancel(errors.New("second cause"))
	if !errors.Is(b.Err(), cause) {
		t.Errorf("Err() = %v after second Cancel, want the FIRST cause", b.Err())
	}
}

// TestBudgetCancelNilCause: Cancel(nil) records context.Canceled so the
// error stays errors.Is-able.
func TestBudgetCancelNilCause(t *testing.T) {
	b := NewBudget(Limits{})
	b.Cancel(nil)
	if !errors.Is(b.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", b.Err())
	}
}

// TestBudgetErrOverLimit: Err distinguishes budget exhaustion from
// cancellation.
func TestBudgetErrOverLimit(t *testing.T) {
	b := NewBudget(Limits{MaxPaths: 1, MaxWork: 1000})
	b.ChargePath(0)
	if b.ChargePath(0) {
		t.Fatal("second path charge within MaxPaths=1")
	}
	if !errors.Is(b.Err(), ErrBudgetExceeded) {
		t.Errorf("Err() = %v, want ErrBudgetExceeded", b.Err())
	}
	if errors.Is(b.Err(), context.Canceled) {
		t.Error("budget exhaustion reported as cancellation")
	}
}

// TestBudgetWatch: a Watch-attached context cancels the budget with the
// context's cause, and stop releases the watcher.
func TestBudgetWatch(t *testing.T) {
	b := NewBudget(Limits{})
	ctx, cancel := context.WithCancel(context.Background())
	stop := b.Watch(ctx)
	defer stop()
	if b.Cancelled() {
		t.Fatal("budget cancelled before the context")
	}
	cancel()
	deadline := time.Now().Add(time.Second)
	for !b.Cancelled() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(b.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", b.Err())
	}
	stop() // idempotent with the deferred call
}

// TestBudgetWatchStopped: after stop, a later context cancellation no
// longer touches the budget.
func TestBudgetWatchStopped(t *testing.T) {
	b := NewBudget(Limits{})
	ctx, cancel := context.WithCancel(context.Background())
	stop := b.Watch(ctx)
	stop()
	cancel()
	time.Sleep(10 * time.Millisecond)
	if b.Cancelled() {
		t.Error("budget cancelled by a context whose watch was stopped")
	}
}

// TestBudgetWatchBackground: an uncancellable context attaches nothing.
func TestBudgetWatchBackground(t *testing.T) {
	b := NewBudget(Limits{})
	stop := b.Watch(context.Background())
	stop()
	if b.Cancelled() {
		t.Error("background watch cancelled the budget")
	}
}

// TestBudgetWatchAlreadyCancelled: watching an already-dead context
// cancels synchronously.
func TestBudgetWatchAlreadyCancelled(t *testing.T) {
	b := NewBudget(Limits{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stop := b.Watch(ctx)
	defer stop()
	if !b.Cancelled() {
		t.Error("budget not cancelled by an already-cancelled context")
	}
}

// TestBudgetConcurrent charges from many goroutines and checks the totals
// are exact — the shared-budget contract of parallel evaluation.
func TestBudgetConcurrent(t *testing.T) {
	b := NewBudget(Limits{MaxPaths: 1 << 30, MaxWork: 1 << 40})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b.ChargePath(1) // 1 path, 2 work
				b.ChargeWork(2) // 3 work
			}
		}()
	}
	wg.Wait()
	if got, want := b.Paths(), int64(workers*perWorker); got != want {
		t.Errorf("Paths() = %d, want %d", got, want)
	}
	if got, want := b.Work(), int64(workers*perWorker*5); got != want {
		t.Errorf("Work() = %d, want %d", got, want)
	}
}

// BenchmarkBudgetCharge documents the absolute cost of the charge hot
// path. Cancellation support is free here by design: Cancel sinks the
// atomic limit fields to MinInt64, so the limit comparison each charge
// already performs doubles as the cancel check and no extra hot-path
// instruction exists to measure.
func BenchmarkBudgetCharge(b *testing.B) {
	bud := NewBudget(Limits{MaxPaths: 1 << 60, MaxWork: 1 << 60})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bud.ChargeWork(3)
		bud.ChargePath(3)
	}
}
