package core

import (
	"sync"
	"testing"
)

func TestBudgetChargePath(t *testing.T) {
	b := NewBudget(Limits{MaxPaths: 3, MaxWork: 100})
	for i := 0; i < 3; i++ {
		if !b.ChargePath(1) {
			t.Fatalf("charge %d failed within budget", i)
		}
	}
	if b.ChargePath(1) {
		t.Error("4th path charge succeeded, want MaxPaths=3 to hold")
	}
}

func TestBudgetChargeWork(t *testing.T) {
	b := NewBudget(Limits{MaxWork: 10})
	if !b.ChargeWork(4) { // 5 slots
		t.Fatal("first work charge failed")
	}
	if !b.ChargeWork(4) { // 10 slots total
		t.Fatal("second work charge failed at exactly MaxWork")
	}
	if b.ChargeWork(0) { // 11 slots
		t.Error("work charge beyond MaxWork succeeded")
	}
}

func TestBudgetDefaults(t *testing.T) {
	b := NewBudget(Limits{})
	if b.maxPaths != DefaultMaxPaths || b.maxWork != DefaultMaxWork {
		t.Errorf("defaults = %d/%d, want %d/%d", b.maxPaths, b.maxWork,
			DefaultMaxPaths, DefaultMaxWork)
	}
}

// TestBudgetConcurrent charges from many goroutines and checks the totals
// are exact — the shared-budget contract of parallel evaluation.
func TestBudgetConcurrent(t *testing.T) {
	b := NewBudget(Limits{MaxPaths: 1 << 30, MaxWork: 1 << 40})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				b.ChargePath(1) // 1 path, 2 work
				b.ChargeWork(2) // 3 work
			}
		}()
	}
	wg.Wait()
	if got, want := b.Paths(), int64(workers*perWorker); got != want {
		t.Errorf("Paths() = %d, want %d", got, want)
	}
	if got, want := b.Work(), int64(workers*perWorker*5); got != want {
		t.Errorf("Work() = %d, want %d", got, want)
	}
}
