package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// Budget is the shared, race-safe evaluation budget derived from Limits.
// It replaces the ad-hoc per-evaluator path/work counters so that the
// engine, the reference operators and the automaton search all account
// identically, and so that concurrent evaluation shards charge one global
// budget: MaxPaths and MaxWork hold across all workers of one evaluation,
// not per shard.
//
// Accounting scheme (unchanged from the historical counters):
//
//   - every admitted result path of edge length n charges 1 path and
//     n+1 work units (its node slots) — ChargePath;
//   - every additionally materialized search state charges n+1 work units
//     — ChargeWork. That covers the visited marks of the BFS product
//     search, and under Shortest semantics the discovered product states
//     of the phase-1 distance BFS and the pushes of the phase-2
//     enumeration stack, so MaxWork bounds every semantics.
//
// Both charges are atomic adds, so exceeding the budget is detected
// promptly but totals near the boundary may overshoot by at most one
// charge per worker; the budget is a safety net, not an exact quota.
//
// The budget is also the cancellation point of an evaluation: Cancel (or a
// Watch-attached context) makes every subsequent charge fail, so all
// workers of a sharded evaluation abort at their next charge. Cancellation
// costs the charge hot path nothing: Cancel stores math.MinInt64 into the
// (atomic) limit fields, so the limit comparison every charge already
// performs doubles as the cancel check — the instruction count of
// ChargePath/ChargeWork is identical to the cancellation-free budget
// (an atomic int64 load is a plain MOV on amd64/arm64).
type Budget struct {
	// cancel holds the cancellation cause once Cancel ran; nil while the
	// evaluation may proceed. The first cause wins. It leads the struct,
	// padded away from the write-hot counters: it is read-only until
	// cancellation, so the evaluators' between-charges polls (Cancelled)
	// read a quiet shared cache line instead of the counters' ping-pong.
	cancel atomic.Pointer[error]
	_      [56]byte
	// maxPaths/maxWork are the effective limits: set at construction,
	// dropped to math.MinInt64 by Cancel.
	maxPaths atomic.Int64
	maxWork  atomic.Int64
	paths    atomic.Int64
	work     atomic.Int64
}

// NewBudget returns a fresh budget enforcing lim, with the usual defaults
// applied (DefaultMaxPaths / DefaultMaxWork for unset fields).
func NewBudget(lim Limits) *Budget {
	b := &Budget{}
	b.maxPaths.Store(int64(lim.maxPaths()))
	b.maxWork.Store(int64(lim.maxWork()))
	return b
}

// ChargePath accounts one admitted result path of edge length n and
// reports whether the budget still holds and the evaluation is not
// cancelled.
//
//pathalgebra:hotpath
func (b *Budget) ChargePath(n int) bool {
	p := b.paths.Add(1)
	w := b.work.Add(int64(n) + 1)
	return p <= b.maxPaths.Load() && w <= b.maxWork.Load()
}

// ChargeWork accounts the materialization of one auxiliary search state of
// edge length n (n+1 node slots) and reports whether the work budget still
// holds and the evaluation is not cancelled.
//
//pathalgebra:hotpath
func (b *Budget) ChargeWork(n int) bool {
	return b.work.Add(int64(n)+1) <= b.maxWork.Load()
}

// Cancel aborts the evaluation charging this budget: every subsequent
// charge fails and Err reports cause. A nil cause records
// context.Canceled. The first recorded cause wins; later calls are no-ops.
func (b *Budget) Cancel(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	if b.cancel.CompareAndSwap(nil, &cause) {
		// Sink the limits so every in-flight and future charge fails at
		// its ordinary limit comparison. Counters only grow, so no later
		// charge can sneak back under MinInt64.
		b.maxPaths.Store(minInt64)
		b.maxWork.Store(minInt64)
	}
}

// minInt64 spelled out to avoid importing math for one constant.
const minInt64 = -1 << 63

// Cancelled reports whether Cancel ran. Evaluator inner loops may poll it
// between charges (one atomic load) to abort promptly even while doing
// work that charges nothing.
//
//pathalgebra:hotpath
func (b *Budget) Cancelled() bool { return b.cancel.Load() != nil }

// Err returns the error a failed charge stands for: the cancellation cause
// if the budget was cancelled, ErrBudgetExceeded if a limit was crossed,
// and nil while the budget still holds. Evaluators call it after a charge
// returns false, so the server can tell budget exhaustion from
// cancellation with errors.Is.
func (b *Budget) Err() error {
	if cause := b.cancel.Load(); cause != nil {
		return *cause
	}
	if b.paths.Load() > b.maxPaths.Load() || b.work.Load() > b.maxWork.Load() {
		return ErrBudgetExceeded
	}
	return nil
}

// Watch cancels the budget when ctx is cancelled, with context.Cause(ctx)
// as the recorded cause. It returns a stop function the evaluation MUST
// call (typically via defer) to release the watcher goroutine; stop is
// idempotent. A context that can never be cancelled attaches no goroutine
// and returns a no-op stop, so context-free evaluation pays nothing.
func (b *Budget) Watch(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	if err := context.Cause(ctx); err != nil {
		b.Cancel(err)
		return func() {}
	}
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// Re-check stop: when both channels are ready, select picks
			// randomly, and a stopped watcher must not cancel the budget.
			select {
			case <-stopped:
			default:
				b.Cancel(context.Cause(ctx))
			}
		case <-stopped:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stopped) }) }
}

// Paths returns the number of result paths charged so far.
func (b *Budget) Paths() int64 { return b.paths.Load() }

// Work returns the number of node slots charged so far.
func (b *Budget) Work() int64 { return b.work.Load() }
