package core

import "sync/atomic"

// Budget is the shared, race-safe evaluation budget derived from Limits.
// It replaces the ad-hoc per-evaluator path/work counters so that the
// engine, the reference operators and the automaton search all account
// identically, and so that concurrent evaluation shards charge one global
// budget: MaxPaths and MaxWork hold across all workers of one evaluation,
// not per shard.
//
// Accounting scheme (unchanged from the historical counters):
//
//   - every admitted result path of edge length n charges 1 path and
//     n+1 work units (its node slots) — ChargePath;
//   - every additionally materialized search state charges n+1 work units
//     — ChargeWork. That covers the visited marks of the BFS product
//     search, and under Shortest semantics the discovered product states
//     of the phase-1 distance BFS and the pushes of the phase-2
//     enumeration stack, so MaxWork bounds every semantics.
//
// Both charges are atomic adds, so exceeding the budget is detected
// promptly but totals near the boundary may overshoot by at most one
// charge per worker; the budget is a safety net, not an exact quota.
type Budget struct {
	maxPaths int64
	maxWork  int64
	paths    atomic.Int64
	work     atomic.Int64
}

// NewBudget returns a fresh budget enforcing lim, with the usual defaults
// applied (DefaultMaxPaths / DefaultMaxWork for unset fields).
func NewBudget(lim Limits) *Budget {
	return &Budget{
		maxPaths: int64(lim.maxPaths()),
		maxWork:  int64(lim.maxWork()),
	}
}

// ChargePath accounts one admitted result path of edge length n and
// reports whether the budget still holds.
func (b *Budget) ChargePath(n int) bool {
	p := b.paths.Add(1)
	w := b.work.Add(int64(n) + 1)
	return p <= b.maxPaths && w <= b.maxWork
}

// ChargeWork accounts the materialization of one auxiliary search state of
// edge length n (n+1 node slots) and reports whether the work budget still
// holds.
func (b *Budget) ChargeWork(n int) bool {
	return b.work.Add(int64(n)+1) <= b.maxWork
}

// Paths returns the number of result paths charged so far.
func (b *Budget) Paths() int64 { return b.paths.Load() }

// Work returns the number of node slots charged so far.
func (b *Budget) Work() int64 { return b.work.Load() }
