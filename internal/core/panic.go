package core

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrInternal is the sentinel for failures that are the engine's fault
// rather than the query's: a panic recovered inside an evaluation
// worker, a handler, or a background loop. Callers branch with
// errors.Is(err, core.ErrInternal); the query service maps it to HTTP
// 500 with kind "internal". The contract it backs: one poisoned query
// returns a typed error — it never kills the process, never wedges the
// worker pool, and never leaks the epoch pin or budget state its
// evaluation held (those release as the error unwinds the non-panicking
// frames normally).
var ErrInternal = errors.New("core: internal error")

// PanicError is a recovered panic promoted to a typed error: the panic
// value plus the stack of the panicking goroutine, captured at the
// recovery site.
type PanicError struct {
	// Val is the value passed to panic.
	Val any
	// Stack is the panicking goroutine's stack at recovery
	// (debug.Stack), for the daemon log — never for clients.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: recovered panic: %v", e.Val)
}

// Is makes every recovered panic errors.Is-able as ErrInternal.
func (e *PanicError) Is(target error) bool { return target == ErrInternal }

// Unwrap exposes a panic value that was itself an error (e.g. an
// injected fault.Error), so errors.Is sees through the recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Val.(error); ok {
		return err
	}
	return nil
}

// Recovered converts a recover() result into a *PanicError, capturing
// the stack; nil in, nil out, so the caller can write
//
//	defer func() { err = core.Recovered(recover()) }()
//
// without an if. The stack is captured here — inside the deferred call
// on the panicking goroutine — so it shows the panic site, not the
// recovery plumbing alone.
func Recovered(v any) error {
	if v == nil {
		return nil
	}
	return &PanicError{Val: v, Stack: debug.Stack()}
}
