package core

import (
	"testing"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

func benchBase(b *testing.B) (*graph.Graph, *pathset.Set) {
	b.Helper()
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 30, KnowsPerPerson: 2, CycleFraction: 0.3, Seed: 8,
	})
	base := pathset.New(g.NumEdges())
	for _, id := range g.EdgesWithLabel(ldbc.LabelKnows) {
		base.Add(path.FromEdge(g, id))
	}
	return g, base
}

// BenchmarkRecurseSemantics measures the reference ϕ per semantics.
func BenchmarkRecurseSemantics(b *testing.B) {
	_, base := benchBase(b)
	for _, sem := range AllSemantics() {
		b.Run(sem.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EvalRecurse(sem, base, Limits{MaxLen: 6}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReferenceJoin measures the Definition 3.1 nested-loop join.
func BenchmarkReferenceJoin(b *testing.B) {
	_, base := benchBase(b)
	two := EvalJoin(base, base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalJoin(two, base)
	}
}

// BenchmarkGroupOrderProject measures the extended pipeline on a trail
// closure.
func BenchmarkGroupOrderProject(b *testing.B) {
	_, base := benchBase(b)
	trails, err := EvalRecurse(Trail, base, Limits{MaxLen: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss := EvalGroupBy(GroupSTL, trails)
		ss = EvalOrderBy(OrderPartition|OrderGroup|OrderPath, ss)
		EvalProject(AllCount(), NCount(1), AllCount(), ss)
	}
}

// BenchmarkRestrict measures the ρ filter per semantics over a walk set.
func BenchmarkRestrict(b *testing.B) {
	_, base := benchBase(b)
	walks, err := EvalRecurse(Walk, base, Limits{MaxLen: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, sem := range AllSemantics() {
		b.Run(sem.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				EvalRestrict(sem, walks)
			}
		})
	}
}
