package core

import (
	"testing"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

func knowsEdges(g *graph.Graph) *pathset.Set {
	return EvalSelect(g, cond.Label(cond.EdgeAt(1), ldbc.LabelKnows), EvalEdges(g))
}

func TestEvalNodes(t *testing.T) {
	g := ldbc.Figure1()
	s := EvalNodes(g)
	if s.Len() != 7 {
		t.Fatalf("Nodes(G) has %d paths, want 7", s.Len())
	}
	for _, p := range s.Paths() {
		if p.Len() != 0 {
			t.Errorf("Nodes(G) produced a path of length %d", p.Len())
		}
	}
}

func TestEvalEdges(t *testing.T) {
	g := ldbc.Figure1()
	s := EvalEdges(g)
	if s.Len() != 11 {
		t.Fatalf("Edges(G) has %d paths, want 11", s.Len())
	}
	for _, p := range s.Paths() {
		if p.Len() != 1 {
			t.Errorf("Edges(G) produced a path of length %d", p.Len())
		}
	}
}

func TestEvalSelectByLabel(t *testing.T) {
	g := ldbc.Figure1()
	s := knowsEdges(g)
	if s.Len() != 4 {
		t.Fatalf("σ[Knows](Edges) has %d paths, want 4 (e1..e4)", s.Len())
	}
	for _, p := range s.Paths() {
		e, _ := p.Edge(1)
		if g.EdgeLabel(e) != ldbc.LabelKnows {
			t.Errorf("selected edge %s has label %q", g.Edge(e).Key, g.EdgeLabel(e))
		}
	}
}

func TestEvalJoinDefinition(t *testing.T) {
	g := ldbc.Figure1()
	knows := knowsEdges(g)
	joined := EvalJoin(knows, knows)
	// Knows/Knows 2-hop paths: n1→n2→n3, n1→n2→n4, n2→n3→n2, n3→n2→n3,
	// n3→n2→n4.
	want := pathset.FromPaths(
		path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e4", "n4"),
		path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2"),
		path.MustFromKeys(g, "n3", "e3", "n2", "e2", "n3"),
		path.MustFromKeys(g, "n3", "e3", "n2", "e4", "n4"),
	)
	if !joined.Equal(want) {
		t.Errorf("Knows ⋈ Knows =\n%s\nwant\n%s", joined.Format(g), want.Format(g))
	}
}

func TestJoinWithNodesIsIdentity(t *testing.T) {
	g := ldbc.Figure1()
	knows := knowsEdges(g)
	nodes := EvalNodes(g)
	if got := EvalJoin(knows, nodes); !got.Equal(knows) {
		t.Error("S ⋈ Nodes(G) must equal S")
	}
	if got := EvalJoin(nodes, knows); !got.Equal(knows) {
		t.Error("Nodes(G) ⋈ S must equal S")
	}
}

func TestEvalUnion(t *testing.T) {
	g := ldbc.Figure1()
	knows := knowsEdges(g)
	likes := EvalSelect(g, cond.Label(cond.EdgeAt(1), ldbc.LabelLikes), EvalEdges(g))
	u := EvalUnion(knows, likes)
	if u.Len() != knows.Len()+likes.Len() {
		t.Errorf("disjoint union size %d, want %d", u.Len(), knows.Len()+likes.Len())
	}
	if again := EvalUnion(u, knows); !again.Equal(u) {
		t.Error("union with a subset must be a no-op")
	}
}

// TestFigure3Query reproduces the §3 example: friends and friends-of-
// friends of Moe, i.e. σ[first.name=Moe](Knows ∪ (Knows ⋈ Knows)).
func TestFigure3Query(t *testing.T) {
	g := ldbc.Figure1()
	knows := knowsEdges(g)
	u := EvalUnion(knows, EvalJoin(knows, knows))
	res := EvalSelect(g, cond.Prop(cond.First(), "name", graph.StringValue("Moe")), u)
	want := pathset.FromPaths(
		path.MustFromKeys(g, "n1", "e1", "n2"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e4", "n4"),
	)
	if !res.Equal(want) {
		t.Errorf("Figure 3 query =\n%s\nwant\n%s", res.Format(g), want.Format(g))
	}
}

func TestSemanticsAdmits(t *testing.T) {
	g := ldbc.Figure1()
	cycle := path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2")                  // simple cycle
	repeatEdge := path.MustFromKeys(g, "n2", "e2", "n3", "e3", "n2", "e2", "n3") // repeats e2
	straight := path.MustFromKeys(g, "n1", "e1", "n2")

	if !Walk.Admits(cycle) || !Walk.Admits(repeatEdge) {
		t.Error("Walk must admit everything")
	}
	if !Shortest.Admits(cycle) {
		t.Error("Shortest.Admits is per-set, must not reject individual paths")
	}
	if !Trail.Admits(cycle) || Trail.Admits(repeatEdge) {
		t.Error("Trail admission wrong")
	}
	if Acyclic.Admits(cycle) || !Acyclic.Admits(straight) {
		t.Error("Acyclic admission wrong")
	}
	if !Simple.Admits(cycle) || Simple.Admits(repeatEdge) {
		t.Error("Simple admission wrong")
	}
}

func TestSemanticsStrings(t *testing.T) {
	want := map[Semantics]string{
		Walk: "Walk", Trail: "Trail", Acyclic: "Acyclic",
		Simple: "Simple", Shortest: "Shortest",
	}
	for sem, s := range want {
		if sem.String() != s {
			t.Errorf("%d.String() = %q, want %q", sem, sem.String(), s)
		}
	}
	if Semantics(42).String() != "Semantics(42)" {
		t.Error("unknown semantics String")
	}
	if len(AllSemantics()) != 5 {
		t.Error("AllSemantics must list 5 semantics")
	}
}

func TestParseSemantics(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Semantics
	}{
		{"WALK", Walk}, {"walk", Walk}, {"Walk", Walk},
		{"TRAIL", Trail}, {"ACYCLIC", Acyclic}, {"SIMPLE", Simple}, {"SHORTEST", Shortest},
	} {
		got, err := ParseSemantics(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSemantics(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSemantics("BOGUS"); err == nil {
		t.Error("ParseSemantics(BOGUS) should fail")
	}
}
