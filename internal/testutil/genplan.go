// Package testutil provides the seeded random generators shared by the
// randomized differential harness: small LDBC-shaped graphs and random
// logical plans spanning the whole algebra — σ, ⋈, ∪, ϕ under all five
// semantics, ρ under all restrictors, and the extended γ/τ/π pipeline
// with and without truncation.
//
// The generators are deliberately oracle-friendly: graphs stay small and
// recursion-bearing plans are built so a MaxLen-bounded evaluation stays
// well inside the default budgets, so the reference evaluator
// (core.EvalExpr) terminates quickly on every generated plan.
package testutil

import (
	"math/rand"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
)

// Labels used by generated conditions and patterns (the SNB schema).
var (
	edgeLabels = []string{ldbc.LabelKnows, ldbc.LabelLikes, ldbc.LabelHasCreator}
	nodeLabels = []string{ldbc.LabelPerson, ldbc.LabelMessage}
)

// RandomGraph generates a small seeded SNB-like graph; cycle density,
// size and shape vary with the rng.
func RandomGraph(rng *rand.Rand) *graph.Graph {
	return ldbc.MustGenerate(ldbc.Config{
		Persons:        3 + rng.Intn(10),
		Messages:       rng.Intn(8),
		KnowsPerPerson: 1 + rng.Intn(3),
		LikesPerPerson: rng.Intn(3),
		CycleFraction:  float64(rng.Intn(11)) / 10,
		Seed:           rng.Int63(),
	})
}

// RandomSemantics picks one of the five path semantics.
func RandomSemantics(rng *rand.Rand) core.Semantics {
	all := core.AllSemantics()
	return all[rng.Intn(len(all))]
}

// RandomPlan generates a random path-sorted plan of bounded depth. The
// returned plan may contain truncating projections (π with numeric
// bounds); IsTruncationFree distinguishes plans whose result is a pure
// set-determined function of the graph from those whose result depends on
// rank tie-breaking order.
func RandomPlan(rng *rand.Rand, depth int) core.PathExpr {
	if depth <= 0 {
		return randomLeaf(rng)
	}
	switch rng.Intn(10) {
	case 0, 1:
		return core.Select{Cond: RandomCond(rng, 2), In: RandomPlan(rng, depth-1)}
	case 2, 3:
		return core.Join{L: RandomPlan(rng, depth-1), R: RandomPlan(rng, depth-1)}
	case 4, 5:
		return core.Union{L: RandomPlan(rng, depth-1), R: RandomPlan(rng, depth-1)}
	case 6:
		return core.Restrict{Sem: RandomSemantics(rng), In: RandomPlan(rng, depth-1)}
	case 7:
		return randomRecursion(rng)
	case 8:
		return randomPipeline(rng, depth)
	default:
		return randomLeaf(rng)
	}
}

func randomLeaf(rng *rand.Rand) core.PathExpr {
	switch rng.Intn(4) {
	case 0:
		return core.Nodes{}
	case 1:
		return core.Edges{}
	case 2:
		return labelSelect(edgeLabels[rng.Intn(len(edgeLabels))])
	default:
		return randomRecursion(rng)
	}
}

func labelSelect(label string) core.PathExpr {
	return core.Select{Cond: cond.Label(cond.EdgeAt(1), label), In: core.Edges{}}
}

// randomRecursion builds ϕSem over a base. Most bases are label patterns
// (exercising the expansion fast path and direction choice); some are
// non-pattern shapes that force the generic closure.
func randomRecursion(rng *rand.Rand) core.PathExpr {
	rec := core.Recurse{Sem: RandomSemantics(rng), In: randomPatternBase(rng, 2)}
	if rng.Intn(4) == 0 {
		// Non-pattern base: a property condition the expansion path
		// cannot recognize, so the generic closure evaluates it.
		pc := cond.Prop(cond.Last(), "id", graph.IntValue(int64(1+rng.Intn(5))))
		pc.Op = cond.GE
		rec.In = core.Select{
			Cond: pc,
			In:   labelSelect(edgeLabels[rng.Intn(len(edgeLabels))]),
		}
	}
	return rec
}

// randomPatternBase builds the label-pattern shapes the engine's
// expansion fast path recognizes: label selects over Edges, joins and
// unions of such, and occasionally bare Edges (any label).
func randomPatternBase(rng *rand.Rand, depth int) core.PathExpr {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(6) == 0 {
			return core.Edges{}
		}
		return labelSelect(edgeLabels[rng.Intn(len(edgeLabels))])
	}
	l := randomPatternBase(rng, depth-1)
	r := randomPatternBase(rng, depth-1)
	if rng.Intn(2) == 0 {
		return core.Join{L: l, R: r}
	}
	return core.Union{L: l, R: r}
}

// randomPipeline wraps a sub-plan in the extended algebra: γ with a
// random key, optionally τ with a random key, and π with random bounds.
func randomPipeline(rng *rand.Rand, depth int) core.PathExpr {
	keys := core.AllGroupKeys()
	gkey := keys[rng.Intn(len(keys))]
	var space core.SpaceExpr = core.GroupBy{Key: gkey, In: RandomPlan(rng, depth-1)}
	if rng.Intn(2) == 0 {
		okeys := core.AllOrderKeys()
		space = core.OrderBy{Key: okeys[rng.Intn(len(okeys))], In: space}
	}
	return core.Project{
		Parts:  randomCount(rng),
		Groups: randomCount(rng),
		Paths:  randomCount(rng),
		In:     space,
	}
}

func randomCount(rng *rand.Rand) core.Count {
	if rng.Intn(2) == 0 {
		return core.AllCount()
	}
	c := core.NCount(1 + rng.Intn(3))
	if rng.Intn(4) == 0 {
		c = c.Descending()
	}
	return c
}

// RandomCond generates a random selection condition over the SNB schema.
func RandomCond(rng *rand.Rand, depth int) cond.Cond {
	if depth == 0 || rng.Intn(2) == 0 {
		return randomAtomCond(rng)
	}
	switch rng.Intn(4) {
	case 0:
		return cond.And{L: RandomCond(rng, depth-1), R: RandomCond(rng, depth-1)}
	case 1:
		return cond.Or{L: RandomCond(rng, depth-1), R: RandomCond(rng, depth-1)}
	case 2:
		return cond.Not{C: RandomCond(rng, depth-1)}
	default:
		return randomAtomCond(rng)
	}
}

func randomAtomCond(rng *rand.Rand) cond.Cond {
	target := []cond.Target{cond.First(), cond.Last(), cond.NodeAt(1), cond.EdgeAt(1)}[rng.Intn(4)]
	switch rng.Intn(5) {
	case 0:
		return cond.True{}
	case 1:
		c := cond.Len(rng.Intn(3))
		return c
	case 2:
		pc := cond.Prop(target, "id", graph.IntValue(int64(1+rng.Intn(6))))
		pc.Op = cond.GE
		return pc
	default:
		label := nodeLabels[rng.Intn(len(nodeLabels))]
		if target.Kind == cond.TargetEdge {
			label = edgeLabels[rng.Intn(len(edgeLabels))]
		}
		lc := cond.Label(target, label)
		if rng.Intn(4) == 0 {
			lc.Op = cond.NE
		}
		return lc
	}
}

// IsTruncationFree reports whether no projection in the plan truncates:
// every π bound is *, so the plan's result is a set-determined function
// of the graph — independent of the tie-breaking order any evaluator
// constructs its solution spaces in. Only such plans can be compared
// across evaluators with different discovery orders (the engine's
// product search vs. the reference closure); truncating plans are
// compared engine-vs-engine, where the planner guarantees order parity.
func IsTruncationFree(e core.PathExpr) bool {
	switch x := e.(type) {
	case core.Select:
		return IsTruncationFree(x.In)
	case core.Join:
		return IsTruncationFree(x.L) && IsTruncationFree(x.R)
	case core.Union:
		return IsTruncationFree(x.L) && IsTruncationFree(x.R)
	case core.Recurse:
		return IsTruncationFree(x.In)
	case core.Restrict:
		return IsTruncationFree(x.In)
	case core.Project:
		if !x.Parts.All || !x.Groups.All || !x.Paths.All {
			return false
		}
		return spaceTruncationFree(x.In)
	default:
		return true
	}
}

func spaceTruncationFree(e core.SpaceExpr) bool {
	switch x := e.(type) {
	case core.GroupBy:
		return IsTruncationFree(x.In)
	case core.OrderBy:
		return spaceTruncationFree(x.In)
	default:
		return true
	}
}
