package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestEviction(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Get(1) // bump 1; 2 is now LRU
	c.Put(3, "c")
	if _, ok := c.Get(2); ok {
		t.Error("2 survived eviction, want LRU out")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Errorf("Get(1) = %q,%v after bump", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != "c" {
		t.Errorf("Get(3) = %q,%v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestReplaceAndClear(t *testing.T) {
	c := New[string, int](4)
	c.Put("k", 1)
	c.Put("k", 2) // in-place replace, no growth
	if v, _ := c.Get("k"); v != 2 {
		t.Errorf("replaced value = %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after replace, want 1", c.Len())
	}
	if n := c.Clear(); n != 1 {
		t.Errorf("Clear = %d, want 1", n)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("entry survived Clear")
	}
	hits, misses := c.Counters()
	if hits != 1 || misses != 1 {
		t.Errorf("counters = %d/%d, want hits 1 (pre-Clear) / misses 1 (post-Clear)", hits, misses)
	}
}

// TestConcurrent hammers one cache from many goroutines under -race.
func TestConcurrent(t *testing.T) {
	c := New[int, int](16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (w + i) % 32
				c.Put(k, i)
				c.Get(k)
				if i%100 == 0 {
					c.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("Len = %d exceeds capacity 16", c.Len())
	}
}

func TestZeroValueMiss(t *testing.T) {
	c := New[string, fmt.Stringer](2)
	if v, ok := c.Get("absent"); ok || v != nil {
		t.Errorf("miss returned %v, %v", v, ok)
	}
}
