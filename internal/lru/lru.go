// Package lru provides the mutex-guarded, fixed-capacity LRU map shared
// by the engine's plan cache and the query service's result cache.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity least-recently-used map. All methods are
// safe for concurrent use. Capacity is counted in entries.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*list.Element
	order    *list.List // front = most recently used
	hits     int64
	misses   int64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an empty cache holding at most capacity entries.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		entries:  make(map[K]*list.Element, capacity),
		order:    list.New(),
	}
}

// Get returns the value under k, bumping its recency and the hit/miss
// counters.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts or replaces the value under k, evicting least-recently-
// used entries beyond capacity.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value = &entry[K, V]{key: k, val: v}
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry[K, V]).key)
	}
	c.entries[k] = c.order.PushFront(&entry[K, V]{key: k, val: v})
}

// Delete removes the entry under k, if present, and reports whether it
// existed. Hit/miss counters are unaffected.
func (c *Cache[K, V]) Delete(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.entries, k)
	return true
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Clear empties the cache and returns how many entries it dropped. The
// hit/miss counters are preserved.
func (c *Cache[K, V]) Clear() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.order.Len()
	clear(c.entries)
	c.order.Init()
	return n
}

// Counters returns the cumulative hit and miss counts.
func (c *Cache[K, V]) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
