package path

import (
	"math/rand"
	"testing"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
)

// TestZeroPathKeyAndFingerprint is the regression test for the zero-path
// panic: Path{}.Key() used to index p.nodes[0] out of range. Both identity
// accessors must return a defined value on the zero value.
func TestZeroPathKeyAndFingerprint(t *testing.T) {
	var p Path
	if got := p.Key(); got != "" {
		t.Errorf("zero path Key = %q, want \"\"", got)
	}
	if got := p.Fingerprint(); got != 0 {
		t.Errorf("zero path Fingerprint = %d, want 0", got)
	}
	// No valid path may share the zero path's identity.
	g := ldbc.Figure1()
	q := MustFromKeys(g, "n1")
	if q.Key() == "" {
		t.Error("valid path has the zero path's key")
	}
	if q.Fingerprint() == 0 {
		t.Error("valid path has the zero path's fingerprint")
	}
}

// TestFingerprintIncremental checks that every constructor agrees on the
// fingerprint of the same sequence: the incremental Extend/Concat variants
// must match a from-scratch New of the identical path.
func TestFingerprintIncremental(t *testing.T) {
	g := ldbc.Figure1()
	base := MustFromKeys(g, "n1", "e1", "n2")
	ext := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3")

	e2, _ := g.EdgeByKey("e2")
	if got := base.Extend(g, e2.ID).Fingerprint(); got != ext.Fingerprint() {
		t.Errorf("Extend fingerprint %x != New fingerprint %x", got, ext.Fingerprint())
	}
	tail := MustFromKeys(g, "n2", "e2", "n3")
	if got := base.Concat(tail).Fingerprint(); got != ext.Fingerprint() {
		t.Errorf("Concat fingerprint %x != New fingerprint %x", got, ext.Fingerprint())
	}
	if got := FromEdge(g, e2.ID).Fingerprint(); got != MustFromKeys(g, "n2", "e2", "n3").Fingerprint() {
		t.Errorf("FromEdge fingerprint %x != New fingerprint %x", got, tail.Fingerprint())
	}
	n1, _ := g.NodeByKey("n1")
	if got := FromNode(n1.ID).Fingerprint(); got != MustFromKeys(g, "n1").Fingerprint() {
		t.Error("FromNode fingerprint != New fingerprint")
	}
}

// randomWalk samples a random walk of up to maxLen edges starting at a
// random node of g.
func randomWalk(g *graph.Graph, rng *rand.Rand, maxLen int) Path {
	p := FromNode(graph.NodeID(rng.Intn(g.NumNodes())))
	for i := rng.Intn(maxLen + 1); i > 0; i-- {
		out := g.Out(p.Last())
		if len(out) == 0 {
			break
		}
		p = p.Extend(g, out[rng.Intn(len(out))])
	}
	return p
}

// TestFingerprintAgreesWithKey is the property test of the identity layer:
// over randomly generated path families, fingerprint-equality refined by
// the exact Equal fallback must agree with Key() equality (the canonical
// serialization) on every pair.
func TestFingerprintAgreesWithKey(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 20, Messages: 20, KnowsPerPerson: 3, LikesPerPerson: 2,
		CycleFraction: 0.4, Seed: 99,
	})
	rng := rand.New(rand.NewSource(42))
	paths := make([]Path, 400)
	for i := range paths {
		paths[i] = randomWalk(g, rng, 6)
	}
	for i, p := range paths {
		for _, q := range paths[i:] {
			keyEq := p.Key() == q.Key()
			fpEq := p.Fingerprint() == q.Fingerprint()
			structEq := p.Equal(q)
			if keyEq != structEq {
				t.Fatalf("Key equality %v but Equal %v for %s vs %s", keyEq, structEq, p, q)
			}
			if structEq && !fpEq {
				t.Fatalf("equal paths with different fingerprints: %s vs %s", p, q)
			}
			// The full identity predicate used by fingerprint-bucketed
			// indexes: same fingerprint AND Equal.
			if (fpEq && structEq) != keyEq {
				t.Fatalf("fingerprint+Equal disagrees with Key for %s vs %s", p, q)
			}
		}
	}
}

// TestForcedCollision checks the deliberate-collision support: distinct
// paths forced onto one fingerprint must still be distinguished by Equal
// and by Key.
func TestForcedCollision(t *testing.T) {
	g := ldbc.Figure1()
	a := ForceFingerprint(MustFromKeys(g, "n1", "e1", "n2"), 0xdead)
	b := ForceFingerprint(MustFromKeys(g, "n2", "e2", "n3"), 0xdead)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("ForceFingerprint did not align fingerprints")
	}
	if a.Equal(b) {
		t.Error("distinct paths compare Equal after fingerprint forcing")
	}
	if a.Key() == b.Key() {
		t.Error("distinct paths share a Key after fingerprint forcing")
	}
	// Forcing must not disturb the path's content.
	orig := MustFromKeys(g, "n1", "e1", "n2")
	if !a.Equal(orig) || a.Key() != orig.Key() {
		t.Error("ForceFingerprint changed the path's identity sequence")
	}
}
