// Package path implements paths over property graphs as defined in §2.2 of
// the paper: a path is an alternating sequence of node and edge identifiers
// (n1, e1, n2, ..., ek, nk+1) with ρ(ei) = (ni, ni+1).
//
// Paths are immutable values. Concatenation (the ◦ operator) copies; all
// accessors are O(1). A path of length zero is a single node.
package path

import (
	"encoding/binary"
	"fmt"
	"strings"

	"pathalgebra/internal/graph"
)

// Path is an immutable walk through a graph. The zero Path is invalid;
// construct paths with FromNode, FromEdge or Concat.
//
// Invariant: len(nodes) == len(edges)+1 and len(nodes) >= 1, and fp is the
// incremental fingerprint of (nodes[0], edges...); see fingerprint.go.
type Path struct {
	nodes []graph.NodeID
	edges []graph.EdgeID
	fp    uint64
}

// FromNode returns the length-zero path (n).
func FromNode(n graph.NodeID) Path {
	return Path{nodes: []graph.NodeID{n}, fp: fpStart(uint64(n))}
}

// FromEdge returns the length-one path (src, e, dst).
func FromEdge(g *graph.Graph, e graph.EdgeID) Path {
	src, dst := g.Endpoints(e)
	return Path{
		nodes: []graph.NodeID{src, dst},
		edges: []graph.EdgeID{e},
		fp:    fpAppend(fpStart(uint64(src)), uint64(e)),
	}
}

// New builds a path from explicit node and edge sequences, validating the
// alternation invariant against the graph. It is mainly used by tests and
// loaders; hot paths use FromNode/FromEdge/Concat.
func New(g *graph.Graph, nodes []graph.NodeID, edges []graph.EdgeID) (Path, error) {
	if len(nodes) != len(edges)+1 || len(nodes) == 0 {
		return Path{}, fmt.Errorf("path: need k+1 nodes for k edges, got %d nodes, %d edges", len(nodes), len(edges))
	}
	for i, e := range edges {
		src, dst := g.Endpoints(e)
		if src != nodes[i] || dst != nodes[i+1] {
			return Path{}, fmt.Errorf("path: edge %d (%s) does not connect positions %d-%d", i, g.Edge(e).Key, i, i+1)
		}
	}
	fp := fpStart(uint64(nodes[0]))
	for _, e := range edges {
		fp = fpAppend(fp, uint64(e))
	}
	return Path{nodes: append([]graph.NodeID(nil), nodes...), edges: append([]graph.EdgeID(nil), edges...), fp: fp}, nil
}

// FromKeys builds a path from the external keys of its alternating
// node/edge sequence, e.g. FromKeys(g, "n1", "e1", "n2"). Fixture helper.
func FromKeys(g *graph.Graph, keys ...string) (Path, error) {
	if len(keys)%2 == 0 || len(keys) == 0 {
		return Path{}, fmt.Errorf("path: alternating key sequence must have odd length, got %d", len(keys))
	}
	nodes := make([]graph.NodeID, 0, len(keys)/2+1)
	edges := make([]graph.EdgeID, 0, len(keys)/2)
	for i, k := range keys {
		if i%2 == 0 {
			n, ok := g.NodeByKey(k)
			if !ok {
				return Path{}, fmt.Errorf("path: unknown node key %q", k)
			}
			nodes = append(nodes, n.ID)
		} else {
			e, ok := g.EdgeByKey(k)
			if !ok {
				return Path{}, fmt.Errorf("path: unknown edge key %q", k)
			}
			edges = append(edges, e.ID)
		}
	}
	return New(g, nodes, edges)
}

// MustFromKeys is FromKeys panicking on error, for tests and fixtures.
func MustFromKeys(g *graph.Graph, keys ...string) Path {
	p, err := FromKeys(g, keys...)
	if err != nil {
		panic(err)
	}
	return p
}

// IsZero reports whether p is the invalid zero value.
func (p Path) IsZero() bool { return len(p.nodes) == 0 }

// Len returns the number of edges (the paper's Len operator).
func (p Path) Len() int { return len(p.edges) }

// First returns the first node identifier (the paper's First operator).
func (p Path) First() graph.NodeID { return p.nodes[0] }

// Last returns the last node identifier (the paper's Last operator).
func (p Path) Last() graph.NodeID { return p.nodes[len(p.nodes)-1] }

// Node returns the node at 1-based position i (the paper's Node(p, i)).
// Positions run 1..Len()+1. ok is false when i is out of range.
func (p Path) Node(i int) (graph.NodeID, bool) {
	if i < 1 || i > len(p.nodes) {
		return 0, false
	}
	return p.nodes[i-1], true
}

// Edge returns the edge at 1-based position j (the paper's Edge(p, j)).
// Positions run 1..Len(). ok is false when j is out of range.
func (p Path) Edge(j int) (graph.EdgeID, bool) {
	if j < 1 || j > len(p.edges) {
		return 0, false
	}
	return p.edges[j-1], true
}

// Nodes returns the node sequence. The slice is shared; do not modify.
func (p Path) Nodes() []graph.NodeID { return p.nodes }

// Edges returns the edge sequence. The slice is shared; do not modify.
func (p Path) Edges() []graph.EdgeID { return p.edges }

// CanConcat reports whether p ◦ q is defined, i.e. Last(p) == First(q).
func (p Path) CanConcat(q Path) bool {
	return !p.IsZero() && !q.IsZero() && p.Last() == q.First()
}

// Concat returns p ◦ q: the sequence of p followed by the tail of q.
// It panics if Last(p) != First(q); callers check CanConcat (the join
// operator only concatenates matching pairs).
func (p Path) Concat(q Path) Path {
	if !p.CanConcat(q) {
		panic("path: concat of non-adjacent paths")
	}
	nodes := make([]graph.NodeID, 0, len(p.nodes)+len(q.nodes)-1)
	nodes = append(nodes, p.nodes...)
	nodes = append(nodes, q.nodes[1:]...)
	edges := make([]graph.EdgeID, 0, len(p.edges)+len(q.edges))
	edges = append(edges, p.edges...)
	edges = append(edges, q.edges...)
	fp := p.fp
	for _, e := range q.edges {
		fp = fpAppend(fp, uint64(e))
	}
	return Path{nodes: nodes, edges: edges, fp: fp}
}

// Extend returns the path p extended by one edge e, whose source must equal
// Last(p). This is the hot operation inside the recursive operator.
func (p Path) Extend(g *graph.Graph, e graph.EdgeID) Path {
	src, dst := g.Endpoints(e)
	if p.Last() != src {
		panic("path: extend with non-adjacent edge")
	}
	nodes := make([]graph.NodeID, 0, len(p.nodes)+1)
	nodes = append(nodes, p.nodes...)
	nodes = append(nodes, dst)
	edges := make([]graph.EdgeID, 0, len(p.edges)+1)
	edges = append(edges, p.edges...)
	edges = append(edges, e)
	return Path{nodes: nodes, edges: edges, fp: fpAppend(p.fp, uint64(e))}
}

// Equal reports whether p and q are the same sequence of identifiers.
func (p Path) Equal(q Path) bool {
	if len(p.nodes) != len(q.nodes) {
		return false
	}
	for i := range p.nodes {
		if p.nodes[i] != q.nodes[i] {
			return false
		}
	}
	for i := range p.edges {
		if p.edges[i] != q.edges[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical byte-string identifying the path. Two paths have
// equal keys iff they are Equal. The edge sequence plus the start node
// determines the path. Key is the canonical serialization used by tests and
// reports; duplicate elimination uses Fingerprint instead. The zero path
// has the empty key (no valid path does: even a length-zero path encodes
// its node).
func (p Path) Key() string {
	if p.IsZero() {
		return ""
	}
	var b []byte
	b = binary.AppendUvarint(b, uint64(p.nodes[0]))
	for _, e := range p.edges {
		b = binary.AppendUvarint(b, uint64(e)+1)
	}
	return string(b)
}

// IsAcyclic reports whether no node repeats (the ACYCLIC restrictor).
func (p Path) IsAcyclic() bool {
	seen := make(map[graph.NodeID]struct{}, len(p.nodes))
	for _, n := range p.nodes {
		if _, dup := seen[n]; dup {
			return false
		}
		seen[n] = struct{}{}
	}
	return true
}

// IsSimple reports whether no node repeats except that the first and last
// node may coincide (the SIMPLE restrictor).
func (p Path) IsSimple() bool {
	if len(p.nodes) == 1 {
		return true
	}
	seen := make(map[graph.NodeID]struct{}, len(p.nodes))
	inner := p.nodes[:len(p.nodes)-1]
	for _, n := range inner {
		if _, dup := seen[n]; dup {
			return false
		}
		seen[n] = struct{}{}
	}
	last := p.nodes[len(p.nodes)-1]
	if _, dup := seen[last]; dup {
		return last == p.nodes[0]
	}
	return true
}

// IsTrail reports whether no edge repeats (the TRAIL restrictor).
func (p Path) IsTrail() bool {
	seen := make(map[graph.EdgeID]struct{}, len(p.edges))
	for _, e := range p.edges {
		if _, dup := seen[e]; dup {
			return false
		}
		seen[e] = struct{}{}
	}
	return true
}

// LabelString implements λ(p): the concatenation of the labels of the edges
// along p, separated by nothing (per §2.2). Unlabelled edges contribute "".
func (p Path) LabelString(g *graph.Graph) string {
	var sb strings.Builder
	for _, e := range p.edges {
		sb.WriteString(g.EdgeLabel(e))
	}
	return sb.String()
}

// String renders the path with raw numeric IDs; prefer Format for output.
func (p Path) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, n := range p.nodes {
		if i > 0 {
			fmt.Fprintf(&sb, ", E%d, ", p.edges[i-1])
		}
		fmt.Fprintf(&sb, "N%d", n)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Format renders the path using external keys, matching the paper's
// notation: (n1, e1, n2, e4, n4).
func (p Path) Format(g *graph.Graph) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, n := range p.nodes {
		if i > 0 {
			sb.WriteString(", ")
			sb.WriteString(g.Edge(p.edges[i-1]).Key)
			sb.WriteString(", ")
		}
		sb.WriteString(g.Node(n).Key)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Compare orders paths deterministically: first by length, then by node
// sequence, then by edge sequence. It is used to produce canonical result
// orderings for tests, CLI output and "non-deterministic" selectors.
func Compare(p, q Path) int {
	if d := len(p.edges) - len(q.edges); d != 0 {
		return sign(d)
	}
	for i := range p.nodes {
		if d := int(p.nodes[i]) - int(q.nodes[i]); d != 0 {
			return sign(d)
		}
	}
	for i := range p.edges {
		if d := int(p.edges[i]) - int(q.edges[i]); d != 0 {
			return sign(d)
		}
	}
	return 0
}

func sign(d int) int {
	switch {
	case d < 0:
		return -1
	case d > 0:
		return 1
	default:
		return 0
	}
}
