// Prefix-sharing path arena: the copy-free representation behind the
// evaluation hot paths. A path under construction is a Ref — an index into
// an append-only Arena whose entries form a tree of one-edge extensions —
// so Extend is an O(1) append that shares the entire prefix with its
// parent instead of copying both ID slices (the O(L²)-bytes pattern of the
// slice-based Path). Fingerprints are carried incrementally per entry, and
// the restrictor predicates become allocation-free walks up the parent
// chain. Nodes/edges slices are materialized (Arena.Path) only when a path
// leaves the engine: on admission into a result set, for reports, or for
// projection.
//
// Arenas are single-goroutine values: each evaluation worker owns one and
// resets it between sources, which keeps refs small (int32) and makes
// deallocation a slice truncation.
package path

import (
	"sync/atomic"
	"unsafe"

	"pathalgebra/internal/graph"
)

// Ref is a handle to a path stored in an Arena. Refs are only meaningful
// together with the arena that issued them and die with its Reset.
type Ref int32

// arenaEntry is the compact per-path handle: O(1) state plus a parent link
// through which the whole prefix is shared.
type arenaEntry struct {
	fp     uint64       // incremental fingerprint of (first, edges...)
	parent Ref          // previous entry; unused when len == 0
	edge   graph.EdgeID // the edge this entry appended; unused when len == 0
	last   graph.NodeID // Last(p): the node this entry ends at
	len    int32        // edge length of the path ending here
}

// Arena is an append-only store of prefix-sharing paths. The zero Arena is
// ready to use.
type Arena struct {
	entries []arenaEntry
}

// NewArena returns an arena with capacity for n entries.
func NewArena(n int) *Arena {
	return &Arena{entries: make([]arenaEntry, 0, n)}
}

// Bytes reports the memory retained by the arena's entry backing array
// (capacity, not live length) — the number trace spans report as
// arena_bytes.
func (a *Arena) Bytes() int { return cap(a.entries) * int(unsafe.Sizeof(arenaEntry{})) }

// Len returns the number of live entries; together with TruncateTo it
// brackets speculative extensions.
func (a *Arena) Len() int { return len(a.entries) }

// Reset discards every entry, keeping the allocated storage. All
// previously issued Refs become invalid.
func (a *Arena) Reset() { a.entries = a.entries[:0] }

// TruncateTo rolls the arena back to a previous Len(), discarding the
// entries appended since. Callers use it to reclaim speculative extensions
// that ended up neither admitted nor retained. Refs at or beyond n become
// invalid; refs below n are untouched.
//
//pathalgebra:hotpath
func (a *Arena) TruncateTo(n int) { a.entries = a.entries[:n] }

// Leaf appends the length-zero path (n) and returns its ref.
//
//pathalgebra:hotpath
func (a *Arena) Leaf(n graph.NodeID) Ref {
	a.entries = append(a.entries, arenaEntry{fp: fpStart(uint64(n)), last: n})
	return Ref(len(a.entries) - 1)
}

// Extend appends the path r extended by edge e ending at dst, sharing r as
// prefix. It is the hot O(1) counterpart of Path.Extend; the caller
// supplies dst (= the edge's head) so no graph lookup happens here.
//
//pathalgebra:hotpath
func (a *Arena) Extend(r Ref, e graph.EdgeID, dst graph.NodeID) Ref {
	p := &a.entries[r]
	a.entries = append(a.entries, arenaEntry{
		fp:     fpAppend(p.fp, uint64(e)),
		parent: r,
		edge:   e,
		last:   dst,
		len:    p.len + 1,
	})
	return Ref(len(a.entries) - 1)
}

// FromPath interns a materialized path into the arena, one entry per edge,
// and returns the ref of its last entry. It is how the closure operators
// seed an arena frontier from a base path set.
func (a *Arena) FromPath(p Path) Ref {
	r := a.Leaf(p.nodes[0])
	for i, e := range p.edges {
		r = a.Extend(r, e, p.nodes[i+1])
	}
	return r
}

// Fingerprint returns the structural hash of the path at r; it equals
// Arena.Path(r).Fingerprint() without materializing.
//
//pathalgebra:hotpath
func (a *Arena) Fingerprint(r Ref) uint64 { return a.entries[r].fp }

// PathLen returns the edge length of the path at r.
//
//pathalgebra:hotpath
func (a *Arena) PathLen(r Ref) int { return int(a.entries[r].len) }

// Last returns the last node of the path at r.
//
//pathalgebra:hotpath
func (a *Arena) Last(r Ref) graph.NodeID { return a.entries[r].last }

// First returns the first node of the path at r by walking to its leaf.
//
//pathalgebra:hotpath
func (a *Arena) First(r Ref) graph.NodeID {
	for a.entries[r].len > 0 {
		r = a.entries[r].parent
	}
	return a.entries[r].last
}

// ContainsNode reports whether node n occurs anywhere in the path at r.
// It walks the parent chain once — no map, no allocation — which is what
// makes the incremental restrictor checks of the product search free of
// the per-candidate map builds of Path.IsAcyclic/IsSimple.
//
//pathalgebra:hotpath
func (a *Arena) ContainsNode(r Ref, n graph.NodeID) bool {
	for {
		e := &a.entries[r]
		if e.last == n {
			return true
		}
		if e.len == 0 {
			return false
		}
		r = e.parent
	}
}

// ContainsEdge reports whether edge e occurs in the path at r.
//
//pathalgebra:hotpath
func (a *Arena) ContainsEdge(r Ref, e graph.EdgeID) bool {
	for {
		ent := &a.entries[r]
		if ent.len == 0 {
			return false
		}
		if ent.edge == e {
			return true
		}
		r = ent.parent
	}
}

// Equal reports whether the paths at r1 and r2 are the same sequence of
// identifiers. Prefix sharing shortcuts the walk: as soon as the two
// chains meet at a common ref the remaining prefix is shared and therefore
// equal. A path is determined by its first node plus its edge sequence
// (edges fix their endpoints), so only those are compared.
func (a *Arena) Equal(r1, r2 Ref) bool {
	if a.entries[r1].len != a.entries[r2].len {
		return false
	}
	for r1 != r2 {
		e1, e2 := &a.entries[r1], &a.entries[r2]
		if e1.len == 0 {
			return e1.last == e2.last
		}
		if e1.edge != e2.edge {
			return false
		}
		r1, r2 = e1.parent, e2.parent
	}
	return true
}

// EqualPath reports whether the path at r equals the materialized path p,
// walking the chain backwards against p's edge slice.
func (a *Arena) EqualPath(r Ref, p Path) bool {
	ent := &a.entries[r]
	if int(ent.len) != p.Len() {
		return false
	}
	for i := p.Len() - 1; i >= 0; i-- {
		if ent.edge != p.edges[i] {
			return false
		}
		r = ent.parent
		ent = &a.entries[r]
	}
	return ent.last == p.nodes[0]
}

// fill writes the node/edge sequence of the path at r into the given
// regions (len(nodes) == PathLen(r)+1, len(edges) == PathLen(r)) by one
// reverse walk up the parent chain.
func (a *Arena) fill(r Ref, nodes []graph.NodeID, edges []graph.EdgeID) {
	ent := &a.entries[r]
	for i := len(edges); i > 0; i-- {
		nodes[i] = ent.last
		edges[i-1] = ent.edge
		ent = &a.entries[ent.parent]
	}
	nodes[0] = ent.last
}

// Path materializes the path at r as an immutable slice-backed Path with
// freshly allocated, exactly-sized backing arrays. Result sets use the
// slab-backed PathSlab instead; Path serves one-off materializations.
func (a *Arena) Path(r Ref) Path {
	ent := &a.entries[r]
	n := int(ent.len)
	nodes := make([]graph.NodeID, n+1)
	var edges []graph.EdgeID
	if n > 0 {
		edges = make([]graph.EdgeID, n)
	}
	a.fill(r, nodes, edges)
	return Path{nodes: nodes, edges: edges, fp: ent.fp}
}

// Slab is a block allocator for materialized path storage: Arena.PathSlab
// carves each admitted path's node/edge arrays from large shared blocks
// instead of allocating two slices per path, so materializing a result set
// of k paths costs O(k·L/slabBlock) allocations rather than 2k. Blocks are
// append-only — carved regions are never reused or resized — so paths
// backed by a slab are as immutable as individually allocated ones. The
// zero Slab is ready to use.
type Slab struct {
	nodes []graph.NodeID
	edges []graph.EdgeID
}

// Slab blocks grow geometrically from slabMinBlock to slabMaxBlock IDs, so
// a set holding a handful of short paths wastes at most a small block
// while large result sets converge to one allocation per slabMaxBlock IDs.
// Paths longer than a block get a dedicated right-sized block.
const (
	slabMinBlock = 64
	slabMaxBlock = 2048
)

// nextBlock sizes a fresh block given the capacity of the exhausted one
// and the immediate need.
func nextBlock(prevCap, need int) int {
	block := min(max(2*prevCap, slabMinBlock), slabMaxBlock)
	return max(block, need)
}

// carveNodes returns a zeroed region of n node IDs with a hard capacity
// fence (a later append to the region cannot overwrite its neighbours).
func (s *Slab) carveNodes(n int) []graph.NodeID {
	if cap(s.nodes)-len(s.nodes) < n {
		s.nodes = make([]graph.NodeID, 0, nextBlock(cap(s.nodes), n))
	}
	region := s.nodes[len(s.nodes) : len(s.nodes)+n : len(s.nodes)+n]
	s.nodes = s.nodes[:len(s.nodes)+n]
	return region
}

// carveEdges is carveNodes for edge IDs.
func (s *Slab) carveEdges(n int) []graph.EdgeID {
	if cap(s.edges)-len(s.edges) < n {
		s.edges = make([]graph.EdgeID, 0, nextBlock(cap(s.edges), n))
	}
	region := s.edges[len(s.edges) : len(s.edges)+n : len(s.edges)+n]
	s.edges = s.edges[:len(s.edges)+n]
	return region
}

// PathSlab materializes the path at r like Path, with backing storage
// carved from the slab. The caller owns the slab and must keep it private
// to one consumer (the result set holding the returned paths).
func (a *Arena) PathSlab(r Ref, s *Slab) Path {
	ent := &a.entries[r]
	n := int(ent.len)
	nodes := s.carveNodes(n + 1)
	var edges []graph.EdgeID
	if n > 0 {
		edges = s.carveEdges(n)
	}
	a.fill(r, nodes, edges)
	return Path{nodes: nodes, edges: edges, fp: ent.fp}
}

// Reversed materialization: the backward product search builds paths from
// their last node toward their first, so the arena chain of a backward ref
// — walked head to leaf — already yields the forward node/edge sequence.
// These methods materialize that forward path with its canonical forward
// fingerprint, so backward-evaluated results are indistinguishable from
// forward-evaluated ones to every downstream consumer (set membership,
// joins, unions, Equal).

// ReversedFingerprint returns the canonical fingerprint of the REVERSE of
// the path at r — the fingerprint Arena.ReversedPathSlab would assign —
// by one walk down the chain, without materializing.
func (a *Arena) ReversedFingerprint(r Ref) uint64 {
	ent := &a.entries[r]
	fp := fpStart(uint64(ent.last))
	for ent.len > 0 {
		fp = fpAppend(fp, uint64(ent.edge))
		ent = &a.entries[ent.parent]
	}
	return fp
}

// ReversedEqualPath reports whether the REVERSE of the path at r equals
// the materialized path p. The chain walk from r visits the reversed
// sequence front to back, so the comparison is a forward scan of p.
func (a *Arena) ReversedEqualPath(r Ref, p Path) bool {
	ent := &a.entries[r]
	if int(ent.len) != p.Len() {
		return false
	}
	for i := 0; ent.len > 0; i++ {
		if ent.last != p.nodes[i] || ent.edge != p.edges[i] {
			return false
		}
		ent = &a.entries[ent.parent]
	}
	return ent.last == p.nodes[p.Len()]
}

// ReversedPathSlab materializes the REVERSE of the path at r with storage
// carved from the slab and the canonical forward fingerprint fp (from
// ReversedFingerprint, which callers will already have computed for the
// duplicate probe).
func (a *Arena) ReversedPathSlab(r Ref, s *Slab, fp uint64) Path {
	ent := &a.entries[r]
	n := int(ent.len)
	nodes := s.carveNodes(n + 1)
	var edges []graph.EdgeID
	if n > 0 {
		edges = s.carveEdges(n)
	}
	for i := 0; ent.len > 0; i++ {
		nodes[i] = ent.last
		edges[i] = ent.edge
		ent = &a.entries[ent.parent]
	}
	nodes[n] = ent.last
	return Path{nodes: nodes, edges: edges, fp: fp}
}

// arenaCollisionCount tallies, process-wide, how many RefSet inserts hit a
// non-empty fingerprint bucket and needed the exact-equality fallback —
// the arena-side twin of pathset.Collisions.
var arenaCollisionCount atomic.Int64

// ArenaCollisions returns the process-wide count of RefSet fingerprint
// fallback activations since program start.
func ArenaCollisions() int64 { return arenaCollisionCount.Load() }

// RefSet is a duplicate-detecting set of arena paths — the mark set of the
// product search. Identity is fingerprint-bucketed with an exact chain-walk
// fallback on collision, exactly like pathset.Set, but members are Refs:
// no path is ever materialized to be remembered.
type RefSet struct {
	a     *Arena
	index map[uint64]Ref
	// overflow holds further refs sharing a fingerprint already in index;
	// nil until the first collision.
	overflow map[uint64][]Ref
	size     int
}

// NewRefSet returns an empty set over the given arena.
func NewRefSet(a *Arena) *RefSet {
	return &RefSet{a: a, index: make(map[uint64]Ref)}
}

// Len returns the number of distinct paths recorded.
func (s *RefSet) Len() int { return s.size }

// Add records the path at r and reports whether it was new. The ref is
// retained: callers must not truncate it out of the arena afterwards.
//
//pathalgebra:hotpath
func (s *RefSet) Add(r Ref) bool {
	fp := s.a.Fingerprint(r)
	if i, taken := s.index[fp]; taken {
		if s.a.Equal(i, r) {
			return false
		}
		for _, j := range s.overflow[fp] {
			if s.a.Equal(j, r) {
				return false
			}
		}
		arenaCollisionCount.Add(1)
		if s.overflow == nil {
			//lint:ignore hotpathalloc first-collision path: runs at most once per 64-bit fingerprint collision
			s.overflow = make(map[uint64][]Ref)
		}
		s.overflow[fp] = append(s.overflow[fp], r)
	} else {
		s.index[fp] = r
	}
	s.size++
	return true
}

// Reset empties the set, keeping the index storage. Call together with the
// arena's Reset — stored refs are invalid afterwards.
func (s *RefSet) Reset() {
	clear(s.index)
	s.overflow = nil
	s.size = 0
}
