package path

import (
	"testing"

	"pathalgebra/internal/ldbc"
)

func BenchmarkConcat(b *testing.B) {
	g := ldbc.Figure1()
	p1 := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2")
	p2 := MustFromKeys(g, "n2", "e2", "n3", "e3", "n2", "e4", "n4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p1.Concat(p2)
	}
}

func BenchmarkKey(b *testing.B) {
	g := ldbc.Figure1()
	p := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Key()
	}
}

func BenchmarkClassification(b *testing.B) {
	g := ldbc.Figure1()
	p := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4")
	b.Run("IsTrail", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.IsTrail()
		}
	})
	b.Run("IsAcyclic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.IsAcyclic()
		}
	})
	b.Run("IsSimple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.IsSimple()
		}
	})
}

// BenchmarkArenaExtend measures the O(1) arena extension against the
// copying Path.Extend above: one append, no slice copies.
func BenchmarkArenaExtend(b *testing.B) {
	g := ldbc.Figure1()
	a := NewArena(0)
	r := a.FromPath(MustFromKeys(g, "n1", "e1", "n2"))
	e4, _ := g.EdgeByKey("e4")
	_, dst := g.Endpoints(e4.ID)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mark := a.Len()
		a.Extend(r, e4.ID, dst)
		a.TruncateTo(mark)
	}
}

// BenchmarkArenaContains measures the incremental restrictor walk that
// replaces the map-building Is* predicates on the search hot path.
func BenchmarkArenaContains(b *testing.B) {
	g := ldbc.Figure1()
	a := NewArena(0)
	r := a.FromPath(MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"))
	e1, _ := g.EdgeByKey("e1")
	b.Run("ContainsEdge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.ContainsEdge(r, e1.ID)
		}
	})
	n1, _ := g.NodeByKey("n1")
	b.Run("ContainsNode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.ContainsNode(r, n1.ID)
		}
	})
}

// BenchmarkArenaMaterialize measures slab-backed materialization — the
// only point where admitted paths allocate.
func BenchmarkArenaMaterialize(b *testing.B) {
	g := ldbc.Figure1()
	a := NewArena(0)
	r := a.FromPath(MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"))
	var slab Slab
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.PathSlab(r, &slab)
		if i%1024 == 0 {
			slab = Slab{} // keep the slab from growing unboundedly
		}
	}
}

func BenchmarkExtend(b *testing.B) {
	g := ldbc.Figure1()
	p := MustFromKeys(g, "n1", "e1", "n2")
	e4, _ := g.EdgeByKey("e4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Extend(g, e4.ID)
	}
}

func BenchmarkFingerprint(b *testing.B) {
	g := ldbc.Figure1()
	p := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Fingerprint()
	}
}
