package path

import (
	"testing"

	"pathalgebra/internal/ldbc"
)

func BenchmarkConcat(b *testing.B) {
	g := ldbc.Figure1()
	p1 := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2")
	p2 := MustFromKeys(g, "n2", "e2", "n3", "e3", "n2", "e4", "n4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p1.Concat(p2)
	}
}

func BenchmarkKey(b *testing.B) {
	g := ldbc.Figure1()
	p := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Key()
	}
}

func BenchmarkClassification(b *testing.B) {
	g := ldbc.Figure1()
	p := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4")
	b.Run("IsTrail", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.IsTrail()
		}
	})
	b.Run("IsAcyclic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.IsAcyclic()
		}
	})
	b.Run("IsSimple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.IsSimple()
		}
	})
}

func BenchmarkExtend(b *testing.B) {
	g := ldbc.Figure1()
	p := MustFromKeys(g, "n1", "e1", "n2")
	e4, _ := g.EdgeByKey("e4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Extend(g, e4.ID)
	}
}

func BenchmarkFingerprint(b *testing.B) {
	g := ldbc.Figure1()
	p := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Fingerprint()
	}
}
