package path

import (
	"testing"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
)

func fig1(t *testing.T) *graph.Graph {
	t.Helper()
	return ldbc.Figure1()
}

func TestFromNode(t *testing.T) {
	g := fig1(t)
	n, _ := g.NodeByKey("n1")
	p := FromNode(n.ID)
	if p.Len() != 0 {
		t.Errorf("Len = %d, want 0", p.Len())
	}
	if p.First() != n.ID || p.Last() != n.ID {
		t.Error("First/Last of a node path must be the node")
	}
	if p.IsZero() {
		t.Error("constructed path reported zero")
	}
	if !(Path{}).IsZero() {
		t.Error("zero Path should report IsZero")
	}
}

func TestFromEdge(t *testing.T) {
	g := fig1(t)
	e, _ := g.EdgeByKey("e1")
	p := FromEdge(g, e.ID)
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}
	if g.Node(p.First()).Key != "n1" || g.Node(p.Last()).Key != "n2" {
		t.Errorf("endpoints %s→%s, want n1→n2", g.Node(p.First()).Key, g.Node(p.Last()).Key)
	}
}

func TestAccessors(t *testing.T) {
	g := fig1(t)
	// p5 from Table 3: (n1, e1, n2, e4, n4).
	p := MustFromKeys(g, "n1", "e1", "n2", "e4", "n4")
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if n, ok := p.Node(2); !ok || g.Node(n).Key != "n2" {
		t.Errorf("Node(2) = %v ok=%v, want n2", n, ok)
	}
	if e, ok := p.Edge(2); !ok || g.Edge(e).Key != "e4" {
		t.Errorf("Edge(2) = %v ok=%v, want e4", e, ok)
	}
	if _, ok := p.Node(0); ok {
		t.Error("Node(0) should be out of range (positions are 1-based)")
	}
	if _, ok := p.Node(4); ok {
		t.Error("Node(4) should be out of range")
	}
	if _, ok := p.Edge(0); ok {
		t.Error("Edge(0) should be out of range")
	}
	if _, ok := p.Edge(3); ok {
		t.Error("Edge(3) should be out of range")
	}
}

func TestConcat(t *testing.T) {
	g := fig1(t)
	p1 := MustFromKeys(g, "n1", "e1", "n2")
	p2 := MustFromKeys(g, "n2", "e4", "n4")
	if !p1.CanConcat(p2) {
		t.Fatal("p1 ◦ p2 should be defined")
	}
	got := p1.Concat(p2)
	want := MustFromKeys(g, "n1", "e1", "n2", "e4", "n4")
	if !got.Equal(want) {
		t.Errorf("Concat = %s, want %s", got.Format(g), want.Format(g))
	}
	if p2.CanConcat(p1) {
		t.Error("p2 ◦ p1 should not be defined")
	}
	defer func() {
		if recover() == nil {
			t.Error("Concat of non-adjacent paths should panic")
		}
	}()
	p2.Concat(p1)
}

func TestConcatWithZeroLength(t *testing.T) {
	g := fig1(t)
	p := MustFromKeys(g, "n1", "e1", "n2")
	n2, _ := g.NodeByKey("n2")
	zero := FromNode(n2.ID)
	if got := p.Concat(zero); !got.Equal(p) {
		t.Errorf("p ◦ (n2) = %s, want p itself", got.Format(g))
	}
	n1, _ := g.NodeByKey("n1")
	zero1 := FromNode(n1.ID)
	if got := zero1.Concat(p); !got.Equal(p) {
		t.Errorf("(n1) ◦ p = %s, want p itself", got.Format(g))
	}
}

func TestExtend(t *testing.T) {
	g := fig1(t)
	p := MustFromKeys(g, "n1", "e1", "n2")
	e4, _ := g.EdgeByKey("e4")
	got := p.Extend(g, e4.ID)
	want := MustFromKeys(g, "n1", "e1", "n2", "e4", "n4")
	if !got.Equal(want) {
		t.Errorf("Extend = %s, want %s", got.Format(g), want.Format(g))
	}
	// Extending must not mutate the original.
	if p.Len() != 1 {
		t.Error("Extend mutated the receiver")
	}
	e1, _ := g.EdgeByKey("e1")
	defer func() {
		if recover() == nil {
			t.Error("Extend with non-adjacent edge should panic")
		}
	}()
	p.Extend(g, e1.ID)
}

func TestClassification(t *testing.T) {
	g := fig1(t)
	tests := []struct {
		keys                   []string
		trail, acyclic, simple bool
	}{
		// Rows of the paper's Table 3.
		{[]string{"n1", "e1", "n2"}, true, true, true},                                        // p1
		{[]string{"n1", "e1", "n2", "e2", "n3", "e3", "n2"}, true, false, false},              // p2
		{[]string{"n1", "e1", "n2", "e2", "n3"}, true, true, true},                            // p3
		{[]string{"n1", "e1", "n2", "e2", "n3", "e3", "n2", "e2", "n3"}, false, false, false}, // p4
		{[]string{"n1", "e1", "n2", "e4", "n4"}, true, true, true},                            // p5
		{[]string{"n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"}, true, false, false},  // p6
		{[]string{"n2", "e2", "n3", "e3", "n2"}, true, false, true},                           // p7: cycle, simple
		{[]string{"n2", "e2", "n3", "e3", "n2", "e2", "n3", "e3", "n2"}, false, false, false}, // p8
		{[]string{"n2", "e2", "n3"}, true, true, true},                                        // p9
		{[]string{"n2", "e2", "n3", "e3", "n2", "e2", "n3"}, false, false, false},             // p10
		{[]string{"n2", "e4", "n4"}, true, true, true},                                        // p11
		{[]string{"n2", "e2", "n3", "e3", "n2", "e4", "n4"}, true, false, false},              // p12
		{[]string{"n3", "e3", "n2", "e4", "n4"}, true, true, true},                            // p13
		{[]string{"n3", "e3", "n2", "e2", "n3", "e3", "n2", "e4", "n4"}, false, false, false}, // p14
	}
	for i, tc := range tests {
		p := MustFromKeys(g, tc.keys...)
		if got := p.IsTrail(); got != tc.trail {
			t.Errorf("p%d IsTrail = %v, want %v", i+1, got, tc.trail)
		}
		if got := p.IsAcyclic(); got != tc.acyclic {
			t.Errorf("p%d IsAcyclic = %v, want %v", i+1, got, tc.acyclic)
		}
		if got := p.IsSimple(); got != tc.simple {
			t.Errorf("p%d IsSimple = %v, want %v", i+1, got, tc.simple)
		}
	}
}

func TestZeroLengthClassification(t *testing.T) {
	g := fig1(t)
	n, _ := g.NodeByKey("n1")
	p := FromNode(n.ID)
	if !p.IsTrail() || !p.IsAcyclic() || !p.IsSimple() {
		t.Error("a length-zero path is a trail, acyclic and simple")
	}
}

func TestLabelString(t *testing.T) {
	g := fig1(t)
	p := MustFromKeys(g, "n1", "e8", "n6", "e11", "n3")
	if got := p.LabelString(g); got != "LikesHas_creator" {
		t.Errorf("LabelString = %q, want LikesHas_creator", got)
	}
}

func TestFormat(t *testing.T) {
	g := fig1(t)
	p := MustFromKeys(g, "n1", "e1", "n2", "e4", "n4")
	if got := p.Format(g); got != "(n1, e1, n2, e4, n4)" {
		t.Errorf("Format = %q", got)
	}
	n, _ := g.NodeByKey("n3")
	if got := FromNode(n.ID).Format(g); got != "(n3)" {
		t.Errorf("Format zero-length = %q", got)
	}
}

func TestKeyUniqueness(t *testing.T) {
	g := fig1(t)
	paths := []Path{
		MustFromKeys(g, "n1"),
		MustFromKeys(g, "n2"),
		MustFromKeys(g, "n1", "e1", "n2"),
		MustFromKeys(g, "n2", "e2", "n3"),
		MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"),
		MustFromKeys(g, "n1", "e1", "n2", "e4", "n4"),
		MustFromKeys(g, "n2", "e2", "n3", "e3", "n2"),
	}
	seen := make(map[string]int)
	for i, p := range paths {
		if j, dup := seen[p.Key()]; dup {
			t.Errorf("paths %d and %d share key %q", i, j, p.Key())
		}
		seen[p.Key()] = i
	}
	// Same path built twice must share a key.
	a := MustFromKeys(g, "n1", "e1", "n2")
	b := MustFromKeys(g, "n1", "e1", "n2")
	if a.Key() != b.Key() {
		t.Error("equal paths have different keys")
	}
}

func TestCompare(t *testing.T) {
	g := fig1(t)
	short := MustFromKeys(g, "n1", "e1", "n2")
	long := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3")
	if Compare(short, long) >= 0 {
		t.Error("shorter path must order first")
	}
	if Compare(long, short) <= 0 {
		t.Error("longer path must order last")
	}
	if Compare(short, short) != 0 {
		t.Error("a path must compare equal to itself")
	}
	a := MustFromKeys(g, "n1", "e1", "n2")
	b := MustFromKeys(g, "n2", "e2", "n3")
	if Compare(a, b) >= 0 || Compare(b, a) <= 0 {
		t.Error("same-length paths must order by node sequence")
	}
}

func TestNewValidation(t *testing.T) {
	g := fig1(t)
	n1, _ := g.NodeByKey("n1")
	n3, _ := g.NodeByKey("n3")
	e1, _ := g.EdgeByKey("e1")
	if _, err := New(g, []graph.NodeID{n1.ID, n3.ID}, []graph.EdgeID{e1.ID}); err == nil {
		t.Error("New should reject an edge that does not connect the nodes")
	}
	if _, err := New(g, nil, nil); err == nil {
		t.Error("New should reject an empty node sequence")
	}
	if _, err := New(g, []graph.NodeID{n1.ID, n3.ID}, nil); err == nil {
		t.Error("New should reject mismatched node/edge counts")
	}
}

func TestFromKeysErrors(t *testing.T) {
	g := fig1(t)
	if _, err := FromKeys(g); err == nil {
		t.Error("FromKeys() should fail")
	}
	if _, err := FromKeys(g, "n1", "e1"); err == nil {
		t.Error("even-length key sequence should fail")
	}
	if _, err := FromKeys(g, "zz"); err == nil {
		t.Error("unknown node key should fail")
	}
	if _, err := FromKeys(g, "n1", "zz", "n2"); err == nil {
		t.Error("unknown edge key should fail")
	}
}
