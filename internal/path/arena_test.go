package path

import (
	"math/rand"
	"testing"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
)

// TestArenaMatchesPathDifferential is the differential property test of
// the arena-backed representation against the naive slice-based Path:
// random walks are built step by step in both representations, and at
// every step Extend/Equal/Fingerprint and the restrictor predicates must
// agree. The slice-based Path is the reference — its predicates rebuild
// repetition maps from scratch, while the arena answers incrementally
// from the parent chain.
func TestArenaMatchesPathDifferential(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 14, Messages: 10, KnowsPerPerson: 3, LikesPerPerson: 2,
		CycleFraction: 0.6, Seed: 11,
	})
	rng := rand.New(rand.NewSource(7))
	a := NewArena(0)
	for walk := 0; walk < 200; walk++ {
		if walk%20 == 0 {
			a.Reset() // exercise reuse across resets
		}
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		ref := a.Leaf(src)
		want := FromNode(src)
		for step := 0; step < 12; step++ {
			checkAgainstReference(t, g, a, ref, want)

			out := g.Out(want.Last())
			if len(out) == 0 {
				break
			}
			e := out[rng.Intn(len(out))]
			_, dst := g.Endpoints(e)

			// The incremental extension predicates must agree with the
			// reference predicates evaluated on the extended path,
			// whenever the current path satisfies the search invariant
			// (the frontier only holds admissible-for-extension paths).
			wantNext := want.Extend(g, e)
			if want.IsTrail() {
				if got, wantV := !a.ContainsEdge(ref, e), wantNext.IsTrail(); got != wantV {
					t.Fatalf("walk %d step %d: incremental trail check = %v, reference = %v (path %s)",
						walk, step, got, wantV, wantNext.String())
				}
			}
			if want.IsAcyclic() {
				if got, wantV := !a.ContainsNode(ref, dst), wantNext.IsAcyclic(); got != wantV {
					t.Fatalf("walk %d step %d: incremental acyclic check = %v, reference = %v (path %s)",
						walk, step, got, wantV, wantNext.String())
				}
				// Simple admissibility when the new node repeats: exactly
				// the cycle-closing case.
				if a.ContainsNode(ref, dst) {
					if got, wantV := dst == a.First(ref), wantNext.IsSimple(); got != wantV {
						t.Fatalf("walk %d step %d: incremental simple check = %v, reference = %v (path %s)",
							walk, step, got, wantV, wantNext.String())
					}
				}
			}

			ref = a.Extend(ref, e, dst)
			want = wantNext
		}
	}
}

// checkAgainstReference asserts every arena accessor agrees with the
// slice-based path want at ref.
func checkAgainstReference(t *testing.T, g *graph.Graph, a *Arena, ref Ref, want Path) {
	t.Helper()
	if got := a.PathLen(ref); got != want.Len() {
		t.Fatalf("PathLen = %d, want %d", got, want.Len())
	}
	if got := a.First(ref); got != want.First() {
		t.Fatalf("First = %d, want %d", got, want.First())
	}
	if got := a.Last(ref); got != want.Last() {
		t.Fatalf("Last = %d, want %d", got, want.Last())
	}
	if got := a.Fingerprint(ref); got != want.Fingerprint() {
		t.Fatalf("Fingerprint = %#x, want %#x", got, want.Fingerprint())
	}
	if !a.EqualPath(ref, want) {
		t.Fatalf("EqualPath(%s) = false", want.String())
	}
	got := a.Path(ref)
	if !got.Equal(want) {
		t.Fatalf("materialized %s, want %s", got.String(), want.String())
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("materialized fingerprint %#x, want %#x", got.Fingerprint(), want.Fingerprint())
	}
	// Containment agrees with naive scans over the reference sequences.
	for _, n := range []graph.NodeID{want.First(), want.Last(), graph.NodeID(uint32(want.Fingerprint()) % uint32(g.NumNodes()))} {
		naive := false
		for _, m := range want.Nodes() {
			if m == n {
				naive = true
				break
			}
		}
		if gotC := a.ContainsNode(ref, n); gotC != naive {
			t.Fatalf("ContainsNode(%d) = %v, want %v on %s", n, gotC, naive, want.String())
		}
	}
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e += 7 {
		naive := false
		for _, f := range want.Edges() {
			if f == e {
				naive = true
				break
			}
		}
		if gotC := a.ContainsEdge(ref, e); gotC != naive {
			t.Fatalf("ContainsEdge(%d) = %v, want %v on %s", e, gotC, naive, want.String())
		}
	}
}

// TestArenaEqualRefs checks ref-to-ref equality across shared and
// unshared prefixes, including equal paths interned twice.
func TestArenaEqualRefs(t *testing.T) {
	g := ldbc.Figure1()
	a := NewArena(0)
	p := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3")
	q := MustFromKeys(g, "n1", "e1", "n2", "e4", "n4")
	rp, rq := a.FromPath(p), a.FromPath(q)
	rp2 := a.FromPath(p)
	if !a.Equal(rp, rp) {
		t.Error("Equal(r, r) = false")
	}
	if !a.Equal(rp, rp2) {
		t.Error("equal paths interned separately compare unequal")
	}
	if a.Equal(rp, rq) {
		t.Errorf("distinct paths %s and %s compare equal", p.String(), q.String())
	}
	// Shared-prefix divergence: extend one ref two different ways.
	e2, _ := g.EdgeByKey("e2")
	e4, _ := g.EdgeByKey("e4")
	base := a.FromPath(MustFromKeys(g, "n1", "e1", "n2"))
	_, d2 := g.Endpoints(e2.ID)
	_, d4 := g.Endpoints(e4.ID)
	x, y := a.Extend(base, e2.ID, d2), a.Extend(base, e4.ID, d4)
	if a.Equal(x, y) {
		t.Error("siblings sharing a prefix compare equal")
	}
	if !a.Equal(x, a.FromPath(p)) {
		t.Error("extension does not equal its interned twin")
	}
}

// TestRefSetDedup checks that the visited RefSet detects duplicates across
// distinct refs and counts fingerprint fallbacks only on true collisions.
func TestRefSetDedup(t *testing.T) {
	g := ldbc.Figure1()
	a := NewArena(0)
	s := NewRefSet(a)
	p := MustFromKeys(g, "n1", "e1", "n2", "e2", "n3")
	r1, r2 := a.FromPath(p), a.FromPath(p)
	if !s.Add(r1) {
		t.Error("first Add = false")
	}
	if s.Add(r2) {
		t.Error("duplicate path under a distinct ref was added")
	}
	if s.Add(r1) {
		t.Error("re-adding the same ref succeeded")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	q := MustFromKeys(g, "n1", "e1", "n2", "e4", "n4")
	if !s.Add(a.FromPath(q)) {
		t.Error("distinct path rejected")
	}
	s.Reset()
	a.Reset()
	if s.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", s.Len())
	}
	if !s.Add(a.FromPath(p)) {
		t.Error("Add after Reset = false")
	}
}

// TestArenaTruncate checks the speculative-extension rollback protocol.
func TestArenaTruncate(t *testing.T) {
	g := ldbc.Figure1()
	a := NewArena(0)
	base := a.FromPath(MustFromKeys(g, "n1", "e1", "n2"))
	mark := a.Len()
	e2, _ := g.EdgeByKey("e2")
	_, d2 := g.Endpoints(e2.ID)
	a.Extend(base, e2.ID, d2)
	a.TruncateTo(mark)
	if a.Len() != mark {
		t.Fatalf("Len after truncate = %d, want %d", a.Len(), mark)
	}
	// base survives and extends again to the same path.
	r := a.Extend(base, e2.ID, d2)
	if !a.EqualPath(r, MustFromKeys(g, "n1", "e1", "n2", "e2", "n3")) {
		t.Error("re-extension after truncate produced a different path")
	}
}

// TestSlabMaterialization checks that slab-backed paths are immutable,
// correct, and fenced from one another.
func TestSlabMaterialization(t *testing.T) {
	g := ldbc.Figure1()
	a := NewArena(0)
	var slab Slab
	var paths []Path
	var refs []Ref
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		ref := a.Leaf(src)
		for s := 0; s < rng.Intn(6); s++ {
			out := g.Out(a.Last(ref))
			if len(out) == 0 {
				break
			}
			e := out[rng.Intn(len(out))]
			_, dst := g.Endpoints(e)
			ref = a.Extend(ref, e, dst)
		}
		refs = append(refs, ref)
		paths = append(paths, a.PathSlab(ref, &slab))
	}
	for i, p := range paths {
		if !a.EqualPath(refs[i], p) {
			t.Fatalf("slab path %d diverged from its arena source: %s", i, p.String())
		}
		if p.Fingerprint() != a.Fingerprint(refs[i]) {
			t.Fatalf("slab path %d fingerprint mismatch", i)
		}
	}
}
