package path

// Fingerprint identity layer: every Path carries a 64-bit structural hash of
// its identifying sequence (first node, then each edge in order), maintained
// incrementally by the constructors. Extending a path by one edge mixes in
// exactly one value instead of rehashing the prefix, so the recursive
// operators and the product-graph search pay O(1) per step for identity.
//
// Fingerprint equality is necessary but not sufficient for path equality:
// consumers that need exactness (pathset.Set, the automaton's visited set)
// bucket by fingerprint and fall back to Equal inside a bucket. Key() remains
// the canonical serialization but is no longer used on hot paths.

// fpSeed separates the start-node hash from the raw identifier space.
const fpSeed uint64 = 0x9e3779b97f4a7c15

// fpMix is the splitmix64 finalizer: a cheap bijective scrambler with full
// avalanche, so sequential IDs land in unrelated buckets.
func fpMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpStart is the fingerprint of the length-zero path (n).
func fpStart(n uint64) uint64 { return fpMix(fpSeed ^ n) }

// fpAppend extends a fingerprint by one edge. XOR-ing the previous state
// into the mixed edge value makes the hash order-sensitive, matching the
// sequential identity of paths.
func fpAppend(fp uint64, e uint64) uint64 { return fpMix(fp ^ fpMix(e+1)) }

// Fingerprint returns the 64-bit structural hash of p. Equal paths always
// have equal fingerprints; unequal paths collide with probability ~2^-64
// per pair. The zero path has fingerprint 0.
func (p Path) Fingerprint() uint64 { return p.fp }

// ForceFingerprint returns a copy of p with its fingerprint overridden.
// The copy compares Equal to p but hashes to fp, breaking the
// "equal paths have equal fingerprints" invariant on purpose. It exists
// solely so tests can inject fingerprint collisions and exercise the
// Equal fallback in fingerprint-bucketed indexes; never use it otherwise.
func ForceFingerprint(p Path, fp uint64) Path {
	p.fp = fp
	return p
}
