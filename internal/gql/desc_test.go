package gql

import (
	"strings"
	"testing"

	"pathalgebra/internal/core"
)

func TestParseDescProjection(t *testing.T) {
	q, err := Parse(`MATCH ALL PARTITIONS ALL GROUPS DESC 1 PATHS DESC TRAIL p = (?x)-[:K+]->(?y)
		GROUP BY SOURCE TARGET LENGTH ORDER BY GROUP PATH`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Proj == nil {
		t.Fatal("projection missing")
	}
	if q.Proj.Parts.Desc {
		t.Error("PARTITIONS should be ascending")
	}
	if !q.Proj.Groups.Desc {
		t.Error("GROUPS DESC lost")
	}
	if !q.Proj.Paths.Desc || q.Proj.Paths.N != 1 {
		t.Errorf("PATHS DESC lost: %+v", q.Proj.Paths)
	}
	// Rendering round-trips.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", q.String(), err)
	}
	if q.String() != q2.String() {
		t.Errorf("unstable rendering: %q vs %q", q.String(), q2.String())
	}
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "π(*,*↓,1↓)") {
		t.Errorf("plan = %s, want π(*,*↓,1↓)", plan)
	}
}

// TestDescLongestPerPair: the descending extension answers "the longest
// trail per endpoint pair" — a query GQL cannot express.
func TestDescLongestPerPair(t *testing.T) {
	q := MustParse(`MATCH ALL PARTITIONS ALL GROUPS 1 PATHS DESC TRAIL p = (?x)-[:Knows+]->(?y)
		GROUP BY SOURCE TARGET ORDER BY PATH`)
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := plan.(core.Project)
	if !ok {
		t.Fatalf("top = %T", plan)
	}
	if !proj.Paths.Desc {
		t.Error("descending flag lost in compilation")
	}
}

func TestDescNotOnClassicSelectors(t *testing.T) {
	// Classic selector syntax has no DESC slot; "ANY DESC" fails.
	if _, err := Parse(`MATCH ANY DESC WALK p = (?x)-[:K]->(?y)`); err == nil {
		t.Error("classic selector with DESC should fail to parse")
	}
}
