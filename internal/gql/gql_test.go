package gql

import (
	"strings"
	"testing"

	"pathalgebra/internal/core"
)

func TestParseClassicSelectors(t *testing.T) {
	tests := []struct {
		in   string
		kind SelectorKind
		k    int
		sem  core.Semantics
	}{
		{`MATCH ALL WALK p = (?x)-[:Knows+]->(?y)`, SelAll, 0, core.Walk},
		{`MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)`, SelAnyShortest, 0, core.Walk},
		{`MATCH ALL SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`, SelAllShortest, 0, core.Trail},
		{`MATCH ANY ACYCLIC p = (?x)-[:Knows+]->(?y)`, SelAny, 0, core.Acyclic},
		{`MATCH ANY 3 SIMPLE p = (?x)-[:Knows+]->(?y)`, SelAnyK, 3, core.Simple},
		{`MATCH SHORTEST 2 WALK p = (?x)-[:Knows+]->(?y)`, SelShortestK, 2, core.Walk},
		{`MATCH SHORTEST 2 GROUP WALK p = (?x)-[:Knows+]->(?y)`, SelShortestKGroup, 2, core.Walk},
		// Lowercase keywords.
		{`match any shortest trail p = (?x)-[:Knows+]->(?y)`, SelAnyShortest, 0, core.Trail},
	}
	for _, tc := range tests {
		q, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if q.Selector.Kind != tc.kind || q.Selector.K != tc.k {
			t.Errorf("%q: selector = %+v, want kind %v k %d", tc.in, q.Selector, tc.kind, tc.k)
		}
		if q.Restrictor != tc.sem {
			t.Errorf("%q: restrictor = %v, want %v", tc.in, q.Restrictor, tc.sem)
		}
		if q.PathVar != "p" {
			t.Errorf("%q: path var = %q, want p", tc.in, q.PathVar)
		}
	}
}

func TestParseExtendedSyntax(t *testing.T) {
	// The example from §7.1 of the paper.
	q, err := Parse(`MATCH ALL PARTITIONS ALL GROUPS 1 PATHS
		TRAIL p = (?x)-[(:Knows)*]->(?y)
		GROUP BY TARGET ORDER BY PATH`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Proj == nil {
		t.Fatal("extended projection missing")
	}
	if !q.Proj.Parts.All || !q.Proj.Groups.All || q.Proj.Paths.All || q.Proj.Paths.N != 1 {
		t.Errorf("projection = %+v, want ALL/ALL/1", *q.Proj)
	}
	if q.Restrictor != core.Trail {
		t.Errorf("restrictor = %v, want Trail", q.Restrictor)
	}
	if q.GroupBy == nil || *q.GroupBy != core.GroupTarget {
		t.Errorf("group by = %v, want Target", q.GroupBy)
	}
	if q.OrderBy == nil || *q.OrderBy != core.OrderPath {
		t.Errorf("order by = %v, want Path", q.OrderBy)
	}
	// Its compilation per §7.1: π(*,*,1)(τA(γT(ϕTrail(σKnows(Edges))))).
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	want := "π(*,*,1)(τA(γT((ϕTrail(σ[label(edge(1)) = \"Knows\"](Edges(G))) ∪ Nodes(G)))))"
	if plan.String() != want {
		t.Errorf("plan = %s\nwant  %s", plan, want)
	}
}

func TestParseNodeSpecs(t *testing.T) {
	q, err := Parse(`MATCH WALK p = (?x:Person {name:"Moe", age:40})-[:Knows]->(y {name:"Apu"})`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Src.Var != "x" || q.Src.Label != "Person" || len(q.Src.Props) != 2 {
		t.Errorf("src = %+v", q.Src)
	}
	if q.Src.Props[0].Prop != "name" || q.Src.Props[0].Value.Str() != "Moe" {
		t.Errorf("src prop[0] = %+v", q.Src.Props[0])
	}
	if q.Src.Props[1].Prop != "age" || q.Src.Props[1].Value.Int() != 40 {
		t.Errorf("src prop[1] = %+v", q.Src.Props[1])
	}
	if q.Dst.Var != "y" || len(q.Dst.Props) != 1 {
		t.Errorf("dst = %+v", q.Dst)
	}
}

func TestParseWhere(t *testing.T) {
	q, err := Parse(`MATCH TRAIL p = (?x)-[:Knows+]->(?y) WHERE first.name = "Moe" AND len() <= 3`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Where == nil {
		t.Fatal("WHERE clause lost")
	}
	want := `(first.name = "Moe" AND len() <= 3)`
	if q.Where.String() != want {
		t.Errorf("where = %s, want %s", q.Where, want)
	}
}

func TestParseBareQuery(t *testing.T) {
	q, err := Parse(`MATCH p = (?x)-[:Knows]->(?y)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Selector.Kind != SelNone || q.Proj != nil {
		t.Error("bare query should have no selector or projection")
	}
	if q.Restrictor != core.Walk {
		t.Errorf("default restrictor = %v, want Walk", q.Restrictor)
	}
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	// No endpoint filters and no selector: the plan is the bare pattern.
	if want := `σ[label(edge(1)) = "Knows"](Edges(G))`; plan.String() != want {
		t.Errorf("bare query plan = %s, want %s", plan, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		mention string
	}{
		{``, "expected MATCH"},
		{`MATCH`, "expected"},
		{`MATCH WALK p = (?x)-[:Knows]->`, "node specification"},
		{`MATCH WALK p = (?x)-[:Knows]->(?y) extra`, "unexpected"},
		{`MATCH WALK p = (?x)-[:Knows->(?y)`, "unterminated"},
		{`MATCH WALK p = (?x)-[:+]->(?y)`, "rpq"},
		{`MATCH ALL PARTITIONS 2 GROUPS WALK p = (?x)-[:K]->(?y)`, "PATHS"},
		{`MATCH ALL PARTITIONS WALK p = (?x)-[:K]->(?y)`, "GROUPS"},
		{`MATCH ANY 0 WALK p = (?x)-[:K]->(?y)`, "positive integer"},
		{`MATCH SHORTEST 0 WALK p = (?x)-[:K]->(?y)`, "positive integer"},
		{`MATCH WALK p = (?x)-[:K]->(?y) GROUP BY BOGUS`, "SOURCE"},
		{`MATCH WALK p = (?x)-[:K]->(?y) ORDER BY BOGUS`, "PARTITION"},
		{`MATCH WALK p = (?x)-[:K]->(?y) WHERE`, "expected condition"},
		{`MATCH WALK p = (? )-[:K]->(?y)`, "variable name"},
		{`MATCH WALK p = (x {name})-[:K]->(?y)`, "':'"},
		{`MATCH WALK p = (x {name:})-[:K]->(?y)`, "literal"},
		{`MATCH WALK p = (x-[:K]->(?y)`, "')'"},
		{`MATCH ANY SHORTEST WALK p = (?x)-[:K]->(?y) GROUP BY SOURCE`, "extended projection"},
		{`MATCH WALK p = (?x)<-[:K]->(?y)`, "'-['"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.mention) {
			t.Errorf("Parse(%q) error %q does not mention %q", tc.in, err, tc.mention)
		}
	}
}

// TestTable7Translations verifies the selector → algebra compilation
// scheme of the paper's Table 7 (with WALK; the other restrictors follow
// by substitution).
func TestTable7Translations(t *testing.T) {
	pattern := `(?x)-[:Knows+]->(?y)`
	tests := []struct {
		selector string
		want     string
	}{
		{"ALL", "π(*,*,*)(γ∅(RE))"},
		{"ANY SHORTEST", "π(*,*,1)(τA(γST(RE)))"},
		{"ALL SHORTEST", "π(*,1,*)(τG(γSTL(RE)))"},
		{"ANY", "π(*,*,1)(γST(RE))"},
		{"ANY 2", "π(*,*,2)(γST(RE))"},
		{"SHORTEST 2", "π(*,*,2)(τA(γST(RE)))"},
		{"SHORTEST 2 GROUP", "π(*,2,*)(τG(γSTL(RE)))"},
	}
	re := `ϕWalk(σ[label(edge(1)) = "Knows"](Edges(G)))`
	for _, tc := range tests {
		q, err := Parse("MATCH " + tc.selector + " WALK p = " + pattern)
		if err != nil {
			t.Fatalf("%s: %v", tc.selector, err)
		}
		plan, err := Compile(q)
		if err != nil {
			t.Fatalf("%s: %v", tc.selector, err)
		}
		want := strings.ReplaceAll(tc.want, "RE", re)
		if got := plan.String(); got != want {
			t.Errorf("%s:\ngot  %s\nwant %s", tc.selector, got, want)
		}
	}
}

// TestTable7AcrossRestrictors: the paper states the Table 7 scheme holds
// for every restrictor by replacing WALK.
func TestTable7AcrossRestrictors(t *testing.T) {
	for _, restr := range []string{"TRAIL", "ACYCLIC", "SIMPLE", "SHORTEST"} {
		q, err := Parse(`MATCH ANY SHORTEST ` + restr + ` p = (?x)-[:Knows+]->(?y)`)
		if err != nil {
			t.Fatalf("%s: %v", restr, err)
		}
		plan, err := Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		sem, _ := core.ParseSemantics(restr)
		if !strings.Contains(plan.String(), "ϕ"+sem.String()) {
			t.Errorf("%s: plan lacks ϕ%s: %s", restr, sem, plan)
		}
	}
}

func TestCompileFilters(t *testing.T) {
	plan := MustCompile(`MATCH SIMPLE p = (x:Person {name:"Moe"})-[:Knows+]->(y:Person {name:"Apu"})`)
	sel, ok := plan.(core.Select)
	if !ok {
		t.Fatalf("top = %T, want Select", plan)
	}
	c := sel.Cond.String()
	for _, want := range []string{
		`label(first) = "Person"`, `first.name = "Moe"`,
		`label(last) = "Person"`, `last.name = "Apu"`,
	} {
		if !strings.Contains(c, want) {
			t.Errorf("condition missing %q: %s", want, c)
		}
	}
}

func TestQueryString(t *testing.T) {
	inputs := []string{
		`MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ALL PARTITIONS 2 GROUPS 1 PATHS TRAIL p = (?x)-[:Knows*]->(?y) GROUP BY TARGET ORDER BY PATH`,
		`MATCH SIMPLE p = (x:Person {name:"Moe"})-[:Knows+]->(?y) WHERE len() <= 3`,
	}
	for _, in := range inputs {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		// String() must re-parse to an identical query rendering.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("unstable rendering:\n%s\n%s", q.String(), q2.String())
		}
	}
}

func TestSelectorString(t *testing.T) {
	tests := map[string]Selector{
		"ALL":              {Kind: SelAll},
		"ANY SHORTEST":     {Kind: SelAnyShortest},
		"ALL SHORTEST":     {Kind: SelAllShortest},
		"ANY":              {Kind: SelAny},
		"ANY 4":            {Kind: SelAnyK, K: 4},
		"SHORTEST 4":       {Kind: SelShortestK, K: 4},
		"SHORTEST 4 GROUP": {Kind: SelShortestKGroup, K: 4},
		"":                 {Kind: SelNone},
	}
	for want, sel := range tests {
		if got := sel.String(); got != want {
			t.Errorf("Selector%+v.String() = %q, want %q", sel, got, want)
		}
	}
	if len(AllSelectors(2)) != 7 {
		t.Error("AllSelectors must list the 7 selectors of Table 1")
	}
	if _, err := CompileSelector(Selector{Kind: SelNone}, core.Edges{}); err == nil {
		t.Error("CompileSelector(SelNone) should fail")
	}
}

// TestPrintPlanSection72 reproduces the parser output format of §7.2.
func TestPrintPlanSection72(t *testing.T) {
	plan := MustCompile(`MATCH ALL PARTITIONS ALL GROUPS 1 PATHS
		TRAIL p = (?x)-[(:Knows)+]->(?y)
		GROUP BY TARGET ORDER BY PATH`)
	got := PrintPlan(plan)
	want := `Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)
OrderBy (Path)
Group (Target)
Restrictor (TRAIL)
-> Recursive Join (restrictor: TRAIL)
  -> Select: (label(edge(1)) = "Knows" , EDGES(G))
`
	if got != want {
		t.Errorf("PrintPlan:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrintPlanShapes(t *testing.T) {
	cases := []struct {
		query    string
		mentions []string
	}{
		{
			`MATCH WALK p = (?x)-[:A|:B]->(?y)`,
			[]string{"-> Union", `Select: (label(edge(1)) = "A" , EDGES(G))`},
		},
		{
			`MATCH WALK p = (?x)-[:A/:B]->(?y)`,
			[]string{"-> Join"},
		},
		{
			`MATCH WALK p = (?x)-[:A*]->(?y)`,
			[]string{"-> NODES(G)"},
		},
		{
			`MATCH ANY SHORTEST WALK p = (?x {name:"Moe"})-[:A+]->(?y)`,
			[]string{"Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)", "OrderBy (Path)",
				"Group (Source Target)", "Restrictor (WALK)", "-> Select: (first.name = \"Moe\")"},
		},
	}
	for _, tc := range cases {
		got := PrintPlan(MustCompile(tc.query))
		for _, m := range tc.mentions {
			if !strings.Contains(got, m) {
				t.Errorf("%s:\nplan output missing %q:\n%s", tc.query, m, got)
			}
		}
	}
}
