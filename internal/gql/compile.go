package gql

import (
	"fmt"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/rpq"
)

// Compile translates a parsed query into a path algebra logical plan.
//
// The pattern's regular expression compiles per Figures 2–4 with the
// restrictor applied to every recursive operator; endpoint labels and
// property filters become a selection over the pattern result; a classic
// selector is then expanded per Table 7, while the extended syntax maps
// its projection / GROUP BY / ORDER BY clauses directly onto π, γ and τ.
func Compile(q *Query) (core.PathExpr, error) {
	if q.Regex == nil {
		return nil, fmt.Errorf("gql: query has no path pattern")
	}
	plan := rpq.Compile(q.Regex, q.Restrictor)

	var conds []cond.Cond
	if q.Src.Label != "" {
		conds = append(conds, cond.Label(cond.First(), q.Src.Label))
	}
	for _, pf := range q.Src.Props {
		conds = append(conds, cond.Prop(cond.First(), pf.Prop, pf.Value))
	}
	if q.Dst.Label != "" {
		conds = append(conds, cond.Label(cond.Last(), q.Dst.Label))
	}
	for _, pf := range q.Dst.Props {
		conds = append(conds, cond.Prop(cond.Last(), pf.Prop, pf.Value))
	}
	if q.Where != nil {
		conds = append(conds, q.Where)
	}
	if len(conds) > 0 {
		plan = core.Select{Cond: cond.Conj(conds...), In: plan}
	}

	switch {
	case q.Proj != nil:
		key := core.GroupNone
		if q.GroupBy != nil {
			key = *q.GroupBy
		}
		var space core.SpaceExpr = core.GroupBy{Key: key, In: plan}
		if q.OrderBy != nil {
			space = core.OrderBy{Key: *q.OrderBy, In: space}
		}
		return core.Project{Parts: q.Proj.Parts, Groups: q.Proj.Groups, Paths: q.Proj.Paths, In: space}, nil
	case q.Selector.Kind != SelNone:
		return CompileSelector(q.Selector, plan)
	default:
		return plan, nil
	}
}

// MustCompile parses and compiles a query, panicking on error.
func MustCompile(query string) core.PathExpr {
	q := MustParse(query)
	plan, err := Compile(q)
	if err != nil {
		panic(err)
	}
	return plan
}

// CompileSelector expands a classic GQL selector over a pattern plan into
// the γ/τ/π combination of the paper's Table 7:
//
//	ALL                π(*,*,*)(γ(in))
//	ANY SHORTEST       π(*,*,1)(τA(γST(in)))
//	ALL SHORTEST       π(*,1,*)(τG(γSTL(in)))
//	ANY                π(*,*,1)(γST(in))
//	ANY k              π(*,*,k)(γST(in))
//	SHORTEST k         π(*,*,k)(τA(γST(in)))
//	SHORTEST k GROUP   π(*,k,*)(τG(γSTL(in)))
func CompileSelector(sel Selector, in core.PathExpr) (core.PathExpr, error) {
	all := core.AllCount()
	switch sel.Kind {
	case SelAll:
		return core.Project{Parts: all, Groups: all, Paths: all,
			In: core.GroupBy{Key: core.GroupNone, In: in}}, nil
	case SelAnyShortest:
		return core.Project{Parts: all, Groups: all, Paths: core.NCount(1),
			In: core.OrderBy{Key: core.OrderPath,
				In: core.GroupBy{Key: core.GroupST, In: in}}}, nil
	case SelAllShortest:
		return core.Project{Parts: all, Groups: core.NCount(1), Paths: all,
			In: core.OrderBy{Key: core.OrderGroup,
				In: core.GroupBy{Key: core.GroupSTL, In: in}}}, nil
	case SelAny:
		return core.Project{Parts: all, Groups: all, Paths: core.NCount(1),
			In: core.GroupBy{Key: core.GroupST, In: in}}, nil
	case SelAnyK:
		return core.Project{Parts: all, Groups: all, Paths: core.NCount(sel.K),
			In: core.GroupBy{Key: core.GroupST, In: in}}, nil
	case SelShortestK:
		return core.Project{Parts: all, Groups: all, Paths: core.NCount(sel.K),
			In: core.OrderBy{Key: core.OrderPath,
				In: core.GroupBy{Key: core.GroupST, In: in}}}, nil
	case SelShortestKGroup:
		return core.Project{Parts: all, Groups: core.NCount(sel.K), Paths: all,
			In: core.OrderBy{Key: core.OrderGroup,
				In: core.GroupBy{Key: core.GroupSTL, In: in}}}, nil
	default:
		return nil, fmt.Errorf("gql: cannot compile selector %v", sel.Kind)
	}
}
