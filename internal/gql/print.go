package gql

import (
	"fmt"
	"strings"

	"pathalgebra/internal/core"
)

// PrintPlan renders a compiled logical plan in the textual tree format of
// the paper's §7.2 parser output:
//
//	Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)
//	OrderBy (Path)
//	Group (Target)
//	Restrictor (TRAIL)
//	-> Recursive Join (restrictor: TRAIL)
//	  -> Select: (label(edge(1)) = "Knows" , EDGES(G))
//
// The extended-algebra wrappers (π, τ, γ) print as header lines; the
// pattern subtree prints as indented "->" lines.
func PrintPlan(plan core.PathExpr) string {
	var sb strings.Builder
	printPathHeader(&sb, plan)
	return sb.String()
}

func printPathHeader(sb *strings.Builder, e core.PathExpr) {
	if p, ok := e.(core.Project); ok {
		fmt.Fprintf(sb, "Projection (%s)\n", Projection{Parts: p.Parts, Groups: p.Groups, Paths: p.Paths})
		printSpaceHeader(sb, p.In)
		return
	}
	printBody(sb, e, 0)
}

func printSpaceHeader(sb *strings.Builder, e core.SpaceExpr) {
	switch e := e.(type) {
	case core.OrderBy:
		fmt.Fprintf(sb, "OrderBy (%s)\n", e.Key.Words())
		printSpaceHeader(sb, e.In)
	case core.GroupBy:
		fmt.Fprintf(sb, "Group (%s)\n", e.Key.Words())
		if sem, ok := patternRestrictor(e.In); ok {
			fmt.Fprintf(sb, "Restrictor (%s)\n", strings.ToUpper(sem.String()))
		}
		printBody(sb, e.In, 0)
	default:
		fmt.Fprintf(sb, "%s\n", e)
	}
}

// patternRestrictor reports the semantics of the outermost recursive
// operator of the pattern subtree, if there is one — the "Restrictor"
// header line of the §7.2 output.
func patternRestrictor(e core.PathExpr) (core.Semantics, bool) {
	switch e := e.(type) {
	case core.Recurse:
		return e.Sem, true
	case core.Restrict:
		return e.Sem, true
	case core.Select:
		return patternRestrictor(e.In)
	case core.Join:
		if s, ok := patternRestrictor(e.L); ok {
			return s, true
		}
		return patternRestrictor(e.R)
	case core.Union:
		if s, ok := patternRestrictor(e.L); ok {
			return s, true
		}
		return patternRestrictor(e.R)
	default:
		return 0, false
	}
}

func printBody(sb *strings.Builder, e core.PathExpr, depth int) {
	prefix := strings.Repeat("  ", depth) + "-> "
	switch e := e.(type) {
	case core.Nodes:
		fmt.Fprintf(sb, "%sNODES(G)\n", prefix)
	case core.Edges:
		fmt.Fprintf(sb, "%sEDGES(G)\n", prefix)
	case core.Select:
		// Selections over an atom print on one line, as in the paper:
		// -> Select: (label(edge(1)) = "Knows" , EDGES(G))
		switch e.In.(type) {
		case core.Edges:
			fmt.Fprintf(sb, "%sSelect: (%s , EDGES(G))\n", prefix, e.Cond)
		case core.Nodes:
			fmt.Fprintf(sb, "%sSelect: (%s , NODES(G))\n", prefix, e.Cond)
		default:
			fmt.Fprintf(sb, "%sSelect: (%s)\n", prefix, e.Cond)
			printBody(sb, e.In, depth+1)
		}
	case core.Join:
		fmt.Fprintf(sb, "%sJoin\n", prefix)
		printBody(sb, e.L, depth+1)
		printBody(sb, e.R, depth+1)
	case core.Union:
		fmt.Fprintf(sb, "%sUnion\n", prefix)
		printBody(sb, e.L, depth+1)
		printBody(sb, e.R, depth+1)
	case core.Recurse:
		fmt.Fprintf(sb, "%sRecursive Join (restrictor: %s)\n", prefix, strings.ToUpper(e.Sem.String()))
		printBody(sb, e.In, depth+1)
	case core.Restrict:
		fmt.Fprintf(sb, "%sRestrict (%s)\n", prefix, strings.ToUpper(e.Sem.String()))
		printBody(sb, e.In, depth+1)
	case core.Project:
		fmt.Fprintf(sb, "%sProjection (%s)\n", prefix,
			Projection{Parts: e.Parts, Groups: e.Groups, Paths: e.Paths})
		printSpaceBody(sb, e.In, depth+1)
	default:
		fmt.Fprintf(sb, "%s%s\n", prefix, e)
	}
}

func printSpaceBody(sb *strings.Builder, e core.SpaceExpr, depth int) {
	prefix := strings.Repeat("  ", depth) + "-> "
	switch e := e.(type) {
	case core.GroupBy:
		fmt.Fprintf(sb, "%sGroup (%s)\n", prefix, e.Key.Words())
		printBody(sb, e.In, depth+1)
	case core.OrderBy:
		fmt.Fprintf(sb, "%sOrderBy (%s)\n", prefix, e.Key.Words())
		printSpaceBody(sb, e.In, depth+1)
	default:
		fmt.Fprintf(sb, "%s%s\n", prefix, e)
	}
}
