// Package gql implements the query language front-end of §7 of the paper:
// a lexer and parser for the extended GQL path query syntax (§7.1), the
// translation of parsed queries into path algebra logical plans — including
// the classic GQL selector syntax via the Table 7 compilation scheme — and
// a textual plan printer matching the parser output shown in §7.2.
package gql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen   // (
	tokRParen   // )
	tokLBrace   // {
	tokRBrace   // }
	tokLBracket // [
	tokRegex    // raw text between [ and ]
	tokArrow    // ->
	tokDash     // -
	tokEquals   // =
	tokComma    // ,
	tokColon    // :
	tokDot      // .
	tokQuestion // ?
	tokCmp      // != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a query. The bracketed regular expression of a path
// pattern is captured as a single raw tokRegex token and handed to the
// rpq parser, so the two grammars stay independent.
type lexer struct {
	src string
	pos int
	tok token
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("gql: offset %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() error {
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsSpace(r) {
			break
		}
		l.pos += size
	}
	start := l.pos
	if l.pos >= len(l.src) {
		l.tok = token{kind: tokEOF, pos: start}
		return nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		l.tok = token{kind: tokLParen, text: "(", pos: start}
	case c == ')':
		l.pos++
		l.tok = token{kind: tokRParen, text: ")", pos: start}
	case c == '{':
		l.pos++
		l.tok = token{kind: tokLBrace, text: "{", pos: start}
	case c == '}':
		l.pos++
		l.tok = token{kind: tokRBrace, text: "}", pos: start}
	case c == '[':
		return l.lexRegex()
	case c == ',':
		l.pos++
		l.tok = token{kind: tokComma, text: ",", pos: start}
	case c == ':':
		l.pos++
		l.tok = token{kind: tokColon, text: ":", pos: start}
	case c == '.':
		l.pos++
		l.tok = token{kind: tokDot, text: ".", pos: start}
	case c == '?':
		l.pos++
		l.tok = token{kind: tokQuestion, text: "?", pos: start}
	case c == '=':
		l.pos++
		l.tok = token{kind: tokEquals, text: "=", pos: start}
	case c == '-':
		if l.peekAt(1) == '>' {
			l.pos += 2
			l.tok = token{kind: tokArrow, text: "->", pos: start}
		} else if l.peekAt(1) >= '0' && l.peekAt(1) <= '9' {
			return l.lexNumber()
		} else {
			l.pos++
			l.tok = token{kind: tokDash, text: "-", pos: start}
		}
	case c == '!':
		if l.peekAt(1) != '=' {
			return l.errorf("unexpected character %q", c)
		}
		l.pos += 2
		l.tok = token{kind: tokCmp, text: "!=", pos: start}
	case c == '<':
		switch l.peekAt(1) {
		case '=':
			l.pos += 2
			l.tok = token{kind: tokCmp, text: "<=", pos: start}
		case '>':
			l.pos += 2
			l.tok = token{kind: tokCmp, text: "!=", pos: start}
		default:
			l.pos++
			l.tok = token{kind: tokCmp, text: "<", pos: start}
		}
	case c == '>':
		if l.peekAt(1) == '=' {
			l.pos += 2
			l.tok = token{kind: tokCmp, text: ">=", pos: start}
		} else {
			l.pos++
			l.tok = token{kind: tokCmp, text: ">", pos: start}
		}
	case c == '"':
		return l.lexString()
	case c >= '0' && c <= '9':
		return l.lexNumber()
	default:
		// Identifiers are scanned rune-wise, not byte-wise, so multi-byte
		// letters survive intact instead of being truncated mid-rune.
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !(unicode.IsLetter(r) || r == '_') {
			return l.errorf("unexpected character %q", r)
		}
		for l.pos < len(l.src) {
			r, size = utf8.DecodeRuneInString(l.src[l.pos:])
			if !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_') {
				break
			}
			l.pos += size
		}
		l.tok = token{kind: tokIdent, text: l.src[start:l.pos], pos: start}
	}
	return nil
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

// lexRegex captures everything between the opening '[' and its matching
// ']' as one raw token. Regular path expressions contain no brackets, so
// the first unquoted ']' closes the pattern.
func (l *lexer) lexRegex() error {
	start := l.pos
	l.pos++ // consume '['
	var sb strings.Builder
	inQuote := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '"':
			inQuote = !inQuote
			sb.WriteByte(c)
			l.pos++
		case c == ']' && !inQuote:
			l.pos++
			l.tok = token{kind: tokRegex, text: sb.String(), pos: start}
			return nil
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return l.errorf("unterminated '[' opened at offset %d", start)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			l.tok = token{kind: tokString, text: sb.String(), pos: start}
			return nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return l.errorf("unterminated escape")
			}
			l.pos++
			sb.WriteByte(l.src[l.pos])
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return l.errorf("unterminated string opened at offset %d", start)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	l.tok = token{kind: tokNumber, text: l.src[start:l.pos], pos: start}
	return nil
}
