package gql

import (
	"fmt"
	"strings"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/rpq"
)

// SelectorKind enumerates the GQL selectors of Table 1.
type SelectorKind uint8

const (
	// SelNone marks the absence of a classic selector (extended syntax).
	SelNone SelectorKind = iota
	// SelAll is ALL.
	SelAll
	// SelAnyShortest is ANY SHORTEST.
	SelAnyShortest
	// SelAllShortest is ALL SHORTEST.
	SelAllShortest
	// SelAny is ANY.
	SelAny
	// SelAnyK is ANY k.
	SelAnyK
	// SelShortestK is SHORTEST k.
	SelShortestK
	// SelShortestKGroup is SHORTEST k GROUP.
	SelShortestKGroup
)

// Selector is a classic GQL selector clause.
type Selector struct {
	Kind SelectorKind
	K    int // for SelAnyK, SelShortestK, SelShortestKGroup
}

// String renders the selector keywords.
func (s Selector) String() string {
	switch s.Kind {
	case SelAll:
		return "ALL"
	case SelAnyShortest:
		return "ANY SHORTEST"
	case SelAllShortest:
		return "ALL SHORTEST"
	case SelAny:
		return "ANY"
	case SelAnyK:
		return fmt.Sprintf("ANY %d", s.K)
	case SelShortestK:
		return fmt.Sprintf("SHORTEST %d", s.K)
	case SelShortestKGroup:
		return fmt.Sprintf("SHORTEST %d GROUP", s.K)
	default:
		return ""
	}
}

// AllSelectors lists the seven selectors in Table 1 order, using k=2 for
// the parameterized ones.
func AllSelectors(k int) []Selector {
	return []Selector{
		{Kind: SelAll},
		{Kind: SelAnyShortest},
		{Kind: SelAllShortest},
		{Kind: SelAny},
		{Kind: SelAnyK, K: k},
		{Kind: SelShortestK, K: k},
		{Kind: SelShortestKGroup, K: k},
	}
}

// Projection is the extended projection clause of §7.1:
// (ALL | n) PARTITIONS (ALL | n) GROUPS (ALL | n) PATHS.
type Projection struct {
	Parts  core.Count
	Groups core.Count
	Paths  core.Count
}

// String renders the clause.
func (p Projection) String() string {
	word := func(c core.Count, unit string) string {
		s := "ALL"
		if !c.All {
			s = fmt.Sprintf("%d", c.N)
		}
		s += " " + unit
		if c.Desc {
			s += " DESC"
		}
		return s
	}
	return fmt.Sprintf("%s %s %s",
		word(p.Parts, "PARTITIONS"), word(p.Groups, "GROUPS"), word(p.Paths, "PATHS"))
}

// PropFilter is one {prop: value} entry of a node specification.
type PropFilter struct {
	Prop  string
	Value graph.Value
}

// NodeSpec is one endpoint of a path pattern: an optional variable, an
// optional label and optional property filters, e.g. (?x:Person
// {name:"Moe"}).
type NodeSpec struct {
	Var   string
	Label string
	Props []PropFilter
}

// String renders the node specification.
func (n NodeSpec) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	if n.Var != "" {
		sb.WriteByte('?')
		sb.WriteString(n.Var)
	}
	if n.Label != "" {
		sb.WriteByte(':')
		sb.WriteString(n.Label)
	}
	if len(n.Props) > 0 {
		if n.Var != "" || n.Label != "" {
			sb.WriteByte(' ')
		}
		sb.WriteByte('{')
		for i, pf := range n.Props {
			if i > 0 {
				sb.WriteString(", ")
			}
			if pf.Value.Kind == graph.KindString {
				fmt.Fprintf(&sb, "%s:%q", pf.Prop, pf.Value.Str())
			} else {
				fmt.Fprintf(&sb, "%s:%s", pf.Prop, pf.Value)
			}
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(')')
	return sb.String()
}

// Query is a parsed path query. Exactly one of Selector.Kind != SelNone
// (classic GQL syntax) or Proj != nil (extended §7.1 syntax) holds; when
// both are absent the query returns the bare pattern result.
type Query struct {
	Selector   Selector
	Proj       *Projection
	Restrictor core.Semantics
	PathVar    string
	Src        NodeSpec
	Dst        NodeSpec
	Regex      rpq.Expr
	Where      cond.Cond      // nil when absent
	GroupBy    *core.GroupKey // nil when absent
	OrderBy    *core.OrderKey // nil when absent
}

// String re-renders the query in extended GQL syntax.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("MATCH ")
	if q.Proj != nil {
		sb.WriteString(q.Proj.String())
		sb.WriteByte(' ')
	} else if q.Selector.Kind != SelNone {
		sb.WriteString(q.Selector.String())
		sb.WriteByte(' ')
	}
	sb.WriteString(strings.ToUpper(q.Restrictor.String()))
	sb.WriteByte(' ')
	if q.PathVar != "" {
		sb.WriteString(q.PathVar)
		sb.WriteString(" = ")
	}
	fmt.Fprintf(&sb, "%s-[%s]->%s", q.Src, q.Regex, q.Dst)
	if q.Where != nil {
		fmt.Fprintf(&sb, " WHERE %s", q.Where)
	}
	if q.GroupBy != nil {
		fmt.Fprintf(&sb, " GROUP BY %s", strings.ToUpper(q.GroupBy.Words()))
	}
	if q.OrderBy != nil {
		fmt.Fprintf(&sb, " ORDER BY %s", strings.ToUpper(q.OrderBy.Words()))
	}
	return sb.String()
}
