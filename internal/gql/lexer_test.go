package gql

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	l := newLexer(src)
	var toks []token
	for {
		if err := l.next(); err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if l.tok.kind == tokEOF {
			return toks
		}
		toks = append(toks, l.tok)
	}
}

func TestLexerTokens(t *testing.T) {
	toks := lexAll(t, `MATCH p = (?x:Person {age: 40, score: -1.5})-[:Knows+]->(?y) WHERE len() <= 3`)
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	// Spot-check key positions rather than the full sequence.
	if toks[0].kind != tokIdent || toks[0].text != "MATCH" {
		t.Errorf("first token = %v", toks[0])
	}
	found := map[tokenKind]bool{}
	for _, k := range kinds {
		found[k] = true
	}
	for _, want := range []tokenKind{
		tokIdent, tokEquals, tokLParen, tokQuestion, tokColon, tokLBrace,
		tokNumber, tokComma, tokRBrace, tokDash, tokRegex, tokArrow,
		tokRParen, tokCmp,
	} {
		if !found[want] {
			t.Errorf("token kind %d missing from lex output", want)
		}
	}
}

func TestLexerRegexCapture(t *testing.T) {
	toks := lexAll(t, `-[(:Knows+)|(:Likes/:Has_creator)*]->`)
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].kind != tokRegex || toks[1].text != `(:Knows+)|(:Likes/:Has_creator)*` {
		t.Errorf("regex token = %v", toks[1])
	}
	if toks[2].kind != tokArrow {
		t.Errorf("arrow token = %v", toks[2])
	}
}

func TestLexerQuotedBracketInRegex(t *testing.T) {
	// A ']' inside a quoted label must not close the pattern.
	toks := lexAll(t, `-[:"weird]label"]->`)
	if toks[1].kind != tokRegex || !strings.Contains(toks[1].text, "weird]label") {
		t.Errorf("regex token = %v", toks[1])
	}
}

func TestLexerStringsAndNumbers(t *testing.T) {
	toks := lexAll(t, `"a\"b" -42 3.5 true`)
	if toks[0].kind != tokString || toks[0].text != `a"b` {
		t.Errorf("string token = %v", toks[0])
	}
	if toks[1].kind != tokNumber || toks[1].text != "-42" {
		t.Errorf("negative number = %v", toks[1])
	}
	if toks[2].kind != tokNumber || toks[2].text != "3.5" {
		t.Errorf("float = %v", toks[2])
	}
	if toks[3].kind != tokIdent || toks[3].text != "true" {
		t.Errorf("ident = %v", toks[3])
	}
}

func TestLexerComparisons(t *testing.T) {
	toks := lexAll(t, `= != < <= > >= <>`)
	wantTexts := []string{"=", "!=", "<", "<=", ">", ">=", "!="}
	if len(toks) != len(wantTexts) {
		t.Fatalf("tokens = %v", toks)
	}
	for i, want := range wantTexts {
		if toks[i].text != want {
			t.Errorf("token %d = %q, want %q", i, toks[i].text, want)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		`[unterminated`,
		`"unterminated`,
		`"bad escape \`,
		`!x`,
		"\x01",
	}
	for _, src := range cases {
		l := newLexer(src)
		var err error
		for i := 0; i < 10 && err == nil; i++ {
			err = l.next()
			if l.tok.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lexing %q should fail", src)
		}
	}
}

func TestTokenString(t *testing.T) {
	if (token{kind: tokEOF}).String() != "end of query" {
		t.Error("EOF token rendering")
	}
	if (token{kind: tokIdent, text: "MATCH"}).String() != `"MATCH"` {
		t.Error("ident token rendering")
	}
}

func TestNodeSpecString(t *testing.T) {
	q := MustParse(`MATCH WALK p = (?x:Person {name:"Moe", age:40})-[:K]->(y)`)
	s := q.Src.String()
	for _, want := range []string{"?x", ":Person", `name:"Moe"`, "age:40"} {
		if !strings.Contains(s, want) {
			t.Errorf("NodeSpec rendering missing %q: %s", want, s)
		}
	}
	if q.Dst.String() != "(?y)" {
		t.Errorf("dst rendering = %q", q.Dst.String())
	}
	empty := NodeSpec{}
	if empty.String() != "()" {
		t.Errorf("empty spec = %q", empty.String())
	}
	labeled := NodeSpec{Label: "Person"}
	if labeled.String() != "(:Person)" {
		t.Errorf("label-only spec = %q", labeled.String())
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on a bad query")
		}
	}()
	MustCompile("not a query")
}
