package gql_test

import (
	"testing"

	"pathalgebra/internal/gql"
)

// FuzzParseGQL asserts the query parser never panics: arbitrary input
// must yield either a query or an error. Parsed queries must additionally
// compile without panicking (compilation may still return an error).
func FuzzParseGQL(f *testing.F) {
	for _, seed := range []string{
		`MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
		`MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[:Knows*]->(?y) GROUP BY TARGET ORDER BY PATH`,
		`MATCH SIMPLE p = (?x:Person {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:"Apu"})`,
		`MATCH SHORTEST 2 GROUP ACYCLIC p = (?x)-[:Knows+]->(?y) WHERE len() <= 5`,
		`MATCH 3 PARTITIONS 2 GROUPS DESC ALL PATHS WALK p = (?x)-[-]->(?y)`,
		`MATCH p = (?x)-[:Knows]->(?y) WHERE label(edge(1)) = "Knows" AND NOT first.a = 1`,
		`MATCH`,
		`MATCH WALK`,
		`MATCH WALK p = (?x)-[`,
		`MATCH WALK p = (?x)-[]->(?y)`,
		`MATCH WALK p = (x-[:A]->(y)`,
		`MATCH WALK p = ()-[:A]->()`,
		`MATCH WALK p = (?x {a:})-[:A]->(?y)`,
		`match any shortest trail q = (?a)-[:k+]->(?b)`,
		`MATCH WALK p = (?x)-[:A]->(?y) GROUP BY`,
		`MATCH WALK p = (?x)-[:A]->(?y) ORDER BY WHERE`,
		"\x00[\"",
		`MATCH - -> -`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := gql.Parse(input)
		if err != nil {
			return
		}
		_, _ = gql.Compile(q)
	})
}
