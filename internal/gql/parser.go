package gql

import (
	"fmt"
	"strconv"
	"strings"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/rpq"
)

// Parse parses a path query in either the classic GQL form
//
//	MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)
//
// or the paper's extended form (§7.1)
//
//	MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[:Knows*]->(?y)
//	      GROUP BY TARGET ORDER BY PATH
//
// Endpoint specifications may carry a variable, a label and property
// filters: (?x:Person {name:"Moe"}). A WHERE clause accepts the selection
// condition syntax of §3.1. Keywords are case-insensitive.
func Parse(input string) (*Query, error) {
	p := &parser{lex: newLexer(input)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("gql: unexpected %s after query", p.tok)
	}
	return q, nil
}

// MustParse is Parse panicking on error, for fixtures and examples.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex    *lexer
	tok    token
	peeked []token // pushback stack for multi-token lookahead
}

func (p *parser) advance() error {
	if n := len(p.peeked); n > 0 {
		p.tok = p.peeked[n-1]
		p.peeked = p.peeked[:n-1]
		return nil
	}
	if err := p.lex.next(); err != nil {
		return err
	}
	p.tok = p.lex.tok
	return nil
}

// pushback makes tok the next token returned by advance, stashing the
// current token after it.
func (p *parser) pushback(tok token) {
	p.peeked = append(p.peeked, p.tok)
	p.tok = tok
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) eatKeyword(kw string) (bool, error) {
	if !p.isKeyword(kw) {
		return false, nil
	}
	return true, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	ok, err := p.eatKeyword(kw)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("gql: expected %s, got %s", kw, p.tok)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("MATCH"); err != nil {
		return nil, err
	}
	q := &Query{}
	if err := p.parseHeader(q); err != nil {
		return nil, err
	}
	if err := p.parsePathPattern(q); err != nil {
		return nil, err
	}
	if ok, err := p.eatKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		c, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		q.Where = c
	}
	if ok, err := p.eatKeyword("GROUP"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		key, err := p.parseGroupKey()
		if err != nil {
			return nil, err
		}
		q.GroupBy = &key
	}
	if ok, err := p.eatKeyword("ORDER"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		key, err := p.parseOrderKey()
		if err != nil {
			return nil, err
		}
		q.OrderBy = &key
	}
	if q.Proj == nil && (q.GroupBy != nil || q.OrderBy != nil) && q.Selector.Kind != SelNone {
		return nil, fmt.Errorf("gql: GROUP BY / ORDER BY require the extended projection syntax, not a %s selector", q.Selector)
	}
	return q, nil
}

// parseHeader parses the optional projection or selector clause followed
// by the restrictor. The grammar is disambiguated by lookahead: ALL / a
// number followed by PARTITIONS starts a projection; otherwise ALL, ANY
// and SHORTEST start a selector; a restrictor keyword ends the header.
func (p *parser) parseHeader(q *Query) error {
	if proj, ok, err := p.tryParseProjection(); err != nil {
		return err
	} else if ok {
		q.Proj = &proj
	} else if err := p.parseSelector(q); err != nil {
		return err
	}
	return p.parseRestrictor(q)
}

func (p *parser) tryParseProjection() (Projection, bool, error) {
	c, ok, err := p.tryParseCountWord("PARTITIONS")
	if err != nil || !ok {
		return Projection{}, false, err
	}
	proj := Projection{Parts: c}
	gc, ok, err := p.tryParseCountWord("GROUPS")
	if err != nil {
		return Projection{}, false, err
	}
	if !ok {
		return Projection{}, false, fmt.Errorf("gql: expected '(ALL|n) GROUPS' after PARTITIONS, got %s", p.tok)
	}
	proj.Groups = gc
	pc, ok, err := p.tryParseCountWord("PATHS")
	if err != nil {
		return Projection{}, false, err
	}
	if !ok {
		return Projection{}, false, fmt.Errorf("gql: expected '(ALL|n) PATHS' after GROUPS, got %s", p.tok)
	}
	proj.Paths = pc
	return proj, true, nil
}

// tryParseCountWord matches "(ALL | n) <unit>" with two-token lookahead,
// consuming nothing on a non-match.
func (p *parser) tryParseCountWord(unit string) (core.Count, bool, error) {
	var c core.Count
	switch {
	case p.isKeyword("ALL"):
		c = core.AllCount()
	case p.tok.kind == tokNumber:
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 1 {
			return c, false, fmt.Errorf("gql: bad count %q", p.tok.text)
		}
		c = core.NCount(n)
	default:
		return c, false, nil
	}
	first := p.tok
	if err := p.advance(); err != nil {
		return c, false, err
	}
	if !p.isKeyword(unit) {
		p.pushback(first)
		return c, false, nil
	}
	if err := p.advance(); err != nil {
		return c, false, err
	}
	// Optional DESC: project this level in descending rank order (the
	// paper's §5.3 Algorithm 1 extension).
	if ok, err := p.eatKeyword("DESC"); err != nil {
		return c, false, err
	} else if ok {
		c.Desc = true
	}
	return c, true, nil
}

func (p *parser) parseSelector(q *Query) error {
	switch {
	case p.isKeyword("ALL"):
		if err := p.advance(); err != nil {
			return err
		}
		if ok, err := p.eatKeyword("SHORTEST"); err != nil {
			return err
		} else if ok {
			q.Selector = Selector{Kind: SelAllShortest}
		} else {
			q.Selector = Selector{Kind: SelAll}
		}
	case p.isKeyword("ANY"):
		if err := p.advance(); err != nil {
			return err
		}
		switch {
		case p.isKeyword("SHORTEST"):
			if err := p.advance(); err != nil {
				return err
			}
			q.Selector = Selector{Kind: SelAnyShortest}
		case p.tok.kind == tokNumber:
			k, err := p.parsePositiveInt("ANY")
			if err != nil {
				return err
			}
			q.Selector = Selector{Kind: SelAnyK, K: k}
		default:
			q.Selector = Selector{Kind: SelAny}
		}
	case p.isKeyword("SHORTEST"):
		// Could be the selector "SHORTEST k [GROUP]" or the extended
		// restrictor SHORTEST; a following number disambiguates.
		first := p.tok
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokNumber {
			p.pushback(first)
			return nil // restrictor SHORTEST; leave for parseRestrictor
		}
		k, err := p.parsePositiveInt("SHORTEST")
		if err != nil {
			return err
		}
		if ok, err := p.eatKeyword("GROUP"); err != nil {
			return err
		} else if ok {
			q.Selector = Selector{Kind: SelShortestKGroup, K: k}
		} else {
			q.Selector = Selector{Kind: SelShortestK, K: k}
		}
	}
	return nil
}

func (p *parser) parsePositiveInt(clause string) (int, error) {
	if p.tok.kind != tokNumber {
		return 0, fmt.Errorf("gql: %s needs a positive integer, got %s", clause, p.tok)
	}
	k, err := strconv.Atoi(p.tok.text)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("gql: %s needs a positive integer, got %q", clause, p.tok.text)
	}
	return k, p.advance()
}

func (p *parser) parseRestrictor(q *Query) error {
	for _, kw := range []string{"WALK", "TRAIL", "ACYCLIC", "SIMPLE", "SHORTEST"} {
		if p.isKeyword(kw) {
			sem, err := core.ParseSemantics(kw)
			if err != nil {
				return err
			}
			q.Restrictor = sem
			return p.advance()
		}
	}
	// Restrictor absent: WALK is the GQL default.
	q.Restrictor = core.Walk
	return nil
}

func (p *parser) parsePathPattern(q *Query) error {
	// Optional "var =" prefix.
	if p.tok.kind == tokIdent {
		name := p.tok
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokEquals {
			q.PathVar = name.text
			if err := p.advance(); err != nil {
				return err
			}
		} else {
			p.pushback(name)
		}
	}
	src, err := p.parseNodeSpec()
	if err != nil {
		return err
	}
	q.Src = src
	if p.tok.kind != tokDash {
		return fmt.Errorf("gql: expected '-[' after source node, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokRegex {
		return fmt.Errorf("gql: expected '[regex]' after '-', got %s", p.tok)
	}
	re, err := rpq.Parse(p.tok.text)
	if err != nil {
		return fmt.Errorf("gql: in path pattern: %w", err)
	}
	q.Regex = re
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokArrow {
		return fmt.Errorf("gql: expected '->' after pattern, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return err
	}
	dst, err := p.parseNodeSpec()
	if err != nil {
		return err
	}
	q.Dst = dst
	return nil
}

func (p *parser) parseNodeSpec() (NodeSpec, error) {
	var n NodeSpec
	if p.tok.kind != tokLParen {
		return n, fmt.Errorf("gql: expected '(' starting a node specification, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return n, err
	}
	if p.tok.kind == tokQuestion {
		if err := p.advance(); err != nil {
			return n, err
		}
		if p.tok.kind != tokIdent {
			return n, fmt.Errorf("gql: expected variable name after '?', got %s", p.tok)
		}
	}
	if p.tok.kind == tokIdent {
		n.Var = p.tok.text
		if err := p.advance(); err != nil {
			return n, err
		}
	}
	if p.tok.kind == tokColon {
		if err := p.advance(); err != nil {
			return n, err
		}
		if p.tok.kind != tokIdent {
			return n, fmt.Errorf("gql: expected label after ':', got %s", p.tok)
		}
		n.Label = p.tok.text
		if err := p.advance(); err != nil {
			return n, err
		}
	}
	if p.tok.kind == tokLBrace {
		if err := p.advance(); err != nil {
			return n, err
		}
		for {
			if p.tok.kind != tokIdent {
				return n, fmt.Errorf("gql: expected property name, got %s", p.tok)
			}
			prop := p.tok.text
			if err := p.advance(); err != nil {
				return n, err
			}
			if p.tok.kind != tokColon {
				return n, fmt.Errorf("gql: expected ':' after property %q, got %s", prop, p.tok)
			}
			if err := p.advance(); err != nil {
				return n, err
			}
			v, err := p.parseLiteral()
			if err != nil {
				return n, err
			}
			n.Props = append(n.Props, PropFilter{Prop: prop, Value: v})
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return n, err
			}
		}
		if p.tok.kind != tokRBrace {
			return n, fmt.Errorf("gql: expected '}' closing properties, got %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return n, err
		}
	}
	if p.tok.kind != tokRParen {
		return n, fmt.Errorf("gql: expected ')' closing node specification, got %s", p.tok)
	}
	return n, p.advance()
}

func (p *parser) parseLiteral() (graph.Value, error) {
	tok := p.tok
	switch tok.kind {
	case tokString:
		return graph.StringValue(tok.text), p.advance()
	case tokNumber:
		if strings.Contains(tok.text, ".") {
			f, err := strconv.ParseFloat(tok.text, 64)
			if err != nil {
				return graph.Value{}, fmt.Errorf("gql: bad number %q: %w", tok.text, err)
			}
			return graph.FloatValue(f), p.advance()
		}
		i, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return graph.Value{}, fmt.Errorf("gql: bad number %q: %w", tok.text, err)
		}
		return graph.IntValue(i), p.advance()
	case tokIdent:
		if strings.EqualFold(tok.text, "true") || strings.EqualFold(tok.text, "false") {
			return graph.BoolValue(strings.EqualFold(tok.text, "true")), p.advance()
		}
		return graph.Value{}, fmt.Errorf("gql: expected literal, got identifier %q", tok.text)
	default:
		return graph.Value{}, fmt.Errorf("gql: expected literal, got %s", tok)
	}
}

func (p *parser) parseGroupKey() (core.GroupKey, error) {
	var key core.GroupKey
	any := false
	for {
		switch {
		case p.isKeyword("SOURCE"):
			key |= core.GroupSource
		case p.isKeyword("TARGET"):
			key |= core.GroupTarget
		case p.isKeyword("LENGTH"):
			key |= core.GroupLength
		default:
			if !any {
				return 0, fmt.Errorf("gql: GROUP BY needs SOURCE, TARGET and/or LENGTH, got %s", p.tok)
			}
			return key, nil
		}
		any = true
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
}

func (p *parser) parseOrderKey() (core.OrderKey, error) {
	var key core.OrderKey
	any := false
	for {
		switch {
		case p.isKeyword("PARTITION"):
			key |= core.OrderPartition
		case p.isKeyword("GROUP"):
			key |= core.OrderGroup
		case p.isKeyword("PATH"):
			key |= core.OrderPath
		default:
			if !any {
				return 0, fmt.Errorf("gql: ORDER BY needs PARTITION, GROUP and/or PATH, got %s", p.tok)
			}
			return key, nil
		}
		any = true
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
}

// parseCondition parses a §3.1 selection condition from the query token
// stream (the WHERE clause). It mirrors the standalone parser in
// internal/cond but operates on gql tokens so conditions integrate with
// the surrounding query grammar.
func (p *parser) parseCondition() (cond.Cond, error) {
	return p.parseCondOr()
}

func (p *parser) parseCondOr() (cond.Cond, error) {
	left, err := p.parseCondAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCondAnd()
		if err != nil {
			return nil, err
		}
		left = cond.Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseCondAnd() (cond.Cond, error) {
	left, err := p.parseCondUnary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCondUnary()
		if err != nil {
			return nil, err
		}
		left = cond.And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseCondUnary() (cond.Cond, error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseCondUnary()
		if err != nil {
			return nil, err
		}
		return cond.Not{C: inner}, nil
	}
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseCondOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("gql: expected ')' in condition, got %s", p.tok)
		}
		return inner, p.advance()
	}
	return p.parseCondSimple()
}

func (p *parser) parseCondSimple() (cond.Cond, error) {
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("gql: expected condition, got %s", p.tok)
	}
	switch {
	case strings.EqualFold(p.tok.text, "label"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKind(tokLParen, "("); err != nil {
			return nil, err
		}
		t, err := p.parseCondTarget()
		if err != nil {
			return nil, err
		}
		if err := p.expectKind(tokRParen, ")"); err != nil {
			return nil, err
		}
		op, err := p.parseCmpOp()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, fmt.Errorf("gql: label comparison needs a string, got %s", p.tok)
		}
		v := p.tok.text
		return cond.LabelCmp{Target: t, Op: op, Value: v}, p.advance()
	case strings.EqualFold(p.tok.text, "len"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKind(tokLParen, "("); err != nil {
			return nil, err
		}
		if err := p.expectKind(tokRParen, ")"); err != nil {
			return nil, err
		}
		op, err := p.parseCmpOp()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, fmt.Errorf("gql: len comparison needs an integer, got %s", p.tok)
		}
		k, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return nil, fmt.Errorf("gql: bad length %q", p.tok.text)
		}
		return cond.LenCmp{Op: op, K: k}, p.advance()
	default:
		t, err := p.parseCondTarget()
		if err != nil {
			return nil, err
		}
		if err := p.expectKind(tokDot, "."); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("gql: expected property name, got %s", p.tok)
		}
		prop := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		op, err := p.parseCmpOp()
		if err != nil {
			return nil, err
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return cond.PropCmp{Target: t, Prop: prop, Op: op, Value: v}, nil
	}
}

func (p *parser) parseCondTarget() (cond.Target, error) {
	if p.tok.kind != tokIdent {
		return cond.Target{}, fmt.Errorf("gql: expected first/last/node(i)/edge(i), got %s", p.tok)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return cond.Target{}, err
	}
	switch {
	case strings.EqualFold(name, "first"):
		return cond.First(), nil
	case strings.EqualFold(name, "last"):
		return cond.Last(), nil
	case strings.EqualFold(name, "node"), strings.EqualFold(name, "edge"):
		if err := p.expectKind(tokLParen, "("); err != nil {
			return cond.Target{}, err
		}
		if p.tok.kind != tokNumber {
			return cond.Target{}, fmt.Errorf("gql: %s() needs a position, got %s", name, p.tok)
		}
		i, err := strconv.Atoi(p.tok.text)
		if err != nil || i < 1 {
			return cond.Target{}, fmt.Errorf("gql: bad position %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return cond.Target{}, err
		}
		if err := p.expectKind(tokRParen, ")"); err != nil {
			return cond.Target{}, err
		}
		if strings.EqualFold(name, "node") {
			return cond.NodeAt(i), nil
		}
		return cond.EdgeAt(i), nil
	default:
		return cond.Target{}, fmt.Errorf("gql: unknown condition target %q", name)
	}
}

func (p *parser) parseCmpOp() (cond.Op, error) {
	switch p.tok.kind {
	case tokEquals:
		return cond.EQ, p.advance()
	case tokCmp:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return 0, err
		}
		switch text {
		case "!=":
			return cond.NE, nil
		case "<":
			return cond.LT, nil
		case "<=":
			return cond.LE, nil
		case ">":
			return cond.GT, nil
		case ">=":
			return cond.GE, nil
		}
		return 0, fmt.Errorf("gql: unknown operator %q", text)
	default:
		return 0, fmt.Errorf("gql: expected comparison operator, got %s", p.tok)
	}
}

func (p *parser) expectKind(k tokenKind, what string) error {
	if p.tok.kind != k {
		return fmt.Errorf("gql: expected %q, got %s", what, p.tok)
	}
	return p.advance()
}
