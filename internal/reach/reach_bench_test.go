package reach

import (
	"fmt"
	"testing"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/rpq"
)

// benchGraph builds a deterministic 256-node graph shaped like a
// reachability workload: a labelled ring with skip chords, ~3 out-edges
// per node over two labels.
func benchGraph(tb testing.TB) *graph.Graph {
	tb.Helper()
	const n = 256
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), "N", nil)
	}
	eid := 0
	edge := func(src, dst int, label string) {
		b.AddEdge(fmt.Sprintf("e%d", eid), fmt.Sprintf("n%d", src), fmt.Sprintf("n%d", dst), label, nil)
		eid++
	}
	for i := 0; i < n; i++ {
		edge(i, (i+1)%n, "a")
		edge(i, (i+7)%n, "b")
		if i%3 == 0 {
			edge(i, (i+31)%n, "a")
		}
	}
	g, err := b.Build()
	if err != nil {
		tb.Fatalf("Build: %v", err)
	}
	return g
}

// benchLimits is large enough that no benchmark run trips the budget
// even with counters accumulating across iterations.
var benchLimits = core.Limits{MaxLen: 6, MaxPaths: 1 << 62, MaxWork: 1 << 62}

// BenchmarkReachKernelSteady is the allocation gate's subject: the
// kernel hot loop with evaluator, result and budget reused must run at
// ZERO allocs/op — no path arena, no per-op scratch.
func BenchmarkReachKernelSteady(b *testing.B) {
	g := benchGraph(b)
	nfa := automaton.Build(rpq.Plus{In: rpq.Label{Name: "a"}})
	ev, ok := NewEvaluator(g, nfa)
	if !ok {
		b.Fatal("bitset index infeasible")
	}
	bud := core.NewBudget(benchLimits)
	q := Query{NFA: nfa, MaxLen: benchLimits.MaxLen, NeedLengths: true}
	var res Result
	// Warm up once so result slices reach steady capacity.
	if err := ev.EvalInto(&res, q, bud); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.EvalInto(&res, q, bud); err != nil {
			b.Fatalf("EvalInto: %v", err)
		}
	}
}

// BenchmarkReachKernelVsEnumeration compares the two kernels on the
// same reachability-shaped query (all-pairs endpoint set + shortest
// lengths for a+ under MaxLen): the numbers feed BENCH_pr9.json. The
// enumeration side uses Shortest semantics — the cheapest enumerating
// route to the same answer (Walk would enumerate every walk body).
func BenchmarkReachKernelVsEnumeration(b *testing.B) {
	g := benchGraph(b)
	expr := rpq.Plus{In: rpq.Label{Name: "a"}}
	b.Run("kernel", func(b *testing.B) {
		nfa := automaton.Build(expr)
		ev, ok := NewEvaluator(g, nfa)
		if !ok {
			b.Fatal("bitset index infeasible")
		}
		bud := core.NewBudget(benchLimits)
		q := Query{NFA: nfa, MaxLen: benchLimits.MaxLen, NeedLengths: true}
		var res Result
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ev.EvalInto(&res, q, bud); err != nil {
				b.Fatalf("EvalInto: %v", err)
			}
		}
	})
	b.Run("enumeration", func(b *testing.B) {
		nfa := automaton.Build(expr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := automaton.Eval(g, nfa, core.Shortest, benchLimits); err != nil {
				b.Fatalf("automaton.Eval: %v", err)
			}
		}
	})
}
