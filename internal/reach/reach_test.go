package reach

import (
	"context"
	"errors"
	"sort"
	"testing"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/rpq"
)

// fixture builds the multigraph the kernel tests run against:
//
//	n0 -a-> n1, n0 -a-> n2, n1 -b-> n2, n2 -a-> n0,
//	n2 -b-> n3, n3 -b-> n3, n1 -a-> n3, plus the parallel
//	edges n3 =a=> n4 (e7, e8) — two a-edges between the same endpoints.
func fixture(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for _, k := range []string{"n0", "n1", "n2", "n3", "n4"} {
		b.AddNode(k, "N", nil)
	}
	b.AddEdge("e0", "n0", "n1", "a", nil)
	b.AddEdge("e1", "n0", "n2", "a", nil)
	b.AddEdge("e2", "n1", "n2", "b", nil)
	b.AddEdge("e3", "n2", "n0", "a", nil)
	b.AddEdge("e4", "n2", "n3", "b", nil)
	b.AddEdge("e5", "n3", "n3", "b", nil)
	b.AddEdge("e6", "n1", "n3", "a", nil)
	b.AddEdge("e7", "n3", "n4", "a", nil)
	b.AddEdge("e8", "n3", "n4", "a", nil)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// erasePaths derives the reference answer from an enumerated path set:
// the distinct endpoint pairs and the minimum walk length per pair.
func erasePaths(t *testing.T, g *graph.Graph, e rpq.Expr, lim core.Limits) (pairs []Pair, minLen map[Pair]int32) {
	t.Helper()
	set, err := automaton.Eval(g, automaton.Build(e), core.Walk, lim)
	if err != nil {
		t.Fatalf("automaton.Eval: %v", err)
	}
	minLen = map[Pair]int32{}
	for _, p := range set.Paths() {
		pr := Pair{Src: p.First(), Dst: p.Last()}
		if cur, ok := minLen[pr]; !ok || int32(p.Len()) < cur {
			minLen[pr] = int32(p.Len())
		}
	}
	for pr := range minLen {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	return pairs, minLen
}

var kernelExprs = []struct {
	name string
	e    rpq.Expr
}{
	{"a+", rpq.Plus{In: rpq.Label{Name: "a"}}},
	{"b+", rpq.Plus{In: rpq.Label{Name: "b"}}},
	{"(a|b)+", rpq.Plus{In: rpq.Alt{L: rpq.Label{Name: "a"}, R: rpq.Label{Name: "b"}}}},
	{"any+", rpq.Plus{In: rpq.AnyLabel{}}},
	{"a.b", rpq.Concat{L: rpq.Label{Name: "a"}, R: rpq.Label{Name: "b"}}},
	{"a*", rpq.Star{In: rpq.Label{Name: "a"}}}, // nullable: empty word accepted
	{"a.b*.a", rpq.Concat{L: rpq.Label{Name: "a"}, R: rpq.Concat{L: rpq.Star{In: rpq.Label{Name: "b"}}, R: rpq.Label{Name: "a"}}}},
	{"missing-label", rpq.Plus{In: rpq.Label{Name: "zzz"}}},
}

func TestKernelMatchesEnumeration(t *testing.T) {
	g := fixture(t)
	lim := core.Limits{MaxLen: 5}
	for _, tc := range kernelExprs {
		t.Run(tc.name, func(t *testing.T) {
			wantPairs, wantLen := erasePaths(t, g, tc.e, lim)
			res, err := Eval(context.Background(), g, Query{NFA: automaton.Build(tc.e), NeedLengths: true}, lim)
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			if len(res.Pairs) != len(wantPairs) {
				t.Fatalf("pair count: kernel %d, enumeration %d\nkernel: %v\nwant: %v",
					len(res.Pairs), len(wantPairs), res.Pairs, wantPairs)
			}
			for i, pr := range res.Pairs {
				if pr != wantPairs[i] {
					t.Fatalf("pair %d: kernel %v, enumeration %v", i, pr, wantPairs[i])
				}
				if res.Lengths[i] != wantLen[pr] {
					t.Fatalf("pair %v: kernel length %d, enumeration min %d", pr, res.Lengths[i], wantLen[pr])
				}
			}
		})
	}
}

// TestKernelParallelEdges pins the pair-vs-path distinction: two parallel
// a-edges n3=>n4 admit exactly ONE endpoint pair even though enumeration
// yields two distinct paths — the reason γ path-count queries must never
// route onto this kernel.
func TestKernelParallelEdges(t *testing.T) {
	g := fixture(t)
	lim := core.Limits{MaxLen: 1}
	e := rpq.Plus{In: rpq.Label{Name: "a"}}
	set, err := automaton.Eval(g, automaton.Build(e), core.Walk, lim)
	if err != nil {
		t.Fatalf("automaton.Eval: %v", err)
	}
	n3, _ := g.NodeByKey("n3")
	n4, _ := g.NodeByKey("n4")
	enumerated := 0
	for _, p := range set.Paths() {
		if p.First() == n3.ID && p.Last() == n4.ID {
			enumerated++
		}
	}
	if enumerated != 2 {
		t.Fatalf("expected 2 parallel-edge paths n3->n4, enumeration found %d", enumerated)
	}
	res, err := Eval(context.Background(), g, Query{NFA: automaton.Build(e), Seeds: []graph.NodeID{n3.ID}}, lim)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	kernelPairs := 0
	for _, pr := range res.Pairs {
		if pr == (Pair{Src: n3.ID, Dst: n4.ID}) {
			kernelPairs++
		}
	}
	if kernelPairs != 1 {
		t.Fatalf("kernel admitted the n3->n4 pair %d times, want exactly 1", kernelPairs)
	}
}

func TestKernelSeedsAndTargets(t *testing.T) {
	g := fixture(t)
	lim := core.Limits{MaxLen: 4}
	e := rpq.Plus{In: rpq.Alt{L: rpq.Label{Name: "a"}, R: rpq.Label{Name: "b"}}}
	allPairs, wantLen := erasePaths(t, g, e, lim)
	seeds := []graph.NodeID{0, 2}
	targets := []graph.NodeID{3, 4}
	inSet := func(ids []graph.NodeID, v graph.NodeID) bool {
		for _, id := range ids {
			if id == v {
				return true
			}
		}
		return false
	}
	var want []Pair
	for _, pr := range allPairs {
		if inSet(seeds, pr.Src) && inSet(targets, pr.Dst) {
			want = append(want, pr)
		}
	}
	res, err := Eval(context.Background(), g,
		Query{NFA: automaton.Build(e), Seeds: seeds, Targets: targets, NeedLengths: true}, lim)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(res.Pairs) != len(want) {
		t.Fatalf("restricted pairs: kernel %v, want %v", res.Pairs, want)
	}
	for i, pr := range res.Pairs {
		if pr != want[i] || res.Lengths[i] != wantLen[pr] {
			t.Fatalf("pair %d: kernel (%v, len %d), want (%v, len %d)", i, pr, res.Lengths[i], want[i], wantLen[want[i]])
		}
	}

	// Non-nil empty seed/target sets mean zero, not all.
	res, err = Eval(context.Background(), g, Query{NFA: automaton.Build(e), Seeds: []graph.NodeID{}}, lim)
	if err != nil || len(res.Pairs) != 0 {
		t.Fatalf("empty seed set: got %v pairs, err %v; want none", res.Pairs, err)
	}
	res, err = Eval(context.Background(), g, Query{NFA: automaton.Build(e), Targets: []graph.NodeID{}}, lim)
	if err != nil || len(res.Pairs) != 0 {
		t.Fatalf("empty target set: got %v pairs, err %v; want none", res.Pairs, err)
	}
}

func TestKernelParallelDeterminism(t *testing.T) {
	g := fixture(t)
	lim := core.Limits{MaxLen: 6}
	for _, tc := range kernelExprs {
		seq, err := Eval(context.Background(), g, Query{NFA: automaton.Build(tc.e), NeedLengths: true}, lim)
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.name, err)
		}
		par, err := Eval(context.Background(), g, Query{NFA: automaton.Build(tc.e), NeedLengths: true, Workers: 8}, lim)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.name, err)
		}
		if len(seq.Pairs) != len(par.Pairs) {
			t.Fatalf("%s: %d pairs sequential vs %d parallel", tc.name, len(seq.Pairs), len(par.Pairs))
		}
		for i := range seq.Pairs {
			if seq.Pairs[i] != par.Pairs[i] || seq.Lengths[i] != par.Lengths[i] {
				t.Fatalf("%s: divergence at %d: %v/%d vs %v/%d",
					tc.name, i, seq.Pairs[i], seq.Lengths[i], par.Pairs[i], par.Lengths[i])
			}
		}
	}
}

func TestKernelBudgetAndCancel(t *testing.T) {
	g := fixture(t)
	e := rpq.Plus{In: rpq.AnyLabel{}}
	_, err := Eval(context.Background(), g, Query{NFA: automaton.Build(e)}, core.Limits{MaxLen: 6, MaxWork: 3})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("tiny MaxWork: got %v, want ErrBudgetExceeded", err)
	}
	_, err = Eval(context.Background(), g, Query{NFA: automaton.Build(e)}, core.Limits{MaxLen: 6, MaxPaths: 2})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("tiny MaxPaths: got %v, want ErrBudgetExceeded", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Eval(ctx, g, Query{NFA: automaton.Build(e)}, core.Limits{MaxLen: 6})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: got %v, want context.Canceled", err)
	}
}

// TestKernelOverlay evaluates on a delta view (appends + deletes, with
// the base's index built first so the patch path is exercised) and
// cross-checks against enumeration over the same view.
func TestKernelOverlay(t *testing.T) {
	s := graph.NewStore(fixture(t), graph.StoreOptions{CompactThreshold: -1})
	defer s.Close()
	if _, ok := s.Graph().Bitsets(); !ok {
		t.Fatal("base Bitsets infeasible")
	}
	if _, err := s.Apply(graph.Batch{Ops: []graph.Op{
		{Kind: graph.OpAddNode, Key: "n5", Label: "N"},
		{Kind: graph.OpAddEdge, Key: "e9", Src: "n4", Dst: "n5", Label: "b"},
		{Kind: graph.OpAddEdge, Key: "e10", Src: "n5", Dst: "n0", Label: "a"},
		{Kind: graph.OpDelEdge, Key: "e1"},
		{Kind: graph.OpDelNode, Key: "n1"},
	}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	g := s.Graph()
	lim := core.Limits{MaxLen: 5}
	for _, tc := range kernelExprs {
		wantPairs, wantLen := erasePaths(t, g, tc.e, lim)
		res, err := Eval(context.Background(), g, Query{NFA: automaton.Build(tc.e), NeedLengths: true}, lim)
		if err != nil {
			t.Fatalf("%s: Eval: %v", tc.name, err)
		}
		if len(res.Pairs) != len(wantPairs) {
			t.Fatalf("%s on overlay: kernel %v, enumeration %v", tc.name, res.Pairs, wantPairs)
		}
		for i, pr := range res.Pairs {
			if pr != wantPairs[i] || res.Lengths[i] != wantLen[pr] {
				t.Fatalf("%s on overlay: pair %d kernel (%v, %d) vs enumeration (%v, %d)",
					tc.name, i, pr, res.Lengths[i], wantPairs[i], wantLen[wantPairs[i]])
			}
		}
	}
}

// TestKernelInfeasibleIndex: an over-cap graph reports ErrInfeasible
// rather than answering wrong.
func TestKernelInfeasibleIndex(t *testing.T) {
	old := graph.MaxBitsetBytes
	graph.MaxBitsetBytes = 8
	defer func() { graph.MaxBitsetBytes = old }()
	g := fixture(t)
	_, err := Eval(context.Background(), g,
		Query{NFA: automaton.Build(rpq.Plus{In: rpq.Label{Name: "a"}})}, core.Limits{MaxLen: 3})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("got %v, want ErrInfeasible", err)
	}
}
