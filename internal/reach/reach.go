// Package reach is the bitset reachability kernel: the second evaluation
// kernel next to the path-enumerating product search of internal/
// automaton, for queries whose answer is invariant under path-body
// erasure — EXISTS, endpoint pairs, counts of distinct endpoints, and
// ANY SHORTEST lengths. It runs a multiple-source BFS over the NFA×graph
// product, but represents each product layer as one node bitset per NFA
// state and takes BFS steps as word-parallel ORs of per-symbol successor
// rows (graph.BitsetIndex) — the boolean-matrix form of the RPQ product
// construction. No path is ever materialized: the kernel's only outputs
// are (source, destination) pairs and, on request, the minimum accepted
// walk length per pair, which for both Walk and Shortest semantics under
// a shared MaxLen horizon coincides with what erasing the bodies of the
// enumerating kernel's output would produce.
//
// Budget discipline: every frontier row scan and every successor-row OR
// charges the shared core.Budget proportionally to the words it touches,
// and every admitted pair charges one path of its BFS depth — so
// MaxWork/MaxPaths bound the kernel exactly like the enumerating search,
// and Cancel (or a context attached via Budget.Watch) aborts it at the
// next charge.
package reach

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
)

// ErrInfeasible reports that the graph's bitset index exceeds
// graph.MaxBitsetBytes; callers must fall back to the enumerating kernel.
var ErrInfeasible = errors.New("reach: bitset index infeasible for this graph (over graph.MaxBitsetBytes)")

// Pair is one reachability answer: some accepted walk runs Src→Dst.
type Pair struct {
	Src, Dst graph.NodeID
}

// Query describes one kernel evaluation.
type Query struct {
	// NFA is the Glushkov automaton of the (forward) path expression.
	NFA *automaton.NFA
	// Seeds are the BFS sources, ascending. nil means every live node;
	// a non-nil empty slice means zero sources (the engine's seed-set
	// convention).
	Seeds []graph.NodeID
	// Targets restricts the admitted destinations. nil means every
	// node; non-nil empty means none.
	Targets []graph.NodeID
	// MaxLen caps the BFS depth (accepted walk edge length); <= 0 means
	// no cap — the product fixpoint still terminates.
	MaxLen int
	// NeedLengths asks for Result.Lengths (ANY SHORTEST length-only).
	NeedLengths bool
	// Workers shards the sources across goroutines when > 1.
	Workers int
}

// Result is a kernel answer: pairs ascending by (Src, Dst), and when
// requested the minimum accepted walk length of each pair, parallel to
// Pairs. Deterministic at any Workers setting.
type Result struct {
	Pairs   []Pair
	Lengths []int32
}

// symTargets is one compiled labelled transition group: reading an edge
// with symbol sym moves the product into every state of to.
type symTargets struct {
	sym graph.SymbolID
	to  []automaton.StateID
}

// stateProg is the compiled transition program of one NFA state:
// wildcard targets consume the any-label successor row, labelled targets
// the per-symbol row. Labels no live edge carries compile to nothing,
// and labelled targets subsumed by a wildcard target are dropped.
type stateProg struct {
	anyTo []automaton.StateID
	symTo []symTargets
	// bitCost is the budget charge per frontier bit processed in this
	// state: the words of every successor-row OR the bit triggers.
	bitCost int
}

// Evaluator is a compiled (graph, NFA) kernel instance with reusable
// scratch. Not safe for concurrent use; the parallel path gives each
// worker its own scratch.
type Evaluator struct {
	g   *graph.Graph
	ix  *graph.BitsetIndex
	nfa *automaton.NFA

	prog      []stateProg
	accepting []automaton.StateID // accepting states reachable at depth >= 1
	words, n  int

	scr        scratch
	seedBuf    []graph.NodeID
	targetMask []uint64
}

// scratch is one worker's BFS state: per-NFA-state node bitsets for the
// current frontier, the visited product set and the next layer, plus the
// accepted-destination accumulator and per-node first-acceptance depths.
type scratch struct {
	frontier, seen, next [][]uint64
	acc                  []uint64
	lens                 []int32
}

func newScratch(states, words, n int) *scratch {
	scr := &scratch{
		frontier: makeRows(states, words),
		seen:     makeRows(states, words),
		next:     makeRows(states, words),
		acc:      make([]uint64, words),
		lens:     make([]int32, n),
	}
	return scr
}

func makeRows(states, words int) [][]uint64 {
	backing := make([]uint64, states*words)
	rows := make([][]uint64, states)
	for s := range rows {
		rows[s] = backing[s*words : (s+1)*words : (s+1)*words]
	}
	return rows
}

// reset clears every bitset for the next source. lens needs no clearing:
// it is only read under an acc bit, and always written before that bit
// sets.
func (scr *scratch) reset() {
	for s := range scr.frontier {
		clearWords(scr.frontier[s])
		clearWords(scr.seen[s])
		clearWords(scr.next[s])
	}
	clearWords(scr.acc)
}

//pathalgebra:hotpath
func clearWords(row []uint64) {
	for i := range row {
		row[i] = 0
	}
}

//pathalgebra:hotpath
func orRow(dst, src []uint64) {
	for i, w := range src {
		dst[i] |= w
	}
}

// NewEvaluator compiles the NFA's transition program against the graph's
// bitset index. ok is false when the index is infeasible
// (graph.MaxBitsetBytes); the caller must then use the enumerating
// kernel.
func NewEvaluator(g *graph.Graph, nfa *automaton.NFA) (*Evaluator, bool) {
	ix, ok := g.Bitsets()
	if !ok {
		return nil, false
	}
	ev := &Evaluator{g: g, ix: ix, nfa: nfa, words: ix.Words(), n: ix.NumNodes()}
	ev.prog = compileProg(g, nfa, ev.words)
	for s := 1; s < nfa.NumStates(); s++ { // state 0 is never re-entered
		if nfa.Accepting(automaton.StateID(s)) {
			ev.accepting = append(ev.accepting, automaton.StateID(s))
		}
	}
	ev.scr = *newScratch(nfa.NumStates(), ev.words, ev.n)
	return ev, true
}

func compileProg(g *graph.Graph, nfa *automaton.NFA, words int) []stateProg {
	states := nfa.NumStates()
	prog := make([]stateProg, states)
	for s := 0; s < states; s++ {
		var anyTo []automaton.StateID
		perSym := map[graph.SymbolID][]automaton.StateID{}
		var symsSeen []graph.SymbolID
		nfa.VisitAll(automaton.StateID(s), func(q automaton.StateID, label string, any bool) {
			if any {
				anyTo = appendState(anyTo, q)
				return
			}
			sym := g.SymbolOf(label)
			if sym == graph.NoSymbol {
				return // no live edge carries this label
			}
			if _, seen := perSym[sym]; !seen {
				symsSeen = append(symsSeen, sym)
			}
			perSym[sym] = appendState(perSym[sym], q)
		})
		var symTo []symTargets
		for _, sym := range symsSeen {
			to := perSym[sym][:0]
			for _, q := range perSym[sym] {
				if !containsState(anyTo, q) { // wildcard row subsumes sym row
					to = append(to, q)
				}
			}
			if len(to) > 0 {
				symTo = append(symTo, symTargets{sym: sym, to: to})
			}
		}
		sort.Slice(symTo, func(i, j int) bool { return symTo[i].sym < symTo[j].sym })
		ors := len(anyTo)
		for i := range symTo {
			ors += len(symTo[i].to)
		}
		prog[s] = stateProg{anyTo: anyTo, symTo: symTo, bitCost: ors * words}
	}
	return prog
}

func appendState(dst []automaton.StateID, q automaton.StateID) []automaton.StateID {
	if containsState(dst, q) {
		return dst
	}
	return append(dst, q)
}

func containsState(ss []automaton.StateID, q automaton.StateID) bool {
	for _, s := range ss {
		if s == q {
			return true
		}
	}
	return false
}

// chargeErr resolves the typed error behind a failed budget charge.
func chargeErr(bud *core.Budget) error {
	if err := bud.Err(); err != nil {
		return err
	}
	return core.ErrBudgetExceeded
}

// Eval is the one-shot entry point: compile, attach ctx to a fresh
// budget derived from lim, and evaluate. The query's MaxLen is taken
// from lim.
func Eval(ctx context.Context, g *graph.Graph, q Query, lim core.Limits) (*Result, error) {
	ev, ok := NewEvaluator(g, q.NFA)
	if !ok {
		return nil, ErrInfeasible
	}
	bud := core.NewBudget(lim)
	stop := bud.Watch(ctx)
	defer stop()
	q.MaxLen = lim.MaxLen
	res := &Result{}
	if err := ev.EvalInto(res, q, bud); err != nil {
		return nil, err
	}
	return res, nil
}

// EvalInto evaluates q into res, reusing res's slices and the
// evaluator's scratch — the steady-state path is allocation-free at
// Workers <= 1. The budget is shared across all workers.
func (ev *Evaluator) EvalInto(res *Result, q Query, bud *core.Budget) error {
	res.Pairs = res.Pairs[:0]
	res.Lengths = res.Lengths[:0]
	seeds := ev.resolveSeeds(q.Seeds)
	mask := ev.resolveTargets(q.Targets)
	if q.Workers > 1 && len(seeds) > 1 {
		return ev.evalParallel(res, q, seeds, mask, bud)
	}
	for i, s := range seeds {
		if i > 0 && s == seeds[i-1] {
			continue
		}
		if err := ev.runSource(&ev.scr, s, q.MaxLen, q.NeedLengths, mask, bud, &res.Pairs, &res.Lengths); err != nil {
			return err
		}
	}
	return nil
}

// resolveSeeds normalizes the source set: nil expands to every live
// node; an unsorted explicit set is sorted into the reusable buffer.
func (ev *Evaluator) resolveSeeds(seeds []graph.NodeID) []graph.NodeID {
	if seeds != nil {
		sorted := true
		for i := 1; i < len(seeds); i++ {
			if seeds[i-1] > seeds[i] {
				sorted = false
				break
			}
		}
		if sorted {
			return seeds
		}
		ev.seedBuf = append(ev.seedBuf[:0], seeds...)
		sort.Slice(ev.seedBuf, func(i, j int) bool { return ev.seedBuf[i] < ev.seedBuf[j] })
		return ev.seedBuf
	}
	ev.seedBuf = ev.seedBuf[:0]
	for v := 0; v < ev.n; v++ {
		if ev.g.NodeAlive(graph.NodeID(v)) {
			ev.seedBuf = append(ev.seedBuf, graph.NodeID(v))
		}
	}
	return ev.seedBuf
}

// resolveTargets builds the destination mask; nil means unrestricted.
func (ev *Evaluator) resolveTargets(targets []graph.NodeID) []uint64 {
	if targets == nil {
		return nil
	}
	if cap(ev.targetMask) < ev.words {
		ev.targetMask = make([]uint64, ev.words)
	} else {
		ev.targetMask = ev.targetMask[:ev.words]
		clearWords(ev.targetMask)
	}
	for _, t := range targets {
		ev.targetMask[t>>6] |= 1 << (t & 63)
	}
	return ev.targetMask
}

// runSource runs one source's product BFS and appends its admitted
// pairs (destinations ascending) to *pairs. The inner loops work on
// whole bitset words: a frontier bit pulls the successor rows its
// state's program selects and ORs them into the next layer — OR
// idempotence makes overlapping transitions harmless.
//
//pathalgebra:hotpath
func (ev *Evaluator) runSource(scr *scratch, src graph.NodeID, maxLen int, needLens bool, mask []uint64, bud *core.Budget, pairs *[]Pair, lens *[]int32) error {
	words := ev.words
	scr.reset()
	scr.frontier[0][src>>6] |= 1 << (src & 63)
	scr.seen[0][src>>6] |= 1 << (src & 63)
	if ev.nfa.AcceptsEmpty() {
		if mask == nil || mask[src>>6]&(1<<(src&63)) != 0 {
			if !bud.ChargePath(0) {
				return chargeErr(bud)
			}
			scr.acc[src>>6] |= 1 << (src & 63)
			scr.lens[src] = 0
		}
	}
	for depth := 1; maxLen <= 0 || depth <= maxLen; depth++ {
		// Expand: OR each frontier bit's successor rows into next.
		for s := range scr.frontier {
			p := &ev.prog[s]
			if len(p.anyTo) == 0 && len(p.symTo) == 0 {
				continue
			}
			if !bud.ChargeWork(words) { // the frontier-row scan
				return chargeErr(bud)
			}
			for w, word := range scr.frontier[s] {
				for word != 0 {
					v := graph.NodeID(w<<6 + bits.TrailingZeros64(word))
					word &= word - 1
					if !bud.ChargeWork(p.bitCost) {
						return chargeErr(bud)
					}
					if len(p.anyTo) > 0 {
						r := ev.ix.AnyRow(v)
						for _, q := range p.anyTo {
							orRow(scr.next[q], r)
						}
					}
					for i := range p.symTo {
						r := ev.ix.OutRow(p.symTo[i].sym, v)
						for _, q := range p.symTo[i].to {
							orRow(scr.next[q], r)
						}
					}
				}
			}
		}
		// Fold: next minus seen is the new frontier.
		anyNew := false
		for s := range scr.next {
			nxt, sn, fr := scr.next[s], scr.seen[s], scr.frontier[s]
			for w := range nxt {
				nw := nxt[w] &^ sn[w]
				sn[w] |= nw
				fr[w] = nw
				nxt[w] = 0
				anyNew = anyNew || nw != 0
			}
		}
		if !anyNew {
			break
		}
		// Admit: nodes newly in an accepting state finish a minimum-
		// length accepted walk at this exact depth.
		for _, q := range ev.accepting {
			fr := scr.frontier[q]
			for w := range fr {
				na := fr[w] &^ scr.acc[w]
				if na == 0 {
					continue
				}
				scr.acc[w] |= na
				if mask != nil {
					na &= mask[w]
				}
				for na != 0 {
					d := graph.NodeID(w<<6 + bits.TrailingZeros64(na))
					na &= na - 1
					if !bud.ChargePath(depth) {
						return chargeErr(bud)
					}
					if needLens {
						scr.lens[d] = int32(depth)
					}
				}
			}
		}
	}
	// Emit ascending by destination.
	for w := range scr.acc {
		word := scr.acc[w]
		if mask != nil {
			word &= mask[w]
		}
		for word != 0 {
			d := graph.NodeID(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			*pairs = append(*pairs, Pair{Src: src, Dst: d})
			if needLens {
				*lens = append(*lens, scr.lens[d])
			}
		}
	}
	return nil
}

// evalParallel shards the sources over Workers goroutines against the
// shared budget and reassembles the per-source blocks in seed order, so
// the result is identical to the sequential path. A worker panic is
// contained: it cancels the budget (aborting the other workers at their
// next charge) and surfaces as an error.
func (ev *Evaluator) evalParallel(res *Result, q Query, seeds []graph.NodeID, mask []uint64, bud *core.Budget) error {
	type block struct {
		pairs []Pair
		lens  []int32
	}
	blocks := make([]block, len(seeds))
	workers := q.Workers
	if workers > len(seeds) {
		workers = len(seeds)
	}
	var cursor atomic.Int64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					err := fmt.Errorf("reach: kernel worker panic: %v", r)
					firstErr.CompareAndSwap(nil, &err)
					bud.Cancel(err)
				}
			}()
			scr := newScratch(len(ev.prog), ev.words, ev.n)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(seeds) {
					return
				}
				if i > 0 && seeds[i] == seeds[i-1] {
					continue
				}
				if err := ev.runSource(scr, seeds[i], q.MaxLen, q.NeedLengths, mask, bud, &blocks[i].pairs, &blocks[i].lens); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return *errp
	}
	for i := range blocks {
		res.Pairs = append(res.Pairs, blocks[i].pairs...)
		if q.NeedLengths {
			res.Lengths = append(res.Lengths, blocks[i].lens...)
		}
	}
	return nil
}
