package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTrace pins the disabled-tracing contract: the entire span
// API chains off nil without panicking or doing anything.
func TestNilTrace(t *testing.T) {
	var tr *Trace
	sp := tr.Start("root")
	if sp != nil {
		t.Fatal("nil trace must yield nil spans")
	}
	child := sp.Start("child")
	if child != nil {
		t.Fatal("nil span must yield nil children")
	}
	sp.End()
	sp.SetInt("k", 1)
	sp.AddInt("k", 1)
	sp.MaxInt("k", 1)
	if tr.Tree() != nil || tr.Format() != "" || tr.Summary() != "" {
		t.Fatal("nil trace must render empty")
	}
	ctx := context.Background()
	if WithSpan(ctx, nil) != ctx {
		t.Fatal("WithSpan(nil) must not wrap the context")
	}
	if SpanFrom(ctx) != nil || SpanFrom(nil) != nil {
		t.Fatal("SpanFrom on a bare context must be nil")
	}
}

// TestTraceTree builds a small span tree and checks structure, attr
// merging, and the consistency invariant the acceptance criteria name:
// child spans nest within their parent's interval, so per-phase
// durations sum to no more than the parent's.
func TestTraceTree(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("query")
	parse := root.Start("parse")
	time.Sleep(time.Millisecond)
	parse.SetInt("tokens", 12)
	parse.End()
	eval := root.Start("eval")
	sh := eval.Start("shard")
	sh.AddInt("paths", 3)
	sh.AddInt("paths", 4)
	sh.MaxInt("frontier", 9)
	sh.MaxInt("frontier", 5)
	time.Sleep(time.Millisecond)
	sh.End()
	eval.End()
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "query" {
		t.Fatalf("want one root 'query', got %+v", roots)
	}
	q := roots[0]
	if len(q.Children) != 2 || q.Children[0].Name != "parse" || q.Children[1].Name != "eval" {
		t.Fatalf("bad children: %+v", q.Children)
	}
	shj := q.Children[1].Children[0]
	if shj.Attrs["paths"] != 7 || shj.Attrs["frontier"] != 9 {
		t.Fatalf("attr merge wrong: %+v", shj.Attrs)
	}
	// Containment + duration consistency.
	var sum int64
	for _, c := range q.Children {
		if c.StartUS < q.StartUS || c.StartUS+c.DurUS > q.StartUS+q.DurUS {
			t.Fatalf("child %s [%d,%d] escapes parent [%d,%d]",
				c.Name, c.StartUS, c.StartUS+c.DurUS, q.StartUS, q.StartUS+q.DurUS)
		}
		sum += c.DurUS
	}
	if sum > q.DurUS {
		t.Fatalf("children duration sum %dus > parent %dus", sum, q.DurUS)
	}

	txt := tr.Format()
	if !strings.Contains(txt, "query ") || !strings.Contains(txt, "  parse ") ||
		!strings.Contains(txt, "    shard ") || !strings.Contains(txt, "frontier=9 paths=7") {
		t.Fatalf("Format output wrong:\n%s", txt)
	}
	sum2 := tr.Summary()
	if !strings.Contains(sum2, "parse=") || !strings.Contains(sum2, "eval=") ||
		!strings.Contains(sum2, "(×1)") {
		t.Fatalf("Summary wrong: %q", sum2)
	}
}

// TestTraceOpenSpans checks Tree closes still-open spans at render
// time instead of producing zero/negative durations.
func TestTraceOpenSpans(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("open")
	time.Sleep(2 * time.Millisecond)
	roots := tr.Tree()
	if len(roots) != 1 || roots[0].DurUS < 1000 {
		t.Fatalf("open span should report elapsed time, got %+v", roots)
	}
	sp.End()
	end1 := tr.Tree()[0].DurUS
	time.Sleep(2 * time.Millisecond)
	if end2 := tr.Tree()[0].DurUS; end2 != end1 {
		t.Fatalf("double render after End drifted: %d vs %d", end1, end2)
	}
	sp.End() // second End keeps the first timestamp
	if end3 := tr.Tree()[0].DurUS; end3 != end1 {
		t.Fatalf("second End changed the end time: %d vs %d", end3, end1)
	}
}

// TestTraceConcurrentSpans has parallel workers opening child spans
// and annotating a shared parent — the shard-worker pattern — under
// the race detector.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("eval")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Start("shard")
			defer sp.End()
			for j := 0; j < 100; j++ {
				sp.AddInt("paths", 1)
				root.AddInt("total", 1)
			}
		}()
	}
	wg.Wait()
	root.End()
	roots := tr.Tree()
	if len(roots[0].Children) != 8 {
		t.Fatalf("want 8 shard spans, got %d", len(roots[0].Children))
	}
	if roots[0].Attrs["total"] != 800 {
		t.Fatalf("total attr %d != 800", roots[0].Attrs["total"])
	}
	var paths int64
	for _, c := range roots[0].Children {
		paths += c.Attrs["paths"]
	}
	if paths != 800 {
		t.Fatalf("shard paths sum %d != 800", paths)
	}
}

// TestSpanContext round-trips a span through context.
func TestSpanContext(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("root")
	defer sp.End()
	ctx := WithSpan(context.Background(), sp)
	if got := SpanFrom(ctx); got != sp {
		t.Fatal("SpanFrom must return the stored span")
	}
	child := SpanFrom(ctx).Start("child")
	child.End()
	if len(tr.Tree()[0].Children) != 1 {
		t.Fatal("child via context not attached")
	}
}
