package obs

import (
	"context"
	"testing"
)

// BenchmarkNilTraceSpan is the disabled-observability gate
// (scripts/check_allocs.sh pins it at exactly 0 allocs/op): the full
// per-query span choreography — context probe, span starts, attr
// writes, ends — against a nil trace must reduce to nil checks.
func BenchmarkNilTraceSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := SpanFrom(ctx)
		eval := sp.Start("eval")
		sh := eval.Start("shard")
		sh.AddInt("paths", 1)
		sh.MaxInt("frontier", 10)
		sh.End()
		eval.SetInt("epoch", 1)
		eval.End()
		if WithSpan(ctx, nil) != ctx {
			b.Fatal("WithSpan(nil) wrapped the context")
		}
	}
}

// BenchmarkDisarmedInstruments is the nil-instrument half of the same
// gate: counters/gauges/histograms handed out by a nil registry must
// record for free.
func BenchmarkDisarmedInstruments(b *testing.B) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(2)
		g.Add(1)
		g.Add(-1)
		h.Observe(int64(i))
	}
}

// BenchmarkCounterAdd measures the armed counter record path (atomic
// add; 0 allocs).
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures the armed histogram record path
// (bits.Len64 + three atomic adds; 0 allocs).
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 37)
	}
}
