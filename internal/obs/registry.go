package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Label is one name="value" pair on a metric series.
type Label struct {
	Name, Value string
}

// series is one labeled time series inside a family. Exactly one of
// read/hist is set.
type series struct {
	labels string // rendered `{a="b",c="d"}` suffix, or ""
	read   func() int64
	hist   *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name, help, typ string // typ: "counter", "gauge", "histogram"
	series          []series
}

// Registry holds metric registrations and renders them as Prometheus
// text exposition (format 0.0.4). Registration takes a mutex;
// recording goes straight to the instrument and never touches the
// registry, so the record path stays lock-free. A nil registry
// returns nil instruments from every constructor, and nil instruments
// no-op — a disarmed registry therefore costs one nil check per
// record call site.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// renderLabels formats labels as a deterministic `{a="b"}` suffix.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// add registers one series, creating or extending its family.
// Registration mistakes (same name with two types, duplicate
// name+labels) are programming errors and panic.
func (r *Registry) add(name, help, typ string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	for _, ex := range f.series {
		if ex.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate registration of %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a new counter series. Returns nil
// (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.add(name, help, "counter", series{labels: renderLabels(labels), read: c.Value})
	return c
}

// Gauge registers and returns a new gauge series. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.add(name, help, "gauge", series{labels: renderLabels(labels), read: g.Value})
	return g
}

// Histogram registers and returns a new latency histogram series
// (observations in nanoseconds, exposed in seconds). Returns nil on a
// nil registry.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{}
	r.RegisterHistogram(name, help, h, labels...)
	return h
}

// RegisterHistogram attaches an externally owned histogram (for
// package-level instruments like the WAL's) to this registry.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	if r == nil {
		return
	}
	r.add(name, help, "histogram", series{labels: renderLabels(labels), hist: h})
}

// CounterFunc registers a counter whose value is computed at scrape
// time — for counts that already live elsewhere (engine stats, store
// accessors) and must not be double-tracked.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.add(name, help, "counter", series{labels: renderLabels(labels), read: fn})
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.add(name, help, "gauge", series{labels: renderLabels(labels), read: fn})
}

// snapshotFamilies copies the family list under the lock so scrape
// rendering (which calls arbitrary reader funcs) runs outside it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	return out
}

// WritePrometheus renders every registered family in text exposition
// format 0.0.4: # HELP / # TYPE headers once per family, histograms
// as cumulative _bucket{le=...} plus _sum and _count, values in
// base units (seconds for histograms).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if s.hist != nil {
				if err := writeHistogram(w, f.name, s.labels, s.hist); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.read()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series. Bucket edges are the
// power-of-two nanosecond bounds converted to seconds; empty buckets
// are elided (cumulative counts make them redundant) except the +Inf
// bucket, which is mandatory.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	snap := h.Snapshot()
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var cum int64
	for i, c := range snap.Buckets {
		cum += c
		if c == 0 {
			continue
		}
		le := float64(BucketUpper(i)) / 1e9
		if err := writeBucket(w, name, inner, fmt.Sprintf("%g", le), cum); err != nil {
			return err
		}
	}
	if err := writeBucket(w, name, inner, "+Inf", snap.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, float64(snap.Sum)/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, snap.Count)
	return err
}

func writeBucket(w io.Writer, name, innerLabels, le string, cum int64) error {
	sep := ""
	if innerLabels != "" {
		sep = ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, innerLabels, sep, le, cum)
	return err
}

// Names returns the sorted metric family names — handy for smoke
// tests asserting coverage.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}
