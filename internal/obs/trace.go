package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace collects the span tree for one query. A nil *Trace (and the
// nil *Span every method then yields) is the disabled state: every
// call reduces to a nil check, no allocation, no time.Now — this is
// what the ?trace=1 / -trace / slow-query switches toggle, and what
// the allocation-parity gate in scripts/check_allocs.sh pins.
//
// Span start order is recorded under the trace mutex, so sibling
// order in the rendered tree is the order Start calls landed; with
// parallel shard workers that order is scheduling-dependent, but the
// parent/child structure and every annotation are not.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	spans []*Span
}

// NewTrace starts an empty trace; its clock starts now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Attr is one integer annotation on a span (frontier sizes, arena
// entries, paths/work charged, epoch pinned...).
type Attr struct {
	Key string
	Val int64
}

// Span is one timed phase inside a trace. All methods are nil-safe.
// Attrs are guarded by the owning trace's mutex so parallel workers
// can annotate concurrently.
type Span struct {
	tr     *Trace
	parent *Span
	name   string
	start  int64 // ns since trace start
	end    int64 // ns since trace start; 0 while open
	attrs  []Attr
}

// newSpan appends a span under the trace lock.
func (t *Trace) newSpan(name string, parent *Span) *Span {
	s := &Span{tr: t, parent: parent, name: name, start: int64(time.Since(t.start))}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Start opens a root-level span. Nil-safe: a nil trace yields a nil
// span, and the whole subtree of calls hanging off it no-ops.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, nil)
}

// Start opens a child span under s.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s)
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := int64(time.Since(s.tr.start))
	s.tr.mu.Lock()
	if s.end == 0 {
		s.end = end
	}
	s.tr.mu.Unlock()
}

// SetInt sets annotation key to v, replacing any previous value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{key, v})
}

// AddInt adds v to annotation key (creating it at v).
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val += v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{key, v})
}

// MaxInt raises annotation key to v if v is larger (or sets it).
func (s *Span) MaxInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			if v > s.attrs[i].Val {
				s.attrs[i].Val = v
			}
			return
		}
	}
	s.attrs = append(s.attrs, Attr{key, v})
}

// SpanJSON is the wire form of one span: microsecond offsets from the
// trace start, sorted attrs, children in start order.
type SpanJSON struct {
	Name     string           `json:"name"`
	StartUS  int64            `json:"start_us"`
	DurUS    int64            `json:"dur_us"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*SpanJSON      `json:"children,omitempty"`
}

// Tree renders the trace as a forest of SpanJSON in span start order.
// Open spans are closed at render time so the tree is always
// well-formed. Nil-safe (returns nil).
func (t *Trace) Tree() []*SpanJSON {
	if t == nil {
		return nil
	}
	now := int64(time.Since(t.start))
	t.mu.Lock()
	defer t.mu.Unlock()
	nodes := make(map[*Span]*SpanJSON, len(t.spans))
	var roots []*SpanJSON
	for _, s := range t.spans {
		end := s.end
		if end == 0 {
			end = now
		}
		j := &SpanJSON{
			Name:    s.name,
			StartUS: s.start / 1e3,
			DurUS:   (end - s.start) / 1e3,
		}
		if len(s.attrs) > 0 {
			j.Attrs = make(map[string]int64, len(s.attrs))
			for _, a := range s.attrs {
				j.Attrs[a.Key] = a.Val
			}
		}
		nodes[s] = j
		if p := nodes[s.parent]; p != nil {
			p.Children = append(p.Children, j)
		} else {
			roots = append(roots, j)
		}
	}
	return roots
}

// Format renders the tree as indented text for the CLI -trace flag.
func (t *Trace) Format() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, r := range t.Tree() {
		formatSpan(&b, r, 0)
	}
	return b.String()
}

func formatSpan(b *strings.Builder, j *SpanJSON, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s %s", j.Name, time.Duration(j.DurUS)*time.Microsecond)
	// Sort attr keys so output is deterministic.
	keys := make([]string, 0, len(j.Attrs))
	for k := range j.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, j.Attrs[k])
	}
	b.WriteByte('\n')
	for _, c := range j.Children {
		formatSpan(b, c, depth+1)
	}
}

// Summary renders a one-line per-phase digest for the slow-query log:
// top-level spans with durations, child counts folded in.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	var parts []string
	for _, r := range t.Tree() {
		for _, c := range r.Children {
			parts = append(parts, summarizeSpan(c))
		}
		if len(r.Children) == 0 {
			parts = append(parts, summarizeSpan(r))
		}
	}
	return strings.Join(parts, " ")
}

func summarizeSpan(j *SpanJSON) string {
	d := time.Duration(j.DurUS) * time.Microsecond
	if n := len(j.Children); n > 0 {
		return fmt.Sprintf("%s=%s(×%d)", j.Name, d, n)
	}
	return fmt.Sprintf("%s=%s", j.Name, d)
}

// ctxKey is the context key for the current span.
type ctxKey struct{}

// WithSpan returns a context carrying sp as the current span. When sp
// is nil (tracing off) the context is returned unchanged — no
// allocation on the disabled path.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFrom returns the current span, or nil when the context carries
// none (every downstream call then no-ops).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
