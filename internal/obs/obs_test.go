package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramProperties drives random observation sets through the
// histogram and checks the structural invariants the exposition and
// quantile logic rely on: count == Σ buckets, sum == Σ observations,
// cumulative bucket counts are monotone, and every observation landed
// in the bucket whose bounds contain it.
func TestHistogramProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		h := &Histogram{}
		n := rng.Intn(2000)
		var sum int64
		obs := make([]int64, n)
		for i := range obs {
			// Spread across magnitudes: 2^[0,40) scaled by a random mantissa.
			v := int64(rng.Float64() * float64(int64(1)<<uint(rng.Intn(40))))
			obs[i] = v
			sum += v
			h.Observe(v)
		}
		s := h.Snapshot()
		if s.Count != int64(n) {
			t.Fatalf("trial %d: count %d != %d", trial, s.Count, n)
		}
		if s.Sum != sum {
			t.Fatalf("trial %d: sum %d != %d", trial, s.Sum, sum)
		}
		var bsum int64
		for _, c := range s.Buckets {
			if c < 0 {
				t.Fatalf("trial %d: negative bucket", trial)
			}
			bsum += c
		}
		if bsum != int64(n) {
			t.Fatalf("trial %d: bucket sum %d != count %d", trial, bsum, n)
		}
		// Each observation must fall within its bucket's bounds.
		for _, v := range obs {
			found := false
			for i, c := range s.Buckets {
				if c == 0 {
					continue
				}
				if i == 0 {
					if v == 0 {
						found = true
						break
					}
					continue
				}
				lo := BucketUpper(i - 1)
				if v >= lo && (v < BucketUpper(i) || i == histBuckets-1) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: observation %d in no non-empty bucket", trial, v)
			}
		}
	}
}

// TestHistogramQuantile checks the quantile estimate brackets the true
// quantile: the reported bound is ≥ the exact order statistic and
// within one bucket (≤ 2× for power-of-two buckets).
func TestHistogramQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := &Histogram{}
		n := 1 + rng.Intn(500)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(1 << 30))
			h.Observe(vals[i])
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			got := h.Quantile(q)
			// Exact order statistic with the same ceil(q*n) rank rule.
			rank := int(q * float64(n))
			if float64(rank) < q*float64(n) || rank == 0 {
				rank++
			}
			sorted := append([]int64(nil), vals...)
			sortInt64s(sorted)
			exact := sorted[rank-1]
			if got < exact {
				t.Fatalf("trial %d q=%v: bound %d < exact %d", trial, q, got, exact)
			}
			if exact > 0 && got > 2*exact {
				t.Fatalf("trial %d q=%v: bound %d > 2×exact %d", trial, q, got, exact)
			}
		}
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TestNilInstruments pins the disabled contract: every method on nil
// instruments is a no-op, never a panic.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(5)
	h.ObserveSince(time.Now())
	if h.Snapshot().Count != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram state")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.CounterFunc("x", "", func() int64 { return 0 })
	r.GaugeFunc("x", "", func() int64 { return 0 })
	r.RegisterHistogram("x", "", &Histogram{})
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
	if r.Names() != nil {
		t.Fatal("nil registry names")
	}
}

// TestExposition checks the rendered text format: HELP/TYPE headers
// once per family, label rendering, cumulative histogram buckets
// ending in +Inf, and _sum/_count lines.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pa_requests_total", "Requests.", Label{"endpoint", "query"})
	c.Add(7)
	c2 := r.Counter("pa_requests_total", "Requests.", Label{"endpoint", "reach"})
	c2.Add(2)
	g := r.Gauge("pa_inflight", "In-flight.")
	g.Set(3)
	h := r.Histogram("pa_latency_seconds", "Latency.")
	h.Observe(1500)   // bucket le=2048ns
	h.Observe(1500)   // same bucket
	h.Observe(100000) // bucket le=131072ns
	r.GaugeFunc("pa_goroutines", "Goroutines.", func() int64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pa_requests_total Requests.\n# TYPE pa_requests_total counter\n",
		"pa_requests_total{endpoint=\"query\"} 7\n",
		"pa_requests_total{endpoint=\"reach\"} 2\n",
		"# TYPE pa_inflight gauge\npa_inflight 3\n",
		"# TYPE pa_latency_seconds histogram\n",
		"pa_latency_seconds_bucket{le=\"2.048e-06\"} 2\n",
		"pa_latency_seconds_bucket{le=\"0.000131072\"} 3\n",
		"pa_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"pa_latency_seconds_count 3\n",
		"pa_goroutines 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE pa_requests_total") != 1 {
		t.Fatal("TYPE header must appear once per family")
	}
	if !strings.Contains(out, "pa_latency_seconds_sum 0.000103") {
		t.Fatalf("histogram sum wrong in:\n%s", out)
	}
}

// TestRegistryPanics pins registration misuse as programming errors.
func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("a", "")
	mustPanic("type clash", func() { r.Gauge("a", "") })
	mustPanic("duplicate", func() { r.Counter("a", "") })
	r.Counter("a", "", Label{"x", "1"}) // distinct labels: fine
}

// TestRegistryRaceHammer runs 8 goroutines recording into one
// registry's instruments while a scraper renders /metrics-style
// exposition concurrently. Run under -race in CI, this pins the
// lock-free record path against the snapshot-render path.
func TestRegistryRaceHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_inflight", "")
	h := r.Histogram("hammer_seconds", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(int64(rng.Intn(1 << 20)))
				g.Add(-1)
			}
		}(int64(i))
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "hammer_total") {
			t.Fatal("scrape lost a family")
		}
	}
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	var bsum int64
	for _, v := range s.Buckets {
		bsum += v
	}
	if bsum != s.Count {
		t.Fatalf("quiesced bucket sum %d != count %d", bsum, s.Count)
	}
	if c.Value() != s.Count {
		t.Fatalf("counter %d != histogram count %d", c.Value(), s.Count)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge should settle at 0, got %d", g.Value())
	}
}
