// Package obs is the zero-dependency observability layer: atomic
// counters, gauges, and log2-bucketed latency histograms with a
// lock-free record path (obs.go / registry.go), plus per-query trace
// spans threaded through context (trace.go).
//
// The package follows the internal/fault contract: the disabled state
// must be free. Every instrument method is nil-safe — a nil *Counter,
// *Gauge, *Histogram, *Trace or *Span turns the call into a single
// nil check and nothing else, so call sites never need their own
// "is observability on?" branches and the hot path pays zero
// allocations either way (gated in scripts/check_allocs.sh).
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; methods on a nil receiver are no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//pathalgebra:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//pathalgebra:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (in-flight requests, queue
// depth, live cursors). The zero value is ready; nil receivers no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//pathalgebra:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (negative to decrement).
//
//pathalgebra:hotpath
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count for Histogram. Bucket i holds
// observations v (nanoseconds) with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i); bucket 0 holds v == 0. The last bucket is the
// overflow: with 44 buckets the largest finite upper bound is 2^43 ns
// ≈ 2.4 hours, far past any query the daemon would let live.
const histBuckets = 44

// Histogram is a log2-bucketed latency histogram. Record is lock-free:
// one bits.Len64 plus three atomic adds, no allocation. The zero value
// is ready; nil receivers no-op. Observations are nanoseconds.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds observed
	buckets [histBuckets]atomic.Int64
}

// Observe records a single value in nanoseconds. Negative values
// clamp to zero.
//
//pathalgebra:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed time since t0.
//
//pathalgebra:hotpath
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Concurrent recorders may make Count differ transiently from the
// bucket sum; quiesce before asserting exact invariants.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64 // nanoseconds
	Buckets [histBuckets]int64
}

// Snapshot copies the current counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// BucketUpper returns the exclusive upper bound, in nanoseconds, of
// bucket i (inclusive for the overflow bucket, which reports the max
// representable bound).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0 // bucket 0 holds exactly v == 0
	}
	if i >= histBuckets-1 {
		return int64(1) << (histBuckets - 1)
	}
	return int64(1) << i
}

// Quantile returns an upper bound, in nanoseconds, for the q-quantile
// (0 ≤ q ≤ 1) of everything observed so far: the upper edge of the
// bucket the quantile falls in. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the observation whose bucket edge
	// we report; ceil(q*count) with a floor of 1.
	rank := int64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++
	}
	var seen int64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}
