package server

import (
	"errors"
	"net/http"
	"strings"

	"pathalgebra/internal/graph"
)

// ingestMaxBody bounds the accepted batch body (64 MiB).
const ingestMaxBody = 64 << 20

// ingestResponse is the body of a successful POST /ingest.
type ingestResponse struct {
	// Epoch is the store epoch the batch produced; queries admitted after
	// this response observe it.
	Epoch uint64 `json:"epoch"`
	// Ops is the number of operations applied (the whole batch: batches
	// are atomic, all ops or none).
	Ops int `json:"ops"`
	// Nodes and Edges are the live object counts after the batch.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// DeltaSize is the store's overlay size after the batch — how far it
	// is from its next compaction.
	DeltaSize int `json:"delta_size"`
}

// handleIngest applies one batch of graph mutations. The body is NDJSON
// (one op object per line: {"op":"add_node","key":...,"label":...,
// "props":...} / add_edge with src+dst / del_node / del_edge) by
// default, or CSV with header op,key,src,dst,label when Content-Type is
// text/csv. The batch is atomic: a malformed body is a 400 and a
// validation failure (duplicate key, unknown node, unknown key — the
// typed graph.Err* sentinels) is a 422, and in both cases nothing is
// applied.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, ingestMaxBody)
	ct := r.Header.Get("Content-Type")
	var batch graph.Batch
	var err error
	if strings.HasPrefix(ct, "text/csv") {
		batch, err = graph.ReadBatchCSV(body)
	} else {
		batch, err = graph.ReadBatchNDJSON(body)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if len(batch.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch")
		return
	}
	epoch, err := s.store.Apply(batch)
	if err != nil {
		if errors.Is(err, graph.ErrDuplicateKey) || errors.Is(err, graph.ErrUnknownNode) || errors.Is(err, graph.ErrUnknownKey) {
			writeError(w, http.StatusUnprocessableEntity, "validation", "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	s.metrics.ingests.Inc()
	s.metrics.ingestedOps.Add(int64(len(batch.Ops)))
	g := s.store.Graph()
	writeJSON(w, http.StatusOK, ingestResponse{
		Epoch:     epoch,
		Ops:       len(batch.Ops),
		Nodes:     g.LiveNodes(),
		Edges:     g.LiveEdges(),
		DeltaSize: s.store.DeltaSize(),
	})
}
