package server

import (
	"pathalgebra/internal/graph"
	"pathalgebra/internal/lru"
	"pathalgebra/internal/pathset"
)

// cacheEntry is one cached query result: the materialized set, the graph
// view its path IDs resolve against, the epoch it was computed at, and
// the label footprint of the plan that produced it (which node/edge
// labels the result can depend on).
type cacheEntry struct {
	set   *pathset.Set
	g     *graph.Graph
	epoch uint64
	fp    graph.Footprint
}

// resultCache is an LRU (lru.Cache) of fully materialized query results,
// keyed by the canonical rendering of the PLANNED physical plan plus the
// evaluation limits (the two inputs that determine a result byte for
// byte — the engine's evaluation is deterministic at every parallelism).
// Cached sets are immutable and shared: hits page the same *pathset.Set
// through a fresh cursor, so a hit costs no evaluation and no copying.
//
// Capacity is counted in entries. Invalidation is label-footprint-based:
// every entry records the epoch it was computed at and the set of labels
// its plan reads; a hit is valid only while no ingest batch since that
// epoch has touched any of those labels (Store.ValidAt consults the
// store's per-label modification clock). A delta touching only `knows`
// therefore evicts entries whose plan reads `knows` and leaves the rest
// servable. Explicit invalidation (the /cache/invalidate endpoint) still
// empties the cache wholesale.
type resultCache struct {
	entries *lru.Cache[string, *cacheEntry]
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{entries: lru.New[string, *cacheEntry](capacity)}
}

// get returns the cached result for key if it is still valid at the
// store's current epoch, bumping its recency. Entries invalidated by a
// later write to a label in their footprint are evicted on probe (and
// counted as misses).
func (c *resultCache) get(store *graph.Store, key string) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	ent, ok := c.entries.Get(key)
	if !ok {
		return nil, false
	}
	if !store.ValidAt(ent.fp, ent.epoch) {
		c.entries.Delete(key)
		return nil, false
	}
	return ent, true
}

// put admits a completed result, evicting least-recently-used entries
// beyond capacity.
func (c *resultCache) put(key string, ent *cacheEntry) {
	if c == nil {
		return
	}
	c.entries.Put(key, ent)
}

// invalidate empties the cache and returns how many entries it dropped.
func (c *resultCache) invalidate() int {
	if c == nil {
		return 0
	}
	return c.entries.Clear()
}

// snapshot returns (entries, hits, misses) for /stats.
func (c *resultCache) snapshot() (entries int, hits, misses int64) {
	if c == nil {
		return 0, 0, 0
	}
	hits, misses = c.entries.Counters()
	return c.entries.Len(), hits, misses
}

// reachEntry is one cached POST /reach answer: the fully rendered
// response (node keys resolved against the evaluation view, so no graph
// needs to be retained), the epoch it was computed at and the plan's
// label footprint for invalidation.
type reachEntry struct {
	resp  reachResponse
	epoch uint64
	fp    graph.Footprint
}

// reachCache is the POST /reach result LRU. It is a SEPARATE cache from
// resultCache on purpose: reach answers are path-free (pairs, counts,
// lengths) while query results are path sets, and the two evaluation
// routes must never alias — a kernel answer under a key an enumeration
// could hit (or vice versa) would be a correctness bug, not a cache
// policy choice. Keys carry a "reach:<mode>:" prefix on top of the
// structural separation, so even a future merged store could not
// collide them. Invalidation follows the same label-footprint scheme as
// resultCache.
type reachCache struct {
	entries *lru.Cache[string, *reachEntry]
}

func newReachCache(capacity int) *reachCache {
	return &reachCache{entries: lru.New[string, *reachEntry](capacity)}
}

func (c *reachCache) get(store *graph.Store, key string) (*reachEntry, bool) {
	if c == nil {
		return nil, false
	}
	ent, ok := c.entries.Get(key)
	if !ok {
		return nil, false
	}
	if !store.ValidAt(ent.fp, ent.epoch) {
		c.entries.Delete(key)
		return nil, false
	}
	return ent, true
}

func (c *reachCache) put(key string, ent *reachEntry) {
	if c == nil {
		return
	}
	c.entries.Put(key, ent)
}

func (c *reachCache) invalidate() int {
	if c == nil {
		return 0
	}
	return c.entries.Clear()
}

func (c *reachCache) snapshot() (entries int, hits, misses int64) {
	if c == nil {
		return 0, 0, 0
	}
	hits, misses = c.entries.Counters()
	return c.entries.Len(), hits, misses
}
