package server

import (
	"pathalgebra/internal/lru"
	"pathalgebra/internal/pathset"
)

// resultCache is an LRU (lru.Cache) of fully materialized query results,
// keyed by the canonical rendering of the PLANNED physical plan plus the
// evaluation limits (the two inputs that determine a result byte for
// byte — the engine's evaluation is deterministic at every parallelism).
// Cached sets are immutable and shared: hits page the same *pathset.Set
// through a fresh cursor, so a hit costs no evaluation and no copying.
//
// Capacity is counted in entries. Explicit invalidation (the
// /cache/invalidate endpoint) empties the cache; there is no implicit
// invalidation because a Graph is immutable for the lifetime of a server.
type resultCache struct {
	entries *lru.Cache[string, *pathset.Set]
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{entries: lru.New[string, *pathset.Set](capacity)}
}

// get returns the cached result for key, bumping its recency.
func (c *resultCache) get(key string) (*pathset.Set, bool) {
	if c == nil {
		return nil, false
	}
	return c.entries.Get(key)
}

// put admits a completed result, evicting least-recently-used entries
// beyond capacity.
func (c *resultCache) put(key string, set *pathset.Set) {
	if c == nil {
		return
	}
	c.entries.Put(key, set)
}

// invalidate empties the cache and returns how many entries it dropped.
func (c *resultCache) invalidate() int {
	if c == nil {
		return 0
	}
	return c.entries.Clear()
}

// snapshot returns (entries, hits, misses) for /stats.
func (c *resultCache) snapshot() (entries int, hits, misses int64) {
	if c == nil {
		return 0, 0, 0
	}
	hits, misses = c.entries.Counters()
	return c.entries.Len(), hits, misses
}
