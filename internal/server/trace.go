package server

import (
	"io"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/obs"
	"pathalgebra/internal/pathset"
)

// Per-query tracing: ?trace=1 (or "trace": true in the body) builds an
// obs.Trace whose root span parents the request's phases — parse, plan,
// cache probe, then the engine's own plan/eval/search spans via the
// query context — and the span tree rides back on the response (the
// final page trailer for /query, a "trace" field for /reach). All spans
// are nil-safe: an untraced request threads nil spans through the same
// helpers at zero cost.

// traceCompile parses and compiles the query text under a "parse" span.
func traceCompile(root *obs.Span, query string) (core.PathExpr, error) {
	sp := root.Start("parse")
	defer sp.End()
	return compile(query)
}

// tracePlan plans the logical expression under a "plan" span. The engine
// re-plans inside its evaluation entry point — by then a plan-cache hit,
// annotated on the engine's own span — so this span carries the cold
// planning cost.
func tracePlan(root *obs.Span, eng *engine.Engine, logical core.PathExpr) core.PathExpr {
	sp := root.Start("plan")
	defer sp.End()
	plan, _ := eng.Plan(logical)
	return plan
}

// probeResultCache looks up the result LRU under a "cache_probe" span.
func (s *Server) probeResultCache(root *obs.Span, key string) (*cacheEntry, bool) {
	sp := root.Start("cache_probe")
	defer sp.End()
	ent, ok := s.cache.get(s.store, key)
	if ok {
		sp.SetInt("hit", 1)
	}
	return ent, ok
}

// probeReachCache looks up the reach LRU under a "cache_probe" span.
func (s *Server) probeReachCache(root *obs.Span, key string) (*reachEntry, bool) {
	sp := root.Start("cache_probe")
	defer sp.End()
	ent, ok := s.reach.get(s.store, key)
	if ok {
		sp.SetInt("hit", 1)
	}
	return ent, ok
}

// writePage writes one page's path lines under a "deliver" span of the
// cursor's trace (no-op spans when the query is untraced). Paths render
// with the stream's pinned graph view: the IDs were minted at that
// epoch, and compaction may have remapped IDs in the current one. A
// write error severs the page — the caller must NOT write the trailer
// (a severed page without a trailer is how clients detect the cut).
func writePage(w io.Writer, cur *cursor, chunk *pathset.Set, returned int) error {
	sp := cur.root.Start("deliver")
	defer sp.End()
	sp.SetInt("paths", int64(returned))
	if chunk == nil {
		return nil
	}
	g := cur.stream.Graph()
	for _, p := range chunk.Paths() {
		if err := writeNDJSON(w, encodePath(g, p)); err != nil {
			return err
		}
	}
	return nil
}
