package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"pathalgebra/internal/fault"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
)

// TestHandlerPanicRecovered: a panic inside request handling becomes an
// HTTP 500 with kind "internal", is counted in /stats, and the server
// keeps serving afterwards — the recovery middleware contract.
func TestHandlerPanicRecovered(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1()})

	restore := fault.Arm(fault.Schedule{Rules: []fault.Rule{
		{Site: "server.handler", Mode: fault.ModePanic, Nth: 1},
	}})
	resp, err := http.Get(ts.URL + "/healthz")
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request status = %d, want 500", resp.StatusCode)
	}
	er := decodeBody[errorResponse](t, resp)
	if er.Kind != "internal" {
		t.Fatalf("panicking request kind = %q, want internal", er.Kind)
	}
	if strings.Contains(er.Error, "goroutine") {
		t.Fatalf("error body leaks a stack trace: %q", er.Error)
	}

	// The server survived, and the panic is visible in /stats.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[statsResponse](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after panic: %d", resp.StatusCode)
	}
	if st.Server.Panics != 1 {
		t.Fatalf("panics_recovered = %d, want 1", st.Server.Panics)
	}
}

// TestWorkerPanicTypedError: a panic inside an evaluation worker reaches
// the client as a typed 500 on the cursor page, the cursor is cleaned
// up, and the same query re-run succeeds — one poisoned evaluation does
// not wedge the engine.
func TestWorkerPanicTypedError(t *testing.T) {
	s, ts := newTestServer(t, Config{Graph: ldbc.Figure1()})

	post := func() string {
		resp := postJSON(t, ts.URL+"/query", map[string]any{
			"query": `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`, "max_len": 3, "no_cache": true,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /query = %d", resp.StatusCode)
		}
		return decodeBody[queryResponse](t, resp).ID
	}

	restore := fault.Arm(fault.Schedule{Rules: []fault.Rule{
		{Site: "automaton.worker", Mode: fault.ModePanic, Nth: 1},
	}})
	id := post()
	resp, err := http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, id))
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned page status = %d, want 500", resp.StatusCode)
	}
	if er := decodeBody[errorResponse](t, resp); er.Kind != "internal" {
		t.Fatalf("poisoned page kind = %q, want internal", er.Kind)
	}
	if n := s.cursors.len(); n != 0 {
		t.Fatalf("poisoned cursor leaked: table holds %d", n)
	}

	// Same query, no fault: full result.
	id = post()
	resp, err = http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	paths, trailer := readPage(t, resp)
	if len(paths) == 0 || !trailer.Done && trailer.Total == 0 {
		t.Fatalf("re-run after panic returned no results (%d paths)", len(paths))
	}
}

// TestCompactionErrorSurfaced: a failing compaction is absorbed — the
// server keeps serving off the overlay, the failure is visible in
// /stats (compaction_errors + last error), and the compactor's retry
// loop completes the compaction once the fault clears.
func TestCompactionErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	store, err := graph.OpenDurable(dir, ldbc.Figure1(), graph.StoreOptions{CompactThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	_, ts := newTestServer(t, Config{Store: store})

	getStats := func() statsResponse {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		return decodeBody[statsResponse](t, resp)
	}

	restore := fault.Arm(fault.Schedule{Rules: []fault.Rule{{Site: "compact.swap", Prob: 1}}})
	body := `{"op":"add_node","key":"cx1","label":"Person"}
{"op":"add_edge","key":"ce1","src":"n1","dst":"cx1","label":"Knows"}
{"op":"add_node","key":"cx2","label":"Person"}
`
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest under compaction fault = %d (compaction must not gate ingest)", resp.StatusCode)
	}

	// The failure surfaces in /stats while the overlay keeps serving.
	deadline := time.Now().Add(3 * time.Second)
	var st statsResponse
	for {
		st = getStats()
		if st.Store.CompactionErrors > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction_errors never surfaced; stats=%+v", st.Store)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Store.LastCompactionError == "" {
		t.Fatal("compaction_errors > 0 with empty last_compaction_error")
	}
	if st.Graph.Nodes != ldbc.Figure1().LiveNodes()+2 {
		t.Fatalf("overlay reads degraded during compaction failure: %d nodes", st.Graph.Nodes)
	}
	restore()

	// The retry loop (25ms base backoff) completes the compaction and its
	// checkpoint once the fault clears.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st = getStats()
		if st.Store.Compactions >= 1 && st.Store.Checkpoints >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction retry never succeeded; stats=%+v", st.Store)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Store.WALRecords != 0 {
		t.Fatalf("WAL not reset by the recovered checkpoint: %d records", st.Store.WALRecords)
	}
}
