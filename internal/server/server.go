// Package server is the query service layer over the path-algebra engine:
// a concurrent scheduler with admission control, session-scoped result
// cursors, NDJSON streaming, and a result LRU — the machinery that turns
// the blocking Engine.Run call into a service that can start, page,
// observe and abandon queries over HTTP.
//
// Lifecycle of a query:
//
//	POST /query            {"query": "...", ...}      → {"id": "q1", ...}
//	GET  /query/{id}/next  pages the result as NDJSON (path lines + trailer)
//	DELETE /query/{id}     cancels the evaluation and discards the cursor
//
// plus GET /stats (engine + server counters), POST /explain (plan with
// estimated vs. actual cardinalities), POST /cache/invalidate (drop the
// result LRU) and GET /healthz.
//
// Failure modes are typed end to end: budget exhaustion surfaces as
// core.ErrBudgetExceeded (HTTP 422), a per-query deadline as
// context.DeadlineExceeded (504), client cancellation as context.Canceled
// (410), and server drain as ErrDraining (503) — the error-contract
// mapping the evaluators' budget cancellation makes possible.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/fault"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/obs"
)

// ErrDraining is the cancellation cause recorded by Close: queries cut
// short by server shutdown fail with it (HTTP 503) rather than a generic
// cancellation, so clients can tell "server going away, retry elsewhere"
// from "my query was cancelled".
var ErrDraining = errors.New("server: draining, query aborted")

// Config parameterizes a Server. The zero value of every field selects a
// sensible default; Graph is the only required field.
type Config struct {
	// Graph is the initial graph served. Required unless Store is set.
	// The server always serves through a graph.Store — when only Graph is
	// given, it wraps it in a store of its own (epoch 0) so POST /ingest
	// works out of the box.
	Graph *graph.Graph
	// Store, when set, is the live store to serve (Graph is ignored).
	// The caller keeps ownership: Server.Close will not close it.
	Store *graph.Store
	// CompactThreshold configures the server-owned store created when
	// Store is nil: delta records before background compaction
	// (graph.StoreOptions.CompactThreshold semantics).
	CompactThreshold int
	// Engine is the base engine configuration. Engine.Limits acts as the
	// per-query default; requests may override MaxLen/MaxPaths/MaxWork.
	Engine engine.Options
	// MaxInFlight bounds concurrently evaluating queries (admission
	// control; excess POST /query returns 429). <= 0 selects
	// 2×GOMAXPROCS. Cache hits bypass admission — they evaluate nothing.
	MaxInFlight int
	// MaxCursors bounds live cursors (429 beyond). <= 0 selects 1024.
	MaxCursors int
	// ChunkSize is the default paths-per-page; requests may override up
	// to MaxChunkSize. <= 0 selects 256.
	ChunkSize int
	// MaxChunkSize caps the per-request chunk size. <= 0 selects 65536.
	MaxChunkSize int
	// QueryTimeout is the per-query evaluation deadline. 0 selects 60s;
	// < 0 disables the deadline. Requests may shorten it (timeout_ms),
	// never extend it.
	QueryTimeout time.Duration
	// CursorTTL evicts (and cancels) cursors idle longer than this. 0
	// selects 5m; < 0 disables the sweeper.
	CursorTTL time.Duration
	// CacheSize bounds the result LRU in entries. 0 selects 128; < 0
	// disables result caching.
	CacheSize int
	// SlowQuery, when > 0, traces every evaluated query and logs any
	// whose evaluation takes at least this long: the query text, limits,
	// plan and a one-line span summary. 0 disables the slow-query log.
	SlowQuery time.Duration
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 2 * runtime.GOMAXPROCS(0)
	}
	return c.MaxInFlight
}

func (c Config) maxCursors() int {
	if c.MaxCursors <= 0 {
		return 1024
	}
	return c.MaxCursors
}

func (c Config) chunkSize() int {
	if c.ChunkSize <= 0 {
		return 256
	}
	return c.ChunkSize
}

func (c Config) maxChunkSize() int {
	if c.MaxChunkSize <= 0 {
		return 65536
	}
	return c.MaxChunkSize
}

func (c Config) queryTimeout() time.Duration {
	switch {
	case c.QueryTimeout == 0:
		return 60 * time.Second
	case c.QueryTimeout < 0:
		return 0
	default:
		return c.QueryTimeout
	}
}

func (c Config) cursorTTL() time.Duration {
	switch {
	case c.CursorTTL == 0:
		return 5 * time.Minute
	case c.CursorTTL < 0:
		return 0
	default:
		return c.CursorTTL
	}
}

func (c Config) cacheSize() int {
	switch {
	case c.CacheSize == 0:
		return 128
	case c.CacheSize < 0:
		return 0
	default:
		return c.CacheSize
	}
}

// Server is the query service. It implements http.Handler; wire it into
// an http.Server (cmd/pathalgebrad does) or call its handlers in-process
// through httptest. All methods are safe for concurrent use.
type Server struct {
	cfg Config
	// store is the live graph: every query pins an epoch for its own
	// lifetime (cursors render against their pinned view), and /ingest
	// applies batches to it.
	store *graph.Store
	// ownStore records whether the server created the store itself (and
	// must close its compactor on Close).
	ownStore bool
	base     *engine.Engine
	// engines pools one engine per distinct per-query Limits so plan
	// caches stay warm across requests that share limits; the map is
	// bounded — beyond enginePoolMax distinct limit combinations the
	// server serves transient engines (correct, just cache-cold).
	enginesMu sync.Mutex
	engines   map[core.Limits]*engine.Engine

	cache    *resultCache
	reach    *reachCache
	cursors  *cursorTable
	inflight atomic.Int64
	metrics  *serverMetrics
	nextID   atomic.Int64

	// baseCtx parents every query context so Close aborts all running
	// evaluations with ErrDraining as the cause.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	sweepStop  chan struct{}
	closeOnce  sync.Once
	mux        *http.ServeMux
}

// enginePoolMax bounds the per-limits engine pool.
const enginePoolMax = 64

// New returns a Server over cfg.Store (or a server-owned store wrapping
// cfg.Graph).
func New(cfg Config) (*Server, error) {
	store := cfg.Store
	own := false
	if store == nil {
		if cfg.Graph == nil {
			return nil, fmt.Errorf("server: Config.Graph or Config.Store is required")
		}
		store = graph.NewStore(cfg.Graph, graph.StoreOptions{CompactThreshold: cfg.CompactThreshold})
		own = true
	}
	baseCtx, baseCancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      store,
		ownStore:   own,
		base:       engine.NewWithStore(store, cfg.Engine),
		engines:    make(map[core.Limits]*engine.Engine),
		cursors:    newCursorTable(cfg.maxCursors()),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		sweepStop:  make(chan struct{}),
		mux:        http.NewServeMux(),
	}
	s.engines[cfg.Engine.Limits] = s.base
	if n := cfg.cacheSize(); n > 0 {
		s.cache = newResultCache(n)
		s.reach = newReachCache(n)
	}
	s.metrics = newServerMetrics()
	s.registerCollectors()
	s.handle("POST /query", "query", s.handleQuery)
	s.handle("POST /reach", "reach", s.handleReach)
	s.handle("GET /query/{id}/next", "next", s.handleNext)
	s.handle("DELETE /query/{id}", "cancel", s.handleCancel)
	s.handle("POST /ingest", "ingest", s.handleIngest)
	s.handle("GET /stats", "stats", s.handleStats)
	s.handle("POST /explain", "explain", s.handleExplain)
	s.handle("POST /cache/invalidate", "invalidate", s.handleInvalidate)
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	s.handle("GET /metrics", "metrics", s.handleMetrics)
	if ttl := cfg.cursorTTL(); ttl > 0 {
		go s.sweepLoop(ttl)
	}
	return s, nil
}

// ServeHTTP dispatches to the service endpoints. A panic escaping a
// handler is recovered into an HTTP 500 with kind "internal" (stack to
// the daemon log, never the client) — one poisoned request cannot take
// the connection's server goroutine down with uncounted state behind it.
// http.ErrAbortHandler keeps its net/http meaning and re-panics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		err := core.Recovered(rec)
		s.notePanic(err)
		// Best effort: if the handler already wrote headers this is a
		// no-op beyond a log line, and the truncated body tells the
		// client the response is dead.
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	}()
	// Chaos seam: error mode fails the request before dispatch, panic
	// mode exercises the recovery middleware above.
	if err := fault.Hit("server.handler"); err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// notePanic counts a recovered panic and logs it with its stack — the
// one place panic stacks become visible, since clients only ever see the
// typed "internal" error.
func (s *Server) notePanic(err error) {
	s.metrics.panics.Inc()
	var pe *core.PanicError
	if errors.As(err, &pe) {
		log.Printf("server: recovered panic: %v\n%s", pe.Val, pe.Stack)
	} else {
		log.Printf("server: recovered panic: %v", err)
	}
}

// recovered is the deferred recovery hook for server-owned background
// goroutines (completion watchers, cursor teardown): the goroutine ends,
// the panic is counted and logged, the process lives on.
func (s *Server) recovered(r any) {
	if r == nil {
		return
	}
	s.notePanic(core.Recovered(r))
}

// Close aborts every running evaluation (cause ErrDraining), cancels and
// drops all cursors, and stops the sweeper. Safe to call more than once.
// Callers draining an http.Server should Shutdown it first (stop
// accepting, let quick requests finish), then Close the query service to
// cut the long-running evaluations.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.baseCancel(ErrDraining)
		close(s.sweepStop)
		for _, c := range s.cursors.drainAll() {
			c.cancel()
			c.stream.Close()
			s.metrics.cancelled.Inc()
		}
		if s.ownStore {
			s.store.Close()
		}
	})
}

// sweepLoop evicts idle cursors every ttl/4.
func (s *Server) sweepLoop(ttl time.Duration) {
	// A sweeper panic must not kill the daemon; TTL eviction stops (leak
	// bounded by MaxCursors) and the panic is counted and logged.
	defer func() { s.recovered(recover()) }()
	tick := time.NewTicker(ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case now := <-tick.C:
			for _, c := range s.cursors.sweepIdle(now, ttl) {
				c.cancel()
				c.stream.Close()
				s.metrics.cancelled.Inc()
				s.metrics.cursorsExpired.Inc()
			}
		}
	}
}

// engineFor returns the pooled engine for the given limits, creating it
// on first use; beyond the pool bound it returns a transient engine.
func (s *Server) engineFor(lim core.Limits) *engine.Engine {
	opts := s.cfg.Engine
	opts.Limits = lim
	s.enginesMu.Lock()
	defer s.enginesMu.Unlock()
	if eng, ok := s.engines[lim]; ok {
		return eng
	}
	eng := engine.NewWithStore(s.store, opts)
	if len(s.engines) < enginePoolMax {
		s.engines[lim] = eng
	}
	return eng
}

// queryRequest is the POST /query (and POST /explain) body.
type queryRequest struct {
	// Query is the GQL path query text. Required.
	Query string `json:"query"`
	// ChunkSize overrides the server's default page size, capped at
	// Config.MaxChunkSize.
	ChunkSize int `json:"chunk_size"`
	// MaxLen / MaxPaths / MaxWork override the server's default
	// per-query limits (core.Limits semantics; 0 keeps the default).
	MaxLen   int `json:"max_len"`
	MaxPaths int `json:"max_paths"`
	MaxWork  int `json:"max_work"`
	// TimeoutMS shortens (never extends) the per-query deadline.
	TimeoutMS int `json:"timeout_ms"`
	// NoCache bypasses the result LRU for this query (both lookup and
	// admission of the result).
	NoCache bool `json:"no_cache"`
	// Trace enables per-query tracing: the span tree rides back on the
	// final page's trailer. ?trace=1 on the request URL does the same.
	Trace bool `json:"trace"`
}

// queryResponse is the POST /query response.
type queryResponse struct {
	ID     string `json:"id"`
	Cached bool   `json:"cached"`
	// Total is the result size, known immediately on a cache hit.
	Total *int `json:"total,omitempty"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
	// Kind is the machine-readable failure class: bad_request, not_found,
	// over_capacity, budget_exceeded, deadline_exceeded, cancelled,
	// draining, internal.
	Kind string `json:"kind"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Kind: kind})
}

// writeEvalError maps an evaluation error to its HTTP status — the
// payoff of the typed error contract (errors.Is, never string matching).
func writeEvalError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining", "%v", err)
	case errors.Is(err, core.ErrBudgetExceeded):
		writeError(w, http.StatusUnprocessableEntity, "budget_exceeded", "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", "%v", err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusGone, "cancelled", "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	}
}

// decodeJSONBody parses a bounded, strict JSON request body.
func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

// decodeRequest parses the JSON body of POST /query and /explain.
func decodeRequest(r *http.Request) (*queryRequest, error) {
	var req queryRequest
	if err := decodeJSONBody(r, &req); err != nil {
		return nil, err
	}
	if req.Query == "" {
		return nil, fmt.Errorf("missing \"query\" field")
	}
	return &req, nil
}

// limitsFor merges request overrides into the server's default limits.
func (s *Server) limitsFor(req *queryRequest) core.Limits {
	lim := s.cfg.Engine.Limits
	if req.MaxLen > 0 {
		lim.MaxLen = req.MaxLen
	}
	if req.MaxPaths > 0 {
		lim.MaxPaths = req.MaxPaths
	}
	if req.MaxWork > 0 {
		lim.MaxWork = req.MaxWork
	}
	return lim
}

// chunkFor resolves the page size of a cursor.
func (s *Server) chunkFor(req *queryRequest) int {
	chunk := s.cfg.chunkSize()
	if req.ChunkSize > 0 {
		chunk = req.ChunkSize
	}
	return min(chunk, s.cfg.maxChunkSize())
}

// compile parses and compiles the query text into a logical plan.
func compile(query string) (core.PathExpr, error) {
	q, err := gql.Parse(query)
	if err != nil {
		return nil, err
	}
	return gql.Compile(q)
}

// resultKey is the result-LRU key: the canonical rendering of the
// physical plan the engine chose, plus the limits that bound its
// evaluation. Everything else (parallelism, join strategy, planner
// on/off) does not change results, by the repo's determinism invariants.
func resultKey(plan core.PathExpr, lim core.Limits) string {
	return fmt.Sprintf("%s|maxlen=%d|maxpaths=%d|maxwork=%d", plan, lim.MaxLen, lim.MaxPaths, lim.MaxWork)
}

// handleQuery admits a query: cache hit → cursor over the cached set;
// miss → admission control, then a cancellable streaming evaluation.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	// A trace is built when the client asks for one (returned on the
	// final page) or when the slow-query log is armed (kept server-side
	// for the log line); untraced queries thread nil spans at zero cost.
	wantTrace := req.Trace || r.URL.Query().Get("trace") == "1"
	var tr *obs.Trace
	var root *obs.Span
	if wantTrace || s.cfg.SlowQuery > 0 {
		tr = obs.NewTrace()
		root = tr.Start("query")
	}
	logical, err := traceCompile(root, req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	lim := s.limitsFor(req)
	eng := s.engineFor(lim)
	plan := tracePlan(root, eng, logical)
	key := resultKey(plan, lim)

	id := fmt.Sprintf("q%d", s.nextID.Add(1))
	cur := &cursor{
		id:        id,
		query:     req.Query,
		limits:    lim,
		chunk:     s.chunkFor(req),
		created:   time.Now(),
		trace:     tr,
		root:      root,
		wantTrace: wantTrace,
	}

	if !req.NoCache {
		if ent, ok := s.probeResultCache(root, key); ok {
			cur.cached = true
			cur.cancel = func() {}
			// The cached set's path IDs belong to the epoch it was computed
			// at; render against that epoch's graph, not the current one.
			cur.stream = engine.StreamOf(ent.g, ent.set, cur.chunk)
			if !s.cursors.add(cur) {
				s.metrics.rejected.Inc()
				writeError(w, http.StatusTooManyRequests, "over_capacity", "cursor table full (%d live cursors)", s.cursors.len())
				return
			}
			s.metrics.cursorsOpened.Inc()
			total := ent.set.Len()
			writeJSON(w, http.StatusCreated, queryResponse{ID: id, Cached: true, Total: &total})
			return
		}
	}

	// Cheap pre-launch capacity check so a full cursor table rejects
	// before any evaluation starts; the registration below re-checks
	// under the table lock (the authoritative cap) for the racy window.
	if s.cursors.len() >= s.cfg.maxCursors() {
		s.metrics.rejected.Inc()
		writeError(w, http.StatusTooManyRequests, "over_capacity", "cursor table full (%d live cursors)", s.cursors.len())
		return
	}

	// Admission control: bound concurrently evaluating queries.
	if n := s.inflight.Add(1); n > int64(s.cfg.maxInFlight()) {
		s.inflight.Add(-1)
		s.metrics.rejected.Inc()
		writeError(w, http.StatusTooManyRequests, "over_capacity", "too many in-flight queries (max %d)", s.cfg.maxInFlight())
		return
	}

	var qctx context.Context
	var qcancel context.CancelFunc
	if t := s.deadlineFor(req); t > 0 {
		qctx, qcancel = context.WithTimeout(s.baseCtx, t)
	} else {
		qctx, qcancel = context.WithCancel(s.baseCtx)
	}
	cur.cancel = qcancel
	evalStart := time.Now()
	// The root span rides the query context into RunStream: the engine's
	// plan/eval spans and the automaton's search/shard spans parent onto
	// it. WithSpan on a nil span returns qctx unchanged.
	cur.stream = eng.RunStream(obs.WithSpan(qctx, root), logical, engine.StreamOptions{ChunkSize: cur.chunk})
	s.metrics.started.Inc()

	// Completion watcher: release the admission slot, log slow queries,
	// admit successful results into the result cache — tagged with the
	// epoch and graph view the stream pinned, plus the plan's label
	// footprint for invalidation.
	go func() {
		defer func() { s.recovered(recover()) }()
		<-cur.stream.Done()
		s.inflight.Add(-1)
		if cur.discarded.Load() {
			return // registration rejected; counted as rejected, not failed
		}
		if thr := s.cfg.SlowQuery; thr > 0 {
			if el := time.Since(evalStart); el >= thr {
				s.metrics.slowQueries.Inc()
				log.Printf("server: slow query %s (%v >= %v): query=%q limits={maxlen:%d maxpaths:%d maxwork:%d} plan=%s trace: %s",
					id, el.Round(time.Microsecond), thr, req.Query,
					lim.MaxLen, lim.MaxPaths, lim.MaxWork, plan, cur.trace.Summary())
			}
		}
		set, err := cur.stream.Result()
		if err != nil {
			s.metrics.failed.Inc()
			return
		}
		s.metrics.completed.Inc()
		if !req.NoCache {
			fp := engine.PlanFootprint(plan)
			s.cache.put(key, &cacheEntry{
				set:   set,
				g:     cur.stream.Graph(),
				epoch: cur.stream.Epoch(),
				fp:    fp,
			})
		}
	}()

	if !s.cursors.add(cur) {
		// Lost the pre-check race: undo the start accounting and mark the
		// cursor discarded so the completion watcher skips the
		// completed/failed counters — a capacity rejection must not read
		// as a started+failed query in /stats.
		cur.discarded.Store(true)
		qcancel()
		go func() { // async: Close waits for the aborted evaluation
			defer func() { s.recovered(recover()) }()
			cur.stream.Close()
		}()
		s.metrics.started.Add(-1)
		s.metrics.rejected.Inc()
		writeError(w, http.StatusTooManyRequests, "over_capacity", "cursor table full (%d live cursors)", s.cursors.len())
		return
	}
	s.metrics.cursorsOpened.Inc()
	writeJSON(w, http.StatusCreated, queryResponse{ID: id, Cached: false})
}

// deadlineFor resolves the effective per-query deadline.
func (s *Server) deadlineFor(req *queryRequest) time.Duration {
	t := s.cfg.queryTimeout()
	if req.TimeoutMS > 0 {
		reqT := time.Duration(req.TimeoutMS) * time.Millisecond
		if t <= 0 || reqT < t {
			t = reqT
		}
	}
	return t
}

// handleNext serves one cursor page as NDJSON. The wait for evaluation
// completion is a long-poll bounded by the client's own request context;
// an abandoned wait leaves the evaluation running for a later retry.
func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cur, ok := s.cursors.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no cursor %q", id)
		return
	}
	// Touch before the long-poll wait too: a client blocked here on a
	// slow evaluation is attentive, not idle — without this the TTL
	// sweeper could cancel a query out from under its waiting reader.
	cur.mu.Lock()
	cur.touch(time.Now())
	cur.mu.Unlock()
	select {
	case <-cur.stream.Done():
	case <-r.Context().Done():
		// Client went away while the evaluation was still running; the
		// cursor stays valid.
		return
	}
	cur.mu.Lock()
	defer cur.mu.Unlock()
	cur.touch(time.Now())
	chunk, err := cur.stream.Next()
	if err != nil {
		// Removal releases the per-query context (timer included); the
		// evaluation is already finished, so cancel only cleans up.
		s.cursors.remove(id)
		cur.cancel()
		cur.stream.Close()
		writeEvalError(w, err)
		return
	}
	total := cur.stream.Len()
	returned := 0
	if chunk != nil {
		returned = chunk.Len()
	}
	cur.delivered += int64(returned)
	done := cur.stream.Pos() >= total
	if done {
		// Exhausted: the cursor is gone after this page (a re-POST of the
		// same query hits the result cache), and its per-query context —
		// a deadline timer parented on baseCtx — is released. The epoch
		// pin is NOT released before this page renders below; Close runs
		// after the response is written.
		s.cursors.remove(id)
		cur.cancel()
		defer cur.stream.Close()
	}
	s.metrics.paths.Add(int64(returned))
	s.metrics.pages.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := writePage(w, cur, chunk, returned); err != nil {
		return // severed mid-page; no trailer, client retries or DELETEs
	}
	trailer := pageTrailer{
		Done:      done,
		Returned:  returned,
		Delivered: cur.delivered,
		Total:     total,
	}
	if done {
		// The query is over: close the root span so the tree's durations
		// are final, and return it to a client that asked for a trace.
		cur.root.End()
		if cur.wantTrace {
			trailer.Trace = cur.trace.Tree()
		}
	}
	writeNDJSON(w, trailer)
}

// handleCancel aborts a query and discards its cursor.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cur, ok := s.cursors.remove(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no cursor %q", id)
		return
	}
	cur.cancel()
	cur.stream.Close()
	s.metrics.cancelled.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "cancelled": true})
}

// statsResponse is the GET /stats body.
type statsResponse struct {
	Engine engine.Stats `json:"engine"`
	Server struct {
		InFlight    int64 `json:"in_flight"`
		LiveCursors int   `json:"live_cursors"`
		Started     int64 `json:"queries_started"`
		Completed   int64 `json:"queries_completed"`
		Failed      int64 `json:"queries_failed"`
		Rejected    int64 `json:"queries_rejected"`
		Cancelled   int64 `json:"queries_cancelled"`
		Paths       int64 `json:"paths_delivered"`
		Pages       int64 `json:"pages_served"`
		Panics      int64 `json:"panics_recovered"`
		SlowQueries int64 `json:"slow_queries"`
	} `json:"server"`
	ResultCache struct {
		Entries int   `json:"entries"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
	} `json:"result_cache"`
	ReachCache struct {
		Entries int   `json:"entries"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
	} `json:"reach_cache"`
	Graph struct {
		Nodes   int `json:"nodes"`
		Edges   int `json:"edges"`
		Symbols int `json:"symbols"`
	} `json:"graph"`
	Store struct {
		Epoch       uint64 `json:"epoch"`
		DeltaSize   int    `json:"delta_size"`
		DeltaNodes  int    `json:"delta_nodes"` // appended nodes in the overlay
		DeltaEdges  int    `json:"delta_edges"` // appended edges in the overlay
		DeadNodes   int    `json:"dead_nodes"`  // tombstoned nodes
		DeadEdges   int    `json:"dead_edges"`  // tombstoned edges
		Compactions uint64 `json:"compactions"`
		LiveEpochs  int    `json:"live_epochs"`
		Pinned      int64  `json:"pinned_snapshots"`
		Ingests     int64  `json:"ingests"`
		IngestedOps int64  `json:"ingested_ops"`

		// Fault-tolerance counters (PR 8). A non-zero CompactionErrors
		// with the store still serving means the compactor is degraded
		// (retrying with backoff, reads come off the overlay) — alertable
		// without being fatal.
		CompactionErrors    uint64 `json:"compaction_errors"`
		LastCompactionError string `json:"last_compaction_error,omitempty"`
		Checkpoints         uint64 `json:"checkpoints"`
		// Durable reports whether the store runs with a WAL; the WAL
		// fields are meaningful only when true.
		Durable    bool  `json:"durable"`
		WALRecords int   `json:"wal_records"`
		WALBytes   int64 `json:"wal_bytes"`
	} `json:"store"`
}

// handleStats snapshots engine stats (aggregated across the per-limits
// engine pool) plus the service counters. The counters are read from the
// same obs instruments /metrics scrapes — one source of truth, two
// renderings.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.Engine = s.engineStats()
	resp.Server.InFlight = s.inflight.Load()
	resp.Server.LiveCursors = s.cursors.len()
	resp.Server.Started = s.metrics.started.Value()
	resp.Server.Completed = s.metrics.completed.Value()
	resp.Server.Failed = s.metrics.failed.Value()
	resp.Server.Rejected = s.metrics.rejected.Value()
	resp.Server.Cancelled = s.metrics.cancelled.Value()
	resp.Server.Paths = s.metrics.paths.Value()
	resp.Server.Pages = s.metrics.pages.Value()
	resp.ResultCache.Entries, resp.ResultCache.Hits, resp.ResultCache.Misses = s.cache.snapshot()
	resp.ReachCache.Entries, resp.ReachCache.Hits, resp.ReachCache.Misses = s.reach.snapshot()
	g := s.store.Graph()
	resp.Graph.Nodes = g.LiveNodes()
	resp.Graph.Edges = g.LiveEdges()
	resp.Graph.Symbols = g.NumSymbols()
	resp.Store.Epoch = s.store.Epoch()
	resp.Store.DeltaSize = s.store.DeltaSize()
	resp.Store.DeltaNodes, resp.Store.DeltaEdges, resp.Store.DeadNodes, resp.Store.DeadEdges = s.store.DeltaCounts()
	resp.Store.Compactions = s.store.Compactions()
	resp.Store.LiveEpochs, resp.Store.Pinned = s.store.LiveEpochs()
	resp.Store.Ingests = s.metrics.ingests.Value()
	resp.Store.IngestedOps = s.metrics.ingestedOps.Value()
	resp.Server.Panics = s.metrics.panics.Value()
	resp.Server.SlowQueries = s.metrics.slowQueries.Value()
	resp.Store.CompactionErrors, resp.Store.LastCompactionError = s.store.CompactionErrors()
	resp.Store.Checkpoints = s.store.Checkpoints()
	resp.Store.WALRecords, resp.Store.WALBytes, resp.Store.Durable = s.store.WALStats()
	writeJSON(w, http.StatusOK, resp)
}

// explainResponse is the POST /explain body.
type explainResponse struct {
	Plan     string   `json:"plan"`
	Rules    []string `json:"rules"`
	CacheHit bool     `json:"cache_hit"`
	Total    int      `json:"total"`
	Text     string   `json:"text"`
}

// handleExplain plans and evaluates the query, reporting the chosen plan
// with estimated vs. actual per-operator cardinalities. Explain
// evaluates each subtree independently (a diagnostic, not an execution
// mode), so it runs under the same admission control as queries.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	logical, err := compile(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if n := s.inflight.Add(1); n > int64(s.cfg.maxInFlight()) {
		s.inflight.Add(-1)
		s.metrics.rejected.Inc()
		writeError(w, http.StatusTooManyRequests, "over_capacity", "too many in-flight queries (max %d)", s.cfg.maxInFlight())
		return
	}
	defer s.inflight.Add(-1)
	ctx := s.baseCtx
	if t := s.deadlineFor(req); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	ex, err := s.engineFor(s.limitsFor(req)).ExplainCtx(ctx, logical)
	if err != nil {
		writeEvalError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{
		Plan:     gql.PrintPlan(ex.Plan),
		Rules:    ex.Applied,
		CacheHit: ex.CacheHit,
		Total:    ex.Result.Len(),
		Text:     ex.Format(),
	})
}

// handleInvalidate drops every cached result, path sets and reach
// answers alike.
func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	n := s.cache.invalidate() + s.reach.invalidate()
	writeJSON(w, http.StatusOK, map[string]any{"invalidated": n})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}
