package server

import (
	"context"
	"fmt"
	"net/http"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/obs"
	"pathalgebra/internal/opt"
)

// POST /reach answers a path-free question about a query's result set —
// endpoint pairs, pair/path counts, existence, shortest lengths —
// without streaming any path. Eligible plans run on the bitset
// reachability kernel (zero path materialization); everything else
// enumerates and erases. The response reports which route ran.
//
//	POST /reach {"query": "...", "mode": "pairs"} →
//	  {"mode":"pairs","kernel":true,"exists":true,"count":2,
//	   "pairs":[{"src":"n1","dst":"n2"},...]}

// reachRequest is the POST /reach body: the query surface of
// queryRequest plus the answer mode.
type reachRequest struct {
	Query string `json:"query"`
	// Mode is one of "exists", "pairs", "count-pairs", "count-paths",
	// "shortest-lengths". Required.
	Mode      string `json:"mode"`
	MaxLen    int    `json:"max_len"`
	MaxPaths  int    `json:"max_paths"`
	MaxWork   int    `json:"max_work"`
	TimeoutMS int    `json:"timeout_ms"`
	NoCache   bool   `json:"no_cache"`
	// Trace returns the request's span tree in the response ("trace"
	// field). ?trace=1 on the request URL does the same.
	Trace bool `json:"trace"`
}

// reachPairJSON is one endpoint pair, node keys resolved against the
// evaluation view; Len is present for mode "shortest-lengths".
type reachPairJSON struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
	Len *int32 `json:"len,omitempty"`
}

// reachResponse is the POST /reach response. Trace is present only when
// the request asked for it; cached entries store the response without it
// (a hit's trace describes the probe, not the original evaluation).
type reachResponse struct {
	Mode   string          `json:"mode"`
	Kernel bool            `json:"kernel"`
	Cached bool            `json:"cached"`
	Exists bool            `json:"exists"`
	Count  int             `json:"count"`
	Pairs  []reachPairJSON `json:"pairs,omitempty"`
	Trace  []*obs.SpanJSON `json:"trace,omitempty"`
}

// parseReachMode maps the wire mode names onto opt.ReachMode.
func parseReachMode(s string) (opt.ReachMode, error) {
	for _, m := range []opt.ReachMode{
		opt.ReachExists, opt.ReachPairs, opt.ReachCountPairs,
		opt.ReachCountPaths, opt.ReachShortestLengths,
	} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown reach mode %q (want exists, pairs, count-pairs, count-paths or shortest-lengths)", s)
}

// reachKey is the reach-cache key. The "reach:<mode>:" prefix keeps the
// keyspace disjoint from resultKey's even in principle — kernel answers
// and enumerated path sets must never alias (the caches are separate
// structures on top of this).
func reachKey(mode opt.ReachMode, plan core.PathExpr, lim core.Limits) string {
	return fmt.Sprintf("reach:%s:%s", mode, resultKey(plan, lim))
}

// handleReach evaluates a path-free query. It is synchronous like
// /explain (no cursor — the answer is small), runs under the same
// admission control, and caches rendered answers in the reach LRU with
// label-footprint invalidation.
func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	var req reachRequest
	if err := decodeJSONBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing \"query\" field")
		return
	}
	mode, err := parseReachMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	wantTrace := req.Trace || r.URL.Query().Get("trace") == "1"
	var tr *obs.Trace
	var root *obs.Span
	if wantTrace {
		tr = obs.NewTrace()
		root = tr.Start("reach")
		// Tree() below closes the root at render; the deferred End only
		// matters if the handler bails before rendering.
		defer root.End()
	}
	logical, err := traceCompile(root, req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	lim := s.limitsFor(&queryRequest{MaxLen: req.MaxLen, MaxPaths: req.MaxPaths, MaxWork: req.MaxWork})
	eng := s.engineFor(lim)
	plan := tracePlan(root, eng, logical)
	key := reachKey(mode, plan, lim)

	if !req.NoCache {
		if ent, ok := s.probeReachCache(root, key); ok {
			resp := ent.resp
			resp.Cached = true
			if wantTrace {
				resp.Trace = tr.Tree()
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	if n := s.inflight.Add(1); n > int64(s.cfg.maxInFlight()) {
		s.inflight.Add(-1)
		s.metrics.rejected.Inc()
		writeError(w, http.StatusTooManyRequests, "over_capacity", "too many in-flight queries (max %d)", s.cfg.maxInFlight())
		return
	}
	defer s.inflight.Add(-1)
	ctx := s.baseCtx
	if t := s.deadlineFor(&queryRequest{TimeoutMS: req.TimeoutMS}); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	res, err := eng.ReachCtx(obs.WithSpan(ctx, root), logical, mode)
	if err != nil {
		writeEvalError(w, err)
		return
	}
	resp := renderReach(res)
	// Cache the response before attaching the trace: a later hit gets the
	// answer, not this request's spans.
	if !req.NoCache {
		s.reach.put(key, &reachEntry{
			resp:  resp,
			epoch: res.Epoch,
			fp:    engine.PlanFootprint(plan),
		})
	}
	if wantTrace {
		resp.Trace = tr.Tree()
	}
	writeJSON(w, http.StatusOK, resp)
}

// renderReach resolves the result's node IDs to external keys against
// the evaluation view it was computed on.
func renderReach(res *engine.ReachResult) reachResponse {
	resp := reachResponse{
		Mode:   res.Mode.String(),
		Kernel: res.Kernel,
		Exists: res.Exists,
		Count:  res.Count,
	}
	if len(res.Pairs) > 0 {
		resp.Pairs = make([]reachPairJSON, len(res.Pairs))
		for i, p := range res.Pairs {
			resp.Pairs[i] = reachPairJSON{
				Src: res.Graph.Node(p.Src).Key,
				Dst: res.Graph.Node(p.Dst).Key,
			}
			if res.Lengths != nil {
				l := res.Lengths[i]
				resp.Pairs[i].Len = &l
			}
		}
	}
	return resp
}
