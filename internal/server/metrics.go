package server

import (
	"net/http"
	"runtime"
	"time"

	"pathalgebra/internal/engine"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/obs"
)

// endpoints names every routed endpoint for the per-endpoint HTTP
// metrics. The set is fixed at construction so the instrument middleware
// does a map lookup once at registration, never per request.
var endpoints = []string{
	"query", "reach", "next", "cancel", "ingest",
	"stats", "explain", "invalidate", "healthz", "metrics",
}

// serverMetrics is the server's obs instrument set: every service-level
// counter that used to live in hand-rolled atomics, plus the per-endpoint
// HTTP request/latency families. The registry is per-server (tests run
// many servers per process); process-wide sources (WAL latency, runtime
// stats) are registered as collectors so each server's /metrics exposes
// them without owning them.
type serverMetrics struct {
	reg *obs.Registry

	started   *obs.Counter // queries admitted to evaluation
	completed *obs.Counter // evaluations finishing without error
	failed    *obs.Counter // evaluations finishing with an error
	rejected  *obs.Counter // requests refused by admission control
	cancelled *obs.Counter // DELETEs and sweeper evictions
	paths     *obs.Counter // path lines delivered
	pages     *obs.Counter // pages served

	ingests     *obs.Counter // batches applied via POST /ingest
	ingestedOps *obs.Counter // ops across those batches

	panics      *obs.Counter // panics recovered in handlers and background goroutines
	slowQueries *obs.Counter // evaluations at or above Config.SlowQuery

	cursorsOpened  *obs.Counter // cursors registered
	cursorsExpired *obs.Counter // cursors evicted by the idle sweeper

	httpInFlight *obs.Gauge
	httpRequests map[string]*obs.Counter
	httpLatency  map[string]*obs.Histogram
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:            reg,
		started:        reg.Counter("pathalgebra_queries_started_total", "Queries admitted to evaluation."),
		completed:      reg.Counter("pathalgebra_queries_completed_total", "Evaluations finishing without error."),
		failed:         reg.Counter("pathalgebra_queries_failed_total", "Evaluations finishing with an error."),
		rejected:       reg.Counter("pathalgebra_queries_rejected_total", "Requests refused by admission control."),
		cancelled:      reg.Counter("pathalgebra_queries_cancelled_total", "Queries cancelled by DELETE, sweeper eviction or server close."),
		paths:          reg.Counter("pathalgebra_paths_delivered_total", "Path lines delivered over NDJSON pages."),
		pages:          reg.Counter("pathalgebra_pages_served_total", "Cursor pages served."),
		ingests:        reg.Counter("pathalgebra_ingest_batches_total", "Mutation batches applied via POST /ingest."),
		ingestedOps:    reg.Counter("pathalgebra_ingest_ops_total", "Mutation ops across applied batches."),
		panics:         reg.Counter("pathalgebra_panics_recovered_total", "Panics recovered in handlers and background goroutines."),
		slowQueries:    reg.Counter("pathalgebra_slow_queries_total", "Evaluations at or above the slow-query threshold."),
		cursorsOpened:  reg.Counter("pathalgebra_cursors_opened_total", "Result cursors registered."),
		cursorsExpired: reg.Counter("pathalgebra_cursors_expired_total", "Result cursors evicted by the idle sweeper."),
		httpInFlight:   reg.Gauge("pathalgebra_http_inflight", "HTTP requests currently being served."),
		httpRequests:   make(map[string]*obs.Counter, len(endpoints)),
		httpLatency:    make(map[string]*obs.Histogram, len(endpoints)),
	}
	for _, ep := range endpoints {
		l := obs.Label{Name: "endpoint", Value: ep}
		m.httpRequests[ep] = reg.Counter("pathalgebra_http_requests_total", "HTTP requests by endpoint.", l)
		m.httpLatency[ep] = reg.Histogram("pathalgebra_http_request_seconds", "HTTP request latency by endpoint.", l)
	}
	return m
}

// instrument wraps a handler with the per-endpoint request counter,
// latency histogram and the shared in-flight gauge. Endpoint names are
// resolved at registration (one map lookup here, zero per request).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.metrics.httpRequests[endpoint]
	lat := s.metrics.httpLatency[endpoint]
	inflight := s.metrics.httpInFlight
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		reqs.Inc()
		inflight.Add(1)
		defer func() {
			inflight.Add(-1)
			lat.ObserveSince(t0)
		}()
		h(w, r)
	}
}

// handle registers a route through the instrument middleware.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(endpoint, h))
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// engineStats aggregates counters across the per-limits engine pool —
// the engine-side half of /stats and the source for the engine
// collectors below.
func (s *Server) engineStats() engine.Stats {
	var agg engine.Stats
	s.enginesMu.Lock()
	defer s.enginesMu.Unlock()
	for _, eng := range s.engines {
		st := eng.Stats()
		agg.PathsProduced += st.PathsProduced
		agg.JoinProbes += st.JoinProbes
		agg.IndexedScans += st.IndexedScans
		agg.Recursions += st.Recursions
		agg.ExpandedRecursions += st.ExpandedRecursions
		agg.SeededRecursions += st.SeededRecursions
		agg.BackwardRecursions += st.BackwardRecursions
		agg.ReachKernelRuns += st.ReachKernelRuns
		agg.ReachFallbacks += st.ReachFallbacks
		agg.PlanCacheHits += st.PlanCacheHits
		agg.PlanCacheMisses += st.PlanCacheMisses
		agg.BudgetExhaustions += st.BudgetExhaustions
		agg.FingerprintCollisions += st.FingerprintCollisions
	}
	return agg
}

// registerCollectors wires the scrape-time sources into the registry:
// engine-pool aggregates, store and cache state, WAL latency histograms,
// and runtime health. Collectors read live state on every scrape — they
// cost nothing between scrapes.
func (s *Server) registerCollectors() {
	reg := s.metrics.reg

	reg.GaugeFunc("pathalgebra_queries_inflight", "Queries currently evaluating (admission-controlled).",
		func() int64 { return s.inflight.Load() })
	reg.GaugeFunc("pathalgebra_cursors_live", "Live result cursors.",
		func() int64 { return int64(s.cursors.len()) })

	for _, c := range []struct {
		name, help string
		pick       func(engine.Stats) int64
	}{
		{"pathalgebra_engine_paths_produced_total", "Paths produced by engine operators.", func(st engine.Stats) int64 { return st.PathsProduced }},
		{"pathalgebra_engine_join_probes_total", "Join index probes.", func(st engine.Stats) int64 { return st.JoinProbes }},
		{"pathalgebra_engine_indexed_scans_total", "Label-indexed edge scans.", func(st engine.Stats) int64 { return st.IndexedScans }},
		{"pathalgebra_engine_recursions_total", "Recursive operator evaluations.", func(st engine.Stats) int64 { return st.Recursions }},
		{"pathalgebra_engine_expanded_recursions_total", "Recursions via automaton expansion.", func(st engine.Stats) int64 { return st.ExpandedRecursions }},
		{"pathalgebra_engine_seeded_recursions_total", "Recursions seeded from endpoint conditions.", func(st engine.Stats) int64 { return st.SeededRecursions }},
		{"pathalgebra_engine_backward_recursions_total", "Recursions evaluated backward.", func(st engine.Stats) int64 { return st.BackwardRecursions }},
		{"pathalgebra_engine_reach_kernel_runs_total", "Path-free answers via the bitset kernel.", func(st engine.Stats) int64 { return st.ReachKernelRuns }},
		{"pathalgebra_engine_reach_fallbacks_total", "Path-free answers via enumeration fallback.", func(st engine.Stats) int64 { return st.ReachFallbacks }},
		{"pathalgebra_engine_plan_cache_hits_total", "Plan cache hits.", func(st engine.Stats) int64 { return st.PlanCacheHits }},
		{"pathalgebra_engine_plan_cache_misses_total", "Plan cache misses.", func(st engine.Stats) int64 { return st.PlanCacheMisses }},
		{"pathalgebra_engine_budget_exhaustions_total", "Evaluations aborted by budget exhaustion.", func(st engine.Stats) int64 { return st.BudgetExhaustions }},
		{"pathalgebra_engine_fingerprint_collisions_total", "Plan fingerprint collisions detected.", func(st engine.Stats) int64 { return st.FingerprintCollisions }},
	} {
		reg.CounterFunc(c.name, c.help, func() int64 { return c.pick(s.engineStats()) })
	}

	reg.GaugeFunc("pathalgebra_result_cache_entries", "Result LRU entries.",
		func() int64 { e, _, _ := s.cache.snapshot(); return int64(e) })
	reg.CounterFunc("pathalgebra_result_cache_hits_total", "Result LRU hits.",
		func() int64 { _, h, _ := s.cache.snapshot(); return h })
	reg.CounterFunc("pathalgebra_result_cache_misses_total", "Result LRU misses.",
		func() int64 { _, _, m := s.cache.snapshot(); return m })
	reg.GaugeFunc("pathalgebra_reach_cache_entries", "Reach LRU entries.",
		func() int64 { e, _, _ := s.reach.snapshot(); return int64(e) })
	reg.CounterFunc("pathalgebra_reach_cache_hits_total", "Reach LRU hits.",
		func() int64 { _, h, _ := s.reach.snapshot(); return h })
	reg.CounterFunc("pathalgebra_reach_cache_misses_total", "Reach LRU misses.",
		func() int64 { _, _, m := s.reach.snapshot(); return m })

	reg.GaugeFunc("pathalgebra_graph_nodes", "Live nodes in the served view.",
		func() int64 { return int64(s.store.Graph().LiveNodes()) })
	reg.GaugeFunc("pathalgebra_graph_edges", "Live edges in the served view.",
		func() int64 { return int64(s.store.Graph().LiveEdges()) })
	reg.GaugeFunc("pathalgebra_graph_symbols", "Distinct edge symbols.",
		func() int64 { return int64(s.store.Graph().NumSymbols()) })

	reg.GaugeFunc("pathalgebra_store_epoch", "Current store epoch.",
		func() int64 { return int64(s.store.Epoch()) })
	reg.GaugeFunc("pathalgebra_store_delta_size", "Delta-overlay records since last compaction.",
		func() int64 { return int64(s.store.DeltaSize()) })
	reg.CounterFunc("pathalgebra_store_compactions_total", "Completed compactions.",
		func() int64 { return int64(s.store.Compactions()) })
	reg.GaugeFunc("pathalgebra_store_live_epochs", "Epochs kept alive by pins.",
		func() int64 { le, _ := s.store.LiveEpochs(); return int64(le) })
	reg.GaugeFunc("pathalgebra_store_pinned_snapshots", "Outstanding snapshot pins.",
		func() int64 { _, p := s.store.LiveEpochs(); return p })
	reg.CounterFunc("pathalgebra_store_compaction_errors_total", "Compaction attempts that failed (compactor degraded, not fatal).",
		func() int64 { ce, _ := s.store.CompactionErrors(); return int64(ce) })
	reg.CounterFunc("pathalgebra_store_checkpoints_total", "WAL checkpoints taken.",
		func() int64 { return int64(s.store.Checkpoints()) })
	reg.GaugeFunc("pathalgebra_wal_records", "Records in the live WAL segment.",
		func() int64 { rec, _, _ := s.store.WALStats(); return int64(rec) })
	reg.GaugeFunc("pathalgebra_wal_bytes", "Bytes in the live WAL segment.",
		func() int64 { _, b, _ := s.store.WALStats(); return b })
	reg.RegisterHistogram("pathalgebra_wal_append_seconds", "WAL append latency, lock acquired to record durable.", graph.WALAppendSeconds())
	reg.RegisterHistogram("pathalgebra_wal_fsync_seconds", "WAL fsync latency.", graph.WALFsyncSeconds())

	reg.GaugeFunc("pathalgebra_goroutines", "Goroutines in the process.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("pathalgebra_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() int64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return int64(m.HeapAlloc) })
	reg.CounterFunc("pathalgebra_gc_pause_ns_total", "Cumulative GC stop-the-world pause.",
		func() int64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return int64(m.PauseTotalNs) })
	reg.CounterFunc("pathalgebra_gc_cycles_total", "Completed GC cycles.",
		func() int64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return int64(m.NumGC) })
}
