package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/obs"
)

// cursor is one session-scoped query: the stream being paged, the cancel
// handle aborting its evaluation, and pagination bookkeeping. Page reads
// serialize on mu (a cursor is a sequential protocol; concurrent /next
// calls on one id would otherwise race the stream).
type cursor struct {
	id      string
	query   string      // original query text, echoed in /stats-level logs
	limits  core.Limits // effective per-query limits
	chunk   int
	stream  *engine.Stream
	cancel  context.CancelFunc // cancels the query context (deadline included)
	cached  bool               // served from the result cache, no evaluation
	created time.Time
	// discarded marks a cursor whose registration was rejected after its
	// evaluation had already launched; the completion watcher then skips
	// the completed/failed accounting (the request counted as rejected).
	discarded atomic.Bool

	// trace/root carry the per-query trace when the query is traced (by
	// request or for the slow-query log); both nil otherwise — every span
	// operation through them is a nil no-op. wantTrace gates returning
	// the span tree on the final page (slow-query-only traces stay
	// server-side).
	trace     *obs.Trace
	root      *obs.Span
	wantTrace bool

	mu        sync.Mutex
	delivered int64
	lastRead  time.Time
}

// touch records a page read for the idle-TTL sweeper.
func (c *cursor) touch(now time.Time) {
	c.lastRead = now
}

// cursorTable is the mutex-guarded cursor registry. Cursors are removed
// on exhaustion, on error delivery, on DELETE, by the idle sweeper, and
// all at once on server close.
type cursorTable struct {
	mu      sync.Mutex
	cursors map[string]*cursor
	max     int
}

func newCursorTable(max int) *cursorTable {
	return &cursorTable{cursors: make(map[string]*cursor), max: max}
}

// add registers c, reporting false when the table is full.
func (t *cursorTable) add(c *cursor) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.cursors) >= t.max {
		return false
	}
	t.cursors[c.id] = c
	return true
}

func (t *cursorTable) get(id string) (*cursor, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.cursors[id]
	return c, ok
}

// remove unregisters id, returning the cursor if it was present. It does
// NOT cancel the cursor — callers decide (exhaustion keeps nothing
// running; DELETE and the sweeper cancel).
func (t *cursorTable) remove(id string) (*cursor, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.cursors[id]
	if ok {
		delete(t.cursors, id)
	}
	return c, ok
}

func (t *cursorTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cursors)
}

// drainAll removes every cursor and returns them for cancellation —
// server close.
func (t *cursorTable) drainAll() []*cursor {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*cursor, 0, len(t.cursors))
	//lint:ignore detorder every collected cursor is cancelled; cancellation order is unobservable
	for id, c := range t.cursors {
		out = append(out, c)
		delete(t.cursors, id)
	}
	return out
}

// sweepIdle removes and returns cursors whose last page read (or
// creation, if never read) is older than ttl.
func (t *cursorTable) sweepIdle(now time.Time, ttl time.Duration) []*cursor {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*cursor
	//lint:ignore detorder every swept cursor is cancelled; cancellation order is unobservable
	for id, c := range t.cursors {
		c.mu.Lock()
		last := c.lastRead
		c.mu.Unlock()
		if last.IsZero() {
			last = c.created
		}
		if now.Sub(last) > ttl {
			out = append(out, c)
			delete(t.cursors, id)
		}
	}
	return out
}
