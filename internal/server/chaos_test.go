package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"pathalgebra/internal/fault"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
)

// The chaos differential harness: seeded-fault trials over a mixed
// ingest/query/stats workload. The contract it enforces, per response:
//
//   - an ingest either applies fully (200, epoch bumped) or fails with a
//     typed error kind and applies nothing;
//   - a query either returns results byte-identical to a fault-free
//     oracle that received exactly the acknowledged ingests, or fails
//     with a typed error kind (a page may be cut mid-write only when the
//     write fault is what cut it);
//   - after every trial nothing leaks: no goroutines, no cursor-table
//     entries, no pinned snapshots — and the durable directory reopens
//     to exactly the acknowledged state.

// chaosQueries is the fixed query pool; every entry must evaluate
// deterministically (the repo-wide invariant) so oracle comparison is
// byte-level.
var chaosQueries = []string{
	`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`,
	`MATCH ACYCLIC p = (?x)-[(:Knows|:Likes)+]->(?y)`,
	`MATCH SHORTEST p = (?x)-[:Knows+]->(?y)`,
}

// chaosStep is one recorded workload step and its faulted-run outcome.
type chaosStep struct {
	kind  string // "ingest" | "query" | "stats"
	query int    // index into chaosQueries
	batch string // NDJSON body for ingest steps

	acked    bool     // ingest: 200
	paths    []string // query: raw path lines, in order
	complete bool     // query: every page ended in a trailer
	errKind  string   // typed error kind when a step failed
}

// chaosWorkload generates the deterministic step list for one trial.
func chaosWorkload(rng *rand.Rand, steps int) []*chaosStep {
	out := make([]*chaosStep, steps)
	for i := range out {
		switch r := rng.Float64(); {
		case r < 0.4:
			// Batches chain onto earlier chaos nodes: if the batch that
			// added chaos-nK was rejected, a later edge to it is a typed
			// validation error — part of the surface under test.
			ref := rng.Intn(i + 1)
			out[i] = &chaosStep{kind: "ingest", batch: fmt.Sprintf(
				`{"op":"add_node","key":"chaos-n%d","label":"Person"}
{"op":"add_edge","key":"chaos-e%d","src":"chaos-n%d","dst":"chaos-n%d","label":"Knows"}
`, i, i, ref, i)}
			if ref == i { // first node has nothing to chain to; self-edges are valid
				out[i].batch = fmt.Sprintf(`{"op":"add_node","key":"chaos-n%d","label":"Person"}`+"\n", i)
			}
		case r < 0.9:
			out[i] = &chaosStep{kind: "query", query: rng.Intn(len(chaosQueries))}
		default:
			out[i] = &chaosStep{kind: "stats"}
		}
	}
	return out
}

// chaosKinds are the error kinds a faulted run may surface. Anything
// else (or a non-JSON error body) fails the trial.
var chaosKinds = map[string]bool{"internal": true, "validation": true}

// runChaosStep executes one step against base, recording the outcome.
func runChaosStep(t *testing.T, base string, st *chaosStep, faulted bool) {
	t.Helper()
	switch st.kind {
	case "ingest":
		resp, err := http.Post(base+"/ingest", "application/x-ndjson", strings.NewReader(st.batch))
		if err != nil {
			t.Fatalf("ingest transport error: %v", err)
		}
		if resp.StatusCode == http.StatusOK {
			st.acked = true
			resp.Body.Close()
			return
		}
		st.errKind = decodeErrKind(t, resp)
	case "query":
		body := fmt.Sprintf(`{"query": %q, "max_len": 3}`, chaosQueries[st.query])
		resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("query transport error: %v", err)
		}
		if resp.StatusCode != http.StatusCreated {
			st.errKind = decodeErrKind(t, resp)
			return
		}
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("query response: %v", err)
		}
		resp.Body.Close()
		st.paths, st.complete, st.errKind = drainChaosCursor(t, base, qr.ID)
	case "stats":
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatalf("stats transport error: %v", err)
		}
		var sr statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("stats body: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d", resp.StatusCode)
		}
	}
}

// drainChaosCursor pages a cursor to exhaustion. It returns the raw path
// lines, whether every page ended in a trailer (a cut page means the
// injected write fault severed it), and the typed kind if evaluation
// failed. A cut or failed cursor is DELETEd so it cannot leak.
func drainChaosCursor(t *testing.T, base, id string) (paths []string, complete bool, errKind string) {
	t.Helper()
	for page := 0; ; page++ {
		if page > 200 {
			t.Fatal("cursor never finished")
		}
		resp, err := http.Get(fmt.Sprintf("%s/query/%s/next", base, id))
		if err != nil {
			t.Fatalf("next transport error: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			return paths, false, decodeErrKind(t, resp)
		}
		sawTrailer, done := false, false
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			var probe map[string]json.RawMessage
			if err := json.Unmarshal([]byte(line), &probe); err != nil {
				t.Fatalf("malformed NDJSON line %q", line)
			}
			if _, isPath := probe["nodes"]; isPath {
				paths = append(paths, line)
			} else {
				var tr pageTrailer
				if err := json.Unmarshal([]byte(line), &tr); err != nil {
					t.Fatal(err)
				}
				sawTrailer, done = true, tr.Done
			}
		}
		resp.Body.Close()
		if !sawTrailer {
			// Page severed mid-write; drop the cursor and report the cut.
			req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/query/%s", base, id), nil)
			if dr, err := http.DefaultClient.Do(req); err == nil {
				dr.Body.Close()
			}
			return paths, false, ""
		}
		if done {
			return paths, true, ""
		}
	}
}

func decodeErrKind(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("status %d with undecodable error body: %v", resp.StatusCode, err)
	}
	if !chaosKinds[er.Kind] {
		t.Fatalf("status %d with unexpected error kind %q (%s)", resp.StatusCode, er.Kind, er.Error)
	}
	return er.Kind
}

// chaosSchedule is the per-trial fault mix: WAL failures dominate, plus
// occasional severed response writes, worker panics, and compaction
// failures (absorbed by the compactor's retry, never client-visible).
func chaosSchedule(seed int64) fault.Schedule {
	return fault.Schedule{Seed: seed, Rules: []fault.Rule{
		{Site: "wal.fsync", Prob: 0.12},
		{Site: "wal.append", Prob: 0.08},
		{Site: "wal.torn", Prob: 0.05},
		{Site: "server.write", Prob: 0.03},
		{Site: "automaton.worker", Mode: fault.ModePanic, Prob: 0.01},
		{Site: "compact.swap", Prob: 0.3},
	}}
}

func TestChaosDifferential(t *testing.T) {
	seed := ldbc.Figure1()
	baselineGoroutines := runtime.NumGoroutine()

	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			steps := chaosWorkload(rng, 40)

			// Faulted pass, over a WAL-durable store with an aggressive
			// compaction threshold so checkpoints happen mid-workload.
			dir := filepath.Join(t.TempDir(), "data")
			store, err := graph.OpenDurable(dir, seed, graph.StoreOptions{CompactThreshold: 6})
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(Config{Store: store, ChunkSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s)
			restore := fault.Arm(chaosSchedule(int64(trial)))
			for _, st := range steps {
				runChaosStep(t, ts.URL, st, true)
			}
			restore()

			// Leak checks while the faulted server is still up: every
			// cursor was drained or deleted, every snapshot pin released.
			if n := s.cursors.len(); n != 0 {
				t.Errorf("cursor table holds %d entries after workload", n)
			}
			waitPinsReleased(t, store)
			ackedEpoch := store.Epoch()
			finalNodes, finalEdges := store.Graph().LiveNodes(), store.Graph().LiveEdges()
			ts.Close()
			s.Close()
			store.Close()

			// Crash-recovery: the durable dir reopens to exactly the
			// acknowledged state (epoch and live object counts).
			r, err := graph.OpenDurable(dir, seed, graph.StoreOptions{CompactThreshold: -1})
			if err != nil {
				t.Fatalf("reopen after faulted run: %v", err)
			}
			if r.Epoch() != ackedEpoch {
				t.Errorf("recovered epoch %d, acknowledged %d", r.Epoch(), ackedEpoch)
			}
			if n, e := r.Graph().LiveNodes(), r.Graph().LiveEdges(); n != finalNodes || e != finalEdges {
				t.Errorf("recovered %d nodes/%d edges, acknowledged %d/%d", n, e, finalNodes, finalEdges)
			}
			r.Close()

			// Oracle pass: a fault-free in-memory server receives exactly
			// the acknowledged ingests; every completed query must match
			// byte for byte, and every acked ingest must replay cleanly.
			oracle, err := New(Config{Graph: seed, ChunkSize: 8})
			if err != nil {
				t.Fatal(err)
			}
			ots := httptest.NewServer(oracle)
			for i, st := range steps {
				switch st.kind {
				case "ingest":
					if !st.acked {
						continue
					}
					resp, err := http.Post(ots.URL+"/ingest", "application/x-ndjson", strings.NewReader(st.batch))
					if err != nil {
						t.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("step %d: acked ingest fails on the oracle (%d) — faulted run acked an invalid batch", i, resp.StatusCode)
					}
				case "query":
					if st.errKind != "" {
						continue // typed failure; nothing to compare
					}
					oracleStep := &chaosStep{kind: "query", query: st.query}
					runChaosStep(t, ots.URL, oracleStep, false)
					if !oracleStep.complete || oracleStep.errKind != "" {
						t.Fatalf("step %d: oracle query failed (%q)", i, oracleStep.errKind)
					}
					if st.complete {
						if len(st.paths) != len(oracleStep.paths) {
							t.Fatalf("step %d: %d paths, oracle %d", i, len(st.paths), len(oracleStep.paths))
						}
						for j := range st.paths {
							if st.paths[j] != oracleStep.paths[j] {
								t.Fatalf("step %d path %d diverges:\n got  %s\n want %s", i, j, st.paths[j], oracleStep.paths[j])
							}
						}
					} else if len(st.paths) > len(oracleStep.paths) {
						// A severed cursor delivered a prefix; it must still
						// be a prefix of the oracle's result.
						t.Fatalf("step %d: severed cursor delivered %d paths, oracle total %d", i, len(st.paths), len(oracleStep.paths))
					}
				}
			}
			if oracle.store.Epoch() != ackedEpoch {
				t.Errorf("oracle epoch %d, faulted run acknowledged %d", oracle.store.Epoch(), ackedEpoch)
			}
			ots.Close()
			oracle.Close()
		})
	}

	waitGoroutineBaseline(t, baselineGoroutines)
}

// waitPinsReleased waits for every snapshot pin to drop (stream Close
// runs synchronously in handlers, but the capacity-rejection path closes
// asynchronously).
func waitPinsReleased(t *testing.T, store *graph.Store) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, pinned := store.LiveEpochs(); pinned == 0 {
			return
		}
		if time.Now().After(deadline) {
			_, pinned := store.LiveEpochs()
			t.Errorf("%d snapshot pins leaked after workload", pinned)
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func waitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// http idle connections and test plumbing make an exact match racy;
	// a small slack still catches per-trial leaks (4 trials × N steps).
	if n := runtime.NumGoroutine(); n > baseline+3 {
		t.Errorf("goroutines leaked across trials: %d live, baseline %d", n, baseline)
	}
}
