package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/ldbc"
)

func postBody(t *testing.T, url, contentType, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// drainCursor pages a freshly created cursor to completion and returns
// the concatenated path lines.
func drainCursor(t *testing.T, baseURL, id string) []pathJSON {
	t.Helper()
	var got []pathJSON
	for {
		resp, err := http.Get(fmt.Sprintf("%s/query/%s/next", baseURL, id))
		if err != nil {
			t.Fatal(err)
		}
		paths, trailer := readPage(t, resp)
		got = append(got, paths...)
		if trailer.Done {
			return got
		}
	}
}

// TestIngestEndpoint: NDJSON and CSV batches apply through the HTTP
// surface, the epoch advances, and subsequent queries see the new data.
func TestIngestEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1(), Engine: engine.Options{Limits: core.Limits{MaxLen: 4}}})

	// Before: the Knows subgraph from n4 is empty (n4 has no out-Knows).
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows+]->(?y) WHERE first.name = "Apu"`, NoCache: true})
	qr := decodeBody[queryResponse](t, resp)
	if before := drainCursor(t, ts.URL, qr.ID); len(before) != 0 {
		t.Fatalf("pre-ingest paths from Apu = %d, want 0", len(before))
	}

	ing := postBody(t, ts.URL+"/ingest", "application/x-ndjson",
		`{"op":"add_edge","key":"e-new","src":"n4","dst":"n1","label":"Knows"}`+"\n")
	if ing.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", ing.StatusCode)
	}
	ir := decodeBody[ingestResponse](t, ing)
	if ir.Epoch != 1 || ir.Ops != 1 || ir.Edges != 12 {
		t.Fatalf("ingest response = %+v", ir)
	}

	resp = postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows+]->(?y) WHERE first.name = "Apu"`, NoCache: true})
	qr = decodeBody[queryResponse](t, resp)
	after := drainCursor(t, ts.URL, qr.ID)
	if len(after) == 0 {
		t.Fatal("post-ingest query does not see the new edge")
	}
	for _, p := range after {
		if p.Nodes[0] != "n4" {
			t.Fatalf("path starts at %s, want n4", p.Nodes[0])
		}
	}

	// CSV form.
	csvBody := "op,key,src,dst,label\ndel_edge,e-new,,,\n"
	ing = postBody(t, ts.URL+"/ingest", "text/csv", csvBody)
	if ing.StatusCode != http.StatusOK {
		t.Fatalf("CSV ingest status = %d", ing.StatusCode)
	}
	if ir := decodeBody[ingestResponse](t, ing); ir.Epoch != 2 || ir.Edges != 11 {
		t.Fatalf("CSV ingest response = %+v", ir)
	}
}

// TestIngestErrors: parse failures are 400, validation failures are 422
// kind "validation" (the typed-sentinel contract), and failed batches
// apply nothing.
func TestIngestErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{Graph: ldbc.Figure1()})

	cases := []struct {
		name, body string
		status     int
		kind       string
	}{
		{"malformed json", `{"op":`, http.StatusBadRequest, "bad_request"},
		{"empty batch", "\n\n", http.StatusBadRequest, "bad_request"},
		{"unknown op", `{"op":"upsert","key":"x"}`, http.StatusBadRequest, "bad_request"},
		{"duplicate key", `{"op":"add_node","key":"n1","label":"Person"}`, http.StatusUnprocessableEntity, "validation"},
		{"unknown endpoint", `{"op":"add_edge","key":"zz","src":"n1","dst":"nope","label":"Knows"}`, http.StatusUnprocessableEntity, "validation"},
		{"unknown delete", `{"op":"del_node","key":"nope"}`, http.StatusUnprocessableEntity, "validation"},
		{"atomic", "{\"op\":\"add_node\",\"key\":\"ghost\",\"label\":\"Person\"}\n{\"op\":\"del_node\",\"key\":\"nope\"}", http.StatusUnprocessableEntity, "validation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postBody(t, ts.URL+"/ingest", "application/x-ndjson", tc.body)
			er := decodeBody[errorResponse](t, resp)
			if resp.StatusCode != tc.status || er.Kind != tc.kind {
				t.Fatalf("status/kind = %d/%q (%s), want %d/%q", resp.StatusCode, er.Kind, er.Error, tc.status, tc.kind)
			}
		})
	}
	if s.store.Epoch() != 0 {
		t.Fatalf("failed ingests advanced the epoch to %d", s.store.Epoch())
	}
	if _, ok := s.store.Graph().NodeByKey("ghost"); ok {
		t.Fatal("prefix of a failed batch leaked into the store")
	}
}

// TestIngestFootprintInvalidation: the result cache invalidates by label
// footprint — a delta touching Likes evicts Likes-reading entries and
// leaves Knows-only entries servable.
func TestIngestFootprintInvalidation(t *testing.T) {
	s, ts := newTestServer(t, Config{Graph: ldbc.Figure1(), Engine: engine.Options{Limits: core.Limits{MaxLen: 4}}})

	knowsQ := `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`
	likesQ := `MATCH TRAIL p = (?x)-[:Likes]->(?y)`

	// Populate both cache entries (cursor must complete for admission).
	for _, q := range []string{knowsQ, likesQ} {
		resp := postJSON(t, ts.URL+"/query", queryRequest{Query: q})
		qr := decodeBody[queryResponse](t, resp)
		drainCursor(t, ts.URL, qr.ID)
	}
	// Both hit now.
	for _, q := range []string{knowsQ, likesQ} {
		resp := postJSON(t, ts.URL+"/query", queryRequest{Query: q})
		qr := decodeBody[queryResponse](t, resp)
		if !qr.Cached {
			t.Fatalf("%s not cached after completion", q)
		}
		drainCursor(t, ts.URL, qr.ID)
	}

	// A Likes-only delta: n2 likes message n7.
	ing := postBody(t, ts.URL+"/ingest", "application/x-ndjson",
		`{"op":"add_edge","key":"likes-new","src":"n2","dst":"n7","label":"Likes"}`+"\n")
	if ing.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", ing.StatusCode)
	}

	// Knows entry survives (its footprint does not read Likes)...
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: knowsQ})
	qr := decodeBody[queryResponse](t, resp)
	if !qr.Cached {
		t.Fatal("Knows entry evicted by a Likes-only delta")
	}
	drainCursor(t, ts.URL, qr.ID)

	// ...and the Likes entry recomputes against the new epoch.
	resp = postJSON(t, ts.URL+"/query", queryRequest{Query: likesQ})
	qr = decodeBody[queryResponse](t, resp)
	if qr.Cached {
		t.Fatal("stale Likes entry served after a Likes delta")
	}
	likesPaths := drainCursor(t, ts.URL, qr.ID)
	found := false
	for _, p := range likesPaths {
		if len(p.Edges) == 1 && p.Edges[0] == "likes-new" {
			found = true
		}
	}
	if !found {
		t.Fatal("recomputed Likes result misses the ingested edge")
	}

	// Deleting a node (touches node labels + cascaded edge labels)
	// invalidates the Knows entry too.
	ing = postBody(t, ts.URL+"/ingest", "application/x-ndjson",
		`{"op":"del_node","key":"n2"}`+"\n")
	if ing.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", ing.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/query", queryRequest{Query: knowsQ})
	qr = decodeBody[queryResponse](t, resp)
	if qr.Cached {
		t.Fatal("stale Knows entry served after deleting a Knows endpoint")
	}
	for _, p := range drainCursor(t, ts.URL, qr.ID) {
		for _, n := range p.Nodes {
			if n == "n2" {
				t.Fatal("recomputed result contains the deleted node")
			}
		}
	}
	_ = s
}

// TestStatsStoreSection: /stats surfaces epoch, delta and compaction
// counters.
func TestStatsStoreSection(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1()})
	postBody(t, ts.URL+"/ingest", "application/x-ndjson",
		`{"op":"add_node","key":"extra","label":"Person"}`+"\n").Body.Close()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[statsResponse](t, resp)
	if st.Store.Epoch != 1 || st.Store.DeltaNodes != 1 || st.Store.Ingests != 1 || st.Store.IngestedOps != 1 {
		t.Fatalf("store stats = %+v", st.Store)
	}
	if st.Graph.Nodes != 8 {
		t.Fatalf("graph nodes = %d, want 8 (live count)", st.Graph.Nodes)
	}
}

// TestCursorSurvivesIngestAndCompaction: a cursor opened pre-ingest
// pages its pinned epoch's bytes even after the store mutates and
// compacts under it.
func TestCursorSurvivesIngestAndCompaction(t *testing.T) {
	s, ts := newTestServer(t, Config{Graph: ldbc.Figure1(), Engine: engine.Options{Limits: core.Limits{MaxLen: 4}}})

	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`, ChunkSize: 2, NoCache: true})
	qr := decodeBody[queryResponse](t, resp)

	// Read one page, then mutate the Knows subgraph and compact.
	first, err := http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, qr.ID))
	if err != nil {
		t.Fatal(err)
	}
	paths, trailer := readPage(t, first)
	if trailer.Done {
		t.Fatalf("result exhausted on first page (total %d)", trailer.Total)
	}
	ing := postBody(t, ts.URL+"/ingest", "application/x-ndjson",
		strings.Join([]string{
			`{"op":"del_edge","key":"e2"}`,
			`{"op":"add_edge","key":"e2x","src":"n2","dst":"n1","label":"Knows"}`,
		}, "\n"))
	if ing.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", ing.StatusCode)
	}
	if err := s.store.Compact(); err != nil {
		t.Fatal(err)
	}

	got := append([]pathJSON(nil), paths...)
	got = append(got, drainCursor(t, ts.URL, qr.ID)...)
	// Every path must be a pre-ingest Knows path: e2x never appears, e2
	// still does (the cursor's epoch predates the delete).
	sawE2 := false
	for _, p := range got {
		for _, e := range p.Edges {
			if e == "e2x" {
				t.Fatal("cursor leaked a post-ingest edge")
			}
			if e == "e2" {
				sawE2 = true
			}
		}
	}
	if !sawE2 {
		t.Fatal("cursor lost the deleted edge its epoch still contains")
	}
	if len(got) != trailer.Total {
		t.Fatalf("paged %d paths, trailer total %d", len(got), trailer.Total)
	}
}
