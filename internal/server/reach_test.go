package server

import (
	"net/http"
	"strings"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/opt"
)

const knowsWalk = `MATCH WALK p = (?x)-[:Knows+]->(?y)`

// reachReference computes the expected rendered response for a query and
// mode through the library path (engine.Reach + key resolution), so the
// HTTP tests don't hardcode Figure 1's transitive closure.
func reachReference(t *testing.T, query string, mode opt.ReachMode, lim core.Limits) reachResponse {
	t.Helper()
	g := ldbc.Figure1()
	eng := engine.New(g, engine.Options{Limits: lim})
	res, err := eng.Reach(gql.MustCompile(query), mode)
	if err != nil {
		t.Fatal(err)
	}
	return renderReach(res)
}

func sameReach(a, b reachResponse) bool {
	if a.Mode != b.Mode || a.Kernel != b.Kernel || a.Exists != b.Exists || a.Count != b.Count || len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i].Src != b.Pairs[i].Src || a.Pairs[i].Dst != b.Pairs[i].Dst {
			return false
		}
		al, bl := a.Pairs[i].Len, b.Pairs[i].Len
		if (al == nil) != (bl == nil) || (al != nil && *al != *bl) {
			return false
		}
	}
	return true
}

// TestReachEndpoint exercises POST /reach across every mode against the
// library-path reference: the kernel modes report kernel=true with
// identical data, count-paths falls back to enumeration, and the scalar
// modes carry no pairs.
func TestReachEndpoint(t *testing.T) {
	lim := core.Limits{MaxLen: 4}
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1(), Engine: engine.Options{Limits: lim}})

	for _, tc := range []struct {
		mode       opt.ReachMode
		wantKernel bool
	}{
		{opt.ReachExists, true},
		{opt.ReachPairs, true},
		{opt.ReachCountPairs, true},
		{opt.ReachShortestLengths, true},
		{opt.ReachCountPaths, false},
	} {
		want := reachReference(t, knowsWalk, tc.mode, lim)
		resp := postJSON(t, ts.URL+"/reach", reachRequest{Query: knowsWalk, Mode: tc.mode.String()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %s: status %d", tc.mode, resp.StatusCode)
		}
		got := decodeBody[reachResponse](t, resp)
		if got.Kernel != tc.wantKernel {
			t.Errorf("mode %s: kernel = %v, want %v", tc.mode, got.Kernel, tc.wantKernel)
		}
		if got.Cached {
			t.Errorf("mode %s: first request reported cached", tc.mode)
		}
		if !sameReach(got, want) {
			t.Errorf("mode %s: response %+v, want %+v", tc.mode, got, want)
		}
		scalar := tc.mode == opt.ReachExists || tc.mode == opt.ReachCountPairs || tc.mode == opt.ReachCountPaths
		if scalar && got.Pairs != nil {
			t.Errorf("mode %s: scalar mode carried %d pairs", tc.mode, len(got.Pairs))
		}
		if tc.mode == opt.ReachShortestLengths {
			for _, p := range got.Pairs {
				if p.Len == nil {
					t.Fatalf("shortest-lengths pair %s→%s missing len", p.Src, p.Dst)
				}
			}
		}
	}

	// The kernel erases path multiplicity; count-paths must not. Figure 1's
	// Knows subgraph has a cycle, so under MaxLen 4 paths outnumber pairs.
	pairs := decodeBody[reachResponse](t, postJSON(t, ts.URL+"/reach", reachRequest{Query: knowsWalk, Mode: "count-pairs"}))
	paths := decodeBody[reachResponse](t, postJSON(t, ts.URL+"/reach", reachRequest{Query: knowsWalk, Mode: "count-paths"}))
	if paths.Count <= pairs.Count {
		t.Errorf("count-paths %d not greater than count-pairs %d", paths.Count, pairs.Count)
	}
}

// TestReachBadRequests covers the 400 surface: missing query, unknown
// mode, bad GQL.
func TestReachBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1()})
	for name, req := range map[string]reachRequest{
		"missing query": {Mode: "pairs"},
		"unknown mode":  {Query: knowsWalk, Mode: "endpoints"},
		"missing mode":  {Query: knowsWalk},
		"bad gql":       {Query: "MATCH nope", Mode: "pairs"},
	} {
		resp := postJSON(t, ts.URL+"/reach", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		if e := decodeBody[errorResponse](t, resp); e.Kind != "bad_request" {
			t.Errorf("%s: kind %q, want bad_request", name, e.Kind)
		}
	}
}

// TestReachCache checks the reach cache end to end: hit on re-POST,
// no_cache bypass, footprint invalidation by a Knows ingest, and that the
// reach cache never aliases the path-set result cache even for the same
// query text.
func TestReachCache(t *testing.T) {
	lim := core.Limits{MaxLen: 4}
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1(), Engine: engine.Options{Limits: lim}})

	post := func(req reachRequest) reachResponse {
		t.Helper()
		resp := postJSON(t, ts.URL+"/reach", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reach status %d", resp.StatusCode)
		}
		return decodeBody[reachResponse](t, resp)
	}

	first := post(reachRequest{Query: knowsWalk, Mode: "pairs"})
	if first.Cached || !first.Kernel {
		t.Fatalf("first = cached %v kernel %v, want fresh kernel", first.Cached, first.Kernel)
	}
	second := post(reachRequest{Query: knowsWalk, Mode: "pairs"})
	if !second.Cached {
		t.Fatal("re-POST not served from reach cache")
	}
	second.Cached = false
	if !sameReach(second, first) {
		t.Fatalf("cached response %+v differs from fresh %+v", second, first)
	}
	if r := post(reachRequest{Query: knowsWalk, Mode: "pairs", NoCache: true}); r.Cached {
		t.Fatal("no_cache request served from cache")
	}

	// Different mode, same query: distinct cache key, not a hit.
	if r := post(reachRequest{Query: knowsWalk, Mode: "exists"}); r.Cached {
		t.Fatal("exists hit the pairs entry")
	}

	// A full /query on the same text must not collide with reach entries in
	// either direction: the path cursor streams real paths, and a
	// subsequent reach hit still returns the path-free answer.
	qr := decodeBody[queryResponse](t, postJSON(t, ts.URL+"/query", queryRequest{Query: knowsWalk}))
	next, err := http.Get(ts.URL + "/query/" + qr.ID + "/next")
	if err != nil {
		t.Fatal(err)
	}
	pathLines, _ := readPage(t, next)
	if len(pathLines) == 0 {
		t.Fatal("query cursor returned no paths")
	}
	if r := post(reachRequest{Query: knowsWalk, Mode: "pairs"}); !r.Cached || !sameReach(reachResponse{Mode: r.Mode, Kernel: r.Kernel, Exists: r.Exists, Count: r.Count, Pairs: r.Pairs}, first) {
		t.Fatal("reach entry lost or corrupted by /query on the same text")
	}

	// Ingest touching Knows invalidates by footprint: the next POST
	// recomputes and reflects the new edge (n3→n4 becomes reachable via the
	// new n3→n1 hop only if it changes pairs; at minimum the hit flag drops).
	resp := postJSON(t, ts.URL+"/reach", reachRequest{Query: knowsWalk, Mode: "pairs"}) // warm again post-/query
	resp.Body.Close()
	ing, err := http.Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader(`{"op":"add_edge","key":"zz1","src":"n4","dst":"n1","label":"Knows"}`))
	if err != nil {
		t.Fatal(err)
	}
	if ing.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", ing.StatusCode)
	}
	ing.Body.Close()
	after := post(reachRequest{Query: knowsWalk, Mode: "pairs"})
	if after.Cached {
		t.Fatal("reach cache served a stale entry across a Knows ingest")
	}
	if after.Count <= first.Count {
		t.Fatalf("closing the Knows cycle did not grow pairs: %d -> %d", first.Count, after.Count)
	}

	// Stats surface: reach cache counters and engine route counters.
	st := decodeBody[statsResponse](t, mustGet(t, ts.URL+"/stats"))
	if st.ReachCache.Hits == 0 || st.ReachCache.Misses == 0 || st.ReachCache.Entries == 0 {
		t.Errorf("reach_cache stats = %+v, want non-zero hits, misses and entries", st.ReachCache)
	}
	if st.Engine.ReachKernelRuns == 0 {
		t.Error("engine stats report no reach kernel runs")
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestReachInvalidateEndpoint: POST /cache/invalidate drops reach entries
// too.
func TestReachInvalidateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1()})
	resp := postJSON(t, ts.URL+"/reach", reachRequest{Query: knowsWalk, Mode: "pairs"})
	resp.Body.Close()
	if r := decodeBody[reachResponse](t, postJSON(t, ts.URL+"/reach", reachRequest{Query: knowsWalk, Mode: "pairs"})); !r.Cached {
		t.Fatal("warm-up entry not cached")
	}
	inv := postJSON(t, ts.URL+"/cache/invalidate", struct{}{})
	if inv.StatusCode != http.StatusOK {
		t.Fatalf("invalidate status %d", inv.StatusCode)
	}
	inv.Body.Close()
	if r := decodeBody[reachResponse](t, postJSON(t, ts.URL+"/reach", reachRequest{Query: knowsWalk, Mode: "pairs"})); r.Cached {
		t.Fatal("entry survived explicit invalidation")
	}
}
