package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
)

// newTestServer starts an httptest server over the given graph/config.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// readPage decodes one NDJSON cursor page into its path lines and
// trailer.
func readPage(t *testing.T, resp *http.Response) ([]pathJSON, pageTrailer) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		t.Fatalf("page status %d: %s", resp.StatusCode, body.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("page Content-Type = %q, want application/x-ndjson", ct)
	}
	var paths []pathJSON
	var trailer pageTrailer
	sawTrailer := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if sawTrailer {
			t.Fatalf("line after trailer: %s", line)
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if _, isPath := probe["nodes"]; isPath {
			var p pathJSON
			if err := json.Unmarshal(line, &p); err != nil {
				t.Fatal(err)
			}
			paths = append(paths, p)
			continue
		}
		if err := json.Unmarshal(line, &trailer); err != nil {
			t.Fatal(err)
		}
		sawTrailer = true
	}
	if !sawTrailer {
		t.Fatal("page without trailer line")
	}
	return paths, trailer
}

// slowGraph makes Walk queries run long enough to cancel mid-flight.
func slowGraph() *graph.Graph {
	return ldbc.MustGenerate(ldbc.Config{
		Persons: 300, Messages: 300, KnowsPerPerson: 4, LikesPerPerson: 3,
		CycleFraction: 0.5, Seed: 7,
	})
}

const slowQuery = `MATCH WALK p = (?x)-[(:Knows|:Likes)+]->(?y)`

// slowLimits keeps the budget generous so only cancellation stops it.
var slowLimits = core.Limits{MaxLen: 40, MaxPaths: 1 << 30, MaxWork: 1 << 40}

// TestCursorLifecycle drives a cursor through a full result set and
// checks the pages reassemble the exact engine result, then exercises
// the result cache on a re-POST and its explicit invalidation.
func TestCursorLifecycle(t *testing.T) {
	g := ldbc.Figure1()
	_, ts := newTestServer(t, Config{Graph: g, Engine: engine.Options{Limits: core.Limits{MaxLen: 4}}})

	// Reference result through the library path.
	eng := engine.New(g, engine.Options{Limits: core.Limits{MaxLen: 4}})
	want, err := eng.Run(gql.MustCompile(`MATCH TRAIL p = (?x)-[:Knows+]->(?y)`))
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`, ChunkSize: 3})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /query status = %d", resp.StatusCode)
	}
	qr := decodeBody[queryResponse](t, resp)
	if qr.ID == "" || qr.Cached {
		t.Fatalf("POST /query = %+v, want fresh id, not cached", qr)
	}

	var got []pathJSON
	pages := 0
	for {
		resp, err := http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, qr.ID))
		if err != nil {
			t.Fatal(err)
		}
		paths, trailer := readPage(t, resp)
		got = append(got, paths...)
		pages++
		if len(paths) > 3 {
			t.Fatalf("page of %d paths, want <= chunk 3", len(paths))
		}
		if trailer.Done {
			if trailer.Total != want.Len() || trailer.Delivered != int64(want.Len()) {
				t.Fatalf("trailer = %+v, want total=delivered=%d", trailer, want.Len())
			}
			break
		}
		if pages > want.Len()+2 {
			t.Fatal("cursor never reported done")
		}
	}
	if len(got) != want.Len() {
		t.Fatalf("streamed %d paths, want %d", len(got), want.Len())
	}
	// Page order is the engine's deterministic result order.
	for i, p := range want.Paths() {
		if gotKey := strings.Join(got[i].Nodes, ","); gotKey == "" {
			t.Fatalf("path %d: empty nodes", i)
		} else if g.Node(p.First()).Key != got[i].Nodes[0] {
			t.Fatalf("path %d starts at %s, want %s", i, got[i].Nodes[0], g.Node(p.First()).Key)
		}
	}

	// Exhausted cursor is gone.
	resp2, err := http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, qr.ID))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after exhaustion status = %d, want 404", resp2.StatusCode)
	}
	resp2.Body.Close()

	// Same query again: result-cache hit, total known up front.
	resp3 := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`})
	qr3 := decodeBody[queryResponse](t, resp3)
	if !qr3.Cached || qr3.Total == nil || *qr3.Total != want.Len() {
		t.Fatalf("re-POST = %+v, want cached with total %d", qr3, want.Len())
	}

	// Explicit invalidation empties the LRU.
	resp4 := postJSON(t, ts.URL+"/cache/invalidate", struct{}{})
	inv := decodeBody[map[string]int](t, resp4)
	if inv["invalidated"] == 0 {
		t.Fatalf("invalidate = %v, want >= 1 entries dropped", inv)
	}
	resp5 := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`})
	if qr5 := decodeBody[queryResponse](t, resp5); qr5.Cached {
		t.Fatalf("post-invalidation POST = %+v, want uncached", qr5)
	}
}

// TestCancellationPrompt: DELETE of a running query stops its evaluation
// goroutines within 100ms.
func TestCancellationPrompt(t *testing.T) {
	s, ts := newTestServer(t, Config{Graph: slowGraph(), Engine: engine.Options{Limits: slowLimits}})
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: slowQuery})
	qr := decodeBody[queryResponse](t, resp)
	cur, ok := s.cursors.get(qr.ID)
	if !ok {
		t.Fatal("cursor not registered")
	}
	time.Sleep(30 * time.Millisecond) // let the evaluation get going

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/query/%s", ts.URL, qr.ID), nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", delResp.StatusCode)
	}
	cancelled := time.Now()
	select {
	case <-cur.stream.Done():
		if since := time.Since(cancelled); since > 100*time.Millisecond {
			t.Errorf("evaluation stopped %v after DELETE, want < 100ms", since)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation still running 5s after DELETE")
	}
	if _, err := cur.stream.Result(); err == nil {
		t.Error("cancelled evaluation returned no error")
	}
}

// TestQueryDeadline: a per-request timeout_ms surfaces as HTTP 504 on
// the first page.
func TestQueryDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: slowGraph(), Engine: engine.Options{Limits: slowLimits}})
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: slowQuery, TimeoutMS: 30})
	qr := decodeBody[queryResponse](t, resp)
	next, err := http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, qr.ID))
	if err != nil {
		t.Fatal(err)
	}
	er := decodeBody[errorResponse](t, next)
	if next.StatusCode != http.StatusGatewayTimeout || er.Kind != "deadline_exceeded" {
		t.Fatalf("next after deadline = %d %+v, want 504 deadline_exceeded", next.StatusCode, er)
	}
}

// TestBudgetExceededStatus: budget exhaustion maps to 422, distinct from
// cancellation statuses.
func TestBudgetExceededStatus(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1()})
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH WALK p = (?x)-[:Knows+]->(?y)`, MaxPaths: 2})
	qr := decodeBody[queryResponse](t, resp)
	next, err := http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, qr.ID))
	if err != nil {
		t.Fatal(err)
	}
	er := decodeBody[errorResponse](t, next)
	if next.StatusCode != http.StatusUnprocessableEntity || er.Kind != "budget_exceeded" {
		t.Fatalf("next after budget = %d %+v, want 422 budget_exceeded", next.StatusCode, er)
	}
}

// TestAdmissionControl: beyond MaxInFlight concurrent evaluations POST
// returns 429; a cache hit slips past admission (it evaluates nothing).
func TestAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Graph:       slowGraph(),
		Engine:      engine.Options{Limits: slowLimits},
		MaxInFlight: 1,
	})
	first := postJSON(t, ts.URL+"/query", queryRequest{Query: slowQuery})
	if first.StatusCode != http.StatusCreated {
		t.Fatalf("first POST status = %d", first.StatusCode)
	}
	qr := decodeBody[queryResponse](t, first)

	second := postJSON(t, ts.URL+"/query", queryRequest{Query: slowQuery + ` `, NoCache: true})
	er := decodeBody[errorResponse](t, second)
	if second.StatusCode != http.StatusTooManyRequests || er.Kind != "over_capacity" {
		t.Fatalf("second POST = %d %+v, want 429 over_capacity", second.StatusCode, er)
	}

	// Free the slot; admission recovers.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/query/%s", ts.URL, qr.ID), nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		third := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows]->(?y)`})
		code := third.StatusCode
		third.Body.Close()
		if code == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never recovered after DELETE (last status %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBadRequests: parse errors and unknown cursors are typed client
// errors.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1()})
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH NONSENSE (`})
	if er := decodeBody[errorResponse](t, resp); resp.StatusCode != http.StatusBadRequest || er.Kind != "bad_request" {
		t.Fatalf("bad query = %d %+v", resp.StatusCode, er)
	}
	resp2 := postJSON(t, ts.URL+"/query", map[string]any{"quarry": "typo"})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d, want 400", resp2.StatusCode)
	}
	resp2.Body.Close()
	resp3, err := http.Get(ts.URL + "/query/nope/next")
	if err != nil {
		t.Fatal(err)
	}
	if er := decodeBody[errorResponse](t, resp3); resp3.StatusCode != http.StatusNotFound || er.Kind != "not_found" {
		t.Fatalf("unknown cursor = %d %+v", resp3.StatusCode, er)
	}
}

// TestStatsAndExplain: the observability endpoints surface engine and
// server counters and the planned operator table.
func TestStatsAndExplain(t *testing.T) {
	g := ldbc.Figure1()
	_, ts := newTestServer(t, Config{Graph: g, Engine: engine.Options{Limits: core.Limits{MaxLen: 4}}})

	// Evaluate something so counters move.
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`})
	qr := decodeBody[queryResponse](t, resp)
	next, err := http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, qr.ID))
	if err != nil {
		t.Fatal(err)
	}
	readPage(t, next)

	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody[statsResponse](t, st)
	if stats.Graph.Nodes != g.NumNodes() || stats.Server.Started == 0 || stats.Server.Pages == 0 {
		t.Fatalf("stats = %+v, want graph nodes %d and nonzero started/pages", stats, g.NumNodes())
	}
	if stats.Engine.Recursions == 0 || stats.Server.Paths == 0 {
		t.Fatalf("stats = %+v, want nonzero recursions and delivered paths", stats)
	}

	ex := postJSON(t, ts.URL+"/explain", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`})
	exr := decodeBody[explainResponse](t, ex)
	if !strings.Contains(exr.Text, "operators (estimated vs actual)") || exr.Plan == "" {
		t.Fatalf("explain = %+v, want operator table and plan", exr)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}
	hz.Body.Close()
}

// TestDrain: Close aborts running evaluations with the ErrDraining cause
// (HTTP 503 kind "draining" on the next page read).
func TestDrain(t *testing.T) {
	s, err := New(Config{Graph: slowGraph(), Engine: engine.Options{Limits: slowLimits}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: slowQuery})
	qr := decodeBody[queryResponse](t, resp)
	cur, ok := s.cursors.get(qr.ID)
	if !ok {
		t.Fatal("cursor not registered")
	}
	time.Sleep(20 * time.Millisecond)
	closed := time.Now()
	s.Close()
	select {
	case <-cur.stream.Done():
		if since := time.Since(closed); since > 100*time.Millisecond {
			t.Errorf("evaluation stopped %v after Close, want < 100ms", since)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation still running 5s after Close")
	}
	if _, err := cur.stream.Result(); err == nil {
		t.Error("drained evaluation returned no error")
	}
}

// TestPerQueryLimits: request-level limits select a pooled engine whose
// evaluation honors them.
func TestPerQueryLimits(t *testing.T) {
	g := ldbc.Figure1()
	_, ts := newTestServer(t, Config{Graph: g})
	// MaxLen 1 keeps only single-edge trails.
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`, MaxLen: 1})
	qr := decodeBody[queryResponse](t, resp)
	next, err := http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, qr.ID))
	if err != nil {
		t.Fatal(err)
	}
	paths, trailer := readPage(t, next)
	if !trailer.Done {
		t.Fatal("single page expected")
	}
	for _, p := range paths {
		if p.Len != 1 {
			t.Fatalf("path of length %d under max_len 1", p.Len)
		}
	}
	knows := len(g.EdgesWithLabel(ldbc.LabelKnows))
	if len(paths) != knows {
		t.Fatalf("got %d paths, want the %d :Knows edges", len(paths), knows)
	}
}
