package server

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/obs"
)

const obsQuery = `MATCH TRAIL p = (?x)-[:Knows+]->(?y)`

// drainCursor pages a cursor to exhaustion, returning every path line
// and the final trailer.
func drainTraced(t *testing.T, base, id string) ([]pathJSON, pageTrailer) {
	t.Helper()
	var all []pathJSON
	for page := 0; ; page++ {
		if page > 100 {
			t.Fatal("cursor never exhausted")
		}
		resp, err := http.Get(fmt.Sprintf("%s/query/%s/next", base, id))
		if err != nil {
			t.Fatal(err)
		}
		paths, trailer := readPage(t, resp)
		all = append(all, paths...)
		if trailer.Done {
			return all, trailer
		}
	}
}

// expositionLine matches one sample of the Prometheus text format:
// name{labels} value.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]`)

// TestMetricsEndpoint exercises the service, scrapes GET /metrics and
// checks the exposition is well-formed and carries the expected families
// across all four layers (server, engine, store, WAL).
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1(), Engine: engine.Options{Limits: core.Limits{MaxLen: 4}}})

	qr := decodeBody[queryResponse](t, postJSON(t, ts.URL+"/query", queryRequest{Query: obsQuery}))
	drainTraced(t, ts.URL, qr.ID)
	postJSON(t, ts.URL+"/reach", reachRequest{Query: obsQuery, Mode: "pairs"}).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text exposition", ct)
	}

	samples := map[string]string{} // "name{labels}" -> value
	sc := bufio.NewScanner(resp.Body)
	var body strings.Builder
	for sc.Scan() {
		line := sc.Text()
		body.WriteString(line)
		body.WriteByte('\n')
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		key := line[:strings.LastIndexByte(line, ' ')]
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		samples[key] = line[strings.LastIndexByte(line, ' ')+1:]
	}
	text := body.String()

	for _, want := range []string{
		// server layer
		`pathalgebra_queries_started_total`,
		`pathalgebra_queries_completed_total`,
		`pathalgebra_paths_delivered_total`,
		`pathalgebra_pages_served_total`,
		`pathalgebra_cursors_opened_total`,
		`pathalgebra_http_inflight`,
		`pathalgebra_http_requests_total{endpoint="query"}`,
		`pathalgebra_http_requests_total{endpoint="next"}`,
		`pathalgebra_http_request_seconds_count{endpoint="query"}`,
		`pathalgebra_http_request_seconds_bucket{endpoint="query",le="+Inf"}`,
		// engine layer
		`pathalgebra_engine_paths_produced_total`,
		`pathalgebra_engine_plan_cache_hits_total`,
		`pathalgebra_engine_reach_kernel_runs_total`,
		`pathalgebra_engine_budget_exhaustions_total`,
		// store layer
		`pathalgebra_store_epoch`,
		`pathalgebra_store_delta_size`,
		`pathalgebra_store_compactions_total`,
		`pathalgebra_graph_nodes`,
		// WAL layer (histograms expose _count even when empty)
		`pathalgebra_wal_append_seconds_count`,
		`pathalgebra_wal_fsync_seconds_count`,
		// runtime
		`pathalgebra_goroutines`,
		`pathalgebra_heap_alloc_bytes`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("exposition missing series %s", want)
		}
	}
	// HELP/TYPE lines precede each family exactly once.
	for _, fam := range []string{"pathalgebra_queries_started_total", "pathalgebra_http_request_seconds"} {
		if got := strings.Count(text, "# HELP "+fam+" "); got != 1 {
			t.Errorf("HELP %s appears %d times, want 1", fam, got)
		}
		if got := strings.Count(text, "# TYPE "+fam+" "); got != 1 {
			t.Errorf("TYPE %s appears %d times, want 1", fam, got)
		}
	}
	if v := samples["pathalgebra_queries_started_total"]; v != "1" {
		t.Errorf("queries_started_total = %s, want 1", v)
	}
	if v := samples[`pathalgebra_http_requests_total{endpoint="query"}`]; v != "1" {
		t.Errorf("http_requests_total{query} = %s, want 1", v)
	}
}

// spanNames collects the names of a span forest, depth-first.
func spanNames(spans []*obs.SpanJSON) []string {
	var out []string
	for _, sp := range spans {
		out = append(out, sp.Name)
		out = append(out, spanNames(sp.Children)...)
	}
	return out
}

// checkSpanBounds asserts every child span lies within its parent's
// [start, start+dur] window (at microsecond rounding tolerance).
func checkSpanBounds(t *testing.T, sp *obs.SpanJSON) {
	t.Helper()
	if sp.DurUS < 0 {
		t.Errorf("span %s has negative duration %d", sp.Name, sp.DurUS)
	}
	for _, c := range sp.Children {
		if c.StartUS+1 < sp.StartUS || c.StartUS+c.DurUS > sp.StartUS+sp.DurUS+1 {
			t.Errorf("child %s [%d,+%d] escapes parent %s [%d,+%d]",
				c.Name, c.StartUS, c.DurUS, sp.Name, sp.StartUS, sp.DurUS)
		}
		checkSpanBounds(t, c)
	}
}

// TestQueryTrace asks for a trace on POST /query and checks the final
// page's trailer carries a consistent span tree covering every phase.
func TestQueryTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1(), Engine: engine.Options{Limits: core.Limits{MaxLen: 4}}})

	qr := decodeBody[queryResponse](t, postJSON(t, ts.URL+"/query", queryRequest{Query: obsQuery, Trace: true, ChunkSize: 3}))
	paths, trailer := drainTraced(t, ts.URL, qr.ID)
	if len(paths) == 0 {
		t.Fatal("no result paths")
	}
	if len(trailer.Trace) == 0 {
		t.Fatal("final trailer has no trace")
	}
	root := trailer.Trace[0]
	if root.Name != "query" {
		t.Fatalf("root span %q, want query", root.Name)
	}
	names := spanNames(trailer.Trace)
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"query", "parse", "plan", "cache_probe", "eval", "search", "deliver"} {
		if !seen[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
	checkSpanBounds(t, root)

	// Non-final pages must not carry the trace; only Done pages do.
	qr2 := decodeBody[queryResponse](t, postJSON(t, ts.URL+"/query", queryRequest{Query: obsQuery, Trace: true, ChunkSize: 3, NoCache: true}))
	resp, err := http.Get(fmt.Sprintf("%s/query/%s/next", ts.URL, qr2.ID))
	if err != nil {
		t.Fatal(err)
	}
	_, tr1 := readPage(t, resp)
	if !tr1.Done && tr1.Trace != nil {
		t.Error("non-final page carries a trace")
	}
	drainTraced(t, ts.URL, qr2.ID)

	// An untraced query must not carry one either.
	qr3 := decodeBody[queryResponse](t, postJSON(t, ts.URL+"/query", queryRequest{Query: obsQuery, NoCache: true}))
	_, tr3 := drainTraced(t, ts.URL, qr3.ID)
	if tr3.Trace != nil {
		t.Error("untraced query trailer carries a trace")
	}
}

// TestTraceDifferential checks tracing is observation-only: the traced
// run's path lines are identical to the untraced run's, at sequential
// and parallel evaluation alike.
func TestTraceDifferential(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 60, Messages: 60, KnowsPerPerson: 3, LikesPerPerson: 2,
		CycleFraction: 0.3, Seed: 11,
	})
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("parallelism%d", par), func(t *testing.T) {
			_, ts := newTestServer(t, Config{Graph: g, Engine: engine.Options{
				Limits:      core.Limits{MaxLen: 5, MaxPaths: 1 << 20, MaxWork: 1 << 30},
				Parallelism: par,
			}})
			run := func(trace bool) []pathJSON {
				qr := decodeBody[queryResponse](t, postJSON(t, ts.URL+"/query",
					queryRequest{Query: obsQuery, Trace: trace, NoCache: true, ChunkSize: 50000}))
				paths, _ := drainTraced(t, ts.URL, qr.ID)
				return paths
			}
			plain, traced := run(false), run(true)
			if len(plain) != len(traced) {
				t.Fatalf("traced run: %d paths, untraced %d", len(traced), len(plain))
			}
			for i := range plain {
				if fmt.Sprint(plain[i]) != fmt.Sprint(traced[i]) {
					t.Fatalf("path %d diverges:\n untraced %v\n traced   %v", i, plain[i], traced[i])
				}
			}
		})
	}
}

// syncWriter serializes writes from the completion watcher goroutine
// against the test's reads.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestSlowQueryLog arms a threshold every query exceeds and checks the
// structured log line and counter fire.
func TestSlowQueryLog(t *testing.T) {
	buf := &syncWriter{}
	prev := log.Writer()
	log.SetOutput(io.MultiWriter(prev, buf))
	defer log.SetOutput(prev)

	_, ts := newTestServer(t, Config{
		Graph:     ldbc.Figure1(),
		Engine:    engine.Options{Limits: core.Limits{MaxLen: 4}},
		SlowQuery: time.Nanosecond,
	})
	qr := decodeBody[queryResponse](t, postJSON(t, ts.URL+"/query", queryRequest{Query: obsQuery}))
	drainTraced(t, ts.URL, qr.ID)

	// The slow-query log fires from the completion watcher; poll /stats.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := decodeBody[statsResponse](t, mustGet(t, ts.URL+"/stats"))
		if st.Server.SlowQueries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow_queries counter never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query log line in %q", out)
	}
	for _, want := range []string{"query=", "plan=", "trace: ", "limits="} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query log missing %q: %q", want, out)
		}
	}
}

// TestReachTrace checks ?trace=1 on POST /reach returns a span tree on
// both the evaluated and the cached path, and that cached entries do not
// leak the original request's trace.
func TestReachTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: ldbc.Figure1(), Engine: engine.Options{Limits: core.Limits{MaxLen: 4}}})

	first := decodeBody[reachResponse](t, postJSON(t, ts.URL+"/reach?trace=1", reachRequest{Query: obsQuery, Mode: "pairs"}))
	if first.Cached {
		t.Fatal("first reach unexpectedly cached")
	}
	if len(first.Trace) == 0 || first.Trace[0].Name != "reach" {
		t.Fatalf("first reach trace = %+v, want rooted at \"reach\"", first.Trace)
	}
	names := spanNames(first.Trace)
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"parse", "plan", "cache_probe", "eval"} {
		if !seen[want] {
			t.Errorf("reach trace missing span %q (have %v)", want, names)
		}
	}
	checkSpanBounds(t, first.Trace[0])

	// Cache hit: still traced (the probe), and untraced requests get none.
	second := decodeBody[reachResponse](t, postJSON(t, ts.URL+"/reach", reachRequest{Query: obsQuery, Mode: "pairs", Trace: true}))
	if !second.Cached {
		t.Fatal("second reach missed the cache")
	}
	if len(second.Trace) == 0 {
		t.Error("cached reach with trace=true carries no trace")
	}
	third := decodeBody[reachResponse](t, postJSON(t, ts.URL+"/reach", reachRequest{Query: obsQuery, Mode: "pairs"}))
	if third.Trace != nil {
		t.Error("untraced reach response carries a trace")
	}
}
