package server

import (
	"encoding/json"
	"io"

	"pathalgebra/internal/fault"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/obs"
	"pathalgebra/internal/path"
)

// The cursor pages stream as NDJSON (one JSON document per line,
// Content-Type application/x-ndjson): zero or more path lines followed by
// exactly one trailer line. Path lines carry a "nodes" field; the trailer
// carries "done", so a line-oriented client can tell them apart without
// lookahead, and a page is self-delimiting even over chunked transfer.

// pathJSON is one result path rendered with the graph's external keys —
// the alternating (n1, e1, ..., ek, nk+1) sequence split into its node
// and edge tracks.
type pathJSON struct {
	Nodes []string `json:"nodes"`
	Edges []string `json:"edges"`
	Len   int      `json:"len"`
}

// pageTrailer terminates every cursor page. Done reports whether the
// cursor is exhausted (and therefore removed server-side); Returned is
// the number of path lines on this page; Delivered and Total are the
// cursor's cumulative progress. Trace is the query's span tree, present
// only on the final page of a traced query.
type pageTrailer struct {
	Done      bool            `json:"done"`
	Returned  int             `json:"returned"`
	Delivered int64           `json:"delivered"`
	Total     int             `json:"total"`
	Trace     []*obs.SpanJSON `json:"trace,omitempty"`
}

func encodePath(g *graph.Graph, p path.Path) pathJSON {
	nodes := make([]string, len(p.Nodes()))
	for i, n := range p.Nodes() {
		nodes[i] = g.Node(n).Key
	}
	edges := make([]string, len(p.Edges()))
	for i, e := range p.Edges() {
		edges[i] = g.Edge(e).Key
	}
	return pathJSON{Nodes: nodes, Edges: edges, Len: p.Len()}
}

// writeNDJSON encodes one value as a single NDJSON line. The fault site
// stands in for a client connection dying mid-page: the page loop must
// abort cleanly (cursor intact, no partial-line corruption on retry).
func writeNDJSON(w io.Writer, v any) error {
	if err := fault.Hit("server.write"); err != nil {
		return err
	}
	enc := json.NewEncoder(w) // Encode appends the newline
	return enc.Encode(v)
}
