// Package report regenerates the tables and figures of the paper from
// this implementation. Each artifact renders to an io.Writer so the
// papertables command stays a thin shell and golden tests can pin the
// output.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/opt"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/rpq"
)

// Artifact is one regenerable table or figure.
type Artifact struct {
	ID    string
	Title string
	Print func(w io.Writer, g *graph.Graph) error
}

// Artifacts lists every regenerable artifact in paper order.
func Artifacts() []Artifact {
	return []Artifact{
		{"fig1", "Figure 1: the LDBC SNB snippet graph", Figure1},
		{"fig2", "Figure 2: plan of the introduction's recursive query", Figure2},
		{"1", "Table 1: selectors and their algebra pipelines", Table1},
		{"2", "Table 2: restrictors (recursive operator semantics)", Table2},
		{"3", "Table 3: Knows+ paths under the five semantics", Table3},
		{"4", "Table 4: group-by keys and solution space organization", Table4},
		{"5", "Table 5: the γST solution space of the §5 example", Table5},
		{"6", "Table 6: order-by semantics (rank assignments)", Table6},
		{"7", "Table 7: GQL selector → path algebra translation", Table7},
		{"fig5", "Figure 5: the §5 pipeline result", Figure5},
		{"fig6", "Figure 6: predicate pushdown rewrite", Figure6},
		{"intro", "Introduction: simple paths from Moe to Apu", Intro},
		{"plan", "§7.2: parser plan output", Plan72},
	}
}

// Print renders one artifact (or all of them for id "all") to w.
func Print(w io.Writer, id string) error {
	g := ldbc.Figure1()
	found := false
	for _, a := range Artifacts() {
		if id != "all" && a.ID != id {
			continue
		}
		found = true
		fmt.Fprintf(w, "=== %s ===\n", a.Title)
		if err := a.Print(w, g); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if !found {
		return fmt.Errorf("report: unknown artifact %q", id)
	}
	return nil
}

// Figure1 lists the nodes and edges of the running-example graph.
func Figure1(w io.Writer, g *graph.Graph) error {
	fmt.Fprintf(w, "%d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	for _, n := range g.Nodes() {
		fmt.Fprintf(w, "  %-3s :%-8s %s\n", n.Key, n.Label, formatProps(n.Props))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "  %-3s %s -[%s]-> %s\n", e.Key, g.Node(e.Src).Key, e.Label, g.Node(e.Dst).Key)
	}
	return nil
}

func formatProps(props map[string]graph.Value) string {
	if len(props) == 0 {
		return ""
	}
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, props[k]))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Figure2 renders the evaluation tree of the introduction's query.
func Figure2(w io.Writer, _ *graph.Graph) error {
	plan := gql.MustCompile(
		`MATCH SIMPLE p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:"Apu"})`)
	_, err := io.WriteString(w, core.FormatTree(plan))
	return err
}

// Table1 shows each selector's compiled algebra pipeline.
func Table1(w io.Writer, _ *graph.Graph) error {
	pattern := rpq.Compile(rpq.MustParse(":Knows+"), core.Walk)
	fmt.Fprintf(w, "%-20s %s\n", "Selector", "Algebra pipeline")
	for _, sel := range gql.AllSelectors(2) {
		plan, err := gql.CompileSelector(sel, pattern)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-20s %s\n", sel, plan)
	}
	return nil
}

// Table2 shows each restrictor's semantics and result size on Figure 1.
func Table2(w io.Writer, g *graph.Graph) error {
	base := knowsEdges(g)
	fmt.Fprintf(w, "%-10s %-60s %s\n", "Restrictor", "Semantics", "|ϕ(Knows)| on Fig. 1")
	desc := map[core.Semantics]string{
		core.Walk:     "all paths (infinite on cycles; shown bounded to length 4)",
		core.Trail:    "no repeated edges",
		core.Acyclic:  "no repeated nodes",
		core.Simple:   "no repeated nodes except first = last",
		core.Shortest: "minimal length per endpoint pair",
	}
	for _, sem := range core.AllSemantics() {
		lim := core.Limits{}
		note := ""
		if sem == core.Walk {
			lim.MaxLen = 4
			note = " (len ≤ 4)"
		}
		s, err := core.EvalRecurse(sem, base, lim)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %-60s %d%s\n", strings.ToUpper(sem.String()), desc[sem], s.Len(), note)
	}
	return nil
}

func knowsEdges(g *graph.Graph) *pathset.Set {
	out := pathset.New(4)
	for _, id := range g.EdgesWithLabel(ldbc.LabelKnows) {
		out.Add(path.FromEdge(g, id))
	}
	return out
}

// table3Rows lists the exact paths of the paper's Table 3.
func table3Rows() [][]string {
	return [][]string{
		{"n1", "e1", "n2"},
		{"n1", "e1", "n2", "e2", "n3", "e3", "n2"},
		{"n1", "e1", "n2", "e2", "n3"},
		{"n1", "e1", "n2", "e2", "n3", "e3", "n2", "e2", "n3"},
		{"n1", "e1", "n2", "e4", "n4"},
		{"n1", "e1", "n2", "e2", "n3", "e3", "n2", "e4", "n4"},
		{"n2", "e2", "n3", "e3", "n2"},
		{"n2", "e2", "n3", "e3", "n2", "e2", "n3", "e3", "n2"},
		{"n2", "e2", "n3"},
		{"n2", "e2", "n3", "e3", "n2", "e2", "n3"},
		{"n2", "e4", "n4"},
		{"n2", "e2", "n3", "e3", "n2", "e4", "n4"},
		{"n3", "e3", "n2", "e4", "n4"},
		{"n3", "e3", "n2", "e2", "n3", "e3", "n2", "e4", "n4"},
	}
}

// Table3 marks each Table 3 path's membership per semantics.
func Table3(w io.Writer, g *graph.Graph) error {
	base := knowsEdges(g)
	results := make(map[string]*pathset.Set, 5)
	walk, err := core.EvalRecurse(core.Walk, base, core.Limits{MaxLen: 4})
	if err != nil {
		return err
	}
	results["W"] = walk
	for col, sem := range map[string]core.Semantics{
		"T": core.Trail, "A": core.Acyclic, "S": core.Simple, "Sh": core.Shortest,
	} {
		s, err := core.EvalRecurse(sem, base, core.Limits{})
		if err != nil {
			return err
		}
		results[col] = s
	}
	fmt.Fprintf(w, "%-4s %-45s %-2s %-2s %-2s %-2s %-2s\n", "ID", "Path", "W", "T", "A", "S", "Sh")
	for i, keys := range table3Rows() {
		p, err := path.FromKeys(g, keys...)
		if err != nil {
			return err
		}
		mark := func(col string) string {
			if results[col].Contains(p) {
				return "✓"
			}
			return ""
		}
		fmt.Fprintf(w, "p%-3d %-45s %-2s %-2s %-2s %-2s %-2s\n",
			i+1, p.Format(g), mark("W"), mark("T"), mark("A"), mark("S"), mark("Sh"))
	}
	return nil
}

// Table4 shows the space organization induced by every group-by key.
func Table4(w io.Writer, g *graph.Graph) error {
	trails, err := core.EvalRecurse(core.Trail, knowsEdges(g), core.Limits{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %-12s %-10s %s\n", "γψ", "#partitions", "#groups", "organization")
	org := map[core.GroupKey]string{
		core.GroupNone:                      "1 partition, 1 group",
		core.GroupSource:                    "N partitions, 1 group per partition",
		core.GroupTarget:                    "N partitions, 1 group per partition",
		core.GroupLength:                    "1 partition, M groups per partition",
		core.GroupST:                        "N partitions, 1 group per partition",
		core.GroupSource | core.GroupLength: "N partitions, M groups per partition",
		core.GroupTarget | core.GroupLength: "N partitions, M groups per partition",
		core.GroupSTL:                       "N partitions, M groups per partition",
	}
	for _, key := range core.AllGroupKeys() {
		ss := core.EvalGroupBy(key, trails)
		fmt.Fprintf(w, "γ%-5s %-12d %-10d %s\n", key, len(ss.Partitions), ss.NumGroups(), org[key])
	}
	return nil
}

// Table5 renders the worked γST solution space.
func Table5(w io.Writer, g *graph.Graph) error {
	trails, err := core.EvalRecurse(core.Trail, knowsEdges(g), core.Limits{})
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, core.EvalGroupBy(core.GroupST, trails).Format(g))
	return err
}

// Table6 tabulates the τθ rank assignments.
func Table6(w io.Writer, _ *graph.Graph) error {
	fmt.Fprintf(w, "%-5s %-22s %-22s %s\n", "τθ", "partition rank", "group rank", "path rank")
	for _, key := range core.AllOrderKeys() {
		p, grp, a := "carried over", "carried over", "carried over"
		if key&core.OrderPartition != 0 {
			p = "MinL(P)"
		}
		if key&core.OrderGroup != 0 {
			grp = "MinL(G)"
		}
		if key&core.OrderPath != 0 {
			a = "Len(p)"
		}
		fmt.Fprintf(w, "τ%-4s %-22s %-22s %s\n", key, p, grp, a)
	}
	return nil
}

// Table7 prints the selector compilation scheme with RE abbreviating the
// pattern subtree, exactly as in the paper.
func Table7(w io.Writer, _ *graph.Graph) error {
	fmt.Fprintf(w, "%-25s %s\n", "GQL expression", "Path algebra expression")
	pattern := rpq.Compile(rpq.MustParse(":Knows+"), core.Walk)
	for _, sel := range gql.AllSelectors(2) {
		plan, err := gql.CompileSelector(sel, pattern)
		if err != nil {
			return err
		}
		text := strings.ReplaceAll(plan.String(),
			`ϕWalk(σ[label(edge(1)) = "Knows"](Edges(G)))`, "ϕWalk(RE)")
		fmt.Fprintf(w, "%-25s %s\n", sel.String()+" WALK ppe", text)
	}
	return nil
}

// Figure5 evaluates the §5 pipeline and prints its result paths.
func Figure5(w io.Writer, g *graph.Graph) error {
	plan := gql.MustCompile(`MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`)
	eng := engine.New(g, engine.Options{})
	res, err := eng.EvalPaths(plan)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "π(*,*,1)(τA(γST(ϕTrail(σ[Knows](Edges(G)))))) =")
	fmt.Fprintln(w, res.Format(g))
	return nil
}

// Figure6 shows the predicate pushdown rewrite before and after.
func Figure6(w io.Writer, _ *graph.Graph) error {
	plan := gql.MustCompile(`MATCH TRAIL p = (x {name:"Moe"})-[:Knows/:Knows]->(?y)`)
	fmt.Fprintln(w, "before:")
	io.WriteString(w, core.FormatTree(plan))
	res := opt.Optimize(plan)
	fmt.Fprintf(w, "after %s:\n", strings.Join(res.Applied, ", "))
	_, err := io.WriteString(w, core.FormatTree(res.Plan))
	return err
}

// Intro evaluates the introduction's query.
func Intro(w io.Writer, g *graph.Graph) error {
	plan := gql.MustCompile(
		`MATCH SIMPLE p = (?x {name:"Moe"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:"Apu"})`)
	eng := engine.New(g, engine.Options{})
	res, err := eng.EvalPaths(plan)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "simple paths from Moe (n1) to Apu (n4):")
	fmt.Fprintln(w, res.Format(g))
	return nil
}

// Plan72 prints the §7.2 parser output for its sample query. The paper's
// sample output shows the plan body as just the recursive join over the
// Knows selection; we use the + variant so the printed shape matches
// line for line (the * variant adds the ∪ Nodes(G) branch of Figure 4).
func Plan72(w io.Writer, _ *graph.Graph) error {
	query := `MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)+]->(?y) GROUP BY TARGET ORDER BY PATH`
	fmt.Fprintln(w, "query:", query)
	_, err := io.WriteString(w, gql.PrintPlan(gql.MustCompile(query)))
	return err
}
