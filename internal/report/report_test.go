package report

import (
	"strings"
	"testing"

	"pathalgebra/internal/ldbc"
)

func render(t *testing.T, id string) string {
	t.Helper()
	var sb strings.Builder
	if err := Print(&sb, id); err != nil {
		t.Fatalf("Print(%s): %v", id, err)
	}
	return sb.String()
}

func TestPrintAll(t *testing.T) {
	out := render(t, "all")
	for _, a := range Artifacts() {
		if !strings.Contains(out, a.Title) {
			t.Errorf("combined output missing %q", a.Title)
		}
	}
}

func TestPrintUnknown(t *testing.T) {
	var sb strings.Builder
	if err := Print(&sb, "nope"); err == nil {
		t.Error("unknown artifact should error")
	}
}

// TestTable3Golden pins the Table 3 reproduction row by row against the
// paper's flags.
func TestTable3Golden(t *testing.T) {
	out := render(t, "3")
	want := []string{
		"p1   (n1, e1, n2)                                  ✓  ✓  ✓  ✓  ✓",
		"p2   (n1, e1, n2, e2, n3, e3, n2)                  ✓  ✓",
		"p3   (n1, e1, n2, e2, n3)                          ✓  ✓  ✓  ✓  ✓",
		"p4   (n1, e1, n2, e2, n3, e3, n2, e2, n3)          ✓",
		"p5   (n1, e1, n2, e4, n4)                          ✓  ✓  ✓  ✓  ✓",
		"p6   (n1, e1, n2, e2, n3, e3, n2, e4, n4)          ✓  ✓",
		"p7   (n2, e2, n3, e3, n2)                          ✓  ✓     ✓  ✓",
		"p8   (n2, e2, n3, e3, n2, e2, n3, e3, n2)          ✓",
		"p9   (n2, e2, n3)                                  ✓  ✓  ✓  ✓  ✓",
		"p10  (n2, e2, n3, e3, n2, e2, n3)                  ✓",
		"p11  (n2, e4, n4)                                  ✓  ✓  ✓  ✓  ✓",
		"p12  (n2, e2, n3, e3, n2, e4, n4)                  ✓  ✓",
		"p13  (n3, e3, n2, e4, n4)                          ✓  ✓  ✓  ✓  ✓",
		"p14  (n3, e3, n2, e2, n3, e3, n2, e4, n4)          ✓",
	}
	for _, line := range want {
		if !strings.Contains(out, line) {
			t.Errorf("Table 3 output missing row %q\ngot:\n%s", line, out)
		}
	}
}

// TestTable7Golden pins the selector translations of Table 7.
func TestTable7Golden(t *testing.T) {
	out := render(t, "7")
	want := []string{
		"ALL WALK ppe              π(*,*,*)(γ∅(ϕWalk(RE)))",
		"ANY SHORTEST WALK ppe     π(*,*,1)(τA(γST(ϕWalk(RE))))",
		"ALL SHORTEST WALK ppe     π(*,1,*)(τG(γSTL(ϕWalk(RE))))",
		"ANY WALK ppe              π(*,*,1)(γST(ϕWalk(RE)))",
		"ANY 2 WALK ppe            π(*,*,2)(γST(ϕWalk(RE)))",
		"SHORTEST 2 WALK ppe       π(*,*,2)(τA(γST(ϕWalk(RE))))",
		"SHORTEST 2 GROUP WALK ppe π(*,2,*)(τG(γSTL(ϕWalk(RE))))",
	}
	for _, line := range want {
		if !strings.Contains(out, line) {
			t.Errorf("Table 7 output missing %q\ngot:\n%s", line, out)
		}
	}
}

func TestIntroGolden(t *testing.T) {
	out := render(t, "intro")
	for _, line := range []string{
		"(n1, e1, n2, e4, n4)",
		"(n1, e8, n6, e11, n3, e7, n7, e10, n4)",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("intro output missing %q", line)
		}
	}
}

func TestFigure5Golden(t *testing.T) {
	out := render(t, "fig5")
	// One shortest trail per Knows-closure endpoint pair (9 pairs).
	if got := strings.Count(out, "(n"); got != 9 {
		t.Errorf("Figure 5 result lists %d paths, want 9:\n%s", got, out)
	}
}

func TestPlan72Golden(t *testing.T) {
	out := render(t, "plan")
	want := `Projection (ALL PARTITIONS ALL GROUPS 1 PATHS)
OrderBy (Path)
Group (Target)
Restrictor (TRAIL)
-> Recursive Join (restrictor: TRAIL)
  -> Select: (label(edge(1)) = "Knows" , EDGES(G))`
	if !strings.Contains(out, want) {
		t.Errorf("§7.2 plan output mismatch:\n%s", out)
	}
}

func TestTable2Sizes(t *testing.T) {
	out := render(t, "2")
	for _, want := range []string{"TRAIL", "12", "ACYCLIC", "SIMPLE", "SHORTEST"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Golden(t *testing.T) {
	out := render(t, "4")
	for _, want := range []string{
		"γ∅", "γST", "γSTL", "1 partition, 1 group",
		"N partitions, M groups per partition",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable5Golden(t *testing.T) {
	out := render(t, "5")
	for _, want := range []string{"MinL(P)", "MinL(G)", "Len(p)", "(n1, e1, n2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6ShowsRewrite(t *testing.T) {
	out := render(t, "fig6")
	if !strings.Contains(out, "before:") || !strings.Contains(out, "pushdown-selection") {
		t.Errorf("Figure 6 output:\n%s", out)
	}
}

func TestFigure1Golden(t *testing.T) {
	out := render(t, "fig1")
	g := ldbc.Figure1()
	if !strings.Contains(out, "7 nodes, 11 edges") {
		t.Errorf("Figure 1 header wrong:\n%s", out)
	}
	for _, e := range g.Edges() {
		if !strings.Contains(out, e.Key) {
			t.Errorf("Figure 1 output missing edge %s", e.Key)
		}
	}
}
