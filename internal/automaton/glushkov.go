// Package automaton implements the classical automaton-based approach to
// regular path query evaluation that the paper discusses in §8.2 [28]: a
// Glushkov (position) NFA is built from the regular path expression, and
// paths are found by searching the product of the graph and the automaton.
// It serves as the independent baseline against which the algebraic
// engine is cross-checked and benchmarked.
package automaton

import (
	"fmt"
	"strings"

	"pathalgebra/internal/rpq"
)

// StateID identifies an NFA state. State 0 is always the start state; the
// remaining states correspond 1:1 to label positions in the expression
// (Glushkov construction, no epsilon transitions).
type StateID int

// position describes the symbol at a Glushkov position.
type position struct {
	label string
	any   bool // matches every label (rpq.AnyLabel)
}

// NFA is a Glushkov automaton for a regular path expression.
type NFA struct {
	positions []position // 1-based: positions[i-1] describes state i
	accepting []bool     // indexed by StateID
	// next[s] lists the positions reachable from state s; a transition to
	// position q reads q's symbol.
	next [][]StateID
}

// NumStates returns the number of states (positions + the start state).
func (n *NFA) NumStates() int { return len(n.positions) + 1 }

// Accepting reports whether s is an accepting state.
func (n *NFA) Accepting(s StateID) bool { return n.accepting[s] }

// AcceptsEmpty reports whether the automaton accepts the empty word, i.e.
// whether length-zero paths match the expression.
func (n *NFA) AcceptsEmpty() bool { return n.accepting[0] }

// Visit calls fn for every state reachable from s by reading label,
// without allocating. It is the automaton's sole transition API and the
// definitional reference for CompiledNFA (see symbols.go), which the
// evaluator uses instead: Visit compares label strings, the compiled form
// dispatches on interned graph symbols.
func (n *NFA) Visit(s StateID, label string, fn func(StateID)) {
	for _, q := range n.next[s] {
		p := n.positions[q-1]
		if p.any || p.label == label {
			fn(q)
		}
	}
}

// VisitAll calls fn once per transition out of s, exposing the target
// state and the symbol it reads: any is true for the wildcard position
// (rpq.AnyLabel), otherwise the transition reads label. It is the
// introspection hook the reachability kernel (internal/reach) uses to
// compile its per-state transition program; Visit remains the
// string-matching evaluation API.
func (n *NFA) VisitAll(s StateID, fn func(q StateID, label string, any bool)) {
	for _, q := range n.next[s] {
		p := n.positions[q-1]
		fn(q, p.label, p.any)
	}
}

// String renders the automaton for debugging.
func (n *NFA) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "NFA with %d states (start=0", n.NumStates())
	if n.accepting[0] {
		sb.WriteString(", accepting")
	}
	sb.WriteString(")\n")
	for s := 0; s < n.NumStates(); s++ {
		for _, q := range n.next[s] {
			p := n.positions[q-1]
			sym := p.label
			if p.any {
				sym = "<any>"
			}
			acc := ""
			if n.accepting[q] {
				acc = " (accepting)"
			}
			fmt.Fprintf(&sb, "  %d --%s--> %d%s\n", s, sym, q, acc)
		}
	}
	return sb.String()
}

// Build constructs the Glushkov automaton of e.
func Build(e rpq.Expr) *NFA {
	b := &glushkovBuilder{}
	info := b.analyze(e)
	n := &NFA{
		positions: b.positions,
		accepting: make([]bool, len(b.positions)+1),
		next:      make([][]StateID, len(b.positions)+1),
	}
	n.accepting[0] = info.nullable
	for _, p := range info.last {
		n.accepting[p] = true
	}
	n.next[0] = append(n.next[0], info.first...)
	for p, fs := range b.follow {
		n.next[StateID(p)] = append(n.next[StateID(p)], fs...)
	}
	return n
}

type exprInfo struct {
	nullable bool
	first    []StateID
	last     []StateID
}

type glushkovBuilder struct {
	positions []position
	follow    map[int][]StateID
}

func (b *glushkovBuilder) newPosition(p position) StateID {
	b.positions = append(b.positions, p)
	return StateID(len(b.positions))
}

func (b *glushkovBuilder) addFollow(p StateID, qs []StateID) {
	if b.follow == nil {
		b.follow = make(map[int][]StateID)
	}
	b.follow[int(p)] = appendUnique(b.follow[int(p)], qs)
}

func appendUnique(dst []StateID, src []StateID) []StateID {
	for _, s := range src {
		dup := false
		for _, d := range dst {
			if d == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	return dst
}

func (b *glushkovBuilder) analyze(e rpq.Expr) exprInfo {
	switch e := e.(type) {
	case rpq.Label:
		p := b.newPosition(position{label: e.Name})
		return exprInfo{first: []StateID{p}, last: []StateID{p}}
	case rpq.AnyLabel:
		p := b.newPosition(position{any: true})
		return exprInfo{first: []StateID{p}, last: []StateID{p}}
	case rpq.Concat:
		l := b.analyze(e.L)
		r := b.analyze(e.R)
		for _, p := range l.last {
			b.addFollow(p, r.first)
		}
		info := exprInfo{nullable: l.nullable && r.nullable}
		info.first = append(info.first, l.first...)
		if l.nullable {
			info.first = appendUnique(info.first, r.first)
		}
		info.last = append(info.last, r.last...)
		if r.nullable {
			info.last = appendUnique(info.last, l.last)
		}
		return info
	case rpq.Alt:
		l := b.analyze(e.L)
		r := b.analyze(e.R)
		return exprInfo{
			nullable: l.nullable || r.nullable,
			first:    appendUnique(append([]StateID(nil), l.first...), r.first),
			last:     appendUnique(append([]StateID(nil), l.last...), r.last),
		}
	case rpq.Star:
		in := b.analyze(e.In)
		for _, p := range in.last {
			b.addFollow(p, in.first)
		}
		return exprInfo{nullable: true, first: in.first, last: in.last}
	case rpq.Plus:
		in := b.analyze(e.In)
		for _, p := range in.last {
			b.addFollow(p, in.first)
		}
		return exprInfo{nullable: in.nullable, first: in.first, last: in.last}
	case rpq.Opt:
		in := b.analyze(e.In)
		return exprInfo{nullable: true, first: in.first, last: in.last}
	default:
		panic(fmt.Sprintf("automaton: unknown rpq expression %T", e))
	}
}
