package automaton

import (
	"fmt"

	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// visitedSet is the product search's mark set of (path, NFA state) pairs:
// one fingerprint-indexed pathset.Set per state, so the identity check —
// fingerprint bucket plus exact-Equal fallback on collision — lives in a
// single place and no key strings are materialized.
type visitedSet []*pathset.Set

func newVisitedSet(nfa *NFA, capacity int) visitedSet {
	v := make(visitedSet, nfa.NumStates())
	for s := range v {
		if s == 0 {
			v[s] = pathset.New(capacity)
		} else {
			v[s] = pathset.New(0)
		}
	}
	return v
}

// mark records (p, s) and reports whether the pair was new.
func (v visitedSet) mark(p path.Path, s StateID) bool { return v[s].Add(p) }

// Eval evaluates the regular path query described by the automaton over
// every pair of endpoints in g, returning the matching paths under the
// given semantics. It is the classical product-graph search: search states
// are (path-so-far, NFA state) pairs.
//
// Semantics note: the automaton applies Trail/Acyclic/Simple to the whole
// matched path, which coincides with the algebraic ϕSem(base) for patterns
// whose recursion spans the whole expression (L+, (L1/L2)*, unions of
// such); for concatenations of separately-restricted recursions the
// algebra is by design more permissive (§2.3 applies restrictors per
// query part). Cross-checking tests use patterns of the former shape.
func Eval(g *graph.Graph, nfa *NFA, sem core.Semantics, lim core.Limits) (*pathset.Set, error) {
	if sem == core.Shortest {
		return evalShortest(g, nfa, lim)
	}
	maxPaths := lim.MaxPaths
	if maxPaths <= 0 {
		maxPaths = core.DefaultMaxPaths
	}
	maxWork := lim.MaxWork
	if maxWork <= 0 {
		maxWork = core.DefaultMaxWork
	}
	work := 0
	result := pathset.New(g.NumNodes())

	type item struct {
		p     path.Path
		state StateID
	}
	frontier := make([]item, 0, g.NumNodes())
	// next is swapped with frontier after each BFS level, so item storage
	// is reused across levels instead of reallocated.
	next := make([]item, 0, g.NumNodes())
	visited := newVisitedSet(nfa, g.NumNodes())

	for i := 0; i < g.NumNodes(); i++ {
		p := path.FromNode(graph.NodeID(i))
		if visited.mark(p, 0) {
			frontier = append(frontier, item{p: p, state: 0})
		}
		if nfa.AcceptsEmpty() {
			result.Add(p)
		}
	}
	if result.Len() > maxPaths {
		return result, core.ErrBudgetExceeded
	}

	for len(frontier) > 0 {
		next = next[:0]
		for _, it := range frontier {
			if lim.MaxLen > 0 && it.p.Len() >= lim.MaxLen {
				continue
			}
			for _, eid := range g.Out(it.p.Last()) {
				label := g.EdgeLabel(eid)
				var budgetErr error
				nfa.Visit(it.state, label, func(q StateID) {
					if budgetErr != nil {
						return
					}
					np := it.p.Extend(g, eid)
					extend, admit := classify(sem, np, nfa.Accepting(q))
					if admit && result.Add(np) {
						work += np.Len() + 1
						if result.Len() > maxPaths || work > maxWork {
							budgetErr = core.ErrBudgetExceeded
							return
						}
					}
					if extend && visited.mark(np, q) {
						work += np.Len() + 1
						if work > maxWork {
							budgetErr = core.ErrBudgetExceeded
							return
						}
						next = append(next, item{p: np, state: q})
					}
				})
				if budgetErr != nil {
					return result, fmt.Errorf("automaton: %w", budgetErr)
				}
			}
		}
		frontier, next = next, frontier
	}
	return result, nil
}

// classify decides, for a freshly extended path, whether the search may
// keep extending it and whether it is an answer (given an accepting
// state). Pruning is sound because admissible prefixes characterize each
// semantics: prefixes of trails are trails, prefixes of acyclic paths are
// acyclic, and proper prefixes of simple paths are acyclic (the cycle may
// only close at the very end).
func classify(sem core.Semantics, p path.Path, accepting bool) (extend, admit bool) {
	switch sem {
	case core.Walk:
		return true, accepting
	case core.Trail:
		ok := p.IsTrail()
		return ok, ok && accepting
	case core.Acyclic:
		ok := p.IsAcyclic()
		return ok, ok && accepting
	case core.Simple:
		if p.IsAcyclic() {
			return true, accepting
		}
		// Not acyclic: admissible only if it just closed its cycle.
		return false, accepting && p.IsSimple()
	default:
		return false, false
	}
}

// evalShortest finds, for every endpoint pair (s, t), all minimal-length
// paths whose label word the automaton accepts. Per source it runs a BFS
// over the product (node, state) space to compute distances, then
// enumerates exactly the paths that stay shortest at every step.
func evalShortest(g *graph.Graph, nfa *NFA, lim core.Limits) (*pathset.Set, error) {
	maxPaths := lim.MaxPaths
	if maxPaths <= 0 {
		maxPaths = core.DefaultMaxPaths
	}
	result := pathset.New(g.NumNodes())
	// One scratch area serves every source: the per-source maps and stacks
	// are cleared, not reallocated, between the NumNodes searches.
	scratch := &shortestScratch{
		dist:   make(map[productState]int32, g.NumNodes()),
		minAcc: make(map[graph.NodeID]int32, g.NumNodes()),
	}
	for s := 0; s < g.NumNodes(); s++ {
		if err := shortestFrom(g, nfa, graph.NodeID(s), lim.MaxLen, maxPaths, result, scratch); err != nil {
			return result, err
		}
	}
	return result, nil
}

type productState struct {
	node  graph.NodeID
	state StateID
}

// shortestScratch holds the per-source working storage of shortestFrom so
// consecutive sources reuse it instead of reallocating.
type shortestScratch struct {
	dist           map[productState]int32
	minAcc         map[graph.NodeID]int32
	frontier, next []productState
	work           []shortestItem
}

type shortestItem struct {
	p     path.Path
	state StateID
}

func shortestFrom(g *graph.Graph, nfa *NFA, src graph.NodeID, maxLen, maxPaths int, result *pathset.Set, sc *shortestScratch) error {
	// Phase 1: BFS distances over the product space.
	clear(sc.dist)
	dist := sc.dist
	dist[productState{node: src, state: 0}] = 0
	frontier := append(sc.frontier[:0], productState{node: src, state: 0})
	next := sc.next[:0]
	depth := int32(0)
	for len(frontier) > 0 && (maxLen <= 0 || int(depth) < maxLen) {
		depth++
		next = next[:0]
		for _, ps := range frontier {
			for _, eid := range g.Out(ps.node) {
				label := g.EdgeLabel(eid)
				_, dst := g.Endpoints(eid)
				nfa.Visit(ps.state, label, func(q StateID) {
					nps := productState{node: dst, state: q}
					if _, seen := dist[nps]; !seen {
						dist[nps] = depth
						next = append(next, nps)
					}
				})
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next

	// minAcc is the per-target minimum over accepting states — the length
	// of the shortest matching path src→target.
	clear(sc.minAcc)
	minAcc := sc.minAcc
	for ps, d := range dist {
		if !nfa.Accepting(ps.state) {
			continue
		}
		if cur, ok := minAcc[ps.node]; !ok || d < cur {
			minAcc[ps.node] = d
		}
	}
	if len(minAcc) == 0 {
		return nil
	}

	// Phase 2: enumerate all paths that are shortest product walks at
	// every prefix; admit those reaching their target at its minimum.
	work := append(sc.work[:0], shortestItem{p: path.FromNode(src), state: 0})
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if nfa.Accepting(it.state) {
			if m, ok := minAcc[it.p.Last()]; ok && it.p.Len() == int(m) {
				result.Add(it.p)
				if result.Len() > maxPaths {
					sc.work = work
					return fmt.Errorf("automaton: %w", core.ErrBudgetExceeded)
				}
			}
		}
		for _, eid := range g.Out(it.p.Last()) {
			label := g.EdgeLabel(eid)
			_, dst := g.Endpoints(eid)
			nfa.Visit(it.state, label, func(q StateID) {
				nps := productState{node: dst, state: q}
				if d, ok := dist[nps]; ok && int(d) == it.p.Len()+1 {
					work = append(work, shortestItem{p: it.p.Extend(g, eid), state: q})
				}
			})
		}
	}
	sc.work = work
	return nil
}
