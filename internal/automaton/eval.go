package automaton

import (
	"fmt"
	"strconv"

	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// Eval evaluates the regular path query described by the automaton over
// every pair of endpoints in g, returning the matching paths under the
// given semantics. It is the classical product-graph search: search states
// are (path-so-far, NFA state) pairs.
//
// Semantics note: the automaton applies Trail/Acyclic/Simple to the whole
// matched path, which coincides with the algebraic ϕSem(base) for patterns
// whose recursion spans the whole expression (L+, (L1/L2)*, unions of
// such); for concatenations of separately-restricted recursions the
// algebra is by design more permissive (§2.3 applies restrictors per
// query part). Cross-checking tests use patterns of the former shape.
func Eval(g *graph.Graph, nfa *NFA, sem core.Semantics, lim core.Limits) (*pathset.Set, error) {
	if sem == core.Shortest {
		return evalShortest(g, nfa, lim)
	}
	maxPaths := lim.MaxPaths
	if maxPaths <= 0 {
		maxPaths = core.DefaultMaxPaths
	}
	maxWork := lim.MaxWork
	if maxWork <= 0 {
		maxWork = core.DefaultMaxWork
	}
	work := 0
	result := pathset.New(g.NumNodes())

	type item struct {
		p     path.Path
		state StateID
	}
	var frontier []item
	visited := make(map[string]struct{})
	mark := func(p path.Path, s StateID) bool {
		k := p.Key() + "#" + strconv.Itoa(int(s))
		if _, dup := visited[k]; dup {
			return false
		}
		visited[k] = struct{}{}
		return true
	}

	for i := 0; i < g.NumNodes(); i++ {
		p := path.FromNode(graph.NodeID(i))
		if mark(p, 0) {
			frontier = append(frontier, item{p: p, state: 0})
		}
		if nfa.AcceptsEmpty() {
			result.Add(p)
		}
	}
	if result.Len() > maxPaths {
		return result, core.ErrBudgetExceeded
	}

	for len(frontier) > 0 {
		var next []item
		for _, it := range frontier {
			if lim.MaxLen > 0 && it.p.Len() >= lim.MaxLen {
				continue
			}
			for _, eid := range g.Out(it.p.Last()) {
				label := g.EdgeLabel(eid)
				var budgetErr error
				nfa.Visit(it.state, label, func(q StateID) {
					if budgetErr != nil {
						return
					}
					np := it.p.Extend(g, eid)
					extend, admit := classify(sem, np, nfa.Accepting(q))
					if admit && result.Add(np) {
						work += np.Len() + 1
						if result.Len() > maxPaths || work > maxWork {
							budgetErr = core.ErrBudgetExceeded
							return
						}
					}
					if extend && mark(np, q) {
						work += np.Len() + 1
						if work > maxWork {
							budgetErr = core.ErrBudgetExceeded
							return
						}
						next = append(next, item{p: np, state: q})
					}
				})
				if budgetErr != nil {
					return result, fmt.Errorf("automaton: %w", budgetErr)
				}
			}
		}
		frontier = next
	}
	return result, nil
}

// classify decides, for a freshly extended path, whether the search may
// keep extending it and whether it is an answer (given an accepting
// state). Pruning is sound because admissible prefixes characterize each
// semantics: prefixes of trails are trails, prefixes of acyclic paths are
// acyclic, and proper prefixes of simple paths are acyclic (the cycle may
// only close at the very end).
func classify(sem core.Semantics, p path.Path, accepting bool) (extend, admit bool) {
	switch sem {
	case core.Walk:
		return true, accepting
	case core.Trail:
		ok := p.IsTrail()
		return ok, ok && accepting
	case core.Acyclic:
		ok := p.IsAcyclic()
		return ok, ok && accepting
	case core.Simple:
		if p.IsAcyclic() {
			return true, accepting
		}
		// Not acyclic: admissible only if it just closed its cycle.
		return false, accepting && p.IsSimple()
	default:
		return false, false
	}
}

// evalShortest finds, for every endpoint pair (s, t), all minimal-length
// paths whose label word the automaton accepts. Per source it runs a BFS
// over the product (node, state) space to compute distances, then
// enumerates exactly the paths that stay shortest at every step.
func evalShortest(g *graph.Graph, nfa *NFA, lim core.Limits) (*pathset.Set, error) {
	maxPaths := lim.MaxPaths
	if maxPaths <= 0 {
		maxPaths = core.DefaultMaxPaths
	}
	result := pathset.New(g.NumNodes())
	for s := 0; s < g.NumNodes(); s++ {
		if err := shortestFrom(g, nfa, graph.NodeID(s), lim.MaxLen, maxPaths, result); err != nil {
			return result, err
		}
	}
	return result, nil
}

type productState struct {
	node  graph.NodeID
	state StateID
}

func shortestFrom(g *graph.Graph, nfa *NFA, src graph.NodeID, maxLen, maxPaths int, result *pathset.Set) error {
	// Phase 1: BFS distances over the product space.
	dist := map[productState]int{{node: src, state: 0}: 0}
	frontier := []productState{{node: src, state: 0}}
	depth := 0
	for len(frontier) > 0 && (maxLen <= 0 || depth < maxLen) {
		depth++
		var next []productState
		for _, ps := range frontier {
			for _, eid := range g.Out(ps.node) {
				label := g.EdgeLabel(eid)
				_, dst := g.Endpoints(eid)
				nfa.Visit(ps.state, label, func(q StateID) {
					nps := productState{node: dst, state: q}
					if _, seen := dist[nps]; !seen {
						dist[nps] = depth
						next = append(next, nps)
					}
				})
			}
		}
		frontier = next
	}

	// minAcc is the per-target minimum over accepting states — the length
	// of the shortest matching path src→target.
	minAcc := make(map[graph.NodeID]int)
	for ps, d := range dist {
		if !nfa.Accepting(ps.state) {
			continue
		}
		if cur, ok := minAcc[ps.node]; !ok || d < cur {
			minAcc[ps.node] = d
		}
	}
	if len(minAcc) == 0 {
		return nil
	}

	// Phase 2: enumerate all paths that are shortest product walks at
	// every prefix; admit those reaching their target at its minimum.
	type item struct {
		p     path.Path
		state StateID
	}
	work := []item{{p: path.FromNode(src), state: 0}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if nfa.Accepting(it.state) {
			if m, ok := minAcc[it.p.Last()]; ok && it.p.Len() == m {
				result.Add(it.p)
				if result.Len() > maxPaths {
					return fmt.Errorf("automaton: %w", core.ErrBudgetExceeded)
				}
			}
		}
		for _, eid := range g.Out(it.p.Last()) {
			label := g.EdgeLabel(eid)
			_, dst := g.Endpoints(eid)
			nfa.Visit(it.state, label, func(q StateID) {
				nps := productState{node: dst, state: q}
				if d, ok := dist[nps]; ok && d == it.p.Len()+1 {
					work = append(work, item{p: it.p.Extend(g, eid), state: q})
				}
			})
		}
	}
	return nil
}
