package automaton

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pathalgebra/internal/core"
	"pathalgebra/internal/fault"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/obs"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// The product search is copy-free: search states hold path.Ref handles
// into a per-worker prefix-sharing arena (see internal/path/arena.go), so
// extending a path is an O(1) arena append, admissibility checks are
// allocation-free parent-chain walks, and a path's node/edge slices are
// materialized exactly once — when it is admitted into the result set.
// Transition dispatch is symbol-interned: the NFA is compiled against the
// graph's label symbol table (CompiledNFA) and the inner loop iterates
// only the adjacency runs whose symbol the current state can read.

// Eval evaluates the regular path query described by the automaton over
// every pair of endpoints in g, returning the matching paths under the
// given semantics. It is the classical product-graph search: search states
// are (path-so-far, NFA state) pairs. Eval runs single-threaded; it is
// exactly EvalParallel with one worker.
//
// Semantics note: the automaton applies Trail/Acyclic/Simple to the whole
// matched path, which coincides with the algebraic ϕSem(base) for patterns
// whose recursion spans the whole expression (L+, (L1/L2)*, unions of
// such); for concatenations of separately-restricted recursions the
// algebra is by design more permissive (§2.3 applies restrictors per
// query part). Cross-checking tests use patterns of the former shape.
func Eval(g *graph.Graph, nfa *NFA, sem core.Semantics, lim core.Limits) (*pathset.Set, error) {
	return EvalParallel(g, nfa, sem, lim, 1)
}

// EvalParallel is Eval sharded across worker goroutines by source node:
// every source runs its own product search with a private arena, frontier,
// scratch and visited set, and the per-source result shards are merged
// deterministically afterwards. Because every path belongs to exactly one
// source (its first node), the shard searches partition the sequential
// search exactly, and the merge reproduces the sequential discovery order
// — BFS depth major, then ascending source node — so the result is
// byte-identical to Eval for every worker count.
//
// Budgets are global, not per shard: all workers charge one shared atomic
// core.Budget, so MaxPaths and MaxWork hold across the whole evaluation.
// On a budget error the error is reported deterministically, but the
// partial result may differ between runs (workers bail out as soon as any
// shard trips the budget).
//
// workers <= 0 selects runtime.GOMAXPROCS(0); the count is capped by the
// number of source nodes.
func EvalParallel(g *graph.Graph, nfa *NFA, sem core.Semantics, lim core.Limits, workers int) (*pathset.Set, error) {
	return EvalWithOptions(g, nfa, sem, lim, EvalOptions{Workers: workers})
}

// EvalOptions parameterizes EvalWithOptions beyond the classic all-pairs
// forward search.
type EvalOptions struct {
	// Ctx, when cancellable, aborts the evaluation promptly: all workers
	// stop at their next budget charge (or frontier item) and the
	// evaluation returns the context's cause, errors.Is-able as
	// context.Canceled / context.DeadlineExceeded. nil means no
	// cancellation (context.Background()).
	Ctx context.Context
	// Workers is the worker goroutine count; <= 0 selects GOMAXPROCS.
	Workers int
	// Dir selects the search direction. Backward seeds per-seed searches
	// at path TARGETS and walks the graph's in-adjacency; the nfa passed
	// to EvalWithOptions must then be built from the REVERSED expression
	// (rpq.Reverse), and results materialize reversed — i.e. as ordinary
	// forward paths. The answer set is identical to a forward evaluation;
	// only discovery order (and therefore result-set order) differs.
	Dir core.Direction
	// Seeds restricts the search to paths whose seed endpoint (first node
	// forward, last node backward) is in the list; nil means every node.
	// Seeds must be ascending and duplicate-free — the per-seed shards
	// merge in list order, so an ascending list reproduces exactly the
	// relative order of the corresponding unseeded evaluation.
	Seeds []graph.NodeID
}

// seedAt resolves the i-th seed: the identity when no seed list is given.
//
//pathalgebra:hotpath
func seedAt(seeds []graph.NodeID, i int) graph.NodeID {
	if seeds == nil {
		return graph.NodeID(i)
	}
	return seeds[i]
}

// EvalWithOptions is the general product search: per-seed sharded like
// EvalParallel, optionally restricted to a seed set and optionally running
// backward over reversed edges (see EvalOptions).
func EvalWithOptions(g *graph.Graph, nfa *NFA, sem core.Semantics, lim core.Limits, o EvalOptions) (*pathset.Set, error) {
	count := g.NumNodes()
	if o.Seeds != nil {
		count = len(o.Seeds)
	}
	workers := normalizeWorkers(o.Workers, count)
	bud := core.NewBudget(lim)
	if o.Ctx != nil {
		stop := bud.Watch(o.Ctx)
		defer stop()
	}
	// Tracing rides the existing context plumbing: a nil span (the
	// production default) makes every annotation below a nil check.
	sp := obs.SpanFrom(o.Ctx).Start("search")
	defer func() {
		sp.SetInt("paths_charged", bud.Paths())
		sp.SetInt("work_charged", bud.Work())
		sp.End()
	}()
	sp.SetInt("sources", int64(count))
	sp.SetInt("workers", int64(workers))
	c := nfa.Compile(g)
	back := o.Dir == core.Backward
	if back {
		sp.SetInt("backward", 1)
	}
	if sem == core.Shortest {
		return evalShortest(g, c, lim, bud, workers, o.Seeds, count, back, sp)
	}
	return evalSearch(g, c, sem, lim, bud, workers, o.Seeds, count, back, sp)
}

func normalizeWorkers(workers, sources int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > sources {
		workers = sources
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runSharded distributes sources 0..n-1 over the given number of workers.
// Each worker gets one scratch value from newScratch and pulls sources off
// a shared atomic cursor (work stealing, so uneven per-source costs
// balance). run returning false stops the whole pool early — remaining
// sources are skipped, which only happens after a budget error.
//
// Panic isolation: a panic inside run stops the pool the same way and is
// returned as a typed error (errors.Is core.ErrInternal) instead of
// unwinding a worker goroutine and killing the process. The panicking
// shard's scratch is simply abandoned — scratch arenas are pool-private,
// so nothing shared is left poisoned and the other workers drain cleanly
// before runSharded returns.
// When tracing is on, each worker runs under its own "shard" child of
// sp (nil sp: zero cost); newScratch receives that span so per-worker
// scratch can annotate it as sources flow through.
func runSharded[S any](sp *obs.Span, n, workers int, newScratch func(wsp *obs.Span) S, run func(sc S, src int) bool) error {
	var cursor atomic.Int64
	var failed atomic.Bool
	var panicErr atomic.Pointer[error]
	// record files the first recovered panic as the pool's error and stops
	// the remaining workers; concurrent later panics lose the race and are
	// dropped (one cause is enough to fail the evaluation).
	record := func(r any) {
		if r == nil {
			return
		}
		err := core.Recovered(r)
		panicErr.CompareAndSwap(nil, &err)
		failed.Store(true)
	}
	work := func() {
		wsp := sp.Start("shard")
		defer wsp.End()
		sc := newScratch(wsp)
		for !failed.Load() {
			src := int(cursor.Add(1)) - 1
			if src >= n {
				return
			}
			// Injected worker faults surface as panics so the chaos tests
			// exercise the same recovery path as a real evaluator bug.
			if err := fault.Hit("automaton.worker"); err != nil {
				panic(err)
			}
			if !run(sc, src) {
				failed.Store(true)
				return
			}
		}
	}
	if workers <= 1 {
		func() {
			defer func() { record(recover()) }()
			work()
		}()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { record(recover()) }()
				work()
			}()
		}
		wg.Wait()
	}
	if p := panicErr.Load(); p != nil {
		return *p
	}
	return nil
}

// symbolScan is one (matching edges, target states) pair produced by
// scanRuns for the search inner loop.
type symbolScan struct {
	edges   []graph.EdgeID
	targets []StateID
}

// scanRuns fills dst (reused scratch) with the label-homogeneous adjacency
// runs of n readable from state s, paired with their target states, in
// ascending symbol order; back selects the in-adjacency instead of the
// out-adjacency. It picks the cheaper driver per call: iterate the node's
// runs when the state reads every symbol (any-label) or more symbols than
// the node has runs, else iterate the state's symbol set with a
// binary-search lookup per symbol. Both drivers enumerate the same
// intersection in the same order, so the choice never affects results.
//
//pathalgebra:hotpath
func scanRuns(dst []symbolScan, g *graph.Graph, c *CompiledNFA, n graph.NodeID, s StateID, back bool) []symbolScan {
	dst = dst[:0]
	var runs []graph.SymbolRun
	if back {
		runs = g.InRuns(n)
	} else {
		runs = g.OutRuns(n)
	}
	syms := c.StateSymbols(s)
	if c.AllSymbols(s) || len(syms) >= len(runs) {
		for _, run := range runs {
			if targets := c.Trans(s, run.Sym); len(targets) > 0 {
				dst = append(dst, symbolScan{edges: run.Edges, targets: targets})
			}
		}
		return dst
	}
	//lint:ignore budgetcharge pure adjacency helper: callers charge per extension drawn from the returned scans
	for _, sym := range syms {
		var edges []graph.EdgeID
		if back {
			edges = g.InWithSymbol(n, sym)
		} else {
			edges = g.OutWithSymbol(n, sym)
		}
		if len(edges) > 0 {
			dst = append(dst, symbolScan{edges: edges, targets: c.Trans(s, sym)})
		}
	}
	return dst
}

// stepNode returns the node a product-search step lands on after reading
// edge eid: the edge's head forward, its tail backward.
//
//pathalgebra:hotpath
func stepNode(g *graph.Graph, eid graph.EdgeID, back bool) graph.NodeID {
	src, dst := g.Endpoints(eid)
	if back {
		return src
	}
	return dst
}

// addResult admits the arena path at r into the result set with the
// materialization matching the search direction — backward chains hold
// paths last-node-first, so they materialize reversed, with canonical
// forward fingerprints.
func addResult(s *pathset.Set, a *path.Arena, r path.Ref, back bool) bool {
	if back {
		return s.AddArenaReversed(a, r)
	}
	return s.AddArena(a, r)
}

// searchItem is one product-search state: an arena path handle plus the
// NFA state reached by reading its label word.
type searchItem struct {
	ref   path.Ref
	state StateID
}

// evalScratch is one worker's reusable working storage: the path arena,
// frontier slices and the per-state visited RefSets survive across the
// sources the worker processes (the arena resets between sources, which
// keeps refs 32-bit and makes per-source cleanup a slice truncation).
// Paths record their start node, so (path, state) pairs from different
// source nodes can never collide and per-source visited sets partition
// the global mark set exactly.
type evalScratch struct {
	arena          *path.Arena
	frontier, next []searchItem
	runs           []symbolScan
	visited        []*path.RefSet // per NFA state
	span           *obs.Span      // this worker's shard span; nil when untraced
}

func newEvalScratch(states int, wsp *obs.Span) *evalScratch {
	a := path.NewArena(0)
	sc := &evalScratch{arena: a, visited: make([]*path.RefSet, states), span: wsp}
	for s := range sc.visited {
		sc.visited[s] = path.NewRefSet(a)
	}
	return sc
}

// shard is one source node's slice of the result: the admitted paths in
// per-source discovery order, plus the cumulative result count at the end
// of each BFS depth so the merge can interleave shards in the sequential
// (depth, source) order.
type shard struct {
	set    *pathset.Set
	levels []int
	err    error
}

func evalSearch(g *graph.Graph, c *CompiledNFA, sem core.Semantics, lim core.Limits, bud *core.Budget, workers int, seeds []graph.NodeID, count int, back bool, sp *obs.Span) (*pathset.Set, error) {
	shards := make([]*shard, count)
	perr := runSharded(sp, count, workers,
		func(wsp *obs.Span) *evalScratch { return newEvalScratch(c.nfa.NumStates(), wsp) },
		func(sc *evalScratch, i int) bool {
			sh := evalSource(g, c, sem, lim, seedAt(seeds, i), bud, sc, back)
			shards[i] = sh
			sc.span.AddInt("sources", 1)
			sc.span.AddInt("paths", int64(sh.set.Len()))
			sc.span.MaxInt("arena_bytes", int64(sc.arena.Bytes()))
			return sh.err == nil
		})
	if perr != nil {
		return nil, fmt.Errorf("automaton: %w", perr)
	}
	out, err := mergeShardsTraced(sp, shards)
	if err != nil {
		return out, fmt.Errorf("automaton: %w", err)
	}
	return out, nil
}

// mergeShardsTraced wraps the deterministic shard merge in its own
// span so trace trees show merge cost beside the shard searches.
func mergeShardsTraced(sp *obs.Span, shards []*shard) (*pathset.Set, error) {
	msp := sp.Start("merge")
	defer msp.End()
	out, err := mergeShards(shards)
	if out != nil {
		msp.SetInt("paths", int64(out.Len()))
	}
	return out, err
}

// evalSource runs the product search seeded at one source node. Budget
// accounting matches the sequential search exactly: every admitted result
// path charges ChargePath (1 path + Len+1 work — including the length-zero
// seed path when the automaton accepts the empty word), and every visited
// mark that extends the frontier charges ChargeWork.
func evalSource(g *graph.Graph, c *CompiledNFA, sem core.Semantics, lim core.Limits, src graph.NodeID, bud *core.Budget, sc *evalScratch, back bool) *shard {
	nfa := c.nfa
	// The zero Set defers its index allocation until the first Add, so
	// sources admitting no paths cost no map allocation.
	sh := &shard{set: new(pathset.Set)}
	// Tombstoned sources admit nothing — not even the zero-length path an
	// empty-word-accepting NFA would otherwise seed.
	if !g.NodeAlive(src) {
		return sh
	}
	a := sc.arena
	a.Reset()
	for _, v := range sc.visited {
		v.Reset()
	}
	seed := a.Leaf(src)
	sc.visited[0].Add(seed)
	frontier := append(sc.frontier[:0], searchItem{ref: seed, state: 0})
	next := sc.next[:0]
	finish := func(err error) *shard {
		sh.err = err
		sh.levels = append(sh.levels, sh.set.Len())
		sc.frontier, sc.next = frontier, next
		return sh
	}
	if nfa.AcceptsEmpty() {
		sh.set.AddArena(a, seed)
		if !bud.ChargePath(0) {
			return finish(chargeErr(bud))
		}
	}
	sh.levels = append(sh.levels, sh.set.Len())
	for len(frontier) > 0 {
		sc.span.MaxInt("max_frontier", int64(len(frontier)))
		next = next[:0]
		for _, it := range frontier {
			// Poll cancellation once per frontier item: rejected extensions
			// charge nothing, so charge failures alone would not bound the
			// abort latency on reject-heavy searches.
			if bud.Cancelled() {
				return finish(chargeErr(bud))
			}
			if lim.MaxLen > 0 && a.PathLen(it.ref) >= lim.MaxLen {
				continue
			}
			sc.runs = scanRuns(sc.runs, g, c, a.Last(it.ref), it.state, back)
			for _, rs := range sc.runs {
				targets := rs.targets
				for _, eid := range rs.edges {
					dst := stepNode(g, eid, back)
					extend, admitOK := classifyExtend(sem, a, it.ref, eid, dst)
					if !extend && !admitOK {
						continue
					}
					// Speculative O(1) extension, shared by every target
					// state; rolled back below if nothing retains it.
					mark := a.Len()
					np := a.Extend(it.ref, eid, dst)
					npLen := a.PathLen(np)
					kept := false
					for _, q := range targets {
						if admitOK && nfa.Accepting(q) && addResult(sh.set, a, np, back) {
							if !bud.ChargePath(npLen) {
								return finish(chargeErr(bud))
							}
						}
						if extend && sc.visited[q].Add(np) {
							if !bud.ChargeWork(npLen) {
								return finish(chargeErr(bud))
							}
							next = append(next, searchItem{ref: np, state: q})
							kept = true
						}
					}
					if !kept {
						a.TruncateTo(mark)
					}
				}
			}
		}
		frontier, next = next, frontier
		sh.levels = append(sh.levels, sh.set.Len())
	}
	sc.frontier, sc.next = frontier, next
	return sh
}

// mergeShards concatenates the shard results in the sequential discovery
// order: for each BFS depth in ascending order, each source's admissions
// at that depth, sources ascending. This is exactly the insertion order of
// the single-threaded global search (its frontier stays source-major
// sorted at every depth), so downstream order-sensitive operators — group
// construction, rank tie-breaking, ANY-style selector picks — see
// identical inputs whatever the worker count. Shards skipped after a
// budget failure are nil; the first error in source order is returned.
func mergeShards(shards []*shard) (*pathset.Set, error) {
	maxDepth := 0
	for _, sh := range shards {
		if sh != nil && len(sh.levels) > maxDepth {
			maxDepth = len(sh.levels)
		}
	}
	// Shards are disjoint (paths partition by first node) and internally
	// deduped, so the merge concatenates per-depth slices and indexes each
	// path once instead of re-running duplicate elimination.
	var groups [][]path.Path
	for d := 0; d < maxDepth; d++ {
		for _, sh := range shards {
			if sh == nil || d >= len(sh.levels) {
				continue
			}
			lo := 0
			if d > 0 {
				lo = sh.levels[d-1]
			}
			if g := sh.set.Paths()[lo:sh.levels[d]]; len(g) > 0 {
				groups = append(groups, g)
			}
		}
	}
	out := pathset.FromOrderedDisjoint(groups)
	for _, sh := range shards {
		if sh != nil && sh.err != nil {
			return out, sh.err
		}
	}
	return out, nil
}

// classifyExtend decides, for the admissible frontier path r about to be
// extended by edge e to node dst, whether the extension may keep growing
// (extend) and whether it is an answer at an accepting state (admitOK; the
// caller still ANDs in acceptance). It is the incremental counterpart of
// the per-path restrictor predicates: because every frontier path is
// admissible-for-extension by induction — prefixes of trails are trails,
// prefixes of acyclic paths are acyclic, and proper prefixes of simple
// paths are acyclic (the cycle may only close at the very end) — one walk
// up r's parent chain decides both answers with no allocation.
//
// The same classification serves the backward search unchanged: all five
// semantics are reversal-symmetric (a reversed trail is a trail, a
// reversed acyclic path acyclic, and Simple's closing-node exception maps
// first↔last, which is exactly the dst == First(r) test on the reversed
// chain).
//
//pathalgebra:hotpath
func classifyExtend(sem core.Semantics, a *path.Arena, r path.Ref, e graph.EdgeID, dst graph.NodeID) (extend, admitOK bool) {
	switch sem {
	case core.Walk:
		return true, true
	case core.Trail:
		ok := !a.ContainsEdge(r, e)
		return ok, ok
	case core.Acyclic:
		ok := !a.ContainsNode(r, dst)
		return ok, ok
	case core.Simple:
		if !a.ContainsNode(r, dst) {
			return true, true
		}
		// dst repeats: admissible only as the closing node of a cycle.
		return false, dst == a.First(r)
	default:
		return false, false
	}
}

// evalShortest finds, for every endpoint pair (s, t), all minimal-length
// paths whose label word the automaton accepts. Per source it runs a BFS
// over the product (node, state) space to compute distances, then
// enumerates exactly the paths that stay shortest at every step. Sources
// are already independent here, so sharding distributes whole sources and
// the merge is a plain source-order concatenation — the sequential
// insertion order.
func evalShortest(g *graph.Graph, c *CompiledNFA, lim core.Limits, bud *core.Budget, workers int, seeds []graph.NodeID, count int, back bool, sp *obs.Span) (*pathset.Set, error) {
	n := g.NumNodes()
	sets := make([]*pathset.Set, count)
	errs := make([]error, count)
	perr := runSharded(sp, count, workers,
		func(wsp *obs.Span) *shortestScratch {
			return &shortestScratch{
				arena:  path.NewArena(0),
				dist:   make(map[productState]int32, n),
				minAcc: make(map[graph.NodeID]int32, n),
				span:   wsp,
			}
		},
		func(sc *shortestScratch, i int) bool {
			out := new(pathset.Set) // index allocated lazily on first Add
			err := shortestFrom(g, c, seedAt(seeds, i), lim.MaxLen, bud, out, sc, back)
			sets[i], errs[i] = out, err
			sc.span.AddInt("sources", 1)
			sc.span.AddInt("paths", int64(out.Len()))
			sc.span.MaxInt("arena_bytes", int64(sc.arena.Bytes()))
			return err == nil
		})
	if perr != nil {
		return nil, fmt.Errorf("automaton: %w", perr)
	}
	// Per-source shards are disjoint and deduped; concatenating them in
	// source order is the sequential insertion order.
	groups := make([][]path.Path, 0, len(sets))
	for _, s := range sets {
		if s != nil && s.Len() > 0 {
			groups = append(groups, s.Paths())
		}
	}
	out := pathset.FromOrderedDisjoint(groups)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

type productState struct {
	node  graph.NodeID
	state StateID
}

// chargeErr resolves the typed error behind a failed budget charge — the
// cancellation cause or core.ErrBudgetExceeded (the fallback is
// defensive: a charge only fails over-limit or cancelled).
func chargeErr(bud *core.Budget) error {
	if err := bud.Err(); err != nil {
		return err
	}
	return core.ErrBudgetExceeded
}

// wrapChargeErr is chargeErr with the package prefix applied, for the
// shortest evaluator whose errors are not re-wrapped by a caller.
func wrapChargeErr(bud *core.Budget) error {
	return fmt.Errorf("automaton: %w", chargeErr(bud))
}

// shortestScratch holds the per-source working storage of shortestFrom so
// consecutive sources reuse it instead of reallocating.
type shortestScratch struct {
	arena          *path.Arena
	dist           map[productState]int32
	minAcc         map[graph.NodeID]int32
	frontier, next []productState
	work           []shortestItem
	runs           []symbolScan
	span           *obs.Span // this worker's shard span; nil when untraced
}

type shortestItem struct {
	ref   path.Ref
	state StateID
}

// shortestFrom evaluates Shortest semantics for one source. Both phases
// charge the shared work budget — every discovered product state in the
// phase-1 BFS and every pushed enumeration state in phase 2 accounts its
// node slots — so Limits.MaxWork bounds Shortest evaluation like every
// other semantics; admitted result paths additionally charge ChargePath.
func shortestFrom(g *graph.Graph, c *CompiledNFA, src graph.NodeID, maxLen int, bud *core.Budget, result *pathset.Set, sc *shortestScratch, back bool) error {
	nfa := c.nfa
	if !g.NodeAlive(src) {
		return nil
	}
	// Phase 1: BFS distances over the product space.
	clear(sc.dist)
	dist := sc.dist
	dist[productState{node: src, state: 0}] = 0
	if !bud.ChargeWork(0) {
		return wrapChargeErr(bud)
	}
	frontier := append(sc.frontier[:0], productState{node: src, state: 0})
	next := sc.next[:0]
	depth := int32(0)
	for len(frontier) > 0 && (maxLen <= 0 || int(depth) < maxLen) {
		depth++
		next = next[:0]
		for _, ps := range frontier {
			// Poll cancellation once per frontier item: already-seen product
			// states charge nothing, so charges alone would not bound the
			// abort latency on dense graphs.
			if bud.Cancelled() {
				sc.frontier, sc.next = frontier, next
				return wrapChargeErr(bud)
			}
			sc.runs = scanRuns(sc.runs, g, c, ps.node, ps.state, back)
			for _, rs := range sc.runs {
				for _, eid := range rs.edges {
					dst := stepNode(g, eid, back)
					for _, q := range rs.targets {
						nps := productState{node: dst, state: q}
						if _, seen := dist[nps]; !seen {
							dist[nps] = depth
							if !bud.ChargeWork(int(depth)) {
								sc.frontier, sc.next = frontier, next
								return wrapChargeErr(bud)
							}
							next = append(next, nps)
						}
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next

	// minAcc is the per-target minimum over accepting states — the length
	// of the shortest matching path src→target.
	clear(sc.minAcc)
	minAcc := sc.minAcc
	for ps, d := range dist {
		if !nfa.Accepting(ps.state) {
			continue
		}
		if cur, ok := minAcc[ps.node]; !ok || d < cur {
			minAcc[ps.node] = d
		}
	}
	if len(minAcc) == 0 {
		return nil
	}

	// Phase 2: enumerate all paths that are shortest product walks at
	// every prefix; admit those reaching their target at its minimum.
	// Paths live in the arena; each admitted path materializes once.
	a := sc.arena
	a.Reset()
	if !bud.ChargeWork(0) {
		return wrapChargeErr(bud)
	}
	work := append(sc.work[:0], shortestItem{ref: a.Leaf(src), state: 0})
	for len(work) > 0 {
		if bud.Cancelled() {
			sc.work = work
			return wrapChargeErr(bud)
		}
		it := work[len(work)-1]
		work = work[:len(work)-1]
		itLen := a.PathLen(it.ref)
		last := a.Last(it.ref)
		if nfa.Accepting(it.state) {
			if m, ok := minAcc[last]; ok && itLen == int(m) {
				if addResult(result, a, it.ref, back) && !bud.ChargePath(itLen) {
					sc.work = work
					return wrapChargeErr(bud)
				}
			}
		}
		sc.runs = scanRuns(sc.runs, g, c, last, it.state, back)
		for _, rs := range sc.runs {
			for _, eid := range rs.edges {
				dst := stepNode(g, eid, back)
				// One arena entry per edge, shared by all target states.
				var np path.Ref
				created := false
				for _, q := range rs.targets {
					if d, ok := dist[productState{node: dst, state: q}]; ok && int(d) == itLen+1 {
						if !created {
							np = a.Extend(it.ref, eid, dst)
							created = true
						}
						if !bud.ChargeWork(itLen + 1) {
							sc.work = work
							return wrapChargeErr(bud)
						}
						work = append(work, shortestItem{ref: np, state: q})
					}
				}
			}
		}
	}
	sc.work = work
	return nil
}
