package automaton

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
)

// visitedSet is the product search's mark set of (path, NFA state) pairs:
// one fingerprint-indexed pathset.Set per state, so the identity check —
// fingerprint bucket plus exact-Equal fallback on collision — lives in a
// single place and no key strings are materialized. Each search shard owns
// its own visitedSet: paths record their start node, so (path, state)
// pairs from different source nodes can never collide and per-source sets
// partition the global mark set exactly.
type visitedSet []*pathset.Set

func newVisitedSet(nfa *NFA) visitedSet {
	v := make(visitedSet, nfa.NumStates())
	for s := range v {
		v[s] = pathset.New(0)
	}
	return v
}

// mark records (p, s) and reports whether the pair was new.
func (v visitedSet) mark(p path.Path, s StateID) bool { return v[s].Add(p) }

// reset empties every per-state set, keeping allocated storage, so one
// visitedSet serves every source a worker processes.
func (v visitedSet) reset() {
	for _, s := range v {
		s.Reset()
	}
}

// Eval evaluates the regular path query described by the automaton over
// every pair of endpoints in g, returning the matching paths under the
// given semantics. It is the classical product-graph search: search states
// are (path-so-far, NFA state) pairs. Eval runs single-threaded; it is
// exactly EvalParallel with one worker.
//
// Semantics note: the automaton applies Trail/Acyclic/Simple to the whole
// matched path, which coincides with the algebraic ϕSem(base) for patterns
// whose recursion spans the whole expression (L+, (L1/L2)*, unions of
// such); for concatenations of separately-restricted recursions the
// algebra is by design more permissive (§2.3 applies restrictors per
// query part). Cross-checking tests use patterns of the former shape.
func Eval(g *graph.Graph, nfa *NFA, sem core.Semantics, lim core.Limits) (*pathset.Set, error) {
	return EvalParallel(g, nfa, sem, lim, 1)
}

// EvalParallel is Eval sharded across worker goroutines by source node:
// every source runs its own product search with a private frontier,
// scratch and visited set, and the per-source result shards are merged
// deterministically afterwards. Because every path belongs to exactly one
// source (its first node), the shard searches partition the sequential
// search exactly, and the merge reproduces the sequential discovery order
// — BFS depth major, then ascending source node — so the result is
// byte-identical to Eval for every worker count.
//
// Budgets are global, not per shard: all workers charge one shared atomic
// core.Budget, so MaxPaths and MaxWork hold across the whole evaluation.
// On a budget error the error is reported deterministically, but the
// partial result may differ between runs (workers bail out as soon as any
// shard trips the budget).
//
// workers <= 0 selects runtime.GOMAXPROCS(0); the count is capped by the
// number of source nodes.
func EvalParallel(g *graph.Graph, nfa *NFA, sem core.Semantics, lim core.Limits, workers int) (*pathset.Set, error) {
	workers = normalizeWorkers(workers, g.NumNodes())
	bud := core.NewBudget(lim)
	if sem == core.Shortest {
		return evalShortest(g, nfa, lim, bud, workers)
	}
	return evalSearch(g, nfa, sem, lim, bud, workers)
}

func normalizeWorkers(workers, sources int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > sources {
		workers = sources
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runSharded distributes sources 0..n-1 over the given number of workers.
// Each worker gets one scratch value from newScratch and pulls sources off
// a shared atomic cursor (work stealing, so uneven per-source costs
// balance). run returning false stops the whole pool early — remaining
// sources are skipped, which only happens after a budget error.
func runSharded[S any](n, workers int, newScratch func() S, run func(sc S, src int) bool) {
	var cursor atomic.Int64
	var failed atomic.Bool
	work := func() {
		sc := newScratch()
		for !failed.Load() {
			src := int(cursor.Add(1)) - 1
			if src >= n {
				return
			}
			if !run(sc, src) {
				failed.Store(true)
				return
			}
		}
	}
	if workers <= 1 {
		work()
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

type searchItem struct {
	p     path.Path
	state StateID
}

// evalScratch is one worker's reusable working storage: frontier slices
// and the per-source visited set survive across the sources the worker
// processes.
type evalScratch struct {
	frontier, next []searchItem
	visited        visitedSet
}

// shard is one source node's slice of the result: the admitted paths in
// per-source discovery order, plus the cumulative result count at the end
// of each BFS depth so the merge can interleave shards in the sequential
// (depth, source) order.
type shard struct {
	set    *pathset.Set
	levels []int
	err    error
}

func evalSearch(g *graph.Graph, nfa *NFA, sem core.Semantics, lim core.Limits, bud *core.Budget, workers int) (*pathset.Set, error) {
	n := g.NumNodes()
	shards := make([]*shard, n)
	runSharded(n, workers,
		func() *evalScratch { return &evalScratch{visited: newVisitedSet(nfa)} },
		func(sc *evalScratch, src int) bool {
			sh := evalSource(g, nfa, sem, lim, graph.NodeID(src), bud, sc)
			shards[src] = sh
			return sh.err == nil
		})
	out, err := mergeShards(shards)
	if err != nil {
		return out, fmt.Errorf("automaton: %w", err)
	}
	return out, nil
}

// evalSource runs the product search seeded at one source node. Budget
// accounting matches the sequential search exactly: every admitted result
// path charges ChargePath (1 path + Len+1 work — including the length-zero
// seed path when the automaton accepts the empty word), and every visited
// mark that extends the frontier charges ChargeWork.
func evalSource(g *graph.Graph, nfa *NFA, sem core.Semantics, lim core.Limits, src graph.NodeID, bud *core.Budget, sc *evalScratch) *shard {
	// The zero Set defers its index allocation until the first Add, so
	// sources admitting no paths cost no map allocation.
	sh := &shard{set: new(pathset.Set)}
	sc.visited.reset()
	seed := path.FromNode(src)
	sc.visited.mark(seed, 0)
	frontier := append(sc.frontier[:0], searchItem{p: seed, state: 0})
	next := sc.next[:0]
	finish := func(err error) *shard {
		sh.err = err
		sh.levels = append(sh.levels, sh.set.Len())
		sc.frontier, sc.next = frontier, next
		return sh
	}
	if nfa.AcceptsEmpty() {
		sh.set.Add(seed)
		if !bud.ChargePath(0) {
			return finish(core.ErrBudgetExceeded)
		}
	}
	sh.levels = append(sh.levels, sh.set.Len())
	for len(frontier) > 0 {
		next = next[:0]
		for _, it := range frontier {
			if lim.MaxLen > 0 && it.p.Len() >= lim.MaxLen {
				continue
			}
			for _, eid := range g.Out(it.p.Last()) {
				label := g.EdgeLabel(eid)
				var budgetErr error
				nfa.Visit(it.state, label, func(q StateID) {
					if budgetErr != nil {
						return
					}
					np := it.p.Extend(g, eid)
					extend, admit := classify(sem, np, nfa.Accepting(q))
					if admit && sh.set.Add(np) {
						if !bud.ChargePath(np.Len()) {
							budgetErr = core.ErrBudgetExceeded
							return
						}
					}
					if extend && sc.visited.mark(np, q) {
						if !bud.ChargeWork(np.Len()) {
							budgetErr = core.ErrBudgetExceeded
							return
						}
						next = append(next, searchItem{p: np, state: q})
					}
				})
				if budgetErr != nil {
					return finish(budgetErr)
				}
			}
		}
		frontier, next = next, frontier
		sh.levels = append(sh.levels, sh.set.Len())
	}
	sc.frontier, sc.next = frontier, next
	return sh
}

// mergeShards concatenates the shard results in the sequential discovery
// order: for each BFS depth in ascending order, each source's admissions
// at that depth, sources ascending. This is exactly the insertion order of
// the single-threaded global search (its frontier stays source-major
// sorted at every depth), so downstream order-sensitive operators — group
// construction, rank tie-breaking, ANY-style selector picks — see
// identical inputs whatever the worker count. Shards skipped after a
// budget failure are nil; the first error in source order is returned.
func mergeShards(shards []*shard) (*pathset.Set, error) {
	maxDepth := 0
	for _, sh := range shards {
		if sh != nil && len(sh.levels) > maxDepth {
			maxDepth = len(sh.levels)
		}
	}
	// Shards are disjoint (paths partition by first node) and internally
	// deduped, so the merge concatenates per-depth slices and indexes each
	// path once instead of re-running duplicate elimination.
	var groups [][]path.Path
	for d := 0; d < maxDepth; d++ {
		for _, sh := range shards {
			if sh == nil || d >= len(sh.levels) {
				continue
			}
			lo := 0
			if d > 0 {
				lo = sh.levels[d-1]
			}
			if g := sh.set.Paths()[lo:sh.levels[d]]; len(g) > 0 {
				groups = append(groups, g)
			}
		}
	}
	out := pathset.FromOrderedDisjoint(groups)
	for _, sh := range shards {
		if sh != nil && sh.err != nil {
			return out, sh.err
		}
	}
	return out, nil
}

// classify decides, for a freshly extended path, whether the search may
// keep extending it and whether it is an answer (given an accepting
// state). Pruning is sound because admissible prefixes characterize each
// semantics: prefixes of trails are trails, prefixes of acyclic paths are
// acyclic, and proper prefixes of simple paths are acyclic (the cycle may
// only close at the very end).
func classify(sem core.Semantics, p path.Path, accepting bool) (extend, admit bool) {
	switch sem {
	case core.Walk:
		return true, accepting
	case core.Trail:
		ok := p.IsTrail()
		return ok, ok && accepting
	case core.Acyclic:
		ok := p.IsAcyclic()
		return ok, ok && accepting
	case core.Simple:
		if p.IsAcyclic() {
			return true, accepting
		}
		// Not acyclic: admissible only if it just closed its cycle.
		return false, accepting && p.IsSimple()
	default:
		return false, false
	}
}

// evalShortest finds, for every endpoint pair (s, t), all minimal-length
// paths whose label word the automaton accepts. Per source it runs a BFS
// over the product (node, state) space to compute distances, then
// enumerates exactly the paths that stay shortest at every step. Sources
// are already independent here, so sharding distributes whole sources and
// the merge is a plain source-order concatenation — the sequential
// insertion order.
func evalShortest(g *graph.Graph, nfa *NFA, lim core.Limits, bud *core.Budget, workers int) (*pathset.Set, error) {
	n := g.NumNodes()
	sets := make([]*pathset.Set, n)
	errs := make([]error, n)
	runSharded(n, workers,
		func() *shortestScratch {
			return &shortestScratch{
				dist:   make(map[productState]int32, n),
				minAcc: make(map[graph.NodeID]int32, n),
			}
		},
		func(sc *shortestScratch, src int) bool {
			out := new(pathset.Set) // index allocated lazily on first Add
			err := shortestFrom(g, nfa, graph.NodeID(src), lim.MaxLen, bud, out, sc)
			sets[src], errs[src] = out, err
			return err == nil
		})
	// Per-source shards are disjoint and deduped; concatenating them in
	// source order is the sequential insertion order.
	groups := make([][]path.Path, 0, len(sets))
	for _, s := range sets {
		if s != nil && s.Len() > 0 {
			groups = append(groups, s.Paths())
		}
	}
	out := pathset.FromOrderedDisjoint(groups)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

type productState struct {
	node  graph.NodeID
	state StateID
}

// shortestScratch holds the per-source working storage of shortestFrom so
// consecutive sources reuse it instead of reallocating.
type shortestScratch struct {
	dist           map[productState]int32
	minAcc         map[graph.NodeID]int32
	frontier, next []productState
	work           []shortestItem
}

type shortestItem struct {
	p     path.Path
	state StateID
}

func shortestFrom(g *graph.Graph, nfa *NFA, src graph.NodeID, maxLen int, bud *core.Budget, result *pathset.Set, sc *shortestScratch) error {
	// Phase 1: BFS distances over the product space.
	clear(sc.dist)
	dist := sc.dist
	dist[productState{node: src, state: 0}] = 0
	frontier := append(sc.frontier[:0], productState{node: src, state: 0})
	next := sc.next[:0]
	depth := int32(0)
	for len(frontier) > 0 && (maxLen <= 0 || int(depth) < maxLen) {
		depth++
		next = next[:0]
		for _, ps := range frontier {
			for _, eid := range g.Out(ps.node) {
				label := g.EdgeLabel(eid)
				_, dst := g.Endpoints(eid)
				nfa.Visit(ps.state, label, func(q StateID) {
					nps := productState{node: dst, state: q}
					if _, seen := dist[nps]; !seen {
						dist[nps] = depth
						next = append(next, nps)
					}
				})
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next

	// minAcc is the per-target minimum over accepting states — the length
	// of the shortest matching path src→target.
	clear(sc.minAcc)
	minAcc := sc.minAcc
	for ps, d := range dist {
		if !nfa.Accepting(ps.state) {
			continue
		}
		if cur, ok := minAcc[ps.node]; !ok || d < cur {
			minAcc[ps.node] = d
		}
	}
	if len(minAcc) == 0 {
		return nil
	}

	// Phase 2: enumerate all paths that are shortest product walks at
	// every prefix; admit those reaching their target at its minimum.
	work := append(sc.work[:0], shortestItem{p: path.FromNode(src), state: 0})
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if nfa.Accepting(it.state) {
			if m, ok := minAcc[it.p.Last()]; ok && it.p.Len() == int(m) {
				if result.Add(it.p) && !bud.ChargePath(it.p.Len()) {
					sc.work = work
					return fmt.Errorf("automaton: %w", core.ErrBudgetExceeded)
				}
			}
		}
		for _, eid := range g.Out(it.p.Last()) {
			label := g.EdgeLabel(eid)
			_, dst := g.Endpoints(eid)
			nfa.Visit(it.state, label, func(q StateID) {
				nps := productState{node: dst, state: q}
				if d, ok := dist[nps]; ok && int(d) == it.p.Len()+1 {
					work = append(work, shortestItem{p: it.p.Extend(g, eid), state: q})
				}
			})
		}
	}
	sc.work = work
	return nil
}
