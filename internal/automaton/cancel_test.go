package automaton_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/rpq"
)

// cancelGraph is dense and cyclic enough that an unbounded-ish Walk
// search runs for a long time — long enough that a cancellation
// mid-flight is guaranteed to land inside the product search.
func cancelGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return ldbc.MustGenerate(ldbc.Config{
		Persons: 300, Messages: 300, KnowsPerPerson: 4, LikesPerPerson: 3,
		CycleFraction: 0.5, Seed: 7,
	})
}

// TestEvalCancellation: cancelling the context mid-evaluation aborts all
// worker goroutines promptly — EvalWithOptions returns within 100ms of
// the cancellation — and the error is errors.Is context.Canceled, not
// the budget sentinel.
func TestEvalCancellation(t *testing.T) {
	g := cancelGraph(t)
	nfa := automaton.Build(rpq.MustParse("(:Knows|:Likes)+"))
	// A generous budget so only the cancellation can stop the walk.
	lim := core.Limits{MaxLen: 40, MaxPaths: 1 << 30, MaxWork: 1 << 40}
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, err := automaton.EvalWithOptions(g, nfa, core.Walk, lim, automaton.EvalOptions{
				Ctx:     ctx,
				Workers: workers,
			})
			done <- err
		}()
		time.Sleep(30 * time.Millisecond) // let the search get going
		cancelled := time.Now()
		cancel()
		select {
		case err := <-done:
			if since := time.Since(cancelled); since > 100*time.Millisecond {
				t.Errorf("workers=%d: returned %v after cancellation, want < 100ms", workers, since)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
			if errors.Is(err, core.ErrBudgetExceeded) {
				t.Errorf("workers=%d: cancellation reported as budget exhaustion", workers)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: evaluation did not return within 5s of cancellation (started %v ago)",
				workers, time.Since(start))
		}
	}
}

// TestEvalDeadline: a context deadline surfaces as
// context.DeadlineExceeded through the same path.
func TestEvalDeadline(t *testing.T) {
	g := cancelGraph(t)
	nfa := automaton.Build(rpq.MustParse("(:Knows|:Likes)+"))
	lim := core.Limits{MaxLen: 40, MaxPaths: 1 << 30, MaxWork: 1 << 40}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := automaton.EvalWithOptions(g, nfa, core.Walk, lim, automaton.EvalOptions{Ctx: ctx, Workers: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEvalShortestCancellation: the two-phase shortest evaluator aborts
// on cancellation too (both BFS phases poll the budget).
func TestEvalShortestCancellation(t *testing.T) {
	g := cancelGraph(t)
	nfa := automaton.Build(rpq.MustParse("(:Knows|:Likes)+"))
	lim := core.Limits{MaxPaths: 1 << 30, MaxWork: 1 << 40}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := automaton.EvalWithOptions(g, nfa, core.Shortest, lim, automaton.EvalOptions{Ctx: ctx, Workers: 4})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancelled := time.Now()
	cancel()
	select {
	case err := <-done:
		// The shortest evaluation may legitimately finish before the
		// cancellation lands; only a cancellation observed must be typed.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want nil or context.Canceled", err)
		}
		if err != nil {
			if since := time.Since(cancelled); since > 100*time.Millisecond {
				t.Errorf("returned %v after cancellation, want < 100ms", since)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shortest evaluation did not return within 5s of cancellation")
	}
}

// TestEvalUncancelledUnchanged: passing a cancellable context that never
// fires yields exactly the context-free result.
func TestEvalUncancelledUnchanged(t *testing.T) {
	g := ldbc.Figure1()
	nfa := automaton.Build(rpq.MustParse(":Knows+"))
	lim := core.Limits{MaxLen: 6}
	want, err := automaton.Eval(g, nfa, core.Trail, lim)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := automaton.EvalWithOptions(g, nfa, core.Trail, lim, automaton.EvalOptions{Ctx: ctx, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !samePathSequence(want, got) {
		t.Error("context-threaded evaluation differs from the context-free result")
	}
}
